/**
 * @file
 * ndpmon CLI: offline analysis of obs::HealthMonitor JSON exports.
 *
 *     ndpmon [options] <health.json>
 *
 * Options:
 *   --check   reconciliation gate (CI): re-derive every derivable
 *             number in the report from its own raw series and fail
 *             on >1% disagreement —
 *               - replay the fast/slow burn-rate alert state machines
 *                 over the exported burn series; the number of raises
 *                 must reconcile with the in-run burn_alerts_fired
 *               - recompute error_budget_consumed from the cumulative
 *                 bad/total counters and the configured objective
 *               - structural invariants: sim time and cumulative
 *                 counters monotone, bad <= total, detection
 *                 latencies finite and non-negative
 *   --events  include the full event timeline in the dashboard
 *
 * Default mode renders a text dashboard: one row per scope (alerts,
 * error budget, violation time, fault detection latency) plus the
 * tail of the event log.
 *
 * Exit codes: 0 clean, 1 check failures, 2 usage/IO error.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ndptrace/json.h"

using ndp::trace::JsonValue;
using ndp::trace::parseJson;

namespace {

void
usage()
{
    std::cerr << "usage: ndpmon [--check] [--events] <health.json>\n";
}

/** Reconciliation tolerance: in-run and replayed values must agree to
 *  <1% (the monitor writes the exact decision inputs, so in practice
 *  the match is exact; the slack only absorbs text round-trips). */
constexpr double kTolerance = 0.01;

bool
within(double got, double want)
{
    const double mag = std::max(std::fabs(got), std::fabs(want));
    return std::fabs(got - want) <= kTolerance * std::max(mag, 1e-12);
}

struct CheckState
{
    int failures = 0;

    void
    fail(const std::string &msg)
    {
        ++failures;
        if (failures <= 20)
            std::cerr << "ndpmon: FAIL: " << msg << "\n";
    }
};

double
num(const JsonValue &obj, const std::string &key)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr ? v->numberOr(0.0) : 0.0;
}

/**
 * Replay the two burn-rate alert state machines over one scope's
 * series. The series carries the exact windowed burn values each eval
 * used, so counting upward threshold crossings reproduces the in-run
 * burn_alerts_fired precisely.
 */
uint64_t
replayBurnAlerts(const JsonValue &series, double fast_thr,
                 double slow_thr)
{
    uint64_t raises = 0;
    bool fastActive = false;
    bool slowActive = false;
    for (const JsonValue &p : series.arr) {
        const bool fast = num(p, "fast_burn") >= fast_thr;
        const bool slow = num(p, "slow_burn") >= slow_thr;
        if (fast && !fastActive)
            ++raises;
        if (slow && !slowActive)
            ++raises;
        fastActive = fast;
        slowActive = slow;
    }
    return raises;
}

void
checkSeries(CheckState &ck, const std::string &scope,
            const JsonValue &series)
{
    double lastT = -1.0;
    double lastBad = -1.0;
    double lastTotal = -1.0;
    for (const JsonValue &p : series.arr) {
        const double t = num(p, "t_s");
        const double bad = num(p, "bad");
        const double total = num(p, "total");
        if (t < lastT)
            ck.fail("scope '" + scope + "': series time went backward");
        if (bad < lastBad || total < lastTotal)
            ck.fail("scope '" + scope +
                    "': cumulative counter decreased");
        if (bad > total)
            ck.fail("scope '" + scope + "': bad > total in series");
        lastT = t;
        lastBad = bad;
        lastTotal = total;
    }
}

int
runCheck(const JsonValue &root)
{
    CheckState ck;
    const JsonValue *mon = root.find("monitor");
    const JsonValue *scopes = root.find("scopes");
    const JsonValue *events = root.find("events");
    if (mon == nullptr || !mon->isObject())
        ck.fail("missing 'monitor' config object");
    if (scopes == nullptr || !scopes->isArray())
        ck.fail("missing 'scopes' array");
    if (events == nullptr || !events->isArray())
        ck.fail("missing 'events' array");
    if (ck.failures > 0)
        return 1;

    const double objective = num(*mon, "slo_objective");
    const double fastThr = num(*mon, "fast_burn_threshold");
    const double slowThr = num(*mon, "slow_burn_threshold");
    const double denom = 1.0 - objective;
    if (denom <= 0.0)
        ck.fail("slo_objective >= 1.0: burn rate undefined");

    for (const JsonValue &sc : scopes->arr) {
        const std::string scope =
            sc.find("scope") != nullptr ? sc.find("scope")->str : "?";
        const JsonValue *sum = sc.find("summary");
        const JsonValue *series = sc.find("series");
        if (sum == nullptr || series == nullptr ||
            !series->isArray()) {
            ck.fail("scope '" + scope + "': missing summary/series");
            continue;
        }
        checkSeries(ck, scope, *series);

        // Burn-rate reconciliation: replayed raises vs in-run count.
        const auto reported =
            static_cast<uint64_t>(num(*sum, "burn_alerts_fired"));
        const uint64_t replayed =
            replayBurnAlerts(*series, fastThr, slowThr);
        if (!within(static_cast<double>(replayed),
                    static_cast<double>(reported)))
            ck.fail("scope '" + scope + "': burn replay mismatch (" +
                    std::to_string(replayed) + " replayed vs " +
                    std::to_string(reported) + " reported)");

        // Error-budget reconciliation from the cumulative counters.
        const double bad = num(*sum, "bad_events");
        const double total = num(*sum, "total_events");
        const double reportedBudget =
            num(*sum, "error_budget_consumed");
        const double derived =
            total > 0.0 && denom > 0.0 ? bad / (total * denom) : 0.0;
        if (!within(derived, reportedBudget))
            ck.fail("scope '" + scope +
                    "': error budget mismatch (derived " +
                    std::to_string(derived) + " vs reported " +
                    std::to_string(reportedBudget) + ")");
        // Observations arriving after the last eval advance the
        // summary counters past the series tail — the tail may only
        // lag, never exceed.
        if (!series->arr.empty()) {
            const JsonValue &last = series->arr.back();
            if (num(last, "bad") > bad || num(last, "total") > total)
                ck.fail("scope '" + scope +
                        "': series tail exceeds summary counters");
        }

        const double fired = num(*sum, "alerts_fired");
        const double clearedN = num(*sum, "alerts_cleared");
        if (clearedN > fired)
            ck.fail("scope '" + scope +
                    "': more alerts cleared than fired");
        const double det = num(*sum, "faults_detected");
        const double rec = num(*sum, "faults_recovered");
        if (rec > det)
            ck.fail("scope '" + scope +
                    "': more faults recovered than detected");
    }

    for (const JsonValue &e : events->arr) {
        const std::string kind =
            e.find("kind") != nullptr ? e.find("kind")->str : "";
        const double v = num(e, "value");
        if ((kind == "fault-detected" || kind == "fault-recovered") &&
            (!std::isfinite(v) || v < 0.0))
            ck.fail("event '" + kind +
                    "': non-finite or negative latency");
    }

    if (ck.failures > 0) {
        std::cerr << "ndpmon: " << ck.failures << " check failure(s)\n";
        return 1;
    }
    std::cout << "ndpmon: OK (" << scopes->arr.size() << " scope(s), "
              << events->arr.size() << " event(s) reconciled)\n";
    return 0;
}

void
dashboard(const JsonValue &root, bool show_events)
{
    const JsonValue *mon = root.find("monitor");
    const JsonValue *scopes = root.find("scopes");
    const JsonValue *events = root.find("events");
    if (mon != nullptr)
        std::printf(
            "SLO objective %.4f | burn thresholds fast %.1f (%gs) / "
            "slow %.1f (%gs)\n",
            num(*mon, "slo_objective"),
            num(*mon, "fast_burn_threshold"),
            num(*mon, "fast_window_s"),
            num(*mon, "slow_burn_threshold"),
            num(*mon, "slow_window_s"));
    std::printf("%-14s %7s %7s %10s %10s %8s %8s %9s\n", "scope",
                "alerts", "burn", "bad/total", "budget", "viol_s",
                "faults", "mttd_s");
    if (scopes != nullptr) {
        for (const JsonValue &sc : scopes->arr) {
            const std::string scope =
                sc.find("scope") != nullptr ? sc.find("scope")->str
                                            : "?";
            const JsonValue *sum = sc.find("summary");
            if (sum == nullptr)
                continue;
            std::ostringstream ratio;
            ratio << static_cast<uint64_t>(num(*sum, "bad_events"))
                  << "/"
                  << static_cast<uint64_t>(num(*sum, "total_events"));
            std::ostringstream faults;
            faults << static_cast<uint64_t>(
                          num(*sum, "faults_recovered"))
                   << "/"
                   << static_cast<uint64_t>(
                          num(*sum, "faults_detected"));
            std::printf(
                "%-14s %7llu %7llu %10s %10.3f %8.2f %8s %9.4f\n",
                scope.empty() ? "(cluster)" : scope.c_str(),
                static_cast<unsigned long long>(
                    num(*sum, "alerts_fired")),
                static_cast<unsigned long long>(
                    num(*sum, "burn_alerts_fired")),
                ratio.str().c_str(),
                num(*sum, "error_budget_consumed"),
                num(*sum, "time_in_violation_s"),
                faults.str().c_str(),
                num(*sum, "mean_time_to_detect_s"));
        }
    }
    if (events != nullptr && !events->arr.empty()) {
        const size_t n = events->arr.size();
        const size_t from = show_events || n <= 10 ? 0 : n - 10;
        std::printf("\nevents (%zu total%s):\n", n,
                    from > 0 ? ", last 10" : "");
        for (size_t i = from; i < n; ++i) {
            const JsonValue &e = events->arr[i];
            const auto s = [&e](const char *k) {
                const JsonValue *v = e.find(k);
                return v != nullptr ? v->str : std::string();
            };
            std::printf("  %12.4fs %-15s %-16s %-10s %-8s %.4g\n",
                        num(e, "t_s"), s("kind").c_str(),
                        s("name").c_str(),
                        s("scope").empty() ? "(cluster)"
                                           : s("scope").c_str(),
                        s("detail").c_str(), num(e, "value"));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    bool showEvents = false;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--check") {
            check = true;
        } else if (arg == "--events") {
            showEvents = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream f(path);
    if (!f) {
        std::cerr << "ndpmon: cannot open " << path << "\n";
        return 2;
    }
    std::stringstream buf;
    buf << f.rdbuf();

    JsonValue root;
    std::string err;
    if (!parseJson(buf.str(), root, err)) {
        std::cerr << "ndpmon: parse error: " << err << "\n";
        return 1;
    }
    if (!root.isObject()) {
        std::cerr << "ndpmon: top level is not an object\n";
        return 1;
    }

    if (check)
        return runCheck(root);
    dashboard(root, showEvents);
    return 0;
}
