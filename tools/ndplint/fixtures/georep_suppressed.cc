// ndp-lint fixture: the core/georep suppression idiom. Not compiled —
// lexed by test_ndplint_flow.cc. A static member coroutine borrows the
// whole Impl by reference across its suspensions (the georep dataflow
// pattern: agent/distributor loops over shared per-site state). The
// escape is real in shape, but the Impl outlives s.run(), which joins
// every spawned task, and the allow records exactly that — so the
// finding is suppressed and the audit sees a rationale.

#include "sim/task.h"

namespace fixture {

struct Flow
{
    static sim::Task agentLoop(Flow &im);
};

/* ndplint: allow(coroutine-ref-param, coroutine-escape: the Impl
 * outlives s.run(), which joins this task) */
sim::Task
Flow::agentLoop(Flow &im)
{
    co_await im.s.delay(1.0);
    im.publish();
}

} // namespace fixture
