// ndp-lint fixture: the src/obs/monitor suppression idiom. Not
// compiled — lexed by test_ndplint.cc, relocated under
// "src/obs/monitor.cc" where banned-nondeterminism applies. The health
// monitor's passive contract (monitored run == unmonitored run, bit
// for bit) keeps wall clocks and unseeded RNG out of every aggregate
// and rule — the one sanctioned exception is a diagnostic wall-clock
// read on the JSON-export path, which runs after the simulation has
// finished and cannot perturb a single report bit. The allow records
// exactly that rationale for the suppression audit.

#include <chrono>

namespace fixture {

struct ExportStats
{
    double writeSeconds = 0.0;
};

void
timedExport(ExportStats &st)
{
    /* ndplint: allow(banned-nondeterminism: export-path diagnostics
       run after s.run() returns; no simulation state or report field
       is derived from this read) */
    auto t0 = std::chrono::steady_clock::now();
    st.writeSeconds = sinceSeconds(t0);
}

} // namespace fixture
