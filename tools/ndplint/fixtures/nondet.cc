// ndp-lint fixture: banned-nondeterminism.
// Not compiled — lexed by test_ndplint.cc. The rule is path-scoped to
// src/sim + src/core; tests lex this file once under its real fixture
// path (expecting silence) and once as "src/sim/nondet.cc".

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>

namespace fixture {

int
badWallClockAndPrng()
{
    int a = std::rand();                               // BAD: global PRNG
    std::srand(42);                                    // BAD: global PRNG
    long t = time(nullptr);                            // BAD: wall clock
    auto n = std::chrono::steady_clock::now();         // BAD: wall clock
    auto s = std::chrono::system_clock::now();         // BAD: wall clock
    auto h = std::chrono::high_resolution_clock::now(); // BAD: wall clock
    std::random_device rd;                             // BAD: HW entropy
    return a + static_cast<int>(t) + rd();
}

int
badUnorderedIteration(const std::unordered_map<int, int> &table)
{
    int total = 0;
    for (const auto &kv : table) { // BAD: hash-order iteration
        total += kv.second;
    }
    return total;
}

int
goodAlternatives(const std::map<int, int> &sorted)
{
    int total = 0;
    for (const auto &kv : sorted) { // ok: ordered container
        total += kv.second;
    }
    // ok: member calls named like the banned functions are not the
    // C library wall clock.
    total += sorted.size();
    return total;
}

// Note: a member *declaration* spelled `int time()` would still match
// the token pattern (declare it under another name, or allow it); only
// qualified member *calls* are exempt.
struct Clock;

int
goodMemberTime(const Clock &c, Clock *p)
{
    return c.time() + p->time(); // ok: member calls, not ::time()
}

} // namespace fixture
