// ndp-lint fixture: scheduler/channel protocol checks with rationaled
// suppressions — one per rule, zero surviving findings. Not compiled —
// lexed by test_ndplint_flow.cc.

#include "sim/channel.h"
#include "sim/task.h"

namespace fixture {

sim::Task
calibrate(Ctx &ctx)
{
    co_await ctx.gpu.compute(0.5);
    /* ndplint: allow(missing-batch-yield: boot-time calibration job —
       runs before the scheduler admits tenants, nothing to preempt) */
    ctx.sched->charge(ctx.job, 0.5);
}

sim::Task
flushSentinel(sim::Channel<int> &out)
{
    out.close();
    /* ndplint: allow(send-after-close: this put targets the reopened
       epoch; the epoch lock upstream guards the transition) */
    co_await out.put(-1);
}

sim::Task
metricsBacklog(sim::Simulator &s)
{
    /* ndplint: allow(channel-never-drained: the test harness drains
       backlog after run() returns) */
    sim::Channel<int> backlog(s, 8);
    co_await backlog.put(1);
}

} // namespace fixture
