// ndp-lint fixture: determinism taint with a rationaled suppression.
// Not compiled — lexed by test_ndplint_flow.cc.

#include <chrono>

namespace fixture {

struct WarmupReport
{
    double seconds = 0.0;
};

void
wallClockWarmup(WarmupReport &rep)
{
    auto t0 = std::chrono::steady_clock::now();
    /* ndplint: allow(determinism-taint: warmup wall time is
       diagnostic-only and excluded from the determinism digest) */
    rep.seconds = sinceSeconds(t0);
}

} // namespace fixture
