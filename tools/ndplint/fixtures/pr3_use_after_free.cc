// ndp-lint fixture: the PR 3 ASan-confirmed use-after-free, minimized.
// Not compiled — lexed by test_ndplint_flow.cc. The dataflow handed
// `batches` to the coroutine by const reference and destroyed it while
// the task was still suspended inside the loop; the next iteration
// then indexed a dead vector. The escape rule must flag `batches` as
// live across the suspending loop.

#include <vector>

#include "sim/task.h"

namespace fixture {

sim::Task
uploadBatches(Ctx &ctx, const std::vector<Batch> &batches)
{
    for (size_t i = 0; i < batches.size(); ++i) {
        co_await ctx.gpu.compute(batches[i].seconds);
    }
}

} // namespace fixture
