// ndp-lint fixture: float-accum-order.
// Not compiled — lexed by test_ndplint.cc.

#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

double
badHashOrderSum(const std::unordered_map<int, double> &weights)
{
    double sum = 0.0;
    for (const auto &kv : weights) {
        sum += kv.second; // BAD: accumulates in hash order
    }
    return sum;
}

float
badSingleStatementBody(const std::unordered_map<int, float> &w)
{
    float acc = 0.0F;
    for (const auto &kv : w)
        acc += kv.second; // BAD: braceless body is still the loop body
    return acc;
}

double
goodOrderedSum(const std::map<int, double> &ordered)
{
    double sum = 0.0;
    for (const auto &kv : ordered) {
        sum += kv.second; // ok: std::map iterates in key order
    }
    return sum;
}

double
goodVectorSum(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs) {
        sum += x; // ok: sequence order is deterministic
    }
    return sum;
}

long
goodIntegerCount(const std::unordered_map<int, int> &table)
{
    long count = 0;
    for (const auto &kv : table) {
        count += kv.second; // ok: integer accumulation is exact
    }
    return count;
}

} // namespace fixture
