// ndp-lint fixture: coroutine-lifetime escape analysis, GOOD cases.
// Not compiled — lexed by test_ndplint_flow.cc. Zero coroutine-escape
// findings expected: borrows are consumed before the first suspension
// or replaced by owned copies.

#include <string>

#include "sim/task.h"

namespace fixture {

// Reads the borrow while the caller's frame is guaranteed live, then
// only touches the copy after suspending.
sim::Task
copiesBeforeSuspend(sim::Simulator &s, const Config &cfg)
{
    const double rate = cfg.rate;
    co_await s.delay(rate);
    co_return;
}

// Owned copies: safe to touch on either side of the suspension.
sim::Task
byValue(sim::Simulator s, std::string name)
{
    co_await s.delay(1.0);
    log(name);
}

// A borrow used only inside the co_await expression is evaluated
// before the suspension, so it never outlives the caller's frame.
sim::Task
useInsideAwaitOnly(Store &store)
{
    co_await store.flush();
}

} // namespace fixture
