// ndp-lint fixture: coroutine-ref-param.
// Not compiled — lexed by test_ndplint.cc.

#include "sim/task.h"

namespace fixture {

struct Env
{
    double budget = 0.0;
};

sim::Task // BAD: findings are reported on this line (sigStartLine)
leakyOne(Env &env, int n)
{
    co_await env.step(n);
}

// BAD: both `env` (lvalue ref) and `tmp` (rvalue ref) are flagged;
// `count` and the defaulted `scale` are not.
sim::Task
leakyTwo(Env &env, int count, Env &&tmp, double scale = 1.0)
{
    co_return;
}

// ok: coroutine taking everything by value.
sim::Task
safeByValue(Env env, int n)
{
    co_await env.step(n);
}

// ok: coroutine taking a pointer (ownership is explicit at call sites).
sim::Task
safeByPointer(Env *env)
{
    co_return;
}

// ok: plain function — references without a coroutine body are fine.
double
notACoroutine(Env &env, const double &x)
{
    return env.budget + x;
}

// ok: const ref param on a *non*-coroutine helper nested between
// coroutines must not be attributed to either neighbour.
int
alsoPlain(const Env &env)
{
    if (env.budget > 0.0) {
        return 1;
    }
    return 0;
}

} // namespace fixture
