// ndp-lint fixture: scheduler/channel protocol checks, BAD cases —
// one per rule. Not compiled — lexed by test_ndplint_flow.cc.

#include "sim/channel.h"
#include "sim/task.h"

namespace fixture {

// BAD (missing-batch-yield): charges scheduler time every batch but
// never co_awaits a yield(), so fair-share can never deschedule it.
sim::Task
greedyJob(Ctx &ctx)
{
    for (int i = 0; i < 8; ++i) {
        co_await ctx.gpu.compute(0.01);
        ctx.sched->charge(ctx.job, 0.01);
    }
}

// BAD (send-after-close): the second put is sequenced after close();
// Channel::put asserts the channel is open, so this path aborts.
sim::Task
badProducer(sim::Channel<int> &out)
{
    co_await out.put(1);
    out.close();
    co_await out.put(2);
}

// BAD (channel-never-drained): an owning channel that is put into but
// never get() from and never aliased — the producer blocks forever
// once the two-slot buffer fills.
sim::Task
orphanProducer(sim::Simulator &s)
{
    sim::Channel<int> orphan(s, 2);
    co_await orphan.put(1);
    co_await orphan.put(2);
}

} // namespace fixture
