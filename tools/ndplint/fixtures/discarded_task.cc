// ndp-lint fixture: discarded-task.
// Not compiled — lexed by test_ndplint.cc. Line numbers matter: tests
// assert findings on the lines marked BAD below.

#include "sim/task.h"

namespace fixture {

sim::Task doWork(int images);
sim::Task helper();

struct Store
{
    sim::Task drain();
};

// `poll` is ambiguous: declared once returning Task and once returning
// int, so discarded-task must skip it entirely.
sim::Task poll(int n);
int poll();

void
driver(Store &store)
{
    doWork(5);          // BAD: result discarded, the process never runs
    helper();           // BAD: same, zero-argument form
    store.drain();      // BAD: discard through a member qualifier

    poll(3);            // ok: ambiguous name, rule must stay silent
    auto held = doWork(3); // ok: bound to a variable
    (void)held;
}

sim::Task
parent(Store &store) // ref param is intentional; filtered per-rule
{
    co_await doWork(1);     // ok: awaited
    co_await store.drain(); // ok: awaited through a member qualifier
}

} // namespace fixture
