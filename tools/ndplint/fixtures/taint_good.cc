// ndp-lint fixture: determinism taint, GOOD cases — zero findings.
// Not compiled — lexed by test_ndplint_flow.cc. Sim time, seeded Rng
// draws, and ordered iteration are the sanctioned inputs to reports,
// traces, and scheduler decisions.

#include <map>

namespace fixture {

struct StageReport
{
    double seconds = 0.0;
};

// Sim time is deterministic: fine to serialize.
void
simTimeOnly(StageReport &rep, const Simulator &s)
{
    rep.seconds = s.now();
}

// Ordered iteration: the sum is reproducible bit-for-bit.
void
orderedSum(StageReport &rep, const std::map<int, double> &perStore)
{
    double total = 0.0;
    for (const auto &kv : perStore)
        total += kv.second;
    rep.seconds = total;
}

// Tainted but unsunk: a local wall-clock read that never reaches a
// report, trace, or scheduler call carries no taint finding (the
// banned-nondeterminism token rule handles the raw call under src/).
double
taintedButUnsunk()
{
    auto wall = time(nullptr);
    (void)wall;
    return 0.0;
}

// begin() on a receiver that is not a tracer is not a trace sink.
void
spanNotATracer(Span &span)
{
    auto wall = time(nullptr);
    span.begin(wall);
}

} // namespace fixture
