// ndp-lint fixture: lexer hardening. Raw strings (with and without
// encoding prefixes and custom delimiters), digit separators, and
// line-spliced comments must all be opaque: none of the banned names
// inside them may surface as identifier tokens. Not compiled — lexed
// by test_ndplint_flow.cc.

namespace fixture {

const char *raw = R"(std::rand() time(nullptr))";
const char *rawDelim = R"ndp(srand(42) steady_clock)ndp";
const char *rawU8 = u8R"(random_device)";
const wchar_t *rawWide = LR"(system_clock)";

constexpr long big = 1'000'000;
constexpr unsigned mask = 0xFF'FF'00'00u;
constexpr double rate = 12'500.5;

// A spliced line comment hides the next physical line too: \
std::rand();

int
after()
{
    return static_cast<int>(big);
}

} // namespace fixture
