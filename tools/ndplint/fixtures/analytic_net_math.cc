// analytic-net-math fixture: ad-hoc bandwidth math vs sanctioned forms.
// Lexed only, never compiled.

struct Cfg
{
    double networkGbps;
    double readMBps;
};

struct Nic
{
    double gbps;
};

double
badParenthesized(const Cfg &cfg, double bytes)
{
    // BAD: classic wire-time division with the rate in the divisor.
    return bytes * 8.0 / (cfg.networkGbps * 1e9);
}

double
badPrimaryChain(const Nic &nic, double bits)
{
    // BAD: bare member-chain divisor, no parentheses.
    return bits / nic.gbps;
}

double
badDiskRate(const Cfg &cfg, double mb)
{
    // BAD: disk stream rates belong in hw::DiskSpec too.
    return mb / (cfg.readMBps * 1e6);
}

double
goodNumeratorRate(const Cfg &cfg, double bytes)
{
    // GOOD: the rate is in the numerator — this computes a byte rate,
    // not a transfer time.
    double byte_rate = cfg.networkGbps * 1e9 / 8.0;
    return bytes / byte_rate;
}

double
goodLiteralDivision(double bytes)
{
    // GOOD: no rate-named identifier in the divisor.
    return bytes / 8.0;
}

double
suppressedCodecRate(const Cfg &cfg, double mb)
{
    // ndplint: allow(analytic-net-math): CPU codec rate, not a wire.
    return mb / (cfg.readMBps * 4.0);
}
