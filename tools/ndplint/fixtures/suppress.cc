// ndp-lint fixture: suppression handling.
// Not compiled — lexed by test_ndplint.cc. Every violation below is
// suppressed; tests expect zero findings and a matching suppressed
// count, except for the single deliberate miss at the end.

#include "sim/task.h"

namespace fixture {

sim::Task fireAndForget(int n);

void
inlineAllow()
{
    fireAndForget(1); // ndplint: allow(discarded-task): covered by test
}

void
lineAboveAllow()
{
    // ndplint: allow(discarded-task): the driver joins it elsewhere
    fireAndForget(2);
}

void
commentBlockAllow()
{
    // A multi-line rationale: the directive sits at the top of the
    // comment block, separated from the code by more commentary.
    // ndplint: allow(discarded-task): suppressed through the block
    // (this trailing line is still part of the same block)
    fireAndForget(3);
}

void
wildcardAllow()
{
    fireAndForget(4); // ndplint: allow(*): wildcard covers every rule
}

/**
 * Doc-comment form, directive inside the block comment.
 * ndplint: allow(coroutine-ref-param) — referent joined via s.run().
 */
sim::Task
suppressedCoroutine(int &counter)
{
    co_return;
}

void
wrongRuleAllow()
{
    // ndplint: allow(coroutine-ref-param): names the WRONG rule, so
    // the discarded-task finding below must survive.
    fireAndForget(5); // BAD: still reported
}

} // namespace fixture
