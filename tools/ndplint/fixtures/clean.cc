// ndp-lint fixture: idiomatic clean code — zero findings expected from
// every rule, even with path scoping disabled.
// Not compiled — lexed by test_ndplint.cc.

#include <map>
#include <vector>

#include "sim/random.h"
#include "sim/task.h"

namespace fixture {

sim::Task worker(int shard);

/** Coroutines take parameters by value; results are awaited/spawned. */
sim::Task
parent(sim::Simulator s)
{
    co_await worker(1);
    s.spawn(worker(2));
}

double
deterministicSum(const std::map<int, double> &ordered)
{
    double sum = 0.0;
    for (const auto &kv : ordered)
        sum += kv.second;
    return sum;
}

int
seededDraw()
{
    ndp::Rng rng(1234);
    std::vector<int> xs = {3, 1, 2};
    int best = 0;
    for (int x : xs) {
        if (x > best)
            best = x;
    }
    return best + static_cast<int>(rng.uniform() * 10.0);
}

/** Strings and comments must not trip token rules. */
const char *
decoys()
{
    // std::rand() in a comment is fine; so is time(nullptr).
    return "calls std::rand() and iterates an unordered_map";
}

} // namespace fixture
