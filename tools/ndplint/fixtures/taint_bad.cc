// ndp-lint fixture: determinism taint, BAD cases — one per sink kind.
// Not compiled — lexed by test_ndplint_flow.cc. Values derived from
// banned nondeterminism sources reach a Report field, a trace event,
// and a scheduler decision.

#include <chrono>
#include <unordered_map>

namespace fixture {

struct StageReport
{
    double seconds = 0.0;
};

// BAD (sink A): wall-clock time flows into a serialized report field
// through two assignments.
void
reportWallClock(StageReport &rep)
{
    auto t0 = std::chrono::steady_clock::now();
    double wall = seconds(t0);
    rep.seconds = wall;
}

// BAD (sink A, hash-order): a sum accumulated while iterating an
// unordered container depends on hash order even though every addend
// is deterministic.
void
reportHashOrder(StageReport &agg,
                const std::unordered_map<int, double> &perStore)
{
    double total = 0.0;
    for (const auto &kv : perStore)
        total += kv.second;
    agg.seconds = total;
}

// BAD (sink B): a global-PRNG draw serialized into the trace stream.
void
traceJitter(Tracer &trace)
{
    trace.instant("jitter", std::rand());
}

// BAD (sink C): a wall-clock delta drives how much the scheduler
// bills the job, so fair-share decisions diverge across runs.
void
chargeWallTime(Ctx &ctx)
{
    double start = 0.0;
    auto now = time(nullptr);
    ctx.sched->charge(ctx.job, now - start);
}

} // namespace fixture
