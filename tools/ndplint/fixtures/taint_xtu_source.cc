// ndp-lint fixture: determinism taint, cross-TU source half.
// Not compiled — lexed by test_ndplint_flow.cc together with
// taint_xtu_sink.cc. wallSeconds() reads the wall clock, so the
// symbol index marks it (and its transitive callers) tainted; the
// sink lives in the other file. Linted alone, this file has no sink
// and must produce zero determinism-taint findings.

namespace fixture {

double
wallSeconds()
{
    return static_cast<double>(time(nullptr));
}

double
jitterScale()
{
    return wallSeconds() * 0.5;
}

} // namespace fixture
