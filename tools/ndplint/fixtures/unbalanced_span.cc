// ndp-lint fixture: unbalanced-span.
// Not compiled — lexed by test_ndplint.cc. Bare Tracer span
// primitives must be flagged; container begin()/end() (empty argument
// lists) and the RAII guards must stay silent.

#include "obs/trace.h"

namespace fixture {

void
bareBegin(ndp::obs::Tracer *tr, int trk, double now)
{
    // BAD: open without RAII — leaks the span on early coroutine exit.
    tr->begin(trk, ndp::obs::Cat::Disk, "read", now);
}

void
bareEnd(ndp::obs::Tracer &tr, int trk, double now)
{
    tr.end(trk, now); // BAD: close without a matching guard
}

void
containerIterationIsFine(std::vector<int> &v)
{
    // Empty argument lists: container iterators, not span calls.
    for (auto it = v.begin(); it != v.end(); ++it)
        (void)*it;
    std::sort(v.begin(), v.end());
}

void
raiiGuardIsFine(ndp::obs::Tracer *tr, const ndp::sim::Simulator &s,
                int trk)
{
    ndp::obs::SpanGuard sg(tr, s, trk, ndp::obs::Cat::Cpu,
                           "decompress");
}

void
suppressedBegin(ndp::obs::Tracer *tr, int trk, double now)
{
    // ndplint: allow(unbalanced-span): fixture exercises suppression
    tr->begin(trk, ndp::obs::Cat::Gpu, "compute", now);
}

} // namespace fixture
