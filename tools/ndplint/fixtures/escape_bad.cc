// ndp-lint fixture: coroutine-lifetime escape analysis, BAD cases.
// Not compiled — lexed by test_ndplint_flow.cc. Every borrow below is
// read after (or across) a suspension point, so the referent may be
// destroyed while the coroutine is suspended.

#include <string_view>

#include "sim/task.h"

namespace fixture {

// BAD: both by-reference parameters are read after the co_await
// completes. `s` is only used inside the co_await expression itself
// (evaluated before suspension) and must stay silent.
sim::Task
refAfterAwait(sim::Simulator &s, const Config &cfg, double &out)
{
    co_await s.delay(1.0);
    out = cfg.rate;
}

// BAD: the string_view's backing buffer can die during the suspension.
sim::Task
viewAfterAwait(sim::Simulator &s, std::string_view name)
{
    co_await s.delay(1.0);
    log(name);
}

// BAD: by-reference lambda capture used after the lambda suspends.
void
spawnWorker(sim::Simulator &s, Stats &stats)
{
    s.spawn([&stats, &s]() -> sim::Task {
        co_await s.delay(2.0);
        stats.done += 1;
    }());
}

} // namespace fixture
