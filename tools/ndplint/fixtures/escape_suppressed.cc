// ndp-lint fixture: coroutine-escape with a rationaled suppression.
// Not compiled — lexed by test_ndplint_flow.cc. The escape is real in
// shape but the allow names the rule with a rationale, so the finding
// (anchored at the signature) is suppressed and the audit is clean.

#include "sim/task.h"

namespace fixture {

/* ndplint: allow(coroutine-escape, coroutine-ref-param: the dataflow
 * scope owns cfg and joins this task via s.run() before it dies) */
sim::Task
suppressedEscape(sim::Simulator &s, const Config &cfg)
{
    co_await s.delay(1.0);
    consume(cfg);
}

} // namespace fixture
