// ndp-lint fixture: scheduler/channel protocol checks, GOOD cases —
// zero findings. Not compiled — lexed by test_ndplint_flow.cc.

#include "sim/channel.h"
#include "sim/task.h"

namespace fixture {

// Yields at every batch boundary before charging: preemptable.
sim::Task
politeJob(Ctx &ctx)
{
    for (int i = 0; i < 8; ++i) {
        co_await ctx.sched->yield(ctx.job);
        co_await ctx.gpu.compute(0.01);
        ctx.sched->charge(ctx.job, 0.01);
    }
}

// close() strictly after the last put: the normal producer shape.
sim::Task
goodProducer(sim::Channel<int> &out)
{
    for (int i = 0; i < 4; ++i)
        co_await out.put(i);
    out.close();
}

// close() and put() on opposite branches are never sequenced.
sim::Task
branchyProducer(sim::Channel<int> &out, bool done)
{
    if (done) {
        out.close();
    } else {
        co_await out.put(7);
    }
}

// A channel that is both put into and drained locally.
sim::Task
drainedPair(sim::Simulator &s)
{
    sim::Channel<int> ch(s, 2);
    co_await ch.put(1);
    auto v = co_await ch.get();
    ch.close();
    use(v);
}

// Passing the channel to another function aliases it: a consumer may
// drain it, so never-drained must stay silent.
sim::Task
handsOff(sim::Simulator &s)
{
    sim::Channel<int> escapee(s, 2);
    co_await escapee.put(1);
    consumeLater(escapee);
}

} // namespace fixture
