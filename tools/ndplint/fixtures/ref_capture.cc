// ndp-lint fixture: coroutine-ref-capture.
// Not compiled — lexed by test_ndplint.cc.

#include "sim/task.h"

namespace fixture {

void
driver(sim::Simulator &s)
{
    double total = 0.0;
    int ticks = 0;

    // BAD: &total is captured by reference into a coroutine lambda.
    auto bad = [&total]() -> sim::Task {
        co_await something();
        total += 1.0;
    };

    // BAD: default by-reference capture, no parameter list at all.
    auto alsoBad = [&] { co_return; };

    // ok: by-value captures are copied into the lambda object and then
    // into the coroutine frame before the first suspension.
    auto fine = [total]() -> sim::Task {
        co_return;
    };

    // ok: init-capture by value (the `=` must not confuse the scanner).
    auto fineInit = [t = total]() -> sim::Task {
        co_return;
    };

    // ok: by-reference capture in a *plain* lambda, run synchronously.
    auto plain = [&ticks]() { ticks += 1; };
    plain();
    (void)bad;
    (void)alsoBad;
    (void)fine;
    (void)fineInit;
    (void)s;
}

} // namespace fixture
