// ndp-lint fixture: determinism taint, cross-TU sink half.
// Not compiled — lexed by test_ndplint_flow.cc together with
// taint_xtu_source.cc. The tainted function is defined in the other
// file; only the cross-file symbol index can connect the call here to
// its wall-clock source.

namespace fixture {

struct SyncReport
{
    double seconds = 0.0;
};

void
fillFromOtherTu(SyncReport &rep)
{
    rep.seconds = wallSeconds();
}

} // namespace fixture
