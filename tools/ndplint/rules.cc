#include "ndplint/rules.h"

#include <algorithm>

namespace ndp::lint {

namespace {

using Tokens = std::vector<Token>;

bool
is(const Token &t, std::string_view text)
{
    return t.text == text;
}

bool
isIdent(const Token &t)
{
    return t.kind == Tok::Identifier;
}

bool
anyOf(const Token &t, std::initializer_list<std::string_view> set)
{
    for (auto s : set)
        if (t.text == s)
            return true;
    return false;
}

/** Index of the punct matching the opener at @p i, or -1. */
int
matchForward(const Tokens &toks, int i)
{
    std::string_view open = toks[static_cast<size_t>(i)].text;
    std::string_view close = open == "(" ? ")" : open == "[" ? "]" : "}";
    int depth = 0;
    for (int k = i; k < static_cast<int>(toks.size()); ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == open)
            ++depth;
        else if (t.text == close && --depth == 0)
            return k;
    }
    return -1;
}

/** Index of the punct matching the closer at @p i, or -1. */
int
matchBackward(const Tokens &toks, int i)
{
    std::string_view close = toks[static_cast<size_t>(i)].text;
    std::string_view open = close == ")" ? "(" : close == "]" ? "[" : "{";
    int depth = 0;
    for (int k = i; k >= 0; --k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == close)
            ++depth;
        else if (t.text == open && --depth == 0)
            return k;
    }
    return -1;
}

/**
 * Starting at a `<` at @p i, skip balanced template arguments.
 * @return index just past the closing `>`, or -1 if this `<` does not
 * look like a template-argument list (e.g. a comparison).
 */
int
skipAngles(const Tokens &toks, int i)
{
    int depth = 0;
    for (int k = i; k < static_cast<int>(toks.size()); ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (is(t, "<")) {
            ++depth;
        } else if (is(t, ">")) {
            if (--depth == 0)
                return k + 1;
        } else if (is(t, ">>")) {
            depth -= 2;
            if (depth <= 0)
                return k + 1;
        } else if (anyOf(t, {";", "{", "}"}) || t.kind == Tok::Eof) {
            return -1; // statement boundary: not a template list
        }
    }
    return -1;
}

// ---------------------------------------------------------------------------
// Function/lambda body discovery (shared by the coroutine rules).
// ---------------------------------------------------------------------------

struct FunctionInfo
{
    int paramBegin = -1;   ///< token index of the '(' (or -1)
    int paramEnd = -1;     ///< token index of the ')'
    int captureBegin = -1; ///< token index of '[' for lambdas
    int captureEnd = -1;   ///< token index of ']' for lambdas
    int sigStartLine = 0;  ///< first line of the signature
    int sigLine = 0;       ///< line of the parameter list
    bool hasCo = false;    ///< body contains co_await/co_return/co_yield
    bool isLambda = false;
    std::string name;
};

/** Tokens that may legally sit between `)` and the body `{`. */
bool
isTrailingSigToken(const Token &t)
{
    return isIdent(t) ||
           anyOf(t, {"::", "->", "*", "&", "&&", "<", ">", "[", "]"});
}

/** Control-flow keywords whose parens are not parameter lists. */
bool
isControlKeyword(const Token &t)
{
    return anyOf(t, {"if", "for", "while", "switch", "catch", "constexpr"});
}

/**
 * Walk the token stream, building one FunctionInfo per function or
 * lambda body, attributing co_await/co_return/co_yield to the
 * innermost enclosing function (a coroutine lambda inside a plain
 * function makes only the lambda a coroutine).
 */
std::vector<FunctionInfo>
scanFunctions(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::vector<FunctionInfo> funcs;
    std::vector<int> stack; // FunctionInfo index, or -1 for plain blocks

    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (isIdent(t) &&
            anyOf(t, {"co_await", "co_return", "co_yield"})) {
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (*it >= 0) {
                    funcs[static_cast<size_t>(*it)].hasCo = true;
                    break;
                }
            }
            continue;
        }
        if (t.kind != Tok::Punct)
            continue;
        if (is(t, "}")) {
            if (!stack.empty())
                stack.pop_back();
            continue;
        }
        if (!is(t, "{"))
            continue;

        // Classify this '{': function/lambda body or plain block.
        FunctionInfo fn;
        bool isFunction = false;
        int k = i - 1;
        while (k >= 0 && isTrailingSigToken(toks[static_cast<size_t>(k)]))
            --k;
        // `[caps] {` lambda without a parameter list.
        if (k + 1 <= i - 1 &&
            is(toks[static_cast<size_t>(i - 1)], "]")) {
            int open = matchBackward(toks, i - 1);
            if (open >= 0 && open > 0 &&
                !is(toks[static_cast<size_t>(open - 1)], "[")) {
                fn.isLambda = true;
                fn.captureBegin = open;
                fn.captureEnd = i - 1;
                fn.sigLine = toks[static_cast<size_t>(open)].line;
                fn.sigStartLine = fn.sigLine;
                fn.name = "<lambda>";
                isFunction = true;
            }
        }
        while (!isFunction && k >= 0 &&
               is(toks[static_cast<size_t>(k)], ")")) {
            int open = matchBackward(toks, k);
            if (open <= 0)
                break;
            const Token &before = toks[static_cast<size_t>(open - 1)];
            // noexcept(...) / decltype(...) trailers: keep walking.
            if (anyOf(before, {"noexcept", "decltype", "requires"})) {
                k = open - 2;
                while (k >= 0 &&
                       isTrailingSigToken(toks[static_cast<size_t>(k)]))
                    --k;
                continue;
            }
            if (isControlKeyword(before))
                break; // if/for/while/... block
            fn.paramBegin = open;
            fn.paramEnd = k;
            fn.sigLine = toks[static_cast<size_t>(open)].line;
            if (is(before, "]")) {
                int capOpen = matchBackward(toks, open - 1);
                if (capOpen >= 0) {
                    fn.isLambda = true;
                    fn.captureBegin = capOpen;
                    fn.captureEnd = open - 1;
                    fn.name = "<lambda>";
                    fn.sigStartLine =
                        toks[static_cast<size_t>(capOpen)].line;
                }
            } else if (isIdent(before)) {
                fn.name = before.text;
            }
            if (!fn.isLambda) {
                // Signature start: walk back over the name chain and a
                // simple return type so a suppression placed above the
                // whole signature is honoured.
                int s = open - 1;
                while (s >= 0 &&
                       (isIdent(toks[static_cast<size_t>(s)]) ||
                        anyOf(toks[static_cast<size_t>(s)],
                              {"::", "~", "*", "&", "&&", "<", ">", "[",
                               "]"})))
                    --s;
                fn.sigStartLine = toks[static_cast<size_t>(s + 1)].line;
            }
            isFunction = true;
        }
        if (isFunction)
            stack.push_back(static_cast<int>(funcs.size()));
        else
            stack.push_back(-1);
        if (isFunction)
            funcs.push_back(fn);
    }
    return funcs;
}

// ---------------------------------------------------------------------------
// Unordered-container tracking (shared by the determinism rules).
// ---------------------------------------------------------------------------

bool
isUnorderedType(const Token &t)
{
    return anyOf(t, {"unordered_map", "unordered_set", "unordered_multimap",
                     "unordered_multiset"});
}

/** Variable names declared with an unordered container type. */
std::set<std::string>
collectUnorderedVars(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::set<std::string> vars;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
        if (!isUnorderedType(toks[static_cast<size_t>(i)]))
            continue;
        int j = i + 1;
        if (j < static_cast<int>(toks.size()) &&
            is(toks[static_cast<size_t>(j)], "<")) {
            j = skipAngles(toks, j);
            if (j < 0)
                continue;
        }
        while (j < static_cast<int>(toks.size()) &&
               anyOf(toks[static_cast<size_t>(j)], {"&", "*", "const"}))
            ++j;
        if (j < static_cast<int>(toks.size()) &&
            isIdent(toks[static_cast<size_t>(j)]))
            vars.insert(toks[static_cast<size_t>(j)].text);
    }
    return vars;
}

struct RangeForLoop
{
    int line = 0;          ///< line of the `for`
    std::string var;       ///< iterated variable (or type) name
    int bodyBegin = 0;     ///< first token of the loop body
    int bodyEnd = 0;       ///< one past the last body token
};

/** Range-for loops whose range expression names an unordered var. */
std::vector<RangeForLoop>
findUnorderedRangeFors(const SourceFile &f,
                       const std::set<std::string> &vars)
{
    const Tokens &toks = f.tokens;
    std::vector<RangeForLoop> loops;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
        if (!is(toks[static_cast<size_t>(i)], "for") ||
            !is(toks[static_cast<size_t>(i + 1)], "("))
            continue;
        int close = matchForward(toks, i + 1);
        if (close < 0)
            continue;
        // Find the range-for ':' at top parenthesis level.
        int colon = -1;
        int depth = 0;
        for (int k = i + 2; k < close; ++k) {
            const Token &t = toks[static_cast<size_t>(k)];
            if (anyOf(t, {"(", "[", "{"}))
                ++depth;
            else if (anyOf(t, {")", "]", "}"}))
                --depth;
            else if (depth == 0 && is(t, ";"))
                break; // classic for loop
            else if (depth == 0 && is(t, ":")) {
                colon = k;
                break;
            }
        }
        if (colon < 0)
            continue;
        std::string hit;
        for (int k = colon + 1; k < close; ++k) {
            const Token &t = toks[static_cast<size_t>(k)];
            if (isIdent(t) &&
                (vars.count(t.text) != 0 || isUnorderedType(t))) {
                hit = t.text;
                break;
            }
        }
        if (hit.empty())
            continue;
        RangeForLoop loop;
        loop.line = toks[static_cast<size_t>(i)].line;
        loop.var = hit;
        int b = close + 1;
        if (b < static_cast<int>(toks.size()) &&
            is(toks[static_cast<size_t>(b)], "{")) {
            int bodyClose = matchForward(toks, b);
            loop.bodyBegin = b + 1;
            loop.bodyEnd = bodyClose < 0
                               ? static_cast<int>(toks.size())
                               : bodyClose;
        } else {
            loop.bodyBegin = b;
            int k = b;
            int d = 0;
            while (k < static_cast<int>(toks.size())) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (anyOf(t, {"(", "[", "{"}))
                    ++d;
                else if (anyOf(t, {")", "]", "}"}))
                    --d;
                else if (d == 0 && is(t, ";"))
                    break;
                ++k;
            }
            loop.bodyEnd = k;
        }
        loops.push_back(loop);
    }
    return loops;
}

/** Variable names declared float or double in this file. */
std::set<std::string>
collectFloatVars(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::set<std::string> vars;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
        if (!anyOf(toks[static_cast<size_t>(i)], {"float", "double"}))
            continue;
        int j = i + 1;
        while (j < static_cast<int>(toks.size()) &&
               anyOf(toks[static_cast<size_t>(j)], {"&", "*"}))
            ++j;
        if (isIdent(toks[static_cast<size_t>(j)]))
            vars.insert(toks[static_cast<size_t>(j)].text);
    }
    return vars;
}

bool
pathInSimOrCore(std::string_view path)
{
    std::string p(path);
    std::replace(p.begin(), p.end(), '\\', '/');
    // "src/core" covers its subdirectories too — notably
    // src/core/sched, whose scheduler decisions feed every multi-job
    // run and must obey the same determinism contract.
    return p.find("src/sim") != std::string::npos ||
           p.find("src/core") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

class DiscardedTaskRule final : public Rule
{
  public:
    std::string name() const override { return "discarded-task"; }

    std::string
    description() const override
    {
        return "call to a Task-returning function whose result is "
               "neither co_awaited, spawned, nor bound: the coroutine "
               "is created suspended and destroyed without ever "
               "running (names also declared with a non-Task return "
               "type are skipped)";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        for (int i = 1; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!isIdent(t) || !ctx.returnsTask(t.text))
                continue;
            if (!is(toks[static_cast<size_t>(i + 1)], "("))
                continue;
            int close = matchForward(toks, i + 1);
            if (close < 0 ||
                close + 1 >= static_cast<int>(toks.size()))
                continue;
            // Result must be discarded as a full statement.
            if (!is(toks[static_cast<size_t>(close + 1)], ";"))
                continue;
            // Walk back over object/namespace qualifiers.
            int p = i - 1;
            while (p >= 1 &&
                   anyOf(toks[static_cast<size_t>(p)],
                         {"::", ".", "->"}))
                p -= 2;
            // A preceding type name (declaration), `co_await`, `=`,
            // `return`, `(`, or `,` all mean the result is consumed;
            // only statement-start positions are discards.
            bool stmtStart =
                p < 0 ||
                anyOf(toks[static_cast<size_t>(p)],
                      {";", "{", "}", ")", ":", "else", "do"});
            if (!stmtStart)
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = t.line;
            fd.endLine = toks[static_cast<size_t>(close + 1)].line;
            fd.message = "result of Task-returning call '" + t.text +
                         "' is discarded; the process never runs "
                         "(co_await it, Simulator::spawn it, or bind "
                         "it)";
            out.push_back(std::move(fd));
        }
    }
};

class CoroutineRefParamRule final : public Rule
{
  public:
    std::string name() const override { return "coroutine-ref-param"; }

    std::string
    description() const override
    {
        return "reference parameter on a coroutine: the reference is "
               "captured into the coroutine frame and dangles if the "
               "argument dies before the frame finishes (pass by "
               "value or by pointer to an owner that outlives the "
               "run)";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        for (const FunctionInfo &fn : scanFunctions(f)) {
            if (!fn.hasCo || fn.paramBegin < 0)
                continue;
            std::vector<std::string> refs;
            int depth = 0;
            bool inDefault = false;
            for (int k = fn.paramBegin + 1; k < fn.paramEnd; ++k) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (anyOf(t, {"(", "[", "{"})) {
                    ++depth;
                    continue;
                }
                if (anyOf(t, {")", "]", "}"})) {
                    --depth;
                    continue;
                }
                if (depth != 0)
                    continue;
                if (is(t, "="))
                    inDefault = true;
                else if (is(t, ","))
                    inDefault = false;
                if (inDefault || !anyOf(t, {"&", "&&"}))
                    continue;
                const Token &nx = toks[static_cast<size_t>(k + 1)];
                if (isIdent(nx) && k + 2 < fn.paramEnd + 1 &&
                    anyOf(toks[static_cast<size_t>(k + 2)],
                          {",", ")", "=", "["}))
                    refs.push_back(nx.text);
                else if (anyOf(nx, {",", ")"}))
                    refs.push_back("<unnamed>");
            }
            if (refs.empty())
                continue;
            std::string list;
            for (const auto &r : refs)
                list += (list.empty() ? "" : ", ") + r;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = fn.sigStartLine;
            fd.endLine = toks[static_cast<size_t>(fn.paramEnd)].line;
            fd.message = "coroutine '" + fn.name +
                         "' takes reference parameter(s) [" + list +
                         "]; references dangle if the referent dies "
                         "before the coroutine completes";
            out.push_back(std::move(fd));
        }
    }
};

class CoroutineRefCaptureRule final : public Rule
{
  public:
    std::string name() const override { return "coroutine-ref-capture"; }

    std::string
    description() const override
    {
        return "by-reference lambda capture in a coroutine lambda: "
               "captures live in the lambda object, which is "
               "destroyed at the first suspension point of a "
               "coroutine, leaving the frame with dangling "
               "references";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        for (const FunctionInfo &fn : scanFunctions(f)) {
            if (!fn.hasCo || !fn.isLambda || fn.captureBegin < 0)
                continue;
            std::vector<std::string> caps;
            bool inInit = false;
            for (int k = fn.captureBegin + 1; k < fn.captureEnd; ++k) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (is(t, "="))
                    inInit = (k != fn.captureBegin + 1);
                else if (is(t, ","))
                    inInit = false;
                if (inInit || !is(t, "&"))
                    continue;
                const Token &nx = toks[static_cast<size_t>(k + 1)];
                if (isIdent(nx))
                    caps.push_back("&" + nx.text);
                else if (anyOf(nx, {",", "]"}))
                    caps.push_back("&");
            }
            if (caps.empty())
                continue;
            std::string list;
            for (const auto &c : caps)
                list += (list.empty() ? "" : ", ") + c;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = fn.sigStartLine;
            fd.endLine = toks[static_cast<size_t>(fn.captureEnd)].line;
            fd.message = "coroutine lambda captures by reference [" +
                         list +
                         "]; the lambda object (and its captures) "
                         "may be destroyed before the coroutine body "
                         "finishes";
            out.push_back(std::move(fd));
        }
    }
};

class BannedNondeterminismRule final : public Rule
{
  public:
    std::string name() const override { return "banned-nondeterminism"; }

    std::string
    description() const override
    {
        return "wall-clock/global-PRNG/unordered-iteration inside "
               "src/sim + src/core: event order and float "
               "accumulation become run- or hash-order dependent; "
               "use sim::Simulator::now(), the seeded Rng "
               "(sim/random.h), and ordered containers";
    }

    bool
    appliesTo(std::string_view path) const override
    {
        return pathInSimOrCore(path);
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        auto report = [&](int line, const std::string &what,
                          const std::string &fix) {
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = line;
            fd.endLine = line;
            fd.message = what + " is nondeterministic here; " + fix;
            out.push_back(std::move(fd));
        };
        for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!isIdent(t))
                continue;
            const Token &prev =
                i > 0 ? toks[static_cast<size_t>(i - 1)] : Token{};
            const Token &next = toks[static_cast<size_t>(i + 1)];
            bool member = anyOf(prev, {".", "->"});
            if (anyOf(t, {"rand", "srand"}) && is(next, "(") && !member) {
                report(t.line, "std::" + t.text + "()",
                       "seed an ndp::Rng (sim/random.h) instead");
            } else if (is(t, "time") && is(next, "(") && !member) {
                // std::time / ::time / time — all the C wall clock.
                report(t.line, "time()",
                       "use sim::Simulator::now() for simulated time");
            } else if (anyOf(t, {"system_clock", "steady_clock",
                                 "high_resolution_clock"})) {
                report(t.line, "std::chrono::" + t.text,
                       "wall-clock reads vary per run; use "
                       "sim::Simulator::now()");
            } else if (is(t, "random_device") && !member) {
                report(t.line, "std::random_device",
                       "seed an ndp::Rng with a fixed seed instead");
            }
        }
        auto vars = collectUnorderedVars(f);
        for (const RangeForLoop &loop : findUnorderedRangeFors(f, vars))
            report(loop.line,
                   "iteration over unordered container '" + loop.var +
                       "'",
                   "hash order varies across libstdc++ versions; use "
                   "an ordered container or sort the keys first");
    }
};

class FloatAccumOrderRule final : public Rule
{
  public:
    std::string name() const override { return "float-accum-order"; }

    std::string
    description() const override
    {
        return "float/double += inside a range-for over an unordered "
               "container: the sum depends on hash iteration order, "
               "so reports stop being bit-identical across runs and "
               "library versions";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        auto unordered = collectUnorderedVars(f);
        auto floats = collectFloatVars(f);
        for (const RangeForLoop &loop :
             findUnorderedRangeFors(f, unordered)) {
            for (int k = loop.bodyBegin; k + 1 < loop.bodyEnd; ++k) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (!isIdent(t) || floats.count(t.text) == 0)
                    continue;
                if (!is(toks[static_cast<size_t>(k + 1)], "+="))
                    continue;
                Finding fd;
                fd.rule = name();
                fd.path = f.path;
                fd.line = t.line;
                fd.endLine = t.line;
                fd.message =
                    "'" + t.text + " +=' accumulates floating point "
                    "in hash order (iterating '" + loop.var +
                    "'); accumulate over a sorted sequence instead";
                out.push_back(std::move(fd));
            }
        }
    }
};

class AnalyticNetMathRule final : public Rule
{
  public:
    std::string name() const override { return "analytic-net-math"; }

    std::string
    description() const override
    {
        return "ad-hoc `bytes / bandwidth` division outside src/net + "
               "src/hw re-derives transfer physics the NetFabric owns "
               "and silently ignores link contention; route the bytes "
               "through net::NetFabric::transfer()/serviceTime(), the "
               "net/estimate.h helpers, or a hw spec method";
    }

    bool
    appliesTo(std::string_view path) const override
    {
        std::string p(path);
        std::replace(p.begin(), p.end(), '\\', '/');
        // The fabric and the device-spec formulas are the two
        // sanctioned homes for rate arithmetic.
        return p.find("src/net/") == std::string::npos &&
               p.find("src/hw/") == std::string::npos;
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
            if (!is(toks[static_cast<size_t>(i)], "/"))
                continue;
            std::string bw = divisorBandwidthName(toks, i + 1);
            if (bw.empty())
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = toks[static_cast<size_t>(i)].line;
            fd.endLine = fd.line;
            fd.message =
                "division by bandwidth '" + bw +
                "' computes a wire time analytically, bypassing the "
                "network fabric's contention model; use "
                "net::NetFabric::transfer()/serviceTime() or a "
                "net/estimate.h helper instead";
            out.push_back(std::move(fd));
        }
    }

  private:
    /** True for identifiers that carry a link/IO rate unit. */
    static bool
    isBandwidthName(const std::string &s)
    {
        for (std::string_view unit :
             {"Gbps", "GBps", "gbps", "Mbps", "MBps", "mbps"})
            if (s.find(unit) != std::string::npos)
                return true;
        return false;
    }

    /**
     * The first rate-named identifier inside the divisor starting at
     * token @p j: either a parenthesized expression (checked whole) or
     * a primary chain `a.b->c::d`. Rates appearing only in the
     * numerator (e.g. `gbps * 1e9 / 8.0`) are fine — that computes a
     * byte rate, not a transfer time.
     */
    static std::string
    divisorBandwidthName(const Tokens &toks, int j)
    {
        if (j >= static_cast<int>(toks.size()))
            return {};
        if (is(toks[static_cast<size_t>(j)], "(")) {
            int close = matchForward(toks, j);
            if (close < 0)
                return {};
            for (int k = j + 1; k < close; ++k) {
                const Token &d = toks[static_cast<size_t>(k)];
                if (isIdent(d) && isBandwidthName(d.text))
                    return d.text;
            }
            return {};
        }
        for (int k = j; k < static_cast<int>(toks.size()); ++k) {
            const Token &d = toks[static_cast<size_t>(k)];
            if (isIdent(d)) {
                if (isBandwidthName(d.text))
                    return d.text;
            } else if (!anyOf(d, {".", "->", "::"})) {
                break;
            }
        }
        return {};
    }
};

/**
 * Bare Tracer::begin()/end() calls outside src/obs. The obs span
 * primitives take arguments (a track id at minimum); a span opened
 * without a SpanGuard leaks open when the enclosing coroutine exits
 * early (crash path, channel close), corrupting the track's nesting.
 * Container begin()/end() take no arguments and stay silent.
 */
class UnbalancedSpanRule final : public Rule
{
  public:
    std::string name() const override { return "unbalanced-span"; }

    std::string
    description() const override
    {
        return "bare begin(...)/end(...) span calls outside src/obs: "
               "a span opened without RAII leaks open when a "
               "coroutine exits early, corrupting its track's "
               "nesting; use obs::SpanGuard / obs::AsyncSpanGuard";
    }

    bool
    appliesTo(std::string_view path) const override
    {
        std::string p(path);
        std::replace(p.begin(), p.end(), '\\', '/');
        // The primitives live in src/obs; tools/ parses traces and
        // never holds a Tracer.
        return p.find("src/obs/") == std::string::npos &&
               p.find("tools/") == std::string::npos;
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        for (int i = 1; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!isIdent(t) || !anyOf(t, {"begin", "end"}))
                continue;
            if (!anyOf(toks[static_cast<size_t>(i - 1)], {".", "->"}))
                continue;
            if (!is(toks[static_cast<size_t>(i + 1)], "("))
                continue;
            // Empty argument list: container begin()/end(), fine.
            int close = matchForward(toks, i + 1);
            if (close < 0 || close == i + 2)
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = t.line;
            fd.endLine = t.line;
            fd.message =
                "'" + std::string(t.text) +
                "(...)' opens/closes a trace span without RAII; if "
                "the coroutine exits early the span never closes — "
                "use obs::SpanGuard / obs::AsyncSpanGuard instead";
            out.push_back(std::move(fd));
        }
    }
};

} // namespace

void
collectTaskFunctions(const SourceFile &f, AnalysisContext &ctx)
{
    const Tokens &toks = f.tokens;
    for (int i = 0; i + 2 < static_cast<int>(toks.size()); ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (!isIdent(t))
            continue;
        // `Task name(` — possibly with `Cls::` qualifiers on the name.
        if (t.text == "Task") {
            int j = i + 1;
            if (!isIdent(toks[static_cast<size_t>(j)]))
                continue;
            std::string last = toks[static_cast<size_t>(j)].text;
            ++j;
            while (j + 1 < static_cast<int>(toks.size()) &&
                   is(toks[static_cast<size_t>(j)], "::") &&
                   isIdent(toks[static_cast<size_t>(j + 1)])) {
                last = toks[static_cast<size_t>(j + 1)].text;
                j += 2;
            }
            if (j < static_cast<int>(toks.size()) &&
                is(toks[static_cast<size_t>(j)], "("))
                ctx.taskFunctions.insert(last);
            continue;
        }
        // `Other name(` — a declaration with a different return type
        // makes `name` ambiguous for discarded-task.
        const Token &y = toks[static_cast<size_t>(i + 1)];
        if (isIdent(y) && is(toks[static_cast<size_t>(i + 2)], "(") &&
            !anyOf(t, {"return", "co_return", "co_await", "co_yield",
                       "new", "delete", "throw", "case", "goto", "else",
                       "operator", "Task"}))
            ctx.ambiguousFunctions.insert(y.text);
    }
}

const std::vector<std::unique_ptr<Rule>> &
allRules()
{
    static const std::vector<std::unique_ptr<Rule>> rules = [] {
        std::vector<std::unique_ptr<Rule>> r;
        r.push_back(std::make_unique<DiscardedTaskRule>());
        r.push_back(std::make_unique<CoroutineRefParamRule>());
        r.push_back(std::make_unique<CoroutineRefCaptureRule>());
        r.push_back(std::make_unique<BannedNondeterminismRule>());
        r.push_back(std::make_unique<FloatAccumOrderRule>());
        r.push_back(std::make_unique<AnalyticNetMathRule>());
        r.push_back(std::make_unique<UnbalancedSpanRule>());
        return r;
    }();
    return rules;
}

} // namespace ndp::lint
