#include "ndplint/rules.h"

#include "ndplint/analysis/model.h"

namespace ndp::lint {

namespace {

using Tokens = std::vector<Token>;

/** Variable names declared float or double in this file. */
std::set<std::string>
collectFloatVars(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::set<std::string> vars;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
        if (!tokAnyOf(toks[static_cast<size_t>(i)], {"float", "double"}))
            continue;
        int j = i + 1;
        while (j < static_cast<int>(toks.size()) &&
               tokAnyOf(toks[static_cast<size_t>(j)], {"&", "*"}))
            ++j;
        if (tokIsIdent(toks[static_cast<size_t>(j)]))
            vars.insert(toks[static_cast<size_t>(j)].text);
    }
    return vars;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

class DiscardedTaskRule final : public Rule
{
  public:
    std::string name() const override { return "discarded-task"; }

    std::string
    description() const override
    {
        return "call to a Task-returning function whose result is "
               "neither co_awaited, spawned, nor bound: the coroutine "
               "is created suspended and destroyed without ever "
               "running (names also declared with a non-Task return "
               "type are skipped)";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        for (int i = 1; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!tokIsIdent(t) || !ctx.returnsTask(t.text))
                continue;
            if (!tokIs(toks[static_cast<size_t>(i + 1)], "("))
                continue;
            int close = matchForward(toks, i + 1);
            if (close < 0 ||
                close + 1 >= static_cast<int>(toks.size()))
                continue;
            // Result must be discarded as a full statement.
            if (!tokIs(toks[static_cast<size_t>(close + 1)], ";"))
                continue;
            // Walk back over object/namespace qualifiers.
            int p = i - 1;
            while (p >= 1 &&
                   tokAnyOf(toks[static_cast<size_t>(p)],
                            {"::", ".", "->"}))
                p -= 2;
            // A preceding type name (declaration), `co_await`, `=`,
            // `return`, `(`, or `,` all mean the result is consumed;
            // only statement-start positions are discards.
            bool stmtStart =
                p < 0 ||
                tokAnyOf(toks[static_cast<size_t>(p)],
                         {";", "{", "}", ")", ":", "else", "do"});
            if (!stmtStart)
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = t.line;
            fd.endLine = toks[static_cast<size_t>(close + 1)].line;
            fd.message = "result of Task-returning call '" + t.text +
                         "' is discarded; the process never runs "
                         "(co_await it, Simulator::spawn it, or bind "
                         "it)";
            out.push_back(std::move(fd));
        }
    }
};

class CoroutineRefParamRule final : public Rule
{
  public:
    std::string name() const override { return "coroutine-ref-param"; }

    std::string
    description() const override
    {
        return "reference parameter on a coroutine: the reference is "
               "captured into the coroutine frame and dangles if the "
               "argument dies before the frame finishes (pass by "
               "value or by pointer to an owner that outlives the "
               "run)";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        FileModel scratch;
        for (const FunctionModel &fn : modelFor(f, ctx, scratch).functions) {
            if (!fn.hasCo || fn.paramBegin < 0)
                continue;
            std::vector<std::string> refs;
            for (const ParamDecl &p : fn.params) {
                if (!p.byRef)
                    continue;
                refs.push_back(p.name.empty() ? "<unnamed>" : p.name);
            }
            if (refs.empty())
                continue;
            std::string list;
            for (const auto &r : refs)
                list += (list.empty() ? "" : ", ") + r;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = fn.sigStartLine;
            fd.endLine = toks[static_cast<size_t>(fn.paramEnd)].line;
            fd.message = "coroutine '" + fn.name +
                         "' takes reference parameter(s) [" + list +
                         "]; references dangle if the referent dies "
                         "before the coroutine completes";
            out.push_back(std::move(fd));
        }
    }
};

class CoroutineRefCaptureRule final : public Rule
{
  public:
    std::string name() const override { return "coroutine-ref-capture"; }

    std::string
    description() const override
    {
        return "by-reference lambda capture in a coroutine lambda: "
               "captures live in the lambda object, which is "
               "destroyed at the first suspension point of a "
               "coroutine, leaving the frame with dangling "
               "references";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        FileModel scratch;
        for (const FunctionModel &fn : modelFor(f, ctx, scratch).functions) {
            if (!fn.hasCo || !fn.isLambda || fn.captureBegin < 0 ||
                fn.refCaptures.empty())
                continue;
            std::string list;
            for (const auto &c : fn.refCaptures)
                list += (list.empty() ? "" : ", ") + c;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = fn.sigStartLine;
            fd.endLine = toks[static_cast<size_t>(fn.captureEnd)].line;
            fd.message = "coroutine lambda captures by reference [" +
                         list +
                         "]; the lambda object (and its captures) "
                         "may be destroyed before the coroutine body "
                         "finishes";
            out.push_back(std::move(fd));
        }
    }
};

class BannedNondeterminismRule final : public Rule
{
  public:
    std::string name() const override { return "banned-nondeterminism"; }

    std::string
    description() const override
    {
        return "wall-clock/global-PRNG/unordered-iteration inside "
               "src/sim + src/core: event order and float "
               "accumulation become run- or hash-order dependent; "
               "use sim::Simulator::now(), the seeded Rng "
               "(sim/random.h), and ordered containers";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        auto report = [&](int line, const std::string &what,
                          const std::string &fix) {
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = line;
            fd.endLine = line;
            fd.message = what + " is nondeterministic here; " + fix;
            out.push_back(std::move(fd));
        };
        for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!tokIsIdent(t))
                continue;
            const Token &prev =
                i > 0 ? toks[static_cast<size_t>(i - 1)] : Token{};
            const Token &next = toks[static_cast<size_t>(i + 1)];
            bool member = tokAnyOf(prev, {".", "->"});
            if (tokAnyOf(t, {"rand", "srand"}) && tokIs(next, "(") &&
                !member) {
                report(t.line, "std::" + t.text + "()",
                       "seed an ndp::Rng (sim/random.h) instead");
            } else if (tokIs(t, "time") && tokIs(next, "(") && !member) {
                // std::time / ::time / time — all the C wall clock.
                report(t.line, "time()",
                       "use sim::Simulator::now() for simulated time");
            } else if (tokAnyOf(t, {"system_clock", "steady_clock",
                                    "high_resolution_clock"})) {
                report(t.line, "std::chrono::" + t.text,
                       "wall-clock reads vary per run; use "
                       "sim::Simulator::now()");
            } else if (tokIs(t, "random_device") && !member) {
                report(t.line, "std::random_device",
                       "seed an ndp::Rng with a fixed seed instead");
            }
        }
        auto vars = collectUnorderedVars(f);
        for (const RangeForLoop &loop : findUnorderedRangeFors(f, vars))
            report(loop.line,
                   "iteration over unordered container '" + loop.var +
                       "'",
                   "hash order varies across libstdc++ versions; use "
                   "an ordered container or sort the keys first");
    }
};

class FloatAccumOrderRule final : public Rule
{
  public:
    std::string name() const override { return "float-accum-order"; }

    std::string
    description() const override
    {
        return "float/double += inside a range-for over an unordered "
               "container: the sum depends on hash iteration order, "
               "so reports stop being bit-identical across runs and "
               "library versions";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        auto unordered = collectUnorderedVars(f);
        auto floats = collectFloatVars(f);
        for (const RangeForLoop &loop :
             findUnorderedRangeFors(f, unordered)) {
            for (int k = loop.bodyBegin; k + 1 < loop.bodyEnd; ++k) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (!tokIsIdent(t) || floats.count(t.text) == 0)
                    continue;
                if (!tokIs(toks[static_cast<size_t>(k + 1)], "+="))
                    continue;
                Finding fd;
                fd.rule = name();
                fd.path = f.path;
                fd.line = t.line;
                fd.endLine = t.line;
                fd.message =
                    "'" + t.text + " +=' accumulates floating point "
                    "in hash order (iterating '" + loop.var +
                    "'); accumulate over a sorted sequence instead";
                out.push_back(std::move(fd));
            }
        }
    }
};

class AnalyticNetMathRule final : public Rule
{
  public:
    std::string name() const override { return "analytic-net-math"; }

    std::string
    description() const override
    {
        return "ad-hoc `bytes / bandwidth` division outside src/net + "
               "src/hw re-derives transfer physics the NetFabric owns "
               "and silently ignores link contention; route the bytes "
               "through net::NetFabric::transfer()/serviceTime(), the "
               "net/estimate.h helpers, or a hw spec method";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
            if (!tokIs(toks[static_cast<size_t>(i)], "/"))
                continue;
            std::string bw = divisorBandwidthName(toks, i + 1);
            if (bw.empty())
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = toks[static_cast<size_t>(i)].line;
            fd.endLine = fd.line;
            fd.message =
                "division by bandwidth '" + bw +
                "' computes a wire time analytically, bypassing the "
                "network fabric's contention model; use "
                "net::NetFabric::transfer()/serviceTime() or a "
                "net/estimate.h helper instead";
            out.push_back(std::move(fd));
        }
    }

  private:
    /** True for identifiers that carry a link/IO rate unit. */
    static bool
    isBandwidthName(const std::string &s)
    {
        for (std::string_view unit :
             {"Gbps", "GBps", "gbps", "Mbps", "MBps", "mbps"})
            if (s.find(unit) != std::string::npos)
                return true;
        return false;
    }

    /**
     * The first rate-named identifier inside the divisor starting at
     * token @p j: either a parenthesized expression (checked whole) or
     * a primary chain `a.b->c::d`. Rates appearing only in the
     * numerator (e.g. `gbps * 1e9 / 8.0`) are fine — that computes a
     * byte rate, not a transfer time.
     */
    static std::string
    divisorBandwidthName(const Tokens &toks, int j)
    {
        if (j >= static_cast<int>(toks.size()))
            return {};
        if (tokIs(toks[static_cast<size_t>(j)], "(")) {
            int close = matchForward(toks, j);
            if (close < 0)
                return {};
            for (int k = j + 1; k < close; ++k) {
                const Token &d = toks[static_cast<size_t>(k)];
                if (tokIsIdent(d) && isBandwidthName(d.text))
                    return d.text;
            }
            return {};
        }
        for (int k = j; k < static_cast<int>(toks.size()); ++k) {
            const Token &d = toks[static_cast<size_t>(k)];
            if (tokIsIdent(d)) {
                if (isBandwidthName(d.text))
                    return d.text;
            } else if (!tokAnyOf(d, {".", "->", "::"})) {
                break;
            }
        }
        return {};
    }
};

/**
 * Bare Tracer::begin()/end() calls outside src/obs. The obs span
 * primitives take arguments (a track id at minimum); a span opened
 * without a SpanGuard leaks open when the enclosing coroutine exits
 * early (crash path, channel close), corrupting the track's nesting.
 * Container begin()/end() take no arguments and stay silent.
 */
class UnbalancedSpanRule final : public Rule
{
  public:
    std::string name() const override { return "unbalanced-span"; }

    std::string
    description() const override
    {
        return "bare begin(...)/end(...) span calls outside src/obs: "
               "a span opened without RAII leaks open when a "
               "coroutine exits early, corrupting its track's "
               "nesting; use obs::SpanGuard / obs::AsyncSpanGuard";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        (void)ctx;
        const Tokens &toks = f.tokens;
        for (int i = 1; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!tokIsIdent(t) || !tokAnyOf(t, {"begin", "end"}))
                continue;
            if (!tokAnyOf(toks[static_cast<size_t>(i - 1)], {".", "->"}))
                continue;
            if (!tokIs(toks[static_cast<size_t>(i + 1)], "("))
                continue;
            // Empty argument list: container begin()/end(), fine.
            int close = matchForward(toks, i + 1);
            if (close < 0 || close == i + 2)
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = t.line;
            fd.endLine = t.line;
            fd.message =
                "'" + std::string(t.text) +
                "(...)' opens/closes a trace span without RAII; if "
                "the coroutine exits early the span never closes — "
                "use obs::SpanGuard / obs::AsyncSpanGuard instead";
            out.push_back(std::move(fd));
        }
    }
};

} // namespace

const FileModel &
modelFor(const SourceFile &f, const AnalysisContext &ctx,
         FileModel &scratch)
{
    if (const FileModel *m = ctx.index.modelFor(f.path))
        return *m;
    scratch = buildFileModel(f);
    return scratch;
}

void
collectTaskFunctions(const SourceFile &f, AnalysisContext &ctx)
{
    const Tokens &toks = f.tokens;
    for (int i = 0; i + 2 < static_cast<int>(toks.size()); ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (!tokIsIdent(t))
            continue;
        // `Task name(` — possibly with `Cls::` qualifiers on the name.
        if (t.text == "Task") {
            int j = i + 1;
            if (!tokIsIdent(toks[static_cast<size_t>(j)]))
                continue;
            std::string last = toks[static_cast<size_t>(j)].text;
            ++j;
            while (j + 1 < static_cast<int>(toks.size()) &&
                   tokIs(toks[static_cast<size_t>(j)], "::") &&
                   tokIsIdent(toks[static_cast<size_t>(j + 1)])) {
                last = toks[static_cast<size_t>(j + 1)].text;
                j += 2;
            }
            if (j < static_cast<int>(toks.size()) &&
                tokIs(toks[static_cast<size_t>(j)], "("))
                ctx.taskFunctions.insert(last);
            continue;
        }
        // `Other name(` — a declaration with a different return type
        // makes `name` ambiguous for discarded-task.
        const Token &y = toks[static_cast<size_t>(i + 1)];
        if (tokIsIdent(y) && tokIs(toks[static_cast<size_t>(i + 2)], "(") &&
            !tokAnyOf(t, {"return", "co_return", "co_await", "co_yield",
                          "new", "delete", "throw", "case", "goto",
                          "else", "operator", "Task"}))
            ctx.ambiguousFunctions.insert(y.text);
    }
}

const std::vector<std::unique_ptr<Rule>> &
allRules()
{
    static const std::vector<std::unique_ptr<Rule>> rules = [] {
        std::vector<std::unique_ptr<Rule>> r;
        r.push_back(std::make_unique<DiscardedTaskRule>());
        r.push_back(std::make_unique<CoroutineRefParamRule>());
        r.push_back(std::make_unique<CoroutineRefCaptureRule>());
        r.push_back(std::make_unique<BannedNondeterminismRule>());
        r.push_back(std::make_unique<FloatAccumOrderRule>());
        r.push_back(std::make_unique<AnalyticNetMathRule>());
        r.push_back(std::make_unique<UnbalancedSpanRule>());
        appendFlowRules(r);
        return r;
    }();
    return rules;
}

} // namespace ndp::lint
