#include "ndplint/config.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace ndp::lint {

namespace {

/**
 * Just enough JSON for the config shape: one object of objects of
 * string arrays. Hand-rolled to keep ndp-lint dependency-free.
 */
struct Parser
{
    std::string_view s;
    size_t i = 0;
    bool ok = true;
    std::string err;

    void
    fail(const std::string &what)
    {
        if (ok) {
            ok = false;
            err = what + " near offset " + std::to_string(i);
        }
    }

    void
    ws()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                s[i] == '\r'))
            ++i;
    }

    bool
    eat(char c)
    {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }

    std::string
    str()
    {
        ws();
        std::string out;
        if (i >= s.size() || s[i] != '"') {
            fail("expected string");
            return out;
        }
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size())
                ++i;
            out.push_back(s[i]);
            ++i;
        }
        if (i >= s.size())
            fail("unterminated string");
        else
            ++i;
        return out;
    }

    std::vector<std::string>
    stringArray()
    {
        std::vector<std::string> out;
        if (!eat('[')) {
            fail("expected [");
            return out;
        }
        if (eat(']'))
            return out;
        do {
            out.push_back(str());
        } while (ok && eat(','));
        if (!eat(']'))
            fail("expected ]");
        return out;
    }

    RuleScope
    ruleScope()
    {
        RuleScope rs;
        if (!eat('{')) {
            fail("expected {");
            return rs;
        }
        if (eat('}'))
            return rs;
        do {
            std::string key = str();
            if (!eat(':')) {
                fail("expected :");
                return rs;
            }
            if (key == "include")
                rs.include = stringArray();
            else if (key == "exclude")
                rs.exclude = stringArray();
            else
                fail("unknown scope key '" + key + "'");
        } while (ok && eat(','));
        if (!eat('}'))
            fail("expected }");
        return rs;
    }
};

} // namespace

bool
ScopeConfig::appliesTo(const std::string &rule,
                       std::string_view path) const
{
    auto it = scopes.find(rule);
    if (it == scopes.end())
        return true;
    std::string p(path);
    std::replace(p.begin(), p.end(), '\\', '/');
    const RuleScope &rs = it->second;
    for (const std::string &e : rs.exclude)
        if (p.find(e) != std::string::npos)
            return false;
    if (rs.include.empty())
        return true;
    for (const std::string &inc : rs.include)
        if (p.find(inc) != std::string::npos)
            return true;
    return false;
}

ScopeConfig
ScopeConfig::builtin()
{
    ScopeConfig cfg;
    // "src/core" (no trailing slash) covers src/core/sched and
    // src/core/georep too — scheduler decisions and WAN replication
    // feed every multi-job run and must obey the same determinism
    // contract. georep is also listed explicitly so the geo-rep
    // subsystem stays covered even if the broad "src/core" entry is
    // ever narrowed.
    // src/obs/monitor is in scope because the health monitor's passive
    // contract (monitored == unmonitored, bit for bit) dies the moment
    // a wall clock or unseeded RNG leaks into an aggregate or rule.
    cfg.scopes["banned-nondeterminism"] = {
        {"src/sim", "src/core", "src/core/georep",
         "src/obs/monitor"},
        {}};
    // The fabric and the device-spec formulas are the two sanctioned
    // homes for rate arithmetic.
    cfg.scopes["analytic-net-math"] = {{}, {"src/net/", "src/hw/"}};
    // The span primitives live in src/obs; tools/ parses traces and
    // never holds a Tracer.
    cfg.scopes["unbalanced-span"] = {{}, {"src/obs/", "tools/"}};
    // The flow rules encode simulator-core invariants; tests and
    // benches legitimately drive channels one-sided and charge without
    // yielding to provoke the scheduler.
    cfg.scopes["determinism-taint"] = {{"src/"}, {}};
    cfg.scopes["missing-batch-yield"] = {{"src/"}, {}};
    cfg.scopes["channel-never-drained"] = {{"src/"}, {}};
    return cfg;
}

ScopeConfig
ScopeConfig::fromJson(std::string_view text, std::string *err)
{
    ScopeConfig cfg;
    Parser p;
    p.s = text;
    if (!p.eat('{'))
        p.fail("expected top-level {");
    if (p.ok && !p.eat('}')) {
        do {
            std::string key = p.str();
            if (!p.eat(':')) {
                p.fail("expected :");
                break;
            }
            if (key == "scopes") {
                if (!p.eat('{')) {
                    p.fail("expected {");
                    break;
                }
                if (p.eat('}'))
                    continue;
                do {
                    std::string rule = p.str();
                    if (!p.eat(':')) {
                        p.fail("expected :");
                        break;
                    }
                    cfg.scopes[rule] = p.ruleScope();
                } while (p.ok && p.eat(','));
                if (p.ok && !p.eat('}'))
                    p.fail("expected }");
            } else {
                p.fail("unknown top-level key '" + key + "'");
            }
        } while (p.ok && p.eat(','));
        if (p.ok && !p.eat('}'))
            p.fail("expected closing }");
    }
    if (!p.ok) {
        if (err)
            *err = "ndp-lint config: " + p.err;
        return builtin();
    }
    return cfg;
}

ScopeConfig
ScopeConfig::load(const std::string &path, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "ndp-lint config: cannot read " + path;
        return builtin();
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return fromJson(ss.str(), err);
}

} // namespace ndp::lint
