/**
 * @file
 * ndp-lint CLI.
 *
 *     ndplint [options] <file-or-dir>...
 *
 * Options:
 *   --json                machine-readable output
 *   --sarif               SARIF 2.1.0 output (GitHub annotations)
 *   --list-rules          print the rule registry and exit
 *   --rule <name>         run only this rule (repeatable)
 *   --exclude <substr>    skip paths containing this substring
 *                         (repeatable; "fixtures/" is how the tree
 *                         scan avoids the linter's own known-bad test
 *                         files)
 *   --config <path>       per-rule scope config (default: the
 *                         `.ndplint.json` in the current directory if
 *                         one exists, else the compiled-in default)
 *   --no-path-filter      disable per-rule path scoping
 *   --audit-suppressions  list every suppression with its rationale
 *                         instead of linting; exits 1 if any
 *                         suppression has no rationale
 *
 * Exit codes: 0 clean, 1 unsuppressed violations (or, in audit mode,
 * unrationaled suppressions), 2 usage/IO error.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "ndplint/engine.h"

namespace fs = std::filesystem;
using namespace ndp::lint;

namespace {

bool
isSourceFile(const fs::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".h" || ext == ".hpp" || ext == ".hh" || ext == ".ipp";
}

/** Build dirs and dot-dirs never hold first-party sources. */
bool
isSkippedDir(const fs::path &p)
{
    std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

bool
excluded(const std::string &path,
         const std::vector<std::string> &excludes)
{
    for (const std::string &e : excludes)
        if (path.find(e) != std::string::npos)
            return true;
    return false;
}

void
collectPaths(const fs::path &root, const std::vector<std::string> &excludes,
             std::vector<std::string> &out)
{
    if (fs::is_regular_file(root)) {
        if (!excluded(root.string(), excludes))
            out.push_back(root.string());
        return;
    }
    if (!fs::is_directory(root))
        return;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && isSkippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()) &&
            !excluded(it->path().string(), excludes))
            out.push_back(it->path().string());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool sarif = false;
    bool audit = false;
    LintOptions opt;
    std::string configPath;
    std::vector<std::string> excludes;
    std::vector<std::string> roots;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--sarif") {
            sarif = true;
        } else if (arg == "--audit-suppressions") {
            audit = true;
        } else if (arg == "--list-rules") {
            for (const auto &r : allRules())
                std::cout << r->name() << "\n    " << r->description()
                          << "\n";
            return 0;
        } else if (arg == "--rule" && i + 1 < argc) {
            opt.ruleFilter.push_back(argv[++i]);
        } else if (arg == "--exclude" && i + 1 < argc) {
            excludes.push_back(argv[++i]);
        } else if (arg == "--config" && i + 1 < argc) {
            configPath = argv[++i];
        } else if (arg == "--no-path-filter") {
            opt.ignorePathScope = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: ndplint [--json] [--sarif] "
                         "[--list-rules] [--rule NAME]... "
                         "[--exclude SUBSTR]... [--config PATH] "
                         "[--no-path-filter] [--audit-suppressions] "
                         "<file-or-dir>...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ndp-lint: unknown option " << arg << "\n";
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        std::cerr << "ndp-lint: no paths given (try --help)\n";
        return 2;
    }

    if (configPath.empty() && fs::exists(".ndplint.json"))
        configPath = ".ndplint.json";
    if (!configPath.empty()) {
        std::string err;
        opt.scope = ScopeConfig::load(configPath, &err);
        if (!err.empty()) {
            std::cerr << err << "\n";
            return 2;
        }
    }

    std::vector<std::string> paths;
    for (const std::string &r : roots) {
        if (!fs::exists(r)) {
            std::cerr << "ndp-lint: no such path: " << r << "\n";
            return 2;
        }
        collectPaths(r, excludes, paths);
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    try {
        for (const std::string &p : paths)
            files.push_back(lexFile(p));
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    if (audit) {
        SuppressionAudit a = auditSuppressions(files);
        std::cout << a.text;
        return a.unrationaled > 0 ? 1 : 0;
    }

    LintStats stats = runLint(files, opt);
    std::cout << (sarif  ? renderSarif(stats)
                  : json ? renderJson(stats)
                         : renderText(stats));
    return stats.findings.empty() ? 0 : 1;
}
