#include "ndplint/lexer.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ndp::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first within a leading char. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "+=",
    "-=",  "*=",  "/=",  "%=",  "&&",  "||", "&=", "|=", "^=", "<<",
    ">>",  "<=",  ">=",  "==",  "!=",
};

/**
 * Scan @p comment for `ndplint: allow(a, b)` directives and record the
 * listed rules (or "*") as allowed on @p line.
 */
void
recordAllows(SourceFile &f, int line, std::string_view comment)
{
    size_t pos = 0;
    while ((pos = comment.find("ndplint:", pos)) != std::string_view::npos) {
        pos += 8;
        while (pos < comment.size() && comment[pos] == ' ')
            ++pos;
        if (comment.compare(pos, 5, "allow") != 0)
            continue;
        pos += 5;
        while (pos < comment.size() && comment[pos] == ' ')
            ++pos;
        if (pos >= comment.size() || comment[pos] != '(')
            continue;
        ++pos;
        std::string name;
        for (; pos < comment.size() && comment[pos] != ')'; ++pos) {
            char c = comment[pos];
            if (c == ',' || c == ' ') {
                if (!name.empty())
                    f.allows[line].insert(name);
                name.clear();
            } else {
                name.push_back(c);
            }
        }
        if (!name.empty())
            f.allows[line].insert(name);
    }
}

} // namespace

SourceFile
lexSource(std::string path, std::string_view src)
{
    SourceFile f;
    f.path = std::move(path);

    size_t i = 0;
    const size_t n = src.size();
    int line = 1;
    bool lineStart = true; // only whitespace seen since the newline

    auto push = [&](Tok kind, std::string text) {
        f.codeLines.insert(line);
        f.tokens.push_back(Token{kind, std::move(text), line});
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            lineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: skip to end of line (honouring \-
        // continuations). Counted as code so suppression walks stop.
        if (c == '#' && lineStart) {
            f.codeLines.insert(line);
            while (i < n) {
                if (src[i] == '\n') {
                    if (i > 0 && src[i - 1] == '\\') {
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            continue;
        }
        lineStart = false;
        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            size_t e = src.find('\n', i);
            if (e == std::string_view::npos)
                e = n;
            recordAllows(f, line, src.substr(i, e - i));
            i = e;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            int startLine = line;
            size_t e = src.find("*/", i + 2);
            if (e == std::string_view::npos)
                e = n;
            else
                e += 2;
            recordAllows(f, startLine, src.substr(i, e - i));
            for (size_t k = i; k < e; ++k)
                if (src[k] == '\n')
                    ++line;
            i = e;
            continue;
        }
        // Raw string literal: R"delim( ... )delim"
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            size_t d = i + 2;
            while (d < n && src[d] != '(' && src[d] != '\n')
                ++d;
            std::string close =
                ")" + std::string(src.substr(i + 2, d - (i + 2))) + "\"";
            size_t e = src.find(close, d);
            e = (e == std::string_view::npos) ? n : e + close.size();
            push(Tok::String, "R\"...\"");
            for (size_t k = i; k < e; ++k)
                if (src[k] == '\n')
                    ++line;
            i = e;
            continue;
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t e = i + 1;
            while (e < n && src[e] != quote) {
                if (src[e] == '\\' && e + 1 < n)
                    ++e;
                if (src[e] == '\n')
                    ++line;
                ++e;
            }
            if (e < n)
                ++e;
            push(Tok::String, std::string(1, quote));
            i = e;
            continue;
        }
        if (isIdentStart(c)) {
            size_t e = i;
            while (e < n && isIdentChar(src[e]))
                ++e;
            push(Tok::Identifier, std::string(src.substr(i, e - i)));
            i = e;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            // pp-number: digits, idents, ', ., and exponent signs.
            size_t e = i;
            while (e < n) {
                char d = src[e];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    ++e;
                } else if ((d == '+' || d == '-') && e > i &&
                           (src[e - 1] == 'e' || src[e - 1] == 'E' ||
                            src[e - 1] == 'p' || src[e - 1] == 'P')) {
                    ++e;
                } else {
                    break;
                }
            }
            push(Tok::Number, std::string(src.substr(i, e - i)));
            i = e;
            continue;
        }
        // Punctuator: longest match first.
        std::string_view rest = src.substr(i);
        std::string matched;
        for (const char *p : kPuncts) {
            std::string_view pv(p);
            if (rest.size() >= pv.size() &&
                rest.compare(0, pv.size(), pv) == 0 &&
                pv.size() > matched.size())
                matched = std::string(pv);
        }
        if (matched.empty())
            matched = std::string(1, c);
        push(Tok::Punct, matched);
        i += matched.size();
    }
    f.tokens.push_back(Token{Tok::Eof, "", line});
    return f;
}

SourceFile
lexFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("ndp-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string src = ss.str();
    return lexSource(path, src);
}

} // namespace ndp::lint
