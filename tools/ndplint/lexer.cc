#include "ndplint/lexer.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ndp::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first within a leading char. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "+=",
    "-=",  "*=",  "/=",  "%=",  "&&",  "||", "&=", "|=", "^=", "<<",
    ">>",  "<=",  ">=",  "==",  "!=",
};

/** Encoding prefixes that may precede a raw-string R. */
bool
isRawStringPrefix(std::string_view ident)
{
    return ident == "R" || ident == "uR" || ident == "UR" ||
           ident == "LR" || ident == "u8R";
}

/**
 * Append one rationale character, normalizing block-comment interior
 * whitespace: after a newline, leading spaces and `*` leaders are
 * collapsed into a single space so multi-line rationales read as one
 * sentence in the audit listing.
 */
void
appendReasonChar(std::string &reason, char c, bool &atLineBreak)
{
    if (c == '\n') {
        atLineBreak = true;
        return;
    }
    if (atLineBreak) {
        if (c == ' ' || c == '\t' || c == '*' || c == '\r')
            return;
        if (!reason.empty())
            reason.push_back(' ');
        atLineBreak = false;
    }
    if (reason.empty() && (c == ' ' || c == '\t'))
        return; // trim leading whitespace
    reason.push_back(c);
}

/**
 * Scan @p comment for suppression directives (`allow(a, b: rationale)`
 * after an `ndplint` marker + colon) and record the listed rules (or
 * "*") as allowed on @p line, plus the full directive — with its
 * rationale, parsed paren-depth-aware so reasons may themselves contain
 * balanced parentheses — for `--audit-suppressions`.
 */
void
recordAllows(SourceFile &f, int line, std::string_view comment)
{
    size_t pos = 0;
    while ((pos = comment.find("ndplint:", pos)) != std::string_view::npos) {
        pos += 8;
        while (pos < comment.size() && comment[pos] == ' ')
            ++pos;
        if (comment.compare(pos, 5, "allow") != 0)
            continue;
        pos += 5;
        while (pos < comment.size() && comment[pos] == ' ')
            ++pos;
        if (pos >= comment.size() || comment[pos] != '(')
            continue;
        ++pos;
        Suppression sup;
        sup.line = line;
        std::string name;
        bool inReason = false;
        bool atLineBreak = false;
        int depth = 1;
        for (; pos < comment.size(); ++pos) {
            char c = comment[pos];
            if (c == '(') {
                ++depth;
            } else if (c == ')') {
                if (--depth == 0)
                    break;
            }
            if (inReason) {
                appendReasonChar(sup.reason, c, atLineBreak);
                continue;
            }
            if (c == ':' && depth == 1) {
                inReason = true;
            } else if (c == ',' || c == ' ' || c == '\n' || c == '\r') {
                if (!name.empty())
                    sup.rules.insert(name);
                name.clear();
            } else {
                name.push_back(c);
            }
        }
        if (!name.empty())
            sup.rules.insert(name);
        while (!sup.reason.empty() && sup.reason.back() == ' ')
            sup.reason.pop_back();
        if (!sup.rules.empty()) {
            for (const std::string &r : sup.rules)
                f.allows[line].insert(r);
            f.suppressions.push_back(std::move(sup));
        }
    }
}

} // namespace

SourceFile
lexSource(std::string path, std::string_view src)
{
    SourceFile f;
    f.path = std::move(path);

    size_t i = 0;
    const size_t n = src.size();
    int line = 1;
    bool lineStart = true; // only whitespace seen since the newline

    auto push = [&](Tok kind, std::string text) {
        f.codeLines.insert(line);
        f.tokens.push_back(Token{kind, std::move(text), line});
    };

    // Consume a raw string literal whose opening '"' sits at @p quote:
    // R"delim( ... )delim". Returns the index just past the closing
    // quote and counts the newlines the literal spans.
    auto consumeRawString = [&](size_t quote) {
        size_t d = quote + 1;
        while (d < n && src[d] != '(' && src[d] != '\n')
            ++d;
        std::string close =
            ")" + std::string(src.substr(quote + 1, d - (quote + 1))) +
            "\"";
        size_t e = src.find(close, d);
        e = (e == std::string_view::npos) ? n : e + close.size();
        push(Tok::String, "R\"...\"");
        for (size_t k = quote; k < e; ++k)
            if (src[k] == '\n')
                ++line;
        return e;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            lineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: skip to end of line (honouring \-
        // continuations). Counted as code so suppression walks stop.
        if (c == '#' && lineStart) {
            f.codeLines.insert(line);
            while (i < n) {
                if (src[i] == '\n') {
                    if (i > 0 && src[i - 1] == '\\') {
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            continue;
        }
        lineStart = false;
        // Line comment — a trailing backslash splices the next physical
        // line into the comment ([lex.phases] p1), so code on that line
        // is commentary, not tokens.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            int startLine = line;
            size_t e = i;
            while (true) {
                size_t nl = src.find('\n', e);
                if (nl == std::string_view::npos) {
                    e = n;
                    break;
                }
                size_t back = nl;
                if (back > i && src[back - 1] == '\r')
                    --back;
                if (back > i && src[back - 1] == '\\') {
                    ++line; // spliced: the comment swallows this line
                    e = nl + 1;
                    continue;
                }
                e = nl;
                break;
            }
            recordAllows(f, startLine, src.substr(i, e - i));
            i = e;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            int startLine = line;
            size_t e = src.find("*/", i + 2);
            if (e == std::string_view::npos)
                e = n;
            else
                e += 2;
            recordAllows(f, startLine, src.substr(i, e - i));
            for (size_t k = i; k < e; ++k)
                if (src[k] == '\n')
                    ++line;
            i = e;
            continue;
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t e = i + 1;
            while (e < n && src[e] != quote) {
                if (src[e] == '\\' && e + 1 < n)
                    ++e;
                if (src[e] == '\n')
                    ++line;
                ++e;
            }
            if (e < n)
                ++e;
            push(Tok::String, std::string(1, quote));
            i = e;
            continue;
        }
        if (isIdentStart(c)) {
            size_t e = i;
            while (e < n && isIdentChar(src[e]))
                ++e;
            std::string_view ident = src.substr(i, e - i);
            // Raw string literal, with or without an encoding prefix:
            // R"(...)", u8R"(...)", LR"(...)", uR"(...)", UR"(...)".
            if (e < n && src[e] == '"' && isRawStringPrefix(ident)) {
                i = consumeRawString(e);
                continue;
            }
            push(Tok::Identifier, std::string(ident));
            i = e;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            // pp-number: digits, idents, ' separators, ., and exponent
            // signs. A separator must sit between digits/idents, so a
            // trailing ' (e.g. `1'000'` followed by a char literal)
            // stays outside the number.
            size_t e = i;
            while (e < n) {
                char d = src[e];
                if (isIdentChar(d) || d == '.') {
                    ++e;
                } else if (d == '\'' && e + 1 < n &&
                           isIdentChar(src[e + 1])) {
                    ++e;
                } else if ((d == '+' || d == '-') && e > i &&
                           (src[e - 1] == 'e' || src[e - 1] == 'E' ||
                            src[e - 1] == 'p' || src[e - 1] == 'P')) {
                    ++e;
                } else {
                    break;
                }
            }
            push(Tok::Number, std::string(src.substr(i, e - i)));
            i = e;
            continue;
        }
        // Punctuator: longest match first.
        std::string_view rest = src.substr(i);
        std::string matched;
        for (const char *p : kPuncts) {
            std::string_view pv(p);
            if (rest.size() >= pv.size() &&
                rest.compare(0, pv.size(), pv) == 0 &&
                pv.size() > matched.size())
                matched = std::string(pv);
        }
        if (matched.empty())
            matched = std::string(1, c);
        push(Tok::Punct, matched);
        i += matched.size();
    }
    f.tokens.push_back(Token{Tok::Eof, "", line});
    return f;
}

SourceFile
lexFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("ndp-lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string src = ss.str();
    return lexSource(path, src);
}

} // namespace ndp::lint
