/**
 * @file
 * Per-rule path scoping for ndp-lint, centralized in a checked-in
 * `.ndplint.json` at the repo root (satellite of the flow-aware
 * analyzer work; previously each Rule hardcoded its own appliesTo).
 *
 * Shape:
 *
 *     {
 *       "scopes": {
 *         "banned-nondeterminism": { "include": ["src/sim", "src/core"] },
 *         "analytic-net-math":     { "exclude": ["src/net/", "src/hw/"] }
 *       }
 *     }
 *
 * A rule with no entry applies everywhere. `include` means the path
 * must contain at least one of the substrings; `exclude` means it must
 * contain none. Matching is substring-based on '/'-normalized paths,
 * same as the old hardcoded checks, so relative and absolute
 * invocations behave identically.
 */

#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ndp::lint {

struct RuleScope
{
    std::vector<std::string> include;
    std::vector<std::string> exclude;
};

struct ScopeConfig
{
    std::map<std::string, RuleScope> scopes;

    /** True when @p rule should analyze @p path under this config. */
    bool appliesTo(const std::string &rule, std::string_view path) const;

    /**
     * The compiled-in default, kept in lockstep with the checked-in
     * `.ndplint.json` (the unit tests assert they agree) so the tool
     * behaves the same when run outside the repo root.
     */
    static ScopeConfig builtin();

    /** Parse config JSON. On error returns builtin() and sets *err. */
    static ScopeConfig fromJson(std::string_view text, std::string *err);

    /** Load from @p path. On error returns builtin() and sets *err. */
    static ScopeConfig load(const std::string &path, std::string *err);
};

} // namespace ndp::lint
