/**
 * @file
 * ndp-lint rule registry.
 *
 * Each rule is an analysis over one SourceFile, informed by a
 * tree-wide AnalysisContext (Task-returning names plus the
 * cross-file SymbolIndex from analysis/symbols.h). Path scoping is
 * NOT a rule property: the engine consults the ScopeConfig
 * (`.ndplint.json` / ScopeConfig::builtin) before invoking a rule on
 * a file. Rules motivated by real hazard classes in this simulator:
 *
 *  - discarded-task:        a sim::Task-returning call whose result is
 *                           neither co_awaited, spawned, nor bound is a
 *                           process that silently never runs.
 *  - coroutine-ref-param:   reference parameters to coroutines dangle
 *                           if the argument dies before the first
 *                           resume (cppcoreguidelines-avoid-reference-
 *                           coroutine-parameters, statically).
 *  - coroutine-ref-capture: by-reference lambda captures in coroutine
 *                           lambdas dangle the same way.
 *  - coroutine-escape:      flow-aware upgrade of the two rules above:
 *                           a borrowed parameter/capture actually USED
 *                           after (or across, in a loop) a co_await is
 *                           the statically-caught PR 3 use-after-free.
 *  - banned-nondeterminism: wall-clock, std::rand, and unordered-
 *                           container iteration inside src/sim +
 *                           src/core make event order (and therefore
 *                           every figure) run-dependent; sim::Rng and
 *                           ordered containers are the alternatives.
 *  - determinism-taint:     flow-aware: a value DERIVED from a banned
 *                           source (through assignments and cross-TU
 *                           calls) reaching a Report field, a trace
 *                           event, or a scheduler decision breaks the
 *                           bit-exact determinism suite.
 *  - float-accum-order:     float/double += inside iteration over an
 *                           unordered container accumulates in hash
 *                           order, so sums differ across
 *                           libstdc++ versions and runs.
 *  - analytic-net-math:     `bytes / bandwidth` division outside
 *                           src/net + src/hw re-derives wire time by
 *                           hand and bypasses the network fabric's
 *                           contention model; use NetFabric::transfer
 *                           / serviceTime or net/estimate.h helpers.
 *  - missing-batch-yield:   a coroutine that charges scheduler time
 *                           but never yields is invisible to
 *                           preemption: the fair-share scheduler can
 *                           bill it but never deschedule it.
 *  - send-after-close:      put() on a channel sequenced after its
 *                           close() in the same scope trips the
 *                           channel's closed assertion at runtime.
 *  - channel-never-drained: an owning channel that is put into but
 *                           never get from (and never escapes to an
 *                           alias) is a wired-but-undrained endpoint;
 *                           its producer eventually blocks forever.
 *  - unbalanced-span:       bare begin()/end() span calls leak open
 *                           spans when a coroutine exits early.
 */

#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ndplint/analysis/symbols.h"
#include "ndplint/lexer.h"

namespace ndp::lint {

struct Finding
{
    std::string rule;
    std::string path;
    /** Line reported to the user (and first suppression line). */
    int line = 0;
    /** Last line an `allow` may sit on and still suppress this. */
    int endLine = 0;
    std::string message;
};

/** Facts gathered over the whole file set before rules run. */
struct AnalysisContext
{
    /** Names declared at least once with return type `Task`. */
    std::set<std::string> taskFunctions;
    /**
     * Names also declared with some other return type; excluded from
     * discarded-task to avoid misfiring on overloaded/common names
     * (e.g. `run` is both CpuPool::run -> Task and Simulator::run ->
     * Time).
     */
    std::set<std::string> ambiguousFunctions;

    /** Cross-file symbol index (pass 2); see analysis/symbols.h. */
    SymbolIndex index;

    /** True if @p name unambiguously returns Task somewhere. */
    bool
    returnsTask(const std::string &name) const
    {
        return taskFunctions.count(name) != 0 &&
               ambiguousFunctions.count(name) == 0;
    }
};

class Rule
{
  public:
    virtual ~Rule() = default;
    virtual std::string name() const = 0;
    virtual std::string description() const = 0;
    virtual void analyze(const SourceFile &f, const AnalysisContext &ctx,
                         std::vector<Finding> &out) const = 0;
};

/** The registry: every shipped rule, in reporting order. */
const std::vector<std::unique_ptr<Rule>> &allRules();

/** The flow-aware rule families built on the analysis layer. */
void appendFlowRules(std::vector<std::unique_ptr<Rule>> &rules);

/** First pass: record Task-returning (and ambiguous) function names. */
void collectTaskFunctions(const SourceFile &f, AnalysisContext &ctx);

/**
 * The file's pass-1 model out of the context's index, or a locally
 * built fallback written into @p scratch when the file was lexed
 * outside runLint (unit tests driving a rule directly).
 */
const FileModel &modelFor(const SourceFile &f, const AnalysisContext &ctx,
                          FileModel &scratch);

} // namespace ndp::lint
