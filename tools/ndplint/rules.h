/**
 * @file
 * ndp-lint rule registry.
 *
 * Each rule is a token-pattern analysis over one SourceFile, informed
 * by a tree-wide AnalysisContext (e.g. the set of Task-returning
 * function names, collected in a first pass over every file). Rules
 * motivated by real hazard classes in this simulator:
 *
 *  - discarded-task:        a sim::Task-returning call whose result is
 *                           neither co_awaited, spawned, nor bound is a
 *                           process that silently never runs.
 *  - coroutine-ref-param:   reference parameters to coroutines dangle
 *                           if the argument dies before the first
 *                           resume (cppcoreguidelines-avoid-reference-
 *                           coroutine-parameters, statically).
 *  - coroutine-ref-capture: by-reference lambda captures in coroutine
 *                           lambdas dangle the same way.
 *  - banned-nondeterminism: wall-clock, std::rand, and unordered-
 *                           container iteration inside src/sim +
 *                           src/core make event order (and therefore
 *                           every figure) run-dependent; sim::Rng and
 *                           ordered containers are the alternatives.
 *  - float-accum-order:     float/double += inside iteration over an
 *                           unordered container accumulates in hash
 *                           order, so sums differ across
 *                           libstdc++ versions and runs.
 *  - analytic-net-math:     `bytes / bandwidth` division outside
 *                           src/net + src/hw re-derives wire time by
 *                           hand and bypasses the network fabric's
 *                           contention model; use NetFabric::transfer
 *                           / serviceTime or net/estimate.h helpers.
 */

#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ndplint/lexer.h"

namespace ndp::lint {

struct Finding
{
    std::string rule;
    std::string path;
    /** Line reported to the user (and first suppression line). */
    int line = 0;
    /** Last line an `allow` may sit on and still suppress this. */
    int endLine = 0;
    std::string message;
};

/** Facts gathered over the whole file set before rules run. */
struct AnalysisContext
{
    /** Names declared at least once with return type `Task`. */
    std::set<std::string> taskFunctions;
    /**
     * Names also declared with some other return type; excluded from
     * discarded-task to avoid misfiring on overloaded/common names
     * (e.g. `run` is both CpuPool::run -> Task and Simulator::run ->
     * Time).
     */
    std::set<std::string> ambiguousFunctions;

    /** True if @p name unambiguously returns Task somewhere. */
    bool
    returnsTask(const std::string &name) const
    {
        return taskFunctions.count(name) != 0 &&
               ambiguousFunctions.count(name) == 0;
    }
};

class Rule
{
  public:
    virtual ~Rule() = default;
    virtual std::string name() const = 0;
    virtual std::string description() const = 0;
    /** Path scope; @p path is as given on the command line. */
    virtual bool
    appliesTo(std::string_view path) const
    {
        (void)path;
        return true;
    }
    virtual void analyze(const SourceFile &f, const AnalysisContext &ctx,
                         std::vector<Finding> &out) const = 0;
};

/** The registry: every shipped rule, in reporting order. */
const std::vector<std::unique_ptr<Rule>> &allRules();

/** First pass: record Task-returning (and ambiguous) function names. */
void collectTaskFunctions(const SourceFile &f, AnalysisContext &ctx);

} // namespace ndp::lint
