#include "ndplint/engine.h"

#include <algorithm>
#include <sstream>

namespace ndp::lint {

namespace {

bool
lineAllows(const SourceFile &f, int line, const std::string &rule)
{
    auto it = f.allows.find(line);
    if (it == f.allows.end())
        return false;
    return it->second.count(rule) != 0 || it->second.count("*") != 0;
}

void
jsonEscape(std::ostringstream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
        }
    }
}

/** Forward-slashed relative-style path for SARIF artifact URIs. */
std::string
sarifUri(const std::string &path)
{
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    while (p.size() >= 2 && p[0] == '.' && p[1] == '/')
        p.erase(0, 2);
    return p;
}

} // namespace

bool
isSuppressed(const SourceFile &f, const Finding &fd)
{
    int last = std::max(fd.line, fd.endLine);
    for (int ln = fd.line; ln <= last; ++ln)
        if (lineAllows(f, ln, fd.rule))
            return true;
    // Walk the comment/blank block immediately above the finding.
    for (int ln = fd.line - 1; ln >= 1; --ln) {
        if (lineAllows(f, ln, fd.rule))
            return true;
        if (f.codeLines.count(ln) != 0)
            break;
    }
    return false;
}

LintStats
runLint(const std::vector<SourceFile> &files, const LintOptions &opt)
{
    AnalysisContext ctx;
    for (const SourceFile &f : files)
        collectTaskFunctions(f, ctx);
    ctx.index = buildSymbolIndex(files);

    auto wantRule = [&](const Rule &r) {
        if (opt.ruleFilter.empty())
            return true;
        return std::find(opt.ruleFilter.begin(), opt.ruleFilter.end(),
                         r.name()) != opt.ruleFilter.end();
    };

    LintStats stats;
    stats.filesScanned = static_cast<int>(files.size());
    for (const SourceFile &f : files) {
        std::vector<Finding> raw;
        for (const auto &rule : allRules()) {
            if (!wantRule(*rule))
                continue;
            if (!opt.ignorePathScope &&
                !opt.scope.appliesTo(rule->name(), f.path))
                continue;
            rule->analyze(f, ctx, raw);
        }
        for (Finding &fd : raw) {
            if (isSuppressed(f, fd))
                ++stats.suppressed;
            else
                stats.findings.push_back(std::move(fd));
        }
    }
    std::sort(stats.findings.begin(), stats.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return stats;
}

std::string
renderText(const LintStats &stats)
{
    std::ostringstream os;
    for (const Finding &fd : stats.findings)
        os << fd.path << ":" << fd.line << ": error: [" << fd.rule
           << "] " << fd.message << "\n";
    os << "ndp-lint: " << stats.findings.size() << " violation(s), "
       << stats.suppressed << " suppressed, " << stats.filesScanned
       << " file(s) scanned\n";
    return os.str();
}

std::string
renderJson(const LintStats &stats)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    for (size_t i = 0; i < stats.findings.size(); ++i) {
        const Finding &fd = stats.findings[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"file\": \"";
        jsonEscape(os, fd.path);
        os << "\", \"line\": " << fd.line << ", \"rule\": \""
           << fd.rule << "\", \"message\": \"";
        jsonEscape(os, fd.message);
        os << "\"}";
    }
    os << (stats.findings.empty() ? "]" : "\n  ]");
    os << ",\n  \"suppressed\": " << stats.suppressed
       << ",\n  \"filesScanned\": " << stats.filesScanned << "\n}\n";
    return os.str();
}

std::string
renderSarif(const LintStats &stats)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\n"
       << "      \"name\": \"ndp-lint\",\n"
       << "      \"informationUri\": "
          "\"tools/ndplint/README reference: repo DESIGN.md section "
          "12\",\n"
       << "      \"rules\": [";
    bool first = true;
    for (const auto &rule : allRules()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "        {\"id\": \"" << rule->name()
           << "\", \"shortDescription\": {\"text\": \"";
        jsonEscape(os, rule->description());
        os << "\"}}";
    }
    os << "\n      ]\n"
       << "    }},\n"
       << "    \"results\": [";
    for (size_t i = 0; i < stats.findings.size(); ++i) {
        const Finding &fd = stats.findings[i];
        os << (i ? ",\n" : "\n");
        os << "      {\"ruleId\": \"" << fd.rule
           << "\", \"level\": \"error\", \"message\": {\"text\": \"";
        jsonEscape(os, fd.message);
        os << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \"";
        jsonEscape(os, sarifUri(fd.path));
        os << "\"}, \"region\": {\"startLine\": " << fd.line
           << "}}}]}";
    }
    os << (stats.findings.empty() ? "]" : "\n    ]");
    os << "\n  }]\n}\n";
    return os.str();
}

SuppressionAudit
auditSuppressions(const std::vector<SourceFile> &files)
{
    SuppressionAudit audit;
    std::ostringstream os;
    for (const SourceFile &f : files) {
        for (const Suppression &s : f.suppressions) {
            ++audit.total;
            std::string rules;
            for (const std::string &r : s.rules)
                rules += (rules.empty() ? "" : ", ") + r;
            os << f.path << ":" << s.line << ": allow(" << rules
               << ")";
            if (s.reason.empty()) {
                ++audit.unrationaled;
                os << "  <-- MISSING RATIONALE (use `allow(rule: "
                      "reason)`)";
            } else {
                os << "  \"" << s.reason << "\"";
            }
            os << "\n";
        }
    }
    os << "ndp-lint: " << audit.total << " suppression(s), "
       << audit.unrationaled << " without rationale\n";
    audit.text = os.str();
    return audit;
}

} // namespace ndp::lint
