#include "ndplint/analysis/model.h"

namespace ndp::lint {

namespace {

using Tokens = std::vector<Token>;

/** Tokens that may legally sit between `)` and the body `{`. */
bool
isTrailingSigToken(const Token &t)
{
    return tokIsIdent(t) ||
           tokAnyOf(t, {"::", "->", "*", "&", "&&", "<", ">", "[", "]"});
}

/** Control-flow keywords whose parens are not parameter lists. */
bool
isControlKeyword(const Token &t)
{
    return tokAnyOf(t,
                    {"if", "for", "while", "switch", "catch", "constexpr"});
}

bool
isUnorderedType(const Token &t)
{
    return tokAnyOf(t, {"unordered_map", "unordered_set",
                        "unordered_multimap", "unordered_multiset"});
}

/**
 * Parse the parameter list in (paramBegin, paramEnd) into ParamDecls:
 * split at top-level commas, then per segment record the declarator
 * shape (& / && / * outside default arguments), whether the type
 * mentions string_view, and the declared name — the last identifier
 * whose successor is one of `, ) = [` (so type-only segments like
 * `const Config &` stay unnamed).
 */
void
parseParams(const Tokens &toks, FunctionModel &fn)
{
    int segStart = fn.paramBegin + 1;
    int depth = 0;
    for (int k = fn.paramBegin + 1; k <= fn.paramEnd; ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (k < fn.paramEnd) {
            if (tokAnyOf(t, {"(", "[", "{"})) {
                ++depth;
                continue;
            }
            if (tokAnyOf(t, {")", "]", "}"})) {
                --depth;
                continue;
            }
            if (t.kind == Tok::Punct && t.text == "<") {
                int past = skipAngles(toks, k);
                if (past > 0 && past <= fn.paramEnd)
                    k = past - 1;
                continue;
            }
            if (depth != 0 || !tokIs(t, ","))
                continue;
        }
        // Segment [segStart, k).
        ParamDecl p;
        bool inDefault = false;
        int nameIdx = -1;
        for (int j = segStart; j < k; ++j) {
            const Token &s = toks[static_cast<size_t>(j)];
            if (s.kind == Tok::Punct && s.text == "<") {
                int past = skipAngles(toks, j);
                if (past > 0 && past <= k) {
                    // string_view may hide inside optional<...> etc.
                    for (int a = j + 1; a < past - 1; ++a)
                        if (tokIs(toks[static_cast<size_t>(a)],
                                  "string_view"))
                            p.stringView = true;
                    j = past - 1;
                }
                continue;
            }
            if (tokIs(s, "="))
                inDefault = true;
            if (inDefault)
                continue;
            if (tokAnyOf(s, {"&", "&&"}))
                p.byRef = true;
            else if (tokIs(s, "*"))
                p.byPointer = true;
            else if (tokIs(s, "string_view"))
                p.stringView = true;
            else if (tokIsIdent(s)) {
                int nx = j + 1;
                if (nx <= k &&
                    (nx == k ||
                     tokAnyOf(toks[static_cast<size_t>(nx)],
                              {",", ")", "=", "["})))
                    nameIdx = j;
            }
        }
        if (nameIdx >= 0) {
            // A lone identifier segment is a type, not a name (`int`).
            bool loneType =
                nameIdx == segStart && !p.byRef && !p.byPointer;
            if (!loneType || p.stringView) {
                p.name = toks[static_cast<size_t>(nameIdx)].text;
                p.line = toks[static_cast<size_t>(nameIdx)].line;
            }
        }
        if (p.line == 0)
            p.line = toks[static_cast<size_t>(segStart)].line;
        if (segStart < k)
            fn.params.push_back(std::move(p));
        segStart = k + 1;
    }
}

/** Parse the capture list in (captureBegin, captureEnd). */
void
parseCaptures(const Tokens &toks, FunctionModel &fn)
{
    bool inInit = false;
    for (int k = fn.captureBegin + 1; k < fn.captureEnd; ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (tokIs(t, "="))
            inInit = (k != fn.captureBegin + 1);
        else if (tokIs(t, ","))
            inInit = false;
        if (inInit || !tokIs(t, "&"))
            continue;
        const Token &nx = toks[static_cast<size_t>(k + 1)];
        if (tokIsIdent(nx))
            fn.refCaptures.push_back("&" + nx.text);
        else if (tokAnyOf(nx, {",", "]"}))
            fn.refCaptures.push_back("&");
    }
}

} // namespace

int
matchForward(const Tokens &toks, int i)
{
    std::string_view open = toks[static_cast<size_t>(i)].text;
    std::string_view close = open == "(" ? ")" : open == "[" ? "]" : "}";
    int depth = 0;
    for (int k = i; k < static_cast<int>(toks.size()); ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == open)
            ++depth;
        else if (t.text == close && --depth == 0)
            return k;
    }
    return -1;
}

int
matchBackward(const Tokens &toks, int i)
{
    std::string_view close = toks[static_cast<size_t>(i)].text;
    std::string_view open = close == ")" ? "(" : close == "]" ? "[" : "{";
    int depth = 0;
    for (int k = i; k >= 0; --k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == close)
            ++depth;
        else if (t.text == open && --depth == 0)
            return k;
    }
    return -1;
}

int
skipAngles(const Tokens &toks, int i)
{
    int depth = 0;
    for (int k = i; k < static_cast<int>(toks.size()); ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (tokIs(t, "<")) {
            ++depth;
        } else if (tokIs(t, ">")) {
            if (--depth == 0)
                return k + 1;
        } else if (tokIs(t, ">>")) {
            depth -= 2;
            if (depth <= 0)
                return k + 1;
        } else if (tokAnyOf(t, {";", "{", "}"}) || t.kind == Tok::Eof) {
            return -1; // statement boundary: not a template list
        }
    }
    return -1;
}

int
memberCallBase(const Tokens &toks, int calleeIdx)
{
    int k = calleeIdx - 1;
    if (k < 1 || !tokAnyOf(toks[static_cast<size_t>(k)], {".", "->"}))
        return -1;
    --k;
    while (k >= 0) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (tokIs(t, "]")) {
            int open = matchBackward(toks, k);
            if (open <= 0)
                return -1;
            k = open - 1;
            continue;
        }
        if (tokIsIdent(t)) {
            // Keep walking over deeper accessor links (`a.b->put`
            // resolves to `a`, the owning object).
            if (k >= 2 && tokAnyOf(toks[static_cast<size_t>(k - 1)],
                                   {".", "->"})) {
                k -= 2;
                continue;
            }
            return k;
        }
        if (tokIs(t, ")")) {
            // Call in the chain (`x().put`): no stable base name.
            return -1;
        }
        return -1;
    }
    return -1;
}

FileModel
buildFileModel(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    FileModel model;
    std::vector<FunctionModel> &funcs = model.functions;
    // Stack entry: function index, or -1 for a plain block.
    std::vector<int> stack;

    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (tokIsIdent(t) &&
            tokAnyOf(t, {"co_await", "co_return", "co_yield"})) {
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (*it >= 0) {
                    FunctionModel &fn = funcs[static_cast<size_t>(*it)];
                    fn.hasCo = true;
                    if (!tokIs(t, "co_return"))
                        fn.suspendPoints.push_back(i);
                    break;
                }
            }
            continue;
        }
        if (t.kind != Tok::Punct)
            continue;
        if (tokIs(t, "}")) {
            if (!stack.empty()) {
                if (int fi = stack.back(); fi >= 0)
                    funcs[static_cast<size_t>(fi)].bodyEnd = i;
                stack.pop_back();
            }
            continue;
        }
        if (!tokIs(t, "{"))
            continue;

        // Classify this '{': function/lambda body or plain block.
        FunctionModel fn;
        bool isFunction = false;
        int k = i - 1;
        while (k >= 0 && isTrailingSigToken(toks[static_cast<size_t>(k)]))
            --k;
        // `[caps] {` lambda without a parameter list.
        if (k + 1 <= i - 1 && tokIs(toks[static_cast<size_t>(i - 1)], "]")) {
            int open = matchBackward(toks, i - 1);
            if (open >= 0 && open > 0 &&
                !tokIs(toks[static_cast<size_t>(open - 1)], "[")) {
                fn.isLambda = true;
                fn.captureBegin = open;
                fn.captureEnd = i - 1;
                fn.sigLine = toks[static_cast<size_t>(open)].line;
                fn.sigStartLine = fn.sigLine;
                fn.name = "<lambda>";
                isFunction = true;
            }
        }
        while (!isFunction && k >= 0 &&
               tokIs(toks[static_cast<size_t>(k)], ")")) {
            int open = matchBackward(toks, k);
            if (open <= 0)
                break;
            const Token &before = toks[static_cast<size_t>(open - 1)];
            // noexcept(...) / decltype(...) trailers: keep walking.
            if (tokAnyOf(before, {"noexcept", "decltype", "requires"})) {
                k = open - 2;
                while (k >= 0 &&
                       isTrailingSigToken(toks[static_cast<size_t>(k)]))
                    --k;
                continue;
            }
            if (isControlKeyword(before))
                break; // if/for/while/... block
            fn.paramBegin = open;
            fn.paramEnd = k;
            fn.sigLine = toks[static_cast<size_t>(open)].line;
            if (tokIs(before, "]")) {
                int capOpen = matchBackward(toks, open - 1);
                if (capOpen >= 0) {
                    fn.isLambda = true;
                    fn.captureBegin = capOpen;
                    fn.captureEnd = open - 1;
                    fn.name = "<lambda>";
                    fn.sigStartLine =
                        toks[static_cast<size_t>(capOpen)].line;
                }
            } else if (tokIsIdent(before)) {
                fn.name = before.text;
            }
            if (!fn.isLambda) {
                // Signature start: walk back over the name chain and a
                // simple return type so a suppression placed above the
                // whole signature is honoured.
                int s = open - 1;
                while (s >= 0 &&
                       (tokIsIdent(toks[static_cast<size_t>(s)]) ||
                        tokAnyOf(toks[static_cast<size_t>(s)],
                                 {"::", "~", "*", "&", "&&", "<", ">",
                                  "[", "]"})))
                    --s;
                fn.sigStartLine = toks[static_cast<size_t>(s + 1)].line;
            }
            isFunction = true;
        }
        if (isFunction) {
            fn.bodyBegin = i;
            if (fn.paramBegin >= 0)
                parseParams(toks, fn);
            if (fn.captureBegin >= 0)
                parseCaptures(toks, fn);
            stack.push_back(static_cast<int>(funcs.size()));
            funcs.push_back(std::move(fn));
        } else {
            stack.push_back(-1);
        }
    }
    // Unterminated bodies (truncated files): close at EOF.
    for (FunctionModel &fn : funcs)
        if (fn.bodyBegin >= 0 && fn.bodyEnd < 0)
            fn.bodyEnd = static_cast<int>(toks.size()) - 1;
    model.loops = findLoops(toks, 0, static_cast<int>(toks.size()));
    return model;
}

std::vector<LoopRange>
findLoops(const Tokens &toks, int begin, int end)
{
    std::vector<LoopRange> loops;
    for (int i = begin; i < end; ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (!tokIsIdent(t))
            continue;
        LoopRange loop;
        loop.line = t.line;
        int b = -1;
        if (tokAnyOf(t, {"for", "while"})) {
            if (i + 1 >= end || !tokIs(toks[static_cast<size_t>(i + 1)], "("))
                continue;
            int close = matchForward(toks, i + 1);
            if (close < 0)
                continue;
            b = close + 1;
            // The `while (...)` tail of a do-while has no body.
            if (b < end && tokIs(toks[static_cast<size_t>(b)], ";"))
                continue;
        } else if (tokIs(t, "do")) {
            b = i + 1;
        } else {
            continue;
        }
        if (b >= end)
            continue;
        if (tokIs(toks[static_cast<size_t>(b)], "{")) {
            int close = matchForward(toks, b);
            loop.bodyBegin = b + 1;
            loop.bodyEnd = close < 0 ? end : close;
        } else {
            loop.bodyBegin = b;
            int k = b;
            int d = 0;
            while (k < end) {
                const Token &s = toks[static_cast<size_t>(k)];
                if (tokAnyOf(s, {"(", "[", "{"}))
                    ++d;
                else if (tokAnyOf(s, {")", "]", "}"}))
                    --d;
                else if (d == 0 && tokIs(s, ";"))
                    break;
                ++k;
            }
            loop.bodyEnd = k;
        }
        loops.push_back(loop);
    }
    return loops;
}

std::set<std::string>
collectUnorderedVars(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::set<std::string> vars;
    for (int i = 0; i < static_cast<int>(toks.size()); ++i) {
        if (!isUnorderedType(toks[static_cast<size_t>(i)]))
            continue;
        int j = i + 1;
        if (j < static_cast<int>(toks.size()) &&
            tokIs(toks[static_cast<size_t>(j)], "<")) {
            j = skipAngles(toks, j);
            if (j < 0)
                continue;
        }
        while (j < static_cast<int>(toks.size()) &&
               tokAnyOf(toks[static_cast<size_t>(j)], {"&", "*", "const"}))
            ++j;
        if (j < static_cast<int>(toks.size()) &&
            tokIsIdent(toks[static_cast<size_t>(j)]))
            vars.insert(toks[static_cast<size_t>(j)].text);
    }
    return vars;
}

std::vector<RangeForLoop>
findUnorderedRangeFors(const SourceFile &f,
                       const std::set<std::string> &vars)
{
    const Tokens &toks = f.tokens;
    std::vector<RangeForLoop> loops;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
        if (!tokIs(toks[static_cast<size_t>(i)], "for") ||
            !tokIs(toks[static_cast<size_t>(i + 1)], "("))
            continue;
        int close = matchForward(toks, i + 1);
        if (close < 0)
            continue;
        // Find the range-for ':' at top parenthesis level.
        int colon = -1;
        int depth = 0;
        for (int k = i + 2; k < close; ++k) {
            const Token &t = toks[static_cast<size_t>(k)];
            if (tokAnyOf(t, {"(", "[", "{"}))
                ++depth;
            else if (tokAnyOf(t, {")", "]", "}"}))
                --depth;
            else if (depth == 0 && tokIs(t, ";"))
                break; // classic for loop
            else if (depth == 0 && tokIs(t, ":")) {
                colon = k;
                break;
            }
        }
        if (colon < 0)
            continue;
        std::string hit;
        for (int k = colon + 1; k < close; ++k) {
            const Token &t = toks[static_cast<size_t>(k)];
            if (tokIsIdent(t) &&
                (vars.count(t.text) != 0 || isUnorderedType(t))) {
                hit = t.text;
                break;
            }
        }
        if (hit.empty())
            continue;
        RangeForLoop loop;
        loop.line = toks[static_cast<size_t>(i)].line;
        loop.var = hit;
        int b = close + 1;
        if (b < static_cast<int>(toks.size()) &&
            tokIs(toks[static_cast<size_t>(b)], "{")) {
            int bodyClose = matchForward(toks, b);
            loop.bodyBegin = b + 1;
            loop.bodyEnd = bodyClose < 0 ? static_cast<int>(toks.size())
                                         : bodyClose;
        } else {
            loop.bodyBegin = b;
            int k = b;
            int d = 0;
            while (k < static_cast<int>(toks.size())) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (tokAnyOf(t, {"(", "[", "{"}))
                    ++d;
                else if (tokAnyOf(t, {")", "]", "}"}))
                    --d;
                else if (d == 0 && tokIs(t, ";"))
                    break;
                ++k;
            }
            loop.bodyEnd = k;
        }
        loops.push_back(loop);
    }
    return loops;
}

} // namespace ndp::lint
