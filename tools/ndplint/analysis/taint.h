/**
 * @file
 * ndp-lint analysis layer, pass 3: the determinism taint lattice.
 *
 * The lattice is the simplest one that is useful: a value is either
 * CLEAN or TAINTED, and a tainted value carries a human-readable chain
 * of *why* (its source, and each assignment hop it took). Sources are
 * the banned nondeterminism primitives; propagation is by assignment
 * (two local rounds, so a two-hop chain `a = clock; b = a;` converges)
 * and by calls into the cross-TU tainted-function map built by
 * analysis/symbols. Sinks (Report fields, trace serialization,
 * scheduler decisions) live in the determinism-taint rule itself.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "ndplint/analysis/model.h"

namespace ndp::lint {

/**
 * If the token at @p i is a direct nondeterminism source — a chrono
 * wall clock, time()/rand()/srand(), std::random_device, address-based
 * hashing (`hash<T*>`), or a pointer-to-integer cast — return a short
 * description of it; otherwise return "".
 */
std::string directSourceAt(const std::vector<Token> &toks, int i);

/** var name -> why it is tainted (source + assignment chain). */
using TaintMap = std::map<std::string, std::string>;

/**
 * Local taint propagation over one file: two rounds of assignment
 * propagation (`x op= rhs` taints x when rhs mentions a source, a
 * tainted variable, or a call to a cross-TU tainted function), plus
 * hash-order taint for accumulation ops inside range-for loops over
 * unordered containers (the accumulated value depends on iteration
 * order even when every addend is clean).
 */
TaintMap computeLocalTaint(const SourceFile &f,
                           const TaintMap &taintedFunctions);

} // namespace ndp::lint
