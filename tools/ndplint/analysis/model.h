/**
 * @file
 * ndp-lint analysis layer, pass 1: the per-file declaration / scope /
 * function model every flow-aware rule is built on.
 *
 * The lexer gives a flat token stream; this pass recovers just enough
 * structure for lifetime and protocol reasoning without a real parser:
 *
 *  - FunctionModel: one record per function or lambda body, with the
 *    parameter list parsed into typed ParamDecls (by-ref / pointer /
 *    string_view), the lambda capture list (named by-ref captures and
 *    the bare `[&]` default), the body token range, and the token
 *    positions of the co_await / co_yield suspension points *of that
 *    body* (a coroutine lambda nested in a plain function suspends the
 *    lambda, not the function).
 *  - LoopRange: body token ranges of for / while / do loops, so rules
 *    can reason about "both the suspension point and the use sit in
 *    the same loop" (a use lexically before a co_await is still live
 *    across it when both repeat).
 *  - Unordered-container tracking shared by the determinism rules.
 *
 * Everything here is per-file; the cross-file symbol index built on
 * top of these models lives in analysis/symbols.h.
 */

#pragma once

#include <initializer_list>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ndplint/lexer.h"

namespace ndp::lint {

/** @name Token helpers shared by all rule files
 * @{ */
inline bool
tokIs(const Token &t, std::string_view text)
{
    return t.text == text;
}

inline bool
tokIsIdent(const Token &t)
{
    return t.kind == Tok::Identifier;
}

inline bool
tokAnyOf(const Token &t, std::initializer_list<std::string_view> set)
{
    for (auto s : set)
        if (t.text == s)
            return true;
    return false;
}

/** Index of the punct matching the opener at @p i, or -1. */
int matchForward(const std::vector<Token> &toks, int i);

/** Index of the punct matching the closer at @p i, or -1. */
int matchBackward(const std::vector<Token> &toks, int i);

/**
 * Starting at a `<` at @p i, skip balanced template arguments.
 * @return index just past the closing `>`, or -1 if this `<` does not
 * look like a template-argument list (e.g. a comparison).
 */
int skipAngles(const std::vector<Token> &toks, int i);

/**
 * Base identifier of the member call whose callee identifier sits at
 * @p calleeIdx: walks back over `.` / `->` accessors and balanced
 * `[...]` subscripts (`sendq_[i]->put` resolves to `sendq_`).
 * @return token index of the base identifier, or -1.
 */
int memberCallBase(const std::vector<Token> &toks, int calleeIdx);
/** @} */

/** One parsed function/lambda parameter. */
struct ParamDecl
{
    /** Declared name; empty for unnamed parameters. */
    std::string name;
    bool byRef = false;      ///< `&` or `&&` declarator
    bool byPointer = false;  ///< `*` declarator
    bool stringView = false; ///< type mentions string_view (borrowing)
    int line = 0;
};

/** One function or lambda body, innermost-first in file order. */
struct FunctionModel
{
    std::string name; ///< "<lambda>" for lambdas
    bool isLambda = false;
    /** Body contains co_await / co_return / co_yield (not nested). */
    bool hasCo = false;
    int paramBegin = -1;   ///< token index of '(' (or -1)
    int paramEnd = -1;     ///< token index of ')'
    int captureBegin = -1; ///< token index of '[' for lambdas
    int captureEnd = -1;   ///< token index of ']' for lambdas
    int bodyBegin = -1;    ///< token index of the body '{'
    int bodyEnd = -1;      ///< token index of the matching '}'
    int sigStartLine = 0;  ///< first line of the signature
    int sigLine = 0;       ///< line of the parameter list
    std::vector<ParamDecl> params;
    /** By-ref captures as written: "&name", or "&" for a bare `[&]`. */
    std::vector<std::string> refCaptures;
    /** Token indices of co_await / co_yield in THIS body (suspension
     *  points; co_return is completion, not mid-body suspension). */
    std::vector<int> suspendPoints;

    /** True when @p idx lies strictly inside the body braces. */
    bool
    inBody(int idx) const
    {
        return bodyBegin >= 0 && idx > bodyBegin && idx < bodyEnd;
    }
};

/** Body token range of one for / while / do loop. */
struct LoopRange
{
    int line = 0;      ///< line of the loop keyword
    int bodyBegin = 0; ///< first body token
    int bodyEnd = 0;   ///< one past the last body token
};

/** Range-for loop over an unordered container. */
struct RangeForLoop
{
    int line = 0;    ///< line of the `for`
    std::string var; ///< iterated variable (or type) name
    int bodyBegin = 0;
    int bodyEnd = 0;
};

struct FileModel
{
    std::vector<FunctionModel> functions;
    std::vector<LoopRange> loops; ///< every loop body in the file
};

/** Build the scope/function model of one lexed file. */
FileModel buildFileModel(const SourceFile &f);

/** Loop bodies found in [begin, end) of the token stream. */
std::vector<LoopRange> findLoops(const std::vector<Token> &toks,
                                 int begin, int end);

/** Variable names declared with an unordered container type. */
std::set<std::string> collectUnorderedVars(const SourceFile &f);

/** Range-for loops whose range expression names an unordered var. */
std::vector<RangeForLoop>
findUnorderedRangeFors(const SourceFile &f,
                       const std::set<std::string> &vars);

} // namespace ndp::lint
