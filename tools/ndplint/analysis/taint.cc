#include "ndplint/analysis/taint.h"

namespace ndp::lint {

namespace {

using Tokens = std::vector<Token>;

bool
isAssignOp(const Token &t)
{
    return tokAnyOf(t, {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=",
                        "^=", "<<=", ">>="});
}

bool
isAccumOp(const Token &t)
{
    return tokAnyOf(t, {"+=", "-=", "*=", "/="});
}

/** One past the last token of the statement containing index @p i. */
int
statementEnd(const Tokens &toks, int i)
{
    int depth = 0;
    for (int k = i; k < static_cast<int>(toks.size()); ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (tokAnyOf(t, {"(", "[", "{"}))
            ++depth;
        else if (tokAnyOf(t, {")", "]", "}"})) {
            if (--depth < 0)
                return k;
        } else if (depth == 0 && tokIs(t, ";")) {
            return k;
        }
    }
    return static_cast<int>(toks.size()) - 1;
}

} // namespace

std::string
directSourceAt(const Tokens &toks, int i)
{
    const Token &t = toks[static_cast<size_t>(i)];
    if (!tokIsIdent(t))
        return "";
    const Token prev = i > 0 ? toks[static_cast<size_t>(i - 1)] : Token{};
    const Token next = i + 1 < static_cast<int>(toks.size())
                           ? toks[static_cast<size_t>(i + 1)]
                           : Token{};
    bool member = tokAnyOf(prev, {".", "->"});
    if (tokAnyOf(t, {"system_clock", "steady_clock",
                     "high_resolution_clock"}))
        return "std::chrono::" + t.text + " (wall clock)";
    if (tokAnyOf(t, {"rand", "srand"}) && tokIs(next, "(") && !member)
        return "std::" + t.text + "() (global PRNG)";
    if (tokIs(t, "time") && tokIs(next, "(") && !member)
        return "time() (wall clock)";
    if (tokIs(t, "random_device") && !member)
        return "std::random_device (hardware entropy)";
    if (tokIs(t, "hash") && tokIs(next, "<")) {
        int past = skipAngles(toks, i + 1);
        for (int k = i + 2; past > 0 && k < past - 1; ++k)
            if (tokIs(toks[static_cast<size_t>(k)], "*"))
                return "std::hash over a pointer type (address-based "
                       "hashing)";
    }
    if (tokIs(t, "reinterpret_cast") && tokIs(next, "<")) {
        int past = skipAngles(toks, i + 1);
        for (int k = i + 2; past > 0 && k < past - 1; ++k)
            if (tokAnyOf(toks[static_cast<size_t>(k)],
                         {"uintptr_t", "intptr_t"}))
                return "reinterpret_cast to an integer (address-"
                       "dependent value)";
    }
    return "";
}

TaintMap
computeLocalTaint(const SourceFile &f, const TaintMap &taintedFunctions)
{
    const Tokens &toks = f.tokens;
    TaintMap tm;

    // Hash-order taint: accumulation inside iteration over an
    // unordered container is order-dependent even when every addend is
    // deterministic.
    auto unordered = collectUnorderedVars(f);
    for (const RangeForLoop &loop : findUnorderedRangeFors(f, unordered)) {
        for (int k = loop.bodyBegin; k + 1 < loop.bodyEnd; ++k) {
            const Token &t = toks[static_cast<size_t>(k)];
            if (tokIsIdent(t) &&
                isAccumOp(toks[static_cast<size_t>(k + 1)]))
                tm[t.text] = "accumulated while iterating unordered "
                             "container '" +
                             loop.var + "' (hash order)";
        }
    }

    // Assignment propagation, two rounds: `x = a; b = x;` converges.
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!tokIsIdent(t) ||
                !isAssignOp(toks[static_cast<size_t>(i + 1)]))
                continue;
            if (tm.count(t.text) != 0)
                continue;
            int end = statementEnd(toks, i + 2);
            for (int j = i + 2; j < end; ++j) {
                const Token &r = toks[static_cast<size_t>(j)];
                std::string why = directSourceAt(toks, j);
                if (why.empty() && tokIsIdent(r)) {
                    if (auto it = tm.find(r.text); it != tm.end())
                        why = "'" + r.text + "', " + it->second;
                    else if (j + 1 < end &&
                             tokIs(toks[static_cast<size_t>(j + 1)],
                                   "(")) {
                        if (auto tf = taintedFunctions.find(r.text);
                            tf != taintedFunctions.end())
                            why = "call to '" + r.text + "()', " +
                                  tf->second;
                    }
                }
                if (!why.empty()) {
                    tm[t.text] = "assigned from " + why;
                    break;
                }
            }
        }
    }
    return tm;
}

} // namespace ndp::lint
