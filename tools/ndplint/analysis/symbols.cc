#include "ndplint/analysis/symbols.h"

#include "ndplint/analysis/taint.h"

namespace ndp::lint {

namespace {

using Tokens = std::vector<Token>;

/**
 * Classify one non-declaration occurrence of a channel name at @p k.
 * Member calls bump the matching counter; construction (`name(` in a
 * ctor init list) and plain member access stay neutral; anything else
 * means the channel escaped (returned, passed, aliased).
 */
void
countUse(const Tokens &toks, int k, ChannelEndpoint &ep)
{
    int n = static_cast<int>(toks.size());
    if (k + 3 < n && tokAnyOf(toks[static_cast<size_t>(k + 1)], {".", "->"}) &&
        tokIsIdent(toks[static_cast<size_t>(k + 2)]) &&
        tokIs(toks[static_cast<size_t>(k + 3)], "(")) {
        const std::string &callee = toks[static_cast<size_t>(k + 2)].text;
        if (callee == "put")
            ++ep.puts;
        else if (callee == "get")
            ++ep.gets;
        else if (callee == "close")
            ++ep.closes;
        // Other member calls (size(), peak(), ...) are neutral reads.
        return;
    }
    if (k + 1 < n && tokAnyOf(toks[static_cast<size_t>(k + 1)],
                              {"(", ".", "->"}))
        return; // construction or plain member access
    ++ep.escapes;
}

} // namespace

std::vector<ChannelDecl>
collectChannelDecls(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::vector<ChannelDecl> decls;
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (!tokIsIdent(t) || !tokIs(t, "Channel"))
            continue;
        if (!tokIs(toks[static_cast<size_t>(i + 1)], "<"))
            continue;
        int j = skipAngles(toks, i + 1);
        if (j < 0)
            continue;
        bool owning = true;
        while (j < static_cast<int>(toks.size()) &&
               tokAnyOf(toks[static_cast<size_t>(j)],
                        {"&", "&&", "*", "const"})) {
            if (!tokIs(toks[static_cast<size_t>(j)], "const"))
                owning = false;
            ++j;
        }
        if (j >= static_cast<int>(toks.size()) ||
            !tokIsIdent(toks[static_cast<size_t>(j)]))
            continue; // template argument position, not a declaration
        ChannelDecl d;
        d.name = toks[static_cast<size_t>(j)].text;
        d.tokenIdx = j;
        d.line = toks[static_cast<size_t>(j)].line;
        d.owning = owning;
        decls.push_back(std::move(d));
    }
    return decls;
}

SymbolIndex
buildSymbolIndex(const std::vector<SourceFile> &files)
{
    SymbolIndex idx;
    for (const SourceFile &f : files)
        idx.models.emplace(f.path, buildFileModel(f));

    // Coroutine names + direct-source taint seeds.
    for (const SourceFile &f : files) {
        const FileModel &m = idx.models.at(f.path);
        for (const FunctionModel &fn : m.functions) {
            if (fn.isLambda || fn.name.empty())
                continue;
            if (fn.hasCo)
                idx.coroutineNames.insert(fn.name);
            if (idx.taintedFunctions.count(fn.name) != 0)
                continue;
            for (int k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
                std::string why = directSourceAt(f.tokens, k);
                if (!why.empty()) {
                    idx.taintedFunctions[fn.name] =
                        "which reads " + why;
                    break;
                }
            }
        }
    }

    // Close the tainted set under calls, bounded: a five-hop chain of
    // wrappers is already far beyond anything in this tree.
    for (int round = 0; round < 5; ++round) {
        bool changed = false;
        for (const SourceFile &f : files) {
            const FileModel &m = idx.models.at(f.path);
            for (const FunctionModel &fn : m.functions) {
                if (fn.isLambda || fn.name.empty() ||
                    idx.taintedFunctions.count(fn.name) != 0)
                    continue;
                for (int k = fn.bodyBegin + 1; k + 1 < fn.bodyEnd; ++k) {
                    const Token &t = f.tokens[static_cast<size_t>(k)];
                    if (!tokIsIdent(t) || t.text == fn.name ||
                        !tokIs(f.tokens[static_cast<size_t>(k + 1)], "("))
                        continue;
                    auto it = idx.taintedFunctions.find(t.text);
                    if (it == idx.taintedFunctions.end())
                        continue;
                    idx.taintedFunctions[fn.name] =
                        "which calls '" + t.text + "()', " + it->second;
                    changed = true;
                    break;
                }
            }
        }
        if (!changed)
            break;
    }

    // Channel endpoints: declarations first, then tree-wide usage.
    std::map<std::string, std::set<int>> declTokens; // path -> tok idx
    for (const SourceFile &f : files) {
        for (const ChannelDecl &d : collectChannelDecls(f)) {
            declTokens[f.path].insert(d.tokenIdx);
            auto [it, fresh] = idx.channels.try_emplace(d.name);
            if (fresh) {
                it->second.declFile = f.path;
                it->second.declLine = d.line;
            }
            it->second.owning = it->second.owning || d.owning;
        }
    }
    for (const SourceFile &f : files) {
        const std::set<int> &skip = declTokens[f.path];
        for (int k = 0; k < static_cast<int>(f.tokens.size()); ++k) {
            const Token &t = f.tokens[static_cast<size_t>(k)];
            if (!tokIsIdent(t) || skip.count(k) != 0)
                continue;
            auto it = idx.channels.find(t.text);
            if (it != idx.channels.end())
                countUse(f.tokens, k, it->second);
        }
    }
    return idx;
}

} // namespace ndp::lint
