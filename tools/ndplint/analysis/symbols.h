/**
 * @file
 * ndp-lint analysis layer, pass 2: the cross-file symbol index.
 *
 * Built once over the whole file set before any rule runs, the index
 * holds the facts that only exist ACROSS translation units:
 *
 *  - FileModel per file (pass 1 output, cached here so each rule does
 *    not re-derive scopes),
 *  - the names of coroutine functions (body contains co_await /
 *    co_return / co_yield) anywhere in the tree,
 *  - the tainted-function map for the determinism rules: functions
 *    whose return value derives from a banned nondeterminism source,
 *    closed under calls with a bounded fixpoint — this is what makes
 *    `r.wall = wallSeconds();` in one TU a finding when wallSeconds()
 *    reads the wall clock in another TU,
 *  - channel endpoints: every `Channel<T> name` declaration with its
 *    tree-wide put/get/close/escape usage counts, keyed by variable
 *    name (a channel's producer and consumer usually live in different
 *    files from its declaration).
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ndplint/analysis/model.h"

namespace ndp::lint {

/** One `Channel<...> name` declaration site in a file. */
struct ChannelDecl
{
    std::string name;
    int tokenIdx = -1; ///< token index of the declared name
    int line = 0;
    /** Declared by value (not `*` / `&`): this object owns the
     *  buffered messages, so it is the accountable endpoint. */
    bool owning = false;
};

/** Channel declarations in one lexed file, in file order. */
std::vector<ChannelDecl> collectChannelDecls(const SourceFile &f);

/** Tree-wide usage profile of one channel variable name. */
struct ChannelEndpoint
{
    std::string declFile; ///< file of the first declaration seen
    int declLine = 0;
    bool owning = false;
    int puts = 0;   ///< `.put(` member calls
    int gets = 0;   ///< `.get(` member calls
    int closes = 0; ///< `.close(` member calls
    /**
     * Uses that are neither member calls nor the declaration itself:
     * returned, passed as an argument, address-taken, aliased. An
     * escaped channel may be drained through the alias, so escape > 0
     * disarms the never-drained rule.
     */
    int escapes = 0;
};

struct SymbolIndex
{
    /** path -> pass-1 model (built once, shared by every rule). */
    std::map<std::string, FileModel> models;
    /** Names of functions whose own body is a coroutine. */
    std::set<std::string> coroutineNames;
    /** function name -> why its return value is nondeterministic. */
    std::map<std::string, std::string> taintedFunctions;
    /** channel variable name -> tree-wide endpoint profile. */
    std::map<std::string, ChannelEndpoint> channels;

    const FileModel *
    modelFor(const std::string &path) const
    {
        auto it = models.find(path);
        return it == models.end() ? nullptr : &it->second;
    }
};

/** Build the index over the whole file set (pass 2). */
SymbolIndex buildSymbolIndex(const std::vector<SourceFile> &files);

} // namespace ndp::lint
