/**
 * @file
 * Minimal C++ lexer for ndp-lint.
 *
 * Produces a flat token stream (identifiers, numbers, string/char
 * literals, punctuators) with line numbers, skipping comments and
 * preprocessor directives. While skipping comments it records
 * suppression directives — an `ndplint` marker, a colon, then
 *
 *     allow(rule-a, rule-b: free-form rationale)
 *
 * — and which lines carry code tokens at all, so the rule engine can
 * honour a suppression placed on the violating line itself or on the
 * comment block immediately above it. The rationale (everything after
 * the first top-level colon inside the parens) is mandatory for a
 * suppression to pass `--audit-suppressions`; the legacy form without
 * an in-paren rationale still suppresses but is flagged by the audit.
 *
 * This is deliberately not a parser: every ndp-lint rule is a token
 * pattern with small amounts of bracket matching, which keeps the tool
 * dependency-free (no libclang) and fast enough to run on every build.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace ndp::lint {

enum class Tok
{
    Identifier,
    Number,
    String, // string, char, and raw-string literals
    Punct,
    Eof,
};

struct Token
{
    Tok kind = Tok::Eof;
    std::string text;
    int line = 0;
};

/** One recorded suppression directive (for `--audit-suppressions`). */
struct Suppression
{
    int line = 0;
    /** Rules named in the directive ("*" = all). */
    std::set<std::string> rules;
    /** In-paren rationale; empty = legacy unrationaled directive. */
    std::string reason;
};

/** One lexed translation unit plus its suppression side-tables. */
struct SourceFile
{
    std::string path;
    std::vector<Token> tokens;
    /** line -> rule names allowed on that line ("*" allows all). */
    std::map<int, std::set<std::string>> allows;
    /** Every directive, in file order, with its rationale. */
    std::vector<Suppression> suppressions;
    /** Lines carrying at least one code (non-comment) token. */
    std::set<int> codeLines;
};

/** Lex @p src (the file contents) into tokens + suppression tables. */
SourceFile lexSource(std::string path, std::string_view src);

/** Read @p path from disk and lex it. @throws std::runtime_error. */
SourceFile lexFile(const std::string &path);

} // namespace ndp::lint
