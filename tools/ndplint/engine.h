/**
 * @file
 * ndp-lint driver: builds the analysis passes (task-name collection +
 * symbol index) over a set of lexed files, runs the rule registry
 * under the scope config, applies per-line suppressions, and renders
 * text, JSON, or SARIF reports plus the suppression audit.
 */

#pragma once

#include <string>
#include <vector>

#include "ndplint/config.h"
#include "ndplint/rules.h"

namespace ndp::lint {

struct LintOptions
{
    /** Run only these rules (empty = the whole registry). */
    std::vector<std::string> ruleFilter;
    /**
     * Ignore per-rule path scoping (banned-nondeterminism normally
     * fires only under src/sim + src/core). Used by the fixture tests.
     */
    bool ignorePathScope = false;
    /** Per-rule path scoping; see config.h / `.ndplint.json`. */
    ScopeConfig scope = ScopeConfig::builtin();
};

struct LintStats
{
    std::vector<Finding> findings; ///< unsuppressed, sorted
    int suppressed = 0;
    int filesScanned = 0;
};

/**
 * A finding is suppressed by an allow directive (see lexer.h) naming
 * its rule — or the `*` wildcard — on any line of
 * [finding.line, finding.endLine], or on the run of comment/blank
 * lines immediately above finding.line.
 */
bool isSuppressed(const SourceFile &f, const Finding &fd);

LintStats runLint(const std::vector<SourceFile> &files,
                  const LintOptions &opt = {});

std::string renderText(const LintStats &stats);
std::string renderJson(const LintStats &stats);
/** SARIF 2.1.0, for GitHub code-scanning annotations. */
std::string renderSarif(const LintStats &stats);

/** `--audit-suppressions` output. */
struct SuppressionAudit
{
    int total = 0;
    /** Directives with no rationale after the rule list (legacy
     *  syntax); these fail the CI audit step. */
    int unrationaled = 0;
    std::string text;
};

SuppressionAudit auditSuppressions(const std::vector<SourceFile> &files);

} // namespace ndp::lint
