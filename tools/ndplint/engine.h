/**
 * @file
 * ndp-lint driver: runs the rule registry over a set of lexed files,
 * applies per-line suppressions, and renders text or JSON reports.
 */

#pragma once

#include <string>
#include <vector>

#include "ndplint/rules.h"

namespace ndp::lint {

struct LintOptions
{
    /** Run only these rules (empty = the whole registry). */
    std::vector<std::string> ruleFilter;
    /**
     * Ignore per-rule path scoping (banned-nondeterminism normally
     * fires only under src/sim + src/core). Used by the fixture tests.
     */
    bool ignorePathScope = false;
};

struct LintStats
{
    std::vector<Finding> findings; ///< unsuppressed, sorted
    int suppressed = 0;
    int filesScanned = 0;
};

/**
 * A finding is suppressed by an `ndplint: allow(rule)` (or allow(*))
 * directive on any line of [finding.line, finding.endLine], or on the
 * run of comment/blank lines immediately above finding.line.
 */
bool isSuppressed(const SourceFile &f, const Finding &fd);

LintStats runLint(const std::vector<SourceFile> &files,
                  const LintOptions &opt = {});

std::string renderText(const LintStats &stats);
std::string renderJson(const LintStats &stats);

} // namespace ndp::lint
