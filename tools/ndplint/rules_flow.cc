/**
 * @file
 * The flow-aware rule families built on the analysis layer (pass-1
 * file models, pass-2 symbol index, pass-3 taint): coroutine-lifetime
 * escape analysis, determinism taint, and the scheduler/channel
 * protocol checks.
 */

#include "ndplint/analysis/symbols.h"
#include "ndplint/analysis/taint.h"
#include "ndplint/rules.h"

namespace ndp::lint {

namespace {

using Tokens = std::vector<Token>;

/** One past the last token of the statement containing index @p i. */
int
stmtEnd(const Tokens &toks, int i)
{
    int depth = 0;
    for (int k = i; k < static_cast<int>(toks.size()); ++k) {
        const Token &t = toks[static_cast<size_t>(k)];
        if (tokAnyOf(t, {"(", "[", "{"}))
            ++depth;
        else if (tokAnyOf(t, {")", "]", "}"})) {
            if (--depth < 0)
                return k;
        } else if (depth == 0 && tokIs(t, ";")) {
            return k;
        }
    }
    return static_cast<int>(toks.size()) - 1;
}

/** Member call `base.<callee>(` / `base-><callee>(` at @p i? */
bool
isMemberCall(const Tokens &toks, int i, std::string_view callee)
{
    return i >= 1 && i + 1 < static_cast<int>(toks.size()) &&
           tokIs(toks[static_cast<size_t>(i)], callee) &&
           tokIsIdent(toks[static_cast<size_t>(i)]) &&
           tokAnyOf(toks[static_cast<size_t>(i - 1)], {".", "->"}) &&
           tokIs(toks[static_cast<size_t>(i + 1)], "(");
}

// ---------------------------------------------------------------------------
// Family 1: coroutine-lifetime escape analysis.
// ---------------------------------------------------------------------------

/**
 * The flow-aware sibling of coroutine-ref-param / coroutine-ref-
 * capture: instead of flagging the signature shape, it proves a
 * borrowed name is actually live ACROSS a suspension point — either
 * used after a co_await statement completes, or used anywhere in a
 * loop that also suspends (the next iteration's use happens after
 * this iteration's suspension). That is exactly the PR 3
 * ASan-confirmed use-after-free: a by-reference parameter read again
 * after the caller's frame may have died while the coroutine was
 * suspended.
 */
class CoroutineEscapeRule final : public Rule
{
  public:
    std::string name() const override { return "coroutine-escape"; }

    std::string
    description() const override
    {
        return "borrowed coroutine state (reference/string_view "
               "parameter or by-reference capture) used after — or "
               "across, inside a loop — a co_await suspension point: "
               "the referent may be destroyed while the coroutine is "
               "suspended (the PR 3 use-after-free class); copy the "
               "value before suspending or pass an owning handle";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        FileModel scratch;
        const FileModel &model = modelFor(f, ctx, scratch);
        for (const FunctionModel &fn : model.functions) {
            if (!fn.hasCo || fn.suspendPoints.empty())
                continue;
            // End of each suspend statement: a use inside the
            // co_await expression itself is evaluated BEFORE the
            // suspension, so it only counts via the loop case.
            std::vector<int> suspendEnds;
            suspendEnds.reserve(fn.suspendPoints.size());
            for (int s : fn.suspendPoints)
                suspendEnds.push_back(stmtEnd(toks, s));

            struct Borrow
            {
                std::string name;
                std::string kind;
            };
            std::vector<Borrow> borrows;
            for (const ParamDecl &p : fn.params) {
                if (p.name.empty())
                    continue;
                if (p.byRef)
                    borrows.push_back(
                        {p.name, "by-reference parameter"});
                else if (p.stringView)
                    borrows.push_back({p.name, "string_view parameter"});
            }
            for (const std::string &cap : fn.refCaptures)
                if (cap.size() > 1) // "&name"; bare "&" is untrackable
                    borrows.push_back(
                        {cap.substr(1), "by-reference capture"});

            for (const Borrow &b : borrows) {
                int badUse = -1;
                std::string how;
                for (int k = fn.bodyBegin + 1;
                     k < fn.bodyEnd && badUse < 0; ++k) {
                    const Token &t = toks[static_cast<size_t>(k)];
                    if (!tokIsIdent(t) || t.text != b.name)
                        continue;
                    // `other.name` is a field of something else.
                    if (tokAnyOf(toks[static_cast<size_t>(k - 1)],
                                 {".", "->", "::"}))
                        continue;
                    // Sequenced after a completed suspend statement?
                    for (size_t si = 0; si < suspendEnds.size(); ++si) {
                        if (k > suspendEnds[si]) {
                            badUse = k;
                            how = "after the co_await at line " +
                                  std::to_string(
                                      toks[static_cast<size_t>(
                                               fn.suspendPoints[si])]
                                          .line);
                            break;
                        }
                    }
                    if (badUse >= 0)
                        break;
                    // In a loop that also suspends?
                    for (const LoopRange &loop : model.loops) {
                        if (k < loop.bodyBegin || k >= loop.bodyEnd)
                            continue;
                        for (int s : fn.suspendPoints) {
                            if (s >= loop.bodyBegin &&
                                s < loop.bodyEnd) {
                                badUse = k;
                                how = "across the suspending loop at "
                                      "line " +
                                      std::to_string(loop.line);
                                break;
                            }
                        }
                        if (badUse >= 0)
                            break;
                    }
                }
                if (badUse < 0)
                    continue;
                Finding fd;
                fd.rule = name();
                fd.path = f.path;
                fd.line = fn.sigStartLine;
                fd.endLine = toks[static_cast<size_t>(badUse)].line;
                fd.message =
                    "coroutine '" + fn.name + "' uses " + b.kind +
                    " '" + b.name + "' at line " +
                    std::to_string(toks[static_cast<size_t>(badUse)]
                                       .line) +
                    " " + how +
                    "; the referent may be destroyed while the "
                    "coroutine is suspended (use-after-free) — copy "
                    "it before suspending or pass an owning handle";
                out.push_back(std::move(fd));
            }
        }
    }
};

// ---------------------------------------------------------------------------
// Family 2: determinism taint.
// ---------------------------------------------------------------------------

/**
 * Report-typed variable names in this file: declarations whose type
 * identifier ends in "Report" or "Metrics" (InferenceReport,
 * TrainReport, StageMetrics, ...). Fields of these are serialized by
 * the determinism suite, so they are taint sinks.
 */
std::set<std::string>
collectReportVars(const SourceFile &f)
{
    const Tokens &toks = f.tokens;
    std::set<std::string> vars;
    auto isReportType = [](const std::string &s) {
        auto ends = [&](std::string_view suf) {
            return s.size() > suf.size() &&
                   s.compare(s.size() - suf.size(), suf.size(), suf) ==
                       0;
        };
        return ends("Report") || ends("Metrics");
    };
    for (int i = 0; i + 1 < static_cast<int>(toks.size()); ++i) {
        const Token &t = toks[static_cast<size_t>(i)];
        if (!tokIsIdent(t) || !isReportType(t.text))
            continue;
        int j = i + 1;
        while (j < static_cast<int>(toks.size()) &&
               tokAnyOf(toks[static_cast<size_t>(j)],
                        {"&", "&&", "*", "const"}))
            ++j;
        if (j < static_cast<int>(toks.size()) &&
            tokIsIdent(toks[static_cast<size_t>(j)]))
            vars.insert(toks[static_cast<size_t>(j)].text);
    }
    return vars;
}

class DeterminismTaintRule final : public Rule
{
  public:
    std::string name() const override { return "determinism-taint"; }

    std::string
    description() const override
    {
        return "value derived from a banned nondeterminism source "
               "(wall clock, global PRNG, address-based hashing, "
               "unordered iteration order) — through assignments and "
               "cross-TU calls — reaches a Report field, a trace "
               "event, or a scheduler charge/yield decision, breaking "
               "bit-exact determinism";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        const TaintMap &fns = ctx.index.taintedFunctions;
        TaintMap local = computeLocalTaint(f, fns);
        std::set<std::string> reportVars = collectReportVars(f);

        // Why the value starting at token j (scanning to stmt end) is
        // tainted, or "".
        auto taintWhy = [&](int j, int end) -> std::string {
            for (int k = j; k < end; ++k) {
                const Token &t = toks[static_cast<size_t>(k)];
                std::string why = directSourceAt(toks, k);
                if (!why.empty())
                    return why;
                if (!tokIsIdent(t))
                    continue;
                if (auto it = local.find(t.text); it != local.end())
                    return "'" + t.text + "', " + it->second;
                if (k + 1 < end &&
                    tokIs(toks[static_cast<size_t>(k + 1)], "(")) {
                    if (auto it = fns.find(t.text); it != fns.end())
                        return "call to '" + t.text + "()', " +
                               it->second;
                }
            }
            return "";
        };
        auto report = [&](int line, const std::string &sink,
                          const std::string &why) {
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = line;
            fd.endLine = line;
            fd.message = "nondeterministic value flows into " + sink +
                         ": " + why +
                         "; route it through sim time / seeded Rng / "
                         "ordered iteration so the determinism suite "
                         "stays bit-exact";
            out.push_back(std::move(fd));
        };

        for (int i = 0; i + 3 < static_cast<int>(toks.size()); ++i) {
            const Token &t = toks[static_cast<size_t>(i)];
            if (!tokIsIdent(t))
                continue;
            // Sink A: report field assignment `r.field = <tainted>`.
            if (reportVars.count(t.text) != 0 &&
                tokAnyOf(toks[static_cast<size_t>(i + 1)],
                         {".", "->"}) &&
                tokIsIdent(toks[static_cast<size_t>(i + 2)]) &&
                tokAnyOf(toks[static_cast<size_t>(i + 3)],
                         {"=", "+=", "-=", "*=", "/="})) {
                int end = stmtEnd(toks, i + 4);
                std::string why = taintWhy(i + 4, end);
                if (!why.empty())
                    report(t.line,
                           "report field '" + t.text + "." +
                               toks[static_cast<size_t>(i + 2)].text +
                               "'",
                           why);
                continue;
            }
            // Sink B: trace serialization — instant()/counter()
            // always, begin()/end() when the receiver names a tracer.
            bool traceSink = isMemberCall(toks, i, "instant") ||
                             isMemberCall(toks, i, "counter");
            if (!traceSink && (isMemberCall(toks, i, "begin") ||
                               isMemberCall(toks, i, "end"))) {
                int base = memberCallBase(toks, i);
                if (base >= 0) {
                    const std::string &bn =
                        toks[static_cast<size_t>(base)].text;
                    traceSink = bn.find("race") != std::string::npos ||
                                bn.find("RACE") != std::string::npos;
                }
            }
            // Sink C: scheduler decisions.
            bool schedSink = isMemberCall(toks, i, "charge") ||
                             isMemberCall(toks, i, "yield");
            if (!traceSink && !schedSink)
                continue;
            int close = matchForward(toks, i + 1);
            if (close < 0)
                continue;
            std::string why = taintWhy(i + 2, close);
            if (why.empty())
                continue;
            report(t.line,
                   traceSink ? "trace event '" + t.text + "(...)'"
                             : "scheduler decision '" + t.text +
                                   "(...)'",
                   why);
        }
    }
};

// ---------------------------------------------------------------------------
// Family 3: scheduler / channel protocol checks.
// ---------------------------------------------------------------------------

/**
 * A coroutine that calls Scheduler::charge() somewhere in its body
 * but never co_awaits a yield() is billed for GPU time yet invisible
 * to preemption: the fair-share scheduler can never deschedule it at
 * a batch boundary, so one job can starve the cluster (the exact gap
 * fixed in src/core/online.cc by this PR).
 */
class MissingBatchYieldRule final : public Rule
{
  public:
    std::string name() const override { return "missing-batch-yield"; }

    std::string
    description() const override
    {
        return "coroutine charges scheduler time (`sched->charge`) "
               "but never yields (`co_await sched->yield(job)`): the "
               "job is billed yet unpreemptable, so fair-share "
               "scheduling cannot deschedule it at batch boundaries";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        FileModel scratch;
        for (const FunctionModel &fn : modelFor(f, ctx, scratch).functions) {
            if (!fn.hasCo)
                continue;
            int chargeIdx = -1;
            bool hasYield = false;
            for (int k = fn.bodyBegin + 1; k < fn.bodyEnd; ++k) {
                if (isMemberCall(toks, k, "charge") && chargeIdx < 0)
                    chargeIdx = k;
                else if (isMemberCall(toks, k, "yield"))
                    hasYield = true;
            }
            if (chargeIdx < 0 || hasYield)
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = toks[static_cast<size_t>(chargeIdx)].line;
            fd.endLine = fd.line;
            fd.message =
                "coroutine '" + fn.name +
                "' charges scheduler time here but never co_awaits a "
                "yield(): the job is billed yet unpreemptable — add "
                "`co_await sched->yield(job)` at a batch boundary";
            out.push_back(std::move(fd));
        }
    }
};

/**
 * put() on a channel sequenced after its close() in the same or a
 * nested scope. Channel::put asserts `!closed`, so this is a
 * guaranteed runtime abort on the path that reaches it.
 */
class SendAfterCloseRule final : public Rule
{
  public:
    std::string name() const override { return "send-after-close"; }

    std::string
    description() const override
    {
        return "channel put() sequenced after close() of the same "
               "channel in the same (or nested) scope: put asserts "
               "the channel is open, so this path aborts at runtime";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        const Tokens &toks = f.tokens;
        int n = static_cast<int>(toks.size());
        // Channel names: declared in this file or known tree-wide.
        std::set<std::string> names;
        for (const ChannelDecl &d : collectChannelDecls(f))
            names.insert(d.name);
        for (const auto &[nm, ep] : ctx.index.channels)
            names.insert(nm);
        if (names.empty())
            return;

        for (int c = 2; c + 1 < n; ++c) {
            if (!isMemberCall(toks, c, "close"))
                continue;
            int base = memberCallBase(toks, c);
            if (base < 0 || names.count(
                                toks[static_cast<size_t>(base)].text) == 0)
                continue;
            const std::string &chan =
                toks[static_cast<size_t>(base)].text;
            // Scope of the close: up to the '}' closing its innermost
            // enclosing brace. A put on the SAME channel inside that
            // interval — not separated by an `else` at close depth —
            // executes after the close.
            int depth = 0;
            for (int k = c + 1; k < n; ++k) {
                const Token &t = toks[static_cast<size_t>(k)];
                if (tokIs(t, "{")) {
                    ++depth;
                    continue;
                }
                if (tokIs(t, "}")) {
                    if (--depth < 0)
                        break; // left the close's scope
                    continue;
                }
                if (depth == 0 && tokIs(t, "else"))
                    break; // alternate branch, not sequenced after
                if (!isMemberCall(toks, k, "put"))
                    continue;
                int pb = memberCallBase(toks, k);
                if (pb < 0 ||
                    toks[static_cast<size_t>(pb)].text != chan)
                    continue;
                Finding fd;
                fd.rule = name();
                fd.path = f.path;
                fd.line = toks[static_cast<size_t>(k)].line;
                fd.endLine = fd.line;
                fd.message =
                    "put() on channel '" + chan +
                    "' is sequenced after its close() at line " +
                    std::to_string(
                        toks[static_cast<size_t>(c)].line) +
                    "; Channel::put asserts the channel is open, so "
                    "this path aborts";
                out.push_back(std::move(fd));
                break; // one finding per close site
            }
        }
    }
};

/**
 * An owning channel that producers put() into but nothing ever
 * get()s from — and which never escapes to an alias that could drain
 * it — is a wired-but-undrained endpoint: once the buffer fills, the
 * producer suspends forever and the pipeline deadlocks. Counted
 * tree-wide via the symbol index (producer and consumer usually live
 * in different files); reported at the declaration.
 */
class ChannelNeverDrainedRule final : public Rule
{
  public:
    std::string name() const override { return "channel-never-drained"; }

    std::string
    description() const override
    {
        return "owning channel with tree-wide put()s but no get()s "
               "and no escaping alias: the endpoint is wired but "
               "never drained, so its producer eventually blocks "
               "forever";
    }

    void
    analyze(const SourceFile &f, const AnalysisContext &ctx,
            std::vector<Finding> &out) const override
    {
        for (const auto &[nm, ep] : ctx.index.channels) {
            if (ep.declFile != f.path)
                continue;
            if (!ep.owning || ep.puts == 0 || ep.gets > 0 ||
                ep.escapes > 0)
                continue;
            Finding fd;
            fd.rule = name();
            fd.path = f.path;
            fd.line = ep.declLine;
            fd.endLine = ep.declLine;
            fd.message =
                "channel '" + nm + "' receives " +
                std::to_string(ep.puts) +
                " put(s) tree-wide but is never get() from and never "
                "aliased; the producer blocks forever once the "
                "buffer fills — wire up a consumer or drop the "
                "channel";
            out.push_back(std::move(fd));
        }
    }
};

} // namespace

void
appendFlowRules(std::vector<std::unique_ptr<Rule>> &rules)
{
    rules.push_back(std::make_unique<CoroutineEscapeRule>());
    rules.push_back(std::make_unique<DeterminismTaintRule>());
    rules.push_back(std::make_unique<MissingBatchYieldRule>());
    rules.push_back(std::make_unique<SendAfterCloseRule>());
    rules.push_back(std::make_unique<ChannelNeverDrainedRule>());
}

} // namespace ndp::lint
