/**
 * @file
 * ndptrace CLI.
 *
 *     ndptrace [options] <trace.json>
 *
 * Options:
 *   --check        validate trace structure only (CI gate); prints
 *                  the first errors found
 *   --json         machine-readable attribution output
 *   --node <name>  restrict the critical-path sweep to one node's
 *                  spans (per-store attribution)
 *
 * Exit codes: 0 clean, 1 check failures, 2 usage/IO error.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ndptrace/analyzer.h"

using namespace ndp::trace;

namespace {

void
usage()
{
    std::cerr << "usage: ndptrace [--check] [--json] [--node <name>] "
                 "<trace.json>\n";
}

void
printAttribution(const Attribution &a, const std::string &label)
{
    std::printf("%s (%.6f s attributed):\n", label.c_str(), a.totalS);
    for (const auto &[cat, sec] : a.byCat) {
        double pct = a.totalS > 0.0 ? 100.0 * sec / a.totalS : 0.0;
        std::printf("  %-6s %12.6f s  %5.1f%%\n", cat.c_str(), sec,
                    pct);
    }
    std::printf("  bottleneck: %s\n",
                a.bottleneck.empty() ? "(none)" : a.bottleneck.c_str());
}

void
printAttributionJson(std::ostream &os, const Attribution &a,
                     const std::string &node)
{
    os << "{\"node\":\"" << node << "\",\"totalS\":" << a.totalS
       << ",\"byCat\":{";
    bool first = true;
    for (const auto &[cat, sec] : a.byCat) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << cat << "\":" << sec;
    }
    os << "},\"bottleneck\":\"" << a.bottleneck << "\"}";
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    bool json = false;
    std::string node;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--check") {
            check = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--node") {
            if (++i >= argc) {
                usage();
                return 2;
            }
            node = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream f(path);
    if (!f) {
        std::cerr << "ndptrace: cannot open " << path << "\n";
        return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();

    if (check) {
        CheckResult res = checkTrace(text);
        if (!res.ok()) {
            for (const std::string &e : res.errors)
                std::cerr << "ndptrace: " << e << "\n";
            std::cerr << "ndptrace: " << path << ": "
                      << res.errors.size() << " problem(s) in "
                      << res.events << " events\n";
            return 1;
        }
        std::printf("%s: ok (%zu events)\n", path.c_str(),
                    res.events);
        return 0;
    }

    Trace trace;
    std::string err;
    if (!parseTrace(text, trace, err)) {
        std::cerr << "ndptrace: " << path << ": " << err << "\n";
        return 2;
    }

    if (json) {
        std::ostringstream out;
        out << "{\"events\":"
            << (trace.spans.size() + trace.instants.size() +
                trace.asyncSpans.size() + trace.counters.size())
            << ",\"makespanS\":" << trace.makespanS()
            << ",\"attribution\":[";
        if (node.empty()) {
            printAttributionJson(out, criticalPath(trace), "");
            for (const std::string &n : workNodes(trace)) {
                out << ',';
                printAttributionJson(out, criticalPath(trace, n), n);
            }
        } else {
            printAttributionJson(out, criticalPath(trace, node),
                                 node);
        }
        out << "]}";
        std::cout << out.str() << "\n";
        return 0;
    }

    std::printf("%s: %zu spans, %zu async, %zu counter samples, "
                "makespan %.6f s\n",
                path.c_str(), trace.spans.size(),
                trace.asyncSpans.size(), trace.counters.size(),
                trace.makespanS());
    if (node.empty()) {
        printAttribution(criticalPath(trace), "critical path");
        for (const std::string &n : workNodes(trace))
            printAttribution(criticalPath(trace, n), n);
    } else {
        printAttribution(criticalPath(trace, node), node);
    }
    return 0;
}
