/**
 * @file
 * ndptrace: offline analysis of obs-layer trace files.
 *
 * Loads Chrome/Perfetto trace-event JSON produced by obs::Tracer,
 * validates its structure (`--check`), and extracts the end-to-end
 * critical path: a backward sweep over all work spans that attributes
 * every second of the run's makespan to one of the buckets
 * {disk, cpu, gpu, wire, tuner, sync, stall}. The non-stall bucket
 * with the most attributed time is the run's bottleneck — the same
 * verdict npeStageTimes() and the APO planner reach analytically,
 * which the test suite cross-validates.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ndp::trace {

/** One duration span ('X' event) resolved against track metadata. */
struct Span
{
    std::string node;
    std::string station;
    std::string cat;
    std::string name;
    double t0 = 0.0;
    double durS = 0.0;

    double endS() const { return t0 + durS; }
};

/** One counter sample ('C' event). */
struct CounterSample
{
    std::string node;
    std::string name;
    double tsS = 0.0;
    double value = 0.0;
};

/** The parts of a trace the analyzer works on. */
struct Trace
{
    std::vector<Span> spans;    ///< 'X' complete spans
    std::vector<Span> instants; ///< 'i' markers (durS == 0)
    /** 'b'/'e' pairs resolved into spans (flows, online requests). */
    std::vector<Span> asyncSpans;
    std::vector<CounterSample> counters;

    /** Latest end time over all spans (the run's makespan). */
    double makespanS() const;
};

struct CheckResult
{
    std::vector<std::string> errors;
    size_t events = 0;

    bool ok() const { return errors.empty(); }
};

/** Structural validation of raw trace JSON: parseable, known pids and
 *  tids, numeric ts/dur, balanced async begin/end per id, numeric
 *  counter values. */
CheckResult checkTrace(const std::string &text);

/** Parse trace JSON into the analyzer model. Returns false with @p err
 *  set on malformed input (checkTrace() gives finer diagnostics). */
bool parseTrace(const std::string &text, Trace &out, std::string &err);

/** parseTrace() over a file's contents. */
bool loadTrace(const std::string &path, Trace &out, std::string &err);

/**
 * Where the run's wall time went, per attribution bucket. Buckets are
 * span categories; "stall" covers makespan not under any work span.
 */
struct Attribution
{
    /** Total attributed time == the sweep's makespan (seconds). */
    double totalS = 0.0;
    /** bucket name -> seconds; buckets sum to totalS. */
    std::map<std::string, double> byCat;
    /** Non-stall bucket with the most attributed time ("" if none). */
    std::string bottleneck;

    double catS(const std::string &c) const;
};

/**
 * Critical-path attribution over work spans (categories disk, cpu,
 * gpu, wire, tuner, sync). A backward sweep from the makespan picks,
 * at every instant, the covering span with the latest end; gaps where
 * no work span covers the cursor are attributed to "stall". When
 * @p node is non-empty only that node's spans participate (per-store
 * attribution) — the makespan stays global so stall is comparable
 * across stores.
 */
Attribution criticalPath(const Trace &t, const std::string &node = "");

/** Nodes that own at least one work span, in first-seen order. */
std::vector<std::string> workNodes(const Trace &t);

} // namespace ndp::trace
