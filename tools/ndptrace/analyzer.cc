#include "ndptrace/analyzer.h"

#include <algorithm>
#include <fstream>
#include <queue>
#include <set>
#include <sstream>

#include "ndptrace/json.h"

namespace ndp::trace {

namespace {

constexpr double kEps = 1e-9;

/** Span categories that represent work (critical-path candidates). */
bool
isWorkCat(const std::string &cat)
{
    return cat == "disk" || cat == "cpu" || cat == "gpu" ||
           cat == "wire" || cat == "tuner" || cat == "sync";
}

struct TrackKey
{
    int pid = 0;
    int tid = 0;

    bool
    operator<(const TrackKey &o) const
    {
        return pid != o.pid ? pid < o.pid : tid < o.tid;
    }
};

/** pid -> node name and (pid, tid) -> station name, from 'M' events. */
struct Meta
{
    std::map<int, std::string> nodeOf;
    std::map<TrackKey, std::string> stationOf;
};

Meta
collectMeta(const JsonValue &events)
{
    Meta m;
    for (const JsonValue &e : events.arr) {
        const JsonValue *ph = e.find("ph");
        if (ph == nullptr || ph->stringOr("") != "M")
            continue;
        const JsonValue *name = e.find("name");
        const JsonValue *args = e.find("args");
        const JsonValue *pid = e.find("pid");
        if (name == nullptr || args == nullptr || pid == nullptr)
            continue;
        int p = static_cast<int>(pid->numberOr(0));
        if (name->stringOr("") == "process_name") {
            if (const JsonValue *n = args->find("name"))
                m.nodeOf[p] = n->stringOr("");
        } else if (name->stringOr("") == "thread_name") {
            const JsonValue *tid = e.find("tid");
            int t = tid != nullptr
                        ? static_cast<int>(tid->numberOr(0))
                        : 0;
            if (const JsonValue *n = args->find("name"))
                m.stationOf[{p, t}] = n->stringOr("");
        }
    }
    return m;
}

const JsonValue *
traceEvents(const JsonValue &root, std::string &err)
{
    if (!root.isObject()) {
        err = "top level is not an object";
        return nullptr;
    }
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        err = "missing traceEvents array";
        return nullptr;
    }
    return events;
}

} // namespace

double
Trace::makespanS() const
{
    double end = 0.0;
    for (const Span &s : spans)
        end = std::max(end, s.endS());
    for (const Span &s : asyncSpans)
        end = std::max(end, s.endS());
    return end;
}

double
Attribution::catS(const std::string &c) const
{
    auto it = byCat.find(c);
    return it != byCat.end() ? it->second : 0.0;
}

CheckResult
checkTrace(const std::string &text)
{
    CheckResult res;
    JsonValue root;
    std::string err;
    if (!parseJson(text, root, err)) {
        res.errors.push_back("parse error: " + err);
        return res;
    }
    const JsonValue *events = traceEvents(root, err);
    if (events == nullptr) {
        res.errors.push_back(err);
        return res;
    }
    Meta meta = collectMeta(*events);

    // Async begin/end balance per id.
    std::map<uint64_t, long> asyncDepth;

    size_t idx = 0;
    for (const JsonValue &e : events->arr) {
        ++res.events;
        auto bad = [&](const std::string &what) {
            if (res.errors.size() < 20)
                res.errors.push_back("event " + std::to_string(idx) +
                                     ": " + what);
        };
        ++idx;
        if (!e.isObject()) {
            bad("not an object");
            continue;
        }
        const JsonValue *ph = e.find("ph");
        if (ph == nullptr || !ph->isString() ||
            ph->str.size() != 1) {
            bad("missing ph");
            continue;
        }
        char p = ph->str[0];
        if (p == 'M')
            continue;
        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        const JsonValue *ts = e.find("ts");
        if (pid == nullptr || !pid->isNumber()) {
            bad("missing pid");
            continue;
        }
        if (tid == nullptr || !tid->isNumber()) {
            bad("missing tid");
            continue;
        }
        if (ts == nullptr || !ts->isNumber()) {
            bad("missing ts");
            continue;
        }
        int pidv = static_cast<int>(pid->numberOr(0));
        int tidv = static_cast<int>(tid->numberOr(0));
        if (meta.nodeOf.find(pidv) == meta.nodeOf.end())
            bad("pid " + std::to_string(pidv) +
                " has no process_name metadata");
        switch (p) {
        case 'X': {
            const JsonValue *dur = e.find("dur");
            if (dur == nullptr || !dur->isNumber() ||
                dur->number < 0.0)
                bad("'X' without non-negative dur");
            if (meta.stationOf.find({pidv, tidv}) ==
                meta.stationOf.end())
                bad("tid " + std::to_string(tidv) +
                    " has no thread_name metadata");
            break;
        }
        case 'i':
            break;
        case 'b':
        case 'n':
        case 'e': {
            const JsonValue *id = e.find("id");
            if (id == nullptr || !id->isNumber()) {
                bad("async event without id");
                break;
            }
            auto key = static_cast<uint64_t>(id->number);
            if (p == 'b')
                ++asyncDepth[key];
            else if (p == 'e')
                --asyncDepth[key];
            else if (asyncDepth[key] <= 0)
                bad("'n' outside its async span");
            break;
        }
        case 'C': {
            const JsonValue *args = e.find("args");
            const JsonValue *v =
                args != nullptr ? args->find("value") : nullptr;
            if (v == nullptr || !v->isNumber())
                bad("counter without numeric args.value");
            break;
        }
        default:
            bad(std::string("unknown ph '") + p + "'");
        }
    }
    for (const auto &[id, depth] : asyncDepth)
        if (depth != 0 && res.errors.size() < 20)
            res.errors.push_back("async id " + std::to_string(id) +
                                 " unbalanced (depth " +
                                 std::to_string(depth) + ")");
    return res;
}

bool
parseTrace(const std::string &text, Trace &out, std::string &err)
{
    JsonValue root;
    if (!parseJson(text, root, err))
        return false;
    const JsonValue *events = traceEvents(root, err);
    if (events == nullptr)
        return false;
    Meta meta = collectMeta(*events);

    struct OpenAsync
    {
        Span span;
    };
    std::map<uint64_t, OpenAsync> openAsync;

    for (const JsonValue &e : events->arr) {
        if (!e.isObject())
            continue;
        const JsonValue *ph = e.find("ph");
        if (ph == nullptr || ph->str.size() != 1)
            continue;
        char p = ph->str[0];
        if (p == 'M')
            continue;
        int pidv = static_cast<int>(
            e.find("pid") != nullptr ? e.find("pid")->numberOr(0)
                                     : 0);
        int tidv = static_cast<int>(
            e.find("tid") != nullptr ? e.find("tid")->numberOr(0)
                                     : 0);
        double tsS = (e.find("ts") != nullptr
                          ? e.find("ts")->numberOr(0)
                          : 0.0) /
                     1e6;
        auto nodeIt = meta.nodeOf.find(pidv);
        std::string node =
            nodeIt != meta.nodeOf.end() ? nodeIt->second : "";

        if (p == 'C') {
            CounterSample c;
            c.node = node;
            const JsonValue *name = e.find("name");
            c.name = name != nullptr ? name->stringOr("") : "";
            c.tsS = tsS;
            const JsonValue *args = e.find("args");
            const JsonValue *v =
                args != nullptr ? args->find("value") : nullptr;
            c.value = v != nullptr ? v->numberOr(0) : 0.0;
            out.counters.push_back(std::move(c));
            continue;
        }

        Span s;
        s.node = node;
        auto stIt = meta.stationOf.find({pidv, tidv});
        s.station = stIt != meta.stationOf.end() ? stIt->second : "";
        const JsonValue *cat = e.find("cat");
        s.cat = cat != nullptr ? cat->stringOr("") : "";
        const JsonValue *name = e.find("name");
        s.name = name != nullptr ? name->stringOr("") : "";
        s.t0 = tsS;

        switch (p) {
        case 'X': {
            const JsonValue *dur = e.find("dur");
            s.durS =
                (dur != nullptr ? dur->numberOr(0) : 0.0) / 1e6;
            out.spans.push_back(std::move(s));
            break;
        }
        case 'i':
            out.instants.push_back(std::move(s));
            break;
        case 'b': {
            const JsonValue *id = e.find("id");
            if (id != nullptr)
                openAsync[static_cast<uint64_t>(id->number)] = {
                    std::move(s)};
            break;
        }
        case 'e': {
            const JsonValue *id = e.find("id");
            if (id == nullptr)
                break;
            auto it =
                openAsync.find(static_cast<uint64_t>(id->number));
            if (it == openAsync.end())
                break;
            Span done = std::move(it->second.span);
            openAsync.erase(it);
            done.durS = tsS - done.t0;
            out.asyncSpans.push_back(std::move(done));
            break;
        }
        default:
            break; // 'n' notes carry no duration
        }
    }
    return true;
}

bool
loadTrace(const std::string &path, Trace &out, std::string &err)
{
    std::ifstream f(path);
    if (!f) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseTrace(ss.str(), out, err);
}

std::vector<std::string>
workNodes(const Trace &t)
{
    std::vector<std::string> nodes;
    for (const Span &s : t.spans) {
        if (!isWorkCat(s.cat))
            continue;
        if (std::find(nodes.begin(), nodes.end(), s.node) ==
            nodes.end())
            nodes.push_back(s.node);
    }
    return nodes;
}

Attribution
criticalPath(const Trace &t, const std::string &node)
{
    Attribution attr;
    // Work spans, optionally restricted to one node. The sweep's
    // makespan stays global so per-node stall is comparable.
    std::vector<const Span *> work;
    for (const Span &s : t.spans) {
        if (!isWorkCat(s.cat) || s.durS <= 0.0)
            continue;
        if (!node.empty() && s.node != node)
            continue;
        work.push_back(&s);
    }
    double cursor = t.makespanS();
    attr.totalS = cursor;
    if (cursor <= 0.0)
        return attr;

    // Backward sweep: at each instant attribute to the covering span
    // with the latest end (lazy-discard max-heap keyed on end time);
    // gaps no work span covers are stall.
    auto later = [](const Span *a, const Span *b) {
        if (a->endS() != b->endS())
            return a->endS() < b->endS();
        if (a->t0 != b->t0)
            return a->t0 < b->t0;
        return a->cat < b->cat; // full tiebreak: deterministic pop
    };
    std::priority_queue<const Span *, std::vector<const Span *>,
                        decltype(later)>
        heap(later, std::move(work));

    while (cursor > kEps && !heap.empty()) {
        const Span *top = heap.top();
        if (top->endS() < cursor - kEps) {
            // Nothing covers (top->end, cursor): stall.
            attr.byCat["stall"] += cursor - top->endS();
            cursor = top->endS();
            continue;
        }
        heap.pop();
        if (top->t0 >= cursor - kEps)
            continue; // span lies entirely at/after the cursor
        attr.byCat[top->cat] += cursor - top->t0;
        cursor = top->t0;
    }
    if (cursor > kEps)
        attr.byCat["stall"] += cursor; // leading idle before any work

    double best = 0.0;
    for (const auto &[cat, sec] : attr.byCat) {
        if (cat == "stall")
            continue;
        if (sec > best) {
            best = sec;
            attr.bottleneck = cat;
        }
    }
    return attr;
}

} // namespace ndp::trace
