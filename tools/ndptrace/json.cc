#include "ndptrace/json.h"

#include <cctype>
#include <cstdlib>

namespace ndp::trace {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

double
JsonValue::numberOr(double fallback) const
{
    return type == Type::Number ? number : fallback;
}

const std::string &
JsonValue::stringOr(const std::string &fallback) const
{
    return type == Type::String ? str : fallback;
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing data after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        err_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    eat(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.str);
        case 't':
            return parseLiteral("true", out, JsonValue::Type::Bool,
                                true);
        case 'f':
            return parseLiteral("false", out, JsonValue::Type::Bool,
                                false);
        case 'n':
            return parseLiteral("null", out, JsonValue::Type::Null,
                                false);
        default:
            return parseNumber(out);
        }
    }

    bool
    parseLiteral(const char *lit, JsonValue &out, JsonValue::Type type,
                 bool b)
    {
        size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) != 0)
            return fail("bad literal");
        pos_ += n;
        out.type = type;
        out.boolean = b;
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *endp = nullptr;
        double v = std::strtod(start, &endp);
        if (endp == start)
            return fail("expected a value");
        pos_ += static_cast<size_t>(endp - start);
        out.type = JsonValue::Type::Number;
        out.number = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!eat('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'u':
                // The obs layer never emits \u escapes; accept and
                // keep the raw sequence so --check still parses.
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                out += "\\u" + text_.substr(pos_, 4);
                pos_ += 4;
                break;
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseObject(JsonValue &out)
    {
        eat('{');
        out.type = JsonValue::Type::Object;
        skipWs();
        if (eat('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        eat('[');
        out.type = JsonValue::Type::Array;
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    const std::string &text_;
    std::string &err_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string &err)
{
    Parser p(text, err);
    return p.parse(out);
}

} // namespace ndp::trace
