/**
 * @file
 * Minimal recursive-descent JSON parser for ndptrace.
 *
 * Dependency-free on purpose (the toolchain image carries no JSON
 * library): parses the subset the obs layer emits — objects, arrays,
 * strings with the obs escape set, numbers, booleans, null — into an
 * ordered DOM. Not a general-purpose validator, but strict enough
 * that `ndptrace --check` catches malformed output.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ndp::trace {

struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Ordered members: duplicate keys preserved, first one wins. */
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** First member named @p key, or null if absent / not an object. */
    const JsonValue *find(const std::string &key) const;

    double numberOr(double fallback) const;
    const std::string &stringOr(const std::string &fallback) const;
};

/**
 * Parse @p text into @p out. Returns false and sets @p err (with a
 * byte offset) on malformed input or trailing garbage.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &err);

} // namespace ndp::trace
