/**
 * @file
 * Fig. 4: (a) the outdated-model problem — top-1 accuracy of a frozen
 * model over two weeks of drift, vs biweekly-interval fine-tuning and
 * every-other-day full retraining; (b) fine-tuning accuracy vs the
 * size of the training set fed to it (§3.2).
 *
 * Functional reproduction on the ImageNet-1K world profile; absolute
 * accuracies are calibrated to the paper's band, trends emerge from
 * the drift process.
 */

#include "bench_util.h"

#include "data/backbone.h"
#include "data/profiles.h"

using namespace ndp;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 4 - Outdated model problem",
                  "NDPipe (ASPLOS'24) Fig. 4, Section 3.2");

    auto profile = data::imagenet1kProfile();
    if (bench::quickMode()) {
        profile.world.initialImages = 4000;
        profile.testSetSize = 1500;
    }

    data::PhotoWorld world(profile.world);
    Rng mrng(7);
    data::VisionModel base(profile.world.latentDim, profile.featureDim,
                           profile.world.maxClasses, mrng);
    base.fullTrain(world.poolDataset(),
                   world.sampleTestSet(profile.testSetSize),
                   profile.fullTrainCfg);

    std::printf("\n(a) Top-1 accuracy over two weeks of drift\n");
    bench::Table a({"Day", "Outdated (%)", "Fine-tuning (%)",
                    "Full training (%)"});
    int seed_bump = 0;
    for (int day = 0; day <= 14; day += 2) {
        auto test = world.sampleTestSet(profile.testSetSize);
        auto outdated = nn::evaluate(base, test);

        std::string ft_s = "-", full_s = "-";
        if (day > 0) {
            auto curated = world.recencyBiasedDataset(
                world.numImages(), profile.curatedRecentShare,
                profile.curatedWindowDays);
            data::VisionModel tuned = base;
            auto ft = tuned.fineTune(curated, test,
                                     profile.fineTuneCfg);
            ft_s = bench::fmt("%.2f", 100.0 * ft.finalTop1());

            Rng frng(100 + seed_bump++);
            data::VisionModel full(profile.world.latentDim,
                                   profile.featureDim,
                                   profile.world.maxClasses, frng);
            auto fr = full.fullTrain(curated, test,
                                     profile.fullTrainCfg);
            full_s = bench::fmt("%.2f", 100.0 * fr.finalTop1());
        }
        a.addRow({(day == 0 ? "Base" : "+" + std::to_string(day) + "d"),
                  bench::fmt("%.2f", 100.0 * outdated.top1), ft_s,
                  full_s});
        if (day < 14)
            world.advanceDays(2);
    }
    a.print();

    // (b) Fine-tuning accuracy vs training-set size.
    std::printf("\n(b) Fine-tuning accuracy vs dataset size\n");
    auto test = world.sampleTestSet(profile.testSetSize);
    bench::Table b({"Train images", "Top-1 (%)"});
    size_t pool = world.numImages();
    for (double frac : {0.05, 0.15, 0.3, 0.6, 1.0}) {
        size_t n = static_cast<size_t>(frac * pool);
        auto curated = world.recencyBiasedDataset(
            n, profile.curatedRecentShare, profile.curatedWindowDays);
        data::VisionModel tuned = base;
        auto ft = tuned.fineTune(curated, test, profile.fineTuneCfg);
        b.addRow({bench::fmtInt(static_cast<long long>(n)),
                  bench::fmt("%.2f", 100.0 * ft.finalTop1())});
    }
    b.print();

    std::printf("\nPaper: accuracy decays 73.8%% -> 68.9%% without "
                "updates; fine-tuning holds it within ~2pp of full "
                "training; larger fine-tuning sets help up to "
                "~500K+ images.\n");
    return 0;
}
