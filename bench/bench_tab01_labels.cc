/**
 * @file
 * Table 1: % of labels fixed by newer models (§3.3).
 *
 * Labels a fixed snapshot of photos with the initial model M0, then
 * retrains biweekly (M1..M4) and measures how many photos that M0
 * mislabeled are corrected by each newer model.
 */

#include "bench_util.h"

#include <cstring>

#include "data/backbone.h"
#include "data/profiles.h"
#include "nn/loss.h"

using namespace ndp;

namespace {

std::vector<int>
predictPool(data::VisionModel &model, data::PhotoWorld &world,
            size_t n_snapshot)
{
    nn::Tensor x(n_snapshot, world.latentDim());
    for (size_t i = 0; i < n_snapshot; ++i) {
        std::memcpy(x.rowPtr(i), world.latentOf(world.pool()[i]),
                    world.latentDim() * sizeof(float));
    }
    nn::Tensor logits = model.forward(x);
    return nn::argmaxRows(logits);
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Table 1 - %% of labels fixed by new models",
                  "NDPipe (ASPLOS'24) Table 1, Section 3.3");

    auto profile = data::imagenet1kProfile();
    if (bench::quickMode()) {
        profile.world.initialImages = 4000;
        profile.testSetSize = 1500;
    }

    data::PhotoWorld world(profile.world);
    Rng mrng(7);
    data::VisionModel m0(profile.world.latentDim, profile.featureDim,
                         profile.world.maxClasses, mrng);
    m0.fullTrain(world.poolDataset(),
                 world.sampleTestSet(profile.testSetSize),
                 profile.fullTrainCfg);

    // The fixed photo snapshot labeled by M0 (the paper's 50K set).
    size_t n_snapshot = world.numImages();
    auto preds0 = predictPool(m0, world, n_snapshot);
    std::vector<int> truth(n_snapshot);
    for (size_t i = 0; i < n_snapshot; ++i)
        truth[i] = world.pool()[i].label;

    bench::Table t({"Model", "% of fixed labels"});
    t.addRow({"M0", "0%"});

    data::VisionModel cur = m0;
    for (int gen = 1; gen <= 4; ++gen) {
        world.advanceDays(14);
        auto test = world.sampleTestSet(profile.testSetSize);
        auto curated = world.recencyBiasedDataset(
            world.numImages(), profile.curatedRecentShare,
            profile.curatedWindowDays);
        // Biweekly full training (§3.3) starting fresh.
        Rng frng(300 + gen);
        data::VisionModel next(profile.world.latentDim,
                               profile.featureDim,
                               profile.world.maxClasses, frng);
        next.fullTrain(curated, test, profile.fullTrainCfg);

        auto preds = predictPool(next, world, n_snapshot);
        size_t fixed = 0;
        for (size_t i = 0; i < n_snapshot; ++i) {
            if (preds0[i] != truth[i] && preds[i] == truth[i])
                ++fixed;
        }
        double pct = 100.0 * static_cast<double>(fixed) /
                     static_cast<double>(n_snapshot);
        t.addRow({"M" + std::to_string(gen),
                  bench::fmt("%.2f%%", pct)});
        cur = next;
    }
    t.print();

    std::printf("\nPaper: 6.67%% of the snapshot's labels are fixed "
                "by M1, growing to 8.98%% with M4.\n");
    return 0;
}
