/**
 * @file
 * Extension study: online-inference latency (§3.1's real-time path).
 *
 * Sweeps the Poisson upload rate against the inference server and
 * reports the latency distribution — the operating envelope within
 * which the NPE's +Offload optimization (the inference server
 * producing preprocessed binaries for the stores, §5.4) is free.
 */

#include "bench_util.h"

#include "core/online.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Extension - Online inference latency envelope",
                  "NDPipe (ASPLOS'24) Sections 3.1 & 5.4 (online path)");

    OnlineConfig cfg;
    cfg.nUploads = bench::scaled(20000, 4000);
    double cap = onlineCapacity(cfg);
    std::printf("\nServer: %s, %d preprocess cores; capacity %.0f "
                "uploads/s\n",
                cfg.server.name.c_str(), cfg.preprocessCores, cap);

    bench::Table t({"Offered (img/s)", "Load", "p50 (ms)", "p95 (ms)",
                    "p99 (ms)", "CPU util", "Status"});
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95, 1.2}) {
        cfg.arrivalsPerSec = cap * frac;
        auto r = runOnlineInference(cfg);
        t.addRow({bench::fmt("%.0f", cfg.arrivalsPerSec),
                  bench::fmt("%.0f%%", 100.0 * frac),
                  bench::fmt("%.1f", r.p50Ms),
                  bench::fmt("%.1f", r.p95Ms),
                  bench::fmt("%.1f", r.p99Ms),
                  bench::fmt("%.2f", r.cpuUtil),
                  r.saturated ? "SATURATED" : "stable"});
    }
    t.print();

    std::printf("\nPreprocessing (not the GPU) binds the online path — "
                "the same imbalance that motivates offloading "
                "preprocessing work off the PipeStores (§4.2).\n");
    return 0;
}
