/**
 * @file
 * Micro-benchmarks of the discrete-event engine: raw event dispatch,
 * coroutine process switching, channel hand-offs, and resource
 * contention.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/serve/admission.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "obs/monitor.h"
#include "sim/arrival.h"
#include "sim/channel.h"
#include "sim/resource.h"
#include "sim/simulator.h"

using namespace ndp::sim;

namespace {

void
BM_EventDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        const int n = static_cast<int>(state.range(0));
        for (int i = 0; i < n; ++i)
            s.schedule(static_cast<double>(i) * 1e-6, [] {});
        s.run();
        benchmark::DoNotOptimize(s.processedEvents());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
delayLoop(Simulator &s, int n)
{
    for (int i = 0; i < n; ++i)
        co_await s.delay(1e-6);
}

void
BM_CoroutineDelays(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        s.spawn(delayLoop(s, static_cast<int>(state.range(0))));
        s.run();
        benchmark::DoNotOptimize(s.now());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelays)->Arg(1000)->Arg(100000);

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
producer(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.put(i);
    ch.close();
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
consumer(Channel<int> &ch, long long &sum)
{
    while (true) {
        auto v = co_await ch.get();
        if (!v)
            break;
        sum += *v;
    }
}

void
BM_ChannelHandoff(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        Channel<int> ch(s, 4);
        long long sum = 0;
        s.spawn(producer(ch, static_cast<int>(state.range(0))));
        s.spawn(consumer(ch, sum));
        s.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelHandoff)->Arg(1000)->Arg(100000);

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
contender(Simulator &s, Resource &res, int n)
{
    for (int i = 0; i < n; ++i) {
        co_await res.acquire();
        co_await s.delay(1e-7);
        res.release();
    }
}

void
BM_ResourceContention(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        Resource res(s, 2);
        for (int w = 0; w < 8; ++w)
            s.spawn(contender(s, res, static_cast<int>(state.range(0))));
        s.run();
        benchmark::DoNotOptimize(res.utilization());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_ResourceContention)->Arg(1000)->Arg(10000);

/** Open-loop dispatch: the serving front door reduced to its engine
 *  cost — a seeded ArrivalProcess stream, a least-loaded pick over
 *  bounded per-worker channels, and workers consuming with a token
 *  service delay. Measures events/s of admission-style dispatch. */
constexpr int kDispatchWorkers = 8;
constexpr int kDispatchCap = 64;

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
dispatchWorker(Simulator &s, Channel<ndp::sim::Request> &q,
               ndp::core::serve::LoadBalancer &lb, size_t b)
{
    while (true) {
        auto r = co_await q.get();
        if (!r)
            break;
        co_await s.delay(1e-5);
        lb.dequeued(b);
    }
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
dispatchDriver(Simulator &s,
               std::vector<std::unique_ptr<Channel<ndp::sim::Request>>> &qs,
               ndp::core::serve::LoadBalancer &lb, uint64_t n,
               uint64_t &shed)
{
    ndp::sim::ArrivalConfig cfg;
    cfg.nRequests = n;
    cfg.baseRatePerSec = 500000.0; // dispatch-bound, not idle-bound
    ndp::sim::ArrivalProcess gen(cfg);
    ndp::sim::Request r;
    while (gen.next(r)) {
        if (r.arriveS > s.now())
            co_await s.delay(r.arriveS - s.now());
        const int b = lb.pick();
        if (b < 0 || lb.depth(static_cast<size_t>(b)) >= kDispatchCap) {
            ++shed;
            continue;
        }
        lb.enqueued(static_cast<size_t>(b));
        co_await qs[static_cast<size_t>(b)]->put(r);
    }
    for (auto &q : qs)
        q->close();
}

uint64_t
runOpenLoopDispatch(Simulator &s, uint64_t n)
{
    std::vector<std::unique_ptr<Channel<ndp::sim::Request>>> qs;
    for (int i = 0; i < kDispatchWorkers; ++i)
        qs.push_back(std::make_unique<Channel<ndp::sim::Request>>(
            s, kDispatchCap));
    ndp::core::serve::LoadBalancer lb(kDispatchWorkers);
    uint64_t shed = 0;
    for (int i = 0; i < kDispatchWorkers; ++i)
        s.spawn(dispatchWorker(s, *qs[static_cast<size_t>(i)], lb,
                               static_cast<size_t>(i)));
    s.spawn(dispatchDriver(s, qs, lb, n, shed));
    s.run();
    return shed;
}

/** The open-loop dispatch workload with the health monitor's serve
 *  hooks live on every request (outcome + shed + queue depth), the
 *  exact call pattern core/serve threads through its hot path. The
 *  monitor-overhead workload runs it with @p mon null (the
 *  monitoring-off pointer checks) and with a live monitor, and the
 *  --json gate asserts the delta stays under 5%. */
/** Pre-resolved monitor scope, like core/serve's ctx.monScope: the
 *  hot path passes the handle, never a string. */
const std::string kMonScope("bench");
using MonScope = ndp::obs::HealthMonitor::ScopeHandle;

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
monitoredWorker(Simulator &s, Channel<ndp::sim::Request> &q,
                ndp::core::serve::LoadBalancer &lb, size_t b,
                ndp::obs::HealthMonitor *mon, MonScope scope)
{
    while (true) {
        auto r = co_await q.get();
        if (!r)
            break;
        co_await s.delay(1e-5);
        lb.dequeued(b);
        if (mon)
            mon->onServeOutcome(scope, static_cast<int>(b), s.now(),
                                s.now() - r->arriveS, true);
    }
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
monitoredDriver(Simulator &s,
                std::vector<std::unique_ptr<Channel<ndp::sim::Request>>> &qs,
                ndp::core::serve::LoadBalancer &lb, uint64_t n,
                uint64_t &shed, ndp::obs::HealthMonitor *mon,
                MonScope scope)
{
    ndp::sim::ArrivalConfig cfg;
    cfg.nRequests = n;
    cfg.baseRatePerSec = 500000.0;
    ndp::sim::ArrivalProcess gen(cfg);
    ndp::sim::Request r;
    uint32_t qtick = 0; // core/serve's strided gauge sample
    while (gen.next(r)) {
        if (r.arriveS > s.now())
            co_await s.delay(r.arriveS - s.now());
        const int b = lb.pick();
        if (b < 0 || lb.depth(static_cast<size_t>(b)) >= kDispatchCap) {
            ++shed;
            if (mon)
                mon->onShed(scope, s.now());
            continue;
        }
        lb.enqueued(static_cast<size_t>(b));
        if (mon && (++qtick & 7u) == 0)
            mon->onQueueDepth(scope, s.now(), lb.totalDepth(),
                              kDispatchCap * kDispatchWorkers);
        co_await qs[static_cast<size_t>(b)]->put(r);
    }
    for (auto &q : qs)
        q->close();
}

uint64_t
runMonitoredDispatch(Simulator &s, uint64_t n,
                     ndp::obs::HealthMonitor *mon)
{
    std::vector<std::unique_ptr<Channel<ndp::sim::Request>>> qs;
    for (int i = 0; i < kDispatchWorkers; ++i)
        qs.push_back(std::make_unique<Channel<ndp::sim::Request>>(
            s, kDispatchCap));
    ndp::core::serve::LoadBalancer lb(kDispatchWorkers);
    uint64_t shed = 0;
    const MonScope scope =
        mon ? mon->scopeHandle(kMonScope) : MonScope{};
    for (int i = 0; i < kDispatchWorkers; ++i)
        s.spawn(monitoredWorker(s, *qs[static_cast<size_t>(i)], lb,
                                static_cast<size_t>(i), mon, scope));
    s.spawn(monitoredDriver(s, qs, lb, n, shed, mon, scope));
    s.run();
    return shed;
}

void
BM_OpenLoopDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        uint64_t shed =
            runOpenLoopDispatch(s, static_cast<uint64_t>(state.range(0)));
        benchmark::DoNotOptimize(shed);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OpenLoopDispatch)->Arg(1000)->Arg(100000);

/** Multi-link routing: the progressive-filling allocator's cost when
 *  every flow crosses a 4-6 link path (rack uplinks, a WAN hop) and
 *  overlapping waves force repeated re-allocation. Measures the
 *  topology fabric, not the hub fast case. */
constexpr int kRouteRacksPerSite = 2;
constexpr int kRouteNodesPerRack = 4;

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
routedSender(Simulator &s, ndp::net::NetFabric &fab, int i, int n,
             ndp::net::NodeId src, ndp::net::NodeId dst)
{
    co_await s.delay(static_cast<double>(i) * 1e-4);
    for (int k = 0; k < n; ++k)
        co_await fab.transfer(src, dst, 2.0e6,
                              ndp::net::FlowClass::GeoDelta);
}

uint64_t
runMultiLinkRouting(Simulator &s, int rounds)
{
    // Two sites joined by one WAN trunk; every sender pushes to the
    // diagonally opposite node, so each flow crosses 6 links and the
    // oversubscribed rack uplinks + the WAN trunk all contend.
    ndp::net::Topology topo;
    const ndp::net::SiteId home = topo.addSite("home");
    const ndp::net::SiteId edge = topo.addSite("edge");
    std::vector<ndp::net::RackId> racks;
    for (int r = 0; r < kRouteRacksPerSite; ++r)
        racks.push_back(topo.addRack(home, 20.0, 1e-6));
    for (int r = 0; r < kRouteRacksPerSite; ++r)
        racks.push_back(topo.addRack(edge, 20.0, 1e-6));
    topo.addWanLink(home, edge, 10.0, 1e-3);
    ndp::net::NetFabric fab(s, topo);
    std::vector<ndp::net::NodeId> nodes;
    for (const ndp::net::RackId r : racks)
        for (int k = 0; k < kRouteNodesPerRack; ++k)
            nodes.push_back(fab.addNode({10.0, 1e-6}, r));
    const size_t n = nodes.size();
    for (size_t i = 0; i < n; ++i)
        s.spawn(routedSender(s, fab, static_cast<int>(i), rounds,
                             nodes[i], nodes[(i + n / 2) % n]));
    s.run();
    return fab.report().flowsCompleted;
}

void
BM_MultiLinkRouting(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        uint64_t done =
            runMultiLinkRouting(s, static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            kRouteRacksPerSite * 2 *
                            kRouteNodesPerRack);
}
BENCHMARK(BM_MultiLinkRouting)->Arg(100)->Arg(1000);

/** --json: one pass per workload, real simulator event counts
 *  (events/s is the engine's headline dispatch rate; the output is
 *  checked in as BENCH_sim.json). */
int
runJson()
{
    {
        Simulator s;
        const int n = 1000000;
        ndp::bench::WallTimer w;
        for (int i = 0; i < n; ++i)
            s.schedule(static_cast<double>(i) * 1e-6, [] {});
        s.run();
        ndp::bench::jsonWorkloadLine(
            "event-dispatch",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        ndp::bench::WallTimer w;
        s.spawn(delayLoop(s, 1000000));
        s.run();
        ndp::bench::jsonWorkloadLine(
            "coroutine-delays",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        Channel<int> ch(s, 4);
        long long sum = 0;
        ndp::bench::WallTimer w;
        s.spawn(producer(ch, 1000000));
        s.spawn(consumer(ch, sum));
        s.run();
        benchmark::DoNotOptimize(sum);
        ndp::bench::jsonWorkloadLine(
            "channel-handoff",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        Resource res(s, 2);
        ndp::bench::WallTimer w;
        for (int i = 0; i < 8; ++i)
            s.spawn(contender(s, res, 10000));
        s.run();
        ndp::bench::jsonWorkloadLine(
            "resource-contention",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        ndp::bench::WallTimer w;
        uint64_t shed = runOpenLoopDispatch(s, 1000000);
        benchmark::DoNotOptimize(shed);
        ndp::bench::jsonWorkloadLine(
            "open-loop-dispatch",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        ndp::bench::WallTimer w;
        uint64_t done = runMultiLinkRouting(s, 2000);
        benchmark::DoNotOptimize(done);
        ndp::bench::jsonWorkloadLine(
            "multi-link-routing",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        // monitor-overhead: open-loop dispatch with the health
        // monitor's per-request hooks null vs live. Baseline and
        // monitored reps are interleaved (min-of-8 per side) so slow
        // clock/frequency drift cancels instead of landing entirely
        // on one side of the delta. The <5% gate is the "provably
        // cheap when on" half of the monitor's zero-cost contract
        // (tests pin the off half).
        const uint64_t n = 300000;
        double base_s = 1e30;
        double mon_s = 1e30;
        long long mon_ev = 0;
        for (int rep = 0; rep < 8; ++rep) {
            for (int side = 0; side < 2; ++side) {
                const bool monitored = side == 1;
                ndp::obs::HealthMonitor mon;
                Simulator s;
                ndp::bench::WallTimer w;
                uint64_t shed = runMonitoredDispatch(
                    s, n, monitored ? &mon : nullptr);
                benchmark::DoNotOptimize(shed);
                const double t = w.seconds();
                double &best = monitored ? mon_s : base_s;
                if (t < best) {
                    best = t;
                    if (monitored)
                        mon_ev = static_cast<long long>(
                            s.processedEvents());
                }
            }
        }
        const double overhead_pct =
            base_s > 0.0 ? 100.0 * (mon_s - base_s) / base_s : 0.0;
        std::printf(
            "{\"workload\":\"monitor-overhead\",\"events\":%lld,"
            "\"wall_s\":%.6f,\"events_per_sec\":%.0f,"
            "\"baseline_wall_s\":%.6f,\"overhead_pct\":%.2f}\n",
            mon_ev, mon_s,
            mon_s > 0.0 ? static_cast<double>(mon_ev) / mon_s : 0.0,
            base_s, overhead_pct);
        if (overhead_pct > 5.0) {
            std::fprintf(stderr,
                         "monitor-overhead: %.2f%% > 5%% budget\n",
                         overhead_pct);
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    if (ndp::bench::jsonMode())
        return runJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
