/**
 * @file
 * Micro-benchmarks of the discrete-event engine: raw event dispatch,
 * coroutine process switching, channel hand-offs, and resource
 * contention.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "sim/channel.h"
#include "sim/resource.h"
#include "sim/simulator.h"

using namespace ndp::sim;

namespace {

void
BM_EventDispatch(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        const int n = static_cast<int>(state.range(0));
        for (int i = 0; i < n; ++i)
            s.schedule(static_cast<double>(i) * 1e-6, [] {});
        s.run();
        benchmark::DoNotOptimize(s.processedEvents());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
delayLoop(Simulator &s, int n)
{
    for (int i = 0; i < n; ++i)
        co_await s.delay(1e-6);
}

void
BM_CoroutineDelays(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        s.spawn(delayLoop(s, static_cast<int>(state.range(0))));
        s.run();
        benchmark::DoNotOptimize(s.now());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutineDelays)->Arg(1000)->Arg(100000);

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
producer(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.put(i);
    ch.close();
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
consumer(Channel<int> &ch, long long &sum)
{
    while (true) {
        auto v = co_await ch.get();
        if (!v)
            break;
        sum += *v;
    }
}

void
BM_ChannelHandoff(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        Channel<int> ch(s, 4);
        long long sum = 0;
        s.spawn(producer(ch, static_cast<int>(state.range(0))));
        s.spawn(consumer(ch, sum));
        s.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChannelHandoff)->Arg(1000)->Arg(100000);

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the benchmark body)
Task
contender(Simulator &s, Resource &res, int n)
{
    for (int i = 0; i < n; ++i) {
        co_await res.acquire();
        co_await s.delay(1e-7);
        res.release();
    }
}

void
BM_ResourceContention(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator s;
        Resource res(s, 2);
        for (int w = 0; w < 8; ++w)
            s.spawn(contender(s, res, static_cast<int>(state.range(0))));
        s.run();
        benchmark::DoNotOptimize(res.utilization());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_ResourceContention)->Arg(1000)->Arg(10000);

/** --json: one pass per workload, real simulator event counts
 *  (events/s is the engine's headline dispatch rate; the output is
 *  checked in as BENCH_sim.json). */
int
runJson()
{
    {
        Simulator s;
        const int n = 1000000;
        ndp::bench::WallTimer w;
        for (int i = 0; i < n; ++i)
            s.schedule(static_cast<double>(i) * 1e-6, [] {});
        s.run();
        ndp::bench::jsonWorkloadLine(
            "event-dispatch",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        ndp::bench::WallTimer w;
        s.spawn(delayLoop(s, 1000000));
        s.run();
        ndp::bench::jsonWorkloadLine(
            "coroutine-delays",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        Channel<int> ch(s, 4);
        long long sum = 0;
        ndp::bench::WallTimer w;
        s.spawn(producer(ch, 1000000));
        s.spawn(consumer(ch, sum));
        s.run();
        benchmark::DoNotOptimize(sum);
        ndp::bench::jsonWorkloadLine(
            "channel-handoff",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    {
        Simulator s;
        Resource res(s, 2);
        ndp::bench::WallTimer w;
        for (int i = 0; i < 8; ++i)
            s.spawn(contender(s, res, 10000));
        s.run();
        ndp::bench::jsonWorkloadLine(
            "resource-contention",
            static_cast<long long>(s.processedEvents()), w.seconds());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    if (ndp::bench::jsonMode())
        return runJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
