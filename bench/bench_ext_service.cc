/**
 * @file
 * Extension study: million-user open-loop serving on the PipeStore
 * fleet.
 *
 * The production question the paper's closed-loop benches skip: what
 * does the photo service look like from the front door? An open-loop
 * arrival process (seeded lognormal gaps, diurnal curve, a flash
 * crowd) drawn from a million-user population is offered to the
 * admission controller + load balancer over the store fleet, with a
 * store crash inside the spike and a degraded ingress link. Reported:
 * offered vs goodput, the shed-verdict breakdown, and the
 * p50/p95/p99/p99.9 latency ladder — then the same seed again to
 * assert the whole run is bit-identical, and a colocation study of
 * serving p99 with and without a nightly fine-tune sharing the fleet.
 */

#include "bench_util.h"

#include <bit>
#include <cstdint>

#include "core/sched/cluster.h"
#include "core/serve/serve.h"

using namespace ndp;
using namespace ndp::core;

namespace {

/** The headline scenario: a day-shaped stream with a flash crowd and
 *  faults landing inside it. Spike and fault times scale with the
 *  run's expected span so quick mode exercises the same shape. */
serve::ServeConfig
headlineConfig(uint64_t requests)
{
    serve::ServeConfig cfg;
    cfg.nStores = 16;
    cfg.arrivals.nRequests = requests;
    cfg.arrivals.nUsers = 2000000; // the million-user population
    cfg.arrivals.baseRatePerSec = 900.0;
    cfg.arrivals.seed = 7;
    const double span = static_cast<double>(requests) /
                        cfg.arrivals.baseRatePerSec;
    cfg.arrivals.diurnalAmplitude = 0.35;
    cfg.arrivals.diurnalPeriodS = span / 2.0; // two cycles per run
    // Flash crowd: 4x the local rate for a tenth of the run.
    cfg.arrivals.spikes.push_back(
        sim::SpikeSegment{0.2 * span, 0.1 * span, 4.0});
    cfg.admission.queueCap = 64;
    // Store 5 crashes mid-spike; the ingress link from the client
    // node degrades for a stretch overlapping it.
    cfg.faults.crashStore(5, 0.22 * span)
        .degradeLink(0, 0.15 * span, 0.15 * span, 0.3);
    return cfg;
}

uint64_t
bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** Bit-compare the two same-seed runs; returns false on any drift. */
bool
sameBits(const serve::ServeReport &a, const serve::ServeReport &b)
{
    return a.offered == b.offered && a.accepted == b.accepted &&
           a.completed == b.completed && a.goodput == b.goodput &&
           a.redispatched == b.redispatched &&
           a.abandoned == b.abandoned &&
           bits(a.seconds) == bits(b.seconds) &&
           bits(a.p50Ms) == bits(b.p50Ms) &&
           bits(a.p95Ms) == bits(b.p95Ms) &&
           bits(a.p99Ms) == bits(b.p99Ms) &&
           bits(a.p999Ms) == bits(b.p999Ms) &&
           bits(a.meanMs) == bits(b.meanMs);
}

void
reportRun(const serve::ServeReport &r)
{
    bench::Table t({"Offered", "Accepted", "Goodput", "Shed", "Re-disp",
                    "Abandon", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                    "p99.9 (ms)"});
    const uint64_t shed = r.shedThrottle + r.shedQueueFull +
                          r.shedDeadline + r.shedUnavailable;
    t.addRow({bench::fmtInt(static_cast<long long>(r.offered)),
              bench::fmtInt(static_cast<long long>(r.accepted)),
              bench::fmtInt(static_cast<long long>(r.goodput)),
              bench::fmtInt(static_cast<long long>(shed)),
              bench::fmtInt(static_cast<long long>(r.redispatched)),
              bench::fmtInt(static_cast<long long>(r.abandoned)),
              bench::fmt("%.2f", r.p50Ms), bench::fmt("%.2f", r.p95Ms),
              bench::fmt("%.2f", r.p99Ms),
              bench::fmt("%.2f", r.p999Ms)});
    t.print();

    std::printf("\nShed breakdown: throttle %llu, queue-full %llu, "
                "deadline %llu, unavailable %llu; peak queue depth "
                "%d.\n",
                static_cast<unsigned long long>(r.shedThrottle),
                static_cast<unsigned long long>(r.shedQueueFull),
                static_cast<unsigned long long>(r.shedDeadline),
                static_cast<unsigned long long>(r.shedUnavailable),
                r.peakQueueDepth);
    std::printf("Rates: offered %.0f req/s, goodput %.0f req/s over "
                "%.0f sim-s; %llu sessions from %llu users; faults "
                "injected: %llu crash, %llu link degrade.\n",
                r.offeredRate, r.goodputRate, r.seconds,
                static_cast<unsigned long long>(r.sessionsStarted),
                2000000ULL,
                static_cast<unsigned long long>(r.faults.crashes),
                static_cast<unsigned long long>(r.faults.linkDegrades));
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner(
        "Extension - Million-user open-loop serving under faults",
        "NDPipe (ASPLOS'24) Section 3, generalized to open-loop SLOs");

    const uint64_t requests = bench::scaled(1000000, 30000);
    serve::ServeConfig cfg = headlineConfig(requests);

    std::printf("\n%d stores x %d workers; %llu requests offered "
                "open-loop from a %llu-user population (diurnal "
                "+/-%.0f%%, 4x flash crowd at t=%.0f s, store 5 "
                "crashes mid-spike, ingress degraded 30%%).\n",
                cfg.nStores, cfg.workersPerStore,
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(cfg.arrivals.nUsers),
                100.0 * cfg.arrivals.diurnalAmplitude,
                cfg.arrivals.spikes.front().atS);

    const serve::ServeReport run1 = serve::runServing(cfg);
    reportRun(run1);
    if (obs::HealthMonitor::current() != nullptr)
        std::printf(
            "Health: %llu alerts fired (%llu burn-rate), error budget "
            "%.2fx consumed, %.1f s in violation; %llu faults "
            "detected, mean time-to-detect %.3f s.\n",
            static_cast<unsigned long long>(run1.health.alertsFired),
            static_cast<unsigned long long>(
                run1.health.burnAlertsFired),
            run1.health.errorBudgetConsumed,
            run1.health.timeInViolationS,
            static_cast<unsigned long long>(
                run1.health.faultsDetected),
            run1.health.meanTimeToDetectS);

    // Same seed, whole scenario again: the open-loop stream, the
    // admission decisions, the crash re-dispatch, and the percentile
    // ladder must all land on identical bits.
    const serve::ServeReport run2 = serve::runServing(cfg);
    const bool identical = sameBits(run1, run2);
    std::printf("\nDeterminism: second same-seed run is %s.\n",
                identical ? "bit-identical" : "DIFFERENT (BUG)");

    if (bench::jsonMode())
        std::printf("{\"offered\":%llu,\"accepted\":%llu,"
                    "\"goodput\":%llu,\"shed_throttle\":%llu,"
                    "\"shed_queue_full\":%llu,\"shed_deadline\":%llu,"
                    "\"shed_unavailable\":%llu,\"redispatched\":%llu,"
                    "\"abandoned\":%llu,\"p50_ms\":%.3f,"
                    "\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
                    "\"p999_ms\":%.3f,\"offered_rate\":%.1f,"
                    "\"goodput_rate\":%.1f,\"peak_queue_depth\":%d,"
                    "\"deterministic\":%s,"
                    "\"alerts_fired\":%llu,"
                    "\"error_budget_consumed\":%.4f,"
                    "\"time_in_violation_s\":%.3f}\n",
                    static_cast<unsigned long long>(run1.offered),
                    static_cast<unsigned long long>(run1.accepted),
                    static_cast<unsigned long long>(run1.goodput),
                    static_cast<unsigned long long>(run1.shedThrottle),
                    static_cast<unsigned long long>(run1.shedQueueFull),
                    static_cast<unsigned long long>(run1.shedDeadline),
                    static_cast<unsigned long long>(
                        run1.shedUnavailable),
                    static_cast<unsigned long long>(run1.redispatched),
                    static_cast<unsigned long long>(run1.abandoned),
                    run1.p50Ms, run1.p95Ms, run1.p99Ms, run1.p999Ms,
                    run1.offeredRate, run1.goodputRate,
                    run1.peakQueueDepth,
                    identical ? "true" : "false",
                    static_cast<unsigned long long>(
                        run1.health.alertsFired),
                    run1.health.errorBudgetConsumed,
                    run1.health.timeInViolationS);

    // Colocation: the same serving job through the cluster scheduler,
    // alone, fair-sharing the stores with a nightly fine-tune, and
    // with serving priority raised above the fine-tune.
    ClusterSpec spec;
    spec.nStores = 8;
    auto servingJob = [&](int priority) {
        sched::JobDesc d;
        d.name = "front";
        d.kind = sched::JobKind::OpenLoopServe;
        d.priority = priority;
        for (int i = 0; i < spec.nStores; ++i)
            d.stores.push_back(i);
        d.serve.arrivals.nRequests = bench::scaled(60000, 6000);
        d.serve.arrivals.nUsers = 2000000;
        d.serve.arrivals.baseRatePerSec = 450.0;
        return d;
    };
    auto nightly = [&] {
        sched::JobDesc d;
        d.name = "nightly";
        d.kind = sched::JobKind::FtDmpTrain;
        for (int i = 0; i < spec.nStores; ++i)
            d.stores.push_back(i);
        d.nImages = bench::scaled(40000, 4000);
        return d;
    };
    auto runColo = [&](int serve_prio, bool with_ft) {
        sched::Cluster c(spec);
        c.submit(servingJob(serve_prio));
        if (with_ft)
            c.submit(nightly());
        return c.run();
    };
    sched::ClusterReport ref = runColo(0, false);
    sched::ClusterReport fair = runColo(0, true);
    sched::ClusterReport prio = runColo(2, true);

    const sched::JobReport &svAlone = ref.jobs.front();
    const sched::JobReport &svFair = fair.jobs.front();
    const sched::JobReport &svPrio = prio.jobs.front();
    bench::Table ct({"Serving", "p50 (ms)", "p99 (ms)", "p99.9 (ms)",
                     "Goodput", "FT makespan (s)"});
    ct.addRow({"alone", bench::fmt("%.2f", svAlone.p50Ms),
               bench::fmt("%.2f", svAlone.p99Ms),
               bench::fmt("%.2f", svAlone.p999Ms),
               bench::fmtInt(static_cast<long long>(svAlone.goodput)),
               "-"});
    ct.addRow({"fair-share + nightly ft",
               bench::fmt("%.2f", svFair.p50Ms),
               bench::fmt("%.2f", svFair.p99Ms),
               bench::fmt("%.2f", svFair.p999Ms),
               bench::fmtInt(static_cast<long long>(svFair.goodput)),
               bench::fmt("%.1f", fair.jobs.back().makespanS)});
    ct.addRow({"priority 2 + nightly ft",
               bench::fmt("%.2f", svPrio.p50Ms),
               bench::fmt("%.2f", svPrio.p99Ms),
               bench::fmt("%.2f", svPrio.p999Ms),
               bench::fmtInt(static_cast<long long>(svPrio.goodput)),
               bench::fmt("%.1f", prio.jobs.back().makespanS)});
    std::printf("\nColocation with the nightly fine-tune (%d stores):\n",
                spec.nStores);
    ct.print();
    std::printf("\nFair share splits the store GPUs and the serving "
                "tail pays +%.1f ms at p99; priority scoping parks the "
                "fine-tune while the front door is busy and the tail "
                "stays at %.1f ms (fine-tune makespan stretches from "
                "%.0f s to %.0f s).\n",
                svFair.p99Ms - svAlone.p99Ms, svPrio.p99Ms,
                fair.jobs.back().makespanS, prio.jobs.back().makespanS);
    if (bench::jsonMode())
        std::printf("{\"alone_p99_ms\":%.3f,\"fair_p99_ms\":%.3f,"
                    "\"prio_p99_ms\":%.3f,\"fair_goodput\":%llu,"
                    "\"prio_goodput\":%llu}\n",
                    svAlone.p99Ms, svFair.p99Ms, svPrio.p99Ms,
                    static_cast<unsigned long long>(svFair.goodput),
                    static_cast<unsigned long long>(svPrio.goodput));

    std::printf("\nThe front door sheds with a verdict, never a "
                "timeout: bounded queues plus deadline-aware admission "
                "keep the tail flat through the crowd, the crash, and "
                "the nightly fine-tune.\n");
    return identical ? 0 : 1;
}
