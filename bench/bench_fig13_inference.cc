/**
 * @file
 * Fig. 13: offline-inference throughput scaling (§6.2).
 *
 * For each of the four figure models, sweeps NDPipe from 1 to 20
 * PipeStores and compares against SRV-I / SRV-P / SRV-C (2x V100
 * host). Reports the P1/P2/P3 match points where NDPipe overtakes
 * each baseline.
 */

#include "bench_util.h"

#include "core/inference.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 13 - Offline inference throughput (KIPS)",
                  "NDPipe (ASPLOS'24) Fig. 13, Section 6.2");

    for (const models::ModelSpec *m : models::figureModels()) {
        ExperimentConfig cfg;
        cfg.model = m;
        cfg.nImages = 200000;

        auto srv_i = runSrvOfflineInference(cfg, SrvVariant::Ideal);
        auto srv_p =
            runSrvOfflineInference(cfg, SrvVariant::Preprocessed);
        auto srv_c =
            runSrvOfflineInference(cfg, SrvVariant::Compressed);

        std::printf("\n--- %s ---\n", m->name().c_str());
        std::printf("SRV-I %.2f KIPS | SRV-P %.2f KIPS | SRV-C %.2f "
                    "KIPS\n",
                    srv_i.ips / 1e3, srv_p.ips / 1e3, srv_c.ips / 1e3);

        bench::Table t({"#PipeStores", "NDPipe KIPS", "vs SRV-P",
                        "vs SRV-C", "vs SRV-I"});
        int p1 = 0, p2 = 0, p3 = 0;
        for (int n : {1, 2, 4, 6, 8, 10, 14, 20}) {
            cfg.nStores = n;
            auto r = runNdpOfflineInference(cfg);
            if (!p1 && r.ips >= srv_p.ips)
                p1 = n;
            if (!p2 && r.ips >= srv_c.ips)
                p2 = n;
            if (!p3 && r.ips >= srv_i.ips)
                p3 = n;
            t.addRow({bench::fmtInt(n), bench::fmt("%.2f", r.ips / 1e3),
                      bench::fmt("%.2fx", r.ips / srv_p.ips),
                      bench::fmt("%.2fx", r.ips / srv_c.ips),
                      bench::fmt("%.2fx", r.ips / srv_i.ips)});
        }
        t.print();
        std::printf("Match points: P1(SRV-P)<=%d  P2(SRV-C)<=%d  "
                    "P3(SRV-I)<=%d stores\n",
                    p1, p2, p3);
    }
    std::printf("\nPaper anchors: per-store IPS 2129/2439/449/277; "
                "NDPipe passes SRV-C with 4-7 stores and SRV-I with "
                "5-7; for ResNeXt101/ViT the SRV lines collapse "
                "(GPU-bound).\n");
    return 0;
}
