/**
 * @file
 * Table 2: Base / Outdated / NDPipe / Full top-1 and top-5 accuracy
 * across the three dataset profiles (§6.3).
 *
 * The five paper architectures differ here only in their backbone
 * width (the functional analog of feature-extractor capacity):
 * ShuffleNetV2 gets the narrowest bottleneck and ViT the widest, so
 * the accuracy ordering across models mirrors the paper's. The
 * Base/Outdated/NDPipe/Full ordering per column emerges from drift.
 */

#include "bench_util.h"

#include "data/backbone.h"
#include "data/profiles.h"

using namespace ndp;

namespace {

size_t
backboneWidthFor(const std::string &model, size_t base_width)
{
    if (model == "ShuffleNetV2")
        return base_width - 4;
    if (model == "ResNet50" || model == "InceptionV3")
        return base_width;
    if (model == "ResNeXt101")
        return base_width + 2;
    return base_width + 6; // ViT
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Table 2 - Model accuracy under drift (%)",
                  "NDPipe (ASPLOS'24) Table 2, Section 6.3");

    std::vector<std::string> model_names = {
        "ShuffleNetV2", "ResNet50", "InceptionV3", "ResNeXt101", "ViT"};
    if (bench::quickMode())
        model_names = {"ResNet50", "ViT"};

    for (auto &profile : data::allProfiles()) {
        if (bench::quickMode()) {
            profile.world.initialImages = 4000;
            profile.testSetSize = 1500;
        }
        std::printf("\n--- %s ---\n", profile.name.c_str());
        bench::Table t({"Model", "Base T1/T5", "Outdated T1/T5",
                        "NDPipe T1/T5", "Full T1/T5"});
        for (const auto &name : model_names) {
            data::PhotoWorld world(profile.world);
            size_t width = backboneWidthFor(name, profile.featureDim);
            Rng mrng(7 + std::hash<std::string>{}(name) % 1000);
            data::VisionModel base(profile.world.latentDim, width,
                                   profile.world.maxClasses, mrng);
            auto br =
                base.fullTrain(world.poolDataset(),
                               world.sampleTestSet(profile.testSetSize),
                               profile.fullTrainCfg);

            world.advanceDays(14);
            auto test = world.sampleTestSet(profile.testSetSize);
            auto outdated = nn::evaluate(base, test);

            auto curated = world.recencyBiasedDataset(
                world.numImages(), profile.curatedRecentShare,
                profile.curatedWindowDays);
            data::VisionModel tuned = base;
            auto ft =
                tuned.fineTune(curated, test, profile.fineTuneCfg);

            Rng frng(900 + std::hash<std::string>{}(name) % 1000);
            data::VisionModel full(profile.world.latentDim, width,
                                   profile.world.maxClasses, frng);
            auto fr =
                full.fullTrain(curated, test, profile.fullTrainCfg);

            auto cell = [](double t1, double t5) {
                return bench::fmt("%.2f", 100.0 * t1) + "/" +
                       bench::fmt("%.2f", 100.0 * t5);
            };
            t.addRow({name, cell(br.finalTop1(), br.finalTop5()),
                      cell(outdated.top1, outdated.top5),
                      cell(ft.finalTop1(), ft.finalTop5()),
                      cell(fr.finalTop1(), fr.finalTop5())});
        }
        t.print();
    }

    std::printf("\nPaper: NDPipe beats Outdated on every dataset and "
                "sits slightly below Full (avg -2.3pp top-1) while "
                "training >300x faster.\n");
    return 0;
}
