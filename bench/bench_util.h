/**
 * @file
 * Shared helpers for the figure/table reproduction benches: fixed-width
 * table printing, a quick-mode switch (NDP_QUICK=1 shrinks the
 * functional NN workloads for smoke runs), the shared --json flag
 * (machine-readable row output), and the NDP_TRACE gate (init()
 * opens the obs::TraceSession every simulator entry point picks up).
 */

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/monitor.h"
#include "obs/trace.h"

namespace ndp::bench {

inline bool
quickMode()
{
    const char *v = std::getenv("NDP_QUICK");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

/** Scale a workload size down in quick mode. */
inline size_t
scaled(size_t full, size_t quick)
{
    return quickMode() ? quick : full;
}

inline bool &
jsonModeFlag()
{
    static bool flag = false;
    return flag;
}

/** True after init() saw --json: tables print JSON lines instead. */
inline bool
jsonMode()
{
    return jsonModeFlag();
}

/** The env-gated obs sessions one bench run holds: both members are
 *  null (observability off, zero cost) unless NDP_TRACE / NDP_MONITOR
 *  are set. Destruction order writes the monitor JSON first, then the
 *  trace file. */
struct BenchSession
{
    std::unique_ptr<obs::TraceSession> trace;
    std::unique_ptr<obs::MonitorSession> monitor;
};

/**
 * Parse the shared bench flags (--json) and open the env-gated obs
 * sessions. Call it first thing in main() and hold the returned
 * sessions for the whole run — the trace session's destructor writes
 * the trace file (NDP_TRACE_FILE, default ndp_trace.json), the
 * monitor session's writes the health report (NDP_MONITOR_FILE,
 * default ndp_health.json). Both null (observability off, zero cost)
 * unless NDP_TRACE / NDP_MONITOR are set.
 */
[[nodiscard]] inline BenchSession
init(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            jsonModeFlag() = true;
    return {obs::TraceSession::fromEnv(),
            obs::MonitorSession::fromEnv()};
}

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    if (jsonMode()) {
        std::printf("{\"bench\":\"%s\",\"reproduces\":\"%s\"}\n",
                    jsonEscape(title).c_str(),
                    jsonEscape(paper_ref).c_str());
        return;
    }
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("=============================================="
                "==============================\n");
}

class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : cols(std::move(headers))
    {
        widths.resize(cols.size());
        for (size_t i = 0; i < cols.size(); ++i)
            widths[i] = cols[i].size();
    }

    void
    addRow(std::vector<std::string> row)
    {
        row.resize(cols.size());
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
        rows.push_back(std::move(row));
    }

    void
    print() const
    {
        if (jsonMode()) {
            for (const auto &r : rows) {
                std::printf("{");
                for (size_t i = 0; i < cols.size(); ++i)
                    std::printf("%s\"%s\":\"%s\"", i ? "," : "",
                                jsonEscape(cols[i]).c_str(),
                                jsonEscape(r[i]).c_str());
                std::printf("}\n");
            }
            return;
        }
        printRow(cols);
        std::string sep;
        for (size_t i = 0; i < cols.size(); ++i) {
            sep += std::string(widths[i] + 2, '-');
            if (i + 1 < cols.size())
                sep += "+";
        }
        std::printf("%s\n", sep.c_str());
        for (const auto &r : rows)
            printRow(r);
    }

  private:
    void
    printRow(const std::vector<std::string> &row) const
    {
        for (size_t i = 0; i < row.size(); ++i) {
            std::printf(" %-*s ", static_cast<int>(widths[i]),
                        row[i].c_str());
            if (i + 1 < row.size())
                std::printf("|");
        }
        std::printf("\n");
    }

    std::vector<std::string> cols;
    std::vector<size_t> widths;
    std::vector<std::vector<std::string>> rows;
};

inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

inline std::string
fmtInt(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

/** Wall-clock stopwatch for the micro-bench --json workloads. */
class WallTimer
{
  public:
    WallTimer() : t0(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0;
};

/**
 * One line of the micro-bench --json schema (BENCH_sim.json et al.):
 * a workload name, how many events/items it processed, and the wall
 * time it took.
 */
inline void
jsonWorkloadLine(const char *workload, long long events, double wall_s)
{
    std::printf("{\"workload\":\"%s\",\"events\":%lld,"
                "\"wall_s\":%.6f,\"events_per_sec\":%.0f}\n",
                workload, events, wall_s,
                wall_s > 0.0 ? static_cast<double>(events) / wall_s
                             : 0.0);
}

} // namespace ndp::bench
