/**
 * @file
 * Fig. 20: NDPipe on AWS Inferentia (NeuronCoreV1) PipeStores (§6.4).
 *
 * Replaces the T4 with the slower but far more power-efficient
 * NeuronCoreV1 (inf1.2xlarge) and reports how many stores NDPipe-Inf1
 * needs to match SRV-C for offline inference and fine-tuning, plus the
 * resulting power / energy-efficiency gains.
 */

#include "bench_util.h"

#include "core/inference.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 20 - NDPipe-Inf1 (NeuronCoreV1 PipeStores)",
                  "NDPipe (ASPLOS'24) Fig. 20, Section 6.4");

    const models::ModelSpec *mods[] = {&models::resnet50(),
                                       &models::resnext101()};

    std::printf("\n(a) Offline inference\n");
    double pw_gain_sum = 0.0;
    for (const models::ModelSpec *m : mods) {
        ExperimentConfig cfg;
        cfg.model = m;
        cfg.nImages = 200000;
        cfg.storeSpec = hw::inf12xlarge();
        auto srv = runSrvOfflineInference(cfg, SrvVariant::Compressed);

        bench::Table t({"#Stores", "NDPipe-Inf1 KIPS", "IPS/W",
                        "vs SRV-C IPS/W"});
        int match = 0;
        for (int n : {1, 4, 8, 12, 16, 20}) {
            cfg.nStores = n;
            auto r = runNdpOfflineInference(cfg);
            if (!match && r.ips >= srv.ips)
                match = n;
            t.addRow({bench::fmtInt(n), bench::fmt("%.2f", r.ips / 1e3),
                      bench::fmt("%.2f", r.ipsPerWatt()),
                      bench::fmt("%.2fx",
                                 r.ipsPerWatt() / srv.ipsPerWatt())});
            if (n == 12)
                pw_gain_sum += r.ipsPerWatt() / srv.ipsPerWatt();
        }
        t.print();
        std::printf("%s: SRV-C %.2f KIPS; matched with <=%d "
                    "Inf1 stores\n",
                    m->name().c_str(), srv.ips / 1e3,
                    match ? match : 20);
    }

    std::printf("\n(b) Fine-tuning\n");
    double en_gain_sum = 0.0;
    for (const models::ModelSpec *m : mods) {
        ExperimentConfig cfg;
        cfg.model = m;
        cfg.nImages = 1200000;
        cfg.storeSpec = hw::inf12xlarge();
        auto srv = runSrvFineTuning(cfg);

        bench::Table t({"#Stores", "Time (min)", "IPS/kJ",
                        "vs SRV-C IPS/kJ"});
        int match = 0;
        TrainOptions opt;
        for (int n : {1, 4, 8, 12, 16, 20}) {
            cfg.nStores = n;
            auto r = runFtDmpTraining(cfg, opt);
            if (!match && r.seconds <= srv.seconds)
                match = n;
            t.addRow({bench::fmtInt(n),
                      bench::fmt("%.1f", r.seconds / 60.0),
                      bench::fmt("%.0f", r.ipsPerKj()),
                      bench::fmt("%.2fx",
                                 r.ipsPerKj() / srv.ipsPerKj())});
            if (n == 12)
                en_gain_sum += r.ipsPerKj() / srv.ipsPerKj();
        }
        t.print();
        std::printf("%s: SRV-C %.1f min; matched with <=%d Inf1 "
                    "stores\n",
                    m->name().c_str(), srv.seconds / 60.0,
                    match ? match : 20);
    }

    std::printf("\nMean @12 stores: %.2fx power efficiency "
                "(inference), %.2fx energy efficiency (fine-tuning). "
                "Paper: 11-16 / 8-13 stores to match SRV-C; 1.17x and "
                "1.5x efficiency.\n",
                pw_gain_sum / 2.0, en_gain_sum / 2.0);
    return 0;
}
