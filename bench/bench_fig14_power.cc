/**
 * @file
 * Fig. 14: inference power draw at the match points (§6.2).
 *
 * For each model, finds the NDPipe store counts P1/P2/P3 whose
 * throughput first matches SRV-P / SRV-C / SRV-I, then prints the
 * average cluster power split into GPU / CPU / Others for both
 * systems at that point, plus the resulting IPS/W ratio.
 */

#include "bench_util.h"

#include "core/inference.h"

using namespace ndp;
using namespace ndp::core;

namespace {

int
matchPoint(ExperimentConfig cfg, double target_ips)
{
    for (int n = 1; n <= 20; ++n) {
        cfg.nStores = n;
        auto r = runNdpOfflineInference(cfg);
        if (r.ips >= target_ips)
            return n;
    }
    return 20;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 14 - Inference power at match points P1/P2/P3",
                  "NDPipe (ASPLOS'24) Fig. 14, Section 6.2");

    double ratio_sum_p = 0.0, ratio_sum_c = 0.0;
    int n_models = 0;

    for (const models::ModelSpec *m : models::figureModels()) {
        ExperimentConfig cfg;
        cfg.model = m;
        cfg.nImages = 200000;

        struct Baseline
        {
            const char *point;
            SrvVariant variant;
        };
        Baseline points[] = {{"P1", SrvVariant::Preprocessed},
                             {"P2", SrvVariant::Compressed},
                             {"P3", SrvVariant::Ideal}};

        std::printf("\n--- %s ---\n", m->name().c_str());
        bench::Table t({"Point", "System", "GPU (W)", "CPU (W)",
                        "Others (W)", "Total (W)", "IPS/W"});
        for (const auto &p : points) {
            auto srv = runSrvOfflineInference(cfg, p.variant);
            int n = matchPoint(cfg, srv.ips);
            ExperimentConfig ncfg = cfg;
            ncfg.nStores = n;
            auto ndp = runNdpOfflineInference(ncfg);

            t.addRow({p.point, srvVariantName(p.variant),
                      bench::fmt("%.0f", srv.power.gpuW),
                      bench::fmt("%.0f", srv.power.cpuW),
                      bench::fmt("%.0f", srv.power.otherW),
                      bench::fmt("%.0f", srv.power.totalW()),
                      bench::fmt("%.2f", srv.ipsPerWatt())});
            t.addRow({p.point,
                      "NDPipe(" + std::to_string(n) + ")",
                      bench::fmt("%.0f", ndp.power.gpuW),
                      bench::fmt("%.0f", ndp.power.cpuW),
                      bench::fmt("%.0f", ndp.power.otherW),
                      bench::fmt("%.0f", ndp.power.totalW()),
                      bench::fmt("%.2f", ndp.ipsPerWatt())});

            if (p.variant == SrvVariant::Preprocessed)
                ratio_sum_p += ndp.ipsPerWatt() / srv.ipsPerWatt();
            if (p.variant == SrvVariant::Compressed)
                ratio_sum_c += ndp.ipsPerWatt() / srv.ipsPerWatt();
        }
        t.print();
        ++n_models;
    }

    std::printf("\nMean power-efficiency gain: %.2fx vs SRV-P, %.2fx "
                "vs SRV-C (paper: 1.83x and 1.39x).\n",
                ratio_sum_p / n_models, ratio_sum_c / n_models);
    return 0;
}
