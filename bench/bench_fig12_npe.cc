/**
 * @file
 * Fig. 12: NPE optimization breakdown on a single PipeStore (§5.4).
 *
 * Prints per-image stage service times and the resulting pipelined
 * throughput for the four cumulative configurations: Naive (raw
 * JPEGs, 1 preprocess core, small batch), +Offload (preprocessed
 * binaries stored by the inference server), +Comp (deflated binaries,
 * 2 decompress cores), +Batch (batch 128). Both the fine-tuning and
 * the offline-inference flavors are reported.
 */

#include "bench_util.h"

#include "core/inference.h"

using namespace ndp;
using namespace ndp::core;

namespace {

void
reportTask(const ExperimentConfig &base, bool fine_tuning)
{
    struct Level
    {
        const char *name;
        NpeOptions npe;
    };
    Level levels[] = {
        {"Naive", NpeOptions::naive()},
        {"+Offload", NpeOptions::withOffload()},
        {"+Comp", NpeOptions::withCompression()},
        {"+Batch", NpeOptions::withBatch()},
    };

    bench::Table t({"Config", "Read (ms)", "Preproc (ms)",
                    "Decomp (ms)", "FE (ms)", "Store IPS"});
    for (const auto &lv : levels) {
        ExperimentConfig cfg = base;
        cfg.npe = lv.npe;
        cfg.nStores = 1;
        auto stages = npeStageTimes(cfg, cfg.npe, fine_tuning);
        std::string ips = "-";
        if (!fine_tuning) {
            cfg.nImages = 50000;
            auto r = runNdpOfflineInference(cfg);
            ips = bench::fmt("%.0f", r.ips);
        }
        t.addRow({lv.name, bench::fmt("%.3f", stages.readS * 1e3),
                  bench::fmt("%.3f", stages.preprocessS * 1e3),
                  bench::fmt("%.3f", stages.decompressS * 1e3),
                  bench::fmt("%.3f", stages.computeS * 1e3), ips});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 12 - NPE optimizations on one PipeStore",
                  "NDPipe (ASPLOS'24) Fig. 12, Section 5.4");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();

    std::printf("\n(a) Fine-tuning task (per-image stage times)\n");
    reportTask(cfg, true);

    std::printf("\n(b) Offline inference task\n");
    reportTask(cfg, false);

    std::printf("\nPaper: Naive inference is bottlenecked by the "
                "single preprocessing core; +Offload removes it, "
                "+Comp cuts read time, +Batch saturates the GPU.\n");
    return 0;
}
