/**
 * @file
 * Fig. 17: pipelined FT-DMP — training time and accuracy vs N_run
 * (§5.2, §6.3).
 *
 * Time side: the FT-DMP discrete-event simulator with 4 PipeStores
 * (paper: up to 32% faster at N_run = 3). Accuracy side: the
 * functional model trained on N_run sequential sub-datasets (paper:
 * negligible loss up to N_run = 3, catastrophic forgetting visible at
 * N_run = 4).
 */

#include "bench_util.h"

#include "core/training.h"
#include "data/backbone.h"
#include "data/profiles.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 17 - Pipelined FT-DMP: time and accuracy",
                  "NDPipe (ASPLOS'24) Fig. 17, Sections 5.2 & 6.3");

    // Time side (DES, ResNet50, 4 PipeStores, 1.2M images).
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 4;
    cfg.nImages = 1200000;

    TrainOptions unp;
    unp.nRun = 1;
    auto base_run = runFtDmpTraining(cfg, unp);

    std::printf("\n(a) Training time vs N_run (simulated)\n");
    bench::Table a({"N_run", "Time (s)", "Speedup vs N_run=1"});
    for (int nr : {1, 2, 3, 4}) {
        TrainOptions o;
        o.nRun = nr;
        o.pipelined = nr > 1;
        auto r = runFtDmpTraining(cfg, o);
        a.addRow({bench::fmtInt(nr), bench::fmt("%.0f", r.seconds),
                  bench::fmt("%.0f%%", 100.0 * (1.0 - r.seconds /
                                                          base_run
                                                              .seconds))});
    }
    a.print();

    // Accuracy side (functional).
    std::printf("\n(b) Final accuracy vs N_run (functional)\n");
    auto profile = data::imagenet1kProfile();
    if (bench::quickMode()) {
        profile.world.initialImages = 4000;
        profile.testSetSize = 1500;
    }
    data::PhotoWorld world(profile.world);
    Rng mrng(7);
    data::VisionModel base(profile.world.latentDim, profile.featureDim,
                           profile.world.maxClasses, mrng);
    base.fullTrain(world.poolDataset(),
                   world.sampleTestSet(profile.testSetSize),
                   profile.fullTrainCfg);
    world.advanceDays(14);
    auto test = world.sampleTestSet(profile.testSetSize);
    auto feat_test_model = base; // frozen backbone is shared
    auto curated = world.recencyBiasedDataset(
        world.numImages(), profile.curatedRecentShare,
        profile.curatedWindowDays);

    bench::Table b({"N_run", "Top-1 (%)", "Delta vs N_run=1 (pp)"});
    double top1_ref = 0.0;
    for (int nr : {1, 2, 3, 4}) {
        data::VisionModel tuned = base;
        tuned.freezeBackbone(true);
        auto feat_test = tuned.extractFeatures(test);
        auto shards = curated.shards(static_cast<size_t>(nr));
        for (auto &shard : shards) {
            auto feats = tuned.extractFeatures(shard);
            tuned.fineTuneOnFeatures(feats, feat_test,
                                     profile.fineTuneCfg);
        }
        auto ev = nn::evaluate(tuned, test);
        if (nr == 1)
            top1_ref = ev.top1;
        b.addRow({bench::fmtInt(nr),
                  bench::fmt("%.2f", 100.0 * ev.top1),
                  bench::fmt("%+.2f", 100.0 * (ev.top1 - top1_ref))});
    }
    b.print();

    std::printf("\nPaper: N_run=2/3 cut training time by 23%%/32%% "
                "with <=0.1pp accuracy loss (71.61 -> 71.55/71.52); "
                "N_run=4 drops to 70.36 (catastrophic forgetting).\n");
    return 0;
}
