/**
 * @file
 * Micro-benchmarks of the tensor/NN substrate: GEMM, a full classifier
 * training step, and feature extraction — the kernels behind every
 * functional accuracy experiment.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "data/backbone.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "sim/random.h"

using namespace ndp;

namespace {

void
BM_Matmul(benchmark::State &state)
{
    Rng rng(1);
    size_t n = static_cast<size_t>(state.range(0));
    nn::Tensor a = nn::Tensor::randn(n, n, rng, 1.0f);
    nn::Tensor b = nn::Tensor::randn(n, n, rng, 1.0f);
    for (auto _ : state) {
        nn::Tensor c = nn::matmul(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void
BM_ClassifierStep(benchmark::State &state)
{
    Rng rng(2);
    const size_t batch = 128, feat = 64, classes = 100;
    nn::Sequential clf = nn::makeClassifier(feat, 0, classes, rng);
    nn::Sgd opt(clf.params(), nn::SgdConfig{});
    nn::Tensor x = nn::Tensor::randn(batch, feat, rng, 1.0f);
    std::vector<int> y(batch);
    for (auto &v : y)
        v = static_cast<int>(rng.below(classes));
    for (auto _ : state) {
        nn::Tensor logits = clf.forward(x);
        auto loss = nn::softmaxCrossEntropy(logits, y);
        clf.backward(loss.gradLogits);
        opt.step();
        benchmark::DoNotOptimize(loss.loss);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ClassifierStep);

void
BM_FeatureExtraction(benchmark::State &state)
{
    Rng rng(3);
    data::VisionModel model(24, 12, 100, rng);
    nn::Tensor x = nn::Tensor::randn(512, 24, rng, 1.0f);
    for (auto _ : state) {
        nn::Tensor f = model.features(x);
        benchmark::DoNotOptimize(f.data().data());
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FeatureExtraction);

void
BM_TopKAccuracy(benchmark::State &state)
{
    Rng rng(4);
    nn::Tensor logits = nn::Tensor::randn(1024, 100, rng, 1.0f);
    std::vector<int> y(1024);
    for (auto &v : y)
        v = static_cast<int>(rng.below(100));
    for (auto _ : state) {
        double acc = nn::topKAccuracy(logits, y, 5);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_TopKAccuracy);

/** --json: one pass per workload; events = items through the kernel. */
int
runJson()
{
    {
        Rng rng(1);
        const size_t n = 256;
        nn::Tensor a = nn::Tensor::randn(n, n, rng, 1.0f);
        nn::Tensor b = nn::Tensor::randn(n, n, rng, 1.0f);
        long long items = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 20; ++i) {
            nn::Tensor c = nn::matmul(a, b);
            benchmark::DoNotOptimize(c.data().data());
            items += static_cast<long long>(n * n * n);
        }
        ndp::bench::jsonWorkloadLine("matmul-256", items, w.seconds());
    }
    {
        Rng rng(2);
        const size_t batch = 128, feat = 64, classes = 100;
        nn::Sequential clf = nn::makeClassifier(feat, 0, classes, rng);
        nn::Sgd opt(clf.params(), nn::SgdConfig{});
        nn::Tensor x = nn::Tensor::randn(batch, feat, rng, 1.0f);
        std::vector<int> y(batch);
        for (auto &v : y)
            v = static_cast<int>(rng.below(classes));
        long long items = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 200; ++i) {
            nn::Tensor logits = clf.forward(x);
            auto loss = nn::softmaxCrossEntropy(logits, y);
            clf.backward(loss.gradLogits);
            opt.step();
            benchmark::DoNotOptimize(loss.loss);
            items += static_cast<long long>(batch);
        }
        ndp::bench::jsonWorkloadLine("classifier-step", items,
                                     w.seconds());
    }
    {
        Rng rng(3);
        data::VisionModel model(24, 12, 100, rng);
        nn::Tensor x = nn::Tensor::randn(512, 24, rng, 1.0f);
        long long items = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 50; ++i) {
            nn::Tensor f = model.features(x);
            benchmark::DoNotOptimize(f.data().data());
            items += 512;
        }
        ndp::bench::jsonWorkloadLine("feature-extraction", items,
                                     w.seconds());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    if (ndp::bench::jsonMode())
        return runJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
