/**
 * @file
 * Fig. 19: inference throughput vs batch size (§6.4).
 *
 * Per-store throughput for batch sizes 1..512 across the four figure
 * models. Reproduces the saturating curve, InceptionV3's
 * decompression ceiling at batch >= 128, and ViT's out-of-memory
 * failure at batch 512 on the 16 GiB T4.
 */

#include "bench_util.h"

#include "core/inference.h"
#include "models/throughput.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 19 - Impact of batch size (KIPS per store)",
                  "NDPipe (ASPLOS'24) Fig. 19, Section 6.4");

    bench::Table t({"Model", "BS=1", "BS=8", "BS=32", "BS=128",
                    "BS=256", "BS=512"});
    for (const models::ModelSpec *m : models::figureModels()) {
        std::vector<std::string> row{m->name()};
        for (int bs : {1, 8, 32, 128, 256, 512}) {
            ExperimentConfig cfg;
            cfg.model = m;
            cfg.nStores = 1;
            cfg.nImages = 50000;
            cfg.npe.batchSize = bs;
            auto r = runNdpOfflineInference(cfg);
            if (r.faults.terminal == sim::FaultClass::OutOfMemory) {
                // Typed fault: the report carries the class and the
                // sizing that did not fit, no sentinel decoding.
                row.push_back("OOM(" +
                              bench::fmt("%.1f GiB", r.oomNeededGiB) +
                              ")");
            } else {
                row.push_back(bench::fmt("%.2f", r.ips / 1e3));
            }
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nPaper: throughput saturates past ~128; InceptionV3 "
                "gains nothing beyond 128 (CPU decompression is the "
                "3-stage-pipeline bottleneck); ViT OOMs at large "
                "batches.\n");
    return 0;
}
