/**
 * @file
 * Fig. 15: fine-tuning time vs #PipeStores for four models (§6.3).
 *
 * FT-DMP with N_run = 3 on 1.2M images, compared against SRV-C.
 * Reports the P1 crossover (first store count beating SRV-C) and the
 * BEST point (maximum IPS/kJ).
 */

#include "bench_util.h"

#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 15 - Training time vs #PipeStores",
                  "NDPipe (ASPLOS'24) Fig. 15, Section 6.3");

    for (const models::ModelSpec *m : models::figureModels()) {
        ExperimentConfig cfg;
        cfg.model = m;
        cfg.nImages = 1200000;

        auto srv = runSrvFineTuning(cfg);
        std::printf("\n--- %s ---  SRV-C: %.1f min\n",
                    m->name().c_str(), srv.seconds / 60.0);

        bench::Table t(
            {"#PipeStores", "Time (min)", "vs SRV-C", "IPS/kJ"});
        int p1 = 0, best_n = 0;
        double best_eff = 0.0;
        TrainOptions opt;
        for (int n = 1; n <= 20; ++n) {
            cfg.nStores = n;
            auto r = runFtDmpTraining(cfg, opt);
            if (!p1 && r.seconds <= srv.seconds)
                p1 = n;
            if (r.ipsPerKj() > best_eff) {
                best_eff = r.ipsPerKj();
                best_n = n;
            }
            if (n <= 4 || n % 2 == 0) {
                t.addRow({bench::fmtInt(n),
                          bench::fmt("%.1f", r.seconds / 60.0),
                          bench::fmt("%.2fx", srv.seconds / r.seconds),
                          bench::fmt("%.0f", r.ipsPerKj())});
            }
        }
        t.print();
        std::printf("P1 (beats SRV-C) at %d stores; BEST IPS/kJ at %d "
                    "stores.\n",
                    p1, best_n);
    }
    std::printf("\nPaper: ResNet50/InceptionV3 cross SRV-C at 3 "
                "stores, ResNeXt101 at 6; 10 stores give 1.64x "
                "faster training than SRV-C.\n");
    return 0;
}
