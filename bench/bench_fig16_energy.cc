/**
 * @file
 * Fig. 16: training energy efficiency at P1 and BEST (§6.3).
 *
 * P1 = the store count where NDPipe first matches SRV-C's training
 * time; BEST = the count maximizing IPS/kJ. Energy includes the Tuner
 * (and for SRV, the host plus its storage servers).
 */

#include "bench_util.h"

#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 16 - Training energy efficiency (IPS/kJ)",
                  "NDPipe (ASPLOS'24) Fig. 16, Section 6.3");

    double p1_ratio_sum = 0.0, best_ratio_sum = 0.0;
    int n_models = 0;

    bench::Table t({"Model", "SRV-C IPS/kJ", "NDPipe@P1 (stores)",
                    "NDPipe@BEST (stores)", "P1 gain", "BEST gain"});
    for (const models::ModelSpec *m : models::figureModels()) {
        ExperimentConfig cfg;
        cfg.model = m;
        cfg.nImages = 1200000;
        TrainOptions opt;

        auto srv = runSrvFineTuning(cfg);

        int p1 = 0, best_n = 1;
        double p1_eff = 0.0, best_eff = 0.0;
        for (int n = 1; n <= 20; ++n) {
            cfg.nStores = n;
            auto r = runFtDmpTraining(cfg, opt);
            if (!p1 && r.seconds <= srv.seconds) {
                p1 = n;
                p1_eff = r.ipsPerKj();
            }
            if (r.ipsPerKj() > best_eff) {
                best_eff = r.ipsPerKj();
                best_n = n;
            }
        }
        if (!p1) {
            p1 = 20;
            cfg.nStores = 20;
            p1_eff = runFtDmpTraining(cfg, opt).ipsPerKj();
        }

        t.addRow({m->name(), bench::fmt("%.0f", srv.ipsPerKj()),
                  bench::fmt("%.0f", p1_eff) + " (" +
                      std::to_string(p1) + ")",
                  bench::fmt("%.0f", best_eff) + " (" +
                      std::to_string(best_n) + ")",
                  bench::fmt("%.2fx", p1_eff / srv.ipsPerKj()),
                  bench::fmt("%.2fx", best_eff / srv.ipsPerKj())});
        p1_ratio_sum += p1_eff / srv.ipsPerKj();
        best_ratio_sum += best_eff / srv.ipsPerKj();
        ++n_models;
    }
    t.print();
    std::printf("\nMean energy-efficiency gain: %.2fx at P1, %.2fx at "
                "BEST (paper: 1.44x and 2.64x).\n",
                p1_ratio_sum / n_models, best_ratio_sum / n_models);
    return 0;
}
