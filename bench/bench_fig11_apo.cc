/**
 * @file
 * Fig. 11: training time and energy efficiency vs PipeStore count,
 * and APO's choice (§5.3).
 *
 * Runs the FT-DMP simulator for 1..20 PipeStores (ResNet50, 1.2M
 * images) and prints wall time, the APO-predicted stage balance
 * T_diff, and IPS/kJ. APO (Algorithm 1) should select the knee where
 * the Tuner becomes the bottleneck (the paper: 8 stores).
 */

#include "bench_util.h"

#include "core/apo.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 11 - Training time / energy vs #PipeStores + APO",
                  "NDPipe (ASPLOS'24) Fig. 11, Section 5.3");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;

    TrainOptions opt;
    auto apo = findBestOrganization(cfg, opt, 20);

    bench::Table t({"#PipeStores", "Train time (s)", "Tdiff (s)",
                    "IPS/kJ", "APO pick"});
    for (const auto &p : apo.sweep) {
        ExperimentConfig c = cfg;
        c.nStores = p.nStores;
        TrainOptions o = opt;
        o.cut = p.choice.cut;
        auto r = runFtDmpTraining(c, o);
        t.addRow({bench::fmtInt(p.nStores),
                  bench::fmt("%.0f", r.seconds),
                  bench::fmt("%.1f", p.tDiff),
                  bench::fmt("%.0f", r.ipsPerKj()),
                  p.nStores == apo.bestStores ? "<== best" : ""});
    }
    t.print();

    std::printf("\nAPO selects %d PipeStores at cut '%s' "
                "(paper: 8 for ResNet50).\n",
                apo.bestStores,
                apo.bestChoice.cut == 0
                    ? "None"
                    : cfg.model->blocks()[apo.bestChoice.cut - 1]
                          .name.c_str());
    return 0;
}
