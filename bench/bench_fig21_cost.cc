/**
 * @file
 * Fig. 21: operational cost of fine-tuning (§7.2).
 *
 * (a) Dollar cost of one ResNet50 fine-tuning pass vs #PipeStores for
 * NDPipe (T4), NDPipe-Inf1 (NeuronCoreV1), and SRV-C. (b) The
 * cost-versus-accuracy frontier using the functional models: fine-
 * tuning (NDPipe / SRV-C / NDPipe-Inf1) vs full training under SRV-C.
 */

#include "bench_util.h"

#include "core/cost.h"
#include "core/training.h"
#include "data/backbone.h"
#include "data/profiles.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 21 - Operational cost of fine-tuning",
                  "NDPipe (ASPLOS'24) Fig. 21, Section 7.2");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;
    TrainOptions opt;

    auto srv = runSrvFineTuning(cfg);
    double srv_cost = srvRunCostUsd(cfg, srv.seconds);

    std::printf("\n(a) Fine-tuning cost vs #PipeStores (SRV-C: $%.3f, "
                "%.1f min)\n",
                srv_cost, srv.seconds / 60.0);
    bench::Table t({"#Stores", "NDPipe $", "NDPipe-Inf1 $"});
    for (int n : {1, 2, 4, 6, 8, 10, 14, 20}) {
        cfg.nStores = n;
        cfg.storeSpec = hw::g4dn4xlarge(true);
        auto t4 = runFtDmpTraining(cfg, opt);
        double t4_cost = ndpipeRunCostUsd(cfg, t4.seconds);
        cfg.storeSpec = hw::inf12xlarge();
        auto inf1 = runFtDmpTraining(cfg, opt);
        double inf1_cost = ndpipeRunCostUsd(cfg, inf1.seconds);
        t.addRow({bench::fmtInt(n), bench::fmt("%.3f", t4_cost),
                  bench::fmt("%.3f", inf1_cost)});
    }
    t.print();

    // (b) Cost vs accuracy with the functional models. Full training
    // runs 90 epochs under SRV-C pricing (§7.2); fine-tuning follows
    // the measured FT-DMP times. Accuracy comes from the drifted-world
    // models; cost from the simulated runtimes.
    std::printf("\n(b) Cost vs accuracy (functional ImageNet-1K "
                "profile)\n");

    auto profile = data::imagenet1kProfile();
    if (bench::quickMode()) {
        profile.world.initialImages = 4000;
        profile.testSetSize = 1500;
    }
    data::PhotoWorld world(profile.world);
    Rng mrng(7);
    data::VisionModel base(profile.world.latentDim, profile.featureDim,
                           profile.world.maxClasses, mrng);
    base.fullTrain(world.poolDataset(),
                   world.sampleTestSet(profile.testSetSize),
                   profile.fullTrainCfg);
    world.advanceDays(14);
    auto test = world.sampleTestSet(profile.testSetSize);
    auto curated = world.recencyBiasedDataset(
        world.numImages(), profile.curatedRecentShare,
        profile.curatedWindowDays);

    data::VisionModel tuned = base;
    auto ft = tuned.fineTune(curated, test, profile.fineTuneCfg);

    Rng mrng2(8);
    data::VisionModel full(profile.world.latentDim, profile.featureDim,
                           profile.world.maxClasses, mrng2);
    auto full_cfg = profile.fullTrainCfg;
    auto fr = full.fullTrain(curated, test, full_cfg);

    cfg.storeSpec = hw::g4dn4xlarge(true);
    cfg.nStores = 8;
    auto ndp_run = runFtDmpTraining(cfg, opt);
    cfg.storeSpec = hw::inf12xlarge();
    auto inf1_run = runFtDmpTraining(cfg, opt);
    // Full training: 90 epochs over the whole dataset on SRV-C.
    double full_seconds = srv.seconds * 90.0 / kDefaultTunerEpochs;

    cfg.storeSpec = hw::g4dn4xlarge(true);
    bench::Table b({"Strategy", "Cost ($)", "Top-1 (%)"});
    b.addRow({"NDPipe (8 stores)",
              bench::fmt("%.3f", ndpipeRunCostUsd(cfg, ndp_run.seconds)),
              bench::fmt("%.2f", 100.0 * ft.finalTop1())});
    cfg.storeSpec = hw::inf12xlarge();
    b.addRow({"NDPipe-Inf1 (8 stores)",
              bench::fmt("%.3f",
                         ndpipeRunCostUsd(cfg, inf1_run.seconds)),
              bench::fmt("%.2f", 100.0 * ft.finalTop1())});
    b.addRow({"SRV-C fine-tune", bench::fmt("%.3f", srv_cost),
              bench::fmt("%.2f", 100.0 * ft.finalTop1())});
    b.addRow({"Full training (SRV-C, 90 ep)",
              bench::fmt("%.2f", srvRunCostUsd(cfg, full_seconds)),
              bench::fmt("%.2f", 100.0 * fr.finalTop1())});
    b.print();

    std::printf("\nPaper: NDPipe and NDPipe-Inf1 are 1.5x and 2.5x "
                "cheaper than SRV-C; full training tops accuracy at "
                ">10x the cost.\n");
    return 0;
}
