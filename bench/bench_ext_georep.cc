/**
 * @file
 * Extension study: WAN geo-replication of model deltas (core/georep).
 *
 * The scenario §5 implies once the photo service spans regions:
 * fine-tuning stays in the home region, but every published version
 * must reach the remote serving sites over WAN links ~100x slower
 * than the datacenter fabric. The payload measurement is *functional*:
 * the real Check-N-Run encoder (core/delta.h) diffs a ResNet50-scale
 * parameter vector whose classifier rows changed, and the measured
 * delta/full sizes drive the simulated distribution. Reported: the
 * encoder's reduction factor, per-site convergence and staleness
 * percentiles, WAN bytes for delta vs full-checkpoint shipping, and
 * the determinism verdict of a second same-seed run. The binary
 * asserts the paper-shaped >= 100x WAN reduction and convergence
 * in-process and exits nonzero on a violation.
 */

#include "bench_util.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/delta.h"
#include "core/georep/georep.h"
#include "sim/random.h"

using namespace ndp;
using namespace ndp::core::georep;

namespace {

struct MeasuredPayload
{
    double deltaBytes = 0.0;
    double fullBytes = 0.0;
    double reduction = 0.0;
    size_t changedParams = 0;
    size_t totalParams = 0;
};

/** Run the real delta encoder on a paper-shaped update: a ResNet50-
 * scale parameter vector where only the classifier rows moved (the
 * continuous-training case §5 distributes nightly). */
MeasuredPayload
measureDelta()
{
    const size_t n = bench::scaled(25600000, 1048576); // ~25.6M params
    const size_t changed = n / 1250; // ~0.08%: a few fc rows
    Rng rng(41);
    std::vector<float> base(n);
    for (float &v : base)
        v = static_cast<float>(rng.normal());
    std::vector<float> updated = base;
    // Classifier parameters are contiguous in flattened order, so the
    // update touches the tail block (gap encoding sees tiny gaps).
    for (size_t i = n - changed; i < n; ++i)
        updated[i] +=
            0.01f * static_cast<float>(rng.normal() + 2.0);

    const core::ModelDelta d = core::encodeDelta(base, updated);
    MeasuredPayload m;
    m.deltaBytes = static_cast<double>(d.payload.size());
    m.fullBytes = static_cast<double>(n) * 4.0;
    m.reduction = d.reductionFactor();
    m.changedParams = d.changedParams;
    m.totalParams = d.totalParams;
    return m;
}

uint64_t
bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

/** Bit-compare the two same-seed runs; false on any drift. */
bool
sameBits(const GeoRepReport &a, const GeoRepReport &b)
{
    return a.events == b.events && bits(a.seconds) == bits(b.seconds) &&
           bits(a.wanBytes) == bits(b.wanBytes) &&
           bits(a.deltaWanBytes) == bits(b.deltaWanBytes) &&
           bits(a.checkpointWanBytes) == bits(b.checkpointWanBytes) &&
           a.retransmits == b.retransmits &&
           a.duplicates == b.duplicates &&
           a.checkpointFallbacks == b.checkpointFallbacks &&
           bits(a.stalenessP50S) == bits(b.stalenessP50S) &&
           bits(a.stalenessP95S) == bits(b.stalenessP95S) &&
           bits(a.stalenessMaxS) == bits(b.stalenessMaxS);
}

void
reportRun(const char *mode, const GeoRepReport &rep)
{
    std::printf("\n[%s] %d versions published, min site version %d "
                "(%s), %.1f MB over WAN (%.1f delta / %.1f ckpt), "
                "%llu retransmits, %llu fallbacks\n",
                mode, rep.publishedVersions, rep.minSiteVersion,
                rep.converged ? "converged" : "NOT CONVERGED",
                rep.wanBytes / 1e6, rep.deltaWanBytes / 1e6,
                rep.checkpointWanBytes / 1e6,
                static_cast<unsigned long long>(rep.retransmits),
                static_cast<unsigned long long>(
                    rep.checkpointFallbacks));
    bench::Table t({"Site", "Version", "Deltas", "Ckpts", "Retx",
                    "WAN (MB)", "Stale p50 (s)", "p95 (s)",
                    "max (s)"});
    for (const SiteProgress &p : rep.sites)
        t.addRow({p.name, bench::fmtInt(p.version),
                  bench::fmtInt(static_cast<long long>(p.deltaPushes)),
                  bench::fmtInt(
                      static_cast<long long>(p.checkpointPushes)),
                  bench::fmtInt(static_cast<long long>(p.retransmits)),
                  bench::fmt("%.2f", p.wanBytes / 1e6),
                  bench::fmt("%.3f", p.stalenessP50S),
                  bench::fmt("%.3f", p.stalenessP95S),
                  bench::fmt("%.3f", p.stalenessMaxS)});
    t.print();
    if (bench::jsonMode())
        std::printf(
            "{\"mode\":\"%s\",\"wan_mb\":%.3f,\"delta_wan_mb\":%.3f,"
            "\"checkpoint_wan_mb\":%.3f,\"retransmits\":%llu,"
            "\"fallbacks\":%llu,\"duplicates\":%llu,"
            "\"staleness_p50_s\":%.4f,\"staleness_p95_s\":%.4f,"
            "\"staleness_p99_s\":%.4f,\"staleness_max_s\":%.4f,"
            "\"converged\":%s}\n",
            mode, rep.wanBytes / 1e6, rep.deltaWanBytes / 1e6,
            rep.checkpointWanBytes / 1e6,
            static_cast<unsigned long long>(rep.retransmits),
            static_cast<unsigned long long>(rep.checkpointFallbacks),
            static_cast<unsigned long long>(rep.duplicates),
            rep.stalenessP50S, rep.stalenessP95S, rep.stalenessP99S,
            rep.stalenessMaxS, rep.converged ? "true" : "false");
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner(
        "Extension - WAN geo-replication of model deltas",
        "NDPipe (ASPLOS'24) Section 5 + Check-N-Run [29], stretched "
        "across regions");

    const MeasuredPayload m = measureDelta();
    std::printf("\nEncoder (functional, core/delta.h): %zu of %zu "
                "params changed -> %.1f kB delta vs %.1f MB full "
                "model (%.0fx)\n",
                m.changedParams, m.totalParams, m.deltaBytes / 1e3,
                m.fullBytes / 1e6, m.reduction);
    if (bench::jsonMode())
        std::printf("{\"delta_payload_bytes\":%.0f,"
                    "\"full_model_bytes\":%.0f,"
                    "\"encoder_reduction_x\":%.1f}\n",
                    m.deltaBytes, m.fullBytes, m.reduction);

    // Three remote regions behind progressively worse WAN links; a
    // version publishes every 30 s observation window and 2% of delta
    // copies are lost (seeded draws exercise the retransmit path).
    GeoRepConfig cfg;
    cfg.sites = {{"eu", 1.0, 0.05},
                 {"ap", 0.6, 0.11},
                 {"sa", 0.25, 0.18}};
    cfg.opt.nRounds = static_cast<int>(bench::scaled(16, 4));
    cfg.opt.roundIntervalS = 30.0;
    cfg.opt.fineTuneS = 2.0;
    cfg.opt.deltaBytes = m.deltaBytes;
    cfg.opt.fullBytes = m.fullBytes;
    cfg.opt.lossProbability = 0.02;

    const GeoRepReport delta = runGeoReplication(cfg);
    reportRun("delta", delta);

    GeoRepConfig full_cfg = cfg;
    full_cfg.opt.fullCheckpoints = true;
    const GeoRepReport full = runGeoReplication(full_cfg);
    reportRun("full-checkpoint", full);

    // Same seed, whole delta scenario again: publishes, loss draws,
    // retransmits, and staleness percentiles must land on identical
    // bits.
    const GeoRepReport rerun = runGeoReplication(cfg);
    const bool identical = sameBits(delta, rerun);
    std::printf("\nDeterminism: second same-seed run is %s.\n",
                identical ? "bit-identical" : "DIFFERENT (BUG)");

    const double wan_reduction =
        delta.wanBytes > 0.0 ? full.wanBytes / delta.wanBytes : 0.0;
    std::printf("WAN traffic: %.1f MB full-checkpoint vs %.2f MB "
                "delta = %.0fx reduction\n",
                full.wanBytes / 1e6, delta.wanBytes / 1e6,
                wan_reduction);
    if (bench::jsonMode())
        std::printf("{\"wan_reduction_x\":%.1f,"
                    "\"deterministic\":%s}\n",
                    wan_reduction, identical ? "true" : "false");

    // The paper-shaped contract this extension stands on: shipping
    // deltas must beat checkpoints by >= 100x on the measured payload,
    // every site must converge in both modes, and the run must be
    // reproducible bit for bit.
    int rc = 0;
    if (m.reduction < 100.0) {
        std::fprintf(stderr,
                     "FAIL: encoder reduction %.1fx < 100x\n",
                     m.reduction);
        rc = 1;
    }
    if (wan_reduction < 100.0) {
        std::fprintf(stderr,
                     "FAIL: WAN reduction %.1fx < 100x\n",
                     wan_reduction);
        rc = 1;
    }
    if (!delta.converged || !full.converged) {
        std::fprintf(stderr, "FAIL: a site never converged\n");
        rc = 1;
    }
    if (!identical) {
        std::fprintf(stderr, "FAIL: same-seed runs drifted\n");
        rc = 1;
    }
    return rc;
}
