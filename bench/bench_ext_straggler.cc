/**
 * @file
 * Ablation: why "no synchronization for weight-freeze layers" matters
 * (§4.1 / §5.1), shown through straggler injection.
 *
 * One of the PipeStores runs at a fraction of its normal GPU speed
 * (background compaction, thermal throttling, a slower card). Under
 * FT-DMP only that store's shard is late; under the naive "+FC"
 * configuration the per-iteration all-reduce is a fleet-wide barrier
 * and everyone runs at the straggler's pace.
 */

#include "bench_util.h"

#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Ablation - stragglers vs weight synchronization",
                  "NDPipe (ASPLOS'24) Sections 4.1 & 5.1 (design "
                  "rationale)");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 400000;
    cfg.nStores = 4;

    bench::Table t({"Straggler speed", "FT-DMP time (s)",
                    "FT-DMP slowdown", "Naive +FC time (s)",
                    "+FC slowdown", "+FC vs FT-DMP"});

    TrainOptions ft;
    ft.nRun = 1;
    TrainOptions fc = ft;
    fc.cut = cfg.model->numBlocks();

    double ft_base = runFtDmpTraining(cfg, ft).seconds;
    double fc_base = runFtDmpTraining(cfg, fc).seconds;

    for (double speed : {1.0, 0.75, 0.5, 0.25}) {
        TrainOptions ft_s = ft;
        TrainOptions fc_s = fc;
        ft_s.storeSpeedFactor.assign(
            static_cast<size_t>(cfg.nStores), 1.0);
        ft_s.storeSpeedFactor[0] = speed;
        fc_s.storeSpeedFactor = ft_s.storeSpeedFactor;

        auto ft_r = runFtDmpTraining(cfg, ft_s);
        auto fc_r = runFtDmpTraining(cfg, fc_s);
        t.addRow({bench::fmt("%.2fx", speed),
                  bench::fmt("%.0f", ft_r.seconds),
                  bench::fmt("%.2fx", ft_r.seconds / ft_base),
                  bench::fmt("%.0f", fc_r.seconds),
                  bench::fmt("%.2fx", fc_r.seconds / fc_base),
                  bench::fmt("%.1fx", fc_r.seconds / ft_r.seconds)});
    }
    t.print();

    // Crash-recovery ablation: kill store 0 outright at increasing
    // fractions of the fault-free run. FT-DMP re-dispatches the dead
    // store's unread shard to the survivors (work re-assignment is the
    // whole recovery story when no weights are shared), so the run
    // completes with every image extracted — at the cost of the probe
    // timeout plus the survivors' extra reads.
    std::printf("\nCrash-recovery ablation (FT-DMP, store 0 killed):\n");
    bench::Table ct({"Crash at", "Time (s)", "Slowdown",
                     "Re-dispatched", "Lost", "Degraded (s)"});
    for (double frac : {0.1, 0.4, 0.7}) {
        ExperimentConfig ccfg = cfg;
        ccfg.faults.crashStore(0, frac * ft_base);
        auto r = runFtDmpTraining(ccfg, ft);
        ct.addRow({bench::fmt("%.0f%% of run", frac * 100.0),
                   bench::fmt("%.0f", r.seconds),
                   bench::fmt("%.2fx", r.seconds / ft_base),
                   bench::fmtInt(static_cast<long long>(
                       r.faults.itemsRedispatched)),
                   bench::fmtInt(
                       static_cast<long long>(r.faults.itemsLost)),
                   bench::fmt("%.1f", r.faults.degradedS)});
    }
    ct.print();

    std::printf("\nTwo regimes, one conclusion. FT-DMP degrades "
                "gracefully (only the straggler's shard is late) and "
                "stays several times faster in absolute terms. The "
                "synchronized +FC fleet shows little *additional* "
                "straggler sensitivity only because its per-iteration "
                "all-reduce has already saturated the fabric - the "
                "barrier pins every store to the network, which is "
                "precisely why offloading the trainable layer to the "
                "Tuner (Section 5.1) is the right design.\n");
    return 0;
}
