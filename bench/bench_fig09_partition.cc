/**
 * @file
 * Fig. 9: impact of the partition point on training time and network
 * traffic (ResNet50, 4 PipeStores, 10 Gbps, §5.1).
 *
 * Sweeps every cut from "None" (raw inputs to the Tuner) through
 * "+FC" (the whole model, classifier included, on the stores). The
 * qualitative result to reproduce: traffic shrinks as more frozen
 * layers are offloaded, the best time lands at +Conv5 (everything but
 * the classifier), and +FC explodes due to weight synchronization.
 * Also reports the Check-N-Run delta traffic of model redistribution.
 */

#include "bench_util.h"

#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner(
        "Fig. 9 - Impact of layer offloading (ResNet50, 4 PipeStores)",
        "NDPipe (ASPLOS'24) Fig. 9, Section 5.1");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 4;
    cfg.nImages = 1200000;

    const auto &m = *cfg.model;
    bench::Table t({"Offload", "Train time (s)", "PipeStore+net (s)",
                    "Tuner (s)", "Data traffic (TB)",
                    "Weight sync (TB)", "Delta dist (MB)"});

    for (size_t cut = 0; cut <= m.numBlocks(); ++cut) {
        TrainOptions opt;
        opt.cut = cut;
        auto r = runFtDmpTraining(cfg, opt);
        std::string label =
            cut == 0 ? "None" : "+" + m.blocks()[cut - 1].name;
        t.addRow({label, bench::fmt("%.0f", r.seconds),
                  bench::fmt("%.0f", r.stages.computeS / cfg.nStores +
                                         r.stages.transferS),
                  bench::fmt("%.0f", r.stages.tunerS),
                  bench::fmt("%.3f", r.dataTrafficBytes / 1e12),
                  bench::fmt("%.3f", r.syncTrafficBytes / 1e12),
                  bench::fmt("%.2f", r.distributionBytes / 1e6)});
    }
    t.print();

    std::printf("\nPaper: best point after +Conv5; +FC surges from "
                "weight sync; feature traffic at +Conv5 ~9.16 GB "
                "(fp32; this repo ships fp16 features, ~4.9 GB).\n"
                "Known deviation: real activation shapes make +Conv2 "
                "output (56x56x256) larger than +Conv1 (56x56x64), so "
                "the traffic curve is not monotonic as drawn in the "
                "paper.\n");
    return 0;
}
