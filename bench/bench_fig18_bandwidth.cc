/**
 * @file
 * Fig. 18: inference power efficiency vs network bandwidth (§6.4).
 *
 * Sweeps 1/10/20/40 Gbps for ResNet50 and ResNeXt101. SRV-C improves
 * with bandwidth until the host-side constraint (8 decompression
 * cores / the two V100s) caps it; NDPipe ships only labels and is
 * bandwidth-insensitive.
 *
 * Doubles as a CI smoke test: the knee must *emerge* from fabric
 * contention (no analytic bandwidth term anywhere in the dataflow), so
 * the shape is asserted in-binary and a violation exits nonzero.
 */

#include "bench_util.h"

#include <map>

#include "core/inference.h"

using namespace ndp;
using namespace ndp::core;

namespace {

int g_failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::printf("FAIL: %s\n", what);
        ++g_failures;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 18 - Impact of network bandwidth (IPS/W)",
                  "NDPipe (ASPLOS'24) Fig. 18, Section 6.4");

    const models::ModelSpec *mods[] = {&models::resnet50(),
                                       &models::resnext101()};
    for (const models::ModelSpec *m : mods) {
        std::printf("\n--- %s ---\n", m->name().c_str());
        bench::Table t({"BW (Gbps)", "SRV-C KIPS", "SRV-C IPS/W",
                        "NDPipe KIPS", "NDPipe IPS/W", "NDPipe gain"});
        std::map<double, double> srvIps, ndpIps;
        for (double bw : {1.0, 10.0, 20.0, 40.0}) {
            ExperimentConfig cfg;
            cfg.model = m;
            cfg.networkGbps = bw;
            cfg.nImages = 200000;
            auto srv =
                runSrvOfflineInference(cfg, SrvVariant::Compressed);
            // NDPipe sized to SRV-C's best (40 Gbps) throughput level
            // so the comparison is at comparable scale.
            cfg.nStores = 4;
            auto ndp = runNdpOfflineInference(cfg);
            srvIps[bw] = srv.ips;
            ndpIps[bw] = ndp.ips;
            t.addRow({bench::fmt("%.0f", bw),
                      bench::fmt("%.2f", srv.ips / 1e3),
                      bench::fmt("%.2f", srv.ipsPerWatt()),
                      bench::fmt("%.2f", ndp.ips / 1e3),
                      bench::fmt("%.2f", ndp.ipsPerWatt()),
                      bench::fmt("%.2fx",
                                 ndp.ipsPerWatt() / srv.ipsPerWatt())});
        }
        t.print();

        // Knee shape (§6.4): wire-bound on the left, host-bound on the
        // right. The knee sits at 20 Gbps for ResNet50 and at 10 Gbps
        // for ResNeXt101 (the heavier model hits its GPU ceiling
        // earlier), so assert shape, not knee location.
        check(srvIps[10.0] > 2.0 * srvIps[1.0],
              "SRV-C must be wire-bound at 1 Gbps (big gain 1 -> 10)");
        check(srvIps[20.0] > 0.999 * srvIps[10.0] &&
                  srvIps[40.0] > 0.999 * srvIps[20.0],
              "SRV-C may not regress as bandwidth grows");
        check(srvIps[40.0] < 1.05 * srvIps[20.0],
              "SRV-C must saturate past 20 Gbps (host-side ceiling)");
        // NDPipe ships labels only: its throughput may not move more
        // than 2% across a 40x bandwidth sweep.
        check(ndpIps[40.0] < 1.02 * ndpIps[1.0] &&
                  ndpIps[1.0] < 1.02 * ndpIps[40.0],
              "NDPipe must be bandwidth-insensitive");
    }
    std::printf("\nPaper: SRV-C stops improving beyond 20 Gbps "
                "(decompression/GPU ceiling); NDPipe is 3.7x better "
                "at 1 Gbps and 1.3x at 40 Gbps.\n");
    if (g_failures) {
        std::printf("\n%d knee-shape assertion(s) failed.\n", g_failures);
        return 1;
    }
    std::printf("\nAll knee-shape assertions passed.\n");
    return 0;
}
