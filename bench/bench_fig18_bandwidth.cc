/**
 * @file
 * Fig. 18: inference power efficiency vs network bandwidth (§6.4).
 *
 * Sweeps 1/10/20/40 Gbps for ResNet50 and ResNeXt101. SRV-C improves
 * with bandwidth until the host-side constraint (8 decompression
 * cores / the two V100s) caps it; NDPipe ships only labels and is
 * bandwidth-insensitive.
 */

#include "bench_util.h"

#include "core/inference.h"

using namespace ndp;
using namespace ndp::core;

int
main()
{
    bench::banner("Fig. 18 - Impact of network bandwidth (IPS/W)",
                  "NDPipe (ASPLOS'24) Fig. 18, Section 6.4");

    const models::ModelSpec *mods[] = {&models::resnet50(),
                                       &models::resnext101()};
    for (const models::ModelSpec *m : mods) {
        std::printf("\n--- %s ---\n", m->name().c_str());
        bench::Table t({"BW (Gbps)", "SRV-C KIPS", "SRV-C IPS/W",
                        "NDPipe KIPS", "NDPipe IPS/W", "NDPipe gain"});
        for (double bw : {1.0, 10.0, 20.0, 40.0}) {
            ExperimentConfig cfg;
            cfg.model = m;
            cfg.networkGbps = bw;
            cfg.nImages = 200000;
            auto srv =
                runSrvOfflineInference(cfg, SrvVariant::Compressed);
            // NDPipe sized to SRV-C's best (40 Gbps) throughput level
            // so the comparison is at comparable scale.
            cfg.nStores = 4;
            auto ndp = runNdpOfflineInference(cfg);
            t.addRow({bench::fmt("%.0f", bw),
                      bench::fmt("%.2f", srv.ips / 1e3),
                      bench::fmt("%.2f", srv.ipsPerWatt()),
                      bench::fmt("%.2f", ndp.ips / 1e3),
                      bench::fmt("%.2f", ndp.ipsPerWatt()),
                      bench::fmt("%.2fx",
                                 ndp.ipsPerWatt() / srv.ipsPerWatt())});
        }
        t.print();
    }
    std::printf("\nPaper: SRV-C stops improving beyond 20 Gbps "
                "(decompression/GPU ceiling); NDPipe is 3.7x better "
                "at 1 Gbps and 1.3x at 40 Gbps.\n");
    return 0;
}
