/**
 * @file
 * Extension study (§7.1): NDPipe beyond photos.
 *
 * For each media type (photo / video / audio / document) compares
 * near-data analysis across PipeStores against shipping raw objects
 * to the centralized host: throughput, network traffic, and energy.
 * This quantifies the paper's discussion-section claim that the same
 * engine generalizes — the heavier the object relative to its
 * analysis result, the larger NDPipe's advantage.
 */

#include "bench_util.h"

#include "core/media.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Extension - NDPipe for video/audio/document media",
                  "NDPipe (ASPLOS'24) Section 7.1 (discussion)");

    ExperimentConfig cfg;
    cfg.nStores = 4;

    bench::Table t({"Media", "Units/obj", "NDP obj/s", "SRV obj/s",
                    "Speedup", "NDP net MB", "SRV net MB",
                    "Traffic reduction", "Energy gain"});
    for (const auto &media : allMedia()) {
        uint64_t objects =
            media.rawMB > 50.0 ? 400 : 4000; // keep runs balanced
        auto ndp = runNdpMediaAnalysis(cfg, media, objects);
        auto srv = runSrvMediaAnalysis(cfg, media, objects);
        double ndp_eff = ndp.ops / (ndp.energyJ / objects);
        double srv_eff = srv.ops / (srv.energyJ / objects);
        t.addRow({media.name, bench::fmt("%.0f", media.unitsPerObject),
                  bench::fmt("%.1f", ndp.ops),
                  bench::fmt("%.1f", srv.ops),
                  bench::fmt("%.2fx", ndp.ops / srv.ops),
                  bench::fmt("%.1f", ndp.netBytes / 1e6),
                  bench::fmt("%.1f", srv.netBytes / 1e6),
                  bench::fmt("%.0fx", srv.netBytes / ndp.netBytes),
                  bench::fmt("%.2fx", ndp_eff / srv_eff)});
    }
    t.print();

    std::printf("\nPaper (§7.1): frame extraction, audio spectrogram "
                "transformation, and document embeddings let the same "
                "near-data engine serve other media; the bulkier the "
                "object, the more traffic NDP saves.\n");
    return 0;
}
