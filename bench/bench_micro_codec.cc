/**
 * @file
 * Micro-benchmarks of the DeflateLite codec on the two payload types
 * the photo service handles: redundant preprocessed tensors and
 * high-entropy raw photos. Reports MB/s so the simulator's
 * kDecompressMBps constant can be sanity-checked against the real
 * implementation.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "storage/codec.h"
#include "storage/photo_gen.h"

using namespace ndp::storage;

namespace {

void
BM_DeflatePreprocessed(benchmark::State &state)
{
    PhotoGenerator gen;
    Bytes input = gen.preprocessedBinary(1);
    for (auto _ : state) {
        Bytes out = deflateLite(input);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_DeflatePreprocessed);

void
BM_InflatePreprocessed(benchmark::State &state)
{
    PhotoGenerator gen;
    Bytes compressed = deflateLite(gen.preprocessedBinary(1));
    uint64_t out_size = *inflatedSize(compressed);
    for (auto _ : state) {
        auto out = inflateLite(compressed);
        benchmark::DoNotOptimize(out->data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(out_size));
}
BENCHMARK(BM_InflatePreprocessed);

void
BM_DeflateRawPhoto(benchmark::State &state)
{
    PhotoGenerator gen;
    Bytes input = gen.rawPhoto(1);
    for (auto _ : state) {
        Bytes out = deflateLite(input);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_DeflateRawPhoto);

void
BM_CompressionRatio(benchmark::State &state)
{
    PhotoGenerator gen;
    double ratio = 0.0;
    for (auto _ : state) {
        Bytes input = gen.preprocessedBinary(
            static_cast<uint64_t>(state.iterations()));
        Bytes out = deflateLite(input);
        ratio = static_cast<double>(input.size()) /
                static_cast<double>(out.size());
        benchmark::DoNotOptimize(ratio);
    }
    state.counters["ratio"] = ratio;
}
BENCHMARK(BM_CompressionRatio);

/** --json: one pass per workload; events = bytes through the codec. */
int
runJson()
{
    PhotoGenerator gen;
    {
        Bytes input = gen.preprocessedBinary(1);
        long long bytes = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 50; ++i) {
            Bytes out = deflateLite(input);
            benchmark::DoNotOptimize(out.data());
            bytes += static_cast<long long>(input.size());
        }
        ndp::bench::jsonWorkloadLine("deflate-preprocessed", bytes,
                                     w.seconds());
    }
    {
        Bytes compressed = deflateLite(gen.preprocessedBinary(1));
        long long out_size =
            static_cast<long long>(*inflatedSize(compressed));
        long long bytes = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 50; ++i) {
            auto out = inflateLite(compressed);
            benchmark::DoNotOptimize(out->data());
            bytes += out_size;
        }
        ndp::bench::jsonWorkloadLine("inflate-preprocessed", bytes,
                                     w.seconds());
    }
    {
        Bytes input = gen.rawPhoto(1);
        long long bytes = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 20; ++i) {
            Bytes out = deflateLite(input);
            benchmark::DoNotOptimize(out.data());
            bytes += static_cast<long long>(input.size());
        }
        ndp::bench::jsonWorkloadLine("deflate-raw-photo", bytes,
                                     w.seconds());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    if (ndp::bench::jsonMode())
        return runJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
