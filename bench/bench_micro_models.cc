/**
 * @file
 * Micro-benchmarks of the analytical layers: APO's partition search
 * latency (it must be cheap enough to run at deployment time), the
 * whole-organization sweep, and model-delta encode/apply.
 */

#include <benchmark/benchmark.h>

#include "core/apo.h"
#include "core/delta.h"
#include "sim/random.h"

using namespace ndp;
using namespace ndp::core;

namespace {

void
BM_FindBestPoint(benchmark::State &state)
{
    ExperimentConfig cfg;
    cfg.model = &models::vitB16(); // most partition points
    cfg.nStores = 8;
    cfg.nImages = 1200000;
    TrainOptions opt;
    for (auto _ : state) {
        auto c = findBestPoint(cfg, opt);
        benchmark::DoNotOptimize(c.predictedTotalS);
    }
}
BENCHMARK(BM_FindBestPoint);

void
BM_FindBestOrganization(benchmark::State &state)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;
    TrainOptions opt;
    for (auto _ : state) {
        auto r = findBestOrganization(cfg, opt, 20);
        benchmark::DoNotOptimize(r.bestStores);
    }
}
BENCHMARK(BM_FindBestOrganization);

void
BM_DeltaEncode(benchmark::State &state)
{
    Rng rng(5);
    const size_t n = 1u << 20; // ~1M params, ResNet50-classifier scale
    std::vector<float> base(n), updated;
    for (auto &v : base)
        v = static_cast<float>(rng.normal());
    updated = base;
    // 2% of weights change (a classifier update).
    for (size_t i = 0; i < n / 50; ++i)
        updated[rng.below(n)] += 0.01f;
    for (auto _ : state) {
        auto d = encodeDelta(base, updated);
        benchmark::DoNotOptimize(d.payload.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DeltaEncode);

void
BM_DeltaApply(benchmark::State &state)
{
    Rng rng(6);
    const size_t n = 1u << 20;
    std::vector<float> base(n), updated;
    for (auto &v : base)
        v = static_cast<float>(rng.normal());
    updated = base;
    for (size_t i = 0; i < n / 50; ++i)
        updated[rng.below(n)] += 0.01f;
    auto d = encodeDelta(base, updated);
    for (auto _ : state) {
        std::vector<float> params = base;
        bool ok = applyDelta(d, params);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DeltaApply);

} // namespace

BENCHMARK_MAIN();
