/**
 * @file
 * Micro-benchmarks of the analytical layers: APO's partition search
 * latency (it must be cheap enough to run at deployment time), the
 * whole-organization sweep, and model-delta encode/apply.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/apo.h"
#include "core/delta.h"
#include "sim/random.h"

using namespace ndp;
using namespace ndp::core;

namespace {

void
BM_FindBestPoint(benchmark::State &state)
{
    ExperimentConfig cfg;
    cfg.model = &models::vitB16(); // most partition points
    cfg.nStores = 8;
    cfg.nImages = 1200000;
    TrainOptions opt;
    for (auto _ : state) {
        auto c = findBestPoint(cfg, opt);
        benchmark::DoNotOptimize(c.predictedTotalS);
    }
}
BENCHMARK(BM_FindBestPoint);

void
BM_FindBestOrganization(benchmark::State &state)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;
    TrainOptions opt;
    for (auto _ : state) {
        auto r = findBestOrganization(cfg, opt, 20);
        benchmark::DoNotOptimize(r.bestStores);
    }
}
BENCHMARK(BM_FindBestOrganization);

void
BM_DeltaEncode(benchmark::State &state)
{
    Rng rng(5);
    const size_t n = 1u << 20; // ~1M params, ResNet50-classifier scale
    std::vector<float> base(n), updated;
    for (auto &v : base)
        v = static_cast<float>(rng.normal());
    updated = base;
    // 2% of weights change (a classifier update).
    for (size_t i = 0; i < n / 50; ++i)
        updated[rng.below(n)] += 0.01f;
    for (auto _ : state) {
        auto d = encodeDelta(base, updated);
        benchmark::DoNotOptimize(d.payload.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DeltaEncode);

void
BM_DeltaApply(benchmark::State &state)
{
    Rng rng(6);
    const size_t n = 1u << 20;
    std::vector<float> base(n), updated;
    for (auto &v : base)
        v = static_cast<float>(rng.normal());
    updated = base;
    for (size_t i = 0; i < n / 50; ++i)
        updated[rng.below(n)] += 0.01f;
    auto d = encodeDelta(base, updated);
    for (auto _ : state) {
        std::vector<float> params = base;
        bool ok = applyDelta(d, params);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DeltaApply);

/** --json: one pass per workload; events = searches / params. */
int
runJson()
{
    {
        ExperimentConfig cfg;
        cfg.model = &models::vitB16();
        cfg.nStores = 8;
        cfg.nImages = 1200000;
        TrainOptions opt;
        long long searches = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 2000; ++i) {
            auto c = findBestPoint(cfg, opt);
            benchmark::DoNotOptimize(c.predictedTotalS);
            ++searches;
        }
        ndp::bench::jsonWorkloadLine("find-best-point", searches,
                                     w.seconds());
    }
    {
        ExperimentConfig cfg;
        cfg.model = &models::resnet50();
        cfg.nImages = 1200000;
        TrainOptions opt;
        long long sweeps = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 500; ++i) {
            auto r = findBestOrganization(cfg, opt, 20);
            benchmark::DoNotOptimize(r.bestStores);
            ++sweeps;
        }
        ndp::bench::jsonWorkloadLine("find-best-organization", sweeps,
                                     w.seconds());
    }
    {
        Rng rng(5);
        const size_t n = 1u << 20;
        std::vector<float> base(n), updated;
        for (auto &v : base)
            v = static_cast<float>(rng.normal());
        updated = base;
        for (size_t i = 0; i < n / 50; ++i)
            updated[rng.below(n)] += 0.01f;
        long long params = 0;
        ndp::bench::WallTimer w;
        for (int i = 0; i < 20; ++i) {
            auto d = encodeDelta(base, updated);
            benchmark::DoNotOptimize(d.payload.data());
            params += static_cast<long long>(n);
        }
        ndp::bench::jsonWorkloadLine("delta-encode", params,
                                     w.seconds());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    if (ndp::bench::jsonMode())
        return runJson();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
