/**
 * @file
 * Extension study: the multi-job cluster (global APO + scheduler).
 *
 * The nightly scenario §5.2 implies but never measures: K = 5 models
 * fine-tune concurrently on a shared PipeStore fleet while the photo
 * service keeps serving online uploads on the Tuner host. Global APO
 * (core/apo.h planJobs) partitions the fleet and picks each job's
 * cut; the cluster scheduler (core/sched) arbitrates the shared Tuner
 * GPU. Reported: per-job makespan / waits / preemptions, serving
 * latency percentiles, and the serving-p99 cost of colocating the
 * nightly fine-tunes with the online path.
 */

#include "bench_util.h"

#include "core/apo.h"
#include "core/sched/cluster.h"

using namespace ndp;
using namespace ndp::core;

namespace {

sched::JobDesc
onlineJob(uint64_t uploads)
{
    sched::JobDesc d;
    d.name = "serve";
    d.kind = sched::JobKind::OnlineServe;
    d.priority = 2; // latency path outranks every nightly batch job
    d.arrivalsPerSec = 120.0;
    d.nUploads = uploads;
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner(
        "Extension - Multi-job cluster: 5 nightly fine-tunes + serving",
        "NDPipe (ASPLOS'24) Sections 5.2-5.3, generalized to K jobs");

    ClusterSpec spec;
    spec.nStores = 10;

    const uint64_t imgs = bench::scaled(60000, 6000);
    const uint64_t uploads = bench::scaled(20000, 2000);

    // Global APO partitions the fleet among the nightly jobs and
    // picks each one's cut (PipeDream-style DP, core/apo.h).
    ExperimentConfig fleet;
    fleet.networkGbps = spec.networkGbps;
    fleet.storeSpec = spec.storeSpec;
    fleet.tunerSpec = spec.tunerSpec;
    std::vector<ApoJobSpec> wants;
    wants.push_back({"ft-resnet50", &models::resnet50(), imgs, {}});
    wants.push_back(
        {"ft-shufflenet", &models::shufflenetV2(), imgs, {}});
    wants.push_back(
        {"ft-inception", &models::inceptionV3(), imgs, {}});
    wants.push_back(
        {"ft-resnext", &models::resnext101(), imgs / 2, {}});
    wants.push_back(
        {"ft-resnet50-b", &models::resnet50(), imgs / 2, {}});
    GlobalApoResult plan = planJobs(fleet, wants, spec.nStores);

    std::printf("\nGlobal APO plan (%d stores, predicted makespan "
                "%.0f s):\n",
                spec.nStores, plan.makespanS);
    bench::Table pt({"Job", "Stores", "Range", "Cut",
                     "Predicted (s)"});
    for (const ApoJobPlan &p : plan.jobs)
        pt.addRow({p.name, bench::fmtInt(p.nStores),
                   std::to_string(p.firstStore) + ".." +
                       std::to_string(p.firstStore + p.nStores - 1),
                   bench::fmtInt(static_cast<long long>(p.choice.cut)),
                   bench::fmt("%.0f", p.choice.predictedTotalS)});
    pt.print();

    // The colocated run: every planned fine-tune plus online serving.
    sched::Cluster cluster(spec);
    for (size_t j = 0; j < plan.jobs.size(); ++j) {
        const ApoJobPlan &p = plan.jobs[j];
        sched::JobDesc d;
        d.name = p.name;
        d.kind = sched::JobKind::FtDmpTrain;
        d.priority = j == 0 ? 1 : 0; // the flagship model goes first
        d.share = j == 0 ? 2.0 : 1.0;
        for (int k = 0; k < p.nStores; ++k)
            d.stores.push_back(p.firstStore + k);
        d.model = wants[j].model;
        d.nImages = wants[j].nImages;
        d.train = wants[j].train;
        cluster.submit(d);
    }
    cluster.submit(onlineJob(uploads));
    sched::ClusterReport rep = cluster.run();

    // Serve-alone baseline: the same upload stream, empty fleet.
    sched::Cluster alone(spec);
    alone.submit(onlineJob(uploads));
    sched::ClusterReport ref = alone.run();

    std::printf("\nCluster run: %.0f sim-s, %llu events\n", rep.seconds,
                static_cast<unsigned long long>(rep.events));
    bench::Table t({"Job", "Kind", "Prio", "Makespan (s)", "Wait (s)",
                    "Preempt", "GPU (s)", "p50 (ms)", "p99 (ms)"});
    for (const sched::JobReport &j : rep.jobs) {
        bool online = j.kind == sched::JobKind::OnlineServe;
        t.addRow({j.name, sched::jobKindName(j.kind),
                  bench::fmtInt(j.priority),
                  bench::fmt("%.0f", j.makespanS),
                  bench::fmt("%.1f", j.waitS),
                  bench::fmtInt(static_cast<long long>(j.preemptions)),
                  bench::fmt("%.1f", j.chargedGpuS),
                  online ? bench::fmt("%.1f", j.p50Ms) : "-",
                  online ? bench::fmt("%.1f", j.p99Ms) : "-"});
    }
    t.print();

    const sched::JobReport &served = rep.jobs.back();
    const sched::JobReport &servedAlone = ref.jobs.front();
    std::printf("\nServing p99: %.1f ms colocated vs %.1f ms alone "
                "(+%.1f ms for sharing the Tuner with %zu nightly "
                "fine-tunes).\n",
                served.p99Ms, servedAlone.p99Ms,
                served.p99Ms - servedAlone.p99Ms, plan.jobs.size());
    if (bench::jsonMode())
        std::printf("{\"serving_p99_ms\":%.3f,"
                    "\"serving_alone_p99_ms\":%.3f,"
                    "\"cluster_makespan_s\":%.3f}\n",
                    served.p99Ms, servedAlone.p99Ms, rep.seconds);
    return 0;
}
