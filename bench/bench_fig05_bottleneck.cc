/**
 * @file
 * Fig. 5: impact of the network bottleneck (§3.4).
 *
 * Typical = 2xV100 host + 4 storage servers over 10 Gbps, fully
 * serial stages (the unoptimized baseline). Ideal = the same host with
 * all data local. (a) fine-tuning wall time over 1.2M preprocessed
 * images; (b) offline inference throughput over raw 2.7 MB JPEGs.
 */

#include "bench_util.h"

#include "core/inference.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 5 - Impact of network bottleneck",
                  "NDPipe (ASPLOS'24) Fig. 5, Section 3.4");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.npe.pipelined = false; // the Typical system has no overlap

    // (a) Fine-tuning: preprocessed dataset (0.59 MB/image avg). The
    // TF input pipeline prefetches, so the fine-tune flow overlaps
    // stages even on the Typical system; the network still dominates.
    cfg.nImages = 1200000;
    auto ft_typ = runSrvFineTuning(cfg, SrvVariant::Preprocessed,
                                   kDefaultTunerEpochs, true);
    auto ft_ideal = runSrvFineTuning(cfg, SrvVariant::Ideal,
                                     kDefaultTunerEpochs, true);

    bench::Table a({"Setup", "Training time (min)", "Slowdown"});
    a.addRow({"Ideal", bench::fmt("%.1f", ft_ideal.seconds / 60.0),
              "1.00x"});
    a.addRow({"Typical", bench::fmt("%.1f", ft_typ.seconds / 60.0),
              bench::fmt("%.2fx", ft_typ.seconds / ft_ideal.seconds)});
    std::printf("\n(a) Fine-tuning (1.2M preprocessed images)\n");
    a.print();

    // (b) Offline inference: raw JPEGs, host-side preprocessing.
    cfg.nImages = 20000;
    auto inf_typ = runSrvOfflineInference(cfg, SrvVariant::RawRemote);
    auto inf_ideal = runSrvOfflineInference(cfg, SrvVariant::RawLocal);

    bench::Table b({"Setup", "Throughput (IPS)"});
    b.addRow({"Ideal", bench::fmt("%.0f", inf_ideal.ips)});
    b.addRow({"Typical", bench::fmt("%.0f", inf_typ.ips)});
    std::printf("\n(b) Offline inference (raw 2.7 MB JPEGs)\n");
    b.print();
    std::printf("\nPaper: fine-tuning 3.7x slower on Typical; "
                "inference 94 vs 123 IPS.\n");
    return 0;
}
