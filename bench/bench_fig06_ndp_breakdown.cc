/**
 * @file
 * Fig. 6: per-stage execution times of naive NDP vs Typical (§4).
 *
 * (a) Fine-tuning: naive NDP runs the entire fine-tune on the storage
 * GPUs with per-iteration weight synchronization (the "+FC"
 * configuration); Typical ships preprocessed images to the 2xV100
 * host. (b) Offline inference: naive NDP preprocesses on one storage
 * CPU core; Typical ships raw JPEGs and preprocesses on 8 host cores.
 * Stage values are device-seconds per stage, normalized to Typical.
 */

#include "bench_util.h"

#include "core/inference.h"
#include "core/training.h"
#include "models/throughput.h"
#include "net/estimate.h"

using namespace ndp;
using namespace ndp::core;

namespace {

std::string
norm(double ndp, double typ)
{
    if (typ <= 0.0)
        return ndp > 0.0 ? "inf" : "0.00";
    return bench::fmt("%.2f", ndp / typ);
}

} // namespace

int
main(int argc, char **argv)
{
    auto trace = ndp::bench::init(argc, argv);
    bench::banner("Fig. 6 - Naive NDP vs Typical, per-stage times",
                  "NDPipe (ASPLOS'24) Fig. 6, Section 4");

    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 4;
    // Quick mode keeps traced smoke runs (NDP_TRACE=1 in CI) small.
    cfg.nImages = bench::scaled(1200000, 60000);

    // (a) Fine-tuning.
    auto typ = runSrvFineTuning(cfg, SrvVariant::Preprocessed,
                                kDefaultTunerEpochs, true);
    TrainOptions naive;
    naive.cut = cfg.model->numBlocks(); // "+FC": everything on stores
    naive.nRun = 1;
    naive.pipelined = false;
    auto ndp = runFtDmpTraining(cfg, naive);

    double typ_fect = typ.stages.computeS + typ.stages.tunerS;
    double ndp_fect = ndp.stages.computeS + ndp.stages.tunerS;

    bench::Table a({"Stage", "Typical (min, device)", "NDP/Typical"});
    a.addRow({"Read", bench::fmt("%.1f", typ.stages.readS / 60.0),
              norm(ndp.stages.readS, typ.stages.readS)});
    a.addRow({"Data Trans.",
              bench::fmt("%.1f", typ.stages.transferS / 60.0),
              norm(ndp.stages.transferS, typ.stages.transferS)});
    a.addRow({"FE&CT", bench::fmt("%.1f", typ_fect / 60.0),
              norm(ndp_fect, typ_fect)});
    a.addRow({"Weight Sync.",
              bench::fmt("%.1f", typ.stages.syncS / 60.0),
              ndp.stages.syncS > 0.0
                  ? bench::fmt("%.1f min (Typical: ~0)",
                               ndp.stages.syncS / 60.0)
                  : "0"});
    std::printf("\n(a) Fine-tuning (normalized to Typical)\n");
    a.print();
    std::printf("Wall time: Typical %.1f min, naive NDP %.1f min\n",
                typ.seconds / 60.0, ndp.seconds / 60.0);

    // (b) Offline inference over 1,000 raw images (as in §4.2).
    cfg.nImages = 1000;
    cfg.npe = NpeOptions::naive(); // 1 preprocess core on the store
    cfg.npe.pipelined = true;
    auto inf_ndp = runNdpOfflineInference(cfg);
    ExperimentConfig tcfg = cfg;
    tcfg.npe.pipelined = true;
    auto inf_typ = runSrvOfflineInference(tcfg, SrvVariant::RawRemote);

    // Cluster-level per-image stage times: the NDP side aggregates
    // its 4 stores (4 disks, 4 preprocess cores, 4 T4s), the Typical
    // side its 4 storage-server disks, the shared 10 Gbps link, 8
    // host preprocess cores and 2 V100s.
    auto b_ndp = npeStageTimes(cfg, cfg.npe, false);
    double n_st = static_cast<double>(cfg.nStores);
    // Steady-state stream rate: per-image seek is amortized away.
    double t_read = (cfg.srvStoreSpec.disk.streamReadSeconds(
                         models::kRawImageMB * 1e6) -
                     cfg.srvStoreSpec.disk.seekS) /
                    cfg.srvStorageServers;
    double t_net = ndp::net::wireSeconds(models::kRawImageMB * 1e6,
                                         cfg.networkGbps);
    double t_pre = 1.0 / (kPreprocImgPerSecPerCore * 8.0);
    double t_gpu = 1.0 / models::deviceIps(*cfg.hostSpec.gpu,
                                           *cfg.model,
                                           cfg.npe.batchSize) /
                   cfg.hostSpec.nGpus;

    bench::Table b({"Stage", "Typical (ms/img)", "NDP/Typical"});
    b.addRow({"Read", bench::fmt("%.2f", t_read * 1e3),
              norm(b_ndp.readS / n_st, t_read)});
    b.addRow({"Data Trans", bench::fmt("%.2f", t_net * 1e3),
              norm(0.0, t_net)});
    b.addRow({"Preproc.", bench::fmt("%.2f", t_pre * 1e3),
              norm(b_ndp.preprocessS / n_st, t_pre)});
    b.addRow({"FE&Cl", bench::fmt("%.2f", t_gpu * 1e3),
              norm(b_ndp.computeS / n_st, t_gpu)});
    std::printf("\n(b) Offline inference (per-image stage times)\n");
    b.print();
    std::printf("Throughput: Typical %.0f IPS, naive NDP (4 stores) "
                "%.0f IPS\n",
                inf_typ.ips, inf_ndp.ips);
    std::printf("\nPaper: NDP removes Data Trans., FE&CT within 1.36x, "
                "but Weight Sync. becomes the new bottleneck; NDP "
                "preprocessing (1 core) ~3x Typical (8 cores).\n");
    return 0;
}
