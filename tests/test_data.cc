/**
 * @file
 * Tests for the drifting photo world and the backbone/vision model:
 * growth and new-category rates, drift history, dataset extraction,
 * and the weight-freeze training paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "data/backbone.h"
#include "data/profiles.h"
#include "data/world.h"

using namespace ndp;
using namespace ndp::data;

namespace {

WorldConfig
smallWorld()
{
    WorldConfig cfg;
    cfg.latentDim = 8;
    cfg.initialClasses = 10;
    cfg.maxClasses = 14;
    cfg.initialImages = 500;
    cfg.dailyGrowth = 0.05;
    cfg.seed = 99;
    return cfg;
}

} // namespace

TEST(PhotoWorld, InitialStateMatchesConfig)
{
    PhotoWorld w(smallWorld());
    EXPECT_EQ(w.day(), 0);
    EXPECT_EQ(w.numImages(), 500u);
    EXPECT_EQ(w.numClasses(), 10u);
    EXPECT_EQ(w.latentDim(), 8u);
}

TEST(PhotoWorld, GrowthRateApproximatesConfig)
{
    auto cfg = smallWorld();
    cfg.initialImages = 10000;
    PhotoWorld w(cfg);
    size_t before = w.numImages();
    w.advanceDays(1);
    double growth =
        static_cast<double>(w.numImages() - before) / before;
    EXPECT_NEAR(growth, cfg.dailyGrowth, 0.002);
}

TEST(PhotoWorld, CompoundGrowthOverTwoWeeks)
{
    auto cfg = smallWorld();
    cfg.initialImages = 5000;
    PhotoWorld w(cfg);
    w.advanceDays(14);
    double expected = 5000.0 * std::pow(1.0 + cfg.dailyGrowth, 14);
    EXPECT_NEAR(static_cast<double>(w.numImages()), expected,
                expected * 0.02);
}

TEST(PhotoWorld, NewCategoriesAppearOverTime)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(10);
    EXPECT_GT(w.numClasses(), 10u);
    EXPECT_LE(w.numClasses(), 14u);
}

TEST(PhotoWorld, ClassCountCapsAtMax)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(60);
    EXPECT_EQ(w.numClasses(), 14u);
}

TEST(PhotoWorld, RecordsAreOrderedByDay)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(5);
    int prev = 0;
    for (const auto &rec : w.pool()) {
        EXPECT_GE(rec.dayAdded, prev);
        prev = rec.dayAdded;
    }
}

TEST(PhotoWorld, IdsAreUnique)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(3);
    std::set<uint64_t> ids;
    for (const auto &rec : w.pool())
        ids.insert(rec.id);
    EXPECT_EQ(ids.size(), w.numImages());
}

TEST(PhotoWorld, DeterministicForSameSeed)
{
    PhotoWorld a(smallWorld()), b(smallWorld());
    a.advanceDays(4);
    b.advanceDays(4);
    ASSERT_EQ(a.numImages(), b.numImages());
    for (size_t i = 0; i < a.numImages(); ++i) {
        EXPECT_EQ(a.pool()[i].label, b.pool()[i].label);
        EXPECT_EQ(a.latentOf(a.pool()[i])[0],
                  b.latentOf(b.pool()[i])[0]);
    }
}

TEST(PhotoWorld, PoolDatasetMatchesPool)
{
    PhotoWorld w(smallWorld());
    auto ds = w.poolDataset();
    ASSERT_EQ(ds.size(), w.numImages());
    EXPECT_EQ(ds.featureDim(), w.latentDim());
    for (size_t i = 0; i < ds.size(); ++i) {
        EXPECT_EQ(ds.y[i], w.pool()[i].label);
        EXPECT_EQ(ds.x.at(i, 0), w.latentOf(w.pool()[i])[0]);
    }
}

TEST(PhotoWorld, PoolDatasetSubsample)
{
    PhotoWorld w(smallWorld());
    auto ds = w.poolDataset(100);
    EXPECT_EQ(ds.size(), 100u);
}

TEST(PhotoWorld, RecentDatasetTakesTail)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(2);
    auto ds = w.recentDataset(10);
    ASSERT_EQ(ds.size(), 10u);
    size_t n = w.numImages();
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(ds.y[i], w.pool()[n - 10 + i].label);
}

TEST(PhotoWorld, FirstIndexOfDayBinarySearch)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(3);
    size_t idx = w.firstIndexOfDay(1);
    ASSERT_LT(idx, w.numImages());
    EXPECT_GE(w.pool()[idx].dayAdded, 1);
    if (idx > 0) {
        EXPECT_LT(w.pool()[idx - 1].dayAdded, 1);
    }
    EXPECT_EQ(w.firstIndexOfDay(0), 0u);
    EXPECT_EQ(w.firstIndexOfDay(100), w.numImages());
}

TEST(PhotoWorld, RecencyBiasedPrefersFreshPhotos)
{
    // New categories only exist among recent uploads, so their share
    // in a recency-biased sample must far exceed their share in a
    // uniform one.
    auto cfg = smallWorld();
    cfg.initialImages = 4000;
    cfg.dailyGrowth = 0.04;
    cfg.newClassShare = 0.3; // make the signal strong
    PhotoWorld w(cfg);
    w.advanceDays(10);
    ASSERT_GT(w.numClasses(), cfg.initialClasses);

    auto count_new = [&](const nn::Dataset &ds) {
        size_t n = 0;
        for (int y : ds.y) {
            if (y >= static_cast<int>(cfg.initialClasses))
                ++n;
        }
        return static_cast<double>(n) / ds.size();
    };
    auto uniform = w.recencyBiasedDataset(6000, 0.0, 3);
    auto biased = w.recencyBiasedDataset(6000, 0.9, 3);
    EXPECT_GT(count_new(biased), 2.0 * count_new(uniform) + 0.01);
}

TEST(PhotoWorld, TestSetLabelsWithinActiveClasses)
{
    PhotoWorld w(smallWorld());
    w.advanceDays(8);
    auto ds = w.sampleTestSet(500);
    ASSERT_EQ(ds.size(), 500u);
    for (int y : ds.y) {
        EXPECT_GE(y, 0);
        EXPECT_LT(y, static_cast<int>(w.numClasses()));
    }
}

TEST(PhotoWorld, DriftMovesPrototypes)
{
    auto cfg = smallWorld();
    cfg.driftPerDay = 0.5;
    PhotoWorld w(cfg);
    auto before = w.sampleTestSet(2000);
    w.advanceDays(14);
    auto after = w.sampleTestSet(2000);
    // Class-0 mean should have moved measurably.
    auto mean_of = [&](const nn::Dataset &ds, int cls) {
        double m = 0.0;
        int count = 0;
        for (size_t i = 0; i < ds.size(); ++i) {
            if (ds.y[i] == cls) {
                m += ds.x.at(i, 0);
                ++count;
            }
        }
        return count ? m / count : 0.0;
    };
    double shift = std::fabs(mean_of(after, 0) - mean_of(before, 0));
    // Expected displacement per dim ~ drift*sep*sqrt(14)/sqrt(dim).
    EXPECT_GT(shift, 0.2);
}

TEST(Profiles, AllThreeExistAndDiffer)
{
    auto all = allProfiles();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "CIFAR100");
    EXPECT_EQ(all[1].name, "ImageNet1K");
    EXPECT_EQ(all[2].name, "ImageNet21K");
    // Difficulty ordering: CIFAR easiest, IN21K hardest.
    EXPECT_LT(all[0].world.noise, all[1].world.noise);
    EXPECT_LT(all[1].world.noise, all[2].world.noise);
    EXPECT_GT(all[2].world.maxClasses, all[1].world.maxClasses);
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(profileByName("CIFAR100").name, "CIFAR100");
    EXPECT_THROW(profileByName("MNIST"), std::out_of_range);
}

TEST(Profiles, BackboneIsCompressive)
{
    for (const auto &p : allProfiles())
        EXPECT_LT(p.featureDim, p.world.latentDim);
}

TEST(VisionModel, FeatureShapesAndBounds)
{
    Rng rng(1);
    VisionModel m(8, 4, 10, rng);
    Rng drng(2);
    nn::Tensor x = nn::Tensor::randn(5, 8, drng, 1.0f);
    nn::Tensor f = m.features(x);
    EXPECT_EQ(f.rows(), 5u);
    EXPECT_EQ(f.cols(), 4u);
    for (float v : f.data()) {
        EXPECT_LE(v, 1.0f); // tanh range
        EXPECT_GE(v, -1.0f);
    }
    nn::Tensor logits = m.forward(x);
    EXPECT_EQ(logits.cols(), 10u);
}

TEST(VisionModel, ExtractFeaturesKeepsLabels)
{
    Rng rng(3);
    VisionModel m(8, 4, 10, rng);
    nn::Dataset ds;
    Rng drng(4);
    ds.x = nn::Tensor::randn(6, 8, drng, 1.0f);
    ds.y = {0, 1, 2, 3, 4, 5};
    auto feats = m.extractFeatures(ds);
    EXPECT_EQ(feats.size(), 6u);
    EXPECT_EQ(feats.featureDim(), 4u);
    EXPECT_EQ(feats.y, ds.y);
}

TEST(VisionModel, FineTuneOnlyTouchesHead)
{
    auto cfg = smallWorld();
    PhotoWorld w(cfg);
    Rng rng(5);
    VisionModel m(cfg.latentDim, 4, cfg.maxClasses, rng);
    auto backbone_before = m.backbone().weight().value;

    auto train = w.poolDataset();
    auto test = w.sampleTestSet(200);
    nn::TrainConfig tc;
    tc.maxEpochs = 3;
    m.fineTune(train, test, tc);

    for (size_t i = 0; i < backbone_before.size(); ++i) {
        EXPECT_EQ(m.backbone().weight().value.data()[i],
                  backbone_before.data()[i]);
    }
    EXPECT_FALSE(m.backboneFrozen()) << "freeze state restored";
}

TEST(VisionModel, FullTrainUpdatesBackbone)
{
    auto cfg = smallWorld();
    PhotoWorld w(cfg);
    Rng rng(6);
    VisionModel m(cfg.latentDim, 4, cfg.maxClasses, rng);
    auto backbone_before = m.backbone().weight().value;
    auto train = w.poolDataset();
    auto test = w.sampleTestSet(200);
    nn::TrainConfig tc;
    tc.maxEpochs = 3;
    m.fullTrain(train, test, tc);
    double diff = 0.0;
    for (size_t i = 0; i < backbone_before.size(); ++i) {
        diff += std::fabs(m.backbone().weight().value.data()[i] -
                          backbone_before.data()[i]);
    }
    EXPECT_GT(diff, 0.0);
}

TEST(VisionModel, TrainingBeatsChance)
{
    auto cfg = smallWorld();
    cfg.noise = 1.0;
    PhotoWorld w(cfg);
    Rng rng(7);
    VisionModel m(cfg.latentDim, 6, cfg.maxClasses, rng);
    auto train = w.poolDataset();
    auto test = w.sampleTestSet(400);
    nn::TrainConfig tc;
    tc.maxEpochs = 15;
    auto result = m.fullTrain(train, test, tc);
    EXPECT_GT(result.finalTop1(), 3.0 / cfg.initialClasses);
}

TEST(VisionModel, CopyIsIndependent)
{
    Rng rng(8);
    VisionModel a(8, 4, 10, rng);
    VisionModel b = a;
    b.head().weight().value.fill(0.0f);
    double sum = 0.0;
    for (float v : a.head().weight().value.data())
        sum += std::fabs(v);
    EXPECT_GT(sum, 0.0); // a untouched
}
