/**
 * @file
 * Tests for model checkpointing: exact restore, version/checksum
 * integrity, corruption rejection, and the checkpoint+delta chain a
 * PipeStore walks on every model update.
 */

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/delta.h"
#include "data/backbone.h"

using namespace ndp;
using namespace ndp::core;

namespace {

data::VisionModel
makeModel(uint64_t seed)
{
    Rng rng(seed);
    return data::VisionModel(8, 4, 10, rng);
}

} // namespace

TEST(Checkpoint, SaveRestoreRoundTrip)
{
    auto model = makeModel(1);
    auto before = flattenParams(model);
    Checkpoint ckpt = saveCheckpoint(model, 3);
    EXPECT_EQ(ckpt.version, 3);

    auto restored = makeModel(2); // different weights
    ASSERT_TRUE(restoreCheckpoint(ckpt, restored));
    EXPECT_EQ(flattenParams(restored), before);
}

TEST(Checkpoint, VersionStoredInHeader)
{
    auto model = makeModel(3);
    Checkpoint ckpt = saveCheckpoint(model, 42);
    auto v = checkpointVersion(ckpt.payload);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
}

TEST(Checkpoint, PayloadIsCompressed)
{
    auto model = makeModel(4);
    size_t raw = flattenParams(model).size() * sizeof(float);
    Checkpoint ckpt = saveCheckpoint(model, 1);
    // Float weights compress at least a little; never balloon.
    EXPECT_LT(ckpt.bytes(), raw + 600);
}

TEST(Checkpoint, RejectsBadMagic)
{
    auto model = makeModel(5);
    Checkpoint ckpt = saveCheckpoint(model, 1);
    ckpt.payload[0] = 'X';
    EXPECT_FALSE(checkpointVersion(ckpt.payload).has_value());
    EXPECT_FALSE(restoreParams(ckpt).has_value());
}

TEST(Checkpoint, RejectsFlippedChecksum)
{
    auto model = makeModel(6);
    Checkpoint ckpt = saveCheckpoint(model, 1);
    ckpt.payload[12] ^= 0xff; // checksum field
    EXPECT_FALSE(restoreParams(ckpt).has_value());
}

TEST(Checkpoint, RejectsTruncation)
{
    auto model = makeModel(7);
    Checkpoint ckpt = saveCheckpoint(model, 1);
    ckpt.payload.resize(ckpt.payload.size() / 2);
    EXPECT_FALSE(restoreParams(ckpt).has_value());
}

TEST(Checkpoint, RejectsModelShapeMismatch)
{
    auto model = makeModel(8);
    Checkpoint ckpt = saveCheckpoint(model, 1);
    Rng rng(9);
    data::VisionModel bigger(8, 6, 10, rng);
    EXPECT_FALSE(restoreCheckpoint(ckpt, bigger));
}

TEST(Checkpoint, Fnv1aKnownVector)
{
    // FNV-1a("a") = 0xe40c292c.
    const uint8_t a = 'a';
    EXPECT_EQ(fnv1a(&a, 1), 0xe40c292cu);
    EXPECT_EQ(fnv1a(nullptr, 0), 2166136261u);
}

TEST(Checkpoint, DeltaChainReproducesNextVersion)
{
    // Tuner: checkpoint v1, fine-tune, emit delta. Store: restore v1,
    // apply delta -> bitwise v2.
    auto tuner = makeModel(10);
    Checkpoint v1 = saveCheckpoint(tuner, 1);
    auto params_v1 = flattenParams(tuner);

    for (auto &w : tuner.head().weight().value.data())
        w += 0.125f;
    auto params_v2 = flattenParams(tuner);
    ModelDelta delta = encodeDelta(params_v1, params_v2);

    auto store = makeModel(11);
    ASSERT_TRUE(restoreCheckpoint(v1, store));
    auto store_params = flattenParams(store);
    ASSERT_TRUE(applyDelta(delta, store_params));
    ASSERT_TRUE(loadParams(store, store_params));
    EXPECT_EQ(flattenParams(store), params_v2);
}

TEST(Checkpoint, ManyVersionsStayIndependent)
{
    auto model = makeModel(12);
    std::vector<Checkpoint> history;
    std::vector<std::vector<float>> snapshots;
    for (int v = 1; v <= 5; ++v) {
        model.head().bias().value.at(0, 0) += 1.0f;
        history.push_back(saveCheckpoint(model, v));
        snapshots.push_back(flattenParams(model));
    }
    for (int v = 0; v < 5; ++v) {
        auto target = makeModel(13);
        ASSERT_TRUE(restoreCheckpoint(history[v], target));
        EXPECT_EQ(flattenParams(target), snapshots[v]) << "v" << v;
    }
}
