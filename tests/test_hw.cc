/**
 * @file
 * Tests for the hardware catalog, power model, and simulated devices.
 */

#include <gtest/gtest.h>

#include "hw/devices.h"
#include "hw/power.h"
#include "hw/specs.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"

using namespace ndp;
using namespace ndp::hw;

TEST(Specs, CatalogMatchesPaperInstances)
{
    auto store = g4dn4xlarge(true);
    EXPECT_EQ(store.cpu.vcpus, 16);
    ASSERT_TRUE(store.hasGpu());
    EXPECT_EQ(store.gpu->name, "Tesla T4");
    EXPECT_DOUBLE_EQ(store.nic.gbps, 10.0);

    auto no_gpu = g4dn4xlarge(false);
    EXPECT_FALSE(no_gpu.hasGpu());

    auto tuner = p32xlarge();
    EXPECT_EQ(tuner.nGpus, 1);
    EXPECT_EQ(tuner.gpu->name, "Tesla V100");

    auto host = p38xlarge(2);
    EXPECT_EQ(host.nGpus, 2);
    EXPECT_EQ(host.cpu.vcpus, 32);

    auto inf1 = inf12xlarge();
    EXPECT_EQ(inf1.gpu->name, "NeuronCoreV1");
}

TEST(Specs, V100FasterThanT4FasterThanNeuron)
{
    EXPECT_GT(teslaV100().peakTflops, teslaT4().peakTflops);
    EXPECT_GT(teslaT4().peakTflops, neuronCoreV1().peakTflops);
}

TEST(Specs, NeuronIsMostPowerEfficient)
{
    double t4 = teslaT4().peakTflops / teslaT4().activeW;
    double nc = neuronCoreV1().peakTflops / neuronCoreV1().activeW;
    EXPECT_GT(nc, t4);
}

TEST(Specs, PricesArePositiveAndOrdered)
{
    EXPECT_GT(p38xlarge().hourlyUsd, p32xlarge().hourlyUsd);
    EXPECT_GT(p32xlarge().hourlyUsd, g4dn4xlarge(true).hourlyUsd);
    EXPECT_GT(g4dn4xlarge(true).hourlyUsd, inf12xlarge().hourlyUsd);
}

TEST(Power, IdleVsActiveBounds)
{
    auto spec = g4dn4xlarge(true);
    auto idle = serverPower(spec, 0.0, 0.0);
    auto busy = serverPower(spec, 1.0, 1.0);
    EXPECT_GT(busy.gpuW, idle.gpuW);
    EXPECT_GT(busy.cpuW, idle.cpuW);
    EXPECT_DOUBLE_EQ(busy.otherW, idle.otherW);
    EXPECT_NEAR(busy.gpuW, spec.gpu->activeW, 1e-9);
    EXPECT_NEAR(idle.gpuW, spec.gpu->idleW, 1e-9);
}

TEST(Power, UtilizationClamped)
{
    auto spec = g4dn4xlarge(true);
    auto over = serverPower(spec, 1.5, 2.0);
    auto full = serverPower(spec, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(over.totalW(), full.totalW());
    auto under = serverPower(spec, -0.5, -1.0);
    auto idle = serverPower(spec, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(under.totalW(), idle.totalW());
}

TEST(Power, NoGpuMeansNoGpuPower)
{
    auto spec = g4dn4xlarge(false);
    auto p = serverPower(spec, 1.0, 0.5);
    EXPECT_DOUBLE_EQ(p.gpuW, 0.0);
}

TEST(Power, MultiGpuScales)
{
    auto host = p38xlarge(2);
    auto single = p38xlarge(1);
    auto p2 = serverPower(host, 1.0, 0.0);
    auto p1 = serverPower(single, 1.0, 0.0);
    EXPECT_NEAR(p2.gpuW, 2.0 * p1.gpuW, 1e-9);
}

TEST(Power, ClusterWattsSums)
{
    auto spec = g4dn4xlarge(true);
    std::vector<ServerPowerSample> samples = {
        {"a", serverPower(spec, 0.5, 0.5)},
        {"b", serverPower(spec, 0.5, 0.5)},
    };
    EXPECT_NEAR(clusterWatts(samples),
                2.0 * serverPower(spec, 0.5, 0.5).totalW(), 1e-9);
}

TEST(Power, BreakdownAccumulates)
{
    PowerBreakdown a{10.0, 20.0, 30.0};
    PowerBreakdown b{1.0, 2.0, 3.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.gpuW, 11.0);
    EXPECT_DOUBLE_EQ(a.totalW(), 66.0);
    EXPECT_DOUBLE_EQ(energyJ(a, 10.0), 660.0);
}

namespace {

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
sim::Task
doRead(Disk &disk, double bytes, sim::WaitGroup &wg)
{
    co_await disk.read(bytes);
    wg.done();
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
sim::Task
doCompute(GpuExec &gpu, double seconds, sim::WaitGroup &wg)
{
    co_await gpu.compute(seconds);
    wg.done();
}

} // namespace

// Point-to-point transfer behavior (serialization, latency, sharing)
// now lives on net::NetFabric — see test_net.cc. NicSpec's uncontended
// wire-time formula stays a hardware-spec fact and is checked here.
TEST(Nic, WireSecondsFormula)
{
    NicSpec nic{40.0, 0.0};
    EXPECT_NEAR(nic.wireSeconds(5e9), 1.0, 1e-9); // 40 Gbit in 1 s
}

TEST(Disk, ReadRateAndSeek)
{
    sim::Simulator s;
    DiskSpec spec{"d", 100.0, 100.0, 0.01, 5.0};
    Disk disk(s, spec);
    sim::WaitGroup wg(s);
    wg.add(1);
    s.spawn(doRead(disk, 100e6, wg)); // 100 MB at 100 MB/s + seek
    s.run();
    EXPECT_NEAR(s.now(), 1.01, 1e-9);
    EXPECT_DOUBLE_EQ(disk.bytesRead(), 100e6);
}

TEST(Disk, RequestsQueueFifo)
{
    sim::Simulator s;
    DiskSpec spec{"d", 100.0, 100.0, 0.0, 5.0};
    Disk disk(s, spec);
    sim::WaitGroup wg(s);
    wg.add(2);
    s.spawn(doRead(disk, 50e6, wg));
    s.spawn(doRead(disk, 50e6, wg));
    s.run();
    EXPECT_NEAR(s.now(), 1.0, 1e-9);
}

TEST(GpuExec, SingleStreamSerializes)
{
    sim::Simulator s;
    GpuExec gpu(s, teslaT4(), 1);
    sim::WaitGroup wg(s);
    wg.add(3);
    for (int i = 0; i < 3; ++i)
        s.spawn(doCompute(gpu, 1.0, wg));
    s.run();
    EXPECT_NEAR(s.now(), 3.0, 1e-9);
    EXPECT_NEAR(gpu.utilization(), 1.0, 1e-9);
}

TEST(GpuExec, TwoGpusOverlap)
{
    sim::Simulator s;
    GpuExec gpu(s, teslaV100(), 2);
    sim::WaitGroup wg(s);
    wg.add(4);
    for (int i = 0; i < 4; ++i)
        s.spawn(doCompute(gpu, 1.0, wg));
    s.run();
    EXPECT_NEAR(s.now(), 2.0, 1e-9);
    EXPECT_NEAR(gpu.busySeconds(), 4.0, 1e-9);
}

TEST(CpuPool, PartialOccupancy)
{
    sim::Simulator s;
    CpuPool cpu(s, 8);
    sim::WaitGroup wg(s);
    wg.add(2);
    // Two jobs each take 4 cores for 1 s: they fit concurrently.
    // ndplint: allow(coroutine-ref-param, coroutine-escape: cpu/wg outlive s.run())
    s.spawn([](CpuPool &c, sim::WaitGroup &w) -> sim::Task {
        co_await c.run(4, 1.0);
        w.done();
    }(cpu, wg));
    // ndplint: allow(coroutine-ref-param, coroutine-escape: cpu/wg outlive s.run())
    s.spawn([](CpuPool &c, sim::WaitGroup &w) -> sim::Task {
        co_await c.run(4, 1.0);
        w.done();
    }(cpu, wg));
    s.run();
    EXPECT_NEAR(s.now(), 1.0, 1e-9);
    EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
}

TEST(CpuPool, OversubscriptionQueues)
{
    sim::Simulator s;
    CpuPool cpu(s, 4);
    sim::WaitGroup wg(s);
    wg.add(2);
    // ndplint: allow(coroutine-ref-param, coroutine-escape: cpu/wg outlive s.run())
    s.spawn([](CpuPool &c, sim::WaitGroup &w) -> sim::Task {
        co_await c.run(4, 1.0);
        w.done();
    }(cpu, wg));
    // ndplint: allow(coroutine-ref-param, coroutine-escape: cpu/wg outlive s.run())
    s.spawn([](CpuPool &c, sim::WaitGroup &w) -> sim::Task {
        co_await c.run(4, 1.0);
        w.done();
    }(cpu, wg));
    s.run();
    EXPECT_NEAR(s.now(), 2.0, 1e-9);
}
