/**
 * @file
 * Tests for the object store, label database, and photo generator.
 */

#include <gtest/gtest.h>

#include "storage/label_db.h"
#include "storage/object_store.h"
#include "storage/photo_gen.h"

using namespace ndp::storage;

TEST(ObjectStore, PutGetRoundTrip)
{
    ObjectStore store;
    store.put("raw/1", Bytes{1, 2, 3});
    const Bytes *got = store.get("raw/1");
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, (Bytes{1, 2, 3}));
    EXPECT_EQ(store.count(), 1u);
    EXPECT_EQ(store.totalBytes(), 3u);
}

TEST(ObjectStore, GetMissingReturnsNull)
{
    ObjectStore store;
    EXPECT_EQ(store.get("nope"), nullptr);
    EXPECT_FALSE(store.contains("nope"));
}

TEST(ObjectStore, OverwriteAdjustsByteCount)
{
    ObjectStore store;
    store.put("k", Bytes(10, 0));
    auto prev = store.put("k", Bytes(4, 1));
    ASSERT_TRUE(prev.has_value());
    EXPECT_EQ(*prev, 10u);
    EXPECT_EQ(store.totalBytes(), 4u);
    EXPECT_EQ(store.count(), 1u);
}

TEST(ObjectStore, EraseFreesBytes)
{
    ObjectStore store;
    store.put("a", Bytes(5, 0));
    store.put("b", Bytes(7, 0));
    EXPECT_TRUE(store.erase("a"));
    EXPECT_FALSE(store.erase("a"));
    EXPECT_EQ(store.totalBytes(), 7u);
    EXPECT_EQ(store.count(), 1u);
}

TEST(ObjectStore, PrefixAccounting)
{
    ObjectStore store;
    store.put("raw/1", Bytes(100, 0));
    store.put("raw/2", Bytes(50, 0));
    store.put("pre/1", Bytes(20, 0));
    store.put("rawhide", Bytes(9, 0));
    EXPECT_EQ(store.bytesUnderPrefix("raw/"), 150u);
    EXPECT_EQ(store.bytesUnderPrefix("pre/"), 20u);
    auto keys = store.listPrefix("raw/");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "raw/1");
    EXPECT_EQ(keys[1], "raw/2");
}

TEST(ObjectStore, EmptyPrefixListsEverything)
{
    ObjectStore store;
    store.put("a", Bytes(1, 0));
    store.put("b", Bytes(1, 0));
    EXPECT_EQ(store.listPrefix("").size(), 2u);
}

TEST(LabelDb, UpsertAndLookup)
{
    LabelDatabase db;
    db.upsert(42, 7, 1);
    auto e = db.lookup(42);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->label, 7);
    EXPECT_EQ(e->modelVersion, 1);
    EXPECT_FALSE(db.lookup(43).has_value());
    EXPECT_EQ(db.size(), 1u);
}

TEST(LabelDb, SearchUsesInvertedIndex)
{
    LabelDatabase db;
    db.upsert(1, 5, 1);
    db.upsert(2, 5, 1);
    db.upsert(3, 6, 1);
    auto hits = db.search(5);
    EXPECT_EQ(hits, (std::vector<uint64_t>{1, 2}));
    EXPECT_TRUE(db.search(99).empty());
    EXPECT_EQ(db.distinctLabels(), 2u);
}

TEST(LabelDb, RelabelMovesIndexEntry)
{
    LabelDatabase db;
    db.upsert(1, 5, 1);
    db.upsert(1, 6, 2);
    EXPECT_TRUE(db.search(5).empty());
    EXPECT_EQ(db.search(6), (std::vector<uint64_t>{1}));
    EXPECT_EQ(db.lookup(1)->modelVersion, 2);
    EXPECT_EQ(db.size(), 1u);
}

TEST(LabelDb, EraseCleansIndex)
{
    LabelDatabase db;
    db.upsert(1, 5, 1);
    db.upsert(2, 5, 1);
    EXPECT_TRUE(db.erase(1));
    EXPECT_EQ(db.search(5), (std::vector<uint64_t>{2}));
    EXPECT_TRUE(db.erase(2));
    EXPECT_EQ(db.distinctLabels(), 0u);
    EXPECT_FALSE(db.erase(2));
}

TEST(LabelDb, OutdatedAccounting)
{
    LabelDatabase db;
    db.upsert(1, 5, 1);
    db.upsert(2, 5, 2);
    db.upsert(3, 5, 3);
    EXPECT_EQ(db.countOutdated(3), 2u);
    EXPECT_EQ(db.outdatedPhotos(3), (std::vector<uint64_t>{1, 2}));
    EXPECT_EQ(db.countOutdated(1), 0u);
}

TEST(LabelDb, FractionChangedComparesSnapshots)
{
    LabelDatabase old_db, new_db;
    for (uint64_t id = 0; id < 10; ++id)
        old_db.upsert(id, 1, 1);
    for (uint64_t id = 0; id < 10; ++id)
        new_db.upsert(id, id < 3 ? 2 : 1, 2);
    // Ids only in one snapshot are ignored.
    new_db.upsert(100, 9, 2);
    EXPECT_NEAR(old_db.fractionChanged(new_db), 0.3, 1e-12);
}

TEST(LabelDb, FractionChangedEmptyIsZero)
{
    LabelDatabase a, b;
    EXPECT_DOUBLE_EQ(a.fractionChanged(b), 0.0);
}

TEST(PhotoGen, DeterministicPerPhoto)
{
    PhotoGenerator gen;
    EXPECT_EQ(gen.rawPhoto(5), gen.rawPhoto(5));
    EXPECT_EQ(gen.preprocessedBinary(5), gen.preprocessedBinary(5));
    EXPECT_NE(gen.rawPhoto(5), gen.rawPhoto(6));
}

TEST(PhotoGen, RawSizesLognormalAroundMean)
{
    PhotoGenerator gen;
    double sum = 0.0;
    const int n = 500;
    for (uint64_t id = 0; id < n; ++id) {
        size_t sz = gen.rawSizeOf(id);
        EXPECT_GT(sz, 300000u);  // no absurdly small photos
        EXPECT_LT(sz, 20000000u);
        sum += static_cast<double>(sz);
    }
    EXPECT_NEAR(sum / n / 1e6, 2.7, 0.3); // paper's 2.7 MB average
}

TEST(PhotoGen, RawSizeMatchesBlob)
{
    PhotoGenerator gen;
    EXPECT_EQ(gen.rawPhoto(9).size(), gen.rawSizeOf(9));
}

TEST(PhotoGen, PreprocessedSizeIsConfigured)
{
    PhotoGenConfig cfg;
    cfg.preprocessedBytes = 1234;
    PhotoGenerator gen(cfg);
    EXPECT_EQ(gen.preprocessedBinary(1).size(), 1234u);
}

TEST(PhotoGen, DifferentSeedsDifferentPhotos)
{
    PhotoGenConfig a, b;
    a.seed = 1;
    b.seed = 2;
    PhotoGenerator ga(a), gb(b);
    EXPECT_NE(ga.rawPhoto(1), gb.rawPhoto(1));
}
