/**
 * @file
 * Fault-matrix scenario harness: every {fault kind} x {lifecycle
 * phase} x {faulted-store count} cell must end in one of exactly two
 * outcomes — the run converges (work conserved, accuracy within
 * tolerance of fault-free) or it fails *typed* (FaultReport::terminal
 * names the class, lost work is counted). A hang or a silent sentinel
 * is never acceptable. Phases are expressed as fractions of the
 * fault-free run's wall time, so the grid stays valid as the
 * calibrated physics evolve.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "core/inference.h"
#include "core/online.h"
#include "core/service.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

namespace {

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

ExperimentConfig
matrixCfg(int n_stores = 4)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = n_stores;
    cfg.nImages = 20000;
    return cfg;
}

enum class Kind
{
    Crash,
    Stall,
    IoError,
};

/** Schedule @p kind on stores [0, n_faulty) around phase @p at_s. */
sim::FaultPlan
planFor(Kind kind, int n_faulty, double at_s, double stall_s)
{
    sim::FaultPlan plan;
    for (int s = 0; s < n_faulty; ++s) {
        switch (kind) {
          case Kind::Crash:
            plan.crashStore(s, at_s);
            break;
          case Kind::Stall:
            plan.stallStore(s, at_s, stall_s);
            break;
          case Kind::IoError:
            plan.readErrors(0.05, s);
            break;
        }
    }
    return plan;
}

/**
 * Detection-ledger invariants every faulted cell must satisfy: at
 * least one incident detected, finite non-negative latencies, and —
 * since both latencies are measured from the incident's opened time —
 * detect <= recover whenever every detected incident closed.
 */
void
expectDetectionLedger(const sim::FaultReport &f)
{
    EXPECT_GE(f.faultsDetected, 1u);
    EXPECT_GE(f.faultsDetected, f.faultsRecovered);
    EXPECT_TRUE(std::isfinite(f.timeToDetectSumS));
    EXPECT_TRUE(std::isfinite(f.timeToDetectMaxS));
    EXPECT_GE(f.timeToDetectSumS, 0.0);
    EXPECT_GE(f.timeToDetectMaxS, 0.0);
    EXPECT_TRUE(std::isfinite(f.timeToRecoverSumS));
    EXPECT_GE(f.timeToRecoverMaxS, 0.0);
    if (f.faultsRecovered == f.faultsDetected) {
        EXPECT_LE(f.timeToDetectSumS, f.timeToRecoverSumS);
        EXPECT_LE(f.timeToDetectMaxS, f.timeToRecoverMaxS);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Offline NDP inference: {crash, stall, io-error} x {early, mid, late}
// x {1, N-1 of 4 stores}. Survivors exist in every cell, so every cell
// must conserve work: all images classified, crash remainders
// re-dispatched, and the report must say the run recovered.
// ---------------------------------------------------------------------

TEST(FaultMatrix, NdpInferenceGridConvergesWithSurvivors)
{
    ExperimentConfig base_cfg = matrixCfg();
    InferenceReport base = runNdpOfflineInference(base_cfg);
    ASSERT_EQ(base.stages.itemsDone, base_cfg.nImages);
    ASSERT_GT(base.seconds, 0.0);

    // Phases anchor inside the front-stage (read) window: crash and
    // stall are consulted at the producer's batch boundaries, so a
    // trigger after the last read is a structural no-op (covered by
    // CrashAfterReadPhaseIsNoOp below).
    const Kind kinds[] = {Kind::Crash, Kind::Stall, Kind::IoError};
    const double phases[] = {0.2, 0.4, 0.6};
    const int faulty_counts[] = {1, base_cfg.nStores - 1};

    for (Kind kind : kinds) {
        for (double phase : phases) {
            for (int n_faulty : faulty_counts) {
                ExperimentConfig cfg = base_cfg;
                cfg.faults = planFor(kind, n_faulty,
                                     phase * base.seconds,
                                     0.5 * base.seconds);
                InferenceReport r = runNdpOfflineInference(cfg);
                SCOPED_TRACE(testing::Message()
                             << "kind=" << static_cast<int>(kind)
                             << " phase=" << phase
                             << " faulty=" << n_faulty);

                // Converged: every image classified, recovery clean.
                EXPECT_EQ(r.stages.itemsDone, cfg.nImages);
                EXPECT_TRUE(r.faults.recovered());
                EXPECT_EQ(r.faults.itemsLost, 0u);
                EXPECT_TRUE(r.faults.anyInjected());
                // Every cell measures detection latency alongside
                // recovery, and detect precedes recover.
                expectDetectionLedger(r.faults);

                switch (kind) {
                  case Kind::Crash:
                    EXPECT_EQ(r.faults.crashes,
                              static_cast<uint64_t>(n_faulty));
                    // One detected + recovered incident per crash.
                    EXPECT_EQ(r.faults.faultsDetected,
                              r.faults.crashes);
                    EXPECT_EQ(r.faults.faultsRecovered,
                              r.faults.crashes);
                    EXPECT_GT(r.faults.itemsRedispatched, 0u);
                    // Probing dead stores took wall time.
                    EXPECT_GT(r.faults.degradedS, 0.0);
                    EXPECT_GT(r.seconds, base.seconds);
                    break;
                  case Kind::Stall:
                    EXPECT_GE(r.faults.stalls,
                              static_cast<uint64_t>(n_faulty));
                    // A stall's lifecycle closes at the window's end:
                    // every detected window also recovered.
                    EXPECT_EQ(r.faults.faultsDetected,
                              r.faults.faultsRecovered);
                    EXPECT_GT(r.seconds, base.seconds);
                    break;
                  case Kind::IoError:
                    EXPECT_GT(r.faults.ioErrors, 0u);
                    // Every drawn error was retried successfully.
                    EXPECT_EQ(r.faults.ioRetries, r.faults.ioErrors);
                    EXPECT_EQ(r.faults.faultsDetected,
                              r.faults.faultsRecovered);
                    EXPECT_GE(r.seconds, base.seconds);
                    break;
                }
            }
        }
    }
}

TEST(FaultMatrix, CrashAfterReadPhaseIsNoOp)
{
    // A crash scheduled after the store finished reading its shard
    // never fires: every image was already in flight or done, and the
    // armed-but-idle hooks must not perturb the timing either.
    ExperimentConfig cfg = matrixCfg();
    InferenceReport base = runNdpOfflineInference(cfg);
    cfg.faults.crashStore(0, 0.99 * base.seconds);
    InferenceReport r = runNdpOfflineInference(cfg);
    EXPECT_EQ(r.faults.crashes, 0u);
    EXPECT_EQ(r.stages.itemsDone, cfg.nImages);
    EXPECT_TRUE(r.faults.recovered());
    EXPECT_BITEQ(r.seconds, base.seconds);
}

TEST(FaultMatrix, AllStoresCrashedIsTypedLossNotHang)
{
    ExperimentConfig cfg = matrixCfg();
    InferenceReport base = runNdpOfflineInference(matrixCfg());
    for (int s = 0; s < cfg.nStores; ++s)
        cfg.faults.crashStore(s, 0.5 * base.seconds);
    InferenceReport r = runNdpOfflineInference(cfg);
    // No survivor to re-dispatch to: the remainder is a typed loss,
    // and what drained before the crash plus the loss covers the set.
    EXPECT_EQ(r.faults.terminal, sim::FaultClass::StoreCrash);
    EXPECT_GT(r.faults.itemsLost, 0u);
    EXPECT_EQ(r.faults.itemsRedispatched, 0u);
    EXPECT_EQ(r.stages.itemsDone + r.faults.itemsLost, cfg.nImages);
    // Every crash was detected, but with no survivor none recovered:
    // the ledger must not claim a recovery it didn't deliver.
    EXPECT_EQ(r.faults.faultsDetected, r.faults.crashes);
    EXPECT_EQ(r.faults.faultsRecovered, 0u);
}

TEST(FaultMatrix, SerialTypicalCrashIsTypedLoss)
{
    ExperimentConfig cfg = matrixCfg(1);
    cfg.npe.pipelined = false;
    InferenceReport base = runNdpOfflineInference(cfg);
    cfg.faults.crashStore(0, 0.5 * base.seconds);
    InferenceReport r = runNdpOfflineInference(cfg);
    EXPECT_EQ(r.faults.terminal, sim::FaultClass::StoreCrash);
    EXPECT_EQ(r.stages.itemsDone + r.faults.itemsLost, cfg.nImages);
}

// ---------------------------------------------------------------------
// FT-DMP training phases: bootstrap (crash before any work), feature
// extraction (mid-run), tuner (late), delta distribution (message
// loss). FT-DMP shares no weights, so a dead store's shard re-assigns
// and the tuner still sees every feature.
// ---------------------------------------------------------------------

TEST(FaultMatrix, FtDmpCrashPhasesConserveFeatures)
{
    ExperimentConfig base_cfg = matrixCfg();
    base_cfg.nImages = 40000;
    TrainOptions opt;
    opt.nRun = 3;
    TrainReport base = runFtDmpTraining(base_cfg, opt);
    ASSERT_EQ(base.stages.itemsDone, base_cfg.nImages);

    // Fractions of total wall time that land in the bootstrap, early-
    // extraction, and late-extraction windows (the tuner tail starts
    // after the last feature ships, so stay below ~0.7).
    const double phases[] = {0.0, 0.3, 0.6};
    for (double phase : phases) {
        ExperimentConfig cfg = base_cfg;
        cfg.faults.crashStore(0, phase * base.seconds);
        TrainReport r = runFtDmpTraining(cfg, opt);
        SCOPED_TRACE(testing::Message() << "phase=" << phase);
        EXPECT_EQ(r.faults.crashes, 1u);
        EXPECT_TRUE(r.faults.recovered());
        // Survivors absorbed the dead store's shard: the tuner saw
        // every feature, whichever phase the crash hit.
        EXPECT_EQ(r.stages.itemsDone, cfg.nImages);
        EXPECT_GT(r.faults.itemsRedispatched, 0u);
        expectDetectionLedger(r.faults);
        EXPECT_EQ(r.faults.faultsRecovered, 1u);
    }
}

TEST(FaultMatrix, FtDmpUnpipelinedGatesSurviveCrash)
{
    // Unpipelined FT-DMP gates run r on the tuner finishing r-1; a
    // run-0 crash must not starve the gates into a deadlock.
    ExperimentConfig cfg = matrixCfg();
    cfg.nImages = 40000;
    cfg.faults.crashStore(0, 0.0);
    TrainOptions opt;
    opt.nRun = 3;
    opt.pipelined = false;
    TrainReport r = runFtDmpTraining(cfg, opt);
    EXPECT_EQ(r.stages.itemsDone, cfg.nImages);
    EXPECT_TRUE(r.faults.recovered());
    EXPECT_GT(r.faults.itemsRedispatched, 0u);
}

TEST(FaultMatrix, FcFleetCrashLosesShardButNeverHangs)
{
    // Naive "+FC": every store trains the full model behind a
    // per-iteration all-reduce. A dead store cannot hand its shard to
    // anyone — the loss is typed — and it must leave the barrier or
    // the surviving fleet's all-reduce would wait forever.
    ExperimentConfig cfg = matrixCfg();
    cfg.nImages = 40000;
    TrainOptions fc;
    fc.cut = cfg.model->numBlocks();
    TrainReport base = runFtDmpTraining(cfg, fc);
    cfg.faults.crashStore(1, 0.25 * base.seconds);
    TrainReport r = runFtDmpTraining(cfg, fc);
    EXPECT_EQ(r.faults.crashes, 1u);
    EXPECT_GT(r.faults.itemsLost, 0u);
    EXPECT_EQ(r.faults.terminal, sim::FaultClass::StoreCrash);
}

TEST(FaultMatrix, DeltaDistributionRetransmitsLostPushes)
{
    ExperimentConfig cfg = matrixCfg();
    cfg.nImages = 40000;
    TrainOptions opt;
    TrainReport base = runFtDmpTraining(cfg, opt);
    // Only one loss draw happens per store per push, so a middling p
    // can sail through clean on a given seed — 0.9 guarantees this
    // seed observes losses while staying under the retry budget.
    cfg.faults.loseMessages(0.9);
    TrainReport r = runFtDmpTraining(cfg, opt);
    EXPECT_GT(r.faults.messagesLost, 0u);
    EXPECT_GT(r.faults.messagesResent, 0u);
    // Retransmissions crossed the wire: distribution traffic grew.
    EXPECT_GT(r.distributionBytes, base.distributionBytes);
    // Each lossy push is one incident: detected at the first failed
    // copy, then either recovered when a retransmission lands or
    // typed as an abandoned push when the retry budget runs out — at
    // p = 0.9 both outcomes occur, and every detection is accounted.
    expectDetectionLedger(r.faults);
    EXPECT_EQ(r.faults.faultsDetected,
              r.faults.faultsRecovered + r.faults.deltaPushFailures);
}

TEST(FaultMatrix, DeltaPushExhaustionIsTypedFailure)
{
    ExperimentConfig cfg = matrixCfg();
    cfg.nImages = 40000;
    cfg.faults.loseMessages(1.0);
    cfg.faults.msgRetryLimit = 3;
    TrainOptions opt;
    TrainReport r = runFtDmpTraining(cfg, opt);
    // Every push drops every time: each store's delta is abandoned
    // after the bounded retry budget — typed, and the run still ends.
    EXPECT_EQ(r.faults.deltaPushFailures,
              static_cast<uint64_t>(cfg.nStores));
    EXPECT_EQ(r.faults.terminal, sim::FaultClass::MessageLoss);
    // Detection stays on the ledger even though nothing recovered.
    EXPECT_EQ(r.faults.faultsDetected,
              static_cast<uint64_t>(cfg.nStores));
    EXPECT_EQ(r.faults.faultsRecovered, 0u);
}

// ---------------------------------------------------------------------
// Online inference under upload loss.
// ---------------------------------------------------------------------

TEST(FaultMatrix, OnlineUploadLossRetransmitsOrDropsTyped)
{
    OnlineConfig cfg;
    cfg.nUploads = 5000;
    cfg.faults.loseMessages(0.2);
    OnlineReport r = runOnlineInference(cfg);
    EXPECT_GT(r.faults.messagesLost, 0u);
    EXPECT_GT(r.faults.messagesResent, 0u);
    // 0.2^6 per upload: a dropped upload is possible but must be
    // accounted as a typed loss if it happens.
    if (r.faults.itemsLost > 0)
        EXPECT_EQ(r.faults.terminal, sim::FaultClass::MessageLoss);
    else
        EXPECT_TRUE(r.faults.recovered());
    expectDetectionLedger(r.faults);
}

// ---------------------------------------------------------------------
// Detection latency: the ledger measures when the run *noticed* each
// fault, not just when it finished recovering, and the two orderings
// hold per kind in a mixed-incident run.
// ---------------------------------------------------------------------

TEST(FaultMatrix, DetectionLatencyPrecedesRecoveryAcrossKinds)
{
    ExperimentConfig base_cfg = matrixCfg();
    InferenceReport base = runNdpOfflineInference(base_cfg);

    // One incident of every recoverable kind in one run: a crash on
    // store 0, a stall window on store 1, read errors on store 2.
    ExperimentConfig cfg = base_cfg;
    cfg.faults.crashStore(0, 0.3 * base.seconds)
        .stallStore(1, 0.2 * base.seconds, 0.2 * base.seconds)
        .readErrors(0.3, 2);
    InferenceReport r = runNdpOfflineInference(cfg);

    EXPECT_TRUE(r.faults.recovered());
    expectDetectionLedger(r.faults);
    // Crash + stall + at least one read-error incident, all closed.
    EXPECT_GE(r.faults.faultsDetected, 3u);
    EXPECT_EQ(r.faults.faultsDetected, r.faults.faultsRecovered);
    // The crash is only observed at the next batch boundary and then
    // probed before re-dispatch: detection strictly precedes recovery
    // in the aggregate.
    EXPECT_GT(r.faults.timeToRecoverMaxS, 0.0);
    EXPECT_LT(r.faults.timeToDetectSumS, r.faults.timeToRecoverSumS);
}

TEST(FaultMatrix, DetectionLedgerIsDeterministic)
{
    ExperimentConfig cfg = matrixCfg();
    cfg.faults.crashStore(0, 2.0).readErrors(0.05, 1);
    InferenceReport a = runNdpOfflineInference(cfg);
    InferenceReport b = runNdpOfflineInference(cfg);
    EXPECT_EQ(a.faults.faultsDetected, b.faults.faultsDetected);
    EXPECT_EQ(a.faults.faultsRecovered, b.faults.faultsRecovered);
    EXPECT_BITEQ(a.faults.timeToDetectSumS, b.faults.timeToDetectSumS);
    EXPECT_BITEQ(a.faults.timeToDetectMaxS, b.faults.timeToDetectMaxS);
    EXPECT_BITEQ(a.faults.timeToRecoverSumS,
                 b.faults.timeToRecoverSumS);
    EXPECT_BITEQ(a.faults.timeToRecoverMaxS,
                 b.faults.timeToRecoverMaxS);
}

// ---------------------------------------------------------------------
// Zero-fault parity: an empty FaultPlan must leave every figure
// bitwise identical — the injection hooks are zero-cost no-ops when
// unarmed, whatever the plan's seed or policy knobs say.
// ---------------------------------------------------------------------

TEST(FaultMatrix, EmptyPlanIsBitwiseIdenticalToDefault)
{
    ExperimentConfig plain = matrixCfg();
    ExperimentConfig knobs = matrixCfg();
    knobs.faults.seed = 0xdeadbeef; // different seed, still no faults
    knobs.faults.ioRetryLimit = 99;
    knobs.faults.probeTimeoutS = 123.0;

    InferenceReport a = runNdpOfflineInference(plain);
    InferenceReport b = runNdpOfflineInference(knobs);
    EXPECT_BITEQ(a.seconds, b.seconds);
    EXPECT_BITEQ(a.ips, b.ips);
    EXPECT_BITEQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.stages.itemsDone, b.stages.itemsDone);
    EXPECT_BITEQ(a.stages.lastItemS, b.stages.lastItemS);
    EXPECT_FALSE(b.faults.anyInjected());

    TrainOptions opt;
    TrainReport ta = runFtDmpTraining(plain, opt);
    TrainReport tb = runFtDmpTraining(knobs, opt);
    EXPECT_BITEQ(ta.seconds, tb.seconds);
    EXPECT_BITEQ(ta.dataTrafficBytes, tb.dataTrafficBytes);
    EXPECT_BITEQ(ta.distributionBytes, tb.distributionBytes);
    EXPECT_EQ(ta.stages.itemsDone, tb.stages.itemsDone);
}

// ---------------------------------------------------------------------
// Out-of-memory is a typed fault, not a sentinel (Fig. 19's ViT
// failures): the report carries the class and the sizing details.
// ---------------------------------------------------------------------

TEST(FaultMatrix, OomIsTypedFaultWithSizing)
{
    ExperimentConfig cfg = matrixCfg();
    cfg.model = &models::vitB16();
    cfg.npe.batchSize = 512;
    InferenceReport r = runNdpOfflineInference(cfg);
    EXPECT_TRUE(r.oom); // legacy sentinel still set for old callers
    EXPECT_EQ(r.faults.terminal, sim::FaultClass::OutOfMemory);
    EXPECT_GT(r.oomNeededGiB, cfg.storeSpec.gpu->memGib);
    EXPECT_EQ(r.ips, 0.0);

    InferenceReport srv = runSrvOfflineInference(cfg, SrvVariant::Ideal);
    EXPECT_TRUE(srv.oom);
    EXPECT_EQ(srv.faults.terminal, sim::FaultClass::OutOfMemory);
    EXPECT_GT(srv.oomNeededGiB, 0.0);
}

// ---------------------------------------------------------------------
// Functional layer: crashed stores during PhotoService::fineTune()
// re-assign their shards and the model still converges; delta pushes
// over a lossy channel reconcile versions or fall back to a full
// checkpoint — replicas never silently stay stale.
// ---------------------------------------------------------------------

namespace {

PhotoService::Config
tinyServiceConfig()
{
    PhotoService::Config cfg;
    cfg.profile = data::imagenet1kProfile();
    cfg.profile.world.initialImages = 1500;
    cfg.profile.world.initialClasses = 20;
    cfg.profile.world.maxClasses = 25;
    cfg.profile.testSetSize = 600;
    cfg.profile.fullTrainCfg.maxEpochs = 20;
    cfg.profile.fineTuneCfg.maxEpochs = 12;
    cfg.nPipeStores = 3;
    return cfg;
}

} // namespace

TEST(FaultMatrix, ServiceCrashedStoreConvergesWithinTolerance)
{
    PhotoService clean(tinyServiceConfig());
    clean.bootstrap();
    clean.advanceDays(2);
    auto clean_out = clean.fineTune();

    auto crashed_cfg = tinyServiceConfig();
    crashed_cfg.crashedStores = {1};
    PhotoService faulted(crashed_cfg);
    faulted.bootstrap();
    faulted.advanceDays(2);
    auto fault_out = faulted.fineTune();

    // The dead store extracted nothing; its images moved to survivors
    // and the same training set reached the tuner.
    EXPECT_EQ(fault_out.shardSizes[1], 0u);
    EXPECT_GT(fault_out.redispatchedImages, 0u);
    EXPECT_EQ(fault_out.newModelVersion, clean_out.newModelVersion);
    EXPECT_NEAR(fault_out.top1After, clean_out.top1After, 0.08);
}

TEST(FaultMatrix, ServiceAllStoresCrashedLeavesModelUnchanged)
{
    auto cfg = tinyServiceConfig();
    cfg.crashedStores = {0, 1, 2};
    PhotoService service(cfg);
    service.bootstrap();
    service.advanceDays(2);
    auto out = service.fineTune();
    // Nothing extracted, nothing trained: the version must not lie.
    EXPECT_EQ(out.epochs, 0);
    EXPECT_EQ(out.newModelVersion, 1);
    EXPECT_EQ(out.redispatchedImages, 0u);
}

TEST(FaultMatrix, DeltaPushReconcilesVersionsOnReplicas)
{
    PhotoService service(tinyServiceConfig());
    service.bootstrap();
    service.advanceDays(2);
    auto out = service.fineTune();
    ASSERT_GT(out.delta.payload.size(), 0u);

    // Clean channel: every replica upgrades by delta.
    auto dist = service.distributeDelta(out.delta, out.baseVersion,
                                        out.newModelVersion);
    EXPECT_EQ(dist.applied, service.config().nPipeStores);
    EXPECT_EQ(dist.fullFallbacks, 0);
    EXPECT_TRUE(dist.allCurrent());
    for (const auto &rep : service.replicas())
        EXPECT_EQ(rep.version, out.newModelVersion);

    // Duplicate push: reconciliation detects it, applies nothing.
    auto dup = service.distributeDelta(out.delta, out.baseVersion,
                                       out.newModelVersion);
    EXPECT_EQ(dup.applied, 0);
    EXPECT_EQ(dup.fullFallbacks, 0);
    EXPECT_TRUE(dup.allCurrent());
}

TEST(FaultMatrix, DeltaPushFullyLossyFallsBackToCheckpoint)
{
    PhotoService service(tinyServiceConfig());
    service.bootstrap();
    service.advanceDays(2);
    auto out = service.fineTune();

    // p = 1.0: every push (and every retry) is lost. The bounded
    // retry budget must expire and every replica recover via the
    // full-checkpoint fallback — typed, converged, no hang.
    auto dist = service.distributeDelta(out.delta, out.baseVersion,
                                        out.newModelVersion, 1.0);
    EXPECT_EQ(dist.applied, 0);
    EXPECT_EQ(dist.fullFallbacks, service.config().nPipeStores);
    EXPECT_GT(dist.retransmissions, 0);
    EXPECT_TRUE(dist.allCurrent());
    for (const auto &rep : service.replicas())
        EXPECT_EQ(rep.version, out.newModelVersion);
}

TEST(FaultMatrix, DeltaPushVersionMismatchFallsBack)
{
    PhotoService service(tinyServiceConfig());
    service.bootstrap();
    service.advanceDays(2);
    auto out = service.fineTune();

    // A delta chained against a base no replica holds cannot apply;
    // reconciliation types the mismatch and the fallback restores
    // convergence with the full model.
    auto dist = service.distributeDelta(out.delta, out.baseVersion + 5,
                                        out.newModelVersion + 5);
    EXPECT_EQ(dist.applied, 0);
    EXPECT_EQ(dist.fullFallbacks, service.config().nPipeStores);
    EXPECT_TRUE(dist.allCurrent());
}
