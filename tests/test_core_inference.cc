/**
 * @file
 * Tests for the offline-inference simulators: calibration anchors,
 * scaling laws, baseline orderings, NPE optimization monotonicity,
 * OOM handling, and energy accounting invariants.
 */

#include <gtest/gtest.h>

#include "core/inference.h"
#include "models/throughput.h"

using namespace ndp;
using namespace ndp::core;

namespace {

ExperimentConfig
baseCfg(uint64_t images = 50000)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = images;
    return cfg;
}

} // namespace

TEST(NdpInference, SingleStoreHitsAnchorIps)
{
    auto cfg = baseCfg();
    cfg.nStores = 1;
    auto r = runNdpOfflineInference(cfg);
    // §6.2: each PipeStore offers 2,129 IPS for ResNet50.
    EXPECT_NEAR(r.ips, 2129.0, 25.0);
    EXPECT_EQ(r.images, cfg.nImages);
    EXPECT_FALSE(r.oom);
}

TEST(NdpInference, ScalesLinearlyWithStores)
{
    auto cfg = baseCfg(100000);
    cfg.nStores = 1;
    double one = runNdpOfflineInference(cfg).ips;
    cfg.nStores = 10;
    double ten = runNdpOfflineInference(cfg).ips;
    EXPECT_NEAR(ten / one, 10.0, 0.3);
}

TEST(NdpInference, GpuIsTheBottleneckUnderFullNpe)
{
    auto cfg = baseCfg();
    cfg.nStores = 2;
    auto r = runNdpOfflineInference(cfg);
    EXPECT_GT(r.gpuUtil, 0.95);
    EXPECT_LT(r.cpuUtil, 0.5);
}

TEST(NdpInference, SerialModeIsSlower)
{
    auto cfg = baseCfg();
    cfg.nStores = 1;
    auto piped = runNdpOfflineInference(cfg);
    cfg.npe.pipelined = false;
    auto serial = runNdpOfflineInference(cfg);
    EXPECT_LT(serial.ips, piped.ips * 0.8);
}

TEST(NdpInference, NpeLevelsImproveMonotonically)
{
    auto cfg = baseCfg();
    cfg.nStores = 1;
    double prev = 0.0;
    for (auto npe : {NpeOptions::naive(), NpeOptions::withOffload(),
                     NpeOptions::withCompression(),
                     NpeOptions::withBatch()}) {
        cfg.npe = npe;
        double ips = runNdpOfflineInference(cfg).ips;
        EXPECT_GE(ips, prev * 0.999);
        prev = ips;
    }
    EXPECT_NEAR(prev, 2129.0, 25.0);
}

TEST(NdpInference, NaiveBottleneckedByPreprocessCore)
{
    auto cfg = baseCfg(5000);
    cfg.nStores = 1;
    cfg.npe = NpeOptions::naive();
    auto r = runNdpOfflineInference(cfg);
    EXPECT_NEAR(r.ips, kPreprocImgPerSecPerCore, 1.5);
}

TEST(NdpInference, OomReportedForVitAt512)
{
    auto cfg = baseCfg();
    cfg.model = &models::vitB16();
    cfg.npe.batchSize = 512;
    auto r = runNdpOfflineInference(cfg);
    EXPECT_TRUE(r.oom);
    EXPECT_EQ(r.ips, 0.0);
}

TEST(NdpInference, LabelsOnlyTraffic)
{
    auto cfg = baseCfg(10000);
    auto r = runNdpOfflineInference(cfg);
    // Far less than a single image's bytes per image.
    EXPECT_LT(r.netBytes / cfg.nImages, 100.0);
}

TEST(NdpInference, EnergyConsistency)
{
    auto cfg = baseCfg();
    cfg.nStores = 3;
    auto r = runNdpOfflineInference(cfg);
    EXPECT_NEAR(r.energyJ, r.power.totalW() * r.seconds, 1e-6);
    EXPECT_EQ(r.perServer.size(), 3u);
    EXPECT_GT(r.ipsPerWatt(), 0.0);
}

TEST(SrvInference, IdealIsGpuBound)
{
    auto cfg = baseCfg(100000);
    auto r = runSrvOfflineInference(cfg, SrvVariant::Ideal);
    double two_v100 =
        2.0 * models::deviceIps(*cfg.hostSpec.gpu, *cfg.model, 128);
    EXPECT_NEAR(r.ips, two_v100, two_v100 * 0.03);
    EXPECT_GT(r.gpuUtil, 0.9);
}

TEST(SrvInference, PreprocessedIsNetworkBound)
{
    auto cfg = baseCfg(100000);
    auto r = runSrvOfflineInference(cfg, SrvVariant::Preprocessed);
    double wire_limit =
        cfg.networkGbps * 1e9 / 8.0 / (cfg.model->inputMB() * 1e6);
    EXPECT_NEAR(r.ips, wire_limit, wire_limit * 0.05);
}

TEST(SrvInference, VariantOrderingForMidsizeModel)
{
    auto cfg = baseCfg(100000);
    double p = runSrvOfflineInference(cfg, SrvVariant::Preprocessed).ips;
    double c = runSrvOfflineInference(cfg, SrvVariant::Compressed).ips;
    double i = runSrvOfflineInference(cfg, SrvVariant::Ideal).ips;
    EXPECT_LT(p, c); // compression relieves the wire
    EXPECT_LT(c, i); // but decompression/wire still cost something
}

TEST(SrvInference, LargeModelCollapsesVariants)
{
    // §6.2: for ResNeXt101/ViT the two V100s are the bottleneck, so
    // SRV-I / SRV-P / SRV-C converge.
    auto cfg = baseCfg(50000);
    cfg.model = &models::resnext101();
    double p = runSrvOfflineInference(cfg, SrvVariant::Preprocessed).ips;
    double c = runSrvOfflineInference(cfg, SrvVariant::Compressed).ips;
    double i = runSrvOfflineInference(cfg, SrvVariant::Ideal).ips;
    EXPECT_NEAR(p / i, 1.0, 0.05);
    EXPECT_NEAR(c / i, 1.0, 0.05);
}

TEST(SrvInference, TypicalSlowerThanIdealOnRawImages)
{
    auto cfg = baseCfg(5000);
    cfg.npe.pipelined = false;
    auto typical = runSrvOfflineInference(cfg, SrvVariant::RawRemote);
    auto ideal = runSrvOfflineInference(cfg, SrvVariant::RawLocal);
    EXPECT_LT(typical.ips, ideal.ips);
    EXPECT_GT(typical.netBytes, 0.0);
    EXPECT_EQ(ideal.netBytes, 0.0);
}

TEST(SrvInference, CompressedMovesFewerBytes)
{
    auto cfg = baseCfg(20000);
    auto p = runSrvOfflineInference(cfg, SrvVariant::Preprocessed);
    auto c = runSrvOfflineInference(cfg, SrvVariant::Compressed);
    EXPECT_NEAR(p.netBytes / c.netBytes, kCompressionRatio, 0.01);
}

TEST(SrvInference, BandwidthSweepSaturates)
{
    // Fig. 18: SRV-C stops improving once the host constraints bind.
    auto cfg = baseCfg(100000);
    cfg.networkGbps = 1.0;
    double at1 = runSrvOfflineInference(cfg, SrvVariant::Compressed).ips;
    cfg.networkGbps = 10.0;
    double at10 =
        runSrvOfflineInference(cfg, SrvVariant::Compressed).ips;
    cfg.networkGbps = 40.0;
    double at40 =
        runSrvOfflineInference(cfg, SrvVariant::Compressed).ips;
    EXPECT_GT(at10, at1 * 5.0);
    EXPECT_LT(at40 / at10, 1.3);
}

TEST(SrvInference, OomAppliesToHostToo)
{
    auto cfg = baseCfg();
    cfg.model = &models::vitB16();
    cfg.npe.batchSize = 512;
    auto r = runSrvOfflineInference(cfg, SrvVariant::Ideal);
    EXPECT_TRUE(r.oom);
}

TEST(SrvInference, PowerIncludesStorageServers)
{
    auto cfg = baseCfg(20000);
    auto r = runSrvOfflineInference(cfg, SrvVariant::Compressed);
    EXPECT_EQ(r.perServer.size(),
              1u + static_cast<size_t>(cfg.srvStorageServers));
}

TEST(NpeStageTimes, InferenceLevelsBehave)
{
    auto cfg = baseCfg();
    auto naive = npeStageTimes(cfg, NpeOptions::naive(), false);
    EXPECT_GT(naive.preprocessS, 0.0);
    EXPECT_EQ(naive.decompressS, 0.0);

    auto off = npeStageTimes(cfg, NpeOptions::withOffload(), false);
    EXPECT_EQ(off.preprocessS, 0.0);
    EXPECT_LT(off.readS, naive.readS); // binaries smaller than JPEGs

    auto comp = npeStageTimes(cfg, NpeOptions::withCompression(), false);
    EXPECT_LT(comp.readS, off.readS);
    EXPECT_GT(comp.decompressS, 0.0);

    auto batched = npeStageTimes(cfg, NpeOptions::withBatch(), false);
    EXPECT_LT(batched.computeS, comp.computeS);
}

TEST(NpeStageTimes, FineTuningAlwaysUsesBinaries)
{
    auto cfg = baseCfg();
    auto ft = npeStageTimes(cfg, NpeOptions::naive(), true);
    EXPECT_EQ(ft.preprocessS, 0.0);
    EXPECT_GT(ft.computeS, 0.0);
}

TEST(SrvVariantName, AllNamed)
{
    EXPECT_STREQ(srvVariantName(SrvVariant::Ideal), "SRV-I");
    EXPECT_STREQ(srvVariantName(SrvVariant::Preprocessed), "SRV-P");
    EXPECT_STREQ(srvVariantName(SrvVariant::Compressed), "SRV-C");
    EXPECT_STREQ(srvVariantName(SrvVariant::RawRemote), "Typical");
}

class InferenceModelSweep
    : public ::testing::TestWithParam<const models::ModelSpec *>
{
};

INSTANTIATE_TEST_SUITE_P(
    Models, InferenceModelSweep,
    ::testing::ValuesIn(models::figureModels()),
    [](const ::testing::TestParamInfo<const models::ModelSpec *> &i) {
        return i.param->name();
    });

TEST_P(InferenceModelSweep, PerStoreRateNearAnchor)
{
    ExperimentConfig cfg;
    cfg.model = GetParam();
    cfg.nStores = 1;
    cfg.nImages = 20000;
    auto r = runNdpOfflineInference(cfg);
    double anchor = models::t4AnchorIps(*GetParam());
    // The NPE may be decompression-bound slightly below the GPU
    // anchor (InceptionV3), never above it.
    EXPECT_LE(r.ips, anchor * 1.02);
    EXPECT_GE(r.ips, anchor * 0.8);
}

TEST_P(InferenceModelSweep, NdpEventuallyBeatsSrvC)
{
    ExperimentConfig cfg;
    cfg.model = GetParam();
    cfg.nImages = 50000;
    auto srv = runSrvOfflineInference(cfg, SrvVariant::Compressed);
    cfg.nStores = 20;
    auto ndp = runNdpOfflineInference(cfg);
    EXPECT_GT(ndp.ips, srv.ips);
}
