/**
 * @file
 * Tests for the operational cost model (Fig. 21 arithmetic).
 */

#include <gtest/gtest.h>

#include "core/cost.h"

using namespace ndp;
using namespace ndp::core;

TEST(Cost, ServerCostIsLinearInTime)
{
    auto spec = hw::g4dn4xlarge(true);
    EXPECT_NEAR(serverCostUsd(spec, 3600.0), spec.hourlyUsd, 1e-9);
    EXPECT_NEAR(serverCostUsd(spec, 1800.0), spec.hourlyUsd / 2.0,
                1e-9);
    EXPECT_DOUBLE_EQ(serverCostUsd(spec, 0.0), 0.0);
}

TEST(Cost, NdpipeSumsStoresAndTuner)
{
    ExperimentConfig cfg;
    cfg.nStores = 4;
    double expected = 4.0 * serverCostUsd(cfg.storeSpec, 600.0) +
                      serverCostUsd(cfg.tunerSpec, 600.0);
    EXPECT_NEAR(ndpipeRunCostUsd(cfg, 600.0), expected, 1e-12);
}

TEST(Cost, SrvSumsHostAndStorage)
{
    ExperimentConfig cfg;
    double expected =
        serverCostUsd(cfg.hostSpec, 600.0) +
        cfg.srvStorageServers * serverCostUsd(cfg.srvStoreSpec, 600.0);
    EXPECT_NEAR(srvRunCostUsd(cfg, 600.0), expected, 1e-12);
}

TEST(Cost, Inf1StoresAreCheaperPerHour)
{
    ExperimentConfig t4;
    ExperimentConfig inf1;
    inf1.storeSpec = hw::inf12xlarge();
    EXPECT_LT(ndpipeRunCostUsd(inf1, 3600.0),
              ndpipeRunCostUsd(t4, 3600.0));
}

TEST(Cost, SrvHostDominatesItsCost)
{
    ExperimentConfig cfg;
    double host_only = serverCostUsd(cfg.hostSpec, 3600.0);
    double total = srvRunCostUsd(cfg, 3600.0);
    EXPECT_GT(host_only / total, 0.5);
}

TEST(Cost, MoreStoresCostMorePerSecond)
{
    ExperimentConfig a, b;
    a.nStores = 2;
    b.nStores = 10;
    EXPECT_LT(ndpipeRunCostUsd(a, 100.0), ndpipeRunCostUsd(b, 100.0));
}
