/**
 * @file
 * Topology-fabric unit tests (net/topology.h + the multi-link
 * allocator of net/fabric.cc): closed-form progressive filling over
 * multi-hop paths — shared trunk bottleneck, oversubscribed rack
 * uplink, nested NIC/trunk bottlenecks, WAN chains where the rate is
 * the path minimum and the latency the path sum — plus the contract
 * the rest of the repo depends on: a hub-topology fabric is *bitwise*
 * identical to the topology-less NetFabric, so no golden or
 * determinism baseline moves. WAN fault windows (degradeWanLink /
 * downWanLink) are pinned here too.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "net/fabric.h"
#include "net/topology.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace {

using namespace ndp;
using net::FlowClass;
using net::FlowStats;
using net::NetFabric;
using net::NodeId;
using net::RackId;
using net::SiteId;
using net::Topology;

/** Start a transfer after @p delay and record its stats.
 * Pointer params only: referents live in the test body, which joins
 * every task via s.run(). */
sim::Task
xfer(sim::Simulator *s, NetFabric *fab, double delay, NodeId src,
     NodeId dst, double bytes, FlowStats *out)
{
    if (delay > 0.0)
        co_await s->delay(delay);
    *out = co_await fab->transfer(src, dst, bytes,
                                  FlowClass::GeoDelta);
}

/** Two racks in one site, @p uplink Gbps each way. */
Topology
twoRacks(double uplink_a, double uplink_b)
{
    Topology t;
    const SiteId dc = t.addSite("dc");
    t.addRack(dc, uplink_a);
    t.addRack(dc, uplink_b);
    return t;
}

TEST(NetTopology, ValidateRejectsBadGraphs)
{
    Topology ok = twoRacks(10.0, 10.0);
    EXPECT_EQ(ok.validate(), "");
    EXPECT_FALSE(ok.isHub());
    EXPECT_TRUE(Topology::hub().isHub());
    EXPECT_EQ(Topology::hub().validate(), "");

    Topology bad_rack;
    bad_rack.addRack(3, 10.0); // undeclared site
    EXPECT_NE(bad_rack.validate().find("undeclared site"),
              std::string::npos);

    Topology self_wan;
    const SiteId s0 = self_wan.addSite("a");
    self_wan.addRack(s0, 10.0);
    self_wan.addWanLink(s0, s0, 1.0, 0.05);
    EXPECT_NE(self_wan.validate().find("joins a site to itself"),
              std::string::npos);
}

TEST(NetTopology, SameRackFlowsNeverCrossTrunks)
{
    sim::Simulator s;
    NetFabric fab(s, Topology::rackSpine(2, 1.0)); // skinny uplinks
    NodeId a = fab.addNode({10.0, 0.0}, 0);
    NodeId b = fab.addNode({10.0, 0.0}, 0);
    EXPECT_EQ(fab.rackOf(a), 0);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, b, 1.25e9, &st)); // 10 Gbit
    s.run();
    // Intra-rack: the 1 Gbps trunks are not on the path.
    EXPECT_NEAR(s.now(), 1.0, 1e-9);
    EXPECT_NEAR(st.achievedGbps, 10.0, 1e-9);
    for (size_t t = 0; t < fab.topology().nTrunks(); ++t)
        EXPECT_EQ(fab.trunkBytes(t), 0.0);
    EXPECT_EQ(fab.report().wanBytes, 0.0);
}

TEST(NetTopology, OversubscribedUplinkSharesTrunkFairly)
{
    // Four 10G NICs behind a 10G rack trunk, each sending to its own
    // receiver in a fat (40G) rack: the oversubscribed uplink is the
    // single bottleneck, so progressive filling gives 10/4 = 2.5 Gbps
    // per flow and the trunk runs at exactly full utilization.
    sim::Simulator s;
    NetFabric fab(s, twoRacks(10.0, 40.0));
    std::vector<NodeId> src, dst;
    for (int i = 0; i < 4; ++i)
        src.push_back(fab.addNode({10.0, 0.0}, 0));
    for (int i = 0; i < 4; ++i)
        dst.push_back(fab.addNode({10.0, 0.0}, 1));
    std::vector<FlowStats> st(4);
    for (size_t i = 0; i < 4; ++i)
        s.spawn(xfer(&s, &fab, 0.0, src[i], dst[i], 1.25e9, &st[i]));
    s.run();
    EXPECT_NEAR(s.now(), 4.0, 1e-9);
    for (const FlowStats &f : st) {
        EXPECT_NEAR(f.achievedGbps, 2.5, 1e-9);
        EXPECT_EQ(f.peakSharedWith, 3);
    }
    // Trunk creation order: rack0 up/down = 0/1, rack1 up/down = 2/3.
    EXPECT_NEAR(fab.trunkBytes(0), 4 * 1.25e9, 1e-3);
    EXPECT_NEAR(fab.trunkUtilization(0), 1.0, 1e-9);
    // The 40G core->rack1 trunk carried the same bytes at 1/4 duty.
    EXPECT_NEAR(fab.trunkBytes(3), 4 * 1.25e9, 1e-3);
    EXPECT_NEAR(fab.trunkUtilization(3), 0.25, 1e-9);
    EXPECT_EQ(fab.report().wanBytes, 0.0); // no WAN hop in one site
}

TEST(NetTopology, NestedTrunkAndNicBottlenecks)
{
    // Two flows share a 10G rack uplink; one lands on a 4G NIC.
    // Progressive filling: the 4G downlink binds first (f2 = 4), the
    // shared trunk's residual goes to f1 (f1 = 10 - 4 = 6).
    sim::Simulator s;
    NetFabric fab(s, twoRacks(10.0, 40.0));
    NodeId s1 = fab.addNode({10.0, 0.0}, 0);
    NodeId s2 = fab.addNode({10.0, 0.0}, 0);
    NodeId d1 = fab.addNode({10.0, 0.0}, 1);
    NodeId d2 = fab.addNode({4.0, 0.0}, 1);
    FlowStats f1, f2;
    s.spawn(xfer(&s, &fab, 0.0, s1, d1, 1.25e9, &f1));
    s.spawn(xfer(&s, &fab, 0.0, s2, d2, 1.25e9, &f2));
    s.run();
    // f1 drains 10 Gbit at 6 Gbps; f2 at 4 Gbps throughout.
    EXPECT_NEAR(f1.finishS, 10.0 / 6.0, 1e-9);
    EXPECT_NEAR(f2.finishS, 2.5, 1e-9);
    EXPECT_NEAR(s.now(), 2.5, 1e-9);
}

TEST(NetTopology, WanChainRateIsMinLatencyIsSum)
{
    // a(site A) -> c(site C) crosses two WAN hops: the rate is the
    // 0.5 Gbps path minimum, the propagation latency the 0.13 s sum.
    Topology t;
    const SiteId A = t.addSite("home");
    const SiteId B = t.addSite("relay");
    const SiteId C = t.addSite("edge");
    t.addRack(A, 25.0);
    t.addRack(C, 25.0);
    t.addWanLink(A, B, 1.0, 0.05);
    t.addWanLink(B, C, 0.5, 0.08);
    ASSERT_EQ(t.validate(), "");
    sim::Simulator s;
    NetFabric fab(s, t);
    NodeId a = fab.addNode({10.0, 0.0}, 0);
    NodeId c = fab.addNode({10.0, 0.0}, 1);
    EXPECT_NEAR(fab.serviceTime(a, c, 0.0625e9), 1.0, 1e-12);
    EXPECT_NEAR(fab.pathLatency(a, c), 0.13, 1e-12);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, c, 0.0625e9, &st)); // 0.5 Gbit
    s.run();
    EXPECT_NEAR(st.finishS, 1.0, 1e-9);       // serialization
    EXPECT_NEAR(s.now(), 1.13, 1e-9);         // + summed latency
    EXPECT_NEAR(st.achievedGbps, 0.5, 1e-9);
    EXPECT_NEAR(fab.report().wanBytes, 0.0625e9, 1e-6);
}

TEST(NetTopology, ZeroByteWanTransferPaysFullPathLatency)
{
    Topology t;
    const SiteId A = t.addSite("home");
    const SiteId B = t.addSite("edge");
    t.addRack(A, 25.0, 0.001);
    t.addRack(B, 25.0, 0.002);
    t.addWanLink(A, B, 1.0, 0.05);
    sim::Simulator s;
    NetFabric fab(s, t);
    NodeId a = fab.addNode({10.0, 0.0}, 0);
    NodeId b = fab.addNode({10.0, 0.0}, 1);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, b, 0.0, &st));
    s.run();
    // up + rackA->core + WAN + core->rackB + down latencies.
    EXPECT_NEAR(s.now(), 0.001 + 0.05 + 0.002, 1e-12);
    // Zero-byte control messages are not WAN payload.
    EXPECT_EQ(fab.report().wanBytes, 0.0);
}

TEST(NetTopology, ConcurrentWanFlowsShareTheTrunk)
{
    Topology t;
    const SiteId A = t.addSite("home");
    const SiteId B = t.addSite("edge");
    t.addRack(A, 25.0);
    t.addRack(B, 25.0);
    t.addWanLink(A, B, 1.0, 0.0);
    sim::Simulator s;
    NetFabric fab(s, t);
    NodeId a1 = fab.addNode({10.0, 0.0}, 0);
    NodeId a2 = fab.addNode({10.0, 0.0}, 0);
    NodeId b1 = fab.addNode({10.0, 0.0}, 1);
    NodeId b2 = fab.addNode({10.0, 0.0}, 1);
    FlowStats f1, f2;
    s.spawn(xfer(&s, &fab, 0.0, a1, b1, 0.0625e9, &f1));
    s.spawn(xfer(&s, &fab, 0.0, a2, b2, 0.0625e9, &f2));
    s.run();
    // Two 0.5 Gbit flows split the 1 Gbps WAN trunk: 1 s total.
    EXPECT_NEAR(s.now(), 1.0, 1e-9);
    EXPECT_NEAR(f1.achievedGbps, 0.5, 1e-9);
    EXPECT_NEAR(f2.achievedGbps, 0.5, 1e-9);
    EXPECT_NEAR(fab.report().wanBytes, 2 * 0.0625e9, 1e-6);
}

TEST(NetTopology, WanDegradeStretchesPush)
{
    Topology t;
    const SiteId A = t.addSite("home");
    const SiteId B = t.addSite("edge");
    t.addRack(A, 25.0);
    t.addRack(B, 25.0);
    t.addWanLink(A, B, 1.0, 0.0);
    sim::Simulator s;
    sim::FaultPlan plan;
    plan.degradeWanLink(B, 0.0, 100.0, 0.5);
    sim::FaultInjector inj(s, plan, 1);
    NetFabric fab(s, t);
    NodeId a = fab.addNode({10.0, 0.0}, 0);
    NodeId b = fab.addNode({10.0, 0.0}, 1);
    fab.attachFaults(&inj);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, b, 0.125e9, &st)); // 1 Gbit
    s.run();
    EXPECT_NEAR(s.now(), 2.0, 1e-9); // 1 Gbit at 0.5 Gbps
    // One declared fault = one report entry, even though both
    // directions of the duplex WAN pair carry the window.
    EXPECT_EQ(inj.report().linkDegrades, 1U);
    EXPECT_EQ(inj.report().linkDowns, 0U);
}

TEST(NetTopology, WanDownStallsThenResumes)
{
    Topology t;
    const SiteId A = t.addSite("home");
    const SiteId B = t.addSite("edge");
    t.addRack(A, 25.0);
    t.addRack(B, 25.0);
    t.addWanLink(A, B, 1.0, 0.0);
    sim::Simulator s;
    sim::FaultPlan plan;
    plan.downWanLink(sim::FaultSpec::kAnySite, 0.5, 1.0);
    sim::FaultInjector inj(s, plan, 1);
    NetFabric fab(s, t);
    NodeId a = fab.addNode({10.0, 0.0}, 0);
    NodeId b = fab.addNode({10.0, 0.0}, 1);
    fab.attachFaults(&inj);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, b, 0.125e9, &st)); // 1 Gbit
    s.run();
    // 0.5 Gbit moved by t=0.5, frozen until 1.5, rest by 2.0 —
    // stall semantics: nothing is lost, completion slips by the
    // outage (the conservation argument geo-rep checkpoints reuse).
    EXPECT_NEAR(s.now(), 2.0, 1e-9);
    EXPECT_NEAR(fab.report().wanBytes, 0.125e9, 1e-6);
    EXPECT_EQ(inj.report().linkDowns, 1U);
}

/** The workload of test_net.cc's determinism suite: staggered flows
 * with contention, run against @p fab; returns the fabric report. */
net::NetReport
runParityWorkload(sim::Simulator &s, NetFabric &fab)
{
    std::vector<NodeId> nodes;
    for (int i = 0; i < 5; ++i)
        nodes.push_back(fab.addNode({10.0, 0.001}));
    fab.setIngress(nodes[4]);
    std::vector<FlowStats> st(6);
    for (size_t i = 0; i < 4; ++i)
        s.spawn(xfer(&s, &fab, 0.07 * static_cast<double>(i),
                     nodes[i], nodes[4], 3.3e8 + 1.0e7 * static_cast<double>(i),
                     &st[i]));
    s.spawn(xfer(&s, &fab, 0.11, nodes[0], nodes[1], 2.2e8, &st[4]));
    s.spawn(xfer(&s, &fab, 0.0, nodes[3], nodes[2], 1.0e8, &st[5]));
    s.run();
    return fab.report();
}

TEST(NetTopology, HubTopologyIsBitExactWithPlainFabric)
{
    // The empty Topology must not perturb a single float operation:
    // same link layout, same allocator order, same event sequence.
    // This is what lets every existing dataflow, golden, and the
    // determinism suite run unchanged with the topology code in.
    sim::Simulator s1;
    NetFabric plain(s1);
    const net::NetReport a = runParityWorkload(s1, plain);
    const double end1 = s1.now();
    const uint64_t ev1 = s1.processedEvents();

    sim::Simulator s2;
    NetFabric hub(s2, Topology::hub());
    const net::NetReport b = runParityWorkload(s2, hub);

    EXPECT_EQ(std::bit_cast<uint64_t>(a.bytesMoved),
              std::bit_cast<uint64_t>(b.bytesMoved));
    EXPECT_EQ(a.flowsCompleted, b.flowsCompleted);
    EXPECT_EQ(a.peakConcurrentFlows, b.peakConcurrentFlows);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.ingressBytes),
              std::bit_cast<uint64_t>(b.ingressBytes));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.ingressUtil),
              std::bit_cast<uint64_t>(b.ingressUtil));
    EXPECT_EQ(std::bit_cast<uint64_t>(end1),
              std::bit_cast<uint64_t>(s2.now()));
    EXPECT_EQ(ev1, s2.processedEvents());
    EXPECT_EQ(a.wanBytes, 0.0);
    EXPECT_EQ(b.wanBytes, 0.0);
}

TEST(NetTopology, TopologyRunsAreDeterministic)
{
    auto run = [](net::NetReport *rep) {
        Topology t;
        const SiteId A = t.addSite("home");
        const SiteId B = t.addSite("edge");
        t.addRack(A, 10.0, 0.001);
        t.addRack(B, 5.0, 0.001);
        t.addWanLink(A, B, 1.0, 0.05);
        sim::Simulator s;
        NetFabric fab(s, t);
        std::vector<NodeId> h, e;
        for (int i = 0; i < 3; ++i)
            h.push_back(fab.addNode({10.0, 0.0}, 0));
        for (int i = 0; i < 3; ++i)
            e.push_back(fab.addNode({10.0, 0.0}, 1));
        std::vector<FlowStats> st(4);
        s.spawn(xfer(&s, &fab, 0.0, h[0], e[0], 2.0e8, &st[0]));
        s.spawn(xfer(&s, &fab, 0.03, h[1], e[1], 1.5e8, &st[1]));
        s.spawn(xfer(&s, &fab, 0.06, h[2], e[2], 1.0e8, &st[2]));
        s.spawn(xfer(&s, &fab, 0.0, h[0], h[1], 3.0e8, &st[3]));
        s.run();
        *rep = fab.report();
    };
    net::NetReport r1, r2;
    run(&r1);
    run(&r2);
    EXPECT_EQ(std::bit_cast<uint64_t>(r1.bytesMoved),
              std::bit_cast<uint64_t>(r2.bytesMoved));
    EXPECT_EQ(std::bit_cast<uint64_t>(r1.wanBytes),
              std::bit_cast<uint64_t>(r2.wanBytes));
    EXPECT_EQ(r1.flowsCompleted, r2.flowsCompleted);
    EXPECT_GT(r1.wanBytes, 0.0);
}

} // namespace
