/**
 * @file
 * Tests for the DeflateLite codec: exact round trips (including
 * property-style sweeps over payload families), header handling,
 * compression-ratio expectations, and corruption rejection.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/random.h"
#include "storage/codec.h"
#include "storage/photo_gen.h"

using namespace ndp;
using namespace ndp::storage;

namespace {

Bytes
fromString(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

void
expectRoundTrip(const Bytes &input)
{
    Bytes c = deflateLite(input);
    auto d = inflateLite(c);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, input);
    auto size = inflatedSize(c);
    ASSERT_TRUE(size.has_value());
    EXPECT_EQ(*size, input.size());
}

} // namespace

TEST(Codec, EmptyInput)
{
    expectRoundTrip({});
    EXPECT_EQ(deflateLite({}).size(), 8u); // header only
}

TEST(Codec, SingleByte)
{
    expectRoundTrip({0x42});
}

TEST(Codec, ShortInputsBelowMinMatch)
{
    expectRoundTrip({1, 2, 3});
}

TEST(Codec, AllZerosCompressesHard)
{
    Bytes zeros(100000, 0);
    Bytes c = deflateLite(zeros);
    expectRoundTrip(zeros);
    EXPECT_LT(c.size(), zeros.size() / 20);
}

TEST(Codec, RepeatedPatternCompresses)
{
    Bytes input;
    for (int i = 0; i < 5000; ++i) {
        input.push_back(static_cast<uint8_t>('A' + i % 4));
    }
    Bytes c = deflateLite(input);
    expectRoundTrip(input);
    EXPECT_LT(c.size(), input.size() / 4);
}

TEST(Codec, OverlappingMatchRle)
{
    // "abcabcabc..." forces matches with distance < length.
    Bytes input;
    for (int i = 0; i < 1000; ++i)
        input.push_back(static_cast<uint8_t>("abc"[i % 3]));
    expectRoundTrip(input);
}

TEST(Codec, TextRoundTrip)
{
    expectRoundTrip(fromString(
        "NDPipe distributes storage servers with inexpensive "
        "commodity GPUs in a data center and uses their collective "
        "intelligence to perform inference and training near image "
        "data. NDPipe NDPipe NDPipe."));
}

TEST(Codec, IncompressibleDataGrowsOnlySlightly)
{
    Rng rng(1);
    Bytes input(50000);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.nextU64());
    Bytes c = deflateLite(input);
    expectRoundTrip(input);
    // Worst case: 1 control byte per 128 literals + header.
    EXPECT_LT(c.size(), input.size() + input.size() / 100 + 16);
}

TEST(Codec, PreprocessedBinaryRatioNearModel)
{
    PhotoGenerator gen;
    Bytes pre = gen.preprocessedBinary(7);
    Bytes c = deflateLite(pre);
    double ratio =
        static_cast<double>(pre.size()) / static_cast<double>(c.size());
    // The simulator assumes ~3.5x; the real codec should be close.
    EXPECT_GT(ratio, 2.8);
    EXPECT_LT(ratio, 5.5);
}

TEST(Codec, RawPhotoDoesNotCompress)
{
    PhotoGenerator gen;
    Bytes raw = gen.rawPhoto(7);
    Bytes c = deflateLite(raw);
    double ratio =
        static_cast<double>(raw.size()) / static_cast<double>(c.size());
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.1);
}

TEST(Codec, RejectsBadMagic)
{
    Bytes c = deflateLite(fromString("hello world hello world"));
    c[0] = 'X';
    EXPECT_FALSE(inflateLite(c).has_value());
    EXPECT_FALSE(inflatedSize(c).has_value());
}

TEST(Codec, RejectsTruncatedHeader)
{
    Bytes c = {'N', 'D', 'L'};
    EXPECT_FALSE(inflateLite(c).has_value());
}

TEST(Codec, RejectsTruncatedPayload)
{
    Bytes c = deflateLite(fromString(
        "a reasonably long string that certainly compresses into "
        "more than a couple of tokens a reasonably long string"));
    c.resize(c.size() - 3);
    EXPECT_FALSE(inflateLite(c).has_value());
}

TEST(Codec, RejectsSizeMismatch)
{
    Bytes c = deflateLite(fromString("some payload bytes here"));
    c[4] ^= 0x01; // flip a size bit
    EXPECT_FALSE(inflateLite(c).has_value());
}

TEST(Codec, RejectsInvalidDistance)
{
    // Hand-craft: header for 10 bytes, then a match token with
    // distance beyond what has been produced.
    Bytes c = {'N', 'D', 'L', 'Z', 10, 0, 0, 0};
    c.push_back(0x00); // literal run of 1
    c.push_back('x');
    c.push_back(0x80); // match len 4
    c.push_back(0xff); // distance 255 > produced 1
    c.push_back(0x00);
    EXPECT_FALSE(inflateLite(c).has_value());
}

TEST(Codec, RejectsZeroDistance)
{
    Bytes c = {'N', 'D', 'L', 'Z', 5, 0, 0, 0};
    c.push_back(0x00);
    c.push_back('x');
    c.push_back(0x80);
    c.push_back(0x00); // distance 0 is illegal
    c.push_back(0x00);
    EXPECT_FALSE(inflateLite(c).has_value());
}

/** Property sweep: deterministic pseudo-random payload families. */
class CodecProperty
    : public ::testing::TestWithParam<std::tuple<int, size_t>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Payloads, CodecProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 17, 255, 4096, 70000)));

TEST_P(CodecProperty, RoundTripsExactly)
{
    auto [family, n] = GetParam();
    Rng rng(1000 + family * 31 + static_cast<uint64_t>(n));
    Bytes input(n);
    switch (family) {
      case 0: // uniform random
        for (auto &b : input)
            b = static_cast<uint8_t>(rng.nextU64());
        break;
      case 1: // runs of random lengths
        for (size_t i = 0; i < n;) {
            uint8_t v = static_cast<uint8_t>(rng.below(256));
            size_t run = 1 + rng.below(40);
            for (size_t k = 0; k < run && i < n; ++k)
                input[i++] = v;
        }
        break;
      case 2: // small alphabet
        for (auto &b : input)
            b = static_cast<uint8_t>(rng.below(3));
        break;
      case 3: // sawtooth
        for (size_t i = 0; i < n; ++i)
            input[i] = static_cast<uint8_t>(i % 13);
        break;
    }
    expectRoundTrip(input);
}

TEST(Codec, WindowBoundaryMatches)
{
    // Repeat a block just beyond the 64 KiB window so matches at the
    // boundary are exercised.
    Bytes block;
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        block.push_back(static_cast<uint8_t>(rng.below(256)));
    Bytes input;
    for (int i = 0; i < 70; ++i)
        input.insert(input.end(), block.begin(), block.end());
    expectRoundTrip(input);
    EXPECT_LT(deflateLite(input).size(), input.size() / 2);
}
