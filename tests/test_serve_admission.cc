/**
 * @file
 * Admission-control and serving-dataflow contract tests
 * (core/serve): request conservation (offered == accepted + shed,
 * accepted == completed + abandoned), deadline discipline when
 * capacity exists, shedding vanishing under light load, token-bucket
 * and load-balancer unit behavior, and the never-hang guarantee when
 * a store crashes in the middle of a flash crowd.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/serve/admission.h"
#include "core/serve/serve.h"

namespace {

using namespace ndp::core::serve;

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

TEST(TokenBucket, RefillsBySimTimeAndCapsAtBurst)
{
    TokenBucket tb(10.0, 5.0); // 10 tokens/s, burst 5
    // Burst drains immediately.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(tb.tryTake(0.0)) << i;
    EXPECT_FALSE(tb.tryTake(0.0));
    // 0.1 s refills exactly one token.
    EXPECT_TRUE(tb.tryTake(0.1));
    EXPECT_FALSE(tb.tryTake(0.1));
    // A long idle period caps at burst, not rate * elapsed.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(tb.tryTake(100.0)) << i;
    EXPECT_FALSE(tb.tryTake(100.0));
    // Rate 0 disables the throttle.
    TokenBucket open(0.0, 1.0);
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(open.tryTake(0.0));
}

TEST(LoadBalancer, PicksLeastLoadedHealthyLowestIndex)
{
    LoadBalancer lb(3);
    EXPECT_EQ(lb.pick(), 0); // all empty: lowest index
    lb.enqueued(0);
    EXPECT_EQ(lb.pick(), 1);
    lb.enqueued(1);
    lb.enqueued(1);
    EXPECT_EQ(lb.pick(), 2);
    lb.enqueued(2);
    EXPECT_EQ(lb.pick(), 0); // 1-2-1: ties under depth resolve low
    lb.setHealthy(0, false);
    EXPECT_EQ(lb.pick(), 2); // depth 1 vs 2: store 2 wins
    lb.setHealthy(2, false);
    EXPECT_EQ(lb.pick(), 1);
    lb.setHealthy(1, false);
    EXPECT_EQ(lb.pick(), -1);
    EXPECT_EQ(lb.healthyCount(), 0);
    EXPECT_EQ(lb.totalDepth(), 4);
    EXPECT_EQ(lb.peakDepth(), 2);
}

TEST(AdmissionController, VerdictCountersConserveAtEveryStep)
{
    LoadBalancer lb(2);
    AdmissionConfig cfg;
    cfg.queueCap = 2;
    cfg.tokenRatePerSec = 1000.0;
    cfg.tokenBurst = 3.0;
    AdmissionController ac(cfg, lb);

    int backend = -1;
    double t = 0.0;
    // 4 slots exist (2 stores x cap 2) but the burst allows only 3.
    for (int i = 0; i < 6; ++i) {
        ac.offer(t, t + 10.0, 0.001, &backend);
        EXPECT_TRUE(ac.stats().conserved()) << "after offer " << i;
    }
    EXPECT_EQ(ac.stats().offered, 6u);
    EXPECT_EQ(ac.stats().accepted, 3u);
    EXPECT_EQ(ac.stats().shedThrottle, 3u);

    // Tokens refill, then the queue cap takes over.
    t = 0.1; // +100 tokens, capped at burst 3
    for (int i = 0; i < 3; ++i)
        ac.offer(t, t + 10.0, 0.001, &backend);
    EXPECT_EQ(ac.stats().accepted, 4u); // 4th slot filled
    EXPECT_EQ(ac.stats().shedQueueFull, 2u);
    EXPECT_TRUE(ac.stats().conserved());

    // Unavailable when every backend is down.
    lb.setHealthy(0, false);
    lb.setHealthy(1, false);
    EXPECT_EQ(ac.offer(t, t + 10.0, 0.001, &backend),
              Verdict::ShedUnavailable);
    EXPECT_TRUE(ac.stats().conserved());
}

TEST(AdmissionController, ShedsInfeasibleDeadlinesUpFront)
{
    LoadBalancer lb(1);
    AdmissionConfig cfg;
    cfg.queueCap = 100;
    AdmissionController ac(cfg, lb);

    int backend = -1;
    // est 1 s per request; deadline 3.5 s out. Queue grows until
    // (depth + 1) * 1 s > 3.5 s, i.e. the 4th accept is the last.
    int accepted = 0;
    for (int i = 0; i < 10; ++i)
        if (ac.offer(0.0, 3.5, 1.0, &backend) == Verdict::Accept)
            ++accepted;
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(ac.stats().shedDeadline, 7u);
    EXPECT_TRUE(ac.stats().conserved());

    // Ablation switch: without deadline shedding they all queue.
    LoadBalancer lb2(1);
    cfg.deadlineShedding = false;
    AdmissionController ac2(cfg, lb2);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ac2.offer(0.0, 3.5, 1.0, &backend),
                  Verdict::Accept);
}

/** A small but real end-to-end run: light load on a healthy fleet. */
ServeConfig
lightConfig()
{
    ServeConfig cfg;
    cfg.nStores = 4;
    cfg.arrivals.nRequests = 3000;
    cfg.arrivals.nUsers = 200000;
    cfg.arrivals.baseRatePerSec = 150.0; // far under fleet capacity
    cfg.arrivals.seed = 11;
    cfg.admission.queueCap = 64;
    return cfg;
}

TEST(ServeDataflow, ConservationAndDrainUnderLightLoad)
{
    const ServeReport rep = runServing(lightConfig());
    EXPECT_EQ(rep.offered, 3000u);
    EXPECT_EQ(rep.offered, rep.accepted + rep.shedThrottle +
                               rep.shedQueueFull + rep.shedDeadline +
                               rep.shedUnavailable);
    EXPECT_EQ(rep.accepted, rep.completed + rep.abandoned);
    EXPECT_EQ(rep.abandoned, 0u);
    // Offered under capacity: shedding goes to zero and essentially
    // everything completes in deadline.
    EXPECT_EQ(rep.shedQueueFull + rep.shedUnavailable, 0u);
    EXPECT_LT(static_cast<double>(rep.shedDeadline), 0.01 * 3000.0);
    EXPECT_GT(static_cast<double>(rep.goodput),
              0.99 * static_cast<double>(rep.completed));
    EXPECT_EQ(rep.completed, rep.uploads + rep.queries);
    EXPECT_GT(rep.p50Ms, 0.0);
    EXPECT_GE(rep.p999Ms, rep.p99Ms);
    EXPECT_GE(rep.p99Ms, rep.p50Ms);
}

TEST(ServeDataflow, OverloadShedsButNeverViolatesConservation)
{
    ServeConfig cfg = lightConfig();
    // Offered far beyond what 4 stores can serve, tight queues.
    cfg.arrivals.baseRatePerSec = 5000.0;
    cfg.arrivals.nRequests = 8000;
    cfg.admission.queueCap = 8;
    const ServeReport rep = runServing(cfg);
    EXPECT_EQ(rep.offered, 8000u);
    EXPECT_EQ(rep.offered, rep.accepted + rep.shedThrottle +
                               rep.shedQueueFull + rep.shedDeadline +
                               rep.shedUnavailable);
    EXPECT_EQ(rep.accepted, rep.completed + rep.abandoned);
    EXPECT_GT(rep.shedQueueFull + rep.shedDeadline, 0u);
    // Bounded queues: depth never exceeded the cap.
    EXPECT_LE(rep.peakQueueDepth, 8);
}

TEST(ServeDataflow, TokenBucketCapsAcceptRate)
{
    ServeConfig cfg = lightConfig();
    cfg.admission.tokenRatePerSec = 50.0; // well under the 150/s offer
    cfg.admission.tokenBurst = 10.0;
    const ServeReport rep = runServing(cfg);
    EXPECT_GT(rep.shedThrottle, 0u);
    // Accepted rate ~ token rate over the run (burst adds slack).
    const double acceptRate =
        static_cast<double>(rep.accepted) / rep.seconds;
    EXPECT_LT(acceptRate, 60.0);
    EXPECT_EQ(rep.offered, rep.accepted + rep.shedThrottle +
                               rep.shedQueueFull + rep.shedDeadline +
                               rep.shedUnavailable);
}

TEST(ServeDataflow, CrashDuringSpikeDrainsAndNeverHangs)
{
    ServeConfig cfg = lightConfig();
    cfg.arrivals.nRequests = 6000;
    cfg.arrivals.baseRatePerSec = 300.0;
    // Flash crowd from t=4 s; store 1 crashes inside it.
    cfg.arrivals.spikes.push_back(
        ndp::sim::SpikeSegment{4.0, 6.0, 4.0});
    cfg.faults.crashStore(1, 5.0);
    const ServeReport rep = runServing(cfg);
    // The run completed (s.run() returned): that is the never-hang
    // assertion itself. The ledger still conserves.
    EXPECT_EQ(rep.offered, 6000u);
    EXPECT_EQ(rep.offered, rep.accepted + rep.shedThrottle +
                               rep.shedQueueFull + rep.shedDeadline +
                               rep.shedUnavailable);
    EXPECT_EQ(rep.accepted, rep.completed + rep.abandoned);
    // The crashed store's queue was re-routed, not lost silently.
    EXPECT_GT(rep.completed, 0u);
    EXPECT_EQ(rep.faults.crashes, 1u);
}

TEST(ServeDataflow, AllStoresCrashedShedsRemainderUnavailable)
{
    ServeConfig cfg = lightConfig();
    cfg.arrivals.nRequests = 2000;
    for (int i = 0; i < cfg.nStores; ++i)
        cfg.faults.crashStore(i, 2.0);
    const ServeReport rep = runServing(cfg);
    EXPECT_GT(rep.shedUnavailable, 0u);
    EXPECT_EQ(rep.offered, rep.accepted + rep.shedThrottle +
                               rep.shedQueueFull + rep.shedDeadline +
                               rep.shedUnavailable);
    EXPECT_EQ(rep.accepted, rep.completed + rep.abandoned);
}

TEST(ServeDataflow, SameSeedRunsBitIdentical)
{
    ServeConfig cfg = lightConfig();
    cfg.arrivals.diurnalAmplitude = 0.5;
    cfg.arrivals.diurnalPeriodS = 10.0;
    cfg.arrivals.spikes.push_back(
        ndp::sim::SpikeSegment{3.0, 2.0, 3.0});
    cfg.faults.crashStore(2, 4.0).degradeLink(0, 3.0, 3.0, 0.25);
    const ServeReport a = runServing(cfg);
    const ServeReport b = runServing(cfg);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.redispatched, b.redispatched);
    EXPECT_EQ(a.abandoned, b.abandoned);
    EXPECT_BITEQ(a.seconds, b.seconds);
    EXPECT_BITEQ(a.p50Ms, b.p50Ms);
    EXPECT_BITEQ(a.p99Ms, b.p99Ms);
    EXPECT_BITEQ(a.p999Ms, b.p999Ms);
    EXPECT_BITEQ(a.meanMs, b.meanMs);
}

} // namespace
