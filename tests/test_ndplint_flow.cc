/**
 * @file
 * Tests for the flow-aware ndp-lint layer: coroutine-lifetime escape
 * analysis (the PR 3 use-after-free class), determinism taint with
 * cross-TU propagation through the symbol index, the scheduler/channel
 * protocol rules, the centralized scope config, the suppression audit,
 * SARIF output, and the hardened lexer. Fixtures live in
 * tools/ndplint/fixtures/ (NDPLINT_FIXTURE_DIR) and are lexed, never
 * compiled.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ndplint/config.h"
#include "ndplint/engine.h"
#include "ndplint/lexer.h"
#include "ndplint/rules.h"

namespace {

using ndp::lint::Finding;
using ndp::lint::LintOptions;
using ndp::lint::LintStats;
using ndp::lint::ScopeConfig;
using ndp::lint::SourceFile;
using ndp::lint::Tok;

std::string
fixturePath(const std::string &name)
{
    return std::string(NDPLINT_FIXTURE_DIR) + "/" + name;
}

LintStats
lintFixture(const std::string &name,
            const std::vector<std::string> &rules = {})
{
    LintOptions opt;
    opt.ruleFilter = rules;
    opt.ignorePathScope = true;
    return ndp::lint::runLint(
        {ndp::lint::lexFile(fixturePath(name))}, opt);
}

bool
anyMessageContains(const LintStats &stats, const std::string &needle)
{
    return std::any_of(stats.findings.begin(), stats.findings.end(),
                       [&](const Finding &f) {
                           return f.message.find(needle) !=
                                  std::string::npos;
                       });
}

// ---------------------------------------------------------------------------
// Family 1: coroutine-lifetime escape analysis.
// ---------------------------------------------------------------------------

TEST(NdpLintFlow, EscapeFlagsBorrowsLiveAcrossSuspension)
{
    LintStats st = lintFixture("escape_bad.cc", {"coroutine-escape"});
    // cfg + out (after a co_await), name (string_view), stats (ref
    // capture). `s` is only used inside the co_await expression.
    ASSERT_EQ(st.findings.size(), 4U);
    EXPECT_TRUE(anyMessageContains(st, "by-reference parameter 'cfg'"));
    EXPECT_TRUE(anyMessageContains(st, "by-reference parameter 'out'"));
    EXPECT_TRUE(anyMessageContains(st, "string_view parameter 'name'"));
    EXPECT_TRUE(anyMessageContains(st, "by-reference capture 'stats'"));
    EXPECT_FALSE(anyMessageContains(st, "'s'"));
    for (const Finding &f : st.findings) {
        EXPECT_EQ(f.rule, "coroutine-escape");
        // Anchored at the signature, spanning to the bad use, so a
        // signature-level allow covers it.
        EXPECT_LE(f.line, f.endLine) << f.message;
    }
}

TEST(NdpLintFlow, EscapeStaysSilentOnSafeBorrows)
{
    LintStats st = lintFixture("escape_good.cc", {"coroutine-escape"});
    for (const Finding &f : st.findings)
        ADD_FAILURE() << f.message;
    EXPECT_EQ(st.suppressed, 0);
}

TEST(NdpLintFlow, EscapeSuppressedWithRationale)
{
    LintStats st =
        lintFixture("escape_suppressed.cc", {"coroutine-escape"});
    EXPECT_EQ(st.findings.size(), 0U);
    EXPECT_EQ(st.suppressed, 1);
}

TEST(NdpLintFlow, GeorepImplBorrowSuppressedWithRationale)
{
    // The core/georep idiom: a static member coroutine borrowing the
    // whole Impl by reference, suppressed with the joins-before-death
    // rationale. Pins both the suppression and its audit visibility.
    LintStats st =
        lintFixture("georep_suppressed.cc", {"coroutine-escape"});
    EXPECT_EQ(st.findings.size(), 0U);
    EXPECT_EQ(st.suppressed, 1);
    auto audit = ndp::lint::auditSuppressions(
        {ndp::lint::lexFile(fixturePath("georep_suppressed.cc"))});
    EXPECT_EQ(audit.total, 1); // one comment covering both rules
    EXPECT_EQ(audit.unrationaled, 0);
    EXPECT_NE(audit.text.find("outlives s.run()"), std::string::npos);
}

TEST(NdpLintFlow, Pr3UseAfterFreeFixtureIsFlagged)
{
    // The minimized PR 3 bug: a by-reference vector parameter indexed
    // on the next loop iteration, after the co_await suspended and the
    // caller's frame may have died.
    LintStats st =
        lintFixture("pr3_use_after_free.cc", {"coroutine-escape"});
    ASSERT_FALSE(st.findings.empty());
    EXPECT_TRUE(
        anyMessageContains(st, "by-reference parameter 'batches'"));
    EXPECT_TRUE(anyMessageContains(st, "across the suspending loop"));
    EXPECT_TRUE(anyMessageContains(st, "use-after-free"));
}

// ---------------------------------------------------------------------------
// Family 2: determinism taint.
// ---------------------------------------------------------------------------

TEST(NdpLintFlow, TaintFlagsEverySinkKind)
{
    LintStats st = lintFixture("taint_bad.cc", {"determinism-taint"});
    ASSERT_EQ(st.findings.size(), 4U);
    // Sink A via assignment propagation from a wall-clock read.
    EXPECT_TRUE(anyMessageContains(st, "report field 'rep.seconds'"));
    EXPECT_TRUE(anyMessageContains(st, "wall clock"));
    // Sink A via hash-order accumulation.
    EXPECT_TRUE(anyMessageContains(st, "report field 'agg.seconds'"));
    EXPECT_TRUE(anyMessageContains(st, "hash order"));
    // Sink B: trace serialization of a global-PRNG draw.
    EXPECT_TRUE(anyMessageContains(st, "trace event 'instant(...)'"));
    EXPECT_TRUE(anyMessageContains(st, "global PRNG"));
    // Sink C: wall time driving a scheduler billing decision.
    EXPECT_TRUE(
        anyMessageContains(st, "scheduler decision 'charge(...)'"));
}

TEST(NdpLintFlow, TaintStaysSilentOnSanctionedInputs)
{
    LintStats st = lintFixture("taint_good.cc", {"determinism-taint"});
    for (const Finding &f : st.findings)
        ADD_FAILURE() << f.message;
    EXPECT_EQ(st.suppressed, 0);
}

TEST(NdpLintFlow, TaintSuppressedWithRationale)
{
    LintStats st =
        lintFixture("taint_suppressed.cc", {"determinism-taint"});
    EXPECT_EQ(st.findings.size(), 0U);
    EXPECT_EQ(st.suppressed, 1);
}

TEST(NdpLintFlow, TaintPropagatesAcrossTranslationUnits)
{
    // The source TU defines wallSeconds() (reads the wall clock); the
    // sink TU assigns its result to a report field. Only the symbol
    // index can connect the two.
    LintOptions opt;
    opt.ruleFilter = {"determinism-taint"};
    opt.ignorePathScope = true;
    LintStats both = ndp::lint::runLint(
        {ndp::lint::lexFile(fixturePath("taint_xtu_source.cc")),
         ndp::lint::lexFile(fixturePath("taint_xtu_sink.cc"))},
        opt);
    ASSERT_EQ(both.findings.size(), 1U);
    EXPECT_NE(both.findings[0].path.find("taint_xtu_sink.cc"),
              std::string::npos);
    EXPECT_TRUE(anyMessageContains(both, "'wallSeconds()'"));
    EXPECT_TRUE(anyMessageContains(both, "wall clock"));

    // The sink alone has no local knowledge of wallSeconds: silent.
    LintStats alone = lintFixture("taint_xtu_sink.cc",
                                  {"determinism-taint"});
    EXPECT_EQ(alone.findings.size(), 0U);
}

// ---------------------------------------------------------------------------
// Family 3: scheduler / channel protocol checks.
// ---------------------------------------------------------------------------

const std::vector<std::string> kSchedRules = {
    "missing-batch-yield", "send-after-close", "channel-never-drained"};

TEST(NdpLintFlow, SchedBadFlagsOnePerRule)
{
    LintStats st = lintFixture("sched_bad.cc", kSchedRules);
    ASSERT_EQ(st.findings.size(), 3U);
    EXPECT_TRUE(anyMessageContains(st, "'greedyJob'"));
    EXPECT_TRUE(anyMessageContains(st, "unpreemptable"));
    EXPECT_TRUE(anyMessageContains(st, "put() on channel 'out'"));
    EXPECT_TRUE(anyMessageContains(st, "channel 'orphan'"));
    std::vector<std::string> rules;
    for (const Finding &f : st.findings)
        rules.push_back(f.rule);
    for (const std::string &r : kSchedRules)
        EXPECT_NE(std::find(rules.begin(), rules.end(), r),
                  rules.end())
            << r;
}

TEST(NdpLintFlow, SchedGoodIsSilent)
{
    LintStats st = lintFixture("sched_good.cc", kSchedRules);
    for (const Finding &f : st.findings)
        ADD_FAILURE() << f.message;
    EXPECT_EQ(st.suppressed, 0);
}

TEST(NdpLintFlow, SchedSuppressedWithRationale)
{
    LintStats st = lintFixture("sched_suppressed.cc", kSchedRules);
    EXPECT_EQ(st.findings.size(), 0U);
    EXPECT_EQ(st.suppressed, 3);
}

// ---------------------------------------------------------------------------
// Scope config (.ndplint.json).
// ---------------------------------------------------------------------------

TEST(NdpLintConfig, CheckedInJsonAgreesWithBuiltin)
{
    std::string err;
    ScopeConfig fileCfg = ScopeConfig::load(
        std::string(NDPLINT_REPO_DIR) + "/.ndplint.json", &err);
    ASSERT_TRUE(err.empty()) << err;
    ScopeConfig builtin = ScopeConfig::builtin();
    ASSERT_EQ(fileCfg.scopes.size(), builtin.scopes.size());
    for (const auto &[rule, scope] : builtin.scopes) {
        auto it = fileCfg.scopes.find(rule);
        ASSERT_NE(it, fileCfg.scopes.end()) << rule;
        EXPECT_EQ(it->second.include, scope.include) << rule;
        EXPECT_EQ(it->second.exclude, scope.exclude) << rule;
    }
}

TEST(NdpLintConfig, JsonParsingAndErrors)
{
    std::string err;
    ScopeConfig cfg = ScopeConfig::fromJson(
        R"({"scopes": {"my-rule": {"include": ["src/a"],
                                   "exclude": ["src/a/skip"]}}})",
        &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_TRUE(cfg.appliesTo("my-rule", "src/a/x.cc"));
    EXPECT_FALSE(cfg.appliesTo("my-rule", "src/b/x.cc"));
    EXPECT_FALSE(cfg.appliesTo("my-rule", "src/a/skip/x.cc"));
    // Rules with no entry apply everywhere.
    EXPECT_TRUE(cfg.appliesTo("other-rule", "anything/at/all.cc"));
    // Windows-style separators normalize before matching.
    EXPECT_TRUE(cfg.appliesTo("my-rule", "src\\a\\x.cc"));

    // Malformed input falls back to the builtin and reports why.
    err.clear();
    ScopeConfig bad = ScopeConfig::fromJson("{\"scopes\": oops", &err);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(bad.scopes.size(), ScopeConfig::builtin().scopes.size());
}

TEST(NdpLintConfig, FlowRulesScopedToSrc)
{
    ScopeConfig cfg = ScopeConfig::builtin();
    for (const char *rule : {"determinism-taint", "missing-batch-yield",
                             "channel-never-drained"}) {
        EXPECT_TRUE(cfg.appliesTo(rule, "src/core/online.cc")) << rule;
        EXPECT_FALSE(cfg.appliesTo(rule, "tools/ndplint/rules.cc"))
            << rule;
    }
}

TEST(NdpLintConfig, GeorepIsInsideTheDeterminismScope)
{
    // WAN replication draws seeded per-site RNG streams; the banned-
    // nondeterminism rule must cover it (explicitly, not only via the
    // broad "src/core" substring).
    ScopeConfig cfg = ScopeConfig::builtin();
    EXPECT_TRUE(cfg.appliesTo("banned-nondeterminism",
                              "src/core/georep/georep.cc"));
    EXPECT_TRUE(cfg.appliesTo("determinism-taint",
                              "src/core/georep/georep.cc"));
    auto it = cfg.scopes.find("banned-nondeterminism");
    ASSERT_NE(it, cfg.scopes.end());
    EXPECT_NE(std::find(it->second.include.begin(),
                        it->second.include.end(),
                        std::string("src/core/georep")),
              it->second.include.end());
}

// ---------------------------------------------------------------------------
// Suppression audit.
// ---------------------------------------------------------------------------

TEST(NdpLintAudit, RationaledSuppressionsPass)
{
    auto audit = ndp::lint::auditSuppressions(
        {ndp::lint::lexFile(fixturePath("escape_suppressed.cc")),
         ndp::lint::lexFile(fixturePath("sched_suppressed.cc"))});
    EXPECT_EQ(audit.total, 4);
    EXPECT_EQ(audit.unrationaled, 0);
    EXPECT_NE(audit.text.find("coroutine-escape"), std::string::npos);
}

TEST(NdpLintAudit, LegacySuppressionsAreFlagged)
{
    // suppress.cc deliberately keeps the legacy reason-less forms as a
    // lexer regression; the audit must call each of them out.
    auto audit = ndp::lint::auditSuppressions(
        {ndp::lint::lexFile(fixturePath("suppress.cc"))});
    EXPECT_GT(audit.total, 0);
    EXPECT_EQ(audit.unrationaled, audit.total);
    EXPECT_NE(audit.text.find("MISSING RATIONALE"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF output.
// ---------------------------------------------------------------------------

TEST(NdpLintSarif, RendersFindingsWithLocations)
{
    LintStats st =
        lintFixture("pr3_use_after_free.cc", {"coroutine-escape"});
    ASSERT_FALSE(st.findings.empty());
    std::string sarif = ndp::lint::renderSarif(st);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"coroutine-escape\""),
              std::string::npos);
    EXPECT_NE(sarif.find("pr3_use_after_free.cc"), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
    // The driver advertises every registered rule.
    EXPECT_NE(sarif.find("\"ndp-lint\""), std::string::npos);
    EXPECT_NE(sarif.find("determinism-taint"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hardened lexer.
// ---------------------------------------------------------------------------

TEST(NdpLintLexerHard, RawStringsSeparatorsAndSplicesAreOpaque)
{
    SourceFile f = ndp::lint::lexFile(fixturePath("lexer_hard.cc"));
    bool sawAfter = false;
    for (const auto &t : f.tokens) {
        if (t.kind != Tok::Identifier)
            continue;
        EXPECT_NE(t.text, "rand") << "line " << t.line;
        EXPECT_NE(t.text, "srand") << "line " << t.line;
        EXPECT_NE(t.text, "time") << "line " << t.line;
        EXPECT_NE(t.text, "steady_clock") << "line " << t.line;
        EXPECT_NE(t.text, "system_clock") << "line " << t.line;
        EXPECT_NE(t.text, "random_device") << "line " << t.line;
        if (t.text == "after")
            sawAfter = true;
    }
    // The lexer kept going past the raw strings and the splice.
    EXPECT_TRUE(sawAfter);

    // Relocated under the nondeterminism rule's scope, the fixture is
    // still silent: every banned name is inside a literal or comment.
    f.path = "src/sim/lexer_hard.cc";
    LintOptions opt;
    opt.ruleFilter = {"banned-nondeterminism"};
    LintStats st = ndp::lint::runLint({f}, opt);
    for (const Finding &fd : st.findings)
        ADD_FAILURE() << fd.message;
}

TEST(NdpLintLexerHard, DigitSeparatorsLexAsOneNumber)
{
    SourceFile f = ndp::lint::lexSource(
        "mem.cc", "long a = 1'000'000; unsigned m = 0xFF'00u;\n");
    int numbers = 0;
    for (const auto &t : f.tokens)
        if (t.kind == Tok::Number) {
            ++numbers;
            EXPECT_TRUE(t.text == "1'000'000" || t.text == "0xFF'00u")
                << t.text;
        }
    EXPECT_EQ(numbers, 2);
}

TEST(NdpLintLexerHard, RationaleSurvivesNestedParens)
{
    SourceFile f = ndp::lint::lexSource(
        "mem.cc",
        "int x; // ndplint: allow(rule-a: joined via s.run() later)\n");
    ASSERT_EQ(f.allows.count(1), 1U);
    EXPECT_EQ(f.allows.at(1).count("rule-a"), 1U);
    ASSERT_FALSE(f.suppressions.empty());
    EXPECT_EQ(f.suppressions.front().reason,
              "joined via s.run() later");
}

} // namespace
