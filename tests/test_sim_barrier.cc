/**
 * @file
 * Tests for the cyclic barrier and the straggler semantics it gives
 * the training simulators: weight synchronization couples a fleet to
 * its slowest member; FT-DMP does not.
 */

#include <gtest/gtest.h>

#include "core/training.h"
#include "sim/barrier.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"

using namespace ndp;
using namespace ndp::sim;
using namespace ndp::core;

namespace {

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
barrierWorker(Simulator &s, Barrier &b, double step, int rounds,
              std::vector<double> &finish_times, size_t idx,
              WaitGroup &wg)
{
    for (int r = 0; r < rounds; ++r) {
        co_await s.delay(step);
        co_await b.arrive();
    }
    finish_times[idx] = s.now();
    wg.done();
}

} // namespace

TEST(Barrier, AllPartiesReleaseTogether)
{
    Simulator s;
    Barrier b(s, 3);
    WaitGroup wg(s);
    wg.add(3);
    std::vector<double> finish(3, -1.0);
    s.spawn(barrierWorker(s, b, 1.0, 1, finish, 0, wg));
    s.spawn(barrierWorker(s, b, 2.0, 1, finish, 1, wg));
    s.spawn(barrierWorker(s, b, 3.0, 1, finish, 2, wg));
    s.run();
    // Everyone leaves at the slowest worker's time.
    for (double t : finish)
        EXPECT_DOUBLE_EQ(t, 3.0);
    EXPECT_EQ(b.completedRounds(), 1u);
}

TEST(Barrier, CyclicOverManyRounds)
{
    Simulator s;
    Barrier b(s, 2);
    WaitGroup wg(s);
    wg.add(2);
    std::vector<double> finish(2, -1.0);
    s.spawn(barrierWorker(s, b, 1.0, 5, finish, 0, wg));
    s.spawn(barrierWorker(s, b, 0.5, 5, finish, 1, wg));
    s.run();
    // Paced by the 1.0-second worker: 5 rounds of 1 s each.
    EXPECT_DOUBLE_EQ(finish[0], 5.0);
    EXPECT_DOUBLE_EQ(finish[1], 5.0);
    EXPECT_EQ(b.completedRounds(), 5u);
}

TEST(Barrier, SinglePartyNeverBlocks)
{
    Simulator s;
    Barrier b(s, 1);
    WaitGroup wg(s);
    wg.add(1);
    std::vector<double> finish(1, -1.0);
    s.spawn(barrierWorker(s, b, 0.25, 4, finish, 0, wg));
    s.run();
    EXPECT_DOUBLE_EQ(finish[0], 1.0);
    EXPECT_EQ(b.completedRounds(), 4u);
    EXPECT_EQ(b.waiting(), 0);
}

namespace {

ExperimentConfig
stragglerCfg()
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 200000;
    cfg.nStores = 4;
    return cfg;
}

} // namespace

TEST(Straggler, FtDmpOnlyPaysForTheSlowShard)
{
    auto cfg = stragglerCfg();
    TrainOptions uniform;
    uniform.nRun = 1;
    TrainOptions straggle = uniform;
    straggle.storeSpeedFactor = {0.5, 1.0, 1.0, 1.0};

    auto base = runFtDmpTraining(cfg, uniform);
    auto slow = runFtDmpTraining(cfg, straggle);
    // One of four shards takes 2x: end-to-end grows toward the slow
    // store's finish (~2x the per-store FE time), never 2x overall+.
    EXPECT_GT(slow.seconds, base.seconds * 1.2);
    EXPECT_LT(slow.seconds, base.seconds * 2.2);
}

TEST(Straggler, WeightSyncCouplesTheFleet)
{
    auto cfg = stragglerCfg();
    TrainOptions fc;
    fc.cut = cfg.model->numBlocks();
    fc.nRun = 1;
    TrainOptions fc_slow = fc;
    fc_slow.storeSpeedFactor = {0.5, 1.0, 1.0, 1.0};

    auto base = runFtDmpTraining(cfg, fc);
    auto slow = runFtDmpTraining(cfg, fc_slow);
    // The barrier forces every store to the straggler's pace whenever
    // compute (not the shared link) dominates an iteration; the whole
    // fleet slows down, not just one shard.
    EXPECT_GT(slow.seconds, base.seconds * 1.05);
}

TEST(Straggler, FasterStoreHelpsFtDmp)
{
    auto cfg = stragglerCfg();
    TrainOptions boost;
    boost.nRun = 1;
    boost.storeSpeedFactor = {2.0, 2.0, 2.0, 2.0};
    auto base = runFtDmpTraining(cfg, TrainOptions{});
    auto fast = runFtDmpTraining(cfg, boost);
    EXPECT_LT(fast.stages.computeS, base.stages.computeS);
}

TEST(Straggler, SpeedOfDefaultsToOne)
{
    TrainOptions opt;
    EXPECT_DOUBLE_EQ(opt.speedOf(0), 1.0);
    EXPECT_DOUBLE_EQ(opt.speedOf(100), 1.0);
    opt.storeSpeedFactor = {0.25};
    EXPECT_DOUBLE_EQ(opt.speedOf(0), 0.25);
    EXPECT_DOUBLE_EQ(opt.speedOf(1), 1.0);
    EXPECT_DOUBLE_EQ(opt.speedOf(-1), 1.0);
}
