/**
 * @file
 * Refactor parity harness: the pipeline-engine rebuild of the
 * inference/training/media simulators must reproduce the seed
 * implementation's figure numbers. Golden values were captured at
 * %.17g precision by running the Fig. 5/6/12/13/15 configurations
 * (plus the media and straggler paths) through the public run* APIs;
 * every assertion here allows 1e-6 relative tolerance. If one of
 * these fires, a refactor changed simulated physics, not just code
 * structure.
 *
 * Re-baselined for the net::NetFabric migration: every inter-node
 * transfer now crosses the shared max-min-fair fabric instead of the
 * old half-duplex hw::Link, which doubles per-hop propagation latency
 * (store uplink + destination downlink) and replaces FIFO link
 * queueing with fluid fair sharing. All shifts were < 2% and every
 * figure keeps its paper shape.
 */

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/media.h"
#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

namespace {

constexpr double kRelTol = 1e-6;

void
expectRel(double actual, double golden, const char *what)
{
    EXPECT_NEAR(actual, golden, std::abs(golden) * kRelTol + 1e-12)
        << what;
}

} // namespace

TEST(RefactorParity, Fig5aSrvFineTuningBottleneck)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.npe.pipelined = false;
    cfg.nImages = 1200000;
    auto typ = runSrvFineTuning(cfg, SrvVariant::Preprocessed,
                                kDefaultTunerEpochs, true);
    auto ideal = runSrvFineTuning(cfg, SrvVariant::Ideal,
                                  kDefaultTunerEpochs, true);
    expectRel(typ.seconds, 650.81331574959518, "fig5a.typ.seconds");
    expectRel(typ.dataTrafficBytes, 722400000000.0,
              "fig5a.typ.dataTrafficBytes");
    expectRel(ideal.seconds, 219.15069244193256, "fig5a.ideal.seconds");
}

TEST(RefactorParity, Fig5bSrvInferenceBottleneck)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.npe.pipelined = false;
    cfg.nImages = 20000;
    auto typ = runSrvOfflineInference(cfg, SrvVariant::RawRemote);
    auto ideal = runSrvOfflineInference(cfg, SrvVariant::RawLocal);
    expectRel(typ.ips, 71.952730408301761, "fig5b.typ.ips");
    expectRel(typ.netBytes, 54000000000.0, "fig5b.typ.netBytes");
    expectRel(ideal.ips, 119.60106955382959, "fig5b.ideal.ips");
}

TEST(RefactorParity, Fig6aNaiveNdpStageTimes)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 4;
    cfg.nImages = 1200000;
    auto typ = runSrvFineTuning(cfg, SrvVariant::Preprocessed,
                                kDefaultTunerEpochs, true);
    TrainOptions naive;
    naive.cut = cfg.model->numBlocks(); // "+FC"
    naive.nRun = 1;
    naive.pipelined = false;
    auto ndp = runFtDmpTraining(cfg, naive);

    expectRel(typ.stages.readS, 904.87520000021505, "fig6a.typ.readS");
    expectRel(typ.stages.transferS, 577.92000000001394,
              "fig6a.typ.transferS");
    expectRel(typ.stages.computeS, 292.95781105106784,
              "fig6a.typ.computeS");
    expectRel(typ.stages.tunerS, 72.656162499802008, "fig6a.typ.tunerS");
    expectRel(typ.seconds, 650.81331574959518, "fig6a.typ.seconds");
    expectRel(ndp.stages.readS, 904.87520000021505, "fig6a.ndp.readS");
    expectRel(ndp.stages.computeS, 645.75437998437167,
              "fig6a.ndp.computeS");
    expectRel(ndp.stages.syncS, 491.81245439989391, "fig6a.ndp.syncS");
    expectRel(ndp.syncTrafficBytes, 614765568000.0,
              "fig6a.ndp.syncTrafficBytes");
    expectRel(ndp.seconds, 879.84488939613436, "fig6a.ndp.seconds");
}

TEST(RefactorParity, Fig6bNaiveNpeInference)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 4;
    cfg.nImages = 1000;
    cfg.npe = NpeOptions::naive();
    cfg.npe.pipelined = true;
    auto ndp = runNdpOfflineInference(cfg);
    auto typ = runSrvOfflineInference(cfg, SrvVariant::RawRemote);
    expectRel(ndp.ips, 61.360433460345824, "fig6b.ndp.ips");
    expectRel(typ.ips, 120.27736902661046, "fig6b.typ.ips");
}

TEST(RefactorParity, Fig12NpeOptimizationLevels)
{
    struct Level
    {
        NpeOptions npe;
        double ips, seconds, readS, decompressS, preprocessS, computeS;
    };
    const Level levels[] = {
        {NpeOptions::naive(), 15.399673368806901, 3246.8221112584401,
         0.003375, 0.0, 0.064935064935064929, 0.000914018762774047},
        {NpeOptions::withOffload(), 1090.778559096143,
         45.838818138698777, 0.00075250000000000002, 0.0, 0.0,
         0.000914018762774047},
        {NpeOptions::withCompression(), 1090.8915349647425,
         45.834070938698773, 0.00021499999999999999, 0.0002408, 0.0,
         0.000914018762774047},
        {NpeOptions::withBatch(), 2122.2386795870734,
         23.560026721277442, 0.00021499999999999999, 0.0002408, 0.0,
         0.00046970408642555192},
    };
    for (const Level &lv : levels) {
        ExperimentConfig cfg;
        cfg.model = &models::resnet50();
        cfg.nStores = 1;
        cfg.nImages = 50000;
        cfg.npe = lv.npe;
        auto r = runNdpOfflineInference(cfg);
        expectRel(r.ips, lv.ips, "fig12 ips");
        expectRel(r.seconds, lv.seconds, "fig12 seconds");
        auto st = npeStageTimes(cfg, cfg.npe, false);
        expectRel(st.readS, lv.readS, "fig12 readS");
        expectRel(st.decompressS, lv.decompressS, "fig12 decompressS");
        expectRel(st.preprocessS, lv.preprocessS, "fig12 preprocessS");
        expectRel(st.computeS, lv.computeS, "fig12 computeS");
    }
}

TEST(RefactorParity, Fig13InferenceScaling)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 200000;
    expectRel(runSrvOfflineInference(cfg, SrvVariant::Ideal).ips,
              8185.8420689995328, "fig13.srvI.ips");
    expectRel(runSrvOfflineInference(cfg, SrvVariant::Preprocessed).ips,
              2073.1567385821741, "fig13.srvP.ips");
    expectRel(runSrvOfflineInference(cfg, SrvVariant::Compressed).ips,
              7236.857305812212, "fig13.srvC.ips");

    struct Point
    {
        int stores;
        double ips;
    };
    const Point points[] = {{1, 2126.2020022606866},
                            {4, 8488.2629761399821},
                            {10, 21138.377452314482},
                            {20, 42005.305879475934}};
    for (const Point &p : points) {
        cfg.nStores = p.stores;
        auto r = runNdpOfflineInference(cfg);
        expectRel(r.ips, p.ips, "fig13 ndp ips");
        expectRel(r.netBytes, 3200000.0, "fig13 ndp netBytes");
    }
}

TEST(RefactorParity, Fig15TrainingScaling)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;
    auto srv = runSrvFineTuning(cfg);
    expectRel(srv.seconds, 237.96954621593122, "fig15.srvC.seconds");

    struct Point
    {
        int stores;
        double seconds, feIps, energyJ;
    };
    const Point points[] = {
        {1, 591.96890194796856, 2113.6065334070431, 194985.38835665534},
        {4, 169.15313608838377, 8279.660213661733, 145913.16025535369},
        {10, 92.820900232641222, 19877.375481176248,
         161205.44142115579}};
    TrainOptions opt;
    for (const Point &p : points) {
        cfg.nStores = p.stores;
        auto r = runFtDmpTraining(cfg, opt);
        expectRel(r.seconds, p.seconds, "fig15 ndp seconds");
        expectRel(r.feIps, p.feIps, "fig15 ndp feIps");
        expectRel(r.dataTrafficBytes, 4920000000.0,
                  "fig15 ndp dataTrafficBytes");
        expectRel(r.energyJ, p.energyJ, "fig15 ndp energyJ");
    }
}

TEST(RefactorParity, MediaExtensionVideo)
{
    ExperimentConfig cfg;
    auto media = videoMedia();
    auto ndp = runNdpMediaAnalysis(cfg, media, 2000);
    auto srv = runSrvMediaAnalysis(cfg, media, 2000);
    expectRel(ndp.seconds, 301.14535125309686, "media.video.ndp.seconds");
    expectRel(ndp.netBytes, 3072000.0, "media.video.ndp.netBytes");
    expectRel(srv.seconds, 353.77192381399914, "media.video.srv.seconds");
    expectRel(srv.netBytes, 440000000000.0, "media.video.srv.netBytes");
}

TEST(RefactorParity, StragglerSpeedFactors)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 400000;
    cfg.nStores = 4;
    TrainOptions ft;
    ft.nRun = 1;
    ft.storeSpeedFactor.assign(4, 1.0);
    ft.storeSpeedFactor[0] = 0.5;
    expectRel(runFtDmpTraining(cfg, ft).seconds, 118.54690188093313,
              "straggler.ft.seconds");
}
