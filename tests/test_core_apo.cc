/**
 * @file
 * Tests for APO: FindBestPoint's cut choice, Algorithm 1's store
 * selection, and sensitivity to bandwidth and hardware.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "core/apo.h"

using namespace ndp;
using namespace ndp::core;

namespace {

ExperimentConfig
apoCfg()
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;
    cfg.nStores = 4;
    return cfg;
}

} // namespace

TEST(Apo, BestCutIsClassifierBoundaryForResnet)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto c = findBestPoint(cfg, opt);
    // Fig. 9: the shortest training time is after +Conv5 — everything
    // but the classifier offloaded.
    EXPECT_EQ(c.cut, cfg.model->classifierStart());
}

TEST(Apo, NeverSplitsClassifierOntoStores)
{
    for (const models::ModelSpec *m : models::allModels()) {
        ExperimentConfig cfg = apoCfg();
        cfg.model = m;
        TrainOptions opt;
        auto c = findBestPoint(cfg, opt);
        EXPECT_FALSE(m->cutSplitsClassifier(c.cut)) << m->name();
    }
}

TEST(Apo, PicksEightStoresForResnet50)
{
    // Fig. 11: APO selects 8 PipeStores for ResNet50 on the paper's
    // hardware and 10 Gbps network.
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 20);
    EXPECT_EQ(r.bestStores, 8);
}

TEST(Apo, SweepCoversRangeAndTracksBest)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 12);
    ASSERT_EQ(r.sweep.size(), 12u);
    double best_diff = 1e300;
    int best_n = 0;
    for (const auto &p : r.sweep) {
        if (p.tDiff < best_diff) {
            best_diff = p.tDiff;
            best_n = p.nStores;
        }
    }
    EXPECT_EQ(r.bestStores, best_n);
}

TEST(Apo, StoreStageShrinksWithMoreStores)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 10);
    for (size_t i = 1; i < r.sweep.size(); ++i) {
        EXPECT_LT(r.sweep[i].choice.storeStageS,
                  r.sweep[i - 1].choice.storeStageS);
        // Tuner stage is independent of the store count.
        EXPECT_NEAR(r.sweep[i].choice.tunerStageS,
                    r.sweep[0].choice.tunerStageS, 1e-9);
    }
}

TEST(Apo, PredictedTotalDecreasesWithStores)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 10);
    for (size_t i = 1; i < r.sweep.size(); ++i) {
        EXPECT_LE(r.sweep[i].choice.predictedTotalS,
                  r.sweep[i - 1].choice.predictedTotalS + 1e-9);
    }
}

TEST(Apo, LowBandwidthPrefersDeeperCut)
{
    // At 1 Gbps, shipping early-layer activations is hopeless; the
    // best cut must still be the classifier boundary, and the
    // predicted network stage must dominate shallow cuts.
    auto cfg = apoCfg();
    cfg.networkGbps = 1.0;
    TrainOptions opt;
    auto best = findBestPoint(cfg, opt);
    EXPECT_EQ(best.cut, cfg.model->classifierStart());
    auto shallow = evaluateCut(cfg, opt, 1);
    EXPECT_GT(shallow.netStageS, best.netStageS * 10.0);
}

TEST(Apo, UnpipelinedPredictionIsSlower)
{
    auto cfg = apoCfg();
    TrainOptions piped;
    piped.nRun = 3;
    TrainOptions serial = piped;
    serial.pipelined = false;
    auto a = evaluateCut(cfg, piped, cfg.model->classifierStart());
    auto b = evaluateCut(cfg, serial, cfg.model->classifierStart());
    EXPECT_LT(a.predictedTotalS, b.predictedTotalS);
}

TEST(Apo, SlowerStoresNeedMoreOfThem)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    int t4_pick = findBestOrganization(cfg, opt, 40).bestStores;
    cfg.storeSpec = hw::inf12xlarge();
    int inf1_pick = findBestOrganization(cfg, opt, 40).bestStores;
    EXPECT_GT(inf1_pick, t4_pick);
}

TEST(Apo, PredictionTracksSimulatorWithinTolerance)
{
    auto cfg = apoCfg();
    cfg.nStores = 8;
    TrainOptions opt;
    auto predicted = findBestPoint(cfg, opt);
    auto measured = runFtDmpTraining(cfg, opt);
    EXPECT_NEAR(predicted.predictedTotalS, measured.seconds,
                measured.seconds * 0.25);
}

TEST(Apo, TransferSizeReportedPerCut)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto c = evaluateCut(cfg, opt, 0);
    EXPECT_DOUBLE_EQ(c.transferMBPerImage, cfg.model->inputMB());
}

// ---- Global APO (planJobs) ------------------------------------------

namespace {

/** Bit-level equality of two PartitionChoices. */
void
expectSameChoice(const PartitionChoice &a, const PartitionChoice &b)
{
    EXPECT_EQ(a.cut, b.cut);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.storeStageS),
              std::bit_cast<uint64_t>(b.storeStageS));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.netStageS),
              std::bit_cast<uint64_t>(b.netStageS));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.tunerStageS),
              std::bit_cast<uint64_t>(b.tunerStageS));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.predictedTotalS),
              std::bit_cast<uint64_t>(b.predictedTotalS));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.transferMBPerImage),
              std::bit_cast<uint64_t>(b.transferMBPerImage));
}

} // namespace

TEST(GlobalApo, SingleJobReducesBitExactlyToAlgorithm1)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    ApoResult classic = findBestOrganization(cfg, opt, 20);

    ApoJobSpec job;
    job.name = "only";
    job.model = cfg.model;
    job.nImages = cfg.nImages;
    job.train = opt;
    GlobalApoResult g = planJobs(cfg, {job}, 20);

    ASSERT_EQ(g.jobs.size(), 1u);
    EXPECT_EQ(g.jobs[0].nStores, classic.bestStores);
    EXPECT_EQ(g.jobs[0].firstStore, 0);
    expectSameChoice(g.jobs[0].choice, classic.bestChoice);
    EXPECT_EQ(std::bit_cast<uint64_t>(g.makespanS),
              std::bit_cast<uint64_t>(
                  classic.bestChoice.predictedTotalS));
}

TEST(GlobalApo, RefactoredSweepMatchesAlgorithm1)
{
    // findBestOrganization == selectBalanced(sweepOrganizations(...))
    // bit-for-bit — the refactor seam planJobs() builds on.
    auto cfg = apoCfg();
    TrainOptions opt;
    ApoResult whole = findBestOrganization(cfg, opt, 12);
    ApoResult split = selectBalanced(sweepOrganizations(cfg, opt, 12));
    EXPECT_EQ(whole.bestStores, split.bestStores);
    expectSameChoice(whole.bestChoice, split.bestChoice);
    ASSERT_EQ(whole.sweep.size(), split.sweep.size());
    for (size_t i = 0; i < whole.sweep.size(); ++i) {
        EXPECT_EQ(whole.sweep[i].nStores, split.sweep[i].nStores);
        expectSameChoice(whole.sweep[i].choice, split.sweep[i].choice);
    }
}

TEST(GlobalApo, PartitionIsExactDisjointAndContiguous)
{
    auto cfg = apoCfg();
    std::vector<ApoJobSpec> jobs;
    jobs.push_back({"r50", &models::resnet50(), 1200000, {}});
    jobs.push_back({"shuffle", &models::shufflenetV2(), 600000, {}});
    jobs.push_back({"incept", &models::inceptionV3(), 400000, {}});
    const int fleet = 10;
    GlobalApoResult g = planJobs(cfg, jobs, fleet);
    ASSERT_EQ(g.jobs.size(), jobs.size());
    int next = 0, total = 0;
    double worst = 0.0;
    for (const ApoJobPlan &p : g.jobs) {
        EXPECT_GE(p.nStores, 1);
        EXPECT_EQ(p.firstStore, next) << p.name;
        next += p.nStores;
        total += p.nStores;
        worst = std::max(worst, p.choice.predictedTotalS);
    }
    EXPECT_EQ(total, fleet);
    // The reported makespan is exactly the slowest job's prediction.
    EXPECT_EQ(std::bit_cast<uint64_t>(g.makespanS),
              std::bit_cast<uint64_t>(worst));
}

TEST(GlobalApo, IdenticalJobsSplitTheFleetEvenly)
{
    auto cfg = apoCfg();
    ApoJobSpec a{"a", &models::resnet50(), 1200000, {}};
    ApoJobSpec b{"b", &models::resnet50(), 1200000, {}};
    GlobalApoResult g = planJobs(cfg, {a, b}, 8);
    ASSERT_EQ(g.jobs.size(), 2u);
    EXPECT_EQ(g.jobs[0].nStores, 4);
    EXPECT_EQ(g.jobs[1].nStores, 4);
    EXPECT_EQ(g.jobs[0].firstStore, 0);
    EXPECT_EQ(g.jobs[1].firstStore, 4);
    expectSameChoice(g.jobs[0].choice, g.jobs[1].choice);
}

TEST(GlobalApo, HeavierJobGetsMoreStores)
{
    auto cfg = apoCfg();
    ApoJobSpec heavy{"heavy", &models::resnext101(), 1200000, {}};
    ApoJobSpec light{"light", &models::shufflenetV2(), 300000, {}};
    GlobalApoResult g = planJobs(cfg, {heavy, light}, 10);
    EXPECT_GT(g.jobs[0].nStores, g.jobs[1].nStores);
}

TEST(GlobalApo, DeterministicAcrossCalls)
{
    auto cfg = apoCfg();
    std::vector<ApoJobSpec> jobs;
    jobs.push_back({"r50", &models::resnet50(), 1200000, {}});
    jobs.push_back({"vgg-ish", &models::resnext101(), 800000, {}});
    GlobalApoResult g1 = planJobs(cfg, jobs, 9);
    GlobalApoResult g2 = planJobs(cfg, jobs, 9);
    EXPECT_EQ(std::bit_cast<uint64_t>(g1.makespanS),
              std::bit_cast<uint64_t>(g2.makespanS));
    ASSERT_EQ(g1.jobs.size(), g2.jobs.size());
    for (size_t i = 0; i < g1.jobs.size(); ++i) {
        EXPECT_EQ(g1.jobs[i].nStores, g2.jobs[i].nStores);
        EXPECT_EQ(g1.jobs[i].firstStore, g2.jobs[i].firstStore);
        expectSameChoice(g1.jobs[i].choice, g2.jobs[i].choice);
    }
}

TEST(GlobalApo, RejectsEmptyAndOversubscribed)
{
    auto cfg = apoCfg();
    EXPECT_THROW(planJobs(cfg, {}, 8), std::invalid_argument);
    ApoJobSpec j{"x", &models::resnet50(), 1000, {}};
    EXPECT_THROW(planJobs(cfg, {j, j, j}, 2), std::invalid_argument);
}
