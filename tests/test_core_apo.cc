/**
 * @file
 * Tests for APO: FindBestPoint's cut choice, Algorithm 1's store
 * selection, and sensitivity to bandwidth and hardware.
 */

#include <gtest/gtest.h>

#include "core/apo.h"

using namespace ndp;
using namespace ndp::core;

namespace {

ExperimentConfig
apoCfg()
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 1200000;
    cfg.nStores = 4;
    return cfg;
}

} // namespace

TEST(Apo, BestCutIsClassifierBoundaryForResnet)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto c = findBestPoint(cfg, opt);
    // Fig. 9: the shortest training time is after +Conv5 — everything
    // but the classifier offloaded.
    EXPECT_EQ(c.cut, cfg.model->classifierStart());
}

TEST(Apo, NeverSplitsClassifierOntoStores)
{
    for (const models::ModelSpec *m : models::allModels()) {
        ExperimentConfig cfg = apoCfg();
        cfg.model = m;
        TrainOptions opt;
        auto c = findBestPoint(cfg, opt);
        EXPECT_FALSE(m->cutSplitsClassifier(c.cut)) << m->name();
    }
}

TEST(Apo, PicksEightStoresForResnet50)
{
    // Fig. 11: APO selects 8 PipeStores for ResNet50 on the paper's
    // hardware and 10 Gbps network.
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 20);
    EXPECT_EQ(r.bestStores, 8);
}

TEST(Apo, SweepCoversRangeAndTracksBest)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 12);
    ASSERT_EQ(r.sweep.size(), 12u);
    double best_diff = 1e300;
    int best_n = 0;
    for (const auto &p : r.sweep) {
        if (p.tDiff < best_diff) {
            best_diff = p.tDiff;
            best_n = p.nStores;
        }
    }
    EXPECT_EQ(r.bestStores, best_n);
}

TEST(Apo, StoreStageShrinksWithMoreStores)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 10);
    for (size_t i = 1; i < r.sweep.size(); ++i) {
        EXPECT_LT(r.sweep[i].choice.storeStageS,
                  r.sweep[i - 1].choice.storeStageS);
        // Tuner stage is independent of the store count.
        EXPECT_NEAR(r.sweep[i].choice.tunerStageS,
                    r.sweep[0].choice.tunerStageS, 1e-9);
    }
}

TEST(Apo, PredictedTotalDecreasesWithStores)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto r = findBestOrganization(cfg, opt, 10);
    for (size_t i = 1; i < r.sweep.size(); ++i) {
        EXPECT_LE(r.sweep[i].choice.predictedTotalS,
                  r.sweep[i - 1].choice.predictedTotalS + 1e-9);
    }
}

TEST(Apo, LowBandwidthPrefersDeeperCut)
{
    // At 1 Gbps, shipping early-layer activations is hopeless; the
    // best cut must still be the classifier boundary, and the
    // predicted network stage must dominate shallow cuts.
    auto cfg = apoCfg();
    cfg.networkGbps = 1.0;
    TrainOptions opt;
    auto best = findBestPoint(cfg, opt);
    EXPECT_EQ(best.cut, cfg.model->classifierStart());
    auto shallow = evaluateCut(cfg, opt, 1);
    EXPECT_GT(shallow.netStageS, best.netStageS * 10.0);
}

TEST(Apo, UnpipelinedPredictionIsSlower)
{
    auto cfg = apoCfg();
    TrainOptions piped;
    piped.nRun = 3;
    TrainOptions serial = piped;
    serial.pipelined = false;
    auto a = evaluateCut(cfg, piped, cfg.model->classifierStart());
    auto b = evaluateCut(cfg, serial, cfg.model->classifierStart());
    EXPECT_LT(a.predictedTotalS, b.predictedTotalS);
}

TEST(Apo, SlowerStoresNeedMoreOfThem)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    int t4_pick = findBestOrganization(cfg, opt, 40).bestStores;
    cfg.storeSpec = hw::inf12xlarge();
    int inf1_pick = findBestOrganization(cfg, opt, 40).bestStores;
    EXPECT_GT(inf1_pick, t4_pick);
}

TEST(Apo, PredictionTracksSimulatorWithinTolerance)
{
    auto cfg = apoCfg();
    cfg.nStores = 8;
    TrainOptions opt;
    auto predicted = findBestPoint(cfg, opt);
    auto measured = runFtDmpTraining(cfg, opt);
    EXPECT_NEAR(predicted.predictedTotalS, measured.seconds,
                measured.seconds * 0.25);
}

TEST(Apo, TransferSizeReportedPerCut)
{
    auto cfg = apoCfg();
    TrainOptions opt;
    auto c = evaluateCut(cfg, opt, 0);
    EXPECT_DOUBLE_EQ(c.transferMBPerImage, cfg.model->inputMB());
}
