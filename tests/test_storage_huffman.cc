/**
 * @file
 * Tests for the canonical Huffman coder and the full LZ77+Huffman
 * stack, including entropy-bound checks and corruption handling.
 */

#include <gtest/gtest.h>

#include "sim/random.h"
#include "storage/huffman.h"
#include "storage/photo_gen.h"

using namespace ndp;
using namespace ndp::storage;

namespace {

void
expectRoundTrip(const Bytes &input)
{
    Bytes c = huffmanEncode(input);
    auto d = huffmanDecode(c);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, input);
}

} // namespace

TEST(Huffman, EmptyInput)
{
    expectRoundTrip({});
}

TEST(Huffman, SingleSymbolRepeated)
{
    expectRoundTrip(Bytes(10000, 'a'));
    // One symbol at one bit each: ~1250 bytes + 264 header.
    Bytes c = huffmanEncode(Bytes(10000, 'a'));
    EXPECT_LT(c.size(), 10000u / 4);
}

TEST(Huffman, SingleByte)
{
    expectRoundTrip({0xff});
}

TEST(Huffman, TwoSymbols)
{
    Bytes input;
    for (int i = 0; i < 1000; ++i)
        input.push_back(i % 3 == 0 ? 'x' : 'y');
    expectRoundTrip(input);
}

TEST(Huffman, AllByteValues)
{
    Bytes input;
    for (int v = 0; v < 256; ++v) {
        for (int k = 0; k <= v; ++k)
            input.push_back(static_cast<uint8_t>(v));
    }
    expectRoundTrip(input);
}

TEST(Huffman, SkewedDistributionNearsEntropyBound)
{
    // 90% one symbol, 10% spread: entropy well below 8 bits/byte.
    Rng rng(1);
    Bytes input(100000);
    for (auto &b : input)
        b = rng.chance(0.9) ? 0
                            : static_cast<uint8_t>(rng.below(256));
    double h = byteEntropy(input);
    Bytes c = huffmanEncode(input);
    double bits_per_byte =
        8.0 * static_cast<double>(c.size() - 264) / input.size();
    // Huffman is within 1 bit/symbol of entropy (its classic bound);
    // this skewed distribution sits near the worst case.
    EXPECT_LT(bits_per_byte, h + 1.0);
    EXPECT_GE(bits_per_byte, h - 0.05);
    expectRoundTrip(input);
}

TEST(Huffman, UniformRandomBarelyGrows)
{
    Rng rng(2);
    Bytes input(50000);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.nextU64());
    Bytes c = huffmanEncode(input);
    EXPECT_LT(c.size(), input.size() + 300);
    expectRoundTrip(input);
}

TEST(Huffman, RejectsBadMagic)
{
    Bytes c = huffmanEncode(Bytes(100, 'z'));
    c[1] = '!';
    EXPECT_FALSE(huffmanDecode(c).has_value());
}

TEST(Huffman, RejectsTruncatedBitstream)
{
    Bytes c = huffmanEncode(Bytes(1000, 'q'));
    c.resize(c.size() - 1);
    // 1000 one-bit codes -> dropping the tail loses symbols.
    EXPECT_FALSE(huffmanDecode(c).has_value());
}

TEST(Huffman, RejectsHeaderOnly)
{
    EXPECT_FALSE(huffmanDecode(Bytes{'N', 'D', 'H', 'F'}).has_value());
}

TEST(FullStack, CompressesTensorsBetterThanLz77Alone)
{
    PhotoGenerator gen;
    Bytes pre = gen.preprocessedBinary(3);
    Bytes lz = deflateLite(pre);
    Bytes full = deflateFull(pre);
    EXPECT_LT(full.size(), lz.size());
    auto d = inflateFull(full);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, pre);
}

TEST(FullStack, RoundTripsRawPhotos)
{
    PhotoGenerator gen;
    Bytes raw = gen.rawPhoto(4);
    auto d = inflateFull(deflateFull(raw));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, raw);
}

TEST(FullStack, RejectsCorruption)
{
    // A varied payload: a flipped byte must change decoded symbols.
    // (An all-identical payload has a 1-symbol Huffman table where
    // every bit decodes to the same byte, so corruption there is
    // legitimately invisible without a checksum.)
    Bytes payload;
    for (int i = 0; i < 5000; ++i)
        payload.push_back(static_cast<uint8_t>((i * 7) % 251));
    Bytes full = deflateFull(payload);
    full[full.size() / 2] ^= 0xa5;
    auto d = inflateFull(full);
    // Either a layer rejects it, or the output differs.
    if (d.has_value()) {
        EXPECT_NE(*d, payload);
    }
}

TEST(Entropy, KnownValues)
{
    EXPECT_DOUBLE_EQ(byteEntropy({}), 0.0);
    EXPECT_DOUBLE_EQ(byteEntropy(Bytes(100, 'a')), 0.0);
    Bytes half;
    for (int i = 0; i < 100; ++i)
        half.push_back(i % 2 ? 'a' : 'b');
    EXPECT_NEAR(byteEntropy(half), 1.0, 1e-9);
}

class HuffmanProperty : public ::testing::TestWithParam<size_t>
{
};

INSTANTIATE_TEST_SUITE_P(Sizes, HuffmanProperty,
                         ::testing::Values(1, 2, 255, 256, 4093,
                                           65537));

TEST_P(HuffmanProperty, RoundTripsStructuredPayloads)
{
    size_t n = GetParam();
    Rng rng(4000 + n);
    Bytes input(n);
    for (size_t i = 0; i < n; ++i) {
        // Mixture: runs, ramps, and noise.
        double r = rng.uniform();
        if (r < 0.4)
            input[i] = 7;
        else if (r < 0.7)
            input[i] = static_cast<uint8_t>(i % 31);
        else
            input[i] = static_cast<uint8_t>(rng.below(256));
    }
    expectRoundTrip(input);
    auto full = inflateFull(deflateFull(input));
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(*full, input);
}
