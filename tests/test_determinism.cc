/**
 * @file
 * Determinism smoke test: the simulator must be a pure function of its
 * configuration. Every dataflow is run twice in-process and the report
 * structs compared *bit-identically* (doubles via std::bit_cast, not a
 * tolerance) — this is the runtime counterpart of ndp-lint's
 * banned-nondeterminism and float-accum-order rules, and the property
 * every figure in the paper reproduction depends on.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include <string>

#include "core/inference.h"
#include "core/media.h"
#include "core/online.h"
#include "core/sched/cluster.h"
#include "core/training.h"
#include "obs/monitor.h"
#include "obs/trace.h"

namespace {

using namespace ndp::core;

/** Exact double equality via the bit pattern (catches -0.0 vs 0.0 and
 *  last-ulp drift that EXPECT_DOUBLE_EQ would wave through). */
#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs across runs: " << (a) << " vs " << (b)

void
expectSameStages(const StageMetrics &a, const StageMetrics &b)
{
    EXPECT_BITEQ(a.readS, b.readS);
    EXPECT_BITEQ(a.decompressS, b.decompressS);
    EXPECT_BITEQ(a.preprocessS, b.preprocessS);
    EXPECT_BITEQ(a.transferS, b.transferS);
    EXPECT_BITEQ(a.computeS, b.computeS);
    EXPECT_BITEQ(a.tunerS, b.tunerS);
    EXPECT_BITEQ(a.syncS, b.syncS);
    EXPECT_BITEQ(a.readBytes, b.readBytes);
    EXPECT_BITEQ(a.wireBytes, b.wireBytes);
    EXPECT_BITEQ(a.shipBytes, b.shipBytes);
    EXPECT_EQ(a.itemsDone, b.itemsDone);
    EXPECT_BITEQ(a.lastItemS, b.lastItemS);
    EXPECT_BITEQ(a.diskUtil, b.diskUtil);
    EXPECT_BITEQ(a.cpuUtil, b.cpuUtil);
    EXPECT_BITEQ(a.gpuUtil, b.gpuUtil);
}

void
expectSamePower(const ndp::hw::PowerBreakdown &a,
                const ndp::hw::PowerBreakdown &b)
{
    EXPECT_BITEQ(a.gpuW, b.gpuW);
    EXPECT_BITEQ(a.cpuW, b.cpuW);
    EXPECT_BITEQ(a.otherW, b.otherW);
}

void
expectSamePerServer(const std::vector<ndp::hw::ServerPowerSample> &a,
                    const std::vector<ndp::hw::ServerPowerSample> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].server, b[i].server);
        expectSamePower(a[i].power, b[i].power);
    }
}

void
expectSameNet(const ndp::net::NetReport &a, const ndp::net::NetReport &b)
{
    EXPECT_BITEQ(a.bytesMoved, b.bytesMoved);
    EXPECT_EQ(a.flowsCompleted, b.flowsCompleted);
    EXPECT_EQ(a.peakConcurrentFlows, b.peakConcurrentFlows);
    EXPECT_BITEQ(a.ingressBytes, b.ingressBytes);
    EXPECT_BITEQ(a.ingressUtil, b.ingressUtil);
}

void
expectSameFaults(const ndp::sim::FaultReport &a,
                 const ndp::sim::FaultReport &b)
{
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.stalls, b.stalls);
    EXPECT_EQ(a.ioErrors, b.ioErrors);
    EXPECT_EQ(a.messagesLost, b.messagesLost);
    EXPECT_EQ(a.ioRetries, b.ioRetries);
    EXPECT_EQ(a.messagesResent, b.messagesResent);
    EXPECT_EQ(a.itemsRedispatched, b.itemsRedispatched);
    EXPECT_EQ(a.itemsLost, b.itemsLost);
    EXPECT_EQ(a.deltaPushFailures, b.deltaPushFailures);
    EXPECT_EQ(a.linkDegrades, b.linkDegrades);
    EXPECT_EQ(a.linkDowns, b.linkDowns);
    EXPECT_EQ(a.terminal, b.terminal);
    EXPECT_BITEQ(a.degradedS, b.degradedS);
    EXPECT_EQ(a.faultsDetected, b.faultsDetected);
    EXPECT_EQ(a.faultsRecovered, b.faultsRecovered);
    EXPECT_BITEQ(a.timeToDetectSumS, b.timeToDetectSumS);
    EXPECT_BITEQ(a.timeToDetectMaxS, b.timeToDetectMaxS);
    EXPECT_BITEQ(a.timeToRecoverSumS, b.timeToRecoverSumS);
    EXPECT_BITEQ(a.timeToRecoverMaxS, b.timeToRecoverMaxS);
}

void
expectSameInference(const InferenceReport &a, const InferenceReport &b)
{
    EXPECT_BITEQ(a.seconds, b.seconds);
    EXPECT_EQ(a.images, b.images);
    EXPECT_BITEQ(a.ips, b.ips);
    EXPECT_BITEQ(a.netBytes, b.netBytes);
    EXPECT_BITEQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.oom, b.oom);
    EXPECT_BITEQ(a.gpuUtil, b.gpuUtil);
    EXPECT_BITEQ(a.cpuUtil, b.cpuUtil);
    expectSamePower(a.power, b.power);
    expectSamePerServer(a.perServer, b.perServer);
    expectSameStages(a.stages, b.stages);
    expectSameFaults(a.faults, b.faults);
    expectSameNet(a.net, b.net);
}

void
expectSameTrain(const TrainReport &a, const TrainReport &b)
{
    EXPECT_BITEQ(a.seconds, b.seconds);
    EXPECT_EQ(a.images, b.images);
    EXPECT_BITEQ(a.feIps, b.feIps);
    EXPECT_BITEQ(a.trainIps, b.trainIps);
    EXPECT_BITEQ(a.dataTrafficBytes, b.dataTrafficBytes);
    EXPECT_BITEQ(a.syncTrafficBytes, b.syncTrafficBytes);
    EXPECT_BITEQ(a.distributionBytes, b.distributionBytes);
    EXPECT_BITEQ(a.energyJ, b.energyJ);
    expectSamePower(a.power, b.power);
    expectSamePerServer(a.perServer, b.perServer);
    expectSameStages(a.stages, b.stages);
    expectSameFaults(a.faults, b.faults);
    expectSameNet(a.net, b.net);
}

/** Fig. 12-equivalent config: one PipeStore, each NPE level in turn. */
ExperimentConfig
fig12Config(const NpeOptions &npe)
{
    ExperimentConfig cfg;
    cfg.model = &ndp::models::resnet50();
    cfg.nStores = 1;
    cfg.nImages = 20000;
    cfg.npe = npe;
    return cfg;
}

TEST(Determinism, OfflineInferenceBitIdenticalAcrossNpeLevels)
{
    const NpeOptions levels[] = {
        NpeOptions::naive(),
        NpeOptions::withOffload(),
        NpeOptions::withCompression(),
        NpeOptions::withBatch(),
    };
    for (const NpeOptions &npe : levels) {
        ExperimentConfig cfg = fig12Config(npe);
        InferenceReport first = runNdpOfflineInference(cfg);
        InferenceReport second = runNdpOfflineInference(cfg);
        expectSameInference(first, second);
    }
}

TEST(Determinism, FtDmpTrainingBitIdentical)
{
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 40000;
    TrainOptions opt;
    opt.nRun = 3;
    TrainReport first = runFtDmpTraining(cfg, opt);
    TrainReport second = runFtDmpTraining(cfg, opt);
    expectSameTrain(first, second);
}

TEST(Determinism, SrvFineTuningBitIdentical)
{
    ExperimentConfig cfg;
    cfg.nImages = 40000;
    TrainReport first = runSrvFineTuning(cfg);
    TrainReport second = runSrvFineTuning(cfg);
    expectSameTrain(first, second);
}

TEST(Determinism, OnlineInferenceBitIdentical)
{
    // Stochastic arrivals — but from a *seeded* Rng, so two runs must
    // still agree to the last bit, percentiles included.
    OnlineConfig cfg;
    cfg.nUploads = 5000;
    OnlineReport first = runOnlineInference(cfg);
    OnlineReport second = runOnlineInference(cfg);
    EXPECT_EQ(first.uploads, second.uploads);
    EXPECT_BITEQ(first.seconds, second.seconds);
    EXPECT_BITEQ(first.throughput, second.throughput);
    EXPECT_BITEQ(first.p50Ms, second.p50Ms);
    EXPECT_BITEQ(first.p95Ms, second.p95Ms);
    EXPECT_BITEQ(first.p99Ms, second.p99Ms);
    EXPECT_BITEQ(first.meanMs, second.meanMs);
    EXPECT_BITEQ(first.gpuUtil, second.gpuUtil);
    EXPECT_BITEQ(first.cpuUtil, second.cpuUtil);
    EXPECT_EQ(first.saturated, second.saturated);
    expectSameNet(first.net, second.net);
}

TEST(Determinism, MediaAnalysisBitIdentical)
{
    // Both media paths route their inter-node bytes through the
    // fabric (results for NDP, whole raw objects for SRV).
    ExperimentConfig cfg;
    cfg.nStores = 4;
    for (const auto &runOnce :
         {+[](const ExperimentConfig &c) {
              return runNdpMediaAnalysis(c, videoMedia(), 400);
          },
          +[](const ExperimentConfig &c) {
              return runSrvMediaAnalysis(c, videoMedia(), 400);
          }}) {
        MediaReport first = runOnce(cfg);
        MediaReport second = runOnce(cfg);
        EXPECT_EQ(first.objects, second.objects);
        EXPECT_BITEQ(first.seconds, second.seconds);
        EXPECT_BITEQ(first.ops, second.ops);
        EXPECT_BITEQ(first.ups, second.ups);
        EXPECT_BITEQ(first.netBytes, second.netBytes);
        EXPECT_BITEQ(first.energyJ, second.energyJ);
        expectSamePower(first.power, second.power);
    }
}

// Faulted runs must be just as deterministic as clean ones: every
// fault draw routes through the per-store seeded sim::random streams
// (never wall clock), so (config, FaultPlan) fully determines the run.

TEST(Determinism, FaultedFtDmpTrainingBitIdentical)
{
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 40000;
    cfg.faults.crashStore(1, 2.0)
        .stallStore(2, 1.0, 3.0)
        .readErrors(0.02)
        .loseMessages(0.3);
    TrainOptions opt;
    opt.nRun = 3;
    TrainReport first = runFtDmpTraining(cfg, opt);
    TrainReport second = runFtDmpTraining(cfg, opt);
    EXPECT_TRUE(first.faults.anyInjected());
    expectSameTrain(first, second);
}

TEST(Determinism, FaultedNdpInferenceBitIdentical)
{
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 20000;
    cfg.faults.crashStore(0, 1.0).readErrors(0.05, 2);
    InferenceReport first = runNdpOfflineInference(cfg);
    InferenceReport second = runNdpOfflineInference(cfg);
    EXPECT_TRUE(first.faults.anyInjected());
    expectSameInference(first, second);
}

// The obs layer's two-sided contract: tracing OFF must not change any
// result bit (null hooks draw nothing, await nothing); tracing ON is
// purely passive, so traced results equal untraced ones AND two traced
// same-seed runs serialize byte-identical JSON.

TEST(Determinism, TracingOnDoesNotPerturbResults)
{
    ExperimentConfig cfg = fig12Config(NpeOptions::withBatch());
    InferenceReport untraced = runNdpOfflineInference(cfg);
    InferenceReport traced;
    {
        ndp::obs::TraceSession session;
        traced = runNdpOfflineInference(cfg);
        EXPECT_GT(session.tracer().eventCount(), 0U);
    }
    expectSameInference(untraced, traced);
}

TEST(Determinism, TracingOnDoesNotPerturbFaultedTraining)
{
    // Fault draws come from per-store RNG streams; tracing must not
    // add or reorder a single draw even on the recovery paths.
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 40000;
    cfg.faults.crashStore(1, 2.0).readErrors(0.02).loseMessages(0.3);
    TrainOptions opt;
    opt.nRun = 3;
    TrainReport untraced = runFtDmpTraining(cfg, opt);
    TrainReport traced;
    {
        ndp::obs::TraceSession session;
        traced = runFtDmpTraining(cfg, opt);
    }
    EXPECT_TRUE(untraced.faults.anyInjected());
    expectSameTrain(untraced, traced);
}

TEST(Determinism, TracedRunsSerializeByteIdenticalJson)
{
    auto tracedJson = [] {
        ndp::obs::TraceSession session;
        ExperimentConfig cfg = fig12Config(NpeOptions::withBatch());
        runNdpOfflineInference(cfg);
        TrainOptions opt;
        ExperimentConfig tcfg;
        tcfg.nStores = 2;
        tcfg.nImages = 20000;
        runFtDmpTraining(tcfg, opt);
        return session.tracer().json();
    };
    std::string first = tracedJson();
    std::string second = tracedJson();
    EXPECT_GT(first.size(), 0U);
    EXPECT_EQ(first, second) << "trace JSON differs across "
                                "same-seed runs";
}

// The health monitor carries the same contract as the tracer: it only
// *reads* sim time and mutates monitor-private state, so a monitored
// run must be bit-identical to an unmonitored one, and two monitored
// same-seed runs must serialize byte-identical health JSON.

TEST(Determinism, MonitorOnDoesNotPerturbResults)
{
    ExperimentConfig cfg = fig12Config(NpeOptions::withBatch());
    InferenceReport plain = runNdpOfflineInference(cfg);
    InferenceReport monitored;
    {
        ndp::obs::MonitorSession session;
        monitored = runNdpOfflineInference(cfg);
    }
    expectSameInference(plain, monitored);
}

TEST(Determinism, MonitorOnDoesNotPerturbFaultedTraining)
{
    // The monitor observes fault detection/recovery via FaultObserver;
    // those callbacks must not add or reorder a single RNG draw.
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 40000;
    cfg.faults.crashStore(1, 2.0).readErrors(0.02).loseMessages(0.3);
    TrainOptions opt;
    opt.nRun = 3;
    TrainReport plain = runFtDmpTraining(cfg, opt);
    TrainReport monitored;
    {
        ndp::obs::MonitorSession session;
        monitored = runFtDmpTraining(cfg, opt);
        EXPECT_GE(session.monitor().summary("").faultsDetected, 1U);
    }
    EXPECT_TRUE(plain.faults.anyInjected());
    expectSameTrain(plain, monitored);
}

TEST(Determinism, MonitoredRunsSerializeByteIdenticalJson)
{
    auto healthJson = [] {
        ndp::obs::MonitorSession session;
        ExperimentConfig cfg;
        cfg.nStores = 4;
        cfg.nImages = 40000;
        cfg.faults.crashStore(1, 2.0).readErrors(0.02);
        TrainOptions opt;
        opt.nRun = 3;
        runFtDmpTraining(cfg, opt);
        return session.monitor().json();
    };
    std::string first = healthJson();
    std::string second = healthJson();
    EXPECT_GT(first.size(), 0U);
    EXPECT_EQ(first, second) << "health JSON differs across "
                                "same-seed runs";
}

TEST(Determinism, LinkFaultedTrainingBitIdentical)
{
    // Link faults perturb the fabric's max-min allocation at plan
    // boundaries; the recompute cascade must still be a pure function
    // of (config, FaultPlan).
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 40000;
    cfg.faults.degradeLink(1, 2.0, 30.0, 0.5).downLink(2, 5.0, 3.0);
    TrainOptions opt;
    opt.nRun = 3;
    TrainReport first = runFtDmpTraining(cfg, opt);
    TrainReport second = runFtDmpTraining(cfg, opt);
    EXPECT_TRUE(first.faults.anyInjected());
    EXPECT_GE(first.faults.linkDegrades + first.faults.linkDowns, 1U);
    expectSameTrain(first, second);
}

TEST(Determinism, FaultedOnlineInferenceBitIdentical)
{
    OnlineConfig cfg;
    cfg.nUploads = 5000;
    cfg.faults.loseMessages(0.1).stallStore(0, 5.0, 2.0);
    OnlineReport first = runOnlineInference(cfg);
    OnlineReport second = runOnlineInference(cfg);
    EXPECT_TRUE(first.faults.anyInjected());
    EXPECT_BITEQ(first.seconds, second.seconds);
    EXPECT_BITEQ(first.p99Ms, second.p99Ms);
    EXPECT_BITEQ(first.meanMs, second.meanMs);
    expectSameFaults(first.faults, second.faults);
}

TEST(Determinism, MultiJobClusterBitIdentical)
{
    // A mixed 3-job cluster — training, offline inference, and online
    // serving sharing one fleet, fabric, and scheduler — must be just
    // as pure a function of its configuration as any single dataflow.
    auto runCluster = [] {
        ClusterSpec spec;
        spec.nStores = 4;
        sched::Cluster c(spec);
        sched::JobDesc train;
        train.name = "train";
        train.kind = sched::JobKind::FtDmpTrain;
        train.stores = {0, 1};
        train.nImages = 16000;
        train.train.nRun = 2;
        c.submit(train);
        sched::JobDesc off;
        off.name = "offline";
        off.kind = sched::JobKind::OfflineInfer;
        off.stores = {2, 3};
        off.nImages = 12000;
        off.submitAtS = 1.0;
        c.submit(off);
        sched::JobDesc serve;
        serve.name = "serve";
        serve.kind = sched::JobKind::OnlineServe;
        serve.priority = 2;
        serve.nUploads = 3000;
        c.submit(serve);
        return c.run();
    };
    sched::ClusterReport first = runCluster();
    sched::ClusterReport second = runCluster();
    EXPECT_BITEQ(first.seconds, second.seconds);
    EXPECT_EQ(first.events, second.events);
    expectSameNet(first.net, second.net);
    expectSameFaults(first.faults, second.faults);
    ASSERT_EQ(first.jobs.size(), second.jobs.size());
    for (size_t j = 0; j < first.jobs.size(); ++j) {
        const sched::JobReport &a = first.jobs[j];
        const sched::JobReport &b = second.jobs[j];
        EXPECT_EQ(a.name, b.name);
        EXPECT_BITEQ(a.startS, b.startS);
        EXPECT_BITEQ(a.endS, b.endS);
        EXPECT_BITEQ(a.makespanS, b.makespanS);
        EXPECT_EQ(a.preemptions, b.preemptions);
        EXPECT_BITEQ(a.waitS, b.waitS);
        EXPECT_BITEQ(a.chargedGpuS, b.chargedGpuS);
        EXPECT_BITEQ(a.throughput, b.throughput);
        EXPECT_BITEQ(a.p50Ms, b.p50Ms);
        EXPECT_BITEQ(a.p99Ms, b.p99Ms);
        expectSameStages(a.stages, b.stages);
    }
}

TEST(Determinism, OpenLoopServingClusterBitIdentical)
{
    // The new serving scenario: an open-loop million-user job on the
    // full fleet — flash crowd, store crash, degraded link — colocated
    // with a fine-tune job. The whole thing must stay a pure function
    // of its configuration, down to the p99.9 bits.
    auto runCluster = [] {
        ClusterSpec spec;
        spec.nStores = 4;
        spec.faults.crashStore(1, 6.0).degradeLink(0, 5.0, 4.0, 0.3);
        sched::Cluster c(spec);
        sched::JobDesc sv;
        sv.name = "front";
        sv.kind = sched::JobKind::OpenLoopServe;
        sv.stores = {0, 1, 2, 3};
        sv.priority = 2;
        sv.serve.arrivals.nRequests = 4000;
        sv.serve.arrivals.nUsers = 500000;
        sv.serve.arrivals.baseRatePerSec = 250.0;
        sv.serve.arrivals.spikes.push_back(
            ndp::sim::SpikeSegment{5.0, 4.0, 3.0});
        c.submit(sv);
        sched::JobDesc train;
        train.name = "nightly";
        train.kind = sched::JobKind::FtDmpTrain;
        train.stores = {0, 1, 2, 3};
        train.nImages = 12000;
        train.submitAtS = 2.0;
        c.submit(train);
        return c.run();
    };
    sched::ClusterReport first = runCluster();
    sched::ClusterReport second = runCluster();
    EXPECT_BITEQ(first.seconds, second.seconds);
    EXPECT_EQ(first.events, second.events);
    expectSameNet(first.net, second.net);
    expectSameFaults(first.faults, second.faults);
    ASSERT_EQ(first.jobs.size(), second.jobs.size());
    const sched::JobReport &a = first.jobs[0];
    const sched::JobReport &b = second.jobs[0];
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.redispatched, b.redispatched);
    EXPECT_EQ(a.abandoned, b.abandoned);
    EXPECT_BITEQ(a.p50Ms, b.p50Ms);
    EXPECT_BITEQ(a.p99Ms, b.p99Ms);
    EXPECT_BITEQ(a.p999Ms, b.p999Ms);
    EXPECT_BITEQ(a.meanMs, b.meanMs);
    EXPECT_BITEQ(first.jobs[1].makespanS, second.jobs[1].makespanS);
    EXPECT_GT(a.offered, 0u);
    EXPECT_GT(a.goodput, 0u);
}

} // namespace
