/**
 * @file
 * Tests for the FT-DMP and SRV fine-tuning simulators: scaling,
 * pipelining gains, weight-sync explosion at "+FC", traffic
 * accounting, and the paper's crossover points.
 */

#include <gtest/gtest.h>

#include "core/training.h"

using namespace ndp;
using namespace ndp::core;

namespace {

ExperimentConfig
trainCfg(uint64_t images = 300000)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = images;
    cfg.nStores = 4;
    return cfg;
}

} // namespace

TEST(FtDmp, FeThroughputTracksStoreCount)
{
    auto cfg = trainCfg();
    TrainOptions opt;
    opt.nRun = 1;
    cfg.nStores = 4;
    auto r = runFtDmpTraining(cfg, opt);
    EXPECT_NEAR(r.feIps, 4.0 * 2129.0, 4.0 * 2129.0 * 0.05);
}

TEST(FtDmp, MoreStoresTrainFaster)
{
    auto cfg = trainCfg();
    TrainOptions opt;
    cfg.nStores = 2;
    double two = runFtDmpTraining(cfg, opt).seconds;
    cfg.nStores = 8;
    double eight = runFtDmpTraining(cfg, opt).seconds;
    EXPECT_LT(eight, two);
}

TEST(FtDmp, DiminishingReturnsOnceTunerBinds)
{
    // Fig. 11: beyond APO's pick the Tuner is the bottleneck.
    auto cfg = trainCfg(1200000);
    TrainOptions opt;
    cfg.nStores = 8;
    double at8 = runFtDmpTraining(cfg, opt).seconds;
    cfg.nStores = 20;
    double at20 = runFtDmpTraining(cfg, opt).seconds;
    EXPECT_GT(at20, at8 * 0.75); // much less than 8/20 scaling
}

TEST(FtDmp, PipeliningOverlapsRuns)
{
    auto cfg = trainCfg(600000);
    TrainOptions piped;
    piped.nRun = 3;
    piped.pipelined = true;
    TrainOptions serial = piped;
    serial.pipelined = false;
    double t_piped = runFtDmpTraining(cfg, piped).seconds;
    double t_serial = runFtDmpTraining(cfg, serial).seconds;
    EXPECT_LT(t_piped, t_serial);
}

TEST(FtDmp, PipelinedSpeedupInPaperBand)
{
    // Fig. 17: N_run=3 cuts time by up to ~32% vs unpipelined.
    auto cfg = trainCfg(1200000);
    TrainOptions one;
    one.nRun = 1;
    TrainOptions three;
    three.nRun = 3;
    double t1 = runFtDmpTraining(cfg, one).seconds;
    double t3 = runFtDmpTraining(cfg, three).seconds;
    double gain = 1.0 - t3 / t1;
    EXPECT_GT(gain, 0.10);
    EXPECT_LT(gain, 0.45);
}

TEST(FtDmp, FeatureTrafficMatchesCut)
{
    auto cfg = trainCfg(100000);
    TrainOptions opt;
    auto r = runFtDmpTraining(cfg, opt);
    double expected = cfg.nImages *
                      cfg.model->transferMBAt(
                          cfg.model->classifierStart()) *
                      1e6;
    EXPECT_NEAR(r.dataTrafficBytes, expected, expected * 0.01);
    EXPECT_EQ(r.syncTrafficBytes, 0.0);
}

TEST(FtDmp, NoneCutShipsWholeInputs)
{
    auto cfg = trainCfg(50000);
    TrainOptions opt;
    opt.cut = 0;
    auto r = runFtDmpTraining(cfg, opt);
    double expected = cfg.nImages * cfg.model->inputMB() * 1e6;
    EXPECT_NEAR(r.dataTrafficBytes, expected, expected * 0.01);
}

TEST(FtDmp, FcCutPaysWeightSync)
{
    auto cfg = trainCfg(100000);
    TrainOptions best;
    TrainOptions fc;
    fc.cut = cfg.model->numBlocks();
    auto r_best = runFtDmpTraining(cfg, best);
    auto r_fc = runFtDmpTraining(cfg, fc);
    EXPECT_GT(r_fc.syncTrafficBytes, 0.0);
    EXPECT_EQ(r_fc.dataTrafficBytes, 0.0);
    EXPECT_GT(r_fc.seconds, r_best.seconds * 2.0);
    EXPECT_GT(r_fc.stages.syncS, 0.0);
}

TEST(FtDmp, SyncTrafficScalesWithStores)
{
    auto cfg = trainCfg(100000);
    TrainOptions fc;
    fc.cut = cfg.model->numBlocks();
    cfg.nStores = 2;
    double two = runFtDmpTraining(cfg, fc).syncTrafficBytes;
    cfg.nStores = 8;
    double eight = runFtDmpTraining(cfg, fc).syncTrafficBytes;
    EXPECT_NEAR(eight / two, 4.0, 0.2);
}

TEST(FtDmp, DeltaDistributionCountsBytes)
{
    auto cfg = trainCfg(50000);
    TrainOptions opt;
    auto r = runFtDmpTraining(cfg, opt);
    EXPECT_GT(r.distributionBytes, 0.0);
    // Check-N-Run: far smaller than shipping full models.
    double full = cfg.model->totalParamsM() * 1e6 * 4.0 * cfg.nStores;
    EXPECT_GT(full / r.distributionBytes, 100.0);

    TrainOptions no_delta = opt;
    no_delta.distributeDeltas = false;
    auto r2 = runFtDmpTraining(cfg, no_delta);
    EXPECT_EQ(r2.distributionBytes, 0.0);
}

TEST(FtDmp, EnergyAndPowerConsistent)
{
    auto cfg = trainCfg(100000);
    TrainOptions opt;
    auto r = runFtDmpTraining(cfg, opt);
    EXPECT_NEAR(r.energyJ, r.power.totalW() * r.seconds, 1e-6);
    // Stores + tuner samples.
    EXPECT_EQ(r.perServer.size(),
              static_cast<size_t>(cfg.nStores) + 1u);
    EXPECT_GT(r.ipsPerKj(), 0.0);
}

TEST(FtDmp, StageBreakdownCoversWork)
{
    auto cfg = trainCfg(100000);
    TrainOptions opt;
    auto r = runFtDmpTraining(cfg, opt);
    EXPECT_GT(r.stages.readS, 0.0);
    EXPECT_GT(r.stages.decompressS, 0.0);
    EXPECT_GT(r.stages.computeS, 0.0);
    EXPECT_GT(r.stages.tunerS, 0.0);
    EXPECT_EQ(r.stages.preprocessS, 0.0); // binaries, not JPEGs
}

TEST(FtDmp, ResolveCutDefaultsToClassifier)
{
    TrainOptions opt;
    EXPECT_EQ(opt.resolveCut(models::resnet50()), 5u);
    opt.cut = 2;
    EXPECT_EQ(opt.resolveCut(models::resnet50()), 2u);
}

TEST(SrvTraining, MatchesNetworkBoundEstimate)
{
    auto cfg = trainCfg(1200000);
    auto r = runSrvFineTuning(cfg);
    // FE phase is network-bound on compressed binaries; CT follows.
    double wire_ips = cfg.networkGbps * 1e9 / 8.0 /
                      (cfg.model->inputMB() * 1e6 / kCompressionRatio);
    double fe_phase = cfg.nImages / wire_ips;
    EXPECT_GT(r.seconds, fe_phase);
    EXPECT_LT(r.seconds, fe_phase * 1.6);
}

TEST(SrvTraining, CrossoverNearThreeStores)
{
    // §6.3: NDPipe beats SRV-C with three PipeStores for ResNet50.
    auto cfg = trainCfg(1200000);
    auto srv = runSrvFineTuning(cfg);
    TrainOptions opt;
    cfg.nStores = 2;
    EXPECT_GT(runFtDmpTraining(cfg, opt).seconds, srv.seconds * 0.9);
    cfg.nStores = 4;
    EXPECT_LT(runFtDmpTraining(cfg, opt).seconds, srv.seconds);
}

TEST(SrvTraining, SerialTypicalSlowerThanPipelined)
{
    auto cfg = trainCfg(300000);
    auto piped = runSrvFineTuning(cfg, SrvVariant::Preprocessed,
                                  kDefaultTunerEpochs, true);
    auto serial = runSrvFineTuning(cfg, SrvVariant::Preprocessed,
                                   kDefaultTunerEpochs, false);
    EXPECT_GT(serial.seconds, piped.seconds);
}

TEST(SrvTraining, IdealFasterThanRemote)
{
    auto cfg = trainCfg(300000);
    auto ideal = runSrvFineTuning(cfg, SrvVariant::Ideal);
    auto remote = runSrvFineTuning(cfg, SrvVariant::Compressed);
    EXPECT_LT(ideal.seconds, remote.seconds);
    EXPECT_EQ(ideal.dataTrafficBytes, 0.0);
    EXPECT_GT(remote.dataTrafficBytes, 0.0);
}

TEST(SrvTraining, MoreEpochsTakeLonger)
{
    auto cfg = trainCfg(300000);
    auto few = runSrvFineTuning(cfg, SrvVariant::Compressed, 2);
    auto many = runSrvFineTuning(cfg, SrvVariant::Compressed, 16);
    EXPECT_GT(many.seconds, few.seconds);
}

TEST(FtDmp, InferentiaStoresAreSlowerButWork)
{
    auto cfg = trainCfg(300000);
    TrainOptions opt;
    auto t4 = runFtDmpTraining(cfg, opt);
    cfg.storeSpec = hw::inf12xlarge();
    auto inf1 = runFtDmpTraining(cfg, opt);
    EXPECT_GT(inf1.seconds, t4.seconds);
}

TEST(FtDmp, UnevenImageCountFullyProcessed)
{
    auto cfg = trainCfg(100001); // not divisible by runs or stores
    cfg.nStores = 3;
    TrainOptions opt;
    opt.nRun = 3;
    auto r = runFtDmpTraining(cfg, opt);
    double expected = cfg.nImages *
                      cfg.model->transferMBAt(
                          cfg.model->classifierStart()) *
                      1e6;
    EXPECT_NEAR(r.dataTrafficBytes, expected, expected * 0.01);
}
