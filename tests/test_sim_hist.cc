/**
 * @file
 * LatencyHistogram (sim/stats.h) contract tests: the extracted
 * quantile of a recorded stream is within the documented bucket
 * resolution of the exact quantile, merged shards answer exactly as
 * the combined stream, and the edge cases (empty, single sample,
 * zero/negative, huge) stay inside the array.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/stats.h"

namespace {

using ndp::LatencyHistogram;
using ndp::Rng;

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

/** Exact quantile: the ceil(p/100 * n)-th smallest sample — the same
 *  rank definition percentile() documents. */
double
exactQuantile(std::vector<double> sorted, double p)
{
    const auto n = sorted.size();
    auto target = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    target = std::min(std::max<size_t>(target, 1), n);
    return sorted[target - 1];
}

TEST(LatencyHistogram, QuantileErrorBoundedByBucketResolution)
{
    LatencyHistogram h;
    Rng rng(7);
    std::vector<double> samples;
    // Latencies spanning ~4 decades (0.1 ms .. 2 s), lognormal like a
    // real tail.
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.normal(std::log(10e-3), 1.2));
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
        const double exact = exactQuantile(samples, p);
        const double est = h.percentile(p);
        // The estimate is the midpoint of the bucket holding the exact
        // rank sample, so it can differ by at most that bucket's
        // equivalent range plus one quantization unit.
        const double bound = h.equivalentRangeS(exact) + 1e-6;
        EXPECT_NEAR(est, exact, bound) << "p" << p;
        // Which, for values above the linear region, is the documented
        // relative resolution (1/64 for the default 7 sub-bucket
        // bits), plus the 1 us quantization floor.
        EXPECT_LE(std::abs(est - exact),
                  exact * h.relativeResolution() + 2e-6)
            << "p" << p;
    }
    EXPECT_EQ(h.count(), samples.size());
    EXPECT_BITEQ(h.min(), samples.front());
    EXPECT_BITEQ(h.max(), samples.back());
}

TEST(LatencyHistogram, MergeMatchesCombinedStreamExactly)
{
    LatencyHistogram a;
    LatencyHistogram b;
    LatencyHistogram combined;
    Rng rng(21);
    for (int i = 0; i < 5000; ++i) {
        const double va = std::exp(rng.normal(std::log(5e-3), 0.8));
        const double vb = std::exp(rng.normal(std::log(80e-3), 1.5));
        a.record(va);
        combined.record(va);
        b.record(vb);
        combined.record(vb);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    // sum() is a float accumulator: shard-then-merge adds in a
    // different order than the interleaved stream, so only near.
    EXPECT_NEAR(a.sum(), combined.sum(),
                1e-12 * combined.sum());
    EXPECT_BITEQ(a.min(), combined.min());
    EXPECT_BITEQ(a.max(), combined.max());
    // Quantiles of the merged shards are bit-identical to a histogram
    // that saw every sample itself — counters add, nothing re-rounds.
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0})
        EXPECT_BITEQ(a.percentile(p), combined.percentile(p));
}

TEST(LatencyHistogram, MergeOrderIrrelevant)
{
    LatencyHistogram ab;
    LatencyHistogram ba;
    LatencyHistogram a;
    LatencyHistogram b;
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(1e-4, 2.0);
        (i % 2 == 0 ? a : b).record(v);
    }
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    for (double p : {50.0, 99.0, 99.9})
        EXPECT_BITEQ(ab.percentile(p), ba.percentile(p));
}

TEST(LatencyHistogram, EmptyHistogram)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(100.0), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);

    // Merging an empty shard changes nothing.
    LatencyHistogram other;
    other.record(0.25);
    const double before = other.percentile(50.0);
    other.merge(h);
    EXPECT_BITEQ(other.percentile(50.0), before);
}

TEST(LatencyHistogram, SingleSample)
{
    LatencyHistogram h;
    h.record(3.2e-3);
    EXPECT_EQ(h.count(), 1u);
    // Every percentile answers the one bucket the sample landed in.
    const double only = h.percentile(50.0);
    EXPECT_BITEQ(h.percentile(0.0), only);
    EXPECT_BITEQ(h.percentile(99.9), only);
    EXPECT_NEAR(only, 3.2e-3, h.equivalentRangeS(3.2e-3) + 1e-6);
    EXPECT_BITEQ(h.min(), 3.2e-3);
    EXPECT_BITEQ(h.max(), 3.2e-3);
}

TEST(LatencyHistogram, ZeroNegativeAndHugeValuesStayInRange)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(-1.0);  // clamped to the zero bucket
    h.record(1e12);  // saturated, not out-of-bounds
    h.record(1e300); // ditto
    EXPECT_EQ(h.count(), 4u);
    // p50 falls in the zero bucket; p100 in the saturated top.
    EXPECT_LT(h.percentile(50.0), 1e-5);
    EXPECT_GT(h.percentile(100.0), 1e11);
    EXPECT_BITEQ(h.max(), 1e300);
    EXPECT_BITEQ(h.min(), -1.0);
}

TEST(LatencyHistogram, LinearRegionIsExactToTheUnit)
{
    // Values below 2^subBucketBits units sit in singleton buckets:
    // extraction returns the value to within half a unit.
    LatencyHistogram h(1e-6, 7);
    for (int u = 0; u < 128; ++u)
        h.record(static_cast<double>(u) * 1e-6);
    for (double p : {10.0, 50.0, 90.0}) {
        const double est = h.percentile(p);
        const double exact =
            std::ceil(p / 100.0 * 128.0 - 1.0) * 1e-6;
        EXPECT_NEAR(est, exact, 1e-6) << "p" << p;
    }
}

TEST(LatencyHistogram, DeterministicAcrossIdenticalStreams)
{
    auto run = [] {
        LatencyHistogram h;
        Rng rng(99);
        for (int i = 0; i < 4000; ++i)
            h.record(std::exp(rng.normal(std::log(2e-2), 1.0)));
        return h;
    };
    LatencyHistogram a = run();
    LatencyHistogram b = run();
    for (double p : {50.0, 95.0, 99.0, 99.9}) {
        EXPECT_BITEQ(a.percentile(p), b.percentile(p));
    }
    EXPECT_BITEQ(a.sum(), b.sum());
}

} // namespace
