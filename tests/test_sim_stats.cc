/**
 * @file
 * Unit tests for the statistics accumulators in sim/stats.h:
 * RunningStat (Welford mean/variance, Chan merge) and SampleStat
 * (percentiles with linear interpolation) — including the empty and
 * single-sample edge cases the simulator hits on zero-item runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/stats.h"

namespace {

using ndp::RunningStat;
using ndp::SampleStat;

TEST(RunningStat, EmptyIsAllZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(42.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.5);
    EXPECT_DOUBLE_EQ(s.max(), 42.5);
}

TEST(RunningStat, MatchesClosedFormMoments)
{
    RunningStat s;
    std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample (Bessel-corrected) variance of the set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_NEAR(s.variance(), 18.0, 1e-12);
}

TEST(RunningStat, MergeMatchesSingleStream)
{
    std::vector<double> xs = {1.5, -2.0, 7.25, 0.0, 3.125,
                              9.0, 4.75, -1.5, 2.25, 6.5};
    RunningStat whole;
    for (double x : xs)
        whole.add(x);

    for (size_t split = 0; split <= xs.size(); ++split) {
        RunningStat a;
        RunningStat b;
        for (size_t i = 0; i < xs.size(); ++i)
            (i < split ? a : b).add(xs[i]);
        a.merge(b);
        EXPECT_EQ(a.count(), whole.count()) << "split " << split;
        EXPECT_NEAR(a.mean(), whole.mean(), 1e-12) << "split " << split;
        EXPECT_NEAR(a.variance(), whole.variance(), 1e-12)
            << "split " << split;
        EXPECT_NEAR(a.sum(), whole.sum(), 1e-12) << "split " << split;
        EXPECT_DOUBLE_EQ(a.min(), whole.min()) << "split " << split;
        EXPECT_DOUBLE_EQ(a.max(), whole.max()) << "split " << split;
    }
}

TEST(RunningStat, MergeEmptyIsIdentity)
{
    RunningStat a;
    a.add(1.0);
    a.add(2.0);
    RunningStat empty;

    RunningStat lhs = a;
    lhs.merge(empty);
    EXPECT_EQ(lhs.count(), 2u);
    EXPECT_DOUBLE_EQ(lhs.mean(), 1.5);

    RunningStat rhs;
    rhs.merge(a);
    EXPECT_EQ(rhs.count(), 2u);
    EXPECT_DOUBLE_EQ(rhs.mean(), 1.5);
    EXPECT_DOUBLE_EQ(rhs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rhs.max(), 2.0);

    RunningStat both;
    both.merge(empty);
    EXPECT_EQ(both.count(), 0u);
    EXPECT_EQ(both.mean(), 0.0);
}

TEST(SampleStat, EmptyPercentileIsZero)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.percentile(50.0), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleStat, SingleSampleIsEveryPercentile)
{
    SampleStat s;
    s.add(3.25);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 3.25);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 3.25);
    EXPECT_DOUBLE_EQ(s.percentile(99.0), 3.25);
    EXPECT_DOUBLE_EQ(s.mean(), 3.25);
}

TEST(SampleStat, PercentileInterpolatesLinearly)
{
    SampleStat s;
    // Insert out of order: percentile() sorts lazily.
    for (double x : {40.0, 10.0, 30.0, 20.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
    // Rank 0.75 between 10 and 20.
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
    EXPECT_DOUBLE_EQ(s.mean(), 25.0);
}

TEST(SampleStat, AddAfterQueryResorts)
{
    SampleStat s;
    s.add(2.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.5);
    s.add(0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
}

TEST(SampleStat, MergeAppendsSamples)
{
    SampleStat a;
    a.add(1.0);
    a.add(3.0);
    SampleStat b;
    b.add(2.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.median(), 2.5);
    EXPECT_DOUBLE_EQ(a.percentile(100.0), 4.0);

    SampleStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

} // namespace
