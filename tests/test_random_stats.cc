/**
 * @file
 * Tests for the deterministic RNG and the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.h"
#include "sim/stats.h"

using ndp::Rng;
using ndp::RunningStat;
using ndp::SampleStat;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(10);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(11);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = r.normal();
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale)
{
    Rng r(12);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalIsPositive)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(r.lognormal(1.0, 0.5), 0.0);
}

TEST(Rng, ChanceFrequencyTracksProbability)
{
    Rng r(14);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(15);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (child1.nextU64() == child2.nextU64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValueHasZeroVariance)
{
    RunningStat s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleStat, PercentilesOnKnownData)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(100.0), 100.0, 1e-9);
    EXPECT_NEAR(s.percentile(99.0), 99.01, 0.05);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleStat, PercentileAfterMoreAdds)
{
    SampleStat s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(20.0); // re-sort required internally
    EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

TEST(SampleStat, EmptyPercentileIsZero)
{
    SampleStat s;
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
}
