/**
 * @file
 * Cluster-scheduler tests (core/sched): the zero-cost rule of the
 * yield fast-path (a scheduling-enabled run with no parking is
 * bit-identical to a scheduling-off run — same-sim-time events are
 * never reordered), priority preemption at batch boundaries, work
 * conservation under preemption, and weighted-fair-share convergence.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "core/sched/cluster.h"

namespace {

using namespace ndp::core;
using namespace ndp::core::sched;

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

void
expectSameStages(const StageMetrics &a, const StageMetrics &b)
{
    EXPECT_BITEQ(a.readS, b.readS);
    EXPECT_BITEQ(a.decompressS, b.decompressS);
    EXPECT_BITEQ(a.preprocessS, b.preprocessS);
    EXPECT_BITEQ(a.transferS, b.transferS);
    EXPECT_BITEQ(a.computeS, b.computeS);
    EXPECT_BITEQ(a.tunerS, b.tunerS);
    EXPECT_BITEQ(a.syncS, b.syncS);
    EXPECT_BITEQ(a.readBytes, b.readBytes);
    EXPECT_BITEQ(a.wireBytes, b.wireBytes);
    EXPECT_BITEQ(a.shipBytes, b.shipBytes);
    EXPECT_EQ(a.itemsDone, b.itemsDone);
    EXPECT_BITEQ(a.lastItemS, b.lastItemS);
}

/** Timing/work equality for one job across two cluster runs
 *  (scheduler accounting like chargedGpuS is compared separately —
 *  a scheduling-off run records none). */
void
expectSameTiming(const JobReport &a, const JobReport &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_BITEQ(a.startS, b.startS);
    EXPECT_BITEQ(a.endS, b.endS);
    EXPECT_BITEQ(a.makespanS, b.makespanS);
    expectSameStages(a.stages, b.stages);
}

JobDesc
trainJob(const std::string &name, std::vector<int> stores,
         uint64_t images = 16000)
{
    JobDesc d;
    d.name = name;
    d.kind = JobKind::FtDmpTrain;
    d.stores = std::move(stores);
    d.nImages = images;
    d.train.nRun = 2;
    return d;
}

TEST(Sched, SingleJobSchedulingOnOffBitIdentical)
{
    // One tenant: every yield's await_ready() fast-path fires (no
    // competitor can preempt it), so the event sequence must be
    // byte-identical to a run with the scheduler compiled out of the
    // wiring entirely.
    ClusterReport reps[2];
    for (bool scheduling : {true, false}) {
        ClusterSpec spec;
        spec.nStores = 4;
        spec.scheduling = scheduling;
        Cluster c(spec);
        c.submit(trainJob("solo", {0, 1, 2, 3}));
        reps[scheduling ? 0 : 1] = c.run();
    }
    EXPECT_BITEQ(reps[0].seconds, reps[1].seconds);
    EXPECT_EQ(reps[0].events, reps[1].events);
    ASSERT_EQ(reps[0].jobs.size(), 1u);
    expectSameTiming(reps[0].jobs[0], reps[1].jobs[0]);
    EXPECT_EQ(reps[0].jobs[0].preemptions, 0u);
    EXPECT_BITEQ(reps[0].jobs[0].waitS, 0.0);
}

TEST(Sched, DisjointStoreSetsNeverPreempt)
{
    // Preemption scope is exactly the contended stores: jobs on
    // disjoint subsets never park each other regardless of priority,
    // and the whole run stays bit-identical to scheduling-off.
    ClusterReport reps[2];
    for (bool scheduling : {true, false}) {
        ClusterSpec spec;
        spec.nStores = 4;
        spec.scheduling = scheduling;
        Cluster c(spec);
        JobDesc hi = trainJob("hi", {0, 1}, 8000);
        hi.priority = 5;
        JobDesc lo = trainJob("lo", {2, 3}, 8000);
        c.submit(hi);
        c.submit(lo);
        reps[scheduling ? 0 : 1] = c.run();
    }
    EXPECT_BITEQ(reps[0].seconds, reps[1].seconds);
    EXPECT_EQ(reps[0].events, reps[1].events);
    ASSERT_EQ(reps[0].jobs.size(), 2u);
    for (size_t j = 0; j < 2; ++j) {
        expectSameTiming(reps[0].jobs[j], reps[1].jobs[j]);
        EXPECT_EQ(reps[0].jobs[j].preemptions, 0u);
    }
}

TEST(Sched, PriorityParityShiftBitIdentical)
{
    // Regression for the yield fast-path: two store-overlapping jobs
    // at priority parity never park (equal shares, lag bound huge),
    // so shifting both priorities by the same amount — or turning
    // scheduling off — must not move a single event.
    ClusterReport reps[3];
    const int prios[3][2] = {{0, 0}, {3, 3}, {0, 0}};
    for (int v = 0; v < 3; ++v) {
        ClusterSpec spec;
        spec.nStores = 2;
        spec.quantumS = 1e9;
        spec.scheduling = v != 2;
        Cluster c(spec);
        JobDesc a = trainJob("a", {0, 1}, 8000);
        a.priority = prios[v][0];
        JobDesc b = trainJob("b", {0, 1}, 8000);
        b.priority = prios[v][1];
        c.submit(a);
        c.submit(b);
        reps[v] = c.run();
    }
    for (int v : {1, 2}) {
        EXPECT_BITEQ(reps[0].seconds, reps[v].seconds);
        EXPECT_EQ(reps[0].events, reps[v].events);
        ASSERT_EQ(reps[0].jobs.size(), reps[v].jobs.size());
        for (size_t j = 0; j < reps[0].jobs.size(); ++j)
            expectSameTiming(reps[0].jobs[j], reps[v].jobs[j]);
    }
    for (const JobReport &j : reps[0].jobs)
        EXPECT_EQ(j.preemptions, 0u);
}

TEST(Sched, PriorityPreemptsAtBatchBoundariesAndConservesWork)
{
    // An overlapping strictly-higher-priority job parks the low one
    // at batch boundaries; the preempted-then-resumed job still
    // processes every one of its images (work conservation).
    ClusterSpec spec;
    spec.nStores = 2;
    Cluster c(spec);
    JobDesc hi = trainJob("hi", {0, 1}, 16000);
    hi.priority = 1;
    JobDesc lo = trainJob("lo", {0, 1}, 16000);
    c.submit(hi);
    c.submit(lo);
    ClusterReport rep = c.run();
    ASSERT_EQ(rep.jobs.size(), 2u);
    const JobReport &h = rep.jobs[0];
    const JobReport &l = rep.jobs[1];
    EXPECT_EQ(h.preemptions, 0u);
    EXPECT_GT(l.preemptions, 0u);
    EXPECT_GT(l.waitS, 0.0);
    // The high-priority job gets the stores to itself while active.
    EXPECT_LT(h.endS, l.endS);

    // Conservation: the preempted job's item count matches a solo run
    // of the identical job on an identical (but uncontended) fleet.
    ClusterSpec solo_spec;
    solo_spec.nStores = 2;
    Cluster solo(solo_spec);
    solo.submit(trainJob("lo", {0, 1}, 16000));
    ClusterReport solo_rep = solo.run();
    EXPECT_EQ(l.stages.itemsDone, solo_rep.jobs[0].stages.itemsDone);
    EXPECT_GT(l.stages.itemsDone, 0u);
}

TEST(Sched, WeightedFairShareFavorsTheLargerShare)
{
    // Two identical overlapping jobs at equal priority with shares
    // 2:1: the low-share job's virtual time runs twice as fast, so it
    // parks while the high-share job catches up — and the high-share
    // job finishes first.
    ClusterSpec spec;
    spec.nStores = 2;
    spec.quantumS = 0.5;
    Cluster c(spec);
    JobDesc fat = trainJob("fat", {0, 1}, 16000);
    fat.share = 2.0;
    JobDesc thin = trainJob("thin", {0, 1}, 16000);
    thin.share = 1.0;
    c.submit(fat);
    c.submit(thin);
    ClusterReport rep = c.run();
    ASSERT_EQ(rep.jobs.size(), 2u);
    const JobReport &f = rep.jobs[0];
    const JobReport &t = rep.jobs[1];
    EXPECT_GT(t.preemptions, 0u);
    EXPECT_LT(f.endS, t.endS);
    // Identical work: both charged the same GPU seconds in total.
    EXPECT_NEAR(f.chargedGpuS, t.chargedGpuS,
                1e-9 * (f.chargedGpuS + 1.0));
    EXPECT_EQ(f.stages.itemsDone, t.stages.itemsDone);
}

TEST(Sched, SubmitRejectsInvalidJobs)
{
    ClusterSpec spec;
    spec.nStores = 4;
    Cluster c(spec);
    JobDesc d = trainJob("bad", {0, 0});
    EXPECT_THROW(c.submit(d), std::invalid_argument);
    d = trainJob("oor", {7});
    EXPECT_THROW(c.submit(d), std::invalid_argument);
    d = trainJob("", {0});
    EXPECT_THROW(c.submit(d), std::invalid_argument);
    JobDesc online;
    online.name = "serve";
    online.kind = JobKind::OnlineServe;
    online.stores = {0};
    EXPECT_THROW(c.submit(online), std::invalid_argument);
    // Offline inference admission reproduces the ViT OOM gate.
    JobDesc oom;
    oom.name = "vit";
    oom.kind = JobKind::OfflineInfer;
    oom.stores = {0};
    oom.model = &ndp::models::vitB16();
    oom.npe.batchSize = 512;
    EXPECT_THROW(c.submit(oom), std::runtime_error);
}

TEST(Sched, SubmitTimesAreHonored)
{
    ClusterSpec spec;
    spec.nStores = 2;
    Cluster c(spec);
    JobDesc d = trainJob("late", {0, 1}, 8000);
    d.submitAtS = 123.0;
    c.submit(d);
    ClusterReport rep = c.run();
    ASSERT_EQ(rep.jobs.size(), 1u);
    EXPECT_BITEQ(rep.jobs[0].startS, 123.0);
    EXPECT_GT(rep.jobs[0].endS, 123.0);
}

} // namespace
