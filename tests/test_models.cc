/**
 * @file
 * Tests for the model zoo: published parameter/compute totals,
 * partition-cut semantics, and structural invariants shared by every
 * model (parameterized over the zoo).
 */

#include <gtest/gtest.h>

#include "models/model.h"
#include "models/zoo.h"

using namespace ndp::models;

class EveryModel : public ::testing::TestWithParam<const ModelSpec *>
{
};

INSTANTIATE_TEST_SUITE_P(
    Zoo, EveryModel, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<const ModelSpec *> &info) {
        return info.param->name();
    });

TEST_P(EveryModel, HasTrailingTrainableClassifier)
{
    const ModelSpec &m = *GetParam();
    size_t cls = m.classifierStart();
    ASSERT_LT(cls, m.numBlocks());
    for (size_t i = cls; i < m.numBlocks(); ++i)
        EXPECT_TRUE(m.blocks()[i].trainable);
    for (size_t i = 0; i < cls; ++i)
        EXPECT_FALSE(m.blocks()[i].trainable);
}

TEST_P(EveryModel, GmacsPartitionAdditive)
{
    const ModelSpec &m = *GetParam();
    for (size_t cut = 0; cut <= m.numBlocks(); ++cut) {
        EXPECT_NEAR(m.gmacsBefore(cut) + m.gmacsAfter(cut),
                    m.totalGmacs(), 1e-9);
    }
    EXPECT_DOUBLE_EQ(m.gmacsBefore(0), 0.0);
    EXPECT_NEAR(m.gmacsBefore(m.numBlocks()), m.totalGmacs(), 1e-9);
}

TEST_P(EveryModel, PartitionCutsValidAndSorted)
{
    const ModelSpec &m = *GetParam();
    auto cuts = m.partitionCuts();
    ASSERT_GE(cuts.size(), 2u);
    EXPECT_EQ(cuts.front(), 0u);
    EXPECT_EQ(cuts.back(), m.numBlocks());
    for (size_t i = 1; i < cuts.size(); ++i)
        EXPECT_LT(cuts[i - 1], cuts[i]);
}

TEST_P(EveryModel, TransferAtZeroIsInput)
{
    const ModelSpec &m = *GetParam();
    EXPECT_DOUBLE_EQ(m.transferMBAt(0), m.inputMB());
}

TEST_P(EveryModel, ClassifierCutShipsTinyFeatures)
{
    const ModelSpec &m = *GetParam();
    // The whole point of FT-DMP: features at the classifier boundary
    // are orders of magnitude smaller than the input.
    EXPECT_LT(m.transferMBAt(m.classifierStart()),
              m.inputMB() / 50.0);
}

TEST_P(EveryModel, TrainableParamsArePositiveMinority)
{
    const ModelSpec &m = *GetParam();
    EXPECT_GT(m.trainableParamsM(), 0.0);
    EXPECT_LT(m.trainableParamsM(), m.totalParamsM() * 0.5);
}

TEST_P(EveryModel, CutSplitsClassifierOnlyPastBoundary)
{
    const ModelSpec &m = *GetParam();
    EXPECT_FALSE(m.cutSplitsClassifier(m.classifierStart()));
    EXPECT_TRUE(m.cutSplitsClassifier(m.numBlocks()));
    EXPECT_FALSE(m.cutSplitsClassifier(0));
}

TEST_P(EveryModel, PositiveBlockMetrics)
{
    const ModelSpec &m = *GetParam();
    for (const auto &b : m.blocks()) {
        EXPECT_GT(b.gmacs, 0.0) << b.name;
        EXPECT_GT(b.outMB, 0.0) << b.name;
        EXPECT_GE(b.paramsM, 0.0) << b.name;
    }
}

TEST(Zoo, PublishedTotalsRoughlyMatch)
{
    // Published MACs (G) and params (M), generous tolerance.
    EXPECT_NEAR(resnet50().totalGmacs(), 4.1, 0.5);
    EXPECT_NEAR(resnet50().totalParamsM(), 25.6, 1.0);
    EXPECT_NEAR(inceptionV3().totalGmacs(), 5.7, 0.6);
    EXPECT_NEAR(inceptionV3().totalParamsM(), 23.8, 1.5);
    EXPECT_NEAR(resnext101().totalGmacs(), 16.5, 1.0);
    EXPECT_NEAR(resnext101().totalParamsM(), 88.8, 2.0);
    EXPECT_NEAR(vitB16().totalGmacs(), 17.6, 1.0);
    EXPECT_NEAR(vitB16().totalParamsM(), 86.4, 2.0);
    EXPECT_NEAR(shufflenetV2().totalGmacs(), 0.146, 0.05);
    EXPECT_NEAR(shufflenetV2().totalParamsM(), 2.3, 0.4);
}

TEST(Zoo, InputSizesMatchPaper)
{
    // §3.4: preprocessed image averages 0.59 MB (fp32 224x224x3).
    EXPECT_NEAR(resnet50().inputMB(), 0.602, 0.01);
    EXPECT_NEAR(vitB16().inputMB(), 0.602, 0.01);
    // InceptionV3 takes 299x299 inputs.
    EXPECT_GT(inceptionV3().inputMB(), resnet50().inputMB());
    EXPECT_EQ(inceptionV3().inputPx(), 299);
}

TEST(Zoo, ResNet50BestCutIsAfterConv5)
{
    const ModelSpec &m = resnet50();
    // Cut 5 = after conv5+pool: 2048 fp16 values = ~4.1 KB.
    EXPECT_EQ(m.classifierStart(), 5u);
    EXPECT_NEAR(m.transferMBAt(5), 0.0041, 5e-4);
}

TEST(Zoo, VitHasThirteenPlusCuts)
{
    // patch embed + 12 encoders + cls-pool + head => 15 blocks.
    EXPECT_EQ(vitB16().numBlocks(), 15u);
    EXPECT_EQ(vitB16().partitionCuts().size(), 16u);
}

TEST(Zoo, ByNameRoundTrips)
{
    for (const ModelSpec *m : allModels())
        EXPECT_EQ(&byName(m->name()), m);
    EXPECT_THROW(byName("AlexNet"), std::out_of_range);
}

TEST(Zoo, FigureModelsExcludeShuffleNet)
{
    auto figs = figureModels();
    EXPECT_EQ(figs.size(), 4u);
    for (auto *m : figs)
        EXPECT_NE(m->name(), "ShuffleNetV2");
}

TEST(Zoo, OrderedBySize)
{
    auto all = allModels();
    EXPECT_LT(all.front()->totalGmacs(), all.back()->totalGmacs());
}

TEST(ModelSpec, GmacsBeforeMonotone)
{
    const ModelSpec &m = resnext101();
    double prev = -1.0;
    for (size_t cut = 0; cut <= m.numBlocks(); ++cut) {
        double g = m.gmacsBefore(cut);
        EXPECT_GT(g, prev);
        prev = g;
    }
}
