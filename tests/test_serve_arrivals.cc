/**
 * @file
 * ArrivalProcess (sim/arrival.h) statistical-tier tests: the seeded
 * lognormal stream matches its target mean and CV within sampling
 * tolerance, the diurnal rate curve integrates to the emitted request
 * count, flash-crowd spikes multiply the local rate, the session table
 * stays bounded, and — the determinism contract — same-seed streams
 * are bit-identical.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/arrival.h"

namespace {

using ndp::sim::ArrivalConfig;
using ndp::sim::ArrivalProcess;
using ndp::sim::Request;
using ndp::sim::RequestKind;
using ndp::sim::SpikeSegment;

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

TEST(ArrivalProcess, GapsMatchTargetMeanAndCv)
{
    ArrivalConfig cfg;
    cfg.nRequests = 200000;
    cfg.baseRatePerSec = 1000.0;
    cfg.interArrivalCv = 1.2;
    cfg.seed = 3;
    ArrivalProcess gen(cfg);

    std::vector<double> gaps;
    Request r;
    double prev = 0.0;
    while (gen.next(r)) {
        gaps.push_back(r.arriveS - prev);
        prev = r.arriveS;
    }
    ASSERT_EQ(gaps.size(), cfg.nRequests);

    double sum = 0.0;
    for (double g : gaps)
        sum += g;
    const double mean = sum / static_cast<double>(gaps.size());
    double var = 0.0;
    for (double g : gaps)
        var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size() - 1);
    const double cv = std::sqrt(var) / mean;

    // Lognormal with cv 1.2 has finite but heavy fourth moments; with
    // 200 k samples the mean is within ~1 % and the CV within ~5 %.
    EXPECT_NEAR(mean, 1.0 / cfg.baseRatePerSec,
                0.01 / cfg.baseRatePerSec);
    EXPECT_NEAR(cv, cfg.interArrivalCv, 0.05 * cfg.interArrivalCv);
}

TEST(ArrivalProcess, DiurnalRateIntegratesToEmittedCount)
{
    ArrivalConfig cfg;
    cfg.nRequests = 100000;
    cfg.baseRatePerSec = 500.0;
    cfg.interArrivalCv = 1.0;
    cfg.diurnalAmplitude = 0.6;
    cfg.diurnalPeriodS = 120.0; // several cycles inside the run
    cfg.seed = 17;
    ArrivalProcess gen(cfg);

    Request r;
    while (gen.next(r)) {
    }
    // The closed-form integral of rate(t) over the emitted span must
    // predict the request count to within sampling noise plus the
    // slowly-varying-rate approximation (the rate moves < 2 % within
    // one mean gap here).
    const double expected = gen.expectedRequests(0.0, gen.now());
    EXPECT_NEAR(expected, static_cast<double>(cfg.nRequests),
                0.02 * static_cast<double>(cfg.nRequests));

    // And the instantaneous rate peaks/troughs where the sinusoid
    // says: extremes at quarter periods.
    EXPECT_NEAR(gen.rateAt(cfg.diurnalPeriodS * 0.25),
                cfg.baseRatePerSec * (1.0 + cfg.diurnalAmplitude),
                1e-6);
    EXPECT_NEAR(gen.rateAt(cfg.diurnalPeriodS * 0.75),
                cfg.baseRatePerSec * (1.0 - cfg.diurnalAmplitude),
                1e-6);
}

TEST(ArrivalProcess, SpikeMultipliesLocalRate)
{
    ArrivalConfig cfg;
    cfg.nRequests = 150000;
    cfg.baseRatePerSec = 1000.0;
    cfg.interArrivalCv = 1.0;
    cfg.spikes.push_back(SpikeSegment{20.0, 10.0, 4.0});
    cfg.seed = 29;
    ArrivalProcess gen(cfg);

    uint64_t inSpike = 0;
    Request r;
    while (gen.next(r))
        if (r.arriveS >= 20.0 && r.arriveS < 30.0)
            ++inSpike;

    // ~4000/s for 10 s inside the window.
    const double expected = gen.expectedRequests(20.0, 30.0);
    EXPECT_NEAR(expected, 4000.0 * 10.0, 1.0);
    EXPECT_NEAR(static_cast<double>(inSpike), expected,
                0.05 * expected);
    // rateAt honors the window edges half-open.
    EXPECT_NEAR(gen.rateAt(20.0), 4000.0, 1e-9);
    EXPECT_NEAR(gen.rateAt(30.0), 1000.0, 1e-9);
}

TEST(ArrivalProcess, SameSeedStreamsBitIdentical)
{
    ArrivalConfig cfg;
    cfg.nRequests = 20000;
    cfg.nUsers = 1000000;
    cfg.diurnalAmplitude = 0.4;
    cfg.diurnalPeriodS = 300.0;
    cfg.spikes.push_back(SpikeSegment{5.0, 2.0, 3.0});
    cfg.seed = 1234;
    ArrivalProcess a(cfg);
    ArrivalProcess b(cfg);

    Request ra;
    Request rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.user, rb.user);
        EXPECT_EQ(ra.kind, rb.kind);
        EXPECT_BITEQ(ra.arriveS, rb.arriveS);
        EXPECT_BITEQ(ra.deadlineS, rb.deadlineS);
        EXPECT_BITEQ(ra.bytes, rb.bytes);
    }
    EXPECT_FALSE(b.next(rb));
    EXPECT_EQ(a.sessionsStarted(), b.sessionsStarted());

    // A different seed must actually move the stream.
    cfg.seed = 1235;
    ArrivalProcess c(cfg);
    cfg.seed = 1234;
    ArrivalProcess orig(cfg);
    ASSERT_TRUE(c.next(ra));
    ASSERT_TRUE(orig.next(rb));
    EXPECT_NE(std::bit_cast<uint64_t>(ra.arriveS),
              std::bit_cast<uint64_t>(rb.arriveS));
}

TEST(ArrivalProcess, SessionTableBoundedOverMillionsOfUsers)
{
    ArrivalConfig cfg;
    cfg.nRequests = 50000;
    cfg.nUsers = 5000000;
    cfg.sessionContinueP = 0.7;
    cfg.maxActiveSessions = 512;
    cfg.seed = 77;
    ArrivalProcess gen(cfg);

    Request r;
    while (gen.next(r)) {
        EXPECT_LT(r.user, cfg.nUsers);
        ASSERT_LE(gen.activeSessions(), cfg.maxActiveSessions);
    }
    // Sessions started is the fresh-session count: roughly
    // (1 - continueP) of the stream, and strictly fewer than requests.
    EXPECT_LT(gen.sessionsStarted(), cfg.nRequests);
    EXPECT_NEAR(static_cast<double>(gen.sessionsStarted()),
                (1.0 - cfg.sessionContinueP) *
                    static_cast<double>(cfg.nRequests),
                0.05 * static_cast<double>(cfg.nRequests));
    EXPECT_EQ(gen.activeSessions(), cfg.maxActiveSessions);
}

TEST(ArrivalProcess, PerKindPayloadAndDeadline)
{
    ArrivalConfig cfg;
    cfg.nRequests = 20000;
    cfg.queryShare = 0.7;
    cfg.seed = 5;
    ArrivalProcess gen(cfg);

    uint64_t queries = 0;
    Request r;
    while (gen.next(r)) {
        if (r.kind == RequestKind::Query) {
            ++queries;
            EXPECT_BITEQ(r.bytes, cfg.queryBytes);
            EXPECT_BITEQ(r.deadlineS, r.arriveS + cfg.queryDeadlineS);
        } else {
            EXPECT_BITEQ(r.bytes, cfg.uploadBytes);
            EXPECT_BITEQ(r.deadlineS, r.arriveS + cfg.uploadDeadlineS);
        }
    }
    EXPECT_NEAR(static_cast<double>(queries),
                cfg.queryShare * static_cast<double>(cfg.nRequests),
                0.03 * static_cast<double>(cfg.nRequests));
}

TEST(ArrivalConfig, ValidateRejectsBadFields)
{
    ArrivalConfig cfg;
    EXPECT_TRUE(cfg.validate().empty());
    cfg.diurnalAmplitude = 1.0;
    EXPECT_FALSE(cfg.validate().empty());
    cfg.diurnalAmplitude = 0.0;
    cfg.sessionContinueP = 1.0;
    EXPECT_FALSE(cfg.validate().empty());
    cfg.sessionContinueP = 0.5;
    cfg.spikes.push_back(SpikeSegment{1.0, -1.0, 2.0});
    EXPECT_FALSE(cfg.validate().empty());
    cfg.spikes.clear();
    cfg.baseRatePerSec = 0.0;
    EXPECT_FALSE(cfg.validate().empty());
}

} // namespace
