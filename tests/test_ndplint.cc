/**
 * @file
 * ndp-lint fixture tests: every rule must fire on its known-bad fixture
 * lines, stay silent on the known-good ones, and honour `ndplint:
 * allow(...)` suppressions. Fixtures live in tools/ndplint/fixtures/
 * (NDPLINT_FIXTURE_DIR) and are lexed, never compiled.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "ndplint/config.h"
#include "ndplint/engine.h"
#include "ndplint/lexer.h"
#include "ndplint/rules.h"

namespace {

using ndp::lint::AnalysisContext;
using ndp::lint::Finding;
using ndp::lint::LintOptions;
using ndp::lint::LintStats;
using ndp::lint::SourceFile;
using ndp::lint::Tok;

std::string
fixturePath(const std::string &name)
{
    return std::string(NDPLINT_FIXTURE_DIR) + "/" + name;
}

LintStats
lintFixture(const std::string &name,
            const std::vector<std::string> &rules = {})
{
    LintOptions opt;
    opt.ruleFilter = rules;
    opt.ignorePathScope = true;
    return ndp::lint::runLint(
        {ndp::lint::lexFile(fixturePath(name))}, opt);
}

bool
anyMessageContains(const LintStats &stats, const std::string &needle)
{
    return std::any_of(stats.findings.begin(), stats.findings.end(),
                       [&](const Finding &f) {
                           return f.message.find(needle) !=
                                  std::string::npos;
                       });
}

TEST(NdpLint, DiscardedTaskFiresOnDrops)
{
    LintStats st = lintFixture("discarded_task.cc", {"discarded-task"});
    ASSERT_EQ(st.findings.size(), 3U);
    EXPECT_TRUE(anyMessageContains(st, "'doWork'"));
    EXPECT_TRUE(anyMessageContains(st, "'helper'"));
    EXPECT_TRUE(anyMessageContains(st, "'drain'"));
    // `poll` is also declared with an int return type: ambiguous names
    // must be skipped, and bound/awaited results are consumed.
    EXPECT_FALSE(anyMessageContains(st, "'poll'"));
    EXPECT_EQ(st.suppressed, 0);
}

TEST(NdpLint, CoroutineRefParamFlagsOnlyCoroutines)
{
    LintStats st = lintFixture("ref_param.cc", {"coroutine-ref-param"});
    ASSERT_EQ(st.findings.size(), 2U);
    EXPECT_TRUE(anyMessageContains(st, "'leakyOne'"));
    EXPECT_TRUE(anyMessageContains(st, "[env]"));
    EXPECT_TRUE(anyMessageContains(st, "'leakyTwo'"));
    EXPECT_TRUE(anyMessageContains(st, "env, tmp"));
    // Value/pointer params and plain functions stay silent.
    EXPECT_FALSE(anyMessageContains(st, "safeByValue"));
    EXPECT_FALSE(anyMessageContains(st, "safeByPointer"));
    EXPECT_FALSE(anyMessageContains(st, "notACoroutine"));
    EXPECT_FALSE(anyMessageContains(st, "alsoPlain"));
}

TEST(NdpLint, RefParamFindingSpansSignatureForSuppression)
{
    // The finding is anchored at the first line of the signature (the
    // return type), so an allow above a multi-line signature works.
    LintStats st = lintFixture("ref_param.cc", {"coroutine-ref-param"});
    ASSERT_FALSE(st.findings.empty());
    for (const Finding &f : st.findings)
        EXPECT_LE(f.line, f.endLine) << f.message;
}

TEST(NdpLint, CoroutineRefCaptureFlagsOnlyCoroutineLambdas)
{
    LintStats st =
        lintFixture("ref_capture.cc", {"coroutine-ref-capture"});
    ASSERT_EQ(st.findings.size(), 2U);
    EXPECT_TRUE(anyMessageContains(st, "&total"));
    // `[&] { co_return; }` has no parameter list and a bare default
    // capture; it must still be recognised as a coroutine lambda.
    EXPECT_TRUE(anyMessageContains(st, "[&]"));
    EXPECT_EQ(st.suppressed, 0);
}

TEST(NdpLint, NondeterminismScopedToSimAndCore)
{
    // Under its real fixture path, the rule's path scope keeps it off
    // (ignorePathScope stays false here).
    LintOptions scoped;
    scoped.ruleFilter = {"banned-nondeterminism"};
    LintStats off = ndp::lint::runLint(
        {ndp::lint::lexFile(fixturePath("nondet.cc"))}, scoped);
    EXPECT_EQ(off.findings.size(), 0U);
}

TEST(NdpLint, NondeterminismFiresUnderSimPath)
{
    // Re-lex the fixture as if it lived in src/sim.
    SourceFile relocated = ndp::lint::lexFile(fixturePath("nondet.cc"));
    relocated.path = "src/sim/nondet.cc";
    LintOptions opt;
    opt.ruleFilter = {"banned-nondeterminism"};
    LintStats st = ndp::lint::runLint({relocated}, opt);
    // rand, srand, time, steady/system/high_resolution clocks,
    // random_device, and one unordered range-for.
    ASSERT_EQ(st.findings.size(), 8U);
    EXPECT_TRUE(anyMessageContains(st, "std::rand()"));
    EXPECT_TRUE(anyMessageContains(st, "std::srand()"));
    EXPECT_TRUE(anyMessageContains(st, "time()"));
    EXPECT_TRUE(anyMessageContains(st, "steady_clock"));
    EXPECT_TRUE(anyMessageContains(st, "system_clock"));
    EXPECT_TRUE(anyMessageContains(st, "high_resolution_clock"));
    EXPECT_TRUE(anyMessageContains(st, "random_device"));
    EXPECT_TRUE(anyMessageContains(st, "'table'"));
    // Ordered iteration and member functions named `time` are fine.
    EXPECT_FALSE(anyMessageContains(st, "'sorted'"));
}

TEST(NdpLint, NondeterminismFiresUnderMonitorPath)
{
    // The health monitor joined the rule's include list: relocated
    // under src/obs/monitor.cc the wall-clock fixture findings fire
    // exactly as they do under src/sim.
    SourceFile relocated = ndp::lint::lexFile(fixturePath("nondet.cc"));
    relocated.path = "src/obs/monitor.cc";
    LintOptions opt;
    opt.ruleFilter = {"banned-nondeterminism"};
    LintStats st = ndp::lint::runLint({relocated}, opt);
    EXPECT_EQ(st.findings.size(), 8U);
}

TEST(NdpLint, MonitorExportSuppressionCarriesRationale)
{
    // The one sanctioned monitor exception: a diagnostic wall-clock
    // read on the post-run JSON-export path, suppressed with the
    // after-s.run() rationale the audit surfaces.
    SourceFile relocated =
        ndp::lint::lexFile(fixturePath("monitor_suppressed.cc"));
    relocated.path = "src/obs/monitor.cc";
    LintOptions opt;
    opt.ruleFilter = {"banned-nondeterminism"};
    LintStats st = ndp::lint::runLint({relocated}, opt);
    EXPECT_EQ(st.findings.size(), 0U);
    EXPECT_EQ(st.suppressed, 1);
    auto audit = ndp::lint::auditSuppressions({relocated});
    EXPECT_EQ(audit.total, 1);
    EXPECT_EQ(audit.unrationaled, 0);
    EXPECT_NE(audit.text.find("after s.run()"), std::string::npos);
}

TEST(NdpLint, FloatAccumOrderFlagsUnorderedSumsOnly)
{
    LintStats st = lintFixture("float_accum.cc", {"float-accum-order"});
    ASSERT_EQ(st.findings.size(), 2U);
    EXPECT_TRUE(anyMessageContains(st, "'sum +='"));
    EXPECT_TRUE(anyMessageContains(st, "'acc +='"));
    // Ordered containers, vectors, and integer accumulators are fine.
    EXPECT_FALSE(anyMessageContains(st, "'count +='"));
    EXPECT_FALSE(anyMessageContains(st, "'ordered'"));
    EXPECT_FALSE(anyMessageContains(st, "'xs'"));
}

TEST(NdpLint, AnalyticNetMathFlagsDivisorRatesOnly)
{
    LintStats st =
        lintFixture("analytic_net_math.cc", {"analytic-net-math"});
    // The three BAD sites; numerator rates, literal divisors, and the
    // suppressed codec-rate division stay silent.
    ASSERT_EQ(st.findings.size(), 3U);
    EXPECT_TRUE(anyMessageContains(st, "'networkGbps'"));
    EXPECT_TRUE(anyMessageContains(st, "'gbps'"));
    EXPECT_TRUE(anyMessageContains(st, "'readMBps'"));
    EXPECT_EQ(st.suppressed, 1);
}

TEST(NdpLintEngine, AnalyticNetMathScopedOffFabricAndHw)
{
    // Scoping now lives in ScopeConfig (.ndplint.json), not on rules.
    // The fabric and the hw spec formulas are the sanctioned homes for
    // rate arithmetic; everywhere else the rule applies.
    const auto cfg = ndp::lint::ScopeConfig::builtin();
    EXPECT_FALSE(cfg.appliesTo("analytic-net-math", "src/net/fabric.cc"));
    EXPECT_FALSE(cfg.appliesTo("analytic-net-math", "src/net/estimate.h"));
    EXPECT_FALSE(cfg.appliesTo("analytic-net-math", "src/hw/specs.h"));
    EXPECT_TRUE(cfg.appliesTo("analytic-net-math", "src/core/apo.cc"));
    EXPECT_TRUE(cfg.appliesTo("analytic-net-math",
                              "bench/bench_fig06_ndp_breakdown.cc"));
    EXPECT_TRUE(cfg.appliesTo("analytic-net-math",
                              "tests/test_core_inference.cc"));
}

TEST(NdpLint, SuppressionsCoverEveryPlacementForm)
{
    // Inline, line-above, top-of-comment-block, wildcard, and
    // doc-comment placements all suppress; an allow naming the wrong
    // rule does not.
    LintStats st = lintFixture("suppress.cc");
    ASSERT_EQ(st.findings.size(), 1U);
    EXPECT_EQ(st.findings[0].rule, "discarded-task");
    EXPECT_TRUE(anyMessageContains(st, "'fireAndForget'"));
    EXPECT_EQ(st.suppressed, 5);
}

TEST(NdpLint, UnbalancedSpanFlagsBarePrimitives)
{
    LintStats st =
        lintFixture("unbalanced_span.cc", {"unbalanced-span"});
    // The bare begin() and the bare end(); the suppressed begin()
    // counts as suppressed. Container begin()/end() (empty argument
    // lists) and SpanGuard construction stay silent.
    ASSERT_EQ(st.findings.size(), 2U);
    EXPECT_TRUE(anyMessageContains(st, "'begin(...)'"));
    EXPECT_TRUE(anyMessageContains(st, "'end(...)'"));
    EXPECT_EQ(st.suppressed, 1);
    for (const Finding &f : st.findings)
        EXPECT_EQ(f.rule, "unbalanced-span");
}

TEST(NdpLint, UnbalancedSpanScopedOutOfObsAndTools)
{
    // The primitives' own home (src/obs) and the trace tooling are
    // out of scope; everything else is in.
    const auto cfg = ndp::lint::ScopeConfig::builtin();
    EXPECT_FALSE(cfg.appliesTo("unbalanced-span", "src/obs/trace.cc"));
    EXPECT_FALSE(
        cfg.appliesTo("unbalanced-span", "tools/ndptrace/analyzer.cc"));
    EXPECT_TRUE(cfg.appliesTo("unbalanced-span", "src/core/pipeline.cc"));
    EXPECT_TRUE(cfg.appliesTo("unbalanced-span", "tests/test_trace.cc"));
}

TEST(NdpLint, CleanFixtureIsSilent)
{
    LintStats st = lintFixture("clean.cc");
    EXPECT_EQ(st.findings.size(), 0U);
    EXPECT_EQ(st.suppressed, 0);
}

TEST(NdpLint, WholeTreeScansClean)
{
    // The acceptance bar for the repo itself: zero unsuppressed
    // violations under the shipped path scoping (mirrors the
    // `ndp_lint` build target; fixtures are deliberately excluded).
    namespace fs = std::filesystem;
    std::vector<SourceFile> files;
    const char *roots[] = {"src", "tests", "bench", "examples"};
    for (const char *root : roots) {
        fs::path p = fs::path(NDPLINT_REPO_DIR) / root;
        if (!fs::exists(p))
            continue;
        for (const auto &e : fs::recursive_directory_iterator(p)) {
            if (!e.is_regular_file())
                continue;
            auto ext = e.path().extension().string();
            if (ext != ".cc" && ext != ".h")
                continue;
            files.push_back(ndp::lint::lexFile(e.path().string()));
        }
    }
    ASSERT_FALSE(files.empty());
    LintStats st = ndp::lint::runLint(files, {});
    for (const Finding &f : st.findings)
        ADD_FAILURE() << f.path << ":" << f.line << " [" << f.rule
                      << "] " << f.message;
    EXPECT_EQ(st.findings.size(), 0U);
}

// ---------------------------------------------------------------------------
// Lexer + context unit tests (no fixtures).
// ---------------------------------------------------------------------------

TEST(NdpLintLexer, StringsAndCommentsAreOpaque)
{
    SourceFile f = ndp::lint::lexSource(
        "mem.cc",
        "// std::rand() here\n"
        "/* time(nullptr) there */\n"
        "const char *s = \"std::rand()\";\n"
        "const char *r = R\"(rand() srand())\";\n");
    for (const auto &t : f.tokens) {
        if (t.kind != Tok::Identifier)
            continue;
        EXPECT_NE(t.text, "rand") << "line " << t.line;
        EXPECT_NE(t.text, "time") << "line " << t.line;
    }
}

TEST(NdpLintLexer, AllowDirectiveParsesRuleLists)
{
    SourceFile f = ndp::lint::lexSource(
        "mem.cc",
        "int x; // ndplint: allow(rule-a, rule-b): rationale\n"
        "/* ndplint: allow(*) */\n"
        "int y;\n");
    ASSERT_EQ(f.allows.count(1), 1U);
    EXPECT_EQ(f.allows.at(1).count("rule-a"), 1U);
    EXPECT_EQ(f.allows.at(1).count("rule-b"), 1U);
    ASSERT_EQ(f.allows.count(2), 1U);
    EXPECT_EQ(f.allows.at(2).count("*"), 1U);
    // Code-line tracking: 1 and 3 carry tokens, 2 is comment-only.
    EXPECT_EQ(f.codeLines.count(1), 1U);
    EXPECT_EQ(f.codeLines.count(2), 0U);
    EXPECT_EQ(f.codeLines.count(3), 1U);
}

TEST(NdpLintContext, AmbiguousReturnTypesAreExcluded)
{
    AnalysisContext ctx;
    SourceFile f = ndp::lint::lexSource(
        "mem.cc",
        "sim::Task pureTask(int n);\n"
        "sim::Task both();\n"
        "int both();\n"
        "Task Store::method(double x);\n");
    ndp::lint::collectTaskFunctions(f, ctx);
    EXPECT_TRUE(ctx.returnsTask("pureTask"));
    EXPECT_FALSE(ctx.returnsTask("both"));
    EXPECT_TRUE(ctx.returnsTask("method"));
    EXPECT_FALSE(ctx.returnsTask("unknown"));
}

TEST(NdpLintEngine, PathScopeLimitsNondeterminismRule)
{
    const auto cfg = ndp::lint::ScopeConfig::builtin();
    const std::string rule = "banned-nondeterminism";
    EXPECT_TRUE(cfg.appliesTo(rule, "src/sim/simulator.h"));
    EXPECT_TRUE(cfg.appliesTo(rule, "src/core/pipeline.cc"));
    // The scheduler subtree is inside src/core and stays in scope.
    EXPECT_TRUE(cfg.appliesTo(rule, "src/core/sched/scheduler.cc"));
    EXPECT_TRUE(cfg.appliesTo(rule, "src/core/sched/cluster.cc"));
    // The health monitor is explicitly in scope: its passive contract
    // (monitored run == unmonitored run) requires determinism too.
    EXPECT_TRUE(cfg.appliesTo(rule, "src/obs/monitor.cc"));
    EXPECT_TRUE(cfg.appliesTo(rule, "src/obs/monitor.h"));
    // ...but the rest of src/obs (trace.cc writes wall-clock-free
    // JSON but is not monitored state) stays out.
    EXPECT_FALSE(cfg.appliesTo(rule, "src/obs/trace.cc"));
    EXPECT_FALSE(cfg.appliesTo(rule, "tools/ndplint/rules.cc"));
    EXPECT_FALSE(cfg.appliesTo(rule, "bench/bench_micro_sim.cc"));
}

TEST(NdpLintEngine, RenderersIncludeFindingsAndSummary)
{
    LintStats st = lintFixture("discarded_task.cc", {"discarded-task"});
    std::string text = ndp::lint::renderText(st);
    EXPECT_NE(text.find("error: [discarded-task]"), std::string::npos);
    EXPECT_NE(text.find("3 violation(s)"), std::string::npos);
    std::string json = ndp::lint::renderJson(st);
    EXPECT_NE(json.find("\"rule\": \"discarded-task\""),
              std::string::npos);
    EXPECT_NE(json.find("\"filesScanned\": 1"), std::string::npos);
}

} // namespace
