/**
 * @file
 * Tests for the online-inference latency simulator: queueing behaviour
 * under light/heavy load, capacity estimation, and Adam (which shares
 * this file as the remaining nn addition exercised at system level).
 */

#include <gtest/gtest.h>

#include "core/online.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

using namespace ndp;
using namespace ndp::core;

TEST(Online, LightLoadLatencyNearServiceTime)
{
    OnlineConfig cfg;
    cfg.arrivalsPerSec = 5.0; // far below capacity
    cfg.nUploads = 3000;
    auto r = runOnlineInference(cfg);
    // Service time = preprocess (~65 ms) + batch-1 inference.
    EXPECT_GT(r.p50Ms, 60.0);
    EXPECT_LT(r.p50Ms, 90.0);
    EXPECT_FALSE(r.saturated);
    EXPECT_LT(r.gpuUtil, 0.2);
}

TEST(Online, LatencyGrowsWithLoad)
{
    OnlineConfig light, heavy;
    light.arrivalsPerSec = 10.0;
    light.nUploads = 4000;
    heavy = light;
    heavy.arrivalsPerSec = 100.0; // ~81% of the 123/s CPU capacity
    auto rl = runOnlineInference(light);
    auto rh = runOnlineInference(heavy);
    EXPECT_GT(rh.p95Ms, rl.p95Ms);
    EXPECT_GT(rh.cpuUtil, rl.cpuUtil);
}

TEST(Online, OverloadSaturates)
{
    OnlineConfig cfg;
    cfg.arrivalsPerSec = 400.0; // >> capacity
    cfg.nUploads = 4000;
    auto r = runOnlineInference(cfg);
    EXPECT_TRUE(r.saturated);
    // Served throughput is pinned at the capacity, not the offer.
    EXPECT_LT(r.throughput, 150.0);
    EXPECT_GT(r.cpuUtil, 0.95);
}

TEST(Online, CapacityIsPreprocessBound)
{
    OnlineConfig cfg;
    double cap = onlineCapacity(cfg);
    // 8 cores x 15.4 img/s/core.
    EXPECT_NEAR(cap, 8.0 * 15.4, 1.0);
    // With plenty of cores the single V100 at batch 1 binds instead.
    cfg.preprocessCores = 16;
    double cap16 = onlineCapacity(cfg);
    EXPECT_GT(cap16, cap);
    EXPECT_LT(cap16, 16.0 * 15.4); // GPU-bound before 246/s
}

TEST(Online, ThroughputMatchesOfferUnderCapacity)
{
    OnlineConfig cfg;
    cfg.arrivalsPerSec = 40.0;
    cfg.nUploads = 8000;
    auto r = runOnlineInference(cfg);
    EXPECT_NEAR(r.throughput, 40.0, 2.0);
}

TEST(Online, PercentilesOrdered)
{
    OnlineConfig cfg;
    cfg.arrivalsPerSec = 80.0;
    cfg.nUploads = 5000;
    auto r = runOnlineInference(cfg);
    EXPECT_LE(r.p50Ms, r.p95Ms);
    EXPECT_LE(r.p95Ms, r.p99Ms);
    EXPECT_GT(r.meanMs, 0.0);
}

TEST(Online, DeterministicForSeed)
{
    OnlineConfig cfg;
    cfg.arrivalsPerSec = 50.0;
    cfg.nUploads = 2000;
    auto a = runOnlineInference(cfg);
    auto b = runOnlineInference(cfg);
    EXPECT_DOUBLE_EQ(a.p99Ms, b.p99Ms);
    cfg.seed = 12;
    auto c = runOnlineInference(cfg);
    EXPECT_NE(a.p99Ms, c.p99Ms);
}

TEST(Adam, ConvergesOnQuadratic)
{
    Rng rng(1);
    nn::Linear lin(1, 1, rng);
    lin.bias().value.fill(0.0f);
    lin.weight().value.at(0, 0) = 4.0f;
    nn::AdamConfig cfg;
    cfg.lr = 0.1;
    nn::Adam opt(lin.params(), cfg);
    for (int i = 0; i < 200; ++i) {
        lin.weight().grad.at(0, 0) = lin.weight().value.at(0, 0);
        opt.step();
    }
    EXPECT_NEAR(lin.weight().value.at(0, 0), 0.0f, 1e-2f);
    EXPECT_EQ(opt.steps(), 200);
}

TEST(Adam, StepSizeBoundedByLr)
{
    // Adam's first update magnitude is ~lr regardless of grad scale.
    Rng rng(2);
    nn::Linear lin(1, 1, rng);
    float before = lin.weight().value.at(0, 0);
    nn::AdamConfig cfg;
    cfg.lr = 0.05;
    nn::Adam opt(lin.params(), cfg);
    lin.weight().grad.at(0, 0) = 1e6f; // huge gradient
    opt.step();
    EXPECT_NEAR(std::abs(lin.weight().value.at(0, 0) - before), 0.05f,
                0.01f);
}

TEST(Adam, ClearsGradients)
{
    Rng rng(3);
    nn::Linear lin(2, 2, rng);
    nn::Adam opt(lin.params(), nn::AdamConfig{});
    lin.weight().grad.fill(1.0f);
    opt.step();
    for (float v : lin.weight().grad.data())
        EXPECT_EQ(v, 0.0f);
}
