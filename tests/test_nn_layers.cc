/**
 * @file
 * Layer tests, centered on numerical gradient checking: every layer's
 * backward pass is validated against finite differences of a scalar
 * loss, including the weight-freeze semantics fine-tuning relies on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.h"
#include "nn/loss.h"

using namespace ndp;
using namespace ndp::nn;

namespace {

/** Scalar loss = sum of squares of the layer output / 2. */
double
forwardLoss(Layer &layer, const Tensor &x)
{
    Tensor y = layer.forward(x);
    return 0.5 * y.sumSquares();
}

/** Backprop of the same loss; returns dL/dx and fills param grads. */
Tensor
backwardLoss(Layer &layer, const Tensor &x)
{
    Tensor y = layer.forward(x);
    // dL/dy = y for L = 0.5*sum(y^2).
    return layer.backward(y);
}

/** Central finite difference of the loss w.r.t. one float. */
double
numericalGrad(Layer &layer, Tensor &x, float &slot)
{
    const float eps = 1e-3f;
    float orig = slot;
    slot = orig + eps;
    double lp = forwardLoss(layer, x);
    slot = orig - eps;
    double lm = forwardLoss(layer, x);
    slot = orig;
    return (lp - lm) / (2.0 * eps);
}

} // namespace

TEST(Linear, ForwardComputesAffineMap)
{
    Rng rng(1);
    Linear lin(2, 2, rng);
    lin.weight().value.fill(0.0f);
    lin.weight().value.at(0, 0) = 1.0f;
    lin.weight().value.at(1, 1) = 2.0f;
    lin.bias().value.at(0, 0) = 0.5f;

    Tensor x(1, 2);
    x.at(0, 0) = 3.0f;
    x.at(0, 1) = 4.0f;
    Tensor y = lin.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 8.0f);
}

TEST(Linear, GradientCheckInput)
{
    Rng rng(2);
    Linear lin(4, 3, rng);
    Tensor x = Tensor::randn(2, 4, rng, 1.0f);
    Tensor gx = backwardLoss(lin, x);
    for (size_t i = 0; i < x.size(); ++i) {
        double num = numericalGrad(lin, x, x.data()[i]);
        EXPECT_NEAR(gx.data()[i], num, 5e-2) << "input grad " << i;
    }
}

TEST(Linear, GradientCheckWeightsAndBias)
{
    Rng rng(3);
    Linear lin(3, 2, rng);
    Tensor x = Tensor::randn(4, 3, rng, 1.0f);
    lin.zeroGrad();
    backwardLoss(lin, x);
    Tensor wg = lin.weight().grad;
    Tensor bg = lin.bias().grad;
    for (size_t i = 0; i < lin.weight().value.size(); ++i) {
        double num =
            numericalGrad(lin, x, lin.weight().value.data()[i]);
        EXPECT_NEAR(wg.data()[i], num, 5e-2) << "weight grad " << i;
    }
    for (size_t i = 0; i < lin.bias().value.size(); ++i) {
        double num = numericalGrad(lin, x, lin.bias().value.data()[i]);
        EXPECT_NEAR(bg.data()[i], num, 5e-2) << "bias grad " << i;
    }
}

TEST(Linear, GradAccumulatesAcrossBackwardCalls)
{
    Rng rng(4);
    Linear lin(3, 3, rng);
    Tensor x = Tensor::randn(2, 3, rng, 1.0f);
    lin.zeroGrad();
    backwardLoss(lin, x);
    Tensor once = lin.weight().grad;
    backwardLoss(lin, x);
    for (size_t i = 0; i < once.size(); ++i)
        EXPECT_NEAR(lin.weight().grad.data()[i], 2.0f * once.data()[i],
                    1e-3f);
}

TEST(Linear, FrozenSkipsParamGradsButPropagates)
{
    Rng rng(5);
    Linear lin(3, 3, rng);
    lin.setFrozen(true);
    EXPECT_TRUE(lin.params().empty());
    EXPECT_EQ(lin.allParams().size(), 2u);

    Tensor x = Tensor::randn(2, 3, rng, 1.0f);
    lin.zeroGrad();
    Tensor gx = backwardLoss(lin, x);
    for (float v : lin.weight().grad.data())
        EXPECT_EQ(v, 0.0f);
    // Input gradient still flows (weight-freeze layers backprop).
    double norm = 0.0;
    for (float v : gx.data())
        norm += std::fabs(v);
    EXPECT_GT(norm, 0.0);
}

TEST(ReLU, ForwardClampsNegatives)
{
    ReLU relu;
    Tensor x(1, 4);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 0.0f;
    x.at(0, 2) = 2.0f;
    x.at(0, 3) = -0.5f;
    Tensor y = relu.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(y.at(0, 3), 0.0f);
}

TEST(ReLU, GradientCheck)
{
    Rng rng(6);
    ReLU relu;
    Tensor x = Tensor::randn(3, 5, rng, 1.0f);
    // Keep inputs away from the kink at 0.
    for (auto &v : x.data()) {
        if (std::fabs(v) < 0.05f)
            v = 0.2f;
    }
    Tensor gx = backwardLoss(relu, x);
    for (size_t i = 0; i < x.size(); ++i) {
        double num = numericalGrad(relu, x, x.data()[i]);
        EXPECT_NEAR(gx.data()[i], num, 5e-2);
    }
}

TEST(Tanh, GradientCheck)
{
    Rng rng(7);
    Tanh tanh_layer;
    Tensor x = Tensor::randn(3, 5, rng, 0.8f);
    Tensor gx = backwardLoss(tanh_layer, x);
    for (size_t i = 0; i < x.size(); ++i) {
        double num = numericalGrad(tanh_layer, x, x.data()[i]);
        EXPECT_NEAR(gx.data()[i], num, 5e-2);
    }
}

TEST(Tanh, OutputBounded)
{
    Rng rng(8);
    Tanh t;
    Tensor x = Tensor::randn(10, 10, rng, 5.0f);
    Tensor y = t.forward(x);
    for (float v : y.data()) {
        EXPECT_LE(v, 1.0f);
        EXPECT_GE(v, -1.0f);
    }
}

TEST(Sequential, ComposesLayers)
{
    Rng rng(9);
    Sequential seq;
    seq.emplace<Linear>(4, 8, rng);
    seq.emplace<ReLU>();
    seq.emplace<Linear>(8, 3, rng);
    EXPECT_EQ(seq.depth(), 3u);
    EXPECT_EQ(seq.params().size(), 4u);
    EXPECT_EQ(seq.paramCount(), 4u * 8u + 8u + 8u * 3u + 3u);

    Tensor x = Tensor::randn(2, 4, rng, 1.0f);
    Tensor y = seq.forward(x);
    EXPECT_EQ(y.rows(), 2u);
    EXPECT_EQ(y.cols(), 3u);
}

TEST(Sequential, GradientCheckEndToEnd)
{
    Rng rng(10);
    Sequential seq;
    seq.emplace<Linear>(3, 5, rng);
    seq.emplace<Tanh>();
    seq.emplace<Linear>(5, 2, rng);
    Tensor x = Tensor::randn(2, 3, rng, 1.0f);
    Tensor gx = backwardLoss(seq, x);
    for (size_t i = 0; i < x.size(); ++i) {
        double num = numericalGrad(seq, x, x.data()[i]);
        EXPECT_NEAR(gx.data()[i], num, 5e-2);
    }
}

TEST(Sequential, MakeClassifierShapes)
{
    Rng rng(11);
    Sequential deep = makeClassifier(16, 32, 10, rng);
    EXPECT_EQ(deep.depth(), 3u);
    Sequential shallow = makeClassifier(16, 0, 10, rng);
    EXPECT_EQ(shallow.depth(), 1u);
    Tensor x = Tensor::randn(4, 16, rng, 1.0f);
    EXPECT_EQ(deep.forward(x).cols(), 10u);
    EXPECT_EQ(shallow.forward(x).cols(), 10u);
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(12);
    Tensor logits = Tensor::randn(5, 7, rng, 3.0f);
    Tensor p = softmax(logits);
    for (size_t i = 0; i < p.rows(); ++i) {
        float sum = 0.0f;
        for (size_t j = 0; j < p.cols(); ++j) {
            sum += p.at(i, j);
            EXPECT_GE(p.at(i, j), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Softmax, NumericallyStableForLargeLogits)
{
    Tensor logits(1, 3);
    logits.at(0, 0) = 10000.0f;
    logits.at(0, 1) = 9999.0f;
    logits.at(0, 2) = -10000.0f;
    Tensor p = softmax(logits);
    EXPECT_FALSE(std::isnan(p.at(0, 0)));
    EXPECT_GT(p.at(0, 0), p.at(0, 1));
    EXPECT_NEAR(p.at(0, 2), 0.0f, 1e-6f);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss)
{
    Tensor logits(2, 3);
    logits.at(0, 1) = 100.0f;
    logits.at(1, 2) = 100.0f;
    auto r = softmaxCrossEntropy(logits, {1, 2});
    EXPECT_NEAR(r.loss, 0.0, 1e-6);
}

TEST(CrossEntropy, UniformLogitsGiveLogC)
{
    Tensor logits(1, 10);
    auto r = softmaxCrossEntropy(logits, {3});
    EXPECT_NEAR(r.loss, std::log(10.0), 1e-6);
}

TEST(CrossEntropy, GradientSumsToZeroPerRow)
{
    Rng rng(13);
    Tensor logits = Tensor::randn(4, 6, rng, 1.0f);
    auto r = softmaxCrossEntropy(logits, {0, 1, 2, 3});
    for (size_t i = 0; i < 4; ++i) {
        float sum = 0.0f;
        for (size_t j = 0; j < 6; ++j)
            sum += r.gradLogits.at(i, j);
        EXPECT_NEAR(sum, 0.0f, 1e-6f);
    }
}

TEST(CrossEntropy, GradientCheck)
{
    Rng rng(14);
    Tensor logits = Tensor::randn(3, 4, rng, 1.0f);
    std::vector<int> labels = {2, 0, 3};
    auto r = softmaxCrossEntropy(logits, labels);
    const float eps = 1e-3f;
    for (size_t i = 0; i < logits.size(); ++i) {
        float orig = logits.data()[i];
        logits.data()[i] = orig + eps;
        double lp = softmaxCrossEntropy(logits, labels).loss;
        logits.data()[i] = orig - eps;
        double lm = softmaxCrossEntropy(logits, labels).loss;
        logits.data()[i] = orig;
        double num = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(r.gradLogits.data()[i], num, 1e-3);
    }
}

TEST(Metrics, TopKAccuracy)
{
    Tensor logits(2, 4);
    // Row 0: label 1 ranked 2nd; row 1: label 3 ranked 1st.
    logits.at(0, 0) = 3.0f;
    logits.at(0, 1) = 2.0f;
    logits.at(0, 2) = 1.0f;
    logits.at(1, 3) = 5.0f;
    std::vector<int> y = {1, 3};
    EXPECT_DOUBLE_EQ(topKAccuracy(logits, y, 1), 0.5);
    EXPECT_DOUBLE_EQ(topKAccuracy(logits, y, 2), 1.0);
}

TEST(Metrics, ArgmaxRows)
{
    Tensor logits(2, 3);
    logits.at(0, 2) = 1.0f;
    logits.at(1, 0) = 1.0f;
    auto preds = argmaxRows(logits);
    EXPECT_EQ(preds[0], 2);
    EXPECT_EQ(preds[1], 0);
}
