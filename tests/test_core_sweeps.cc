/**
 * @file
 * Cross-cutting parameterized sweeps over (model x system) space:
 * invariants every combination must satisfy, independent of
 * calibration details. These act as regression guards for the
 * experiment harness as a whole.
 */

#include <gtest/gtest.h>

#include "core/apo.h"
#include "core/cost.h"
#include "core/training.h"
#include "models/throughput.h"

using namespace ndp;
using namespace ndp::core;

class ModelSweep
    : public ::testing::TestWithParam<const models::ModelSpec *>
{
  protected:
    ExperimentConfig
    cfg() const
    {
        ExperimentConfig c;
        c.model = GetParam();
        c.nImages = 200000;
        c.nStores = 4;
        return c;
    }
};

INSTANTIATE_TEST_SUITE_P(
    Models, ModelSweep, ::testing::ValuesIn(models::allModels()),
    [](const ::testing::TestParamInfo<const models::ModelSpec *> &i) {
        return i.param->name();
    });

TEST_P(ModelSweep, TrainingCrossoverExistsWithinTwentyStores)
{
    auto c = cfg();
    c.nImages = 600000;
    auto srv = runSrvFineTuning(c);
    c.nStores = 20;
    TrainOptions opt;
    auto ndp = runFtDmpTraining(c, opt);
    EXPECT_LT(ndp.seconds, srv.seconds) << c.model->name();
}

TEST_P(ModelSweep, FeatureTrafficIsTinyVersusInputs)
{
    auto c = cfg();
    TrainOptions opt;
    auto r = runFtDmpTraining(c, opt);
    double input_bytes = c.nImages * c.model->inputMB() * 1e6;
    EXPECT_LT(r.dataTrafficBytes, input_bytes / 50.0)
        << c.model->name();
}

TEST_P(ModelSweep, PipeliningNeverHurts)
{
    auto c = cfg();
    TrainOptions serial;
    serial.nRun = 3;
    serial.pipelined = false;
    TrainOptions piped = serial;
    piped.pipelined = true;
    EXPECT_LE(runFtDmpTraining(c, piped).seconds,
              runFtDmpTraining(c, serial).seconds * 1.001)
        << c.model->name();
}

TEST_P(ModelSweep, ApoPredictionPositiveAndFinite)
{
    auto c = cfg();
    TrainOptions opt;
    auto choice = findBestPoint(c, opt);
    EXPECT_GT(choice.predictedTotalS, 0.0);
    EXPECT_LT(choice.predictedTotalS, 1e7);
    EXPECT_LE(choice.cut, c.model->classifierStart());
}

TEST_P(ModelSweep, EnergyScalesWithFleetPower)
{
    auto c = cfg();
    TrainOptions opt;
    c.nStores = 2;
    auto small = runFtDmpTraining(c, opt);
    c.nStores = 8;
    auto big = runFtDmpTraining(c, opt);
    EXPECT_GT(big.power.totalW(), small.power.totalW());
}

TEST_P(ModelSweep, CostsAreConsistent)
{
    auto c = cfg();
    TrainOptions opt;
    auto r = runFtDmpTraining(c, opt);
    double usd = ndpipeRunCostUsd(c, r.seconds);
    EXPECT_GT(usd, 0.0);
    // Doubling the wall time doubles the bill.
    EXPECT_NEAR(ndpipeRunCostUsd(c, 2.0 * r.seconds), 2.0 * usd,
                1e-9);
}

class VariantSweep : public ::testing::TestWithParam<SrvVariant>
{
};

INSTANTIATE_TEST_SUITE_P(Variants, VariantSweep,
                         ::testing::Values(SrvVariant::RawRemote,
                                           SrvVariant::RawLocal,
                                           SrvVariant::Ideal,
                                           SrvVariant::Preprocessed,
                                           SrvVariant::Compressed),
                         [](const ::testing::TestParamInfo<SrvVariant>
                                &i) {
                             std::string n =
                                 srvVariantName(i.param);
                             for (auto &ch : n) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(
                                             ch)))
                                     ch = '_';
                             }
                             return n;
                         });

TEST_P(VariantSweep, ProcessesEveryImageExactlyOnce)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 30001; // uneven
    auto r = runSrvOfflineInference(cfg, GetParam());
    EXPECT_EQ(r.images, cfg.nImages);
    EXPECT_GT(r.ips, 0.0);
    EXPECT_GT(r.seconds, 0.0);
}

TEST_P(VariantSweep, NeverExceedsGpuCeiling)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 50000;
    auto r = runSrvOfflineInference(cfg, GetParam());
    double ceiling =
        cfg.hostSpec.nGpus *
        models::deviceIps(*cfg.hostSpec.gpu, *cfg.model,
                          cfg.npe.batchSize);
    EXPECT_LE(r.ips, ceiling * 1.01);
}

TEST_P(VariantSweep, PowerWithinNameplateBounds)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnext101();
    cfg.nImages = 20000;
    auto r = runSrvOfflineInference(cfg, GetParam());
    double max_w =
        hw::serverPower(cfg.hostSpec, 1.0, 1.0).totalW() +
        cfg.srvStorageServers *
            hw::serverPower(cfg.srvStoreSpec, 1.0, 1.0).totalW();
    EXPECT_GT(r.power.totalW(), 0.0);
    EXPECT_LE(r.power.totalW(), max_w);
}
