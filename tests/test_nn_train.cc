/**
 * @file
 * Tests for the optimizer, dataset utilities, and training loop: SGD
 * actually descends, momentum and weight decay act as specified, the
 * trainer solves separable problems, and the paper's convergence
 * criterion stops training.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

using namespace ndp;
using namespace ndp::nn;

namespace {

/** Two well-separated Gaussian blobs in 2-D. */
Dataset
twoBlobs(size_t n_per_class, Rng &rng, float sep = 4.0f)
{
    Dataset ds;
    ds.x = Tensor(2 * n_per_class, 2);
    for (size_t i = 0; i < 2 * n_per_class; ++i) {
        int cls = i < n_per_class ? 0 : 1;
        float cx = cls == 0 ? -sep / 2 : sep / 2;
        ds.x.at(i, 0) = cx + static_cast<float>(rng.normal());
        ds.x.at(i, 1) = static_cast<float>(rng.normal());
        ds.y.push_back(cls);
    }
    return ds;
}

} // namespace

TEST(Sgd, StepReducesSimpleQuadratic)
{
    // Minimize 0.5*w^2 via grad = w.
    Rng rng(1);
    Linear lin(1, 1, rng);
    lin.bias().value.fill(0.0f);
    lin.weight().value.at(0, 0) = 4.0f;
    SgdConfig cfg;
    cfg.lr = 0.1;
    cfg.momentum = 0.0;
    cfg.weightDecay = 0.0;
    Sgd opt(lin.params(), cfg);
    for (int i = 0; i < 50; ++i) {
        lin.weight().grad.at(0, 0) = lin.weight().value.at(0, 0);
        opt.step();
    }
    EXPECT_NEAR(lin.weight().value.at(0, 0), 0.0f, 5e-2f);
}

TEST(Sgd, StepClearsGradients)
{
    Rng rng(2);
    Linear lin(2, 2, rng);
    Sgd opt(lin.params(), SgdConfig{});
    lin.weight().grad.fill(1.0f);
    opt.step();
    for (float v : lin.weight().grad.data())
        EXPECT_EQ(v, 0.0f);
}

TEST(Sgd, MomentumAccelerates)
{
    // With a constant gradient, momentum accumulates velocity.
    Rng rng(3);
    Linear a(1, 1, rng), b(1, 1, rng);
    a.weight().value.fill(0.0f);
    b.weight().value.fill(0.0f);
    a.bias().value.fill(0.0f);
    b.bias().value.fill(0.0f);
    SgdConfig plain{0.1, 0.0, 0.0};
    SgdConfig heavy{0.1, 0.9, 0.0};
    Sgd oa(a.params(), plain), ob(b.params(), heavy);
    for (int i = 0; i < 5; ++i) {
        a.weight().grad.fill(1.0f);
        b.weight().grad.fill(1.0f);
        oa.step();
        ob.step();
    }
    EXPECT_LT(b.weight().value.at(0, 0), a.weight().value.at(0, 0));
}

TEST(Sgd, WeightDecayShrinksWeights)
{
    Rng rng(4);
    Linear lin(1, 1, rng);
    lin.weight().value.fill(10.0f);
    SgdConfig cfg{0.1, 0.0, 0.5};
    Sgd opt(lin.params(), cfg);
    opt.step(); // zero gradient, decay only
    EXPECT_LT(lin.weight().value.at(0, 0), 10.0f);
}

TEST(Dataset, SubsetAndHead)
{
    Dataset ds;
    ds.x = Tensor(5, 1);
    for (size_t i = 0; i < 5; ++i) {
        ds.x.at(i, 0) = static_cast<float>(i);
        ds.y.push_back(static_cast<int>(i));
    }
    Dataset sub = ds.subset({4, 1});
    EXPECT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub.y[0], 4);
    EXPECT_EQ(sub.x.at(1, 0), 1.0f);
    Dataset h = ds.head(3);
    EXPECT_EQ(h.size(), 3u);
    EXPECT_EQ(h.y[2], 2);
}

TEST(Dataset, ShardsPartitionExactly)
{
    Dataset ds;
    ds.x = Tensor(10, 1);
    for (size_t i = 0; i < 10; ++i)
        ds.y.push_back(static_cast<int>(i));
    auto shards = ds.shards(3);
    ASSERT_EQ(shards.size(), 3u);
    size_t total = 0;
    for (auto &s : shards)
        total += s.size();
    EXPECT_EQ(total, 10u);
    EXPECT_EQ(shards[0].size(), 4u); // 4+3+3
    EXPECT_EQ(shards[0].y[0], 0);
    EXPECT_EQ(shards[2].y.back(), 9);
}

TEST(Dataset, AppendConcatenates)
{
    Dataset a, b;
    a.x = Tensor(2, 1);
    a.y = {0, 1};
    b.x = Tensor(3, 1);
    b.x.at(0, 0) = 5.0f;
    b.y = {2, 3, 4};
    a.append(b);
    EXPECT_EQ(a.size(), 5u);
    EXPECT_EQ(a.y[4], 4);
    EXPECT_EQ(a.x.at(2, 0), 5.0f);
}

TEST(Dataset, AppendToEmptyCopies)
{
    Dataset a, b;
    b.x = Tensor(2, 3);
    b.y = {1, 2};
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.featureDim(), 3u);
}

TEST(BatchIterator, CoversEpochExactlyOnce)
{
    Rng rng(5);
    BatchIterator it(10, 3, rng);
    std::vector<bool> seen(10, false);
    size_t batches = 0;
    for (auto b = it.next(); !b.empty(); b = it.next()) {
        ++batches;
        EXPECT_LE(b.size(), 3u);
        for (size_t idx : b) {
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
    EXPECT_EQ(batches, 4u); // 3+3+3+1
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(BatchIterator, ShufflesDeterministically)
{
    Rng r1(6), r2(6), r3(7);
    BatchIterator a(20, 20, r1), b(20, 20, r2), c(20, 20, r3);
    auto ba = a.next(), bb = b.next(), bc = c.next();
    EXPECT_EQ(ba, bb);
    EXPECT_NE(ba, bc);
}

TEST(Trainer, SolvesLinearlySeparableProblem)
{
    Rng rng(8);
    Dataset train = twoBlobs(200, rng);
    Dataset test = twoBlobs(100, rng);
    Sequential clf = makeClassifier(2, 0, 2, rng);
    TrainConfig cfg;
    cfg.batchSize = 32;
    cfg.maxEpochs = 20;
    auto result = trainClassifier(clf, train, test, cfg);
    EXPECT_GT(result.finalTop1(), 0.95);
    EXPECT_GT(result.epochsRun, 0);
}

TEST(Trainer, EvaluateMatchesManualAccuracy)
{
    Rng rng(9);
    Dataset test = twoBlobs(50, rng);
    Sequential clf = makeClassifier(2, 0, 2, rng);
    auto ev = evaluate(clf, test);
    Tensor logits = clf.forward(test.x);
    EXPECT_NEAR(ev.top1, topKAccuracy(logits, test.y, 1), 1e-9);
    // Binary problem: top-5 is trivially 1.
    EXPECT_DOUBLE_EQ(ev.top5, 1.0);
}

TEST(Trainer, EarlyStopTriggersOnPlateau)
{
    Rng rng(10);
    Dataset train = twoBlobs(200, rng);
    Dataset test = twoBlobs(100, rng);
    Sequential clf = makeClassifier(2, 0, 2, rng);
    TrainConfig cfg;
    cfg.batchSize = 32;
    cfg.maxEpochs = 100;
    cfg.convergeDeltaPct = 0.01;
    cfg.convergePatience = 3;
    auto result = trainClassifier(clf, train, test, cfg);
    // An easy problem plateaus long before 100 epochs.
    EXPECT_LT(result.epochsRun, 30);
}

TEST(Trainer, NoEarlyStopWhenDisabled)
{
    Rng rng(11);
    Dataset train = twoBlobs(50, rng);
    Dataset test = twoBlobs(20, rng);
    Sequential clf = makeClassifier(2, 0, 2, rng);
    TrainConfig cfg;
    cfg.batchSize = 16;
    cfg.maxEpochs = 12;
    cfg.convergePatience = 0;
    auto result = trainClassifier(clf, train, test, cfg);
    EXPECT_EQ(result.epochsRun, 12);
    EXPECT_EQ(result.history.size(), 12u);
}

TEST(Trainer, EmptyTrainSetIsNoOp)
{
    Rng rng(12);
    Dataset train;
    Dataset test = twoBlobs(10, rng);
    Sequential clf = makeClassifier(2, 0, 2, rng);
    auto result = trainClassifier(clf, train, test, TrainConfig{});
    EXPECT_EQ(result.epochsRun, 0);
    EXPECT_TRUE(result.history.empty());
}

TEST(Trainer, HistoryTracksBestTop1)
{
    TrainResult r;
    r.history = {{1, 1.0, 0.5, 0.9}, {2, 0.8, 0.7, 0.95},
                 {3, 0.7, 0.6, 0.93}};
    EXPECT_DOUBLE_EQ(r.bestTop1(), 0.7);
    EXPECT_DOUBLE_EQ(r.finalTop1(), 0.6);
    EXPECT_DOUBLE_EQ(r.finalTop5(), 0.93);
}

TEST(Trainer, LossDecreasesOnSeparableData)
{
    Rng rng(13);
    Dataset train = twoBlobs(300, rng);
    Dataset test = twoBlobs(100, rng);
    Sequential clf = makeClassifier(2, 8, 2, rng);
    TrainConfig cfg;
    cfg.batchSize = 32;
    cfg.maxEpochs = 10;
    cfg.convergePatience = 0;
    auto result = trainClassifier(clf, train, test, cfg);
    ASSERT_GE(result.history.size(), 2u);
    EXPECT_LT(result.history.back().trainLoss,
              result.history.front().trainLoss);
}
