/**
 * @file
 * Tests for the §7.1 media extensions: profile sanity, near-data vs
 * centralized traffic/throughput, and scaling behaviour per medium.
 */

#include <gtest/gtest.h>

#include "core/media.h"

using namespace ndp;
using namespace ndp::core;

TEST(Media, ProfilesAreSane)
{
    for (const auto &m : allMedia()) {
        EXPECT_GT(m.rawMB, 0.0) << m.name;
        EXPECT_GE(m.unitsPerObject, 1.0) << m.name;
        EXPECT_GT(m.extractPerUnitS, 0.0) << m.name;
        EXPECT_GT(m.resultBytesPerUnit, 0.0) << m.name;
        ASSERT_NE(m.model, nullptr) << m.name;
        // Results shipped per object are far smaller than the object.
        EXPECT_LT(m.unitsPerObject * m.resultBytesPerUnit,
                  m.rawMB * 1e6 / 30.0)
            << m.name;
    }
}

TEST(Media, VideoIsTheHeaviestObject)
{
    EXPECT_GT(videoMedia().rawMB, audioMedia().rawMB);
    EXPECT_GT(audioMedia().rawMB, documentMedia().rawMB);
}

TEST(Media, PhotoProfileMatchesPhotoPipeline)
{
    ExperimentConfig cfg;
    cfg.nStores = 1;
    cfg.npe = NpeOptions::naive(); // raw photos, like photoMedia
    cfg.npe.batchSize = 128;
    auto media = photoMedia();
    media.extractCores = 1;
    auto r = runNdpMediaAnalysis(cfg, media, 5000);
    // One preprocess core binds both paths at ~15 IPS.
    EXPECT_NEAR(r.ups, kPreprocImgPerSecPerCore, 2.0);
}

TEST(Media, NdpShipsOrdersOfMagnitudeLessData)
{
    ExperimentConfig cfg;
    cfg.nStores = 4;
    for (const auto &m : allMedia()) {
        auto ndp = runNdpMediaAnalysis(cfg, m, 500);
        auto srv = runSrvMediaAnalysis(cfg, m, 500);
        EXPECT_GT(srv.netBytes / ndp.netBytes, 30.0) << m.name;
    }
}

TEST(Media, NdpBeatsSrvOnVideo)
{
    // 220 MB objects over a 10 Gbps link throttle the central host to
    // ~5.7 objects/s; four stores extract locally far faster.
    ExperimentConfig cfg;
    cfg.nStores = 4;
    auto m = videoMedia();
    auto ndp = runNdpMediaAnalysis(cfg, m, 400);
    auto srv = runSrvMediaAnalysis(cfg, m, 400);
    EXPECT_GT(ndp.ops, srv.ops);
}

TEST(Media, ThroughputScalesWithStores)
{
    ExperimentConfig cfg;
    auto m = audioMedia();
    cfg.nStores = 1;
    double one = runNdpMediaAnalysis(cfg, m, 2000).ops;
    cfg.nStores = 8;
    double eight = runNdpMediaAnalysis(cfg, m, 2000).ops;
    EXPECT_NEAR(eight / one, 8.0, 1.0);
}

TEST(Media, ObjectCountsConserved)
{
    ExperimentConfig cfg;
    cfg.nStores = 3;
    auto m = documentMedia();
    auto r = runNdpMediaAnalysis(cfg, m, 1001); // uneven split
    EXPECT_EQ(r.objects, 1001u);
    EXPECT_NEAR(r.netBytes,
                1001.0 * m.unitsPerObject * m.resultBytesPerUnit,
                1.0);
}

TEST(Media, EnergyAccountingPresent)
{
    ExperimentConfig cfg;
    cfg.nStores = 2;
    auto r = runNdpMediaAnalysis(cfg, videoMedia(), 100);
    EXPECT_GT(r.power.totalW(), 0.0);
    EXPECT_NEAR(r.energyJ, r.power.totalW() * r.seconds, 1e-6);
}

TEST(Media, SrvVideoIsNetworkBound)
{
    ExperimentConfig cfg;
    auto m = videoMedia();
    auto r = runSrvMediaAnalysis(cfg, m, 200);
    double wire_limit = cfg.networkGbps * 1e9 / 8.0 / (m.rawMB * 1e6);
    EXPECT_NEAR(r.ops, wire_limit, wire_limit * 0.1);
}
