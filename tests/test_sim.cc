/**
 * @file
 * Unit tests for the discrete-event engine: event ordering, coroutine
 * tasks, delays, resources, channels, and wait groups.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_group.h"

using namespace ndp::sim;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator s;
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
    EXPECT_EQ(s.processedEvents(), 0u);
    EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule(3.0, [&] { order.push_back(3); });
    s.schedule(1.0, [&] { order.push_back(1); });
    s.schedule(2.0, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, SameTimeEventsRunFifo)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        s.schedule(1.0, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator s;
    int fired = 0;
    s.schedule(1.0, [&] {
        ++fired;
        s.schedule(1.0, [&] { ++fired; });
    });
    s.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Simulator, RunUntilStopsAtBoundary)
{
    Simulator s;
    int fired = 0;
    s.schedule(1.0, [&] { ++fired; });
    s.schedule(5.0, [&] { ++fired; });
    bool more = s.runUntil(2.0);
    EXPECT_TRUE(more);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(s.now(), 2.0);
    more = s.runUntil(10.0);
    EXPECT_FALSE(more);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(Simulator, RunUntilInclusive)
{
    Simulator s;
    int fired = 0;
    s.schedule(2.0, [&] { ++fired; });
    s.runUntil(2.0);
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, ProcessedEventCountAccumulates)
{
    Simulator s;
    for (int i = 0; i < 7; ++i)
        s.schedule(0.1 * i, [] {});
    s.run();
    EXPECT_EQ(s.processedEvents(), 7u);
}

namespace {

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
simpleDelay(Simulator &s, double d, int &done)
{
    co_await s.delay(d);
    ++done;
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
nested(Simulator &s, int &steps)
{
    ++steps;
    co_await simpleDelay(s, 1.0, steps);
    ++steps;
}

} // namespace

TEST(Task, SpawnRunsToCompletion)
{
    Simulator s;
    int done = 0;
    s.spawn(simpleDelay(s, 2.5, done));
    s.run();
    EXPECT_EQ(done, 1);
    EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Task, NestedAwaitResumesParent)
{
    Simulator s;
    int steps = 0;
    s.spawn(nested(s, steps));
    s.run();
    EXPECT_EQ(steps, 3);
    EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(Task, ManyConcurrentProcesses)
{
    Simulator s;
    int done = 0;
    for (int i = 1; i <= 100; ++i)
        s.spawn(simpleDelay(s, 0.01 * i, done));
    s.run();
    EXPECT_EQ(done, 100);
    EXPECT_NEAR(s.now(), 1.0, 1e-12);
}

TEST(Task, ReapFinishedReleasesTasks)
{
    Simulator s;
    int done = 0;
    s.spawn(simpleDelay(s, 1.0, done));
    s.run();
    s.reapFinished(); // must not crash; task frame destroyed
    EXPECT_EQ(done, 1);
}

TEST(Task, DefaultConstructedIsDone)
{
    Task t;
    EXPECT_TRUE(t.done());
    EXPECT_FALSE(t.valid());
}

namespace {

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
acquireHold(Simulator &s, Resource &r, int n, double hold,
            std::vector<int> &order, int id)
{
    co_await r.acquire(n);
    order.push_back(id);
    co_await s.delay(hold);
    r.release(n);
}

} // namespace

TEST(Resource, AcquireWithinCapacityDoesNotBlock)
{
    Simulator s;
    Resource r(s, 2);
    std::vector<int> order;
    s.spawn(acquireHold(s, r, 1, 1.0, order, 1));
    s.spawn(acquireHold(s, r, 1, 1.0, order, 2));
    s.run();
    EXPECT_DOUBLE_EQ(s.now(), 1.0); // both ran concurrently
    EXPECT_EQ(order.size(), 2u);
}

TEST(Resource, ContentionSerializes)
{
    Simulator s;
    Resource r(s, 1);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        s.spawn(acquireHold(s, r, 1, 1.0, order, i));
    s.run();
    EXPECT_DOUBLE_EQ(s.now(), 4.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3})); // FIFO
}

TEST(Resource, LargeRequestBlocksSmallerBehindIt)
{
    Simulator s;
    Resource r(s, 2);
    std::vector<int> order;
    s.spawn(acquireHold(s, r, 2, 1.0, order, 0)); // takes all
    s.spawn(acquireHold(s, r, 2, 1.0, order, 1)); // waits
    s.spawn(acquireHold(s, r, 1, 1.0, order, 2)); // FIFO: behind 1
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, CountersTrackState)
{
    Simulator s;
    Resource r(s, 4);
    EXPECT_EQ(r.capacity(), 4);
    EXPECT_EQ(r.available(), 4);
    std::vector<int> order;
    s.spawn(acquireHold(s, r, 3, 5.0, order, 0));
    s.runUntil(1.0);
    EXPECT_EQ(r.available(), 1);
    EXPECT_EQ(r.inUse(), 3);
    s.run();
    EXPECT_EQ(r.available(), 4);
}

TEST(Resource, UtilizationIntegratesBusyTime)
{
    Simulator s;
    Resource r(s, 2);
    std::vector<int> order;
    // One token busy for 1s out of a 2s horizon = 1/(2*2) = 0.25.
    s.spawn(acquireHold(s, r, 1, 1.0, order, 0));
    s.schedule(2.0, [] {});
    s.run();
    EXPECT_NEAR(r.utilization(), 0.25, 1e-9);
}

namespace {

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
producerTask(Channel<int> &ch, int n)
{
    for (int i = 0; i < n; ++i)
        co_await ch.put(i);
    ch.close();
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
consumerTask(Channel<int> &ch, std::vector<int> &got)
{
    while (true) {
        auto v = co_await ch.get();
        if (!v)
            break;
        got.push_back(*v);
    }
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
slowConsumer(Simulator &s, Channel<int> &ch, std::vector<int> &got,
             double per_item)
{
    while (true) {
        auto v = co_await ch.get();
        if (!v)
            break;
        co_await s.delay(per_item);
        got.push_back(*v);
    }
}

} // namespace

TEST(Channel, DeliversAllValuesInOrder)
{
    Simulator s;
    Channel<int> ch(s, 4);
    std::vector<int> got;
    s.spawn(producerTask(ch, 20));
    s.spawn(consumerTask(ch, got));
    s.run();
    ASSERT_EQ(got.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Channel, CloseWakesWaitingGetter)
{
    Simulator s;
    Channel<int> ch(s, 1);
    std::vector<int> got;
    s.spawn(consumerTask(ch, got)); // starts waiting
    s.schedule(1.0, [&] { ch.close(); });
    s.run();
    EXPECT_TRUE(got.empty());
    EXPECT_TRUE(ch.closed());
}

TEST(Channel, BoundedCapacityBackpressures)
{
    Simulator s;
    Channel<int> ch(s, 2);
    std::vector<int> got;
    s.spawn(producerTask(ch, 10));
    s.spawn(slowConsumer(s, ch, got, 1.0));
    s.run();
    EXPECT_EQ(got.size(), 10u);
    EXPECT_DOUBLE_EQ(s.now(), 10.0); // consumer-paced
    EXPECT_EQ(ch.totalPut(), 10u);
    EXPECT_EQ(ch.totalGot(), 10u);
}

TEST(Channel, RendezvousCapacityZero)
{
    Simulator s;
    Channel<int> ch(s, 0);
    std::vector<int> got;
    s.spawn(producerTask(ch, 3));
    s.spawn(consumerTask(ch, got));
    s.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(Channel, MultipleConsumersShareWork)
{
    Simulator s;
    Channel<int> ch(s, 4);
    std::vector<int> got_a, got_b;
    s.spawn(producerTask(ch, 50));
    s.spawn(slowConsumer(s, ch, got_a, 0.1));
    s.spawn(slowConsumer(s, ch, got_b, 0.1));
    s.run();
    EXPECT_EQ(got_a.size() + got_b.size(), 50u);
    EXPECT_FALSE(got_a.empty());
    EXPECT_FALSE(got_b.empty());
}

TEST(Channel, BufferedValuesSurviveClose)
{
    Simulator s;
    Channel<int> ch(s, 8);
    std::vector<int> got;
    // Producer fills then closes before the consumer starts reading.
    s.spawn(producerTask(ch, 5));
    s.schedule(1.0, [&s, &ch, &got] {
        s.spawn(consumerTask(ch, got));
    });
    s.run();
    EXPECT_EQ(got.size(), 5u);
}

namespace {

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
worker(Simulator &s, WaitGroup &wg, double d)
{
    co_await s.delay(d);
    wg.done();
}

// ndplint: allow(coroutine-ref-param, coroutine-escape: referents outlive s.run() in the test body)
Task
waiter(WaitGroup &wg, bool &resumed, Simulator &s, double &at)
{
    co_await wg.wait();
    resumed = true;
    at = s.now();
}

} // namespace

TEST(WaitGroup, WaitsForAllWorkers)
{
    Simulator s;
    WaitGroup wg(s);
    wg.add(3);
    bool resumed = false;
    double at = -1.0;
    s.spawn(waiter(wg, resumed, s, at));
    s.spawn(worker(s, wg, 1.0));
    s.spawn(worker(s, wg, 2.0));
    s.spawn(worker(s, wg, 3.0));
    s.run();
    EXPECT_TRUE(resumed);
    EXPECT_DOUBLE_EQ(at, 3.0);
}

TEST(WaitGroup, WaitOnZeroCompletesImmediately)
{
    Simulator s;
    WaitGroup wg(s);
    bool resumed = false;
    double at = -1.0;
    s.spawn(waiter(wg, resumed, s, at));
    s.run();
    EXPECT_TRUE(resumed);
    EXPECT_DOUBLE_EQ(at, 0.0);
}

TEST(WaitGroup, MultipleWaiters)
{
    Simulator s;
    WaitGroup wg(s);
    wg.add(1);
    bool r1 = false, r2 = false;
    double a1, a2;
    s.spawn(waiter(wg, r1, s, a1));
    s.spawn(waiter(wg, r2, s, a2));
    s.spawn(worker(s, wg, 4.0));
    s.run();
    EXPECT_TRUE(r1);
    EXPECT_TRUE(r2);
    EXPECT_EQ(wg.pending(), 0);
}
