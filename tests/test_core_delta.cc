/**
 * @file
 * Tests for Check-N-Run delta encoding: exact application, reduction
 * factors, epsilon thresholds, corruption rejection, and integration
 * with the vision model's parameter flattening.
 */

#include <gtest/gtest.h>

#include "core/delta.h"
#include "data/backbone.h"
#include "sim/random.h"

using namespace ndp;
using namespace ndp::core;

namespace {

std::vector<float>
randomParams(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

} // namespace

TEST(Delta, IdenticalVectorsProduceEmptyDelta)
{
    auto base = randomParams(1000, 1);
    auto d = encodeDelta(base, base);
    EXPECT_EQ(d.changedParams, 0u);
    auto params = base;
    EXPECT_TRUE(applyDelta(d, params));
    EXPECT_EQ(params, base);
}

TEST(Delta, AppliesSparseChangeExactly)
{
    auto base = randomParams(1000, 2);
    auto updated = base;
    updated[3] += 1.0f;
    updated[999] = -5.0f;
    auto d = encodeDelta(base, updated);
    EXPECT_EQ(d.changedParams, 2u);
    auto params = base;
    ASSERT_TRUE(applyDelta(d, params));
    EXPECT_EQ(params, updated);
}

TEST(Delta, DenseChangeStillRoundTrips)
{
    auto base = randomParams(5000, 3);
    auto updated = randomParams(5000, 4);
    auto d = encodeDelta(base, updated);
    EXPECT_EQ(d.changedParams, 5000u);
    auto params = base;
    ASSERT_TRUE(applyDelta(d, params));
    EXPECT_EQ(params, updated);
}

TEST(Delta, EpsilonSuppressesTinyChanges)
{
    auto base = randomParams(100, 5);
    auto updated = base;
    for (auto &v : updated)
        v += 1e-6f;
    updated[7] += 1.0f;
    auto d = encodeDelta(base, updated, 1e-4f);
    EXPECT_EQ(d.changedParams, 1u);
}

TEST(Delta, ClassifierOnlyChangeIsHundredsSmaller)
{
    // ResNet50 scale: 25.6M params, 2M in the classifier; changing
    // only the classifier must yield a huge reduction factor (the
    // paper quotes up to 427.4x).
    const size_t total = 2560000, head = 205000;
    auto base = randomParams(total, 6);
    auto updated = base;
    Rng rng(7);
    for (size_t i = total - head; i < total; ++i)
        updated[i] += static_cast<float>(rng.normal(0.0, 0.01));
    auto d = encodeDelta(base, updated);
    EXPECT_GT(d.reductionFactor(), 9.0);
    EXPECT_LT(static_cast<double>(d.payload.size()),
              total * 4.0 / 9.0);
    auto params = base;
    ASSERT_TRUE(applyDelta(d, params));
    EXPECT_EQ(params, updated);
}

TEST(Delta, RejectsWrongParameterCount)
{
    auto base = randomParams(100, 8);
    auto updated = base;
    updated[0] += 1.0f;
    auto d = encodeDelta(base, updated);
    std::vector<float> wrong(99);
    EXPECT_FALSE(applyDelta(d, wrong));
}

TEST(Delta, RejectsCorruptPayload)
{
    auto base = randomParams(100, 9);
    auto updated = base;
    updated[5] = 2.0f;
    auto d = encodeDelta(base, updated);
    d.payload[0] = 'X';
    auto params = base;
    EXPECT_FALSE(applyDelta(d, params));
}

TEST(Delta, GrowingBaseHandled)
{
    // Updated longer than base: extra entries diffed against zero.
    std::vector<float> base = {1.0f, 2.0f};
    std::vector<float> updated = {1.0f, 2.0f, 3.0f};
    auto d = encodeDelta(base, updated);
    EXPECT_EQ(d.changedParams, 1u);
    std::vector<float> params = {1.0f, 2.0f, 0.0f};
    ASSERT_TRUE(applyDelta(d, params));
    EXPECT_EQ(params, updated);
}

TEST(Delta, FlattenAndLoadRoundTrip)
{
    Rng rng(10);
    data::VisionModel m(8, 4, 10, rng);
    auto params = flattenParams(m);
    EXPECT_EQ(params.size(), 8u * 4 + 4 + 4 * 10 + 10);

    Rng rng2(11);
    data::VisionModel m2(8, 4, 10, rng2);
    ASSERT_TRUE(loadParams(m2, params));
    EXPECT_EQ(flattenParams(m2), params);
}

TEST(Delta, LoadRejectsSizeMismatch)
{
    Rng rng(12);
    data::VisionModel m(8, 4, 10, rng);
    std::vector<float> too_short(5);
    EXPECT_FALSE(loadParams(m, too_short));
}

TEST(Delta, FlattenIncludesFrozenLayers)
{
    Rng rng(13);
    data::VisionModel m(8, 4, 10, rng);
    auto all = flattenParams(m);
    m.freezeBackbone(true);
    auto frozen = flattenParams(m);
    EXPECT_EQ(all.size(), frozen.size());
    EXPECT_EQ(all, frozen);
}

TEST(Delta, EndToEndModelDistribution)
{
    // Tuner fine-tunes the head; stores apply the delta and end up
    // with identical parameters.
    Rng rng(14);
    data::VisionModel tuner_model(8, 4, 10, rng);
    data::VisionModel store_model = tuner_model;

    auto before = flattenParams(tuner_model);
    // Pretend fine-tuning nudged the head.
    for (auto &v : tuner_model.head().weight().value.data())
        v += 0.25f;
    auto after = flattenParams(tuner_model);

    auto delta = encodeDelta(before, after);
    auto store_params = flattenParams(store_model);
    ASSERT_TRUE(applyDelta(delta, store_params));
    ASSERT_TRUE(loadParams(store_model, store_params));
    EXPECT_EQ(flattenParams(store_model), after);
    // Only head weights changed.
    EXPECT_EQ(delta.changedParams, 4u * 10u);
}
