/**
 * @file
 * WAN geo-replication tests (core/georep): convergence of the
 * publish/distribute loop, the delta-vs-checkpoint WAN traffic split,
 * bounded-staleness checkpoint catch-up with queue coalescing, the
 * loss -> retransmit -> fallback ladder, the WAN fault matrix rows
 * (degrade raises staleness, down never hangs, bytes are conserved),
 * bit-level determinism, and the cluster-scheduler integration
 * (JobKind::GeoReplicate over ClusterSpec::wanSites).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "core/georep/georep.h"
#include "core/sched/cluster.h"

namespace {

using namespace ndp;
using namespace ndp::core::georep;

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

/** Small, fast config: slow cadence relative to push time so neither
 * mode coalesces and the WAN byte totals are closed-form. */
GeoRepConfig
quickConfig()
{
    GeoRepConfig cfg;
    cfg.opt.nRounds = 4;
    cfg.opt.roundIntervalS = 2.0;
    cfg.opt.fineTuneS = 0.1;
    return cfg;
}

TEST(GeoRep, DeltaDistributionConvergesWithClosedFormTraffic)
{
    GeoRepConfig cfg = quickConfig();
    const GeoRepReport rep = runGeoReplication(cfg);

    EXPECT_TRUE(rep.converged);
    EXPECT_EQ(rep.publishedVersions, 4);
    EXPECT_EQ(rep.minSiteVersion, 4);
    ASSERT_EQ(rep.sites.size(), 2U);
    for (const SiteProgress &p : rep.sites) {
        EXPECT_EQ(p.version, 4);
        EXPECT_EQ(p.deltaPushes, 4U);
        EXPECT_EQ(p.checkpointPushes, 0U);
        EXPECT_EQ(p.duplicates, 0U);
        EXPECT_EQ(p.retransmits, 0U);
    }
    // 2 sites x 4 versions x one 250 kB delta each, nothing else.
    EXPECT_NEAR(rep.wanBytes, 2 * 4 * cfg.opt.deltaBytes, 1e-6);
    EXPECT_NEAR(rep.deltaWanBytes, rep.wanBytes, 1e-6);
    EXPECT_EQ(rep.checkpointWanBytes, 0.0);
    // Conservation: the fabric's WAN accounting sees the same bytes
    // the dataflow shipped (every push crosses exactly one WAN trunk).
    EXPECT_NEAR(rep.net.wanBytes, rep.wanBytes, 1.0);
    // Staleness is at least the WAN propagation latency (0.05 s to
    // "eu", 0.11 s to "ap") plus serialization.
    EXPECT_GT(rep.stalenessP50S, 0.05);
    EXPECT_LT(rep.stalenessMaxS, 1.0); // uncontended: pushes are fast
}

TEST(GeoRep, FullCheckpointBaselineShipsOrdersOfMagnitudeMore)
{
    GeoRepConfig cfg = quickConfig();
    const GeoRepReport delta = runGeoReplication(cfg);
    cfg.opt.fullCheckpoints = true;
    const GeoRepReport full = runGeoReplication(cfg);

    EXPECT_TRUE(full.converged);
    // 2 sites x 4 versions x one 98 MB checkpoint each.
    EXPECT_NEAR(full.wanBytes, 2 * 4 * cfg.opt.fullBytes, 1e-3);
    EXPECT_EQ(full.deltaWanBytes, 0.0);
    // The paper-shaped gap: 98 MB / 250 kB = 392x per push.
    EXPECT_GT(full.wanBytes / delta.wanBytes, 100.0);
    // Shipping more takes longer: checkpoint staleness dominates.
    EXPECT_GT(full.stalenessP95S, delta.stalenessP95S);
}

TEST(GeoRep, StalenessBoundTriggersCheckpointCatchup)
{
    // One far site behind a 20 Mbps WAN: a delta chain takes 10 s
    // while a version publishes every 1.25 s, so the distributor
    // falls behind, coalesces to the queue head, and — past the
    // 3-version staleness bound — catches up with one checkpoint.
    GeoRepConfig cfg;
    cfg.sites = {{"far", 0.02, 0.1}};
    cfg.opt.nRounds = 8;
    cfg.opt.roundIntervalS = 1.0;
    cfg.opt.fineTuneS = 0.25;
    cfg.opt.deltaBytes = 25.0e6;
    cfg.opt.fullBytes = 98.0e6;
    cfg.opt.stalenessBound = 3;
    const GeoRepReport rep = runGeoReplication(cfg);

    EXPECT_TRUE(rep.converged);
    ASSERT_EQ(rep.sites.size(), 1U);
    EXPECT_EQ(rep.sites[0].version, 8);
    // At least one catch-up checkpoint, and the coalesced queue
    // entries drained as duplicates rather than redundant pushes.
    EXPECT_GE(rep.sites[0].checkpointPushes, 1U);
    EXPECT_GE(rep.duplicates, 1U);
    EXPECT_EQ(rep.checkpointFallbacks, 0U); // no loss: bound, not budget
    // The first delta push alone pins staleness near its 10 s drain.
    EXPECT_GT(rep.stalenessMaxS, 5.0);
}

TEST(GeoRep, LossRetransmitsAndStillConverges)
{
    GeoRepConfig cfg = quickConfig();
    cfg.sites = {{"eu", 1.0, 0.05}};
    cfg.opt.nRounds = 6;
    cfg.opt.lossProbability = 0.4;
    cfg.opt.maxRetransmits = 8;
    const GeoRepReport rep = runGeoReplication(cfg);

    EXPECT_TRUE(rep.converged);
    EXPECT_GE(rep.retransmits, 1U);
    // Lost copies still burned WAN bytes: the wire total exceeds the
    // minimum nRounds x deltaBytes payload.
    EXPECT_GT(rep.deltaWanBytes, 6 * cfg.opt.deltaBytes);
    EXPECT_NEAR(rep.net.wanBytes, rep.wanBytes, 1.0);
}

TEST(GeoRep, RetransmitBudgetExhaustionFallsBackToCheckpoint)
{
    GeoRepConfig cfg = quickConfig();
    cfg.opt.lossProbability = 0.98;
    cfg.opt.maxRetransmits = 0;
    const GeoRepReport rep = runGeoReplication(cfg);

    // Never hang, never stay stale: the reliable checkpoint path
    // carries every site to the newest version regardless of loss.
    EXPECT_TRUE(rep.converged);
    EXPECT_GE(rep.checkpointFallbacks, 1U);
    EXPECT_GT(rep.checkpointWanBytes, 0.0);
    EXPECT_EQ(rep.minSiteVersion, 4);
}

TEST(GeoRep, WanDownWindowNeverHangsAndConservesBytes)
{
    GeoRepConfig cfg = quickConfig();
    cfg.sites = {{"eu", 1.0, 0.05}};
    cfg.opt.roundIntervalS = 0.5;
    // Site "eu" is topology site 1 (home is 0): kill its WAN trunk
    // across the first push.
    cfg.faults.downWanLink(1, 0.55, 1.0);
    const GeoRepReport rep = runGeoReplication(cfg);

    EXPECT_TRUE(rep.converged);
    EXPECT_EQ(rep.faults.linkDowns, 1U);
    EXPECT_EQ(rep.faults.linkDegrades, 0U);
    // The stalled push slipped by roughly the outage (stall
    // semantics: frozen in place, nothing lost).
    EXPECT_GT(rep.stalenessMaxS, 0.9);
    EXPECT_NEAR(rep.net.wanBytes, rep.wanBytes, 1.0);
}

TEST(GeoRep, WanDegradeRaisesStaleness)
{
    GeoRepConfig clean = quickConfig();
    const GeoRepReport base = runGeoReplication(clean);

    GeoRepConfig cfg = quickConfig();
    cfg.faults.degradeWanLink(sim::FaultSpec::kAnySite, 0.0, 1.0e3,
                              0.05);
    const GeoRepReport rep = runGeoReplication(cfg);

    EXPECT_TRUE(rep.converged);
    // One declared fault = one report entry, even though kAnySite
    // resolves to every WAN trunk of both site pairs.
    EXPECT_EQ(rep.faults.linkDegrades, 1U);
    EXPECT_GT(rep.stalenessP95S, base.stalenessP95S);
    EXPECT_BITEQ(rep.wanBytes, base.wanBytes); // slower, not bigger
}

TEST(GeoRep, SameSeedRunsAreBitIdentical)
{
    GeoRepConfig cfg = quickConfig();
    cfg.opt.lossProbability = 0.3; // exercise the RNG path too
    cfg.opt.maxRetransmits = 6;
    const GeoRepReport a = runGeoReplication(cfg);
    const GeoRepReport b = runGeoReplication(cfg);

    EXPECT_EQ(a.events, b.events);
    EXPECT_BITEQ(a.seconds, b.seconds);
    EXPECT_BITEQ(a.wanBytes, b.wanBytes);
    EXPECT_BITEQ(a.deltaWanBytes, b.deltaWanBytes);
    EXPECT_BITEQ(a.stalenessP50S, b.stalenessP50S);
    EXPECT_BITEQ(a.stalenessP95S, b.stalenessP95S);
    EXPECT_BITEQ(a.stalenessMaxS, b.stalenessMaxS);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.duplicates, b.duplicates);
}

TEST(GeoRep, ValidationRejectsNonsense)
{
    GeoRepConfig cfg;
    cfg.opt.deltaBytes = 2.0 * cfg.opt.fullBytes;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = GeoRepConfig{};
    cfg.opt.lossProbability = 1.0; // would retransmit forever
    EXPECT_FALSE(cfg.validate().ok());

    cfg = GeoRepConfig{};
    cfg.sites.clear();
    EXPECT_FALSE(cfg.validate().ok());

    cfg = GeoRepConfig{};
    cfg.opt.stalenessBound = 0;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = GeoRepConfig{};
    cfg.sites[0].gbps = 0.0;
    EXPECT_THROW(runGeoReplication(cfg), std::invalid_argument);
}

TEST(GeoRep, ClusterRunsGeoReplicateJobs)
{
    core::ClusterSpec spec;
    spec.nStores = 2;
    spec.wanSites = {{"eu", 1.0, 0.05}};
    core::sched::Cluster c(spec);
    core::sched::JobDesc d;
    d.name = "geo";
    d.kind = core::sched::JobKind::GeoReplicate;
    d.georep.nRounds = 3;
    d.georep.roundIntervalS = 0.5;
    d.georep.fineTuneS = 0.05;
    c.submit(d);
    const core::sched::ClusterReport rep = c.run();

    ASSERT_EQ(rep.jobs.size(), 1U);
    const core::sched::JobReport &j = rep.jobs[0];
    EXPECT_EQ(j.publishedVersions, 3);
    EXPECT_EQ(j.minSiteVersion, 3);
    EXPECT_NEAR(j.geoWanBytes, 3 * d.georep.deltaBytes, 1e-6);
    EXPECT_EQ(j.geoRetransmits, 0U);
    EXPECT_EQ(j.geoCheckpointFallbacks, 0U);
    EXPECT_GT(j.stalenessP95S, 0.05); // at least the WAN latency
    EXPECT_NEAR(rep.net.wanBytes, j.geoWanBytes, 1.0);
    EXPECT_GT(j.makespanS, 0.0);
}

TEST(GeoRep, ClusterRejectsGeoReplicateWithoutWanSites)
{
    core::ClusterSpec spec;
    spec.nStores = 2; // no wanSites declared
    core::sched::Cluster c(spec);
    core::sched::JobDesc d;
    d.name = "geo";
    d.kind = core::sched::JobKind::GeoReplicate;
    EXPECT_THROW(c.submit(d), std::invalid_argument);

    // Store-bound placement is also rejected: the WAN fleet is the
    // cluster's, not the job's.
    core::ClusterSpec wan_spec;
    wan_spec.nStores = 2;
    wan_spec.wanSites = {{"eu", 1.0, 0.05}};
    core::sched::Cluster c2(wan_spec);
    d.stores = {0};
    EXPECT_THROW(c2.submit(d), std::invalid_argument);
}

} // namespace
