/**
 * @file
 * Cross-validation of the obs tracing layer and the ndptrace
 * critical-path analyzer against the simulator's own analytic models:
 *
 *  - traced runs serialize valid trace JSON (`ndptrace --check` logic)
 *  - the critical-path sweep attributes (to <1%) the full wall time
 *    reported by the dataflow
 *  - the attributed bottleneck bucket names the same stage as the
 *    per-image npeStageTimes() model for clearly-bottlenecked NPE
 *    configurations, and the same coarse stage as APO's predicted
 *    partition bottleneck for FT-DMP
 *  - gauge timeseries (counters) land in the trace
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/apo.h"
#include "core/inference.h"
#include "core/training.h"
#include "models/throughput.h"
#include "ndptrace/analyzer.h"
#include "obs/trace.h"

namespace {

using namespace ndp;
using namespace ndp::core;

struct TracedRun
{
    std::string json;
    ndp::trace::Trace trace;
};

/** Run @p fn inside a TraceSession and parse the serialized trace. */
template <typename Fn>
TracedRun
traced(Fn &&fn)
{
    TracedRun out;
    {
        obs::TraceSession session;
        fn();
        out.json = session.tracer().json();
    }
    std::string err;
    EXPECT_TRUE(ndp::trace::parseTrace(out.json, out.trace, err))
        << err;
    return out;
}

/** Argmax stage of the per-image analytic model, in trace buckets. */
std::string
analyticBottleneck(const StageMetrics &per_image)
{
    double disk = per_image.readS;
    double cpu = per_image.decompressS + per_image.preprocessS;
    double gpu = per_image.computeS;
    if (disk >= cpu && disk >= gpu)
        return "disk";
    return cpu >= gpu ? "cpu" : "gpu";
}

void
expectAttributionReconciles(const ndp::trace::Attribution &attr,
                            double report_seconds)
{
    // The sweep's makespan is the traced run's end time; buckets
    // partition it exactly, and it reconciles with the report.
    double bucket_sum = 0.0;
    for (const auto &[cat, sec] : attr.byCat)
        bucket_sum += sec;
    EXPECT_NEAR(bucket_sum, attr.totalS, 1e-6 * attr.totalS + 1e-9);
    ASSERT_GT(report_seconds, 0.0);
    EXPECT_NEAR(attr.totalS, report_seconds, 0.01 * report_seconds)
        << "attributed time does not reconcile with report.seconds";
}

} // namespace

TEST(Trace, GpuBoundInferenceNamesGpuBottleneck)
{
    // Full NPE keeps the store GPU >95% busy (§5.4): the analyzer and
    // the per-image model must both call the GPU the bottleneck.
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 2;
    cfg.nImages = 50000;

    InferenceReport rep;
    TracedRun run = traced([&] { rep = runNdpOfflineInference(cfg); });

    auto check = ndp::trace::checkTrace(run.json);
    EXPECT_TRUE(check.ok()) << (check.errors.empty()
                                    ? ""
                                    : check.errors.front());

    auto attr = ndp::trace::criticalPath(run.trace);
    expectAttributionReconciles(attr, rep.seconds);
    EXPECT_EQ(attr.bottleneck, "gpu");
    EXPECT_EQ(analyticBottleneck(npeStageTimes(cfg, cfg.npe, false)),
              "gpu");
}

TEST(Trace, CpuBoundInferenceNamesCpuBottleneck)
{
    // Naive NPE decodes JPEGs on one store core — preprocessing
    // dominates (§4.2, Fig. 6b).
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 1;
    cfg.nImages = 20000;
    cfg.npe = NpeOptions::naive();

    InferenceReport rep;
    TracedRun run = traced([&] { rep = runNdpOfflineInference(cfg); });

    auto check = ndp::trace::checkTrace(run.json);
    EXPECT_TRUE(check.ok()) << (check.errors.empty()
                                    ? ""
                                    : check.errors.front());

    auto attr = ndp::trace::criticalPath(run.trace);
    expectAttributionReconciles(attr, rep.seconds);
    EXPECT_EQ(attr.bottleneck, "cpu");
    EXPECT_EQ(analyticBottleneck(npeStageTimes(cfg, cfg.npe, false)),
              "cpu");
}

TEST(Trace, FtDmpBottleneckMatchesApoPrediction)
{
    // APO predicts per-run Store-, network- and Tuner-stage times for
    // the chosen cut; the traced run's coarse attribution must agree
    // on which of the three dominates.
    ExperimentConfig cfg;
    cfg.nStores = 4;
    cfg.nImages = 40000;
    TrainOptions opt;

    PartitionChoice pred =
        evaluateCut(cfg, opt, opt.resolveCut(*cfg.model));
    std::string predicted = "store";
    if (pred.netStageS >= pred.storeStageS &&
        pred.netStageS >= pred.tunerStageS)
        predicted = "net";
    else if (pred.tunerStageS >= pred.storeStageS &&
             pred.tunerStageS >= pred.netStageS)
        predicted = "tuner";

    TrainReport rep;
    TracedRun run = traced([&] { rep = runFtDmpTraining(cfg, opt); });

    auto check = ndp::trace::checkTrace(run.json);
    EXPECT_TRUE(check.ok()) << (check.errors.empty()
                                    ? ""
                                    : check.errors.front());

    auto attr = ndp::trace::criticalPath(run.trace);
    expectAttributionReconciles(attr, rep.seconds);

    double store_s = attr.catS("disk") + attr.catS("cpu") +
                     attr.catS("gpu") + attr.catS("sync");
    double net_s = attr.catS("wire");
    double tuner_s = attr.catS("tuner");
    std::string observed = "store";
    if (net_s >= store_s && net_s >= tuner_s)
        observed = "net";
    else if (tuner_s >= store_s && tuner_s >= net_s)
        observed = "tuner";
    EXPECT_EQ(observed, predicted)
        << "trace: store " << store_s << " net " << net_s << " tuner "
        << tuner_s << "; APO: store " << pred.storeStageS << " net "
        << pred.netStageS << " tuner " << pred.tunerStageS;
}

TEST(Trace, GaugeTimeseriesLandsInTheTrace)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 2;
    cfg.nImages = 50000;

    TracedRun run = traced([&] { runNdpOfflineInference(cfg); });

    ASSERT_FALSE(run.trace.counters.empty());
    auto has = [&](const std::string &node, const std::string &name) {
        return std::any_of(
            run.trace.counters.begin(), run.trace.counters.end(),
            [&](const ndp::trace::CounterSample &c) {
                return c.node == node && c.name == name;
            });
    };
    EXPECT_TRUE(has("store0", "util.gpu"));
    EXPECT_TRUE(has("store0", "util.disk"));
    EXPECT_TRUE(has("store0", "power.w"));
    EXPECT_TRUE(has("store1", "util.gpu"));
    EXPECT_TRUE(has("net", "flows.active"));
    // Sampled values are utilizations in [0, 1] (power aside).
    for (const auto &c : run.trace.counters)
        if (c.name == "util.gpu" || c.name == "util.disk" ||
            c.name == "util.cpu") {
            EXPECT_GE(c.value, 0.0);
            EXPECT_LE(c.value, 1.0);
        }
}

TEST(Trace, UntracedRunRecordsNothing)
{
    // No session installed: Tracer::current() is null and every hook
    // is a no-op (the zero-cost rule the determinism suite relies on).
    ASSERT_EQ(obs::Tracer::current(), nullptr);
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 1;
    cfg.nImages = 5000;
    auto rep = runNdpOfflineInference(cfg);
    EXPECT_GT(rep.seconds, 0.0);
}

TEST(Trace, CheckCatchesStructuralDamage)
{
    // Unbalanced async pair and a counter without a numeric value.
    const std::string bad =
        "{\"traceEvents\":["
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
        "\"args\":{\"name\":\"store0\"}},"
        "{\"ph\":\"b\",\"cat\":\"flow\",\"name\":\"f\",\"pid\":1,"
        "\"tid\":1,\"ts\":0,\"id\":7},"
        "{\"ph\":\"C\",\"name\":\"c\",\"pid\":1,\"tid\":0,\"ts\":1,"
        "\"args\":{}}"
        "]}";
    auto res = ndp::trace::checkTrace(bad);
    EXPECT_FALSE(res.ok());
    // Garbage is a parse error, not a crash.
    auto garbage = ndp::trace::checkTrace("not json at all");
    EXPECT_FALSE(garbage.ok());
}
