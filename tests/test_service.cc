/**
 * @file
 * Integration tests for the PhotoService facade: the full upload ->
 * online inference -> search -> drift -> fine-tune -> offline refresh
 * lifecycle on a miniature world.
 */

#include <gtest/gtest.h>

#include "core/service.h"

using namespace ndp;
using namespace ndp::core;

namespace {

PhotoService::Config
tinyConfig()
{
    PhotoService::Config cfg;
    cfg.profile = data::imagenet1kProfile();
    cfg.profile.world.initialImages = 1500;
    cfg.profile.world.initialClasses = 20;
    cfg.profile.world.maxClasses = 25;
    cfg.profile.testSetSize = 600;
    cfg.profile.fullTrainCfg.maxEpochs = 20;
    cfg.profile.fineTuneCfg.maxEpochs = 12;
    cfg.nPipeStores = 3;
    return cfg;
}

} // namespace

class PhotoServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        service = std::make_unique<PhotoService>(tinyConfig());
        service->bootstrap();
    }

    std::unique_ptr<PhotoService> service;
};

TEST_F(PhotoServiceTest, BootstrapLabelsEverything)
{
    EXPECT_EQ(service->modelVersion(), 1);
    EXPECT_EQ(service->labels().size(), service->world().numImages());
    EXPECT_EQ(service->outdatedLabelCount(), 0u);
}

TEST_F(PhotoServiceTest, BaseModelLearnsSomething)
{
    auto ev = service->evaluateCurrentModel(800);
    EXPECT_GT(ev.top1, 0.4); // far above the 5% chance level
    EXPECT_GT(ev.top5, ev.top1);
}

TEST_F(PhotoServiceTest, UploadsGetOnlineInferredLabels)
{
    size_t before = service->world().numImages();
    service->advanceDays(3);
    size_t after = service->world().numImages();
    EXPECT_GT(after, before);
    EXPECT_EQ(service->labels().size(), after);
    // New labels carry the current model version.
    EXPECT_EQ(service->outdatedLabelCount(), 0u);
}

TEST_F(PhotoServiceTest, SearchFindsIndexedPhotos)
{
    // Pick the label of an existing photo and search for it.
    auto entry = service->labels().lookup(service->world().pool()[0].id);
    ASSERT_TRUE(entry.has_value());
    auto hits = service->search(entry->label);
    EXPECT_FALSE(hits.empty());
    bool found = false;
    for (uint64_t id : hits) {
        if (id == service->world().pool()[0].id)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST_F(PhotoServiceTest, FineTuneBumpsVersionAndEncodesDelta)
{
    service->advanceDays(7);
    auto outcome = service->fineTune();
    EXPECT_EQ(outcome.newModelVersion, 2);
    EXPECT_EQ(service->modelVersion(), 2);
    EXPECT_GT(outcome.deltaBytes, 0u);
    EXPECT_LT(outcome.deltaBytes, outcome.fullModelBytes);
    EXPECT_GT(outcome.epochs, 0);
    // Every shard did some extraction.
    double total = 0;
    for (size_t s : outcome.shardSizes) {
        EXPECT_GT(s, 0u);
        total += static_cast<double>(s);
    }
    EXPECT_GT(outcome.featureBytes, 0u);
}

TEST_F(PhotoServiceTest, FineTuneRecoversAccuracyAfterDrift)
{
    service->advanceDays(14);
    double before = service->evaluateCurrentModel(800).top1;
    auto outcome = service->fineTune();
    double after = service->evaluateCurrentModel(800).top1;
    // The fine-tuned model should not be (meaningfully) worse, and the
    // outcome must report the same trend it measured.
    EXPECT_GT(after, before - 0.03);
    EXPECT_NEAR(outcome.top1After, after, 0.06);
}

TEST_F(PhotoServiceTest, LabelsBecomeOutdatedThenRefreshed)
{
    service->advanceDays(7);
    service->fineTune();
    // All pre-update labels are now stale.
    EXPECT_GT(service->outdatedLabelCount(), 0u);
    size_t changed = service->refreshLabels();
    EXPECT_EQ(service->outdatedLabelCount(), 0u);
    // The new model disagrees with the old one on some photos
    // (Table 1's phenomenon).
    EXPECT_GT(changed, 0u);
    EXPECT_LT(changed, service->world().numImages() / 2);
}

TEST_F(PhotoServiceTest, RefreshWithoutModelChangeIsStable)
{
    size_t changed = service->refreshLabels();
    // Same model, same photos: labels must be identical.
    EXPECT_EQ(changed, 0u);
}

TEST_F(PhotoServiceTest, MultipleFineTuneCyclesKeepWorking)
{
    for (int cycle = 0; cycle < 2; ++cycle) {
        service->advanceDays(7);
        auto outcome = service->fineTune();
        EXPECT_EQ(outcome.newModelVersion, 2 + cycle);
        service->refreshLabels();
    }
    EXPECT_EQ(service->modelVersion(), 3);
    EXPECT_EQ(service->outdatedLabelCount(), 0u);
}

TEST(PhotoServiceConfig, RunsWithMultipleRuns)
{
    auto cfg = tinyConfig();
    cfg.nRun = 3;
    PhotoService service(cfg);
    service.bootstrap();
    service.advanceDays(5);
    auto outcome = service.fineTune();
    EXPECT_EQ(outcome.newModelVersion, 2);
    EXPECT_GT(outcome.epochs, 0);
}
