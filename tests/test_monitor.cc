/**
 * @file
 * Unit and contract tests for the streaming health monitor
 * (obs/monitor.h): closed-form checks of the sliding-window
 * aggregates, rule raise/clear transitions fed through the push
 * hooks, the detection-latency event feed, the deterministic JSON
 * export (parsed back with the ndptrace parser and reconciled
 * against the summaries — the in-process version of what
 * `ndpmon --check` does offline), and the passive contract: a
 * monitored serving run is bit-identical to an unmonitored one on
 * every pre-existing report field.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "core/serve/serve.h"
#include "ndptrace/json.h"
#include "obs/monitor.h"

namespace {

using namespace ndp::obs;

#define EXPECT_BITEQ(a, b)                                               \
    EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))    \
        << #a " differs: " << (a) << " vs " << (b)

// ---------------------------------------------------------------------------
// Sliding-window primitives, closed form.

TEST(WindowedRate, SumAndRateOverWindow)
{
    WindowedRate w(2.0, 4); // 0.5 s buckets
    w.record(0.1);
    w.record(0.3, 2.0);
    w.record(0.7);
    EXPECT_DOUBLE_EQ(w.windowS(), 2.0);
    EXPECT_DOUBLE_EQ(w.sum(0.8), 4.0);
    EXPECT_DOUBLE_EQ(w.rate(0.8), 2.0);
}

TEST(WindowedRate, BucketsExpireAsTimeAdvances)
{
    WindowedRate w(2.0, 4);
    w.record(0.1); // bucket [0.0, 0.5)
    EXPECT_DOUBLE_EQ(w.sum(0.4), 1.0);
    // 1.9 s later the event's bucket is still inside the 2 s window...
    EXPECT_DOUBLE_EQ(w.sum(1.9), 1.0);
    // ...but once the ring rotates past it, the count drops out.
    EXPECT_DOUBLE_EQ(w.sum(2.6), 0.0);
}

TEST(WindowedRate, LongGapClearsEverything)
{
    WindowedRate w(2.0, 4);
    w.record(0.1);
    w.record(0.2);
    EXPECT_DOUBLE_EQ(w.sum(100.0), 0.0);
    w.record(100.1);
    EXPECT_DOUBLE_EQ(w.sum(100.2), 1.0);
}

TEST(Ewma, SeedsThenSmooths)
{
    Ewma e(0.5);
    EXPECT_TRUE(e.empty());
    e.record(10.0);
    EXPECT_DOUBLE_EQ(e.value(), 10.0); // first sample seeds
    e.record(20.0);
    EXPECT_DOUBLE_EQ(e.value(), 15.0); // 0.5*20 + 0.5*10
    e.record(20.0);
    EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(WindowedQuantile, TwoPhaseRollKeepsRecentDropsStale)
{
    WindowedQuantile q(1.0);
    for (int i = 0; i < 100; ++i)
        q.record(0.1, 0.010);
    EXPECT_EQ(q.count(), 100u);
    EXPECT_GT(q.percentile(50.0), 0.0);
    // One window later: the old phase survives as `prev`.
    q.record(1.2, 0.020);
    EXPECT_EQ(q.count(), 101u);
    // Two-plus windows of silence: both phases dropped.
    q.record(4.5, 0.030);
    EXPECT_EQ(q.count(), 1u);
}

TEST(WindowedQuantile, EmptyReadsZero)
{
    WindowedQuantile q(1.0);
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.percentile(99.0), 0.0);
}

// ---------------------------------------------------------------------------
// Rule transitions through the push hooks.

TEST(HealthMonitor, BurnRateAlertFiresOnBadTraffic)
{
    HealthMonitor m;
    // A single shed makes the windowed bad fraction 1.0, so burn =
    // 1.0 / (1 - 0.999) = 1000 — over both thresholds at first eval.
    m.onShed("svc", 0.1);
    const HealthSummary s = m.summary("svc");
    EXPECT_EQ(s.badEvents, 1u);
    EXPECT_EQ(s.totalEvents, 1u);
    EXPECT_EQ(s.burnAlertsFired, 2u); // fast and slow
    EXPECT_EQ(s.alertsFired, 2u);
    // budget: bad / (total * (1 - objective)) = 1 / 0.001 (the
    // representation of 1 - 0.999 puts it a few ulps off 1000).
    EXPECT_NEAR(s.errorBudgetConsumed, 1000.0, 1e-9);
    ASSERT_GE(m.events().size(), 2u);
    EXPECT_EQ(m.events()[0].kind, HealthEvent::Kind::AlertRaised);
    EXPECT_EQ(m.events()[0].scope, "svc");
}

TEST(HealthMonitor, BurnRateAlertClearsWhenWindowsDrain)
{
    HealthMonitor m;
    m.onShed("svc", 0.1); // raises fast + slow burn alerts
    EXPECT_EQ(m.summary("svc").alertsFired, 2u);
    // 100 s later even the 60 s slow window has rotated past the bad
    // event; a run of good outcomes re-evaluates and clears both.
    for (int i = 0; i < 8; ++i)
        m.onServeOutcome("svc", 0, 100.0 + i, 0.010, true);
    const HealthSummary s = m.summary("svc");
    EXPECT_EQ(s.alertsFired, 2u);
    EXPECT_EQ(s.alertsCleared, 2u);
    EXPECT_GT(s.timeInViolationS, 0.0);
}

TEST(HealthMonitor, GoodTrafficRaisesNothing)
{
    HealthMonitor m;
    for (int i = 0; i < 100; ++i)
        m.onServeOutcome("svc", i % 4, 0.05 * i, 0.010, true);
    const HealthSummary s = m.summary("svc");
    EXPECT_EQ(s.alertsFired, 0u);
    EXPECT_EQ(s.badEvents, 0u);
    EXPECT_EQ(s.totalEvents, 100u);
    EXPECT_DOUBLE_EQ(s.errorBudgetConsumed, 0.0);
    EXPECT_DOUBLE_EQ(s.timeInViolationS, 0.0);
}

TEST(HealthMonitor, StragglerComparesWorstStoreToFleetMedian)
{
    HealthMonitor m;
    // Three stores; evals at t=0.1 (one store, no verdict) and t=0.5.
    m.onServeOutcome("svc", 0, 0.1, 0.100, true);
    m.onServeOutcome("svc", 1, 0.2, 0.100, true);
    m.onServeOutcome("svc", 2, 0.5, 0.500, true); // 5x the median
    const HealthSummary s = m.summary("svc");
    EXPECT_EQ(s.alertsFired, 1u);
    bool sawStraggler = false;
    for (const HealthEvent &e : m.events())
        if (e.kind == HealthEvent::Kind::AlertRaised &&
            e.rule == Rule::Straggler) {
            sawStraggler = true;
            EXPECT_EQ(e.detail, "store2");
            EXPECT_DOUBLE_EQ(e.value, 5.0);
        }
    EXPECT_TRUE(sawStraggler);
}

TEST(HealthMonitor, QueueSaturationTracksDepthOverCapacity)
{
    HealthMonitor m;
    m.onQueueDepth("svc", 0.1, 9, 10); // 0.9 >= 0.9 default
    EXPECT_EQ(m.summary("svc").alertsFired, 1u);
    m.onQueueDepth("svc", 1.0, 2, 10);
    const HealthSummary s = m.summary("svc");
    EXPECT_EQ(s.alertsFired, 1u);
    EXPECT_EQ(s.alertsCleared, 1u);
}

TEST(HealthMonitor, LinkCongestionFeedsFromIngressUtilGauge)
{
    HealthMonitor m;
    m.onGaugeSample("store0", "ingress.util", 0.1, 0.50);
    EXPECT_EQ(m.summary("").alertsFired, 0u);
    m.onGaugeSample("store1", "ingress.util", 0.5, 0.97);
    EXPECT_EQ(m.summary("").alertsFired, 1u);
    bool saw = false;
    for (const HealthEvent &e : m.events())
        if (e.kind == HealthEvent::Kind::AlertRaised &&
            e.rule == Rule::LinkCongestion) {
            saw = true;
            EXPECT_EQ(e.detail, "store1");
        }
    EXPECT_TRUE(saw);
    // Unrelated gauges are ignored by the congestion rule.
    HealthMonitor m2;
    m2.onGaugeSample("store0", "queue.depth", 0.1, 1000.0);
    EXPECT_EQ(m2.summary("").alertsFired, 0u);
}

TEST(HealthMonitor, GeoStalenessComparesLagToBound)
{
    HealthMonitor m;
    m.onGeoLag("georep", "site-b", 0.1, 1, 3);
    EXPECT_EQ(m.summary("georep").alertsFired, 0u);
    m.onGeoLag("georep", "site-b", 0.5, 3, 3); // at the bound
    const HealthSummary s = m.summary("georep");
    EXPECT_EQ(s.alertsFired, 1u);
}

TEST(HealthMonitor, FaultObserverFeedsDetectionLedger)
{
    HealthMonitor m;
    m.onFaultDetected(ndp::sim::FaultKind::StoreCrash, 1, 2.0, 2.5);
    m.onFaultRecovered(ndp::sim::FaultKind::StoreCrash, 1, 2.0, 9.0);
    m.onFaultDetected(ndp::sim::FaultKind::ReadError, 0, 4.0, 4.0);
    const HealthSummary s = m.summary("");
    EXPECT_EQ(s.faultsDetected, 2u);
    EXPECT_EQ(s.faultsRecovered, 1u);
    EXPECT_DOUBLE_EQ(s.meanTimeToDetectS, 0.25); // (0.5 + 0.0) / 2
    ASSERT_EQ(m.events().size(), 3u);
    EXPECT_EQ(m.events()[0].kind, HealthEvent::Kind::FaultDetected);
    EXPECT_DOUBLE_EQ(m.events()[0].value, 0.5);
    EXPECT_EQ(m.events()[1].kind, HealthEvent::Kind::FaultRecovered);
    EXPECT_DOUBLE_EQ(m.events()[1].value, 7.0);
    EXPECT_EQ(m.events()[2].detail, "store0");
}

TEST(HealthMonitor, TotalsAggregateAcrossScopes)
{
    HealthMonitor m;
    m.onShed("a", 0.1);
    m.onServeOutcome("b", 0, 0.2, 0.01, true);
    m.onFaultDetected(ndp::sim::FaultKind::StoreStall, 2, 1.0, 1.5);
    const HealthSummary t = m.totals();
    EXPECT_EQ(t.badEvents, 1u);
    EXPECT_EQ(t.totalEvents, 2u);
    EXPECT_EQ(t.faultsDetected, 1u);
    const auto sc = m.scopes();
    ASSERT_EQ(sc.size(), 3u); // "", "a", "b" — sorted
    EXPECT_EQ(sc[0], "");
    EXPECT_EQ(sc[1], "a");
    EXPECT_EQ(sc[2], "b");
}

// ---------------------------------------------------------------------------
// JSON export: parses with the ndptrace parser and reconciles with
// the in-memory summaries (the in-process `ndpmon --check`).

TEST(HealthMonitor, JsonParsesAndReconcilesWithSummaries)
{
    HealthMonitor m;
    for (int i = 0; i < 50; ++i)
        m.onServeOutcome("svc", i % 2, 0.1 * i, 0.010, i % 10 != 0);
    m.onShed("svc", 5.1);
    m.onFaultDetected(ndp::sim::FaultKind::StoreCrash, 0, 1.0, 1.2);
    m.onFaultRecovered(ndp::sim::FaultKind::StoreCrash, 0, 1.0, 3.0);

    ndp::trace::JsonValue root;
    std::string err;
    ASSERT_TRUE(ndp::trace::parseJson(m.json(), root, err)) << err;

    const ndp::trace::JsonValue *mon = root.find("monitor");
    ASSERT_NE(mon, nullptr);
    EXPECT_DOUBLE_EQ(mon->find("slo_objective")->numberOr(0),
                     m.config().sloObjective);

    const ndp::trace::JsonValue *scopes = root.find("scopes");
    ASSERT_NE(scopes, nullptr);
    ASSERT_TRUE(scopes->isArray());
    bool sawSvc = false;
    for (const auto &sc : scopes->arr) {
        if (sc.find("scope")->stringOr("?") != "svc")
            continue;
        sawSvc = true;
        const HealthSummary s = m.summary("svc");
        const ndp::trace::JsonValue *sum = sc.find("summary");
        ASSERT_NE(sum, nullptr);
        EXPECT_EQ(static_cast<uint64_t>(
                      sum->find("bad_events")->numberOr(-1)),
                  s.badEvents);
        EXPECT_EQ(static_cast<uint64_t>(
                      sum->find("total_events")->numberOr(-1)),
                  s.totalEvents);
        EXPECT_EQ(static_cast<uint64_t>(
                      sum->find("burn_alerts_fired")->numberOr(-1)),
                  s.burnAlertsFired);
        EXPECT_DOUBLE_EQ(
            sum->find("error_budget_consumed")->numberOr(-1),
            s.errorBudgetConsumed);
        const ndp::trace::JsonValue *series = sc.find("series");
        ASSERT_NE(series, nullptr);
        EXPECT_GT(series->arr.size(), 0u);
        // Series counters are cumulative and monotone in time.
        double lastT = -1.0;
        for (const auto &pt : series->arr) {
            const double t = pt.find("t_s")->numberOr(-1);
            EXPECT_GE(t, lastT);
            lastT = t;
            EXPECT_LE(pt.find("bad")->numberOr(0),
                      pt.find("total")->numberOr(0));
        }
    }
    EXPECT_TRUE(sawSvc);

    const ndp::trace::JsonValue *events = root.find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->arr.size(), m.events().size());
}

// ---------------------------------------------------------------------------
// End-to-end passive contract against the serving dataflow.

ndp::core::serve::ServeConfig
monitorServeConfig()
{
    ndp::core::serve::ServeConfig cfg;
    cfg.nStores = 4;
    cfg.arrivals.nRequests = 4000;
    cfg.arrivals.nUsers = 200000;
    // Push past fleet capacity so sheds and deadline misses feed the
    // burn windows, and crash a store so the fault feed fires too.
    cfg.arrivals.baseRatePerSec = 2000.0;
    cfg.arrivals.seed = 7;
    cfg.admission.queueCap = 16;
    cfg.faults.crashStore(1, 0.5);
    return cfg;
}

TEST(HealthMonitor, MonitoredServingIsBitIdenticalToUnmonitored)
{
    using ndp::core::serve::ServeReport;
    using ndp::core::serve::runServing;
    const ndp::core::serve::ServeConfig cfg = monitorServeConfig();
    const ServeReport plain = runServing(cfg);
    ServeReport monitored;
    {
        MonitorSession session;
        monitored = runServing(cfg);
        EXPECT_GT(session.monitor().events().size(), 0u);
    }
    // Every pre-existing field bit-identical: the monitor observed a
    // heavily-shedding, crash-recovering run without perturbing it.
    EXPECT_BITEQ(plain.seconds, monitored.seconds);
    EXPECT_EQ(plain.offered, monitored.offered);
    EXPECT_EQ(plain.accepted, monitored.accepted);
    EXPECT_EQ(plain.completed, monitored.completed);
    EXPECT_EQ(plain.goodput, monitored.goodput);
    EXPECT_EQ(plain.shedThrottle, monitored.shedThrottle);
    EXPECT_EQ(plain.shedQueueFull, monitored.shedQueueFull);
    EXPECT_EQ(plain.shedDeadline, monitored.shedDeadline);
    EXPECT_EQ(plain.shedUnavailable, monitored.shedUnavailable);
    EXPECT_EQ(plain.redispatched, monitored.redispatched);
    EXPECT_EQ(plain.abandoned, monitored.abandoned);
    EXPECT_BITEQ(plain.p50Ms, monitored.p50Ms);
    EXPECT_BITEQ(plain.p99Ms, monitored.p99Ms);
    EXPECT_BITEQ(plain.p999Ms, monitored.p999Ms);
    EXPECT_BITEQ(plain.meanMs, monitored.meanMs);
    EXPECT_BITEQ(plain.maxMs, monitored.maxMs);
    EXPECT_EQ(plain.faults.crashes, monitored.faults.crashes);
    EXPECT_EQ(plain.faults.faultsDetected,
              monitored.faults.faultsDetected);

    // Monitoring off: the additive health block is all-zero.
    EXPECT_EQ(plain.health.alertsFired, 0u);
    EXPECT_EQ(plain.health.totalEvents, 0u);
    // Monitoring on: the run's SLO ledger and fault feed landed.
    EXPECT_GT(monitored.health.totalEvents, 0u);
    EXPECT_GE(monitored.health.faultsDetected, 1u);
    EXPECT_EQ(monitored.health.badEvents,
              monitored.offered - monitored.goodput);
}

TEST(HealthMonitor, SameSeedMonitoredRunsExportByteIdenticalJson)
{
    auto healthJson = [] {
        MonitorSession session;
        ndp::core::serve::runServing(monitorServeConfig());
        return session.monitor().json();
    };
    const std::string first = healthJson();
    const std::string second = healthJson();
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second);
}

TEST(MonitorSession, InstallsAndClearsCurrent)
{
    EXPECT_EQ(HealthMonitor::current(), nullptr);
    {
        MonitorSession session;
        EXPECT_EQ(HealthMonitor::current(), &session.monitor());
    }
    EXPECT_EQ(HealthMonitor::current(), nullptr);
}

} // namespace
