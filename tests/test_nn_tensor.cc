/**
 * @file
 * Tests for the dense tensor and its kernels, including checks of the
 * specialized matmul variants against the naive reference.
 */

#include <gtest/gtest.h>

#include "nn/tensor.h"

using namespace ndp;
using namespace ndp::nn;

namespace {

Tensor
naiveMatmul(const Tensor &a, const Tensor &b)
{
    Tensor c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < b.cols(); ++j) {
            float s = 0.0f;
            for (size_t k = 0; k < a.cols(); ++k)
                s += a.at(i, k) * b.at(k, j);
            c.at(i, j) = s;
        }
    }
    return c;
}

Tensor
transpose(const Tensor &a)
{
    Tensor t(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

void
expectNear(const Tensor &a, const Tensor &b, float tol = 1e-4f)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "at " << i;
}

} // namespace

TEST(Tensor, ConstructionAndShape)
{
    Tensor t(3, 5);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 5u);
    EXPECT_EQ(t.size(), 15u);
    for (float v : t.data())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, DefaultIsEmpty)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, FilledAndFill)
{
    Tensor t = Tensor::filled(2, 2, 3.5f);
    for (float v : t.data())
        EXPECT_EQ(v, 3.5f);
    t.fill(-1.0f);
    for (float v : t.data())
        EXPECT_EQ(v, -1.0f);
}

TEST(Tensor, AtRowMajorLayout)
{
    Tensor t(2, 3);
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t.data()[5], 7.0f);
    EXPECT_EQ(t.rowPtr(1)[2], 7.0f);
}

TEST(Tensor, RandnStatistics)
{
    Rng rng(3);
    Tensor t = Tensor::randn(100, 100, rng, 2.0f);
    double sum = 0.0, sq = 0.0;
    for (float v : t.data()) {
        sum += v;
        sq += static_cast<double>(v) * v;
    }
    double mean = sum / t.size();
    double var = sq / t.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Tensor, AxpyAccumulates)
{
    Tensor a = Tensor::filled(2, 2, 1.0f);
    Tensor b = Tensor::filled(2, 2, 2.0f);
    a.axpy(0.5f, b);
    for (float v : a.data())
        EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Tensor, GatherRowsSelectsAndOrders)
{
    Tensor t(4, 2);
    for (size_t i = 0; i < 4; ++i) {
        t.at(i, 0) = static_cast<float>(i);
        t.at(i, 1) = static_cast<float>(10 * i);
    }
    Tensor g = t.gatherRows({3, 0, 3});
    ASSERT_EQ(g.rows(), 3u);
    EXPECT_EQ(g.at(0, 0), 3.0f);
    EXPECT_EQ(g.at(1, 0), 0.0f);
    EXPECT_EQ(g.at(2, 1), 30.0f);
}

TEST(Tensor, SumSquares)
{
    Tensor t(1, 3);
    t.at(0, 0) = 1.0f;
    t.at(0, 1) = 2.0f;
    t.at(0, 2) = 2.0f;
    EXPECT_DOUBLE_EQ(t.sumSquares(), 9.0);
}

TEST(Matmul, MatchesNaive)
{
    Rng rng(5);
    Tensor a = Tensor::randn(7, 13, rng, 1.0f);
    Tensor b = Tensor::randn(13, 9, rng, 1.0f);
    expectNear(matmul(a, b), naiveMatmul(a, b));
}

TEST(Matmul, IdentityPreserves)
{
    Rng rng(6);
    Tensor a = Tensor::randn(4, 4, rng, 1.0f);
    Tensor eye(4, 4);
    for (size_t i = 0; i < 4; ++i)
        eye.at(i, i) = 1.0f;
    expectNear(matmul(a, eye), a);
    expectNear(matmul(eye, a), a);
}

TEST(MatmulTN, MatchesTransposedNaive)
{
    Rng rng(7);
    Tensor a = Tensor::randn(11, 5, rng, 1.0f); // (k x m)
    Tensor b = Tensor::randn(11, 6, rng, 1.0f); // (k x n)
    expectNear(matmulTN(a, b), naiveMatmul(transpose(a), b));
}

TEST(MatmulNT, MatchesTransposedNaive)
{
    Rng rng(8);
    Tensor a = Tensor::randn(5, 11, rng, 1.0f); // (m x k)
    Tensor b = Tensor::randn(6, 11, rng, 1.0f); // (n x k)
    expectNear(matmulNT(a, b), naiveMatmul(a, transpose(b)));
}

TEST(Matmul, ZeroSkipPathStaysCorrect)
{
    // The ikj kernel skips zero multipliers; verify with sparse input.
    Rng rng(9);
    Tensor a(6, 8);
    a.at(0, 0) = 1.0f;
    a.at(3, 7) = -2.0f;
    Tensor b = Tensor::randn(8, 4, rng, 1.0f);
    expectNear(matmul(a, b), naiveMatmul(a, b));
}

TEST(AddBiasRow, BroadcastsToEveryRow)
{
    Tensor x = Tensor::filled(3, 2, 1.0f);
    Tensor bias(1, 2);
    bias.at(0, 0) = 10.0f;
    bias.at(0, 1) = 20.0f;
    addBiasRow(x, bias);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_FLOAT_EQ(x.at(i, 0), 11.0f);
        EXPECT_FLOAT_EQ(x.at(i, 1), 21.0f);
    }
}

TEST(ColumnSums, SumsEachColumn)
{
    Tensor x(3, 2);
    for (size_t i = 0; i < 3; ++i) {
        x.at(i, 0) = static_cast<float>(i + 1);
        x.at(i, 1) = 1.0f;
    }
    Tensor s = columnSums(x);
    ASSERT_EQ(s.rows(), 1u);
    EXPECT_FLOAT_EQ(s.at(0, 0), 6.0f);
    EXPECT_FLOAT_EQ(s.at(0, 1), 3.0f);
}
