/**
 * @file
 * net::NetFabric unit tests: max-min fair allocations checked against
 * closed-form progressive filling (single bottleneck, nested
 * bottlenecks, flows joining and leaving mid-transfer), the zero-byte
 * latency contract, link fault windows, bit-level determinism, and the
 * cross-validation of apo.cc's analytic network-stage term against
 * fabric-simulated drain times (uncontended and N-store contended).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/apo.h"
#include "models/zoo.h"
#include "net/fabric.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace {

using namespace ndp;
using net::FlowClass;
using net::FlowStats;
using net::NetFabric;
using net::NodeId;

/** Start a transfer after @p delay and record its stats.
 * Pointer params only: referents live in the test body, which joins
 * every task via s.run(). */
sim::Task
xfer(sim::Simulator *s, NetFabric *fab, double delay, NodeId src,
     NodeId dst, double bytes, FlowStats *out)
{
    if (delay > 0.0)
        co_await s->delay(delay);
    *out = co_await fab->transfer(src, dst, bytes,
                                  FlowClass::BulkInput);
}

TEST(NetFabric, SingleFlowMatchesServiceTime)
{
    sim::Simulator s;
    NetFabric fab(s);
    NodeId a = fab.addNode({10.0, 0.0}); // 10 Gbps, no latency
    NodeId b = fab.addNode({10.0, 0.0});
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, b, 1.25e9, &st)); // 10 Gbit
    s.run();
    EXPECT_NEAR(s.now(), 1.0, 1e-9);
    EXPECT_NEAR(st.finishS - st.startS, 1.0, 1e-9);
    EXPECT_NEAR(st.achievedGbps, 10.0, 1e-9);
    EXPECT_EQ(st.peakSharedWith, 0);
    EXPECT_NEAR(fab.serviceTime(a, b, 1.25e9), 1.0, 1e-12);
}

TEST(NetFabric, SingleBottleneckSharesIngressFairly)
{
    // Four stores funnel into one ingress downlink: every flow gets
    // cap/4, the aggregate drains at full rate (work conservation).
    sim::Simulator s;
    NetFabric fab(s);
    std::vector<NodeId> stores;
    for (int i = 0; i < 4; ++i)
        stores.push_back(fab.addNode({10.0, 0.0}));
    NodeId tuner = fab.addNode({10.0, 0.0});
    fab.setIngress(tuner);
    std::vector<FlowStats> st(4);
    for (int i = 0; i < 4; ++i)
        s.spawn(xfer(&s, &fab, 0.0, stores[static_cast<size_t>(i)],
                     tuner, 1.25e9, &st[static_cast<size_t>(i)]));
    s.run();
    // 4 x 10 Gbit over a 10 Gbps downlink: all done at t = 4.
    EXPECT_NEAR(s.now(), 4.0, 1e-9);
    for (const FlowStats &f : st) {
        EXPECT_NEAR(f.finishS, 4.0, 1e-9);
        EXPECT_NEAR(f.achievedGbps, 2.5, 1e-9);
        EXPECT_EQ(f.peakSharedWith, 3);
    }
    net::NetReport rep = fab.report();
    EXPECT_EQ(rep.flowsCompleted, 4U);
    EXPECT_EQ(rep.peakConcurrentFlows, 4U);
    EXPECT_DOUBLE_EQ(rep.ingressBytes, 5.0e9);
    EXPECT_NEAR(rep.ingressUtil, 1.0, 1e-9);
}

TEST(NetFabric, NestedBottlenecksMatchProgressiveFilling)
{
    // f1, f2: A -> D (A's 4 Gbps uplink binds them at 2 each);
    // f3: B -> D (D's 10 Gbps downlink has 6 left over).
    // Progressive filling: round 1 fixes f1, f2 at 2; round 2 fixes
    // f3 at 6. All flows carry 8 Gbit.
    sim::Simulator s;
    NetFabric fab(s);
    NodeId a = fab.addNode({4.0, 0.0});
    NodeId b = fab.addNode({10.0, 0.0});
    NodeId d = fab.addNode({10.0, 0.0});
    FlowStats f1, f2, f3;
    s.spawn(xfer(&s, &fab, 0.0, a, d, 1e9, &f1));
    s.spawn(xfer(&s, &fab, 0.0, a, d, 1e9, &f2));
    s.spawn(xfer(&s, &fab, 0.0, b, d, 1e9, &f3));
    s.run();
    EXPECT_NEAR(f3.finishS, 8.0 / 6.0, 1e-9);
    EXPECT_NEAR(f3.achievedGbps, 6.0, 1e-9);
    // f1/f2 stay pinned at 2 Gbps by their own uplink even after f3
    // leaves: 8 Gbit / 2 Gbps = 4 s.
    EXPECT_NEAR(f1.finishS, 4.0, 1e-9);
    EXPECT_NEAR(f2.finishS, 4.0, 1e-9);
    EXPECT_NEAR(s.now(), 4.0, 1e-9);
}

TEST(NetFabric, FlowJoinAndLeaveRebalanceMidTransfer)
{
    // f1 runs alone at 10, drops to 5 when f2 joins at t = 0.4, and
    // climbs back to 10 when f2 finishes at t = 2.0.
    sim::Simulator s;
    NetFabric fab(s);
    NodeId s1 = fab.addNode({10.0, 0.0});
    NodeId s2 = fab.addNode({10.0, 0.0});
    NodeId d = fab.addNode({10.0, 0.0});
    FlowStats f1, f2;
    s.spawn(xfer(&s, &fab, 0.0, s1, d, 3e9, &f1)); // 24 Gbit
    s.spawn(xfer(&s, &fab, 0.4, s2, d, 1e9, &f2)); // 8 Gbit
    s.run();
    // Closed form: f1 moves 4 Gbit alone, 8 Gbit shared (1.6 s at 5),
    // then the last 12 Gbit alone again.
    EXPECT_NEAR(f2.finishS, 2.0, 1e-9);
    EXPECT_NEAR(f1.finishS, 3.2, 1e-9);
    EXPECT_EQ(f1.peakSharedWith, 1);
    // Work conservation: 32 Gbit through a 10 Gbps downlink in 3.2 s.
    EXPECT_NEAR(s.now(), 3.2, 1e-9);
}

TEST(NetFabric, ZeroByteTransferPaysLatencyOnly)
{
    sim::Simulator s;
    NetFabric fab(s);
    NodeId a = fab.addNode({10.0, 0.01});
    NodeId b = fab.addNode({10.0, 0.01});
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, a, b, 0.0, &st));
    s.run();
    EXPECT_NEAR(s.now(), 0.02, 1e-12); // up + down propagation
    net::NetReport rep = fab.report();
    EXPECT_EQ(rep.flowsCompleted, 1U);
    EXPECT_DOUBLE_EQ(rep.bytesMoved, 0.0);
}

TEST(NetFabric, WorkConservingForUnequalFlows)
{
    // Unequal payloads into one ingress: whatever the per-flow rates,
    // the shared downlink must drain total bytes at full capacity.
    sim::Simulator s;
    NetFabric fab(s);
    std::vector<NodeId> stores;
    for (int i = 0; i < 3; ++i)
        stores.push_back(fab.addNode({10.0, 0.0}));
    NodeId d = fab.addNode({10.0, 0.0});
    fab.setIngress(d);
    const double bytes[] = {0.5e9, 1.0e9, 2.25e9}; // 30 Gbit total
    FlowStats st[3];
    for (int i = 0; i < 3; ++i)
        s.spawn(xfer(&s, &fab, 0.0, stores[static_cast<size_t>(i)], d,
                     bytes[i], &st[i]));
    s.run();
    EXPECT_NEAR(s.now(), 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(fab.bytesInto(d), 3.75e9);
    EXPECT_NEAR(fab.report().ingressUtil, 1.0, 1e-9);
}

TEST(NetFabric, LinkDegradeStretchesTransfer)
{
    sim::Simulator s;
    sim::FaultPlan plan;
    plan.degradeLink(0, 0.0, 100.0, 0.5); // node 0 NIC at half rate
    sim::FaultInjector inj(s, plan, 1);
    NetFabric fab(s);
    NodeId store = fab.addNode({10.0, 0.0});
    NodeId tuner = fab.addNode({10.0, 0.0});
    fab.setIngress(tuner);
    fab.attachFaults(&inj);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, store, tuner, 1.25e9, &st)); // 10 Gbit
    s.run();
    EXPECT_NEAR(s.now(), 2.0, 1e-9); // 10 Gbit at 5 Gbps
    EXPECT_NEAR(st.achievedGbps, 5.0, 1e-9);
    EXPECT_EQ(inj.report().linkDegrades, 1U);
    EXPECT_EQ(inj.report().linkDowns, 0U);
}

TEST(NetFabric, LinkDownStallsThenResumes)
{
    sim::Simulator s;
    sim::FaultPlan plan;
    plan.downLink(0, 1.0, 1.0); // node 0 dark during [1, 2)
    sim::FaultInjector inj(s, plan, 1);
    NetFabric fab(s);
    NodeId store = fab.addNode({10.0, 0.0});
    NodeId tuner = fab.addNode({10.0, 0.0});
    fab.setIngress(tuner);
    fab.attachFaults(&inj);
    FlowStats st;
    s.spawn(xfer(&s, &fab, 0.0, store, tuner, 2.5e9, &st)); // 20 Gbit
    s.run();
    // 1 s moving + 1 s dark + 1 s moving.
    EXPECT_NEAR(s.now(), 3.0, 1e-9);
    EXPECT_NEAR(st.finishS, 3.0, 1e-9);
    EXPECT_EQ(inj.report().linkDowns, 1U);
}

TEST(NetFabric, DeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        sim::Simulator s;
        NetFabric fab(s);
        std::vector<NodeId> stores;
        for (int i = 0; i < 5; ++i)
            stores.push_back(fab.addNode({10.0, 2.0e-5}));
        NodeId d = fab.addNode({25.0, 2.0e-5});
        fab.setIngress(d);
        std::vector<FlowStats> st(5);
        for (int i = 0; i < 5; ++i)
            s.spawn(xfer(&s, &fab, 0.03 * i,
                         stores[static_cast<size_t>(i)], d,
                         0.7e9 + 1e8 * i, &st[static_cast<size_t>(i)]));
        s.run();
        return fab.report();
    };
    net::NetReport a = run();
    net::NetReport b = run();
    EXPECT_EQ(std::bit_cast<uint64_t>(a.bytesMoved),
              std::bit_cast<uint64_t>(b.bytesMoved));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.ingressBytes),
              std::bit_cast<uint64_t>(b.ingressBytes));
    EXPECT_EQ(std::bit_cast<uint64_t>(a.ingressUtil),
              std::bit_cast<uint64_t>(b.ingressUtil));
    EXPECT_EQ(a.flowsCompleted, b.flowsCompleted);
    EXPECT_EQ(a.peakConcurrentFlows, b.peakConcurrentFlows);
}

// ---------------------------------------------------------------------------
// APO cross-validation: the planner's analytic network-stage term must
// agree with what the fabric actually simulates, because the fabric is
// work-conserving on the shared ingress (see net/estimate.h).
// ---------------------------------------------------------------------------

namespace apo_parity {

double
fabricDrainSeconds(const core::ExperimentConfig &cfg, double total_bytes)
{
    sim::Simulator s;
    NetFabric fab(s);
    std::vector<NodeId> stores;
    for (int i = 0; i < cfg.nStores; ++i)
        stores.push_back(fab.addNode(cfg.storeSpec.nic));
    NodeId tuner = fab.addNode(cfg.nic());
    fab.setIngress(tuner);
    std::vector<FlowStats> st(static_cast<size_t>(cfg.nStores));
    for (int i = 0; i < cfg.nStores; ++i)
        s.spawn(xfer(&s, &fab, 0.0, stores[static_cast<size_t>(i)],
                     tuner, total_bytes / cfg.nStores,
                     &st[static_cast<size_t>(i)]));
    s.run();
    return s.now();
}

} // namespace apo_parity

TEST(ApoFabricParity, UncontendedNetStageMatchesFabric)
{
    core::ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 1;
    cfg.nImages = 100000;
    core::TrainOptions opt;
    core::PartitionChoice c =
        core::evaluateCut(cfg, opt, cfg.model->numBlocks());
    double imgs_run = static_cast<double>(cfg.nImages) /
                      static_cast<double>(opt.nRun);
    double total_bytes = imgs_run * c.transferMBPerImage * 1e6;
    double simulated = apo_parity::fabricDrainSeconds(cfg, total_bytes);
    // Band covers propagation latency; the serialization terms must
    // agree because a lone flow runs at min(uplink, ingress) = ingress.
    EXPECT_NEAR(simulated, c.netStageS, c.netStageS * 1e-3 + 1e-3);
}

TEST(ApoFabricParity, ContendedIngressMatchesAnalyticTerm)
{
    core::ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 4;
    cfg.nImages = 100000;
    core::TrainOptions opt;
    core::PartitionChoice c =
        core::evaluateCut(cfg, opt, cfg.model->numBlocks());
    double imgs_run = static_cast<double>(cfg.nImages) /
                      static_cast<double>(opt.nRun);
    double total_bytes = imgs_run * c.transferMBPerImage * 1e6;
    double simulated = apo_parity::fabricDrainSeconds(cfg, total_bytes);
    // N stores share the one ingress downlink: the fabric's max-min
    // allocation is work-conserving, so the aggregate drain time
    // equals the analytic `total bytes / ingress rate` term the APO
    // planner uses — contention emerges, it is not assumed.
    EXPECT_NEAR(simulated, c.netStageS, c.netStageS * 1e-3 + 1e-3);
}

} // namespace
