/**
 * @file
 * Properties of the NPE pipeline engine (core/pipeline.h) that must
 * hold for every dataflow built on it: pipelining never loses to the
 * serial walk, no image is dropped or double-counted, the measured
 * StageMetrics agree with the analytical npeStageTimes() model, and
 * invalid configurations are rejected before any pipeline is built.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/inference.h"
#include "core/media.h"
#include "core/pipeline.h"
#include "core/training.h"
#include "sim/simulator.h"

using namespace ndp;
using namespace ndp::core;

namespace {

const models::ModelSpec *
figureModels(int i)
{
    static const models::ModelSpec *kModels[] = {
        &models::shufflenetV2(), &models::resnet50(),
        &models::inceptionV3(), &models::vitB16()};
    return kModels[i];
}
constexpr int kNumFigureModels = 4;

constexpr SrvVariant kAllVariants[] = {
    SrvVariant::RawRemote, SrvVariant::RawLocal, SrvVariant::Ideal,
    SrvVariant::Preprocessed, SrvVariant::Compressed};

} // namespace

// ---------------------------------------------------------------------
// Pipelined execution never loses to the fully serial walk.
// ---------------------------------------------------------------------

TEST(PipelineProperties, NdpPipelinedNeverSlowerAcrossModels)
{
    for (int i = 0; i < kNumFigureModels; ++i) {
        ExperimentConfig cfg;
        cfg.model = figureModels(i);
        cfg.nStores = 2;
        cfg.nImages = 4000;
        cfg.npe.pipelined = true;
        auto piped = runNdpOfflineInference(cfg);
        cfg.npe.pipelined = false;
        auto serial = runNdpOfflineInference(cfg);
        if (piped.oom || serial.oom)
            continue;
        EXPECT_LE(piped.seconds, serial.seconds * (1.0 + 1e-9))
            << cfg.model->name();
    }
}

TEST(PipelineProperties, SrvPipelinedNeverSlowerAcrossVariants)
{
    for (SrvVariant v : kAllVariants) {
        ExperimentConfig cfg;
        cfg.model = &models::resnet50();
        cfg.nImages = 4000;
        cfg.npe.pipelined = true;
        auto piped = runSrvOfflineInference(cfg, v);
        cfg.npe.pipelined = false;
        auto serial = runSrvOfflineInference(cfg, v);
        EXPECT_LE(piped.seconds, serial.seconds * (1.0 + 1e-9))
            << srvVariantName(v);
    }
}

TEST(PipelineProperties, NaiveNpeWithPipeliningNeverSlower)
{
    // The ablation base case: raw JPEGs, 1 preprocess core.
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 1;
    cfg.nImages = 2000;
    cfg.npe = NpeOptions::naive();
    cfg.npe.pipelined = true;
    auto piped = runNdpOfflineInference(cfg);
    cfg.npe.pipelined = false;
    auto serial = runNdpOfflineInference(cfg);
    EXPECT_LE(piped.seconds, serial.seconds * (1.0 + 1e-9));
}

// ---------------------------------------------------------------------
// Conservation: every image enters and leaves the pipeline exactly
// once, for batch sizes that do not divide the share evenly and store
// counts that do not divide the image count evenly.
// ---------------------------------------------------------------------

TEST(PipelineProperties, NdpInferenceConservesImages)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 3;
    cfg.nImages = 10007; // prime: uneven across stores and batches
    auto piped = runNdpOfflineInference(cfg);
    EXPECT_EQ(piped.stages.itemsDone, cfg.nImages);
    cfg.npe.pipelined = false;
    auto serial = runNdpOfflineInference(cfg);
    EXPECT_EQ(serial.stages.itemsDone, cfg.nImages);
}

TEST(PipelineProperties, SrvInferenceConservesImagesAcrossVariants)
{
    for (SrvVariant v : kAllVariants) {
        ExperimentConfig cfg;
        cfg.model = &models::resnet50();
        cfg.srvStorageServers = 3;
        cfg.nImages = 10007;
        auto r = runSrvOfflineInference(cfg, v);
        EXPECT_EQ(r.stages.itemsDone, cfg.nImages)
            << srvVariantName(v);
    }
}

TEST(PipelineProperties, FtDmpConservesImagesAcrossRuns)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 3;
    cfg.nImages = 10007;
    TrainOptions opt;
    opt.nRun = 3; // images split across runs, then across stores
    auto piped = runFtDmpTraining(cfg, opt);
    EXPECT_EQ(piped.stages.itemsDone, cfg.nImages);
    opt.pipelined = false;
    auto gated = runFtDmpTraining(cfg, opt);
    EXPECT_EQ(gated.stages.itemsDone, cfg.nImages);
}

TEST(PipelineProperties, SrvFineTuningConservesImages)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nImages = 10007;
    auto r = runSrvFineTuning(cfg);
    EXPECT_EQ(r.stages.itemsDone, cfg.nImages);
}

// ---------------------------------------------------------------------
// The measured StageMetrics must agree with the analytical model for
// the Fig. 12 NPE configurations: CPU/GPU service times are exactly
// per-image-linear, and disk time adds one seek per batch on top of
// the analytical per-image stream time.
// ---------------------------------------------------------------------

TEST(PipelineProperties, MeasuredStageTimesMatchAnalyticalModel)
{
    const NpeOptions levels[] = {
        NpeOptions::naive(), NpeOptions::withOffload(),
        NpeOptions::withCompression(), NpeOptions::withBatch()};
    for (const NpeOptions &npe : levels) {
        ExperimentConfig cfg;
        cfg.model = &models::resnet50();
        cfg.nStores = 1;
        cfg.nImages = 6400; // divisible by both batch sizes (16, 128)
        cfg.npe = npe;
        auto r = runNdpOfflineInference(cfg);
        auto a = npeStageTimes(cfg, cfg.npe, false);
        double n = static_cast<double>(cfg.nImages);
        double batches = n / npe.batchSize;
        double seek = cfg.storeSpec.disk.seekS;

        EXPECT_NEAR(r.stages.readS, a.readS * n + seek * batches,
                    (a.readS * n + seek * batches) * 1e-9);
        EXPECT_NEAR(r.stages.decompressS, a.decompressS * n,
                    a.decompressS * n * 1e-9 + 1e-12);
        EXPECT_NEAR(r.stages.preprocessS, a.preprocessS * n,
                    a.preprocessS * n * 1e-9 + 1e-12);
        EXPECT_NEAR(r.stages.computeS, a.computeS * n,
                    a.computeS * n * 1e-9);
    }
}

TEST(PipelineProperties, MeasuredBytesMatchConfiguredWork)
{
    ExperimentConfig cfg;
    cfg.model = &models::resnet50();
    cfg.nStores = 2;
    cfg.nImages = 5000;
    auto r = runNdpOfflineInference(cfg);
    double n = static_cast<double>(cfg.nImages);
    // Compressed binaries on disk, 16-byte labels on the wire.
    EXPECT_NEAR(r.stages.readBytes,
                cfg.model->inputMB() * 1e6 / kCompressionRatio * n,
                r.stages.readBytes * 1e-9);
    EXPECT_DOUBLE_EQ(r.stages.shipBytes, r.netBytes);
}

// ---------------------------------------------------------------------
// The engine stands alone: a hand-built PipelineSpec runs without any
// run* adapter, and the bounded inter-stage channels never exceed
// their configured depth (the back-pressure probes see real limits).
// ---------------------------------------------------------------------

TEST(PipelineProperties, StandaloneEngineRespectsChannelDepth)
{
    ExperimentConfig cfg;
    sim::Simulator s;
    StoreStations st(s, cfg.storeSpec);

    PipelineSpec spec;
    spec.batch = 8;
    spec.depth = 3;
    spec.readBytesPerItem = 1e6;
    spec.cpu = &st.cpu;
    spec.cpuOps = {CpuStageOp::decompress(3.5, 2)};
    spec.gpu = &st.gpu;
    spec.computeSecondsPerItem = 1e-4;
    spec.shipBytesPerItem = 16.0;
    ProducerSpec prod;
    prod.disk = &st.disk;
    prod.runItems = {1000};
    Pipeline pipe(s, std::move(spec), {prod});
    pipe.spawn();
    s.run();
    pipe.finalize();

    EXPECT_EQ(pipe.metrics().itemsDone, 1000u);
    EXPECT_LE(pipe.loadedPeak(), 3u);
    EXPECT_LE(pipe.readyPeak(), 3u);
    EXPECT_GT(pipe.metrics().readS, 0.0);
    EXPECT_GT(pipe.metrics().decompressS, 0.0);
    EXPECT_GT(pipe.metrics().computeS, 0.0);
    EXPECT_DOUBLE_EQ(pipe.metrics().shipBytes, 16.0 * 1000);
    EXPECT_GT(pipe.metrics().gpuUtil, 0.0);
}

// ---------------------------------------------------------------------
// Validation: every run* entry point rejects degenerate configs with
// std::invalid_argument before any simulation is built.
// ---------------------------------------------------------------------

TEST(ConfigValidation, RejectsBadExperimentConfig)
{
    ExperimentConfig cfg;
    cfg.nStores = 0;
    EXPECT_THROW(runNdpOfflineInference(cfg), std::invalid_argument);
    EXPECT_THROW(runNdpMediaAnalysis(cfg, videoMedia(), 100),
                 std::invalid_argument);

    cfg = ExperimentConfig{};
    cfg.srvStorageServers = 0;
    EXPECT_THROW(runSrvOfflineInference(cfg, SrvVariant::Compressed),
                 std::invalid_argument);
    EXPECT_THROW(runSrvMediaAnalysis(cfg, videoMedia(), 100),
                 std::invalid_argument);

    cfg = ExperimentConfig{};
    cfg.npe.batchSize = 0;
    EXPECT_THROW(runNdpOfflineInference(cfg), std::invalid_argument);
    EXPECT_THROW(runSrvOfflineInference(cfg, SrvVariant::Ideal),
                 std::invalid_argument);

    cfg = ExperimentConfig{};
    cfg.networkGbps = 0.0;
    EXPECT_THROW(runSrvFineTuning(cfg), std::invalid_argument);

    cfg = ExperimentConfig{};
    cfg.npe.decompressCores = 0;
    EXPECT_THROW(runNdpOfflineInference(cfg), std::invalid_argument);
}

TEST(ConfigValidation, RejectsBadTrainOptions)
{
    ExperimentConfig cfg;
    TrainOptions opt;
    opt.nRun = 0;
    EXPECT_THROW(runFtDmpTraining(cfg, opt), std::invalid_argument);

    opt = TrainOptions{};
    opt.feBatch = 0;
    EXPECT_THROW(runFtDmpTraining(cfg, opt), std::invalid_argument);

    opt = TrainOptions{};
    opt.trainBatch = 0;
    EXPECT_THROW(runFtDmpTraining(cfg, opt), std::invalid_argument);

    opt = TrainOptions{};
    opt.tunerEpochs = 0;
    EXPECT_THROW(runFtDmpTraining(cfg, opt), std::invalid_argument);

    opt = TrainOptions{};
    opt.storeSpeedFactor = {1.0, 0.0};
    EXPECT_THROW(runFtDmpTraining(cfg, opt), std::invalid_argument);
}

TEST(ConfigValidation, AcceptsDefaultConfigs)
{
    ExperimentConfig cfg;
    EXPECT_TRUE(cfg.validate().ok());
    TrainOptions opt;
    EXPECT_TRUE(opt.validate().ok());
    EXPECT_NO_THROW(cfg.validate().orThrow());
    EXPECT_NO_THROW(opt.validate().orThrow());
    ValidationResult bad("boom");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error(), "boom");
    EXPECT_THROW(bad.orThrow(), std::invalid_argument);
}
