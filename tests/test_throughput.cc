/**
 * @file
 * Tests for the calibrated throughput estimator: paper anchors, batch
 * scaling, device scaling, memory bounds, and Tuner-side costs.
 */

#include <gtest/gtest.h>

#include "hw/specs.h"
#include "models/throughput.h"
#include "models/zoo.h"

using namespace ndp::models;
using namespace ndp::hw;

TEST(Throughput, PaperAnchorsAtBatch128)
{
    // §6.2: measured per-PipeStore rates on the T4.
    EXPECT_NEAR(deviceIps(teslaT4(), resnet50(), 128), 2129.0, 1.0);
    EXPECT_NEAR(deviceIps(teslaT4(), inceptionV3(), 128), 2439.0, 1.0);
    EXPECT_NEAR(deviceIps(teslaT4(), resnext101(), 128), 449.0, 1.0);
    EXPECT_NEAR(deviceIps(teslaT4(), vitB16(), 128), 277.0, 1.0);
}

TEST(Throughput, BatchEfficiencyNormalizedAtAnchor)
{
    EXPECT_DOUBLE_EQ(batchEfficiency(128), 1.0);
    EXPECT_LT(batchEfficiency(1), 0.1);
    EXPECT_GT(batchEfficiency(512), 1.0);
    EXPECT_LT(batchEfficiency(512), 1.2); // saturating
}

TEST(Throughput, BatchEfficiencyMonotone)
{
    double prev = 0.0;
    for (int b : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
        double e = batchEfficiency(b);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(Throughput, DeviceScalingByPeakTflops)
{
    double t4 = deviceIps(teslaT4(), resnet50(), 128);
    double v100 = deviceIps(teslaV100(), resnet50(), 128);
    EXPECT_NEAR(v100 / t4,
                teslaV100().peakTflops / teslaT4().peakTflops, 1e-9);
    double nc = deviceIps(neuronCoreV1(), resnet50(), 128);
    EXPECT_LT(nc, t4);
}

TEST(Throughput, FeTimeZeroAtCutZero)
{
    EXPECT_DOUBLE_EQ(
        feSecondsPerImage(teslaT4(), resnet50(), 0, 128), 0.0);
}

TEST(Throughput, FeTimeGrowsWithCut)
{
    const auto &m = resnet50();
    double prev = 0.0;
    for (size_t cut = 1; cut <= m.numBlocks(); ++cut) {
        double t = feSecondsPerImage(teslaT4(), m, cut, 128);
        EXPECT_GT(t, prev);
        prev = t;
    }
    // Full-model FE time ~= 1/anchor IPS.
    EXPECT_NEAR(prev, 1.0 / 2129.0, 2e-5);
}

TEST(Throughput, TunerIngestZeroAtClassifierBoundary)
{
    const auto &m = resnet50();
    EXPECT_DOUBLE_EQ(tunerIngestSecondsPerImage(
                         teslaV100(), m, m.classifierStart(), 128),
                     0.0);
    EXPECT_GT(tunerIngestSecondsPerImage(teslaV100(), m, 0, 128), 0.0);
}

TEST(Throughput, TunerIngestShrinksWithDeeperCut)
{
    const auto &m = resnext101();
    double prev = 1e9;
    for (size_t cut = 0; cut <= m.classifierStart(); ++cut) {
        double t = tunerIngestSecondsPerImage(teslaV100(), m, cut, 128);
        EXPECT_LE(t, prev);
        prev = t;
    }
}

TEST(Throughput, TunerEpochDominatedByOverhead)
{
    // Classifier GEMMs are tiny; the step overhead dominates, which is
    // what eventually makes the Tuner the pipeline bottleneck.
    double t = tunerEpochSecondsPerImage(teslaV100(), resnet50(), 512);
    EXPECT_GT(t, kTrainStepOverheadS / batchEfficiency(512) * 0.9);
    EXPECT_LT(t, kTrainStepOverheadS / batchEfficiency(512) * 1.5);
}

TEST(Throughput, TrainStepCostsMoreThanFe)
{
    const auto &m = resnet50();
    double fe = feSecondsPerImage(teslaT4(), m, m.numBlocks(), 512);
    double step = trainSecondsPerImage(teslaT4(), m, 0, 512);
    EXPECT_GT(step, fe);
}

TEST(Memory, GrowsWithBatch)
{
    double b1 = gpuMemoryNeededGiB(vitB16(), 1);
    double b512 = gpuMemoryNeededGiB(vitB16(), 512);
    EXPECT_GT(b512, b1);
}

TEST(Memory, VitOomAt512OnT4)
{
    // Fig. 19: ViT hits OOM at large batch sizes on the 16 GiB T4.
    EXPECT_TRUE(fitsInMemory(teslaT4(), vitB16(), 128));
    EXPECT_TRUE(fitsInMemory(teslaT4(), vitB16(), 256));
    EXPECT_FALSE(fitsInMemory(teslaT4(), vitB16(), 512));
}

TEST(Memory, SmallModelsAlwaysFit)
{
    EXPECT_TRUE(fitsInMemory(teslaT4(), resnet50(), 512));
    EXPECT_TRUE(fitsInMemory(teslaT4(), shufflenetV2(), 512));
    EXPECT_TRUE(fitsInMemory(teslaT4(), inceptionV3(), 512));
}

TEST(Throughput, UnknownModelThrows)
{
    ndp::models::ModelSpec fake(
        "Fake", 224, 0.6,
        {{"a", 1.0, 1.0, 1.0, true, false},
         {"fc", 0.01, 0.01, 0.5, true, true}},
        4.0);
    EXPECT_THROW(t4AnchorIps(fake), std::out_of_range);
}

class BatchSweep : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep,
                         ::testing::Values(1, 8, 32, 128, 256, 512));

TEST_P(BatchSweep, IpsPositiveAndBoundedByPeak)
{
    int batch = GetParam();
    for (const ModelSpec *m : allModels()) {
        double ips = deviceIps(teslaT4(), *m, batch);
        EXPECT_GT(ips, 0.0) << m->name();
        double peak = t4AnchorIps(*m) / batchEfficiency(128) *
                      (1.0 / (128.0 / (128.0 + kBatchHalfSat)));
        EXPECT_LE(ips, peak * 1.3) << m->name();
    }
}
