/**
 * @file
 * Simulation-facing device components.
 *
 * Each component wraps a counted sim::Resource plus a service-time model
 * and tracks utilization so that power/energy can be derived after a run.
 * All byte quantities are raw bytes; all rates use SI (1 MB = 1e6 bytes,
 * 1 Gbps = 1e9 bits/s), matching how the paper quotes bandwidths.
 */

#pragma once

#include <cstdint>

#include "hw/specs.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace ndp::hw {

// The half-duplex Link that used to live here is gone: all inter-node
// transfers now cross net::NetFabric (src/net/fabric.h), which models
// duplex NICs with max-min fair sharing instead of FIFO serialization.

/** A storage volume with FIFO request service. */
class Disk
{
  public:
    Disk(sim::Simulator &s, const DiskSpec &d);

    sim::Task read(double bytes);
    sim::Task write(double bytes);

    double bytesRead() const { return totalRead; }
    double bytesWritten() const { return totalWritten; }
    double utilization() const { return port.utilization(); }

    double
    readServiceTime(double bytes) const
    {
        return spec.streamReadSeconds(bytes);
    }

  private:
    sim::Simulator &sim;
    DiskSpec spec;
    sim::Resource port;
    double totalRead = 0.0;
    double totalWritten = 0.0;
};

/** An accelerator executing kernels serially (one stream). */
class GpuExec
{
  public:
    GpuExec(sim::Simulator &s, const GpuSpec &g, int n_gpus = 1);

    /** Occupy one GPU for @p seconds of kernel time. */
    sim::Task compute(double seconds);

    const GpuSpec &gpu() const { return spec; }
    int count() const { return nGpus; }
    double utilization() const { return slots.utilization(); }
    double busySeconds() const;

  private:
    sim::Simulator &sim;
    GpuSpec spec;
    int nGpus;
    sim::Resource slots;
};

/** A pool of CPU cores. */
class CpuPool
{
  public:
    CpuPool(sim::Simulator &s, int cores);

    /** Hold @p n cores for @p seconds (e.g. decompress, preprocess). */
    sim::Task run(int n, double seconds);

    int cores() const { return pool.capacity(); }
    double utilization() const { return pool.utilization(); }

    sim::Resource &resource() { return pool; }

  private:
    sim::Simulator &sim;
    sim::Resource pool;
};

} // namespace ndp::hw
