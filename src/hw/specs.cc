#include "hw/specs.h"

namespace ndp::hw {

const GpuSpec &
teslaT4()
{
    // 65 TFLOPS fp16 tensor, 16 GiB, 70 W TDP.
    static const GpuSpec spec{"Tesla T4", 65.0, 16.0, 9.0, 68.0};
    return spec;
}

const GpuSpec &
teslaV100()
{
    // 125 TFLOPS tensor, 16 GiB, 300 W TDP (SXM2).
    static const GpuSpec spec{"Tesla V100", 125.0, 16.0, 38.0, 285.0};
    return spec;
}

const GpuSpec &
neuronCoreV1()
{
    // Inferentia v1, 4 NeuronCores per chip; inf1.2xlarge exposes one
    // chip. Throughput relative to T4 calibrated so that Fig. 20's
    // match points (11-16 stores for inference, 8-13 for fine-tuning)
    // hold. Power is an estimate, as in the paper ([52]).
    static const GpuSpec spec{"NeuronCoreV1", 15.0, 8.0, 2.0, 10.0};
    return spec;
}

const DiskSpec &
st1Raid()
{
    // 16x HDD RAID-5 array behind an st1-style EBS volume: ~800 MB/s
    // streaming reads (the paper's per-store InceptionV3 rate implies
    // reads never cap the NPE pipeline), ~0.2 ms amortized positioning
    // per request batch. Spindles live in the shared EBS fleet, so
    // only the attachment/controller power is charged to the server.
    static const DiskSpec spec{"st1-16xHDD", 800.0, 500.0, 2.0e-4, 12.0};
    return spec;
}

const DiskSpec &
localNvme()
{
    static const DiskSpec spec{"local-nvme", 3200.0, 1800.0, 1.0e-5, 9.0};
    return spec;
}

ServerSpec
g4dn4xlarge(bool gpu_enabled)
{
    ServerSpec s;
    s.name = gpu_enabled ? "g4dn.4xlarge" : "g4dn.4xlarge(noGPU)";
    s.cpu = CpuSpec{16, 2.5, 1.2, 5.5};
    if (gpu_enabled) {
        s.gpu = teslaT4();
        s.nGpus = 1;
    }
    s.disk = st1Raid();
    s.nic = NicSpec{10.0, 2.0e-5};
    s.otherW = 62.0;
    s.hourlyUsd = 1.204;
    return s;
}

ServerSpec
p32xlarge()
{
    ServerSpec s;
    s.name = "p3.2xlarge";
    s.cpu = CpuSpec{8, 2.7, 1.2, 6.0};
    s.gpu = teslaV100();
    s.nGpus = 1;
    s.disk = localNvme();
    s.nic = NicSpec{10.0, 2.0e-5};
    s.otherW = 78.0;
    s.hourlyUsd = 3.06;
    return s;
}

ServerSpec
p38xlarge(int gpus_used)
{
    ServerSpec s;
    s.name = "p3.8xlarge";
    s.cpu = CpuSpec{32, 2.7, 1.2, 6.0};
    s.gpu = teslaV100();
    s.nGpus = gpus_used;
    s.disk = localNvme();
    s.nic = NicSpec{10.0, 2.0e-5};
    s.otherW = 155.0;
    s.hourlyUsd = 12.24;
    return s;
}

ServerSpec
inf12xlarge()
{
    ServerSpec s;
    s.name = "inf1.2xlarge";
    s.cpu = CpuSpec{8, 2.5, 1.2, 5.5};
    s.gpu = neuronCoreV1();
    s.nGpus = 1;
    s.disk = st1Raid();
    s.nic = NicSpec{10.0, 2.0e-5};
    s.otherW = 30.0;
    s.hourlyUsd = 0.362;
    return s;
}

} // namespace ndp::hw
