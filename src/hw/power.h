/**
 * @file
 * Power and energy accounting.
 *
 * Power is computed analytically from component utilizations:
 *   P = idle + util * (active - idle)
 * which matches how the paper derives its IPS/W and IPS/kJ numbers
 * (gpustat / powerstat averages over a run). Disk spindle power and
 * chassis power are constant while a server is on.
 */

#pragma once

#include <string>
#include <vector>

#include "hw/devices.h"
#include "hw/specs.h"

namespace ndp::hw {

/** Average power of one server, split the way Fig. 14 plots it. */
struct PowerBreakdown
{
    double gpuW = 0.0;
    double cpuW = 0.0;
    /** Chassis + disk spindles ("Others" in Fig. 14). */
    double otherW = 0.0;

    double totalW() const { return gpuW + cpuW + otherW; }

    PowerBreakdown &
    operator+=(const PowerBreakdown &o)
    {
        gpuW += o.gpuW;
        cpuW += o.cpuW;
        otherW += o.otherW;
        return *this;
    }
};

/**
 * Average power of a server given component utilizations in [0, 1].
 *
 * @param spec     the server
 * @param gpu_util utilization across all its accelerators
 * @param cpu_util utilization across all vCPUs
 */
PowerBreakdown serverPower(const ServerSpec &spec, double gpu_util,
                           double cpu_util);

/** Energy in joules for a power level held over @p seconds. */
inline double
energyJ(const PowerBreakdown &p, double seconds)
{
    return p.totalW() * seconds;
}

/** A named per-server power sample; used to assemble cluster totals. */
struct ServerPowerSample
{
    std::string server;
    PowerBreakdown power;
};

/** Sum of the samples' total watts. */
double clusterWatts(const std::vector<ServerPowerSample> &samples);

/**
 * Live power gauge for one server: evaluates the analytic power model
 * against the stations' *current* cumulative utilizations, so the obs
 * layer can emit a power timeseries (`power.w`) while a run is in
 * flight. Stations are optional — a store with no CPU stage passes
 * null and contributes idle CPU power.
 */
struct PowerProbe
{
    const ServerSpec *spec = nullptr;
    const GpuExec *gpu = nullptr;
    const CpuPool *cpu = nullptr;

    double
    watts() const
    {
        return serverPower(*spec, gpu ? gpu->utilization() : 0.0,
                           cpu ? cpu->utilization() : 0.0)
            .totalW();
    }
};

} // namespace ndp::hw
