/**
 * @file
 * Hardware specification records and the instance catalog.
 *
 * The catalog mirrors the EC2 instance types used in the NDPipe paper
 * (§6.1): g4dn.4xlarge PipeStores (Tesla T4 + st1 16xHDD RAID),
 * p3.2xlarge Tuner (one V100), p3.8xlarge SRV host (two of its four
 * V100s used), and inf1.2xlarge (AWS Inferentia / NeuronCoreV1).
 * Power figures follow public TDPs; where the paper had to estimate
 * (NeuronCoreV1), so do we, and the value is documented here.
 */

#pragma once

#include <optional>
#include <string>

namespace ndp::hw {

/** Accelerator (GPU or inference ASIC) specification. */
struct GpuSpec
{
    std::string name;
    /** Peak mixed-precision throughput, TFLOP/s (fp16/tensor). */
    double peakTflops;
    /** Device memory in GiB; bounds batch size (Fig. 19 ViT OOM). */
    double memGib;
    double idleW;
    double activeW;
};

/** Host CPU specification (vCPUs as exposed by the instance). */
struct CpuSpec
{
    int vcpus;
    double ghz;
    double idleWPerCore;
    double activeWPerCore;
};

/** Storage volume specification. */
struct DiskSpec
{
    std::string name;
    double readMBps;
    double writeMBps;
    /** Per-request positioning overhead, seconds (amortized). */
    double seekS;
    /** Constant spindle/controller power (always-on). */
    double watts;

    /** Seconds to stream-read @p bytes (one seek + sequential scan).
     *  The single source of truth for disk-read rate math; planners
     *  and stage models call this instead of dividing by readMBps. */
    double
    streamReadSeconds(double bytes) const
    {
        return seekS + bytes / (readMBps * 1e6);
    }

    /** Seconds to stream-write @p bytes (one seek + sequential scan). */
    double
    streamWriteSeconds(double bytes) const
    {
        return seekS + bytes / (writeMBps * 1e6);
    }
};

/** Network interface specification. */
struct NicSpec
{
    double gbps;
    /** One-way propagation + protocol latency, seconds. */
    double latencyS;

    /** Seconds to serialize @p bytes at line rate (no latency, no
     *  sharing). Contended transfers go through net::NetFabric; this
     *  is the uncontended spec-sheet number. */
    double
    wireSeconds(double bytes) const
    {
        return bytes * 8.0 / (gbps * 1e9);
    }
};

/** A full server (one EC2 instance). */
struct ServerSpec
{
    std::string name;
    CpuSpec cpu;
    /** Accelerator, if present and enabled. */
    std::optional<GpuSpec> gpu;
    int nGpus = 0;
    DiskSpec disk;
    NicSpec nic;
    /** Chassis power: PSU losses, SoC, fans, DRAM refresh. */
    double otherW = 0.0;
    /** On-demand hourly price in USD (us-east-1, 2023). */
    double hourlyUsd = 0.0;

    bool hasGpu() const { return gpu.has_value() && nGpus > 0; }
};

/** @name Accelerator catalog
 * @{
 */
const GpuSpec &teslaT4();
const GpuSpec &teslaV100();
const GpuSpec &neuronCoreV1();
/** @} */

/** @name Volume catalog
 * @{
 */
/** st1 throughput-optimized HDD volume backed by a 16-disk RAID-5. */
const DiskSpec &st1Raid();
/** Local NVMe (used by the Ideal configuration in §3.4). */
const DiskSpec &localNvme();
/** @} */

/** @name Instance catalog
 * @{
 */
/** PipeStore / SRV storage server. @p gpu_enabled disables the T4. */
ServerSpec g4dn4xlarge(bool gpu_enabled);
/** Tuner: one V100. */
ServerSpec p32xlarge();
/** SRV host: the paper uses two of the four V100s. */
ServerSpec p38xlarge(int gpus_used = 2);
/** Inferentia PipeStore (NDPipe-Inf1). */
ServerSpec inf12xlarge();
/** @} */

} // namespace ndp::hw
