#include "hw/power.h"

#include <algorithm>

namespace ndp::hw {

namespace {

double
clamp01(double x)
{
    return std::clamp(x, 0.0, 1.0);
}

} // namespace

PowerBreakdown
serverPower(const ServerSpec &spec, double gpu_util, double cpu_util)
{
    PowerBreakdown p;
    gpu_util = clamp01(gpu_util);
    cpu_util = clamp01(cpu_util);

    if (spec.hasGpu()) {
        const GpuSpec &g = *spec.gpu;
        p.gpuW = spec.nGpus *
                 (g.idleW + gpu_util * (g.activeW - g.idleW));
    }

    const CpuSpec &c = spec.cpu;
    double per_core =
        c.idleWPerCore + cpu_util * (c.activeWPerCore - c.idleWPerCore);
    p.cpuW = c.vcpus * per_core;

    p.otherW = spec.otherW + spec.disk.watts;
    return p;
}

double
clusterWatts(const std::vector<ServerPowerSample> &samples)
{
    double w = 0.0;
    for (const auto &s : samples)
        w += s.power.totalW();
    return w;
}

} // namespace ndp::hw
