#include "hw/devices.h"

namespace ndp::hw {

Disk::Disk(sim::Simulator &s, const DiskSpec &d)
    : sim(s), spec(d), port(s, 1)
{}

sim::Task
Disk::read(double bytes)
{
    co_await port.acquire();
    co_await sim.delay(readServiceTime(bytes));
    port.release();
    totalRead += bytes;
}

sim::Task
Disk::write(double bytes)
{
    co_await port.acquire();
    co_await sim.delay(spec.streamWriteSeconds(bytes));
    port.release();
    totalWritten += bytes;
}

GpuExec::GpuExec(sim::Simulator &s, const GpuSpec &g, int n_gpus)
    : sim(s), spec(g), nGpus(n_gpus), slots(s, n_gpus)
{}

sim::Task
GpuExec::compute(double seconds)
{
    co_await slots.acquire();
    co_await sim.delay(seconds);
    slots.release();
}

double
GpuExec::busySeconds() const
{
    return slots.utilization() * sim.now() * nGpus;
}

CpuPool::CpuPool(sim::Simulator &s, int cores) : sim(s), pool(s, cores) {}

sim::Task
CpuPool::run(int n, double seconds)
{
    co_await pool.acquire(n);
    co_await sim.delay(seconds);
    pool.release(n);
}

} // namespace ndp::hw
