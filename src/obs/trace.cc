#include "obs/trace.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/monitor.h"

namespace ndp::obs {

namespace {

/** The session-installed tracer (single-threaded simulator — a plain
 *  pointer, no TLS needed). */
Tracer *g_current = nullptr;

/** Fixed-format helpers so serialization is byte-stable across runs.
 *  Timestamps print as microseconds with nanosecond resolution; arg
 *  values round-trip exactly via %.17g. */
void putMicros(std::ostream &os, double seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    os << buf;
}

void putNumber(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void putString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c; break;
        }
    }
    os << '"';
}

void putArgs(std::ostream &os, const Arg *args, int n)
{
    os << "\"args\":{";
    for (int i = 0; i < n; ++i) {
        if (i)
            os << ',';
        os << '"' << args[i].key << "\":";
        putNumber(os, args[i].val);
    }
    os << '}';
}

} // namespace

const char *catName(Cat c)
{
    switch (c) {
    case Cat::Disk: return "disk";
    case Cat::Cpu: return "cpu";
    case Cat::Gpu: return "gpu";
    case Cat::Wire: return "wire";
    case Cat::Tuner: return "tuner";
    case Cat::Sync: return "sync";
    case Cat::Stall: return "stall";
    case Cat::Flow: return "flow";
    case Cat::Fault: return "fault";
    case Cat::Service: return "service";
    case Cat::Mark: return "mark";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// MetricsRegistry

int MetricsRegistry::addGauge(const std::string &node,
                              const std::string &name, GaugeFn fn)
{
    Gauge g;
    g.id = nextId_++;
    g.counter = tracer_.counterTrack(node, name);
    g.fn = std::move(fn);
    g.live = true;
    gauges_.push_back(std::move(g));
    return gauges_.back().id;
}

void MetricsRegistry::removeGauge(int id)
{
    // Dead gauges stay in place (ids stable, order deterministic);
    // their callables are released so captured references can't
    // dangle into destroyed pipelines.
    for (auto &g : gauges_)
        if (g.id == id && g.live) {
            g.live = false;
            g.fn = nullptr;
            return;
        }
}

void MetricsRegistry::count(const std::string &node,
                            const std::string &name, double now_s,
                            double value)
{
    tracer_.counterSampleRaw(tracer_.counterTrack(node, name), now_s,
                             value);
}

void MetricsRegistry::maybeSample(double now_s)
{
    if (now_s - lastSampleS_ < periodS_)
        return;
    lastSampleS_ = now_s;
    HealthMonitor *m = HealthMonitor::current();
    for (auto &g : gauges_)
        if (g.live) {
            const double v = g.fn();
            tracer_.counterSampleRaw(g.counter, now_s, v);
            // The monitor subscribes to the sampled timeseries: same
            // throttle, same values, read-only forwarding — a null
            // monitor costs one pointer load per sampling round.
            if (m != nullptr) {
                const Tracer::Counter &c =
                    tracer_.counters_[static_cast<size_t>(g.counter)];
                m->onGaugeSample(c.node, c.name, now_s, v);
            }
        }
}

// ---------------------------------------------------------------------------
// Tracer

int Tracer::internNode(const std::string &node)
{
    for (size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i] == node)
            return static_cast<int>(i);
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
}

int Tracer::track(const std::string &node, const std::string &station)
{
    for (size_t i = 0; i < tracks_.size(); ++i)
        if (tracks_[i].node == node && tracks_[i].station == station)
            return static_cast<int>(i);
    Track t;
    t.node = node;
    t.station = station;
    t.pid = internNode(node) + 1;
    int tid = 1;
    for (const auto &other : tracks_)
        if (other.pid == t.pid)
            ++tid;
    t.tid = tid;
    tracks_.push_back(std::move(t));
    return static_cast<int>(tracks_.size()) - 1;
}

int Tracer::counterTrack(const std::string &node,
                         const std::string &name)
{
    for (size_t i = 0; i < counters_.size(); ++i)
        if (counters_[i].node == node && counters_[i].name == name)
            return static_cast<int>(i);
    Counter c;
    c.node = node;
    c.name = name;
    c.pid = internNode(node) + 1;
    counters_.push_back(std::move(c));
    return static_cast<int>(counters_.size()) - 1;
}

void Tracer::push(const Event &e)
{
    events_.push_back(e);
    metrics_.maybeSample(e.tsS);
}

void Tracer::counterSampleRaw(int counter, double now_s, double value)
{
    Event e;
    e.ph = 'C';
    e.trk = counter;
    e.tsS = now_s;
    e.durS = value;
    events_.push_back(e); // not push(): must not re-enter sampling
}

void Tracer::begin(int trk, Cat cat, const char *name, double now_s,
                   std::initializer_list<Arg> args)
{
    OpenSpan s;
    s.trk = trk;
    s.cat = cat;
    s.name = name;
    s.t0 = now_s;
    for (const Arg &a : args) {
        assert(s.nArgs < 3);
        s.args[s.nArgs++] = a;
    }
    open_.push_back(s);
}

void Tracer::end(int trk, double now_s)
{
    for (size_t i = open_.size(); i-- > 0;) {
        if (open_[i].trk != trk)
            continue;
        const OpenSpan &s = open_[i];
        Event e;
        e.ph = 'X';
        e.trk = s.trk;
        e.cat = s.cat;
        e.name = s.name;
        e.tsS = s.t0;
        e.durS = now_s - s.t0;
        e.nArgs = s.nArgs;
        for (int a = 0; a < s.nArgs; ++a)
            e.args[a] = s.args[a];
        open_.erase(open_.begin() + static_cast<long>(i));
        push(e);
        return;
    }
    assert(false && "end() without a matching open span on this track");
}

void Tracer::complete(int trk, Cat cat, const char *name, double t0,
                      double t1, std::initializer_list<Arg> args)
{
    Event e;
    e.ph = 'X';
    e.trk = trk;
    e.cat = cat;
    e.name = name;
    e.tsS = t0;
    e.durS = t1 - t0;
    for (const Arg &a : args) {
        assert(e.nArgs < 3);
        e.args[e.nArgs++] = a;
    }
    push(e);
}

void Tracer::instant(int trk, Cat cat, const char *name, double now_s,
                     std::initializer_list<Arg> args)
{
    Event e;
    e.ph = 'i';
    e.trk = trk;
    e.cat = cat;
    e.name = name;
    e.tsS = now_s;
    for (const Arg &a : args) {
        assert(e.nArgs < 3);
        e.args[e.nArgs++] = a;
    }
    push(e);
}

uint64_t Tracer::asyncBegin(int trk, Cat cat, const char *name,
                            double now_s,
                            std::initializer_list<Arg> args)
{
    Event e;
    e.ph = 'b';
    e.trk = trk;
    e.cat = cat;
    e.name = name;
    e.tsS = now_s;
    e.id = nextAsyncId_++;
    for (const Arg &a : args) {
        assert(e.nArgs < 3);
        e.args[e.nArgs++] = a;
    }
    push(e);
    return e.id;
}

void Tracer::asyncInstant(uint64_t id, int trk, Cat cat,
                          const char *name, double now_s,
                          std::initializer_list<Arg> args)
{
    Event e;
    e.ph = 'n';
    e.trk = trk;
    e.cat = cat;
    e.name = name;
    e.tsS = now_s;
    e.id = id;
    for (const Arg &a : args) {
        assert(e.nArgs < 3);
        e.args[e.nArgs++] = a;
    }
    push(e);
}

void Tracer::asyncEnd(uint64_t id, int trk, Cat cat, const char *name,
                      double now_s, std::initializer_list<Arg> args)
{
    Event e;
    e.ph = 'e';
    e.trk = trk;
    e.cat = cat;
    e.name = name;
    e.tsS = now_s;
    e.id = id;
    for (const Arg &a : args) {
        assert(e.nArgs < 3);
        e.args[e.nArgs++] = a;
    }
    push(e);
}

void Tracer::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    for (size_t i = 0; i < nodes_.size(); ++i) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
           << (i + 1) << ",\"args\":{\"name\":";
        putString(os, nodes_[i]);
        os << "}}";
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":"
           << (i + 1) << ",\"args\":{\"sort_index\":" << (i + 1)
           << "}}";
    }
    for (const auto &t : tracks_) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << t.pid
           << ",\"tid\":" << t.tid << ",\"args\":{\"name\":";
        putString(os, t.station);
        os << "}}";
    }

    for (const Event &e : events_) {
        sep();
        if (e.ph == 'C') {
            const Counter &c = counters_[static_cast<size_t>(e.trk)];
            os << "{\"ph\":\"C\",\"name\":";
            putString(os, c.name);
            os << ",\"pid\":" << c.pid << ",\"tid\":0,\"ts\":";
            putMicros(os, e.tsS);
            os << ",\"args\":{\"value\":";
            putNumber(os, e.durS);
            os << "}}";
            continue;
        }
        const Track &t = tracks_[static_cast<size_t>(e.trk)];
        os << "{\"ph\":\"" << e.ph << "\",\"cat\":\"" << catName(e.cat)
           << "\",\"name\":\"" << e.name << "\",\"pid\":" << t.pid
           << ",\"tid\":" << t.tid << ",\"ts\":";
        putMicros(os, e.tsS);
        if (e.ph == 'X') {
            os << ",\"dur\":";
            putMicros(os, e.durS);
        }
        if (e.ph == 'i')
            os << ",\"s\":\"t\"";
        if (e.ph == 'b' || e.ph == 'n' || e.ph == 'e')
            os << ",\"id\":" << e.id;
        if (e.nArgs > 0) {
            os << ',';
            putArgs(os, e.args, e.nArgs);
        }
        os << '}';
    }
    os << "]}\n";
}

std::string Tracer::json() const
{
    std::ostringstream ss;
    writeJson(ss);
    return ss.str();
}

Tracer *Tracer::current() { return g_current; }

// ---------------------------------------------------------------------------
// TraceSession

TraceSession::TraceSession(std::string out_path)
    : tracer_(std::make_unique<Tracer>()), path_(std::move(out_path))
{
    assert(g_current == nullptr && "nested TraceSession");
    g_current = tracer_.get();
}

TraceSession::~TraceSession()
{
    if (!path_.empty()) {
        std::ofstream f(path_);
        tracer_->writeJson(f);
    }
    if (g_current == tracer_.get())
        g_current = nullptr;
}

std::unique_ptr<TraceSession> TraceSession::fromEnv()
{
    const char *on = std::getenv("NDP_TRACE");
    if (on == nullptr || std::string(on) == "0")
        return nullptr;
    const char *file = std::getenv("NDP_TRACE_FILE");
    return std::make_unique<TraceSession>(
        file != nullptr ? file : "ndp_trace.json");
}

} // namespace ndp::obs
