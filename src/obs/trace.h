/**
 * @file
 * Deterministic, sim-time-native tracing and metrics (the `obs` layer).
 *
 * A Tracer records what the simulated cluster did — stage batches,
 * network flows, fault actions, counter timeseries — keyed to
 * sim::Simulator::now(), and exports Chrome/Perfetto trace-event JSON
 * with one process per node ("store3", "host", "tuner", "net") and one
 * thread per station ("disk", "cpu", "gpu", "wire", ...).
 *
 * Determinism rules (mirroring sim/fault.h's zero-cost contract):
 *  - A null Tracer pointer is a no-op everywhere: hooks neither
 *    allocate nor await, so an untraced run's event sequence is
 *    byte-identical to one where the obs layer does not exist.
 *  - Recording is *passive*: it only reads now() and appends to
 *    in-memory buffers. It never schedules events, touches channels,
 *    or draws randomness — so enabling tracing cannot change results,
 *    and two traced same-seed runs serialize byte-identical JSON.
 *  - Gauge sampling piggybacks on record sites (throttled by sim-time
 *    period) instead of a poller coroutine, which would extend the
 *    simulation's end time.
 *
 * Span discipline: spans are opened and closed ONLY through the RAII
 * SpanGuard / AsyncSpanGuard (enforced by the `unbalanced-span`
 * ndp-lint rule); the begin()/end() primitives are for this file.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace ndp::obs {

/** Span/event category; the attribution buckets of tools/ndptrace. */
enum class Cat
{
    Disk,
    Cpu,
    Gpu,
    Wire,
    Tuner,
    Sync,
    Stall,
    Flow,
    Fault,
    Service,
    Mark,
};

const char *catName(Cat c);

/** One key/value argument attached to an event (keys are literals). */
struct Arg
{
    const char *key;
    double val;
};

class Tracer;

/**
 * Counters and sampled gauges emitted as a timeseries alongside the
 * trace (Chrome "C" counter events, one counter track per
 * (node, name)). Gauges are polled lazily from Tracer record sites at
 * most once per periodS() of sim time; registration is run-scoped —
 * owners must remove their gauges before the sampled objects die
 * (see GaugeSet and Pipeline's destructor).
 */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(Tracer &t) : tracer_(t) {}

    using GaugeFn = std::function<double()>;

    /** Register a sampled gauge; returns an id for removeGauge(). */
    int addGauge(const std::string &node, const std::string &name,
                 GaugeFn fn);
    void removeGauge(int id);

    /** Emit one counter sample immediately (monotonic counters). */
    void count(const std::string &node, const std::string &name,
               double now_s, double value);

    /** Sample all live gauges if >= periodS() elapsed since the last
     *  sample. Called from Tracer record sites; never schedules. */
    void maybeSample(double now_s);

    void setPeriodS(double s) { periodS_ = s; }
    double periodS() const { return periodS_; }

  private:
    struct Gauge
    {
        int id = 0;
        int counter = 0;
        GaugeFn fn;
        bool live = false;
    };

    Tracer &tracer_;
    std::vector<Gauge> gauges_;
    int nextId_ = 0;
    double periodS_ = 0.5;
    double lastSampleS_ = -1.0;
};

/**
 * The trace recorder. One Tracer per TraceSession; dataflow entry
 * points pick it up via Tracer::current() (null unless a session is
 * active) and thread it through their pipelines and fabrics.
 */
class Tracer
{
  public:
    Tracer() : metrics_(*this) {}

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Intern the (node, station) pair into a track id. */
    int track(const std::string &node, const std::string &station);

    /** Intern a (node, counter-name) pair (used by MetricsRegistry). */
    int counterTrack(const std::string &node, const std::string &name);

    /** @name Span primitives — RAII-only outside src/obs
     * Open a duration span on @p trk / close the innermost open one.
     * Call these through SpanGuard, never bare (`unbalanced-span`
     * lint rule): a span opened without a guard leaks open when a
     * coroutine exits early, corrupting the track's nesting.
     * @{ */
    void begin(int trk, Cat cat, const char *name, double now_s,
               std::initializer_list<Arg> args = {});
    void end(int trk, double now_s);
    /** @} */

    /** Record a complete [t0, t1] span in one call. */
    void complete(int trk, Cat cat, const char *name, double t0,
                  double t1, std::initializer_list<Arg> args = {});

    /** Zero-duration marker. */
    void instant(int trk, Cat cat, const char *name, double now_s,
                 std::initializer_list<Arg> args = {});

    /** @name Async (nestable) events — cross-coroutine spans
     * Used for network flows (begin at arrival, rate-change notes,
     * end at drain) and online requests; the id ties the b/n/e
     * triplet together across tracks and coroutines.
     * @{ */
    uint64_t asyncBegin(int trk, Cat cat, const char *name,
                        double now_s,
                        std::initializer_list<Arg> args = {});
    void asyncInstant(uint64_t id, int trk, Cat cat, const char *name,
                      double now_s,
                      std::initializer_list<Arg> args = {});
    void asyncEnd(uint64_t id, int trk, Cat cat, const char *name,
                  double now_s, std::initializer_list<Arg> args = {});
    /** @} */

    MetricsRegistry &metrics() { return metrics_; }

    size_t eventCount() const { return events_.size(); }

    /** Serialize Chrome trace-event JSON (deterministic byte-wise). */
    void writeJson(std::ostream &os) const;
    std::string json() const;

    /** The session-installed tracer, or null when tracing is off. */
    static Tracer *current();

  private:
    friend class TraceSession;
    friend class MetricsRegistry;

    struct Track
    {
        std::string node;
        std::string station;
        int pid = 0;
        int tid = 0;
    };

    struct Counter
    {
        std::string node;
        std::string name;
        int pid = 0;
    };

    struct Event
    {
        char ph = 'X';
        /** Track index; counter index for ph == 'C'. */
        int trk = 0;
        Cat cat = Cat::Mark;
        const char *name = "";
        double tsS = 0.0;
        /** Duration for 'X'; counter value for 'C'. */
        double durS = 0.0;
        uint64_t id = 0;
        int nArgs = 0;
        Arg args[3] = {};
    };

    struct OpenSpan
    {
        int trk = 0;
        Cat cat = Cat::Mark;
        const char *name = "";
        double t0 = 0.0;
        int nArgs = 0;
        Arg args[3] = {};
    };

    int internNode(const std::string &node);
    void push(const Event &e);
    /** Counter emission that never re-enters gauge sampling. */
    void counterSampleRaw(int counter, double now_s, double value);

    std::vector<std::string> nodes_;
    std::vector<Track> tracks_;
    std::vector<Counter> counters_;
    std::vector<Event> events_;
    /** Open begin()/end() spans, innermost last (all tracks mixed:
     *  end() pops the last open span with a matching track). */
    std::vector<OpenSpan> open_;
    uint64_t nextAsyncId_ = 1;
    MetricsRegistry metrics_;
};

/**
 * RAII duration span: opens at construction (reading sim.now()) and
 * closes when the scope — including a coroutine frame — unwinds. A
 * default-constructed or null-tracer guard is inert.
 */
class SpanGuard
{
  public:
    SpanGuard() = default;

    SpanGuard(Tracer *t, const sim::Simulator &s, int trk, Cat cat,
              const char *name, std::initializer_list<Arg> args = {})
        : t_(t), s_(&s), trk_(trk)
    {
        if (t_)
            t_->begin(trk_, cat, name, s.now(), args);
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

    ~SpanGuard()
    {
        if (t_)
            t_->end(trk_, s_->now());
    }

  private:
    Tracer *t_ = nullptr;
    const sim::Simulator *s_ = nullptr;
    int trk_ = 0;
};

/** RAII async span (overlapping requests on one track). */
class AsyncSpanGuard
{
  public:
    AsyncSpanGuard() = default;

    AsyncSpanGuard(Tracer *t, const sim::Simulator &s, int trk, Cat cat,
                   const char *name,
                   std::initializer_list<Arg> args = {})
        : t_(t), s_(&s), trk_(trk), cat_(cat), name_(name)
    {
        if (t_)
            id_ = t_->asyncBegin(trk_, cat_, name_, s.now(), args);
    }

    AsyncSpanGuard(const AsyncSpanGuard &) = delete;
    AsyncSpanGuard &operator=(const AsyncSpanGuard &) = delete;

    ~AsyncSpanGuard()
    {
        if (t_)
            t_->asyncEnd(id_, trk_, cat_, name_, s_->now());
    }

  private:
    Tracer *t_ = nullptr;
    const sim::Simulator *s_ = nullptr;
    int trk_ = 0;
    Cat cat_ = Cat::Service;
    const char *name_ = "";
    uint64_t id_ = 0;
};

/**
 * Run-scoped gauge registration: entry points add station/power/link
 * gauges through this, and the destructor unregisters them before the
 * sampled devices go out of scope. Inert when the tracer is null.
 */
class GaugeSet
{
  public:
    explicit GaugeSet(Tracer *t) : t_(t) {}

    GaugeSet(const GaugeSet &) = delete;
    GaugeSet &operator=(const GaugeSet &) = delete;

    ~GaugeSet()
    {
        if (t_)
            for (int id : ids_)
                t_->metrics().removeGauge(id);
    }

    void
    add(const std::string &node, const std::string &name,
        MetricsRegistry::GaugeFn fn)
    {
        if (t_)
            ids_.push_back(
                t_->metrics().addGauge(node, name, std::move(fn)));
    }

  private:
    Tracer *t_ = nullptr;
    std::vector<int> ids_;
};

/**
 * Gauge adapter turning a monotonic counter into a per-second rate
 * between consecutive samples (shed-rate, goodput, retry-rate
 * gauges). Stateless for the sampled system: it only reads sim.now()
 * and the counter, so registering one keeps the obs layer's passive
 * contract. Copy it into GaugeSet::add as the GaugeFn.
 *
 * Units: the counter must be monotonic in arbitrary units (requests,
 * bytes, retries); each call returns counter-units per *simulated*
 * second averaged over the window since the previous call. The window
 * is not a RateProbe knob: it is however often the registry samples
 * the gauge — MetricsRegistry::periodS() of sim time between samples
 * (the first call and back-to-back samples return 0). lastWindowS()
 * exposes the realized window so consumers (obs::HealthMonitor
 * windows, tests) can agree with the probe instead of assuming one.
 */
class RateProbe
{
  public:
    RateProbe(const sim::Simulator &s,
              std::function<double()> counter)
        : sim_(&s), counter_(std::move(counter))
    {}

    double
    operator()()
    {
        const double now = sim_->now();
        const double c = counter_();
        const double dt = now - lastT_;
        const double rate = dt > 0.0 ? (c - lastC_) / dt : 0.0;
        lastT_ = now;
        lastC_ = c;
        lastWindowS_ = dt;
        return rate;
    }

    /** Sim seconds the most recent sample averaged over (0 before
     *  the second call; otherwise the registry's sampling gap). */
    double lastWindowS() const { return lastWindowS_; }

  private:
    const sim::Simulator *sim_;
    std::function<double()> counter_;
    double lastT_ = 0.0;
    double lastC_ = 0.0;
    double lastWindowS_ = 0.0;
};

/**
 * Per-job track grouping: a multi-job cluster run prefixes every node
 * name with the job's scope ("nightly-ft/store3", "serve/tuner"), so
 * the Perfetto UI groups one job's processes together and ndptrace's
 * per-node attribution becomes per-job attribution for free. An empty
 * scope (single-tenant dataflows) leaves node names untouched, so
 * every existing trace keeps its exact shape.
 */
inline std::string
scopedNode(const std::string &scope, const std::string &node)
{
    return scope.empty() ? node : scope + "/" + node;
}

/**
 * Installs a Tracer as Tracer::current() for its lifetime (no
 * nesting). If constructed with a path, the destructor writes the
 * trace JSON there. `fromEnv()` is the NDP_TRACE gate used by benches:
 * returns null (tracing off, zero cost) unless NDP_TRACE is set to a
 * non-"0" value; NDP_TRACE_FILE overrides the output path.
 */
class TraceSession
{
  public:
    explicit TraceSession(std::string out_path = "");
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    Tracer &tracer() { return *tracer_; }

    static std::unique_ptr<TraceSession> fromEnv();

  private:
    std::unique_ptr<Tracer> tracer_;
    std::string path_;
};

} // namespace ndp::obs
