/**
 * @file
 * Deterministic sim-time streaming health monitoring (the runtime
 * companion of trace.h's post-mortem recording).
 *
 * A HealthMonitor *watches* the signals the obs layer already records:
 * it subscribes to MetricsRegistry gauge samples, accepts push-style
 * counters from the dataflows (serve outcomes, shed decisions, queue
 * depths, geo-replication version lag), maintains sliding-window
 * aggregates over them — bucketed windowed rates, EWMAs, a two-phase
 * quantile sketch over LatencyHistogram shards — and evaluates a
 * declarative rule set on a sim-time cadence:
 *
 *  - SLO burn rate, multi-window (the error-budget alerting policy):
 *    burn = (bad/total over window) / (1 - objective); a fast window
 *    with a high threshold catches cliffs, a slow window with a low
 *    threshold catches slow leaks.
 *  - Straggler detection: one store's service-time EWMA vs the fleet
 *    median.
 *  - Queue/admission saturation: outstanding depth vs capacity.
 *  - Fabric link congestion: the ingress-utilization gauge.
 *  - Geo-replication staleness: version lag vs the staleness bound.
 *
 * Rule transitions emit typed HealthEvents that land in an in-memory
 * log, in Perfetto instant events (when a Tracer is active), and roll
 * up into per-scope HealthSummary blocks (alerts fired, error budget
 * consumed, time in violation). The monitor also implements
 * sim::FaultObserver, so every injected fault's detection latency is
 * visible as a HealthEvent alongside the FaultReport ledger.
 *
 * Determinism rules (the tracer's contract, verbatim):
 *  - A null HealthMonitor pointer is a no-op everywhere; hooks are
 *    guarded and perform no work when monitoring is off.
 *  - Observation and evaluation are *passive*: they read the caller's
 *    sim time and mutate monitor-private state. The monitor never
 *    schedules events, awaits, draws randomness, or touches channels,
 *    so a monitored run is bitwise identical to an unmonitored one on
 *    every pre-existing report field (the HealthSummary fields are
 *    additive: zero when monitoring is off).
 *  - Evaluation is throttled per scope by evalPeriodS of *sim time*
 *    and piggybacks on observation sites — there is no poller
 *    coroutine, which would extend the simulation's end time.
 *  - Scope and store maps are ordered (std::map), serialization uses
 *    the tracer's fixed-point formatting, so two monitored same-seed
 *    runs export byte-identical JSON (tools/ndpmon replays it).
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/stats.h"

namespace ndp::obs {

/**
 * Sliding-window event counter: a ring of sub-window buckets rotated
 * by sim time. sum()/rate() cover the most recent windowS() seconds
 * with bucket granularity (window/buckets). Pure arithmetic — safe
 * under the monitor's passive contract.
 */
class WindowedRate
{
  public:
    explicit WindowedRate(double window_s = 5.0, int buckets = 10)
        : bucketS_(window_s / buckets),
          buckets_(static_cast<size_t>(buckets), 0.0)
    {}

    void
    record(double now_s, double n = 1.0)
    {
        advance(now_s);
        buckets_[slot(cur_)] += n;
    }

    /** Events inside the window ending at @p now_s. */
    double
    sum(double now_s)
    {
        advance(now_s);
        double t = 0.0;
        for (double b : buckets_)
            t += b;
        return t;
    }

    /** Events per second over the window ending at @p now_s. */
    double rate(double now_s) { return sum(now_s) / windowS(); }

    double windowS() const
    {
        return bucketS_ * static_cast<double>(buckets_.size());
    }

  private:
    size_t
    slot(int64_t bucket) const
    {
        return static_cast<size_t>(bucket) % buckets_.size();
    }

    void
    advance(double now_s)
    {
        const auto b = static_cast<int64_t>(now_s / bucketS_);
        if (!started_) {
            started_ = true;
            cur_ = b;
            return;
        }
        if (b <= cur_)
            return; // sim time is monotonic; same bucket
        if (b - cur_ >= static_cast<int64_t>(buckets_.size())) {
            for (double &v : buckets_)
                v = 0.0;
            cur_ = b;
            return;
        }
        while (cur_ < b) {
            ++cur_;
            buckets_[slot(cur_)] = 0.0;
        }
    }

    double bucketS_;
    std::vector<double> buckets_;
    int64_t cur_ = 0;
    bool started_ = false;
};

/**
 * The SLO ledger's paired bad/total ring, shared by both burn-rate
 * windows: one ring of fast-granularity buckets spans the slow
 * window, fastSums() reads the newest fast-window's worth of
 * buckets and slowSums() reads them all. The hot observation path
 * therefore advances and updates a single ring (the monitor-overhead
 * budget in bench_micro_sim holds the hooks under 5% of the dispatch
 * loop); the wider per-read scan only runs on the eval cadence.
 */
class SloWindow
{
  public:
    SloWindow(double fast_window_s, double slow_window_s,
              int fast_buckets = 10)
        : bucketS_(fast_window_s / fast_buckets),
          invBucketS_(fast_buckets / fast_window_s),
          nFast_(static_cast<size_t>(fast_buckets))
    {
        const auto n = static_cast<size_t>(
            std::ceil(slow_window_s / bucketS_ - 1e-9));
        buckets_.assign(std::max(n, nFast_), Bucket{});
    }

    void
    record(double now_s, bool bad)
    {
        advance(now_s);
        Bucket &b = buckets_[slot(cur_)];
        b.total += 1.0;
        if (bad)
            b.bad += 1.0;
    }

    /** {bad, total} inside a window ending at @p now_s. */
    struct Sums
    {
        double bad = 0.0;
        double total = 0.0;
    };

    /** The fast window: the newest fast-window's worth of buckets. */
    Sums
    fastSums(double now_s)
    {
        advance(now_s);
        Sums t;
        for (int64_t b = cur_ - static_cast<int64_t>(nFast_) + 1;
             b <= cur_; ++b) {
            if (b < 0)
                continue; // before sim time zero
            const Bucket &v = buckets_[slot(b)];
            t.bad += v.bad;
            t.total += v.total;
        }
        return t;
    }

    /** The slow window: every bucket in the ring. */
    Sums
    slowSums(double now_s)
    {
        advance(now_s);
        Sums t;
        for (const Bucket &b : buckets_) {
            t.bad += b.bad;
            t.total += b.total;
        }
        return t;
    }

  private:
    struct Bucket
    {
        double total = 0.0;
        double bad = 0.0;
    };

    size_t
    slot(int64_t bucket) const
    {
        return static_cast<size_t>(bucket) % buckets_.size();
    }

    void
    advance(double now_s)
    {
        // Multiply by the precomputed inverse: one fewer division on
        // the per-observation path (consistent across runs, so the
        // bucket boundaries stay deterministic).
        const auto b = static_cast<int64_t>(now_s * invBucketS_);
        if (!started_) {
            started_ = true;
            cur_ = b;
            return;
        }
        if (b <= cur_)
            return; // sim time is monotonic; same bucket
        if (b - cur_ >= static_cast<int64_t>(buckets_.size())) {
            for (Bucket &v : buckets_)
                v = Bucket{};
            cur_ = b;
            return;
        }
        while (cur_ < b) {
            ++cur_;
            buckets_[slot(cur_)] = Bucket{};
        }
    }

    double bucketS_;
    double invBucketS_;
    size_t nFast_;
    std::vector<Bucket> buckets_;
    int64_t cur_ = 0;
    bool started_ = false;
};

/** Exponentially weighted moving average, per-sample alpha form:
 *  v <- alpha * x + (1 - alpha) * v (first sample seeds v). */
class Ewma
{
  public:
    explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

    void
    record(double x)
    {
        v_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * v_ : x;
        seeded_ = true;
    }

    double value() const { return v_; }
    bool empty() const { return !seeded_; }

  private:
    double alpha_;
    double v_ = 0.0;
    bool seeded_ = false;
};

/**
 * Sliding-window quantile sketch: two LatencyHistogram phases rotated
 * every windowS seconds; percentiles read the merged pair, so they
 * cover between one and two windows of the freshest samples (the
 * standard two-phase approximation — exact bucket math, no decay).
 */
class WindowedQuantile
{
  public:
    /** @p sub_bucket_bits tunes the underlying histograms'
     *  resolution/footprint tradeoff (LatencyHistogram's knob). */
    explicit WindowedQuantile(double window_s = 10.0,
                              int sub_bucket_bits = 7)
        : winS_(window_s), invWinS_(1.0 / window_s),
          bits_(sub_bucket_bits), cur_(1e-6, sub_bucket_bits),
          prev_(1e-6, sub_bucket_bits)
    {}

    void
    record(double now_s, double v_s)
    {
        roll(now_s);
        cur_.record(v_s);
    }

    double
    percentile(double p) const
    {
        ndp::LatencyHistogram m = cur_;
        m.merge(prev_);
        return m.count() > 0 ? m.percentile(p) : 0.0;
    }

    uint64_t count() const { return cur_.count() + prev_.count(); }

  private:
    void
    roll(double now_s)
    {
        if (!started_) {
            started_ = true;
            phase0S_ = now_s;
            return;
        }
        const double k = (now_s - phase0S_) * invWinS_;
        if (k >= 2.0) {
            cur_ = ndp::LatencyHistogram(1e-6, bits_);
            prev_ = ndp::LatencyHistogram(1e-6, bits_);
            phase0S_ += static_cast<double>(static_cast<int64_t>(k)) *
                        winS_;
        } else if (k >= 1.0) {
            prev_ = cur_;
            cur_ = ndp::LatencyHistogram(1e-6, bits_);
            phase0S_ += winS_;
        }
    }

    double winS_;
    double invWinS_;
    int bits_;
    double phase0S_ = 0.0;
    bool started_ = false;
    ndp::LatencyHistogram cur_;
    ndp::LatencyHistogram prev_;
};

/** The declarative rule set one monitor evaluates. */
enum class Rule
{
    SloBurnFast,
    SloBurnSlow,
    Straggler,
    QueueSaturation,
    LinkCongestion,
    GeoStaleness,
};

constexpr int kNumRules = 6;

const char *ruleName(Rule r);

/** Rule thresholds and windows (one config per monitor). */
struct MonitorConfig
{
    /** Per-scope rule-evaluation cadence, sim seconds. */
    double evalPeriodS = 0.25;

    /** @name SLO burn-rate alerting
     * objective is the goodput target (fraction of requests that must
     * land in deadline); burn = windowed bad fraction / (1-objective).
     * Fast window catches cliffs, slow window catches leaks — the
     * multi-window error-budget policy.
     * @{ */
    double sloObjective = 0.999;
    double fastWindowS = 5.0;
    double fastBurnThreshold = 14.4;
    double slowWindowS = 60.0;
    double slowBurnThreshold = 6.0;
    /** @} */

    /** Straggler: store service-time EWMA > factor * fleet median. */
    double stragglerFactor = 2.0;
    /** EWMA smoothing for per-store service times. */
    double serviceAlpha = 0.2;

    /** Saturation: outstanding depth >= fraction * capacity. */
    double saturationFraction = 0.9;

    /** Congestion: an ingress.util gauge sample >= this. */
    double congestionUtil = 0.95;

    /** Geo staleness: version lag >= fraction * staleness bound. */
    double stalenessFraction = 1.0;

    /** Window of the latency quantile sketch, sim seconds. */
    double quantileWindowS = 10.0;
    /** Sketch resolution (LatencyHistogram sub_bucket_bits): 5 =>
     *  ~3% relative quantile error and a footprint small enough to
     *  stay cache-resident on the per-outcome record path. */
    int quantileSubBucketBits = 5;
};

/** One typed monitor event (alert transition or fault lifecycle). */
struct HealthEvent
{
    enum class Kind
    {
        AlertRaised,
        AlertCleared,
        FaultDetected,
        FaultRecovered,
    };

    Kind kind = Kind::AlertRaised;
    /** Valid for Alert* events. */
    Rule rule = Rule::SloBurnFast;
    /** Valid for Fault* events. */
    sim::FaultKind fault = sim::FaultKind::StoreCrash;
    /** Job scope ("" = cluster-wide signals and faults). */
    std::string scope;
    /** Store index / site name / gauge behind the event ("" = none). */
    std::string detail;
    double tS = 0.0;
    /** Observed value at the transition (burn, ratio, latency...). */
    double value = 0.0;
    /** Threshold the value crossed (0 for fault events). */
    double threshold = 0.0;
};

const char *healthEventKindName(HealthEvent::Kind k);

/** Per-scope roll-up of what the monitor saw (lands in reports). */
struct HealthSummary
{
    uint64_t alertsFired = 0;
    uint64_t alertsCleared = 0;
    /** Subset of alertsFired from the two burn-rate rules (the count
     *  tools/ndpmon replays from the exported burn series). */
    uint64_t burnAlertsFired = 0;
    /** Cumulative SLO ledger: bad = shed, dropped, or past-deadline. */
    uint64_t badEvents = 0;
    uint64_t totalEvents = 0;
    /** bad / (total * (1 - objective)): 1.0 = budget exhausted. */
    double errorBudgetConsumed = 0.0;
    /** Sim seconds some alert was active (eval-cadence resolution). */
    double timeInViolationS = 0.0;
    /** Fault lifecycle (cluster scope only; see sim::FaultObserver). */
    uint64_t faultsDetected = 0;
    uint64_t faultsRecovered = 0;
    double meanTimeToDetectS = 0.0;
};

/**
 * The streaming monitor. One per MonitorSession; dataflow entry points
 * pick it up via HealthMonitor::current() (null unless a session is
 * active) and thread it through ports, exactly like obs::Tracer.
 */
class HealthMonitor : public sim::FaultObserver
{
    struct ScopeState; // defined in the private section below

  public:
    explicit HealthMonitor(MonitorConfig cfg = {});

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    const MonitorConfig &config() const { return cfg_; }

    /**
     * Opaque pre-resolved scope: dataflows that observe the same
     * scope on every request resolve it once at setup and hand the
     * handle to the hot hooks, skipping the per-observation scope
     * lookup entirely (std::map nodes are pointer-stable, so a
     * handle stays valid for the monitor's lifetime). A
     * default-constructed handle is only a placeholder — pass it to
     * no hook.
     */
    class ScopeHandle
    {
      public:
        ScopeHandle() = default;

      private:
        friend class HealthMonitor;
        ScopeState *st_ = nullptr;
    };

    /** Resolve (creating if new) a scope to a reusable handle. */
    ScopeHandle
    scopeHandle(const std::string &scope)
    {
        ScopeHandle h;
        h.st_ = &state(scope);
        return h;
    }

    /** @name Push-style observations (all passive)
     * The three serving-rate hooks are defined inline below the
     * class: they sit on the request hot path and the bench gate
     * holds them under 5% of the dispatch loop. Each comes in a
     * by-name flavor and a pre-resolved ScopeHandle flavor.
     * @{ */
    /** One finished request: feeds the SLO burn windows, the latency
     *  sketch, and the per-store straggler EWMA. */
    inline void onServeOutcome(const std::string &scope, int store,
                               double now_s, double latency_s,
                               bool in_deadline);
    inline void onServeOutcome(ScopeHandle h, int store, double now_s,
                               double latency_s, bool in_deadline);

    /** One shed / dropped request: a bad SLO event with no latency. */
    inline void onShed(const std::string &scope, double now_s);
    inline void onShed(ScopeHandle h, double now_s);

    /** Outstanding-requests snapshot against capacity (saturation). */
    inline void onQueueDepth(const std::string &scope, double now_s,
                             int depth, int capacity);
    inline void onQueueDepth(ScopeHandle h, double now_s, int depth,
                             int capacity);

    /** Geo-replication version lag vs the staleness bound. */
    void onGeoLag(const std::string &scope, const std::string &site,
                  double now_s, int lag, int staleness_bound);

    /** MetricsRegistry forwards every gauge sample here (the monitor
     *  "subscribes" to the sampled timeseries); ingress.util feeds
     *  the link-congestion rule. */
    void onGaugeSample(const std::string &node,
                       const std::string &name, double now_s,
                       double value);
    /** @} */

    /** @name sim::FaultObserver (the detection-latency feed)
     * @{ */
    void onFaultDetected(sim::FaultKind kind, int store,
                         double opened_s, double detected_s) override;
    void onFaultRecovered(sim::FaultKind kind, int store,
                          double opened_s,
                          double recovered_s) override;
    /** @} */

    const std::vector<HealthEvent> &events() const { return events_; }

    /** Roll-up for one scope ("" = cluster-wide); zeros if unseen. */
    HealthSummary summary(const std::string &scope) const;

    /** Roll-up across every scope. */
    HealthSummary totals() const;

    /** Scopes observed so far, in deterministic (sorted) order. */
    std::vector<std::string> scopes() const;

    /** Serialize the summaries + burn series + event log as JSON
     *  (deterministic byte-wise; tools/ndpmon's input). */
    void writeJson(std::ostream &os) const;
    std::string json() const;

    /** The session-installed monitor, or null when monitoring is off. */
    static HealthMonitor *current();

  private:
    friend class MonitorSession;

    /** One burn-series checkpoint (cumulative counters + windowed
     *  burn values at an eval instant — what ndpmon replays). */
    struct SeriesSample
    {
        double tS = 0.0;
        uint64_t bad = 0;
        uint64_t total = 0;
        double fastBurn = 0.0;
        double slowBurn = 0.0;
        /** Windowed p99 latency from the quantile sketch (0 until
         *  the scope records latencies). */
        double p99S = 0.0;
    };

    struct ScopeState
    {
        explicit ScopeState(const MonitorConfig &c)
            : slo(c.fastWindowS, c.slowWindowS),
              latency(c.quantileWindowS, c.quantileSubBucketBits)
        {}

        /** Hot per-observation scalars first, sharing a cache line
         *  (every hook touches some of these; the aggregates below
         *  are each their own working set). */
        uint64_t bad = 0;
        uint64_t total = 0;
        /** Latest queue-depth snapshot (the divide runs at eval). */
        int queueDepth = 0;
        int queueCap = 0;
        /** Precomputed lastEvalS + evalPeriodS: the hot-path cadence
         *  guard is one compare (far below -1 so the first
         *  observation always evaluates). */
        double nextEvalS = -1e300;

        SloWindow slo;
        WindowedQuantile latency;
        /** Per-store service-time EWMA, indexed by store id (ids are
         *  dense fleet indices, so the hot path is one bounds check
         *  and an array index; unseeded slots mean "never observed"
         *  and are skipped by the straggler rule). */
        std::vector<Ewma> storeServiceS;
        /** The scope's own name (events emitted at eval need it and
         *  ScopeHandle hooks don't carry the string). */
        std::string key;
        /** Latest per-site version-lag / staleness-bound ratios. */
        std::map<std::string, double> geoLagFrac;
        /** Latest ingress.util gauge values, by node. */
        std::map<std::string, double> linkUtil;

        bool alertActive[kNumRules] = {};
        uint64_t fired = 0;
        uint64_t cleared = 0;
        uint64_t burnFired = 0;
        double lastEvalS = -1.0;
        bool everEvaled = false;
        bool inViolation = false;
        double violationFromS = 0.0;
        double timeInViolationS = 0.0;
        uint64_t faultsDetected = 0;
        uint64_t faultsRecovered = 0;
        double ttdSumS = 0.0;
        std::vector<SeriesSample> series;
    };

    /** Per-scope state with a one-entry cache: serving hot paths
     *  observe one scope thousands of times in a row, so this
     *  usually resolves with a single string compare (std::map nodes
     *  are pointer-stable, so inserts never invalidate the cache). */
    ScopeState &
    state(const std::string &scope)
    {
        if (cachedState_ != nullptr && scope == cachedScope_)
            return *cachedState_;
        return stateSlow(scope);
    }

    ScopeState &stateSlow(const std::string &scope);

    /** Inline cadence guard for the hot observation path — a single
     *  compare against the precomputed next eval time; the rule
     *  evaluation (and the rarely-hit re-entrancy filter) is out of
     *  line. */
    void
    maybeEval(ScopeState &st, double now_s)
    {
        if (now_s < st.nextEvalS)
            return;
        evalScope(st, now_s);
    }

    void evalScope(ScopeState &st, double now_s);
    void setAlert(ScopeState &st, Rule r, bool active, double value,
                  double threshold, double now_s,
                  const std::string &detail);
    void emitInstant(const HealthEvent &e);

    MonitorConfig cfg_;
    std::map<std::string, ScopeState> scopes_;
    ScopeState *cachedState_ = nullptr;
    std::string cachedScope_;
    std::vector<HealthEvent> events_;
    /** Re-entrancy guard: a Perfetto instant emitted mid-eval routes
     *  back through gauge sampling into onGaugeSample. */
    bool inEval_ = false;
};

inline void
HealthMonitor::onServeOutcome(ScopeHandle h, int store, double now_s,
                              double latency_s, bool in_deadline)
{
    ScopeState &st = *h.st_;
    ++st.total;
    if (!in_deadline)
        ++st.bad;
    st.slo.record(now_s, !in_deadline);
    st.latency.record(now_s, latency_s);
    if (store >= 0) {
        if (static_cast<size_t>(store) >= st.storeServiceS.size())
            st.storeServiceS.resize(static_cast<size_t>(store) + 1,
                                    Ewma(cfg_.serviceAlpha));
        st.storeServiceS[static_cast<size_t>(store)].record(
            latency_s);
    }
    maybeEval(st, now_s);
}

inline void
HealthMonitor::onServeOutcome(const std::string &scope, int store,
                              double now_s, double latency_s,
                              bool in_deadline)
{
    onServeOutcome(scopeHandle(scope), store, now_s, latency_s,
                   in_deadline);
}

inline void
HealthMonitor::onShed(ScopeHandle h, double now_s)
{
    // A shed or dropped request is an offered request that failed the
    // SLO: it burns budget with no latency sample.
    ScopeState &st = *h.st_;
    ++st.total;
    ++st.bad;
    st.slo.record(now_s, true);
    maybeEval(st, now_s);
}

inline void
HealthMonitor::onShed(const std::string &scope, double now_s)
{
    onShed(scopeHandle(scope), now_s);
}

inline void
HealthMonitor::onQueueDepth(ScopeHandle h, double now_s, int depth,
                            int capacity)
{
    ScopeState &st = *h.st_;
    st.queueDepth = depth;
    st.queueCap = capacity;
    maybeEval(st, now_s);
}

inline void
HealthMonitor::onQueueDepth(const std::string &scope, double now_s,
                            int depth, int capacity)
{
    onQueueDepth(scopeHandle(scope), now_s, depth, capacity);
}

/**
 * Installs a HealthMonitor as HealthMonitor::current() for its
 * lifetime (no nesting). If constructed with a path, the destructor
 * writes the monitor JSON there. `fromEnv()` is the NDP_MONITOR gate
 * (mirroring NDP_TRACE): returns null — monitoring off, zero cost —
 * unless NDP_MONITOR is set to a non-"0" value; NDP_MONITOR_FILE
 * overrides the output path (default ndp_health.json).
 */
class MonitorSession
{
  public:
    explicit MonitorSession(MonitorConfig cfg = {},
                            std::string out_path = "");
    ~MonitorSession();

    MonitorSession(const MonitorSession &) = delete;
    MonitorSession &operator=(const MonitorSession &) = delete;

    HealthMonitor &monitor() { return *monitor_; }

    static std::unique_ptr<MonitorSession> fromEnv();

  private:
    std::unique_ptr<HealthMonitor> monitor_;
    std::string path_;
};

} // namespace ndp::obs
