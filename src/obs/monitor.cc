#include "obs/monitor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/trace.h"

namespace ndp::obs {

namespace {

/** The session-installed monitor (single-threaded simulator — a plain
 *  pointer, no TLS needed; the tracer's g_current pattern). */
HealthMonitor *g_monitor = nullptr;

/** Fixed-format number helper (trace.cc's putNumber): %.17g
 *  round-trips doubles exactly, so JSON is byte-stable across runs. */
void
putNumber(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
putString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            os << c;
            break;
        }
    }
    os << '"';
}

} // namespace

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::SloBurnFast:
        return "slo-burn-fast";
      case Rule::SloBurnSlow:
        return "slo-burn-slow";
      case Rule::Straggler:
        return "straggler";
      case Rule::QueueSaturation:
        return "queue-saturation";
      case Rule::LinkCongestion:
        return "link-congestion";
      case Rule::GeoStaleness:
        return "geo-staleness";
    }
    return "?";
}

const char *
healthEventKindName(HealthEvent::Kind k)
{
    switch (k) {
      case HealthEvent::Kind::AlertRaised:
        return "alert-raised";
      case HealthEvent::Kind::AlertCleared:
        return "alert-cleared";
      case HealthEvent::Kind::FaultDetected:
        return "fault-detected";
      case HealthEvent::Kind::FaultRecovered:
        return "fault-recovered";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// HealthMonitor

HealthMonitor::HealthMonitor(MonitorConfig cfg) : cfg_(cfg) {}

HealthMonitor::ScopeState &
HealthMonitor::stateSlow(const std::string &scope)
{
    auto it = scopes_.find(scope);
    if (it == scopes_.end()) {
        it = scopes_.emplace(scope, ScopeState(cfg_)).first;
        it->second.key = scope;
    }
    cachedScope_ = scope;
    cachedState_ = &it->second;
    return it->second;
}

void
HealthMonitor::onGeoLag(const std::string &scope,
                        const std::string &site, double now_s, int lag,
                        int staleness_bound)
{
    ScopeState &st = state(scope);
    st.geoLagFrac[site] =
        static_cast<double>(lag) /
        static_cast<double>(std::max(1, staleness_bound));
    maybeEval(st, now_s);
}

void
HealthMonitor::onGaugeSample(const std::string &node,
                             const std::string &name, double now_s,
                             double value)
{
    // Gauges are fleet-scoped (they are registered against nodes, not
    // jobs), so their samples land in the cluster-wide "" scope.
    ScopeState &st = state("");
    if (name == "ingress.util")
        st.linkUtil[node] = value;
    maybeEval(st, now_s);
}

void
HealthMonitor::onFaultDetected(sim::FaultKind kind, int store,
                               double opened_s, double detected_s)
{
    ScopeState &st = state("");
    ++st.faultsDetected;
    st.ttdSumS += detected_s - opened_s;
    HealthEvent e;
    e.kind = HealthEvent::Kind::FaultDetected;
    e.fault = kind;
    e.detail = "store" + std::to_string(store);
    e.tS = detected_s;
    e.value = detected_s - opened_s;
    events_.push_back(e);
    emitInstant(events_.back());
}

void
HealthMonitor::onFaultRecovered(sim::FaultKind kind, int store,
                                double opened_s, double recovered_s)
{
    ScopeState &st = state("");
    ++st.faultsRecovered;
    HealthEvent e;
    e.kind = HealthEvent::Kind::FaultRecovered;
    e.fault = kind;
    e.detail = "store" + std::to_string(store);
    e.tS = recovered_s;
    e.value = recovered_s - opened_s;
    events_.push_back(e);
    emitInstant(events_.back());
}

void
HealthMonitor::evalScope(ScopeState &st, double now_s)
{
    // The inline maybeEval guard filtered the eval cadence with one
    // compare; re-entrancy (an emission routed back through a gauge
    // sample into a *different* scope's guard) is filtered here.
    if (inEval_)
        return;
    inEval_ = true;
    // Advance the cadence before any emission, so a same-timestamp
    // re-entrant observation of this scope is guard-filtered too.
    st.nextEvalS = now_s + cfg_.evalPeriodS;
    if (st.everEvaled && st.inViolation)
        st.timeInViolationS += now_s - st.lastEvalS;
    st.lastEvalS = now_s;
    st.everEvaled = true;

    // Phase 1: compute every rule's verdict before emitting anything,
    // so emission side effects (a Perfetto instant piggybacking a
    // gauge sample back into onGaugeSample) cannot feed this eval.
    struct Verdict
    {
        bool active = false;
        double value = 0.0;
        double threshold = 0.0;
        std::string detail;
    };
    Verdict v[kNumRules];

    const double denom = 1.0 - cfg_.sloObjective;
    double fastBurn = 0.0;
    double slowBurn = 0.0;
    const SloWindow::Sums ft = st.slo.fastSums(now_s);
    if (ft.total > 0.0 && denom > 0.0)
        fastBurn = (ft.bad / ft.total) / denom;
    const SloWindow::Sums sl = st.slo.slowSums(now_s);
    if (sl.total > 0.0 && denom > 0.0)
        slowBurn = (sl.bad / sl.total) / denom;
    v[static_cast<int>(Rule::SloBurnFast)] = {
        fastBurn >= cfg_.fastBurnThreshold, fastBurn,
        cfg_.fastBurnThreshold, ""};
    v[static_cast<int>(Rule::SloBurnSlow)] = {
        slowBurn >= cfg_.slowBurnThreshold, slowBurn,
        cfg_.slowBurnThreshold, ""};

    {
        std::vector<double> svc;
        int worstStore = -1;
        double worst = 0.0;
        for (size_t i = 0; i < st.storeServiceS.size(); ++i) {
            const Ewma &e = st.storeServiceS[i];
            if (e.empty())
                continue;
            svc.push_back(e.value());
            if (e.value() > worst) {
                worst = e.value();
                worstStore = static_cast<int>(i);
            }
        }
        Verdict &sv = v[static_cast<int>(Rule::Straggler)];
        sv.threshold = cfg_.stragglerFactor;
        if (svc.size() >= 2) {
            std::sort(svc.begin(), svc.end());
            const double median = svc[svc.size() / 2];
            if (median > 0.0) {
                sv.value = worst / median;
                sv.active = sv.value >= cfg_.stragglerFactor;
                sv.detail = "store" + std::to_string(worstStore);
            }
        }
    }

    const double queueFrac =
        st.queueCap > 0 ? static_cast<double>(st.queueDepth) /
                              static_cast<double>(st.queueCap)
                        : 0.0;
    v[static_cast<int>(Rule::QueueSaturation)] = {
        queueFrac >= cfg_.saturationFraction, queueFrac,
        cfg_.saturationFraction, ""};

    {
        Verdict &lv = v[static_cast<int>(Rule::LinkCongestion)];
        lv.threshold = cfg_.congestionUtil;
        for (const auto &kv : st.linkUtil) {
            if (kv.second > lv.value) {
                lv.value = kv.second;
                lv.detail = kv.first;
            }
        }
        lv.active = !st.linkUtil.empty() &&
                    lv.value >= cfg_.congestionUtil;
    }

    {
        Verdict &gv = v[static_cast<int>(Rule::GeoStaleness)];
        gv.threshold = cfg_.stalenessFraction;
        for (const auto &kv : st.geoLagFrac) {
            if (kv.second > gv.value) {
                gv.value = kv.second;
                gv.detail = kv.first;
            }
        }
        gv.active = !st.geoLagFrac.empty() &&
                    gv.value >= cfg_.stalenessFraction;
    }

    // The burn series records exactly the values the decisions used:
    // tools/ndpmon replays the alert state machine from these samples
    // and must land on burn_alerts_fired precisely. The windowed p99
    // rides along (dashboard timeline; no rule reads it).
    st.series.push_back({now_s, st.bad, st.total, fastBurn, slowBurn,
                         st.latency.percentile(99.0)});

    // Phase 2: emit transitions.
    for (int r = 0; r < kNumRules; ++r)
        setAlert(st, static_cast<Rule>(r), v[r].active, v[r].value,
                 v[r].threshold, now_s, v[r].detail);

    bool any = false;
    for (bool a : st.alertActive)
        any = any || a;
    st.inViolation = any;
    inEval_ = false;
}

void
HealthMonitor::setAlert(ScopeState &st, Rule r, bool active,
                        double value, double threshold, double now_s,
                        const std::string &detail)
{
    const int i = static_cast<int>(r);
    if (active == st.alertActive[i])
        return;
    st.alertActive[i] = active;
    if (active) {
        ++st.fired;
        if (r == Rule::SloBurnFast || r == Rule::SloBurnSlow)
            ++st.burnFired;
    } else {
        ++st.cleared;
    }
    HealthEvent e;
    e.kind = active ? HealthEvent::Kind::AlertRaised
                    : HealthEvent::Kind::AlertCleared;
    e.rule = r;
    e.scope = st.key;
    e.detail = detail;
    e.tS = now_s;
    e.value = value;
    e.threshold = threshold;
    events_.push_back(e);
    emitInstant(events_.back());
}

void
HealthMonitor::emitInstant(const HealthEvent &e)
{
    Tracer *t = Tracer::current();
    if (t == nullptr)
        return;
    const std::string node = scopedNode(e.scope, "health");
    switch (e.kind) {
      case HealthEvent::Kind::AlertRaised:
      case HealthEvent::Kind::AlertCleared:
        t->instant(t->track(node, "alerts"), Cat::Mark,
                   ruleName(e.rule), e.tS,
                   {{"value", e.value},
                    {"threshold", e.threshold},
                    {"active", e.kind == HealthEvent::Kind::AlertRaised
                                   ? 1.0
                                   : 0.0}});
        break;
      case HealthEvent::Kind::FaultDetected:
        t->instant(t->track(node, "detect"), Cat::Fault,
                   sim::faultKindName(e.fault), e.tS,
                   {{"ttd_s", e.value}});
        break;
      case HealthEvent::Kind::FaultRecovered:
        t->instant(t->track(node, "recover"), Cat::Fault,
                   sim::faultKindName(e.fault), e.tS,
                   {{"ttr_s", e.value}});
        break;
    }
}

HealthSummary
HealthMonitor::summary(const std::string &scope) const
{
    HealthSummary out;
    auto it = scopes_.find(scope);
    if (it == scopes_.end())
        return out;
    const ScopeState &st = it->second;
    out.alertsFired = st.fired;
    out.alertsCleared = st.cleared;
    out.burnAlertsFired = st.burnFired;
    out.badEvents = st.bad;
    out.totalEvents = st.total;
    const double denom = 1.0 - cfg_.sloObjective;
    if (st.total > 0 && denom > 0.0)
        out.errorBudgetConsumed =
            static_cast<double>(st.bad) /
            (static_cast<double>(st.total) * denom);
    out.timeInViolationS = st.timeInViolationS;
    out.faultsDetected = st.faultsDetected;
    out.faultsRecovered = st.faultsRecovered;
    if (st.faultsDetected > 0)
        out.meanTimeToDetectS =
            st.ttdSumS / static_cast<double>(st.faultsDetected);
    return out;
}

HealthSummary
HealthMonitor::totals() const
{
    HealthSummary out;
    double ttdSum = 0.0;
    for (const auto &kv : scopes_) {
        const ScopeState &st = kv.second;
        out.alertsFired += st.fired;
        out.alertsCleared += st.cleared;
        out.burnAlertsFired += st.burnFired;
        out.badEvents += st.bad;
        out.totalEvents += st.total;
        out.timeInViolationS += st.timeInViolationS;
        out.faultsDetected += st.faultsDetected;
        out.faultsRecovered += st.faultsRecovered;
        ttdSum += st.ttdSumS;
    }
    const double denom = 1.0 - cfg_.sloObjective;
    if (out.totalEvents > 0 && denom > 0.0)
        out.errorBudgetConsumed =
            static_cast<double>(out.badEvents) /
            (static_cast<double>(out.totalEvents) * denom);
    if (out.faultsDetected > 0)
        out.meanTimeToDetectS =
            ttdSum / static_cast<double>(out.faultsDetected);
    return out;
}

std::vector<std::string>
HealthMonitor::scopes() const
{
    std::vector<std::string> out;
    for (const auto &kv : scopes_)
        out.push_back(kv.first); // std::map: already sorted
    return out;
}

void
HealthMonitor::writeJson(std::ostream &os) const
{
    os << "{\"monitor\":{\"slo_objective\":";
    putNumber(os, cfg_.sloObjective);
    os << ",\"eval_period_s\":";
    putNumber(os, cfg_.evalPeriodS);
    os << ",\"fast_window_s\":";
    putNumber(os, cfg_.fastWindowS);
    os << ",\"fast_burn_threshold\":";
    putNumber(os, cfg_.fastBurnThreshold);
    os << ",\"slow_window_s\":";
    putNumber(os, cfg_.slowWindowS);
    os << ",\"slow_burn_threshold\":";
    putNumber(os, cfg_.slowBurnThreshold);
    os << "},\n\"scopes\":[";
    bool firstScope = true;
    for (const auto &kv : scopes_) {
        if (!firstScope)
            os << ",\n";
        firstScope = false;
        const HealthSummary s = summary(kv.first);
        os << "{\"scope\":";
        putString(os, kv.first);
        os << ",\"summary\":{\"alerts_fired\":" << s.alertsFired
           << ",\"alerts_cleared\":" << s.alertsCleared
           << ",\"burn_alerts_fired\":" << s.burnAlertsFired
           << ",\"bad_events\":" << s.badEvents
           << ",\"total_events\":" << s.totalEvents
           << ",\"error_budget_consumed\":";
        putNumber(os, s.errorBudgetConsumed);
        os << ",\"time_in_violation_s\":";
        putNumber(os, s.timeInViolationS);
        os << ",\"faults_detected\":" << s.faultsDetected
           << ",\"faults_recovered\":" << s.faultsRecovered
           << ",\"mean_time_to_detect_s\":";
        putNumber(os, s.meanTimeToDetectS);
        os << "},\"series\":[";
        bool firstSample = true;
        for (const SeriesSample &p : kv.second.series) {
            if (!firstSample)
                os << ',';
            firstSample = false;
            os << "{\"t_s\":";
            putNumber(os, p.tS);
            os << ",\"bad\":" << p.bad << ",\"total\":" << p.total
               << ",\"fast_burn\":";
            putNumber(os, p.fastBurn);
            os << ",\"slow_burn\":";
            putNumber(os, p.slowBurn);
            os << ",\"p99_s\":";
            putNumber(os, p.p99S);
            os << '}';
        }
        os << "]}";
    }
    os << "],\n\"events\":[";
    bool firstEvent = true;
    for (const HealthEvent &e : events_) {
        if (!firstEvent)
            os << ",\n";
        firstEvent = false;
        os << "{\"kind\":\"" << healthEventKindName(e.kind)
           << "\",\"name\":\"";
        if (e.kind == HealthEvent::Kind::FaultDetected ||
            e.kind == HealthEvent::Kind::FaultRecovered)
            os << sim::faultKindName(e.fault);
        else
            os << ruleName(e.rule);
        os << "\",\"scope\":";
        putString(os, e.scope);
        os << ",\"detail\":";
        putString(os, e.detail);
        os << ",\"t_s\":";
        putNumber(os, e.tS);
        os << ",\"value\":";
        putNumber(os, e.value);
        os << ",\"threshold\":";
        putNumber(os, e.threshold);
        os << '}';
    }
    os << "]}\n";
}

std::string
HealthMonitor::json() const
{
    std::ostringstream ss;
    writeJson(ss);
    return ss.str();
}

HealthMonitor *
HealthMonitor::current()
{
    return g_monitor;
}

// ---------------------------------------------------------------------------
// MonitorSession

MonitorSession::MonitorSession(MonitorConfig cfg, std::string out_path)
    : monitor_(std::make_unique<HealthMonitor>(cfg)),
      path_(std::move(out_path))
{
    assert(g_monitor == nullptr && "nested MonitorSession");
    g_monitor = monitor_.get();
}

MonitorSession::~MonitorSession()
{
    if (!path_.empty()) {
        std::ofstream f(path_);
        monitor_->writeJson(f);
    }
    if (g_monitor == monitor_.get())
        g_monitor = nullptr;
}

std::unique_ptr<MonitorSession>
MonitorSession::fromEnv()
{
    const char *on = std::getenv("NDP_MONITOR");
    if (on == nullptr || std::string(on) == "0")
        return nullptr;
    const char *file = std::getenv("NDP_MONITOR_FILE");
    return std::make_unique<MonitorSession>(
        MonitorConfig{}, file != nullptr ? file : "ndp_health.json");
}

} // namespace ndp::obs
