/**
 * @file
 * Neural network layers with explicit forward/backward passes.
 *
 * A Layer caches whatever it needs from forward() to compute backward().
 * Parameters carry their own gradient buffers; the optimizer consumes
 * them through params(). Linear layers can be frozen, which reproduces
 * the weight-freeze semantics of fine-tuning (§2.1): backward still
 * propagates the input gradient but accumulates no weight gradient.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "sim/random.h"

namespace ndp::nn {

/** A learnable tensor and its gradient. */
struct Param
{
    Tensor value;
    Tensor grad;

    void
    zeroGrad()
    {
        grad.fill(0.0f);
    }

    size_t count() const { return value.size(); }
};

class Layer
{
  public:
    virtual ~Layer() = default;

    /** @param x batch input (B x in). @return batch output (B x out). */
    virtual Tensor forward(const Tensor &x) = 0;

    /**
     * @param grad_out dL/d(output) for the batch last seen by forward.
     * @return dL/d(input). Accumulates parameter gradients.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Trainable parameters (empty for activations/frozen layers). */
    virtual std::vector<Param *> params() { return {}; }

    /** Every parameter, frozen or not (for serialization/deltas). */
    virtual std::vector<Param *> allParams() { return params(); }

    virtual std::string name() const = 0;

    void
    zeroGrad()
    {
        for (Param *p : params())
            p->zeroGrad();
    }
};

/** Fully connected layer: y = x W + b, W is (in x out). */
class Linear : public Layer
{
  public:
    /** He-style init scaled for the fan-in. */
    Linear(size_t in, size_t out, Rng &rng);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    std::vector<Param *> allParams() override { return {&w, &b}; }
    std::string name() const override { return "Linear"; }

    /** Freeze: no weight gradients are accumulated (weight-freeze). */
    void setFrozen(bool f) { frozen = f; }
    bool isFrozen() const { return frozen; }

    Param &weight() { return w; }
    Param &bias() { return b; }
    size_t inDim() const { return w.value.rows(); }
    size_t outDim() const { return w.value.cols(); }

  private:
    Param w;
    Param b;
    Tensor lastX;
    bool frozen = false;
};

class ReLU : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "ReLU"; }

  private:
    Tensor lastX;
};

class Tanh : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "Tanh"; }

  private:
    Tensor lastY;
};

/** Ordered container of layers. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    template <typename L, typename... Args>
    L &
    emplace(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L &ref = *layer;
        layers.push_back(std::move(layer));
        return ref;
    }

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Param *> params() override;
    std::vector<Param *> allParams() override;
    std::string name() const override { return "Sequential"; }

    size_t depth() const { return layers.size(); }
    Layer &layer(size_t i) { return *layers[i]; }

    /** Total learnable parameter count. */
    size_t paramCount();

  private:
    std::vector<std::unique_ptr<Layer>> layers;
};

/**
 * Build the standard fine-tuning head: feature_dim -> hidden -> classes
 * (or a single linear layer when hidden == 0).
 */
Sequential makeClassifier(size_t feature_dim, size_t hidden,
                          size_t classes, Rng &rng);

} // namespace ndp::nn
