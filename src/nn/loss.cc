#include "nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ndp::nn {

Tensor
softmax(const Tensor &logits)
{
    Tensor p = logits;
    for (size_t i = 0; i < p.rows(); ++i) {
        float *row = p.rowPtr(i);
        float mx = row[0];
        for (size_t j = 1; j < p.cols(); ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (size_t j = 0; j < p.cols(); ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        for (size_t j = 0; j < p.cols(); ++j)
            row[j] /= sum;
    }
    return p;
}

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    assert(logits.rows() == labels.size());
    const size_t batch = logits.rows();
    Tensor probs = softmax(logits);
    double loss = 0.0;
    for (size_t i = 0; i < batch; ++i) {
        int y = labels[i];
        assert(y >= 0 && static_cast<size_t>(y) < logits.cols());
        float p = std::max(probs.at(i, static_cast<size_t>(y)), 1e-12f);
        loss -= std::log(static_cast<double>(p));
    }
    loss /= static_cast<double>(batch);

    // d(loss)/d(logit) = (softmax - onehot) / B.
    Tensor grad = probs;
    const float inv_b = 1.0f / static_cast<float>(batch);
    for (size_t i = 0; i < batch; ++i) {
        float *row = grad.rowPtr(i);
        row[labels[i]] -= 1.0f;
        for (size_t j = 0; j < grad.cols(); ++j)
            row[j] *= inv_b;
    }
    return {loss, std::move(grad)};
}

double
topKAccuracy(const Tensor &logits, const std::vector<int> &labels, int k)
{
    assert(logits.rows() == labels.size());
    if (logits.rows() == 0)
        return 0.0;
    size_t hits = 0;
    for (size_t i = 0; i < logits.rows(); ++i) {
        const float *row = logits.rowPtr(i);
        float target = row[labels[i]];
        // Count strictly-greater entries; ties resolve in our favor,
        // matching the usual top-k convention.
        int greater = 0;
        for (size_t j = 0; j < logits.cols(); ++j) {
            if (row[j] > target)
                ++greater;
        }
        if (greater < k)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(logits.rows());
}

std::vector<int>
argmaxRows(const Tensor &logits)
{
    std::vector<int> out(logits.rows());
    for (size_t i = 0; i < logits.rows(); ++i) {
        const float *row = logits.rowPtr(i);
        size_t best = 0;
        for (size_t j = 1; j < logits.cols(); ++j) {
            if (row[j] > row[best])
                best = j;
        }
        out[i] = static_cast<int>(best);
    }
    return out;
}

} // namespace ndp::nn
