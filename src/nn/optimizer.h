/**
 * @file
 * SGD with momentum and decoupled weight decay.
 */

#pragma once

#include <vector>

#include "nn/layers.h"

namespace ndp::nn {

struct SgdConfig
{
    double lr = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-4;
};

class Sgd
{
  public:
    Sgd(std::vector<Param *> params, const SgdConfig &cfg);

    /** Apply one update from the accumulated gradients, then clear. */
    void step();

    void setLr(double lr) { cfg.lr = lr; }
    double lr() const { return cfg.lr; }

  private:
    std::vector<Param *> params;
    std::vector<Tensor> velocity;
    SgdConfig cfg;
};

struct AdamConfig
{
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weightDecay = 0.0;
};

/** Adam with bias correction (decoupled weight decay, AdamW-style). */
class Adam
{
  public:
    Adam(std::vector<Param *> params, const AdamConfig &cfg);

    /** Apply one update from the accumulated gradients, then clear. */
    void step();

    void setLr(double lr) { cfg.lr = lr; }
    double lr() const { return cfg.lr; }
    long steps() const { return t; }

  private:
    std::vector<Param *> params;
    std::vector<Tensor> m1;
    std::vector<Tensor> m2;
    AdamConfig cfg;
    long t = 0;
};

} // namespace ndp::nn
