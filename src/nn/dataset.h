/**
 * @file
 * Labeled feature dataset and batch iteration.
 */

#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <vector>

#include "nn/tensor.h"
#include "sim/random.h"

namespace ndp::nn {

struct Dataset
{
    /** N x D feature matrix. */
    Tensor x;
    /** N labels. */
    std::vector<int> y;

    size_t size() const { return y.size(); }
    size_t featureDim() const { return x.cols(); }

    /** Rows selected by @p idx, in order. */
    Dataset
    subset(const std::vector<size_t> &idx) const
    {
        Dataset out;
        out.x = x.gatherRows(idx);
        out.y.reserve(idx.size());
        for (size_t i : idx)
            out.y.push_back(y[i]);
        return out;
    }

    /** First @p n rows. */
    Dataset
    head(size_t n) const
    {
        n = std::min(n, size());
        std::vector<size_t> idx(n);
        std::iota(idx.begin(), idx.end(), 0);
        return subset(idx);
    }

    /** Split into @p k contiguous, nearly equal shards (for N_run). */
    std::vector<Dataset>
    shards(size_t k) const
    {
        assert(k >= 1);
        std::vector<Dataset> out;
        size_t n = size();
        size_t base = n / k, rem = n % k;
        size_t start = 0;
        for (size_t s = 0; s < k; ++s) {
            size_t len = base + (s < rem ? 1 : 0);
            std::vector<size_t> idx(len);
            std::iota(idx.begin(), idx.end(), start);
            out.push_back(subset(idx));
            start += len;
        }
        return out;
    }

    /** Append another dataset (same feature dim). */
    void
    append(const Dataset &other)
    {
        if (y.empty()) {
            *this = other;
            return;
        }
        assert(x.cols() == other.x.cols());
        Tensor merged(size() + other.size(), x.cols());
        std::copy(x.data().begin(), x.data().end(),
                  merged.data().begin());
        std::copy(other.x.data().begin(), other.x.data().end(),
                  merged.data().begin() + x.size());
        x = std::move(merged);
        y.insert(y.end(), other.y.begin(), other.y.end());
    }
};

/** Yields shuffled index batches for one epoch. */
class BatchIterator
{
  public:
    BatchIterator(size_t n, size_t batch, Rng &rng) : batchSize(batch)
    {
        order.resize(n);
        std::iota(order.begin(), order.end(), 0);
        // Fisher-Yates with our deterministic RNG.
        for (size_t i = n; i > 1; --i) {
            size_t j = rng.below(i);
            std::swap(order[i - 1], order[j]);
        }
    }

    /** Next batch of indices; empty when the epoch is done. */
    std::vector<size_t>
    next()
    {
        std::vector<size_t> batch;
        while (pos < order.size() && batch.size() < batchSize)
            batch.push_back(order[pos++]);
        return batch;
    }

  private:
    std::vector<size_t> order;
    size_t batchSize;
    size_t pos = 0;
};

} // namespace ndp::nn
