#include "nn/tensor.h"

#include <cassert>
#include <cstring>

namespace ndp::nn {

Tensor::Tensor(size_t rows, size_t cols)
    : nRows(rows), nCols(cols), buf(rows * cols, 0.0f)
{}

Tensor
Tensor::zeros(size_t rows, size_t cols)
{
    return Tensor(rows, cols);
}

Tensor
Tensor::filled(size_t rows, size_t cols, float v)
{
    Tensor t(rows, cols);
    t.fill(v);
    return t;
}

Tensor
Tensor::randn(size_t rows, size_t cols, Rng &rng, float stddev)
{
    Tensor t(rows, cols);
    for (auto &v : t.buf)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

void
Tensor::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

void
Tensor::axpy(float alpha, const Tensor &other)
{
    assert(nRows == other.nRows && nCols == other.nCols);
    const float *src = other.buf.data();
    float *dst = buf.data();
    for (size_t i = 0; i < buf.size(); ++i)
        dst[i] += alpha * src[i];
}

Tensor
Tensor::gatherRows(const std::vector<size_t> &idx) const
{
    Tensor out(idx.size(), nCols);
    for (size_t r = 0; r < idx.size(); ++r) {
        assert(idx[r] < nRows);
        std::memcpy(out.rowPtr(r), rowPtr(idx[r]), nCols * sizeof(float));
    }
    return out;
}

double
Tensor::sumSquares() const
{
    double s = 0.0;
    for (float v : buf)
        s += static_cast<double>(v) * v;
    return s;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    assert(a.cols() == b.rows());
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    Tensor c(m, n);
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = c.rowPtr(i);
        for (size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.rowPtr(p);
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTN(const Tensor &a, const Tensor &b)
{
    assert(a.rows() == b.rows());
    const size_t k = a.rows(), m = a.cols(), n = b.cols();
    Tensor c(m, n);
    for (size_t p = 0; p < k; ++p) {
        const float *arow = a.rowPtr(p);
        const float *brow = b.rowPtr(p);
        for (size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f)
                continue;
            float *crow = c.rowPtr(i);
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulNT(const Tensor &a, const Tensor &b)
{
    assert(a.cols() == b.cols());
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    Tensor c(m, n);
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.rowPtr(i);
        float *crow = c.rowPtr(i);
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.rowPtr(j);
            float s = 0.0f;
            for (size_t p = 0; p < k; ++p)
                s += arow[p] * brow[p];
            crow[j] = s;
        }
    }
    return c;
}

void
addBiasRow(Tensor &x, const Tensor &bias)
{
    assert(bias.rows() == 1 && bias.cols() == x.cols());
    const float *b = bias.rowPtr(0);
    for (size_t i = 0; i < x.rows(); ++i) {
        float *row = x.rowPtr(i);
        for (size_t j = 0; j < x.cols(); ++j)
            row[j] += b[j];
    }
}

Tensor
columnSums(const Tensor &x)
{
    Tensor out(1, x.cols());
    float *o = out.rowPtr(0);
    for (size_t i = 0; i < x.rows(); ++i) {
        const float *row = x.rowPtr(i);
        for (size_t j = 0; j < x.cols(); ++j)
            o[j] += row[j];
    }
    return out;
}

} // namespace ndp::nn
