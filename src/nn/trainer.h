/**
 * @file
 * Mini-batch training loop with the paper's convergence criterion.
 *
 * §6.3: "We stop the training when more than 0.01% accuracy improvement
 * is not observed over three consecutive epochs." The same loop powers
 * the Tuner-side classifier fine-tuning and the full-training baseline.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace ndp::nn {

struct TrainConfig
{
    size_t batchSize = 128;
    int maxEpochs = 40;
    SgdConfig sgd;
    /** Stop when top-1 improves by less than this (percentage points)… */
    double convergeDeltaPct = 0.01;
    /** …for this many consecutive epochs (0 disables early stop). */
    int convergePatience = 3;
    uint64_t seed = 1;
};

struct EpochStat
{
    int epoch;
    double trainLoss;
    double testTop1;
    double testTop5;
};

struct EvalResult
{
    double top1;
    double top5;
    double loss;
};

struct TrainResult
{
    std::vector<EpochStat> history;
    int epochsRun = 0;

    double
    finalTop1() const
    {
        return history.empty() ? 0.0 : history.back().testTop1;
    }

    double
    finalTop5() const
    {
        return history.empty() ? 0.0 : history.back().testTop5;
    }

    double bestTop1() const;
};

/** Evaluate @p model on @p test (batched to bound memory). */
EvalResult evaluate(Layer &model, const Dataset &test);

/**
 * Train @p model on @p train, evaluating on @p test after each epoch.
 * Applies the convergence criterion above.
 */
TrainResult trainClassifier(Layer &model, const Dataset &train,
                            const Dataset &test, const TrainConfig &cfg);

} // namespace ndp::nn
