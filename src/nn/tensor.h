/**
 * @file
 * Minimal dense 2-D float tensor.
 *
 * The functional training path in this repository only ever needs
 * (batch x features) matrices: the frozen backbone is a feature map and
 * the fine-tuned classifier is an MLP. Keeping the tensor strictly 2-D
 * keeps the kernels simple, testable, and fast enough for the accuracy
 * experiments (Figs. 4, 17, Tables 1-2).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.h"

namespace ndp::nn {

class Tensor
{
  public:
    Tensor() = default;
    Tensor(size_t rows, size_t cols);

    static Tensor zeros(size_t rows, size_t cols);
    static Tensor filled(size_t rows, size_t cols, float v);
    /** Gaussian init with the given standard deviation. */
    static Tensor randn(size_t rows, size_t cols, Rng &rng, float stddev);

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return buf.size(); }
    bool empty() const { return buf.empty(); }

    float &at(size_t r, size_t c) { return buf[r * nCols + c]; }
    float at(size_t r, size_t c) const { return buf[r * nCols + c]; }

    float *rowPtr(size_t r) { return buf.data() + r * nCols; }
    const float *rowPtr(size_t r) const { return buf.data() + r * nCols; }

    std::vector<float> &data() { return buf; }
    const std::vector<float> &data() const { return buf; }

    void fill(float v);

    /** In-place: this += alpha * other (same shape). */
    void axpy(float alpha, const Tensor &other);

    /** Copy of rows given by @p idx, in order. */
    Tensor gatherRows(const std::vector<size_t> &idx) const;

    /** Sum of squares of all elements. */
    double sumSquares() const;

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    std::vector<float> buf;
};

/** C = A (m x k) * B (k x n). */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A^T (k x m -> m x k transposed) * B. A is (k x m), B is (k x n). */
Tensor matmulTN(const Tensor &a, const Tensor &b);

/** C = A (m x k) * B^T. B is (n x k). */
Tensor matmulNT(const Tensor &a, const Tensor &b);

/** Add a 1 x n bias row to every row of x (m x n), in place. */
void addBiasRow(Tensor &x, const Tensor &bias);

/** Column-wise sum of x: returns 1 x n. */
Tensor columnSums(const Tensor &x);

} // namespace ndp::nn
