#include "nn/optimizer.h"

#include <cmath>

namespace ndp::nn {

Sgd::Sgd(std::vector<Param *> ps, const SgdConfig &c)
    : params(std::move(ps)), cfg(c)
{
    velocity.reserve(params.size());
    for (Param *p : params)
        velocity.emplace_back(
            Tensor::zeros(p->value.rows(), p->value.cols()));
}

void
Sgd::step()
{
    const float lr = static_cast<float>(cfg.lr);
    const float mu = static_cast<float>(cfg.momentum);
    const float wd = static_cast<float>(cfg.weightDecay);
    for (size_t i = 0; i < params.size(); ++i) {
        Param *p = params[i];
        auto &v = velocity[i].data();
        auto &g = p->grad.data();
        auto &w = p->value.data();
        for (size_t j = 0; j < w.size(); ++j) {
            v[j] = mu * v[j] + g[j] + wd * w[j];
            w[j] -= lr * v[j];
        }
        p->zeroGrad();
    }
}

Adam::Adam(std::vector<Param *> ps, const AdamConfig &c)
    : params(std::move(ps)), cfg(c)
{
    m1.reserve(params.size());
    m2.reserve(params.size());
    for (Param *p : params) {
        m1.emplace_back(Tensor::zeros(p->value.rows(), p->value.cols()));
        m2.emplace_back(Tensor::zeros(p->value.rows(), p->value.cols()));
    }
}

void
Adam::step()
{
    ++t;
    const float lr = static_cast<float>(cfg.lr);
    const float b1 = static_cast<float>(cfg.beta1);
    const float b2 = static_cast<float>(cfg.beta2);
    const float eps = static_cast<float>(cfg.eps);
    const float wd = static_cast<float>(cfg.weightDecay);
    const float corr1 =
        1.0f - std::pow(b1, static_cast<float>(t));
    const float corr2 =
        1.0f - std::pow(b2, static_cast<float>(t));
    for (size_t i = 0; i < params.size(); ++i) {
        Param *p = params[i];
        auto &g = p->grad.data();
        auto &w = p->value.data();
        auto &v1 = m1[i].data();
        auto &v2 = m2[i].data();
        for (size_t j = 0; j < w.size(); ++j) {
            v1[j] = b1 * v1[j] + (1.0f - b1) * g[j];
            v2[j] = b2 * v2[j] + (1.0f - b2) * g[j] * g[j];
            float mhat = v1[j] / corr1;
            float vhat = v2[j] / corr2;
            w[j] -= lr * (mhat / (std::sqrt(vhat) + eps) + wd * w[j]);
        }
        p->zeroGrad();
    }
}

} // namespace ndp::nn
