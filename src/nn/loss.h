/**
 * @file
 * Softmax cross-entropy loss and classification metrics.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace ndp::nn {

/** Loss value plus the gradient w.r.t. the logits. */
struct LossResult
{
    double loss;
    Tensor gradLogits;
};

/**
 * Mean softmax cross-entropy over the batch.
 * @param logits B x C scores.
 * @param labels B class indices in [0, C).
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

/** Row-wise softmax probabilities. */
Tensor softmax(const Tensor &logits);

/** Fraction of rows whose label is within the top-k logits. */
double topKAccuracy(const Tensor &logits, const std::vector<int> &labels,
                    int k);

/** argmax per row. */
std::vector<int> argmaxRows(const Tensor &logits);

} // namespace ndp::nn
