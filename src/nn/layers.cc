#include "nn/layers.h"

#include <cassert>
#include <cmath>

namespace ndp::nn {

Linear::Linear(size_t in, size_t out, Rng &rng)
{
    float stddev = std::sqrt(2.0f / static_cast<float>(in));
    w.value = Tensor::randn(in, out, rng, stddev);
    w.grad = Tensor::zeros(in, out);
    b.value = Tensor::zeros(1, out);
    b.grad = Tensor::zeros(1, out);
}

Tensor
Linear::forward(const Tensor &x)
{
    assert(x.cols() == w.value.rows());
    lastX = x;
    Tensor y = matmul(x, w.value);
    addBiasRow(y, b.value);
    return y;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    assert(grad_out.rows() == lastX.rows());
    assert(grad_out.cols() == w.value.cols());
    if (!frozen) {
        // dW += X^T dY ; db += column sums of dY.
        Tensor dw = matmulTN(lastX, grad_out);
        w.grad.axpy(1.0f, dw);
        Tensor db = columnSums(grad_out);
        b.grad.axpy(1.0f, db);
    }
    // dX = dY W^T.
    return matmulNT(grad_out, w.value);
}

std::vector<Param *>
Linear::params()
{
    if (frozen)
        return {};
    return {&w, &b};
}

Tensor
ReLU::forward(const Tensor &x)
{
    lastX = x;
    Tensor y = x;
    for (auto &v : y.data())
        v = v > 0.0f ? v : 0.0f;
    return y;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    assert(grad_out.rows() == lastX.rows());
    Tensor g = grad_out;
    const auto &x = lastX.data();
    auto &gd = g.data();
    for (size_t i = 0; i < gd.size(); ++i) {
        if (x[i] <= 0.0f)
            gd[i] = 0.0f;
    }
    return g;
}

Tensor
Tanh::forward(const Tensor &x)
{
    Tensor y = x;
    for (auto &v : y.data())
        v = std::tanh(v);
    lastY = y;
    return y;
}

Tensor
Tanh::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    const auto &y = lastY.data();
    auto &gd = g.data();
    for (size_t i = 0; i < gd.size(); ++i)
        gd[i] *= 1.0f - y[i] * y[i];
    return g;
}

Tensor
Sequential::forward(const Tensor &x)
{
    Tensor cur = x;
    for (auto &l : layers)
        cur = l->forward(cur);
    return cur;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor cur = grad_out;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<Param *>
Sequential::params()
{
    std::vector<Param *> all;
    for (auto &l : layers) {
        auto ps = l->params();
        all.insert(all.end(), ps.begin(), ps.end());
    }
    return all;
}

std::vector<Param *>
Sequential::allParams()
{
    std::vector<Param *> all;
    for (auto &l : layers) {
        auto ps = l->allParams();
        all.insert(all.end(), ps.begin(), ps.end());
    }
    return all;
}

size_t
Sequential::paramCount()
{
    size_t n = 0;
    for (Param *p : params())
        n += p->count();
    return n;
}

Sequential
makeClassifier(size_t feature_dim, size_t hidden, size_t classes, Rng &rng)
{
    Sequential seq;
    if (hidden == 0) {
        seq.emplace<Linear>(feature_dim, classes, rng);
    } else {
        seq.emplace<Linear>(feature_dim, hidden, rng);
        seq.emplace<ReLU>();
        seq.emplace<Linear>(hidden, classes, rng);
    }
    return seq;
}

} // namespace ndp::nn
