#include "nn/trainer.h"

#include <algorithm>

#include "nn/loss.h"

namespace ndp::nn {

double
TrainResult::bestTop1() const
{
    double best = 0.0;
    for (const auto &e : history)
        best = std::max(best, e.testTop1);
    return best;
}

EvalResult
evaluate(Layer &model, const Dataset &test)
{
    constexpr size_t eval_batch = 512;
    double loss = 0.0;
    double top1 = 0.0, top5 = 0.0;
    size_t n = test.size();
    if (n == 0)
        return {0.0, 0.0, 0.0};
    for (size_t start = 0; start < n; start += eval_batch) {
        size_t len = std::min(eval_batch, n - start);
        std::vector<size_t> idx(len);
        for (size_t i = 0; i < len; ++i)
            idx[i] = start + i;
        Dataset b = test.subset(idx);
        Tensor logits = model.forward(b.x);
        LossResult lr = softmaxCrossEntropy(logits, b.y);
        double w = static_cast<double>(len) / static_cast<double>(n);
        loss += lr.loss * w;
        top1 += topKAccuracy(logits, b.y, 1) * w;
        top5 += topKAccuracy(logits, b.y, 5) * w;
    }
    return {top1, top5, loss};
}

TrainResult
trainClassifier(Layer &model, const Dataset &train,
                const Dataset &test, const TrainConfig &cfg)
{
    TrainResult result;
    if (train.size() == 0)
        return result;

    Rng rng(cfg.seed);
    Sgd opt(model.params(), cfg.sgd);

    double best_top1 = -1.0;
    int stall = 0;

    for (int epoch = 1; epoch <= cfg.maxEpochs; ++epoch) {
        BatchIterator it(train.size(), cfg.batchSize, rng);
        double loss_sum = 0.0;
        size_t n_batches = 0;
        for (auto idx = it.next(); !idx.empty(); idx = it.next()) {
            Dataset b = train.subset(idx);
            Tensor logits = model.forward(b.x);
            LossResult lr = softmaxCrossEntropy(logits, b.y);
            model.backward(lr.gradLogits);
            opt.step();
            loss_sum += lr.loss;
            ++n_batches;
        }

        EvalResult ev = evaluate(model, test);
        result.history.push_back(EpochStat{
            epoch, loss_sum / static_cast<double>(n_batches), ev.top1,
            ev.top5});
        result.epochsRun = epoch;

        // Convergence criterion from §6.3 (delta in percentage points).
        if (cfg.convergePatience > 0) {
            if (ev.top1 * 100.0 >
                best_top1 * 100.0 + cfg.convergeDeltaPct) {
                best_top1 = ev.top1;
                stall = 0;
            } else if (++stall >= cfg.convergePatience) {
                break;
            }
        }
    }
    return result;
}

} // namespace ndp::nn
