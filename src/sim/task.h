/**
 * @file
 * Coroutine task type used to express simulation processes.
 *
 * A Task is a lazily-started C++20 coroutine. It is either spawned as a
 * root process on a Simulator (which then owns it) or awaited by a parent
 * coroutine (`co_await child()`), in which case the parent resumes when
 * the child runs to completion. A Task may be awaited at most once.
 */

#pragma once

#include <coroutine>
#include <cstdlib>
#include <exception>
#include <utility>

namespace ndp::sim {

/*
 * [[nodiscard]]: a Task that is neither co_awaited nor spawn()ed is a
 * coroutine frame that never runs — the compile-time counterpart of
 * ndp-lint's discarded-task rule.
 */
class [[nodiscard]] Task
{
  public:
    struct promise_type
    {
        /** Coroutine to resume when this task completes (may be null). */
        std::coroutine_handle<> continuation = nullptr;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}

        void unhandled_exception() { std::terminate(); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}

    Task(Task &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            if (handle)
                handle.destroy();
            handle = std::exchange(other.handle, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task()
    {
        if (handle)
            handle.destroy();
    }

    /** True once the coroutine body has run to completion. */
    [[nodiscard]] bool done() const { return !handle || handle.done(); }

    /** True if this task still refers to a live coroutine frame. */
    [[nodiscard]] bool valid() const { return handle != nullptr; }

    /**
     * Awaiting a task starts (or resumes) it immediately and suspends the
     * awaiter until the task completes.
     */
    auto
    operator co_await() const noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            void await_resume() noexcept {}
        };
        return Awaiter{handle};
    }

    /** Raw handle; used by Simulator::spawn to kick the task off. */
    std::coroutine_handle<> rawHandle() const { return handle; }

  private:
    std::coroutine_handle<promise_type> handle = nullptr;
};

} // namespace ndp::sim
