#include "sim/fault.h"

#include <algorithm>
#include <cassert>

namespace ndp::sim {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::StoreCrash:
        return "store-crash";
      case FaultKind::StoreStall:
        return "store-stall";
      case FaultKind::ReadError:
        return "read-error";
      case FaultKind::MessageLoss:
        return "message-loss";
      case FaultKind::LinkDegrade:
        return "link-degrade";
      case FaultKind::LinkDown:
        return "link-down";
    }
    return "?";
}

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::None:
        return "none";
      case FaultClass::StoreCrash:
        return "store-crash";
      case FaultClass::StoreStall:
        return "store-stall";
      case FaultClass::IoError:
        return "io-error";
      case FaultClass::MessageLoss:
        return "message-loss";
      case FaultClass::OutOfMemory:
        return "out-of-memory";
    }
    return "?";
}

FaultPlan &
FaultPlan::crashStore(int store, double at_s)
{
    FaultSpec f;
    f.kind = FaultKind::StoreCrash;
    f.store = store;
    f.atS = at_s;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::stallStore(int store, double at_s, double duration_s)
{
    FaultSpec f;
    f.kind = FaultKind::StoreStall;
    f.store = store;
    f.atS = at_s;
    f.durationS = duration_s;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::readErrors(double p, int store)
{
    FaultSpec f;
    f.kind = FaultKind::ReadError;
    f.store = store;
    f.probability = p;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::loseMessages(double p, int store)
{
    FaultSpec f;
    f.kind = FaultKind::MessageLoss;
    f.store = store;
    f.probability = p;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::degradeLink(int node, double at_s, double duration_s,
                       double factor)
{
    FaultSpec f;
    f.kind = FaultKind::LinkDegrade;
    f.store = node;
    f.atS = at_s;
    f.durationS = duration_s;
    f.factor = factor;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::downLink(int node, double at_s, double duration_s)
{
    FaultSpec f;
    f.kind = FaultKind::LinkDown;
    f.store = node;
    f.atS = at_s;
    f.durationS = duration_s;
    f.factor = 0.0;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::degradeWanLink(int site, double at_s, double duration_s,
                          double factor)
{
    FaultSpec f;
    f.kind = FaultKind::LinkDegrade;
    f.store = site;
    f.atS = at_s;
    f.durationS = duration_s;
    f.factor = factor;
    f.wan = true;
    faults.push_back(f);
    return *this;
}

FaultPlan &
FaultPlan::downWanLink(int site, double at_s, double duration_s)
{
    FaultSpec f;
    f.kind = FaultKind::LinkDown;
    f.store = site;
    f.atS = at_s;
    f.durationS = duration_s;
    f.factor = 0.0;
    f.wan = true;
    faults.push_back(f);
    return *this;
}

std::string
FaultPlan::validate() const
{
    if (ioRetryLimit < 0 || probeRetries < 0 || msgRetryLimit < 0)
        return "FaultPlan: retry limits must be >= 0";
    if (ioRetryBackoffS < 0.0 || probeTimeoutS < 0.0 ||
        msgRetryBackoffS < 0.0)
        return "FaultPlan: backoff/timeout seconds must be >= 0";
    for (const FaultSpec &f : faults) {
        const bool link_fault = f.kind == FaultKind::LinkDegrade ||
                                f.kind == FaultKind::LinkDown;
        if (f.wan && !link_fault)
            return "FaultPlan: only link faults may target WAN trunks";
        const int floor = link_fault && !f.wan
                              ? FaultSpec::kIngressLink
                              : FaultSpec::kAnyStore;
        if (f.store < floor)
            return link_fault
                       ? (f.wan
                              ? "FaultPlan: WAN-fault site must be >= -1"
                              : "FaultPlan: link-fault node must be >= -2")
                       : "FaultPlan: fault store must be >= -1";
        if (f.atS < 0.0 || f.durationS < 0.0)
            return "FaultPlan: fault times must be >= 0";
        if ((f.kind == FaultKind::ReadError ||
             f.kind == FaultKind::MessageLoss) &&
            (f.probability < 0.0 || f.probability > 1.0))
            return "FaultPlan: fault probability must be in [0, 1]";
        if (f.kind == FaultKind::LinkDegrade &&
            (f.factor <= 0.0 || f.factor > 1.0))
            return "FaultPlan: degrade factor must be in (0, 1]";
    }
    return {};
}

namespace {

/** Combine independent failure probabilities: 1 - prod(1 - p_i). */
double
combineP(double a, double b)
{
    return 1.0 - (1.0 - a) * (1.0 - b);
}

} // namespace

FaultInjector::FaultInjector(Simulator &s, const FaultPlan &plan,
                             int n_stores)
    : sim_(&s), plan_(plan)
{
    assert(n_stores >= 1);
    assert(plan_.validate().empty() && "invalid FaultPlan");
    stores_.resize(static_cast<size_t>(n_stores));
    // Independent per-store RNG streams so the draw sequence of one
    // store never depends on how draws interleave with another's.
    Rng master(plan_.seed ^ 0x9d5fa11ced15eedull);
    for (StoreState &st : stores_)
        st.rng = master.split();

    for (const FaultSpec &f : plan_.faults) {
        // Link faults are fabric-scoped, not per-store state: keep
        // the declared node id for net::NetFabric::attachFaults to
        // resolve against its topology.
        if (f.kind == FaultKind::LinkDegrade ||
            f.kind == FaultKind::LinkDown) {
            linkFaults_.push_back({f.kind, f.store, f.atS,
                                   f.atS + f.durationS, f.factor,
                                   f.wan});
            continue;
        }
        for (int i = 0; i < n_stores; ++i) {
            if (f.store != FaultSpec::kAnyStore && f.store != i)
                continue;
            StoreState &st = stores_[static_cast<size_t>(i)];
            switch (f.kind) {
              case FaultKind::StoreCrash:
                st.crashAtS = std::min(st.crashAtS, f.atS);
                break;
              case FaultKind::StoreStall:
                st.stalls.push_back(
                    {f.atS, f.atS + f.durationS, false});
                break;
              case FaultKind::ReadError:
                st.readErrorP =
                    combineP(st.readErrorP, f.probability);
                break;
              case FaultKind::MessageLoss:
                st.msgLossP = combineP(st.msgLossP, f.probability);
                break;
              case FaultKind::LinkDegrade:
              case FaultKind::LinkDown:
                break; // handled above
            }
        }
    }
}

FaultInjector::StoreState *
FaultInjector::stateOf(int store)
{
    if (store < 0 || static_cast<size_t>(store) >= stores_.size())
        return nullptr;
    return &stores_[static_cast<size_t>(store)];
}

const FaultInjector::StoreState *
FaultInjector::stateOf(int store) const
{
    if (store < 0 || static_cast<size_t>(store) >= stores_.size())
        return nullptr;
    return &stores_[static_cast<size_t>(store)];
}

bool
FaultInjector::crashScheduled(int store) const
{
    const StoreState *st = stateOf(store);
    return st != nullptr &&
           st->crashAtS < std::numeric_limits<double>::infinity();
}

double
FaultInjector::crashTimeOf(int store) const
{
    const StoreState *st = stateOf(store);
    return st ? st->crashAtS : std::numeric_limits<double>::infinity();
}

bool
FaultInjector::crashed(int store, double now)
{
    StoreState *st = stateOf(store);
    if (!st)
        return false;
    if (!st->dead && now < st->crashAtS)
        return false;
    if (!st->crashCounted) {
        st->crashCounted = true;
        ++report_.crashes;
        // Scheduled crashes open at their trigger time; an I/O
        // escalation (dead, no schedule) opens at this observation.
        const double opened = std::min(st->crashAtS, now);
        recordDetected(FaultKind::StoreCrash, store, opened, now);
        crashPending_.push_back({store, opened});
    }
    return true;
}

double
FaultInjector::stallDelay(int store, double now)
{
    StoreState *st = stateOf(store);
    if (!st)
        return 0.0;
    double until = now;
    for (StallWindow &w : st->stalls) {
        if (now >= w.fromS && now < w.untilS) {
            if (!w.counted) {
                w.counted = true;
                ++report_.stalls;
                // A stall both detects here and recovers on its own
                // at the window's end — the whole lifecycle is known
                // the moment the window is observed.
                recordDetected(FaultKind::StoreStall, store, w.fromS,
                               now);
                recordRecovered(FaultKind::StoreStall, store, w.fromS,
                                w.untilS);
            }
            until = std::max(until, w.untilS);
        }
    }
    return until - now;
}

bool
FaultInjector::drawReadError(int store)
{
    StoreState *st = stateOf(store);
    if (!st || st->readErrorP <= 0.0)
        return false;
    if (!st->rng.chance(st->readErrorP))
        return false;
    ++report_.ioErrors;
    // One incident per retry loop: the first failed read opens it
    // (detection is immediate — the read itself reports the error);
    // noteIoRecovered/declareDead closes it.
    if (st->ioOpenS < 0.0) {
        st->ioOpenS = sim_->now();
        recordDetected(FaultKind::ReadError, store, st->ioOpenS,
                       st->ioOpenS);
    }
    return true;
}

bool
FaultInjector::drawMessageLoss(int store)
{
    StoreState *st = stateOf(store);
    if (!st || st->msgLossP <= 0.0)
        return false;
    if (!st->rng.chance(st->msgLossP))
        return false;
    ++report_.messagesLost;
    if (st->msgOpenS < 0.0) {
        st->msgOpenS = sim_->now();
        recordDetected(FaultKind::MessageLoss, store, st->msgOpenS,
                       st->msgOpenS);
    }
    return true;
}

void
FaultInjector::declareDead(int store)
{
    if (StoreState *st = stateOf(store)) {
        st->dead = true;
        // The open I/O incident escalates to StoreCrash semantics;
        // the crash incident (opened at the next crashed() query)
        // carries the lifecycle from here.
        st->ioOpenS = -1.0;
    }
}

void
FaultInjector::noteCrashHandled(bool recovered)
{
    if (crashPending_.empty())
        return;
    const PendingCrash pc = crashPending_.front();
    crashPending_.pop_front();
    if (recovered && sim_ != nullptr)
        recordRecovered(FaultKind::StoreCrash, pc.store, pc.openedS,
                        sim_->now());
}

void
FaultInjector::noteIoRecovered(int store)
{
    StoreState *st = stateOf(store);
    if (!st || st->ioOpenS < 0.0)
        return;
    recordRecovered(FaultKind::ReadError, store, st->ioOpenS,
                    sim_->now());
    st->ioOpenS = -1.0;
}

void
FaultInjector::noteMsgRecovered(int store)
{
    StoreState *st = stateOf(store);
    if (!st || st->msgOpenS < 0.0)
        return;
    recordRecovered(FaultKind::MessageLoss, store, st->msgOpenS,
                    sim_->now());
    st->msgOpenS = -1.0;
}

void
FaultInjector::noteMsgAbandoned(int store)
{
    // Detection stays on the ledger; the incident just never closes
    // as recovered (the caller types the terminal separately).
    if (StoreState *st = stateOf(store))
        st->msgOpenS = -1.0;
}

void
FaultInjector::recordDetected(FaultKind kind, int store,
                              double opened_s, double detected_s)
{
    ++report_.faultsDetected;
    const double ttd = detected_s - opened_s;
    report_.timeToDetectSumS += ttd;
    report_.timeToDetectMaxS = std::max(report_.timeToDetectMaxS, ttd);
    if (observer_ != nullptr)
        observer_->onFaultDetected(kind, store, opened_s, detected_s);
}

void
FaultInjector::recordRecovered(FaultKind kind, int store,
                               double opened_s, double recovered_s)
{
    ++report_.faultsRecovered;
    const double ttr = recovered_s - opened_s;
    report_.timeToRecoverSumS += ttr;
    report_.timeToRecoverMaxS =
        std::max(report_.timeToRecoverMaxS, ttr);
    if (observer_ != nullptr)
        observer_->onFaultRecovered(kind, store, opened_s,
                                    recovered_s);
}

int
FaultInjector::eligibleConsumers() const
{
    int n = 0;
    for (const StoreState &st : stores_)
        if (st.crashAtS == std::numeric_limits<double>::infinity())
            ++n;
    return n;
}

// Producers report through an effectively unbounded channel, so
// producerDone()/producerCrashed() never suspend the reporting store.
namespace {
constexpr size_t kUnbounded = static_cast<size_t>(1) << 40;
} // namespace

RecoveryCoordinator::RecoveryCoordinator(Simulator &s,
                                         FaultInjector &inj,
                                         int n_producers,
                                         int order_batch)
    : sim_(s), inj_(inj), nProducers_(n_producers),
      orderBatch_(std::max(1, order_batch)), exits_(s, kUnbounded),
      orders_(s, kUnbounded)
{
    assert(n_producers >= 1);
}

sim::Task
RecoveryCoordinator::signal(int token)
{
    co_await exits_.put(token);
}

sim::Task
RecoveryCoordinator::producerDone()
{
    return signal(kExitClean);
}

// Deliberately NOT a coroutine: the spill vector moves into
// coordinator-owned storage while this frame is still a plain call,
// and only the trivial token travels through coroutine frames.
sim::Task
RecoveryCoordinator::producerCrashed(std::vector<ShardSpill> rest)
{
    pending_.push_back(std::move(rest));
    return signal(kExitCrashed);
}

sim::Task
RecoveryCoordinator::run()
{
    // A store with a crash anywhere in its schedule never volunteers
    // for recovery duty (it would abandon the re-dispatched work too).
    const int consumers = inj_.eligibleConsumers();
    for (int left = nProducers_; left > 0; --left) {
        auto exit = co_await exits_.get();
        assert(exit && "exit channel closed early");
        if (*exit == kExitClean)
            continue;
        assert(!pending_.empty() && "crash token without a spill");
        std::vector<ShardSpill> remaining = std::move(pending_.front());
        pending_.pop_front();
        // Tuner-side dead-store detection: probe with bounded
        // exponential backoff before re-assigning the shard.
        double backoff = inj_.plan().probeTimeoutS;
        for (int k = 0; k < inj_.plan().probeRetries; ++k) {
            co_await sim_.delay(backoff);
            inj_.report().degradedS += backoff;
            backoff *= 2.0;
        }
        for (const ShardSpill &spill : remaining) {
            if (consumers == 0) {
                inj_.noteUnrecovered(FaultClass::StoreCrash,
                                     spill.items);
                continue;
            }
            uint64_t left_items = spill.items;
            while (left_items > 0) {
                int n = static_cast<int>(std::min<uint64_t>(
                    static_cast<uint64_t>(orderBatch_), left_items));
                left_items -= static_cast<uint64_t>(n);
                co_await orders_.put(WorkOrder{spill.run, n});
            }
            inj_.report().itemsRedispatched += spill.items;
        }
        // Close the oldest open crash incident: recovered when
        // survivors absorbed the work, unrecovered otherwise (the
        // pop keeps the FIFO aligned either way).
        inj_.noteCrashHandled(consumers > 0);
    }
    orders_.close();
}

} // namespace ndp::sim
