#include "sim/arrival.h"

#include <algorithm>
#include <cmath>

namespace ndp::sim {

namespace {

constexpr double kTwoPi = 6.283185307179586;

} // namespace

const char *
requestKindName(RequestKind k)
{
    switch (k) {
      case RequestKind::Upload:
        return "upload";
      case RequestKind::Query:
        return "query";
    }
    return "?";
}

std::string
ArrivalConfig::validate() const
{
    if (nRequests == 0)
        return "ArrivalConfig: nRequests must be >= 1";
    if (nUsers == 0)
        return "ArrivalConfig: nUsers must be >= 1";
    if (baseRatePerSec <= 0.0)
        return "ArrivalConfig: baseRatePerSec must be > 0";
    if (interArrivalCv <= 0.0)
        return "ArrivalConfig: interArrivalCv must be > 0";
    if (queryShare < 0.0 || queryShare > 1.0)
        return "ArrivalConfig: queryShare must be in [0, 1]";
    if (diurnalAmplitude < 0.0 || diurnalAmplitude >= 1.0)
        return "ArrivalConfig: diurnalAmplitude must be in [0, 1) "
               "(the rate must stay positive)";
    if (diurnalPeriodS <= 0.0)
        return "ArrivalConfig: diurnalPeriodS must be > 0";
    if (sessionContinueP < 0.0 || sessionContinueP >= 1.0)
        return "ArrivalConfig: sessionContinueP must be in [0, 1)";
    if (maxActiveSessions == 0)
        return "ArrivalConfig: maxActiveSessions must be >= 1";
    if (uploadBytes <= 0.0 || queryBytes <= 0.0)
        return "ArrivalConfig: payload bytes must be > 0";
    if (uploadDeadlineS <= 0.0 || queryDeadlineS <= 0.0)
        return "ArrivalConfig: deadline budgets must be > 0";
    for (const SpikeSegment &sp : spikes) {
        if (sp.atS < 0.0)
            return "ArrivalConfig: spike atS must be >= 0";
        if (sp.durationS <= 0.0)
            return "ArrivalConfig: spike durationS must be > 0";
        if (sp.factor <= 0.0)
            return "ArrivalConfig: spike factor must be > 0";
    }
    return {};
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed ^ 0x0a11fee1dull)
{
    // Lognormal gap with mean 1 and the requested CV; next() scales it
    // by the instantaneous mean gap 1/rate(t).
    const double cv2 =
        cfg_.interArrivalCv * cfg_.interArrivalCv;
    gapSigma_ = std::sqrt(std::log1p(cv2));
    gapMu_ = -0.5 * gapSigma_ * gapSigma_;
    sessions_.reserve(
        std::min<uint64_t>(cfg_.maxActiveSessions, 1u << 20));
}

double
ArrivalProcess::rateAt(double t) const
{
    double rate = cfg_.baseRatePerSec;
    if (cfg_.diurnalAmplitude > 0.0)
        rate *= 1.0 + cfg_.diurnalAmplitude *
                          std::sin(kTwoPi *
                                   (t + cfg_.diurnalPhaseS) /
                                   cfg_.diurnalPeriodS);
    for (const SpikeSegment &sp : cfg_.spikes)
        if (t >= sp.atS && t < sp.atS + sp.durationS)
            rate *= sp.factor;
    return rate;
}

double
ArrivalProcess::expectedRequests(double from, double to) const
{
    if (to <= from)
        return 0.0;
    // Partition [from, to] at spike boundaries; within each segment
    // the spike factor is constant and the diurnal term integrates in
    // closed form.
    std::vector<double> cuts = {from, to};
    for (const SpikeSegment &sp : cfg_.spikes) {
        for (double b : {sp.atS, sp.atS + sp.durationS})
            if (b > from && b < to)
                cuts.push_back(b);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    auto diurnalIntegral = [this](double a, double b) {
        double v = b - a;
        if (cfg_.diurnalAmplitude > 0.0) {
            const double w = kTwoPi / cfg_.diurnalPeriodS;
            v += cfg_.diurnalAmplitude / w *
                 (std::cos(w * (a + cfg_.diurnalPhaseS)) -
                  std::cos(w * (b + cfg_.diurnalPhaseS)));
        }
        return v;
    };

    double total = 0.0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        const double a = cuts[i];
        const double b = cuts[i + 1];
        const double mid = 0.5 * (a + b);
        double factor = 1.0;
        for (const SpikeSegment &sp : cfg_.spikes)
            if (mid >= sp.atS && mid < sp.atS + sp.durationS)
                factor *= sp.factor;
        total += cfg_.baseRatePerSec * factor * diurnalIntegral(a, b);
    }
    return total;
}

uint64_t
ArrivalProcess::drawUser()
{
    if (!sessions_.empty() && rng_.chance(cfg_.sessionContinueP)) {
        // Continue a resident session (uniform over residents).
        const size_t idx = static_cast<size_t>(
            rng_.below(sessions_.size()));
        return sessions_[idx];
    }
    // Fresh session: uniform user, evicting the oldest resident once
    // the table is full (bounded memory over millions of users).
    const uint64_t user = rng_.below(cfg_.nUsers);
    ++sessionsStarted_;
    if (sessions_.size() <
        static_cast<size_t>(cfg_.maxActiveSessions)) {
        sessions_.push_back(user);
    } else {
        sessions_[evictCursor_] = user;
        evictCursor_ =
            (evictCursor_ + 1) % cfg_.maxActiveSessions;
    }
    return user;
}

bool
ArrivalProcess::next(Request &out)
{
    if (emitted_ >= cfg_.nRequests)
        return false;
    // Gap drawn at the instantaneous rate: lognormal(mean = 1/rate,
    // cv) — evaluating rate(t) at the left endpoint is exact for flat
    // segments and a slowly-varying approximation elsewhere (the
    // diurnal integral test bounds the error).
    const double rate = rateAt(nowS_);
    const double gap = std::exp(rng_.normal(gapMu_, gapSigma_)) / rate;
    nowS_ += gap;

    out.id = emitted_;
    out.user = drawUser();
    out.kind = rng_.chance(cfg_.queryShare) ? RequestKind::Query
                                            : RequestKind::Upload;
    out.arriveS = nowS_;
    if (out.kind == RequestKind::Query) {
        out.bytes = cfg_.queryBytes;
        out.deadlineS = nowS_ + cfg_.queryDeadlineS;
    } else {
        out.bytes = cfg_.uploadBytes;
        out.deadlineS = nowS_ + cfg_.uploadDeadlineS;
    }
    ++emitted_;
    return true;
}

} // namespace ndp::sim
