/**
 * @file
 * Open-loop workload generation for million-user serving scenarios.
 *
 * A closed-loop driver (fixed client count, next request only after
 * the previous response) self-throttles under overload and hides tail
 * latency — the coordinated-omission trap. Production photo traffic is
 * open-loop: arrivals keep coming at the offered rate whether or not
 * the fleet keeps up, which is exactly the regime where admission
 * control and shedding matter. This module generates such a stream:
 *
 *  - Inter-arrival gaps are lognormal (seeded, deterministic) with a
 *    configurable coefficient of variation: cv = 1 approximates
 *    Poisson burstiness, cv > 1 gives the heavier-tailed clustering
 *    photo uploads actually show.
 *  - The instantaneous rate follows a diurnal sinusoid (amplitude /
 *    period / phase) multiplied by flash-crowd spike segments —
 *    step-function overload windows for shedding and fault scenarios.
 *  - Users are lightweight sessions, not coroutines: the generator
 *    keeps a bounded table of resident sessions over a user
 *    population of millions and charges each request to one of them,
 *    so memory stays O(maxActiveSessions) no matter how many users
 *    the scenario declares.
 *
 * Determinism rule: the stream is a pure function of ArrivalConfig
 * (all draws route through one ndp::Rng seeded from cfg.seed), so two
 * generators with equal configs emit bit-identical Request sequences —
 * pinned by tests/test_serve_arrivals.cc.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"

namespace ndp::sim {

/** What a serving request asks the fleet to do. */
enum class RequestKind
{
    /** New photo: ship bytes to a store, preprocess, classify. */
    Upload,
    /** Retrieve a stored photo: disk read + reply transfer. */
    Query,
};

const char *requestKindName(RequestKind k);

/** One open-loop request as emitted by the generator. */
struct Request
{
    uint64_t id = 0;
    /** Owning user in [0, nUsers). */
    uint64_t user = 0;
    RequestKind kind = RequestKind::Query;
    /** Absolute arrival time, simulated seconds. */
    double arriveS = 0.0;
    /** Absolute completion deadline (arriveS + per-kind budget). */
    double deadlineS = 0.0;
    /** Payload: upload body or query reply, bytes. */
    double bytes = 0.0;
};

/** Flash-crowd segment: rate multiplied by @p factor inside the
 *  window [atS, atS + durationS). */
struct SpikeSegment
{
    double atS = 0.0;
    double durationS = 0.0;
    double factor = 1.0;
};

struct ArrivalConfig
{
    /** Requests the stream emits in total. */
    uint64_t nRequests = 100000;
    /** User population sessions draw from. */
    uint64_t nUsers = 1000000;
    /** Offered rate at diurnal midpoint, requests/s. */
    double baseRatePerSec = 2000.0;
    /** Coefficient of variation of the lognormal inter-arrival gaps. */
    double interArrivalCv = 1.2;
    /** Fraction of requests that are queries (rest are uploads). */
    double queryShare = 0.7;

    /** @name Diurnal rate curve
     * rate(t) = base * (1 + amplitude * sin(2*pi*(t+phase)/period)).
     * amplitude 0 keeps the rate flat.
     * @{ */
    double diurnalAmplitude = 0.0;
    double diurnalPeriodS = 86400.0;
    double diurnalPhaseS = 0.0;
    /** @} */

    /** Flash-crowd multipliers (may overlap; factors compose). */
    std::vector<SpikeSegment> spikes;

    /** @name Session model
     * A request continues one of the resident sessions with
     * probability sessionContinueP, otherwise a fresh session starts
     * for a uniformly drawn user (evicting the oldest resident when
     * the table is full).
     * @{ */
    double sessionContinueP = 0.6;
    uint32_t maxActiveSessions = 4096;
    /** @} */

    /** @name Per-kind payload and deadline budget
     * @{ */
    double uploadBytes = 2.7e6;
    double queryBytes = 2.0e4;
    double uploadDeadlineS = 2.0;
    double queryDeadlineS = 0.5;
    /** @} */

    uint64_t seed = 42;

    /** Empty string when valid; otherwise names the offending field. */
    std::string validate() const;
};

/**
 * Pull-based generator: each next() call advances the stream clock by
 * one lognormal gap (mean 1/rate(t)) and fills in the next Request.
 * The caller — typically a single arrival coroutine — owns the pacing
 * (co_await sim.delay(...) up to Request::arriveS); the generator
 * itself never touches the event queue.
 */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(const ArrivalConfig &cfg);

    /** Emit the next request; false once nRequests were produced. */
    bool next(Request &out);

    /** Stream clock: arrival time of the last emitted request. */
    double now() const { return nowS_; }

    uint64_t emitted() const { return emitted_; }

    /** Instantaneous offered rate at time @p t, requests/s. */
    double rateAt(double t) const;

    /**
     * Closed-form integral of rateAt over [from, to]: the expected
     * number of arrivals in the window (tests compare the emitted
     * count against this).
     */
    double expectedRequests(double from, double to) const;

    /** @name Session accounting
     * @{ */
    uint64_t sessionsStarted() const { return sessionsStarted_; }
    uint32_t activeSessions() const
    {
        return static_cast<uint32_t>(sessions_.size());
    }
    /** @} */

  private:
    uint64_t drawUser();

    ArrivalConfig cfg_;
    Rng rng_;
    double nowS_ = 0.0;
    uint64_t emitted_ = 0;
    uint64_t sessionsStarted_ = 0;
    /** Resident session ring: user ids, oldest first. */
    std::vector<uint64_t> sessions_;
    uint32_t evictCursor_ = 0;
    /** Lognormal parameters derived once from (mean=1, cv). */
    double gapMu_ = 0.0;
    double gapSigma_ = 0.0;
};

} // namespace ndp::sim
