/**
 * @file
 * Cyclic barrier for lock-step phases (e.g. all-reduce rounds).
 *
 * N parties `co_await barrier.arrive()`; the first N-1 suspend and the
 * N-th releases everyone, after which the barrier resets for the next
 * round. This is exactly the coupling a data-parallel weight
 * synchronization imposes: every iteration, the fastest workers wait
 * for the slowest (§4.1) — the behaviour FT-DMP's no-sync design
 * removes.
 */

#pragma once

#include <cassert>
#include <coroutine>
#include <vector>

#include "sim/simulator.h"

namespace ndp::sim {

class Barrier
{
  public:
    Barrier(Simulator &s, int parties) : sim(s), parties(parties)
    {
        assert(parties > 0);
    }

    /** Awaitable: suspends until all parties have arrived. */
    auto
    arrive()
    {
        struct Awaiter
        {
            Barrier &b;

            bool
            await_ready()
            {
                if (b.arrived + 1 == b.parties) {
                    // Last arrival: release the round.
                    b.arrived = 0;
                    ++b.rounds;
                    for (auto h : b.waiters)
                        b.sim.scheduleHandle(0.0, h);
                    b.waiters.clear();
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                ++b.arrived;
                b.waiters.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /**
     * A party leaves the barrier for good (a crashed store in the
     * synchronized "+FC" fleet). If the remaining parties are all
     * already waiting, the round releases immediately — without this
     * a single dead store would block every all-reduce forever.
     */
    void
    leave()
    {
        assert(parties > 0);
        --parties;
        if (parties > 0 && arrived == parties) {
            arrived = 0;
            ++rounds;
            for (auto h : waiters)
                sim.scheduleHandle(0.0, h);
            waiters.clear();
        }
    }

    /** Parties still participating. */
    int partyCount() const { return parties; }

    /** Completed rounds. */
    uint64_t completedRounds() const { return rounds; }

    /** Parties currently blocked at the barrier. */
    int waiting() const { return arrived; }

  private:
    Simulator &sim;
    int parties;
    int arrived = 0;
    uint64_t rounds = 0;
    std::vector<std::coroutine_handle<>> waiters;
};

} // namespace ndp::sim
