/**
 * @file
 * Go-style wait group for joining a dynamic set of processes.
 *
 * A coordinator calls add(n) before spawning n workers, each worker calls
 * done() on exit, and the coordinator `co_await wg.wait()`s until the
 * counter reaches zero.
 */

#pragma once

#include <cassert>
#include <coroutine>
#include <vector>

#include "sim/simulator.h"

namespace ndp::sim {

class WaitGroup
{
  public:
    explicit WaitGroup(Simulator &s) : sim(s) {}

    void
    add(int n = 1)
    {
        assert(n > 0);
        count += n;
    }

    void
    done()
    {
        assert(count > 0 && "done() without matching add()");
        if (--count == 0) {
            for (auto h : waiters)
                sim.scheduleHandle(0.0, h);
            waiters.clear();
        }
    }

    /** Awaitable completing once the counter reaches zero. */
    auto
    wait()
    {
        struct Awaiter
        {
            WaitGroup &wg;

            bool await_ready() const noexcept { return wg.count == 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                wg.waiters.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    int pending() const { return count; }

  private:
    Simulator &sim;
    int count = 0;
    std::vector<std::coroutine_handle<>> waiters;
};

} // namespace ndp::sim
