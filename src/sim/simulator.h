/**
 * @file
 * Discrete-event simulator core.
 *
 * Time is a double in seconds. Events are (time, sequence) ordered so that
 * events scheduled at the same instant fire in FIFO order, which makes the
 * simulation fully deterministic.
 */

#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task.h"

namespace ndp::sim {

/** Simulated time in seconds. */
using Time = double;

class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time in seconds. */
    Time now() const { return curTime; }

    /** Schedule a callback @p delay seconds from now (delay >= 0). */
    void schedule(Time delay, std::function<void()> fn);

    /** Schedule resumption of a suspended coroutine @p delay from now. */
    void scheduleHandle(Time delay, std::coroutine_handle<> h);

    /**
     * Spawn a root process. The simulator takes ownership of the task and
     * resumes it at the current simulation time.
     */
    void spawn(Task t);

    /** Run until the event queue drains. @return final simulated time. */
    Time run();

    /**
     * Run all events with timestamp <= @p t, then set now() to @p t.
     * @return true if the event queue still has pending events.
     */
    bool runUntil(Time t);

    /** Awaitable that suspends the current process for @p d seconds. */
    auto
    delay(Time d)
    {
        struct Awaiter
        {
            Simulator &sim;
            Time d;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sim.scheduleHandle(d, h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, d};
    }

    /** Total number of events processed so far. */
    uint64_t processedEvents() const { return nProcessed; }

    /** Number of events still pending. */
    size_t pendingEvents() const { return queue.size(); }

    /** Drop root tasks that have completed, releasing their frames. */
    void reapFinished();

  private:
    struct Event
    {
        Time when;
        uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    void dispatchOne();

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    std::vector<Task> rootTasks;
    Time curTime = 0.0;
    uint64_t nextSeq = 0;
    uint64_t nProcessed = 0;
};

} // namespace ndp::sim
