/**
 * @file
 * Deterministic fault injection for the simulated PipeStore cluster.
 *
 * The paper's FT-DMP argument (§4.1/§5.1) is that PipeStores share no
 * trainable weights, so a slow or dead store should only delay — or
 * shrink — its own sub-dataset shard. This module makes that claim
 * testable: a FaultPlan is a seeded, fully declarative schedule of
 * faults, and a FaultInjector is the runtime the dataflows consult at
 * instrumented points:
 *
 *  - StoreCrash:  the store's front stage stops producing at time t.
 *                 In-flight batches drain (they were already read);
 *                 the remainder of the store's shard is spilled to the
 *                 RecoveryCoordinator for re-dispatch.
 *  - StoreStall:  the front stage pauses inside [t, t+d) and resumes
 *                 on its own — a transient brown-out (compaction,
 *                 thermal throttling).
 *  - ReadError:   each object-store read fails with probability p; the
 *                 store retries with bounded exponential backoff and a
 *                 store that exhausts the retry budget is declared
 *                 dead (escalates to StoreCrash semantics).
 *  - MessageLoss: a delta-distribution (or online-upload) message is
 *                 lost with probability p and must be retransmitted.
 *  - LinkDegrade: the node's NIC runs at capacity * factor inside
 *                 [t, t+d) — a congested or renegotiated link. Flows
 *                 slow down but keep draining (stall semantics: the
 *                 delay is absorbed, nothing is lost).
 *  - LinkDown:    the node's NIC carries nothing inside [t, t+d);
 *                 in-flight flows freeze in place and resume when the
 *                 window closes — the fluid-flow analogue of the
 *                 message-loss-and-retransmit path, with the retry
 *                 traffic made implicit by conservation.
 *
 * Link faults are consumed by net::NetFabric (attachFaults); the
 * injector only parses and carries them so one FaultPlan stays the
 * single declarative schedule for a run.
 *
 * Determinism rule: every stochastic draw routes through a per-store
 * ndp::Rng stream derived from FaultPlan::seed — never wall clock —
 * so a faulted run is a pure function of (config, plan) and two runs
 * with the same seed produce bit-identical reports.
 *
 * An unarmed injector (default-constructed, or armed with an empty
 * plan) must be a zero-cost no-op: hooks guard on armed() and perform
 * no RNG draws, no event scheduling, and no awaits, so all golden
 * figures stay bitwise identical when no faults are requested.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <vector>

#include "sim/channel.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_group.h"

namespace ndp::sim {

/** Fault kinds the simulator can inject. */
enum class FaultKind
{
    StoreCrash,
    StoreStall,
    ReadError,
    MessageLoss,
    LinkDegrade,
    LinkDown,
};

/**
 * Typed classification of a fault outcome. `None` means the run
 * completed clean or every injected fault was recovered; any other
 * value names the class of the first *unrecovered* fault — the typed
 * error the scenario tests assert instead of a sentinel value.
 */
enum class FaultClass
{
    None,
    StoreCrash,
    StoreStall,
    IoError,
    MessageLoss,
    OutOfMemory,
};

const char *faultKindName(FaultKind k);
const char *faultClassName(FaultClass c);

/**
 * Observer of fault lifecycle transitions (obs::HealthMonitor). Every
 * incident is described by three instants, all simulated seconds:
 * *opened* (when the fault began affecting the run), *detected* (when
 * an instrumented point first observed it), and *recovered* (when the
 * recovery policy finished handling it). Both latencies are measured
 * from the opened instant, so time-to-detect <= time-to-recover holds
 * per incident by construction. Callbacks must be passive (record
 * only): the injector invokes them mid-simulation and the observer
 * must not perturb the event sequence.
 */
class FaultObserver
{
  public:
    virtual ~FaultObserver() = default;

    virtual void onFaultDetected(FaultKind kind, int store,
                                 double opened_s, double detected_s) = 0;
    virtual void onFaultRecovered(FaultKind kind, int store,
                                  double opened_s,
                                  double recovered_s) = 0;
};

/** One scheduled fault. `store == kAnyStore` targets every store. */
struct FaultSpec
{
    static constexpr int kAnyStore = -1;
    /** Link-fault target: the fabric's designated ingress node (the
     *  Tuner / host NIC) rather than a store NIC. */
    static constexpr int kIngressLink = -2;
    /** WAN-fault target: every WAN trunk in the topology. */
    static constexpr int kAnySite = -1;

    FaultKind kind = FaultKind::StoreCrash;
    int store = kAnyStore;
    /** Trigger time for crash/stall/link faults, simulated seconds. */
    double atS = 0.0;
    /** Window length; the store/link recovers at atS + durationS. */
    double durationS = 0.0;
    /** Per-event probability for ReadError / MessageLoss. */
    double probability = 0.0;
    /** Capacity multiplier for LinkDegrade, in (0, 1]. */
    double factor = 1.0;
    /** Link fault targets WAN trunks instead of node NICs; `store`
     *  then holds a SiteId (or kAnySite). */
    bool wan = false;
};

/**
 * Declarative, seeded fault schedule plus the recovery-policy knobs.
 * An empty plan (no faults) arms nothing and perturbs nothing.
 */
struct FaultPlan
{
    uint64_t seed = 0x5eedfa17u;
    std::vector<FaultSpec> faults;

    /** @name Recovery policy (bounded exponential backoff)
     * @{ */
    /** First I/O-retry backoff; doubles per attempt. */
    double ioRetryBackoffS = 0.05;
    /** Read attempts before a store is declared dead. */
    int ioRetryLimit = 5;
    /** Tuner-side probe timeout before declaring a store dead. */
    double probeTimeoutS = 1.0;
    /** Dead-store probes (timeouts double) before re-dispatch. */
    int probeRetries = 3;
    /** First delta-retransmission backoff; doubles per attempt. */
    double msgRetryBackoffS = 0.1;
    /** Retransmissions before a delta push is abandoned. */
    int msgRetryLimit = 5;
    /** @} */

    bool empty() const { return faults.empty(); }

    /** @name Builder helpers
     * @{ */
    FaultPlan &crashStore(int store, double at_s);
    FaultPlan &stallStore(int store, double at_s, double duration_s);
    FaultPlan &readErrors(double p, int store = FaultSpec::kAnyStore);
    FaultPlan &loseMessages(double p, int store = FaultSpec::kAnyStore);
    /** @p node may be a store index, kAnyStore, or kIngressLink. */
    FaultPlan &degradeLink(int node, double at_s, double duration_s,
                           double factor);
    FaultPlan &downLink(int node, double at_s, double duration_s);
    /** WAN variants: every WAN trunk touching @p site (kAnySite =
     *  all of them) runs at capacity * factor / carries nothing. */
    FaultPlan &degradeWanLink(int site, double at_s,
                              double duration_s, double factor);
    FaultPlan &downWanLink(int site, double at_s, double duration_s);
    /** @} */

    /** Empty string when valid; otherwise names the offending field. */
    std::string validate() const;
};

/**
 * What the injector did to a run. Every figure bench can state which
 * faults it survived; the determinism suite compares these
 * bit-for-bit across same-seed runs.
 */
struct FaultReport
{
    /** @name Injected
     * @{ */
    uint64_t crashes = 0;
    uint64_t stalls = 0;
    uint64_t ioErrors = 0;
    uint64_t messagesLost = 0;
    /** Link-degrade windows observed by the fabric. */
    uint64_t linkDegrades = 0;
    /** Link-down windows observed by the fabric. */
    uint64_t linkDowns = 0;
    /** @} */

    /** @name Recovered
     * @{ */
    /** Read retries that eventually succeeded. */
    uint64_t ioRetries = 0;
    /** Delta/upload retransmissions. */
    uint64_t messagesResent = 0;
    /** Items re-assigned from dead stores to survivors. */
    uint64_t itemsRedispatched = 0;
    /** @} */

    /** @name Unrecovered
     * @{ */
    /** Items permanently lost (no surviving store to re-dispatch to,
     *  or a synchronized "+FC" fleet that cannot re-assign work). */
    uint64_t itemsLost = 0;
    /** Delta pushes abandoned after the retry budget. */
    uint64_t deltaPushFailures = 0;
    /** Class of the first unrecovered fault; None if all recovered. */
    FaultClass terminal = FaultClass::None;
    /** @} */

    /** Simulated seconds spent stalled, backing off, or probing. */
    double degradedS = 0.0;

    /** @name Detection ledger (always on, pure arithmetic)
     * One incident = one fault window or one exhausted/recovered
     * retry loop. Latencies are measured from the incident's *opened*
     * time (see FaultObserver), so detect <= recover per incident.
     * @{ */
    /** Incidents an instrumented point observed. */
    uint64_t faultsDetected = 0;
    /** Incidents the recovery policy closed successfully. */
    uint64_t faultsRecovered = 0;
    double timeToDetectSumS = 0.0;
    double timeToDetectMaxS = 0.0;
    double timeToRecoverSumS = 0.0;
    double timeToRecoverMaxS = 0.0;
    /** @} */

    bool
    anyInjected() const
    {
        return crashes + stalls + ioErrors + messagesLost +
                   linkDegrades + linkDowns >
               0;
    }

    bool
    recovered() const
    {
        return terminal == FaultClass::None;
    }

    FaultReport &
    operator+=(const FaultReport &o)
    {
        crashes += o.crashes;
        stalls += o.stalls;
        ioErrors += o.ioErrors;
        messagesLost += o.messagesLost;
        linkDegrades += o.linkDegrades;
        linkDowns += o.linkDowns;
        ioRetries += o.ioRetries;
        messagesResent += o.messagesResent;
        itemsRedispatched += o.itemsRedispatched;
        itemsLost += o.itemsLost;
        deltaPushFailures += o.deltaPushFailures;
        degradedS += o.degradedS;
        faultsDetected += o.faultsDetected;
        faultsRecovered += o.faultsRecovered;
        timeToDetectSumS += o.timeToDetectSumS;
        timeToDetectMaxS = std::max(timeToDetectMaxS,
                                    o.timeToDetectMaxS);
        timeToRecoverSumS += o.timeToRecoverSumS;
        timeToRecoverMaxS = std::max(timeToRecoverMaxS,
                                     o.timeToRecoverMaxS);
        if (terminal == FaultClass::None)
            terminal = o.terminal;
        return *this;
    }
};

/**
 * Runtime the dataflows consult at instrumented points. One injector
 * serves one simulation run; it holds per-store fault schedules, the
 * per-store RNG streams, and the accumulated FaultReport.
 *
 * Thread the injector through a PipelineSpec (or use the query API
 * directly from bespoke coroutines). All queries are O(active faults
 * on that store) and schedule nothing themselves; the *caller* awaits
 * any delay the policy demands, so an unarmed injector never changes
 * the event sequence.
 */
class FaultInjector
{
  public:
    /** Unarmed: every query is an inert no-op. */
    FaultInjector() = default;

    FaultInjector(Simulator &s, const FaultPlan &plan, int n_stores);

    /** True when a non-empty plan is loaded. */
    bool armed() const { return sim_ != nullptr && !plan_.empty(); }

    const FaultPlan &plan() const { return plan_; }

    /** @name Schedule queries (no RNG, no side effects on timing)
     * @{ */
    /** A crash fault targets @p store (fired or not). Stores with a
     *  scheduled crash never volunteer for re-dispatch duty. */
    bool crashScheduled(int store) const;

    /** Crash trigger time for @p store; +inf when none. */
    double crashTimeOf(int store) const;

    /**
     * True once @p now has passed the store's crash time (or the
     * store was declared dead by I/O escalation). First observation
     * counts the crash in the report.
     */
    bool crashed(int store, double now);

    /**
     * Seconds the store must stall from @p now to clear every active
     * stall window; 0 when none is active. Counts each window once.
     */
    double stallDelay(int store, double now);
    /** @} */

    /** @name Stochastic draws (per-store seeded streams)
     * @{ */
    /** Draw a read failure for the next object-store read. */
    bool drawReadError(int store);

    /** Draw a loss for the next distribution/upload message. */
    bool drawMessageLoss(int store);
    /** @} */

    /** Escalate @p store to dead (I/O retry budget exhausted). */
    void declareDead(int store);

    /** @name Recovery notes (close open detection-ledger incidents)
     * The recovery paths report how each detected incident ended:
     * notes are pure arithmetic on the ledger (plus an optional
     * observer callback) and never touch the RNG streams or timing,
     * so the existing report counters stay bit-identical.
     * @{ */
    /** The oldest observed crash finished recovery handling
     *  (@p recovered: survivors absorbed the work / the LB rerouted;
     *  false when the shard was typed as lost instead). */
    void noteCrashHandled(bool recovered);

    /** The read-retry loop on @p store exited successfully. */
    void noteIoRecovered(int store);

    /** The retransmit loop on @p store exited successfully. */
    void noteMsgRecovered(int store);

    /** The retransmit loop on @p store exhausted its budget. */
    void noteMsgAbandoned(int store);
    /** @} */

    /** Attach a lifecycle observer (nullable; see FaultObserver). */
    void attachObserver(FaultObserver *obs) { observer_ = obs; }

    /** Stores with no scheduled crash: re-dispatch volunteers. */
    int eligibleConsumers() const;

    /**
     * One parsed LinkDegrade/LinkDown window, node id kept exactly as
     * declared (store index, kAnyStore, or kIngressLink) — the fabric
     * resolves targets against its own topology in attachFaults().
     */
    struct LinkFault
    {
        FaultKind kind = FaultKind::LinkDegrade;
        /** Node id as declared — or a SiteId when wan is set. */
        int node = FaultSpec::kAnyStore;
        double fromS = 0.0;
        double untilS = 0.0;
        double factor = 1.0;
        /** Targets WAN trunks of the named site, not node NICs. */
        bool wan = false;
    };

    const std::vector<LinkFault> &linkFaults() const
    {
        return linkFaults_;
    }

    FaultReport &report() { return report_; }
    const FaultReport &report() const { return report_; }

    /** Record an unrecovered fault of class @p c (first one wins). */
    void
    noteUnrecovered(FaultClass c, uint64_t items_lost)
    {
        report_.itemsLost += items_lost;
        if (report_.terminal == FaultClass::None)
            report_.terminal = c;
    }

  private:
    struct StallWindow
    {
        double fromS = 0.0;
        double untilS = 0.0;
        bool counted = false;
    };

    struct StoreState
    {
        double crashAtS = std::numeric_limits<double>::infinity();
        bool crashCounted = false;
        bool dead = false;
        std::vector<StallWindow> stalls;
        double readErrorP = 0.0;
        double msgLossP = 0.0;
        /** Open retry-loop incidents: opened time, or -1 when none. */
        double ioOpenS = -1.0;
        double msgOpenS = -1.0;
        Rng rng;
    };

    /** One crash awaiting its recovery outcome (FIFO by detection). */
    struct PendingCrash
    {
        int store = 0;
        double openedS = 0.0;
    };

    StoreState *stateOf(int store);
    const StoreState *stateOf(int store) const;

    void recordDetected(FaultKind kind, int store, double opened_s,
                        double detected_s);
    void recordRecovered(FaultKind kind, int store, double opened_s,
                         double recovered_s);

    Simulator *sim_ = nullptr;
    FaultPlan plan_;
    std::vector<StoreState> stores_;
    std::vector<LinkFault> linkFaults_;
    FaultReport report_;
    std::deque<PendingCrash> crashPending_;
    FaultObserver *observer_ = nullptr;
};

/** One chunk of re-dispatched work: @p items of pipeline run @p run. */
struct WorkOrder
{
    int run = 0;
    int items = 0;
};

/** A dying producer's remaining share of one run. */
struct ShardSpill
{
    int run = 0;
    uint64_t items = 0;
};

/**
 * Tuner-side recovery: collects the shards dead stores abandoned and
 * re-dispatches them to surviving stores as WorkOrders on a shared
 * multi-consumer channel (FT-DMP shares no weights, so recovery is
 * pure work re-assignment, §5.1). Each producer reports exactly once
 * — clean exit or crash-with-remainder; after a crash the
 * coordinator probes the dead store with bounded exponential backoff
 * (the per-run timeout policy) before declaring it dead and emitting
 * orders. With no surviving consumer the shard is typed as lost
 * instead of hanging.
 */
class RecoveryCoordinator
{
  public:
    RecoveryCoordinator(Simulator &s, FaultInjector &inj,
                        int n_producers, int order_batch);

    /** Re-dispatch orders; survivors' pipelines consume this. */
    Channel<WorkOrder> &orders() { return orders_; }

    /** @name Producer-side reporting (awaitable, never blocks)
     * @{ */
    /** Producer finished its shard normally. */
    [[nodiscard]] Task producerDone();

    /**
     * Producer observed its crash; hand over the remainder. The spill
     * is stored synchronously before the returned task signals the
     * coordinator — only a trivially-copyable token ever crosses a
     * coroutine frame (non-trivial coroutine parameters are a
     * lifetime hazard, the by-value cousin of coroutine-ref-param).
     */
    [[nodiscard]] Task producerCrashed(std::vector<ShardSpill> rest);
    /** @} */

    /** Coordinator process; spawn once on the simulator. */
    [[nodiscard]] Task run();

  private:
    /** Exit token: one per producer. */
    enum ExitKind : int
    {
        kExitClean = 0,
        kExitCrashed = 1,
    };

    [[nodiscard]] Task signal(int token);

    Simulator &sim_;
    FaultInjector &inj_;
    int nProducers_;
    int orderBatch_;
    Channel<int> exits_;
    Channel<WorkOrder> orders_;
    /** Spills handed over by crashed producers, in signal order. */
    std::deque<std::vector<ShardSpill>> pending_;
};

} // namespace ndp::sim
