#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace ndp::sim {

void
Simulator::schedule(Time delay, std::function<void()> fn)
{
    assert(delay >= 0.0 && "cannot schedule events in the past");
    queue.push(Event{curTime + delay, nextSeq++, std::move(fn)});
}

void
Simulator::scheduleHandle(Time delay, std::coroutine_handle<> h)
{
    schedule(delay, [h] { h.resume(); });
}

void
Simulator::spawn(Task t)
{
    assert(t.valid() && "cannot spawn an empty task");
    auto h = t.rawHandle();
    rootTasks.push_back(std::move(t));
    schedule(0.0, [h] { h.resume(); });
}

void
Simulator::dispatchOne()
{
    // Copy out the event before popping: fn may schedule new events.
    Event ev = queue.top();
    queue.pop();
    curTime = ev.when;
    ++nProcessed;
    ev.fn();
}

Time
Simulator::run()
{
    while (!queue.empty())
        dispatchOne();
    return curTime;
}

bool
Simulator::runUntil(Time t)
{
    while (!queue.empty() && queue.top().when <= t)
        dispatchOne();
    if (t > curTime)
        curTime = t;
    return !queue.empty();
}

void
Simulator::reapFinished()
{
    std::erase_if(rootTasks, [](const Task &t) { return t.done(); });
}

} // namespace ndp::sim
