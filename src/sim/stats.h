/**
 * @file
 * Small statistics accumulators used across the simulator and benches.
 */

#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ndp {

/** Streaming mean/variance/min/max via Welford's algorithm. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n;
        double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
        total += x;
    }

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? meanVal : 0.0; }

    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n ? minVal : 0.0; }
    double max() const { return n ? maxVal : 0.0; }

    /** Combine another accumulator into this one (Chan's parallel
     *  variant of Welford): the result matches feeding both sample
     *  streams through a single accumulator. */
    void
    merge(const RunningStat &o)
    {
        if (o.n == 0)
            return;
        if (n == 0) {
            *this = o;
            return;
        }
        uint64_t nc = n + o.n;
        double delta = o.meanVal - meanVal;
        m2 += o.m2 + delta * delta * static_cast<double>(n) *
                         static_cast<double>(o.n) /
                         static_cast<double>(nc);
        meanVal += delta * static_cast<double>(o.n) /
                   static_cast<double>(nc);
        n = nc;
        total += o.total;
        minVal = std::min(minVal, o.minVal);
        maxVal = std::max(maxVal, o.maxVal);
    }

  private:
    uint64_t n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/** Retains samples and answers percentile queries (for latency tails). */
class SampleStat
{
  public:
    void
    add(double x)
    {
        samples.push_back(x);
        sorted = false;
    }

    size_t count() const { return samples.size(); }

    double
    percentile(double p)
    {
        if (samples.empty())
            return 0.0;
        if (!sorted) {
            std::sort(samples.begin(), samples.end());
            sorted = true;
        }
        double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
        size_t lo = static_cast<size_t>(rank);
        size_t hi = std::min(lo + 1, samples.size() - 1);
        double frac = rank - static_cast<double>(lo);
        return samples[lo] * (1.0 - frac) + samples[hi] * frac;
    }

    double median() { return percentile(50.0); }

    /** Append another accumulator's samples to this one. */
    void
    merge(const SampleStat &o)
    {
        samples.insert(samples.end(), o.samples.begin(),
                       o.samples.end());
        sorted = false;
    }

    double
    mean() const
    {
        if (samples.empty())
            return 0.0;
        double s = 0.0;
        for (double x : samples)
            s += x;
        return s / static_cast<double>(samples.size());
    }

  private:
    std::vector<double> samples;
    bool sorted = false;
};

/**
 * HDR-style log-bucketed latency histogram.
 *
 * Values (seconds) are quantized to integer units of `unitS` and
 * binned into power-of-two buckets, each split into 2^subBucketBits
 * linear sub-buckets — the classic HdrHistogram layout. Recording and
 * quantile extraction use only integer arithmetic on the quantized
 * units, so results are a pure function of the sample stream:
 * same-seed runs produce bit-identical percentiles, and SampleStat's
 * retain-everything memory cost is avoided (a shard is a fixed ~4 K
 * counter array regardless of how many million requests it absorbs).
 *
 * Error bound: an extracted quantile differs from the recorded value
 * by at most one unit of quantization plus the bucket's equivalent
 * range — relative error <= 1 / 2^(subBucketBits-1) once values exceed
 * the linear region (see equivalentRangeS). tests/test_sim_hist.cc
 * pins this bound property-style.
 *
 * Shards recorded on different nodes merge by elementwise counter
 * addition; merge(a, b) then extracts exactly the quantiles of the
 * combined stream (also pinned by test).
 */
class LatencyHistogram
{
  public:
    /** @p unit_s: smallest discernible value (default 1 us);
     *  @p sub_bucket_bits: log2 of linear sub-buckets per octave
     *  (default 7 -> 128 sub-buckets, <= 1.6 % relative error). */
    explicit LatencyHistogram(double unit_s = 1e-6,
                              int sub_bucket_bits = 7)
        : unitS_(unit_s), subBucketBits_(sub_bucket_bits)
    {
        assert(unit_s > 0.0);
        assert(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
        subBucketCount_ = uint64_t{1} << subBucketBits_;
        subBucketHalf_ = subBucketCount_ >> 1;
        subBucketMask_ = subBucketCount_ - 1;
        // One half-bucket row per octave above the linear region plus
        // the full linear region; 64-bit units can never index past
        // this, so record() needs no growth path.
        const int octaves = 64 - subBucketBits_ + 1;
        counts_.assign(
            static_cast<size_t>(octaves + 1) * subBucketHalf_ +
                subBucketHalf_,
            0);
    }

    void
    record(double seconds)
    {
        const uint64_t u = toUnits(seconds);
        ++counts_[countsIndex(u)];
        ++n_;
        sum_ += seconds;
        minV_ = std::min(minV_, seconds);
        maxV_ = std::max(maxV_, seconds);
    }

    uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const
    {
        return n_ ? sum_ / static_cast<double>(n_) : 0.0;
    }
    /** Exact (unquantized) extremes of the recorded stream. */
    double min() const { return n_ ? minV_ : 0.0; }
    double max() const { return n_ ? maxV_ : 0.0; }

    /**
     * Deterministic quantile: the equivalent-range midpoint of the
     * bucket holding the ceil(p/100 * count)-th smallest sample.
     * @p p in [0, 100]; 0 on an empty histogram.
     */
    double
    percentile(double p) const
    {
        if (n_ == 0)
            return 0.0;
        const double want = p / 100.0 * static_cast<double>(n_);
        uint64_t target =
            static_cast<uint64_t>(std::ceil(want));
        target = std::min(std::max<uint64_t>(target, 1), n_);
        uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= target)
                return midpointS(i);
        }
        return midpointS(counts_.size() - 1);
    }

    /**
     * Width (seconds) of the bucket that @p seconds falls into: every
     * recorded value is indistinguishable from the extracted quantile
     * within this range plus one quantization unit.
     */
    double
    equivalentRangeS(double seconds) const
    {
        const uint64_t u = toUnits(seconds);
        const int b = bucketIndex(u);
        return static_cast<double>(uint64_t{1} << b) * unitS_;
    }

    /** Upper bound of the relative bucket error (unit floor excluded). */
    double
    relativeResolution() const
    {
        return 1.0 / static_cast<double>(subBucketHalf_);
    }

    /**
     * Elementwise counter merge: afterwards percentile() answers for
     * the combined stream exactly as if every sample had been recorded
     * here. Shards must share (unitS, subBucketBits).
     */
    void
    merge(const LatencyHistogram &o)
    {
        assert(o.subBucketBits_ == subBucketBits_ &&
               o.unitS_ == unitS_ && "merging incompatible shards");
        for (size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += o.counts_[i];
        n_ += o.n_;
        sum_ += o.sum_;
        minV_ = std::min(minV_, o.minV_);
        maxV_ = std::max(maxV_, o.maxV_);
    }

  private:
    uint64_t
    toUnits(double seconds) const
    {
        if (seconds <= 0.0)
            return 0;
        const double u = seconds / unitS_;
        // Saturate far below 2^64 so index math cannot overflow.
        if (u >= 9.0e18)
            return uint64_t{9000000000000000000ull};
        return static_cast<uint64_t>(u);
    }

    int
    bucketIndex(uint64_t u) const
    {
        // Octave of the value's MSB above the linear region; 0 inside.
        return std::bit_width(u | subBucketMask_) - subBucketBits_;
    }

    size_t
    countsIndex(uint64_t u) const
    {
        const int b = bucketIndex(u);
        if (b == 0)
            return static_cast<size_t>(u); // linear region
        // For b >= 1 the MSB guarantees sub in [half, 2*half).
        const uint64_t sub = u >> b;
        return static_cast<size_t>(
            (static_cast<uint64_t>(b) + 1) * subBucketHalf_ +
            (sub - subBucketHalf_));
    }

    /** Midpoint (seconds) of the equivalent value range of counts
     *  index @p i — the inverse of countsIndex. */
    double
    midpointS(size_t i) const
    {
        uint64_t bucket;
        uint64_t sub;
        if (i < subBucketCount_) {
            bucket = 0;
            sub = i;
        } else {
            bucket = i / subBucketHalf_ - 1;
            sub = i % subBucketHalf_ + subBucketHalf_;
        }
        const uint64_t lo = sub << bucket;
        const uint64_t hi = ((sub + 1) << bucket) - 1;
        return (static_cast<double>(lo) + static_cast<double>(hi) +
                1.0) /
               2.0 * unitS_;
    }

    double unitS_;
    int subBucketBits_;
    uint64_t subBucketCount_ = 0;
    uint64_t subBucketHalf_ = 0;
    uint64_t subBucketMask_ = 0;
    std::vector<uint64_t> counts_;
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double minV_ = std::numeric_limits<double>::infinity();
    double maxV_ = -std::numeric_limits<double>::infinity();
};

} // namespace ndp
