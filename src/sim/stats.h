/**
 * @file
 * Small statistics accumulators used across the simulator and benches.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace ndp {

/** Streaming mean/variance/min/max via Welford's algorithm. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n;
        double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
        total += x;
    }

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? meanVal : 0.0; }

    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n ? minVal : 0.0; }
    double max() const { return n ? maxVal : 0.0; }

    /** Combine another accumulator into this one (Chan's parallel
     *  variant of Welford): the result matches feeding both sample
     *  streams through a single accumulator. */
    void
    merge(const RunningStat &o)
    {
        if (o.n == 0)
            return;
        if (n == 0) {
            *this = o;
            return;
        }
        uint64_t nc = n + o.n;
        double delta = o.meanVal - meanVal;
        m2 += o.m2 + delta * delta * static_cast<double>(n) *
                         static_cast<double>(o.n) /
                         static_cast<double>(nc);
        meanVal += delta * static_cast<double>(o.n) /
                   static_cast<double>(nc);
        n = nc;
        total += o.total;
        minVal = std::min(minVal, o.minVal);
        maxVal = std::max(maxVal, o.maxVal);
    }

  private:
    uint64_t n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/** Retains samples and answers percentile queries (for latency tails). */
class SampleStat
{
  public:
    void
    add(double x)
    {
        samples.push_back(x);
        sorted = false;
    }

    size_t count() const { return samples.size(); }

    double
    percentile(double p)
    {
        if (samples.empty())
            return 0.0;
        if (!sorted) {
            std::sort(samples.begin(), samples.end());
            sorted = true;
        }
        double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
        size_t lo = static_cast<size_t>(rank);
        size_t hi = std::min(lo + 1, samples.size() - 1);
        double frac = rank - static_cast<double>(lo);
        return samples[lo] * (1.0 - frac) + samples[hi] * frac;
    }

    double median() { return percentile(50.0); }

    /** Append another accumulator's samples to this one. */
    void
    merge(const SampleStat &o)
    {
        samples.insert(samples.end(), o.samples.begin(),
                       o.samples.end());
        sorted = false;
    }

    double
    mean() const
    {
        if (samples.empty())
            return 0.0;
        double s = 0.0;
        for (double x : samples)
            s += x;
        return s / static_cast<double>(samples.size());
    }

  private:
    std::vector<double> samples;
    bool sorted = false;
};

} // namespace ndp
