/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic component in the repository takes an explicit Rng so
 * that experiments are reproducible bit-for-bit from a seed. We avoid
 * std::mt19937 + std::normal_distribution because their outputs are not
 * guaranteed identical across standard library implementations.
 */

#pragma once

#include <cmath>
#include <cstdint>

namespace ndp {

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to spread the seed over the state.
        uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit integer. */
    uint64_t
    nextU64()
    {
        const uint64_t result = rotl(state[1] * 5, 7) * 9;
        const uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        return nextU64() % n;
    }

    /** Standard normal via Box-Muller (uses a cached spare). */
    double
    normal()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1, u2;
        do {
            u1 = uniform();
        } while (u1 <= 1e-300);
        u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 6.283185307179586 * u2;
        spare = r * std::sin(theta);
        haveSpare = true;
        return r * std::cos(theta);
    }

    /** Normal with given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Lognormal: exp(N(mu, sigma)). */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(normal(mu, sigma));
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Derive an independent child stream (for per-component RNGs). */
    Rng
    split()
    {
        return Rng(nextU64());
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace ndp
