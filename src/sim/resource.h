/**
 * @file
 * Counted resource with FIFO acquisition, modeled after SimPy resources.
 *
 * A Resource holds an integer number of tokens (e.g. CPU cores, GPU
 * execution slots). Processes `co_await res.acquire(n)` and later call
 * `res.release(n)`. Waiters are served strictly FIFO: a large request at
 * the head of the queue blocks smaller requests behind it, which gives
 * fair (non-starving) semantics.
 */

#pragma once

#include <coroutine>
#include <deque>

#include "sim/simulator.h"

namespace ndp::sim {

class Resource
{
  public:
    /** @param cap total number of tokens (must be > 0). */
    Resource(Simulator &s, int cap);

    /** Awaitable acquiring @p n tokens (n <= capacity). */
    auto
    acquire(int n = 1)
    {
        struct Awaiter
        {
            Resource &res;
            int n;

            bool
            await_ready()
            {
                return res.tryAcquireNow(n);
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                res.waiters.push_back(Waiter{n, h});
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, n};
    }

    /** Return @p n tokens and wake eligible waiters in FIFO order. */
    void release(int n = 1);

    int capacity() const { return cap; }
    int available() const { return avail; }
    int inUse() const { return cap - avail; }
    size_t queueLength() const { return waiters.size(); }

    /**
     * Fraction of capacity-time used so far (integrated utilization).
     * Call after the simulation has advanced; 0 if no time has passed.
     */
    double utilization() const;

  private:
    struct Waiter
    {
        int n;
        std::coroutine_handle<> h;
    };

    /** Non-blocking acquisition; true on success. Only if queue empty. */
    bool tryAcquireNow(int n);

    /** Accumulate busy token-time up to now. */
    void accountTo(Time t);

    Simulator &sim;
    int cap;
    int avail;
    std::deque<Waiter> waiters;

    Time lastAccount = 0.0;
    double busyTokenTime = 0.0;
};

} // namespace ndp::sim
