#include "sim/resource.h"

#include <cassert>

namespace ndp::sim {

Resource::Resource(Simulator &s, int cap) : sim(s), cap(cap), avail(cap)
{
    assert(cap > 0 && "resource capacity must be positive");
}

bool
Resource::tryAcquireNow(int n)
{
    assert(n > 0 && n <= cap && "request exceeds resource capacity");
    if (waiters.empty() && avail >= n) {
        accountTo(sim.now());
        avail -= n;
        return true;
    }
    return false;
}

void
Resource::release(int n)
{
    assert(n > 0);
    accountTo(sim.now());
    avail += n;
    assert(avail <= cap && "released more tokens than acquired");
    while (!waiters.empty() && waiters.front().n <= avail) {
        Waiter w = waiters.front();
        waiters.pop_front();
        avail -= w.n;
        sim.scheduleHandle(0.0, w.h);
    }
}

void
Resource::accountTo(Time t)
{
    busyTokenTime += (t - lastAccount) * (cap - avail);
    lastAccount = t;
}

double
Resource::utilization() const
{
    Time t = sim.now();
    if (t <= 0.0)
        return 0.0;
    double busy = busyTokenTime + (t - lastAccount) * (cap - avail);
    return busy / (t * cap);
}

} // namespace ndp::sim
