/**
 * @file
 * Bounded single-producer/multi-consumer channel for pipeline stages.
 *
 * A Channel<T> carries values between coroutine processes. `put` suspends
 * when the buffer is full; `get` suspends when it is empty and returns
 * std::nullopt once the channel is closed and drained. A capacity of zero
 * gives rendezvous semantics (put completes only when a getter is ready).
 */

#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulator.h"

namespace ndp::sim {

template <typename T>
class Channel
{
  public:
    Channel(Simulator &s, size_t capacity) : sim(s), cap(capacity) {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    struct PutAwaiter
    {
        Channel &ch;
        T value;

        bool
        await_ready()
        {
            assert(!ch.closedFlag && "put on a closed channel");
            if (!ch.getters.empty()) {
                // Deliver directly to the oldest waiting getter.
                GetAwaiter *g = ch.getters.front();
                ch.getters.pop_front();
                g->result = std::move(value);
                ch.sim.scheduleHandle(0.0, g->handle);
                ++ch.nPut;
                return true;
            }
            if (ch.buf.size() < ch.cap) {
                ch.buf.push_back(std::move(value));
                ++ch.nPut;
                ch.peak = std::max(ch.peak, ch.buf.size());
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            handle = h;
            ch.putters.push_back(this);
        }

        void await_resume() const noexcept {}

        std::coroutine_handle<> handle = nullptr;
    };

    struct GetAwaiter
    {
        Channel &ch;
        std::optional<T> result = std::nullopt;

        bool
        await_ready()
        {
            if (!ch.buf.empty()) {
                result = std::move(ch.buf.front());
                ch.buf.pop_front();
                ch.promotePutter();
                ++ch.nGot;
                return true;
            }
            if (!ch.putters.empty()) {
                // Rendezvous (capacity 0): take directly from a putter.
                PutAwaiter *p = ch.putters.front();
                ch.putters.pop_front();
                result = std::move(p->value);
                ch.sim.scheduleHandle(0.0, p->handle);
                ++ch.nPut;
                ++ch.nGot;
                return true;
            }
            if (ch.closedFlag) {
                result = std::nullopt;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            handle = h;
            ch.getters.push_back(this);
        }

        std::optional<T>
        await_resume()
        {
            return std::move(result);
        }

        std::coroutine_handle<> handle = nullptr;
    };

    /** Awaitable inserting @p v; suspends while the buffer is full. */
    PutAwaiter put(T v) { return PutAwaiter{*this, std::move(v)}; }

    /**
     * Awaitable removing the oldest value; suspends while empty and the
     * channel is open. Yields std::nullopt after close() + drain.
     */
    GetAwaiter get() { return GetAwaiter{*this}; }

    /**
     * Close the channel: waiting getters are woken with std::nullopt.
     * Values already buffered remain retrievable. No puts may follow.
     */
    void
    close()
    {
        assert(putters.empty() && "close with blocked producers");
        closedFlag = true;
        while (!getters.empty() && buf.empty()) {
            GetAwaiter *g = getters.front();
            getters.pop_front();
            g->result = std::nullopt;
            sim.scheduleHandle(0.0, g->handle);
        }
    }

    [[nodiscard]] bool closed() const { return closedFlag; }
    [[nodiscard]] size_t size() const { return buf.size(); }
    [[nodiscard]] size_t capacity() const { return cap; }
    [[nodiscard]] uint64_t totalPut() const { return nPut; }
    [[nodiscard]] uint64_t totalGot() const { return nGot; }
    /** High-water mark of buffered values (stage back-pressure probe). */
    [[nodiscard]] size_t peakSize() const { return peak; }

  private:
    /** After freeing a buffer slot, move a blocked putter's value in. */
    void
    promotePutter()
    {
        if (!putters.empty() && buf.size() < cap) {
            PutAwaiter *p = putters.front();
            putters.pop_front();
            buf.push_back(std::move(p->value));
            ++nPut;
            peak = std::max(peak, buf.size());
            sim.scheduleHandle(0.0, p->handle);
        }
    }

    Simulator &sim;
    size_t cap;
    std::deque<T> buf;
    std::deque<PutAwaiter *> putters;
    std::deque<GetAwaiter *> getters;
    bool closedFlag = false;
    uint64_t nPut = 0;
    uint64_t nGot = 0;
    size_t peak = 0;
};

} // namespace ndp::sim
