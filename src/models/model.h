/**
 * @file
 * Layer-graph description of a DNN model, at the granularity NDPipe
 * partitions it (§5.1): a sequence of coarse blocks, each annotated
 * with forward compute, transfer size of its output activation, and
 * parameter count. The final block(s) marked `trainable` form the
 * classifier / task module that fine-tuning updates.
 *
 * Conventions:
 *  - gmacs: forward multiply-accumulates in units of 1e9 (the usual
 *    "GFLOPs" quoted for vision models; actual FLOPs ~= 2x this).
 *  - outMB: bytes transferred per image if the model is cut after this
 *    block. Activations cross the wire in fp16 (the TensorRT engines
 *    the paper uses emit half precision), so outMB = elems * 2 / 1e6.
 *  - A partition point exists only where the block boundary is clean
 *    (no residual/skip connections crossing it), per §5.3.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ndp::models {

struct Block
{
    std::string name;
    /** Forward multiply-accumulates, 1e9, per image. */
    double gmacs;
    /** Output activation size if cut after this block, MB per image. */
    double outMB;
    /** Parameters, millions. */
    double paramsM;
    /** True if the model may be split after this block. */
    bool partitionPoint;
    /** True if this block is updated by fine-tuning. */
    bool trainable;
};

class ModelSpec
{
  public:
    ModelSpec(std::string name, int input_px, double input_mb,
              std::vector<Block> blocks, double peak_act_mb);

    const std::string &name() const { return modelName; }
    int inputPx() const { return px; }

    /** Preprocessed fp32 input tensor size, MB per image. */
    double inputMB() const { return inMB; }

    /** Peak per-image activation working set, MB (bounds batch size). */
    double peakActivationMB() const { return peakActMB; }

    const std::vector<Block> &blocks() const { return blockList; }
    size_t numBlocks() const { return blockList.size(); }

    /** Total forward GMACs per image. */
    double totalGmacs() const { return gmacsTotal; }

    /** Total parameters, millions. */
    double totalParamsM() const { return paramsTotal; }

    /** Parameters of trainable (classifier) blocks, millions. */
    double trainableParamsM() const { return paramsTrainable; }

    /** Forward GMACs of blocks [0, cut). cut == 0 means none. */
    double gmacsBefore(size_t cut) const;

    /** Forward GMACs of blocks [cut, N). */
    double gmacsAfter(size_t cut) const;

    /**
     * Per-image bytes crossing the wire when split at @p cut:
     * output of block cut-1 (or the fp32 input when cut == 0), MB.
     */
    double transferMBAt(size_t cut) const;

    /**
     * Valid split indices. Index i means blocks [0, i) run on the
     * PipeStore. Always includes 0 (no offload) and N (full offload).
     */
    std::vector<size_t> partitionCuts() const;

    /** Index of the first trainable block (== N if none). */
    size_t classifierStart() const;

    /** True if cut @p cut places trainable blocks on the PipeStore. */
    bool cutSplitsClassifier(size_t cut) const;

  private:
    std::string modelName;
    int px;
    double inMB;
    double peakActMB;
    std::vector<Block> blockList;
    double gmacsTotal = 0.0;
    double paramsTotal = 0.0;
    double paramsTrainable = 0.0;
};

} // namespace ndp::models
