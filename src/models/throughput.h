/**
 * @file
 * Calibrated accelerator throughput estimation.
 *
 * The paper reports measured per-PipeStore (Tesla T4, TensorRT, batch
 * 128) inference rates in §6.2; those are the anchors. Other devices
 * scale by their peak mixed-precision throughput relative to the T4
 * (the paper's own SRV-I results are consistent with this: two V100s
 * match 4-7 T4 PipeStores). Batch-size sensitivity follows a classic
 * saturating launch-overhead curve ips(b) ~ b / (b + k), normalized so
 * the anchor batch of 128 reproduces the anchor rate (Fig. 19).
 */

#pragma once

#include "hw/specs.h"
#include "models/model.h"

namespace ndp::models {

/** Measured T4 IPS at batch 128 (§6.2; ShuffleNetV2 extrapolated). */
double t4AnchorIps(const ModelSpec &m);

/** Saturating batch-efficiency curve, 1.0 at the anchor batch (128). */
double batchEfficiency(int batch);

/** Full-model inference throughput of @p g for @p m at @p batch. */
double deviceIps(const hw::GpuSpec &g, const ModelSpec &m, int batch);

/**
 * GPU seconds per image to run blocks [0, cut) (feature extraction /
 * the weight-freeze partition). Zero when cut == 0.
 */
double feSecondsPerImage(const hw::GpuSpec &g, const ModelSpec &m,
                         size_t cut, int batch);

/**
 * GPU seconds per image for one *training* pass over the partition
 * [cut, N): forward through it plus backward through the trainable
 * blocks, plus a per-image step overhead (optimizer + kernel
 * launches). With cut == 0 this is the cost of a full fine-tuning
 * step, the work a store performs per image per epoch in the naive
 * "+FC" configuration.
 */
double trainSecondsPerImage(const hw::GpuSpec &g, const ModelSpec &m,
                            size_t cut, int batch);

/**
 * One-time Tuner cost per arriving feature: forward through the
 * weight-freeze blocks in [cut, classifierStart). Zero when the cut is
 * at the classifier boundary.
 */
double tunerIngestSecondsPerImage(const hw::GpuSpec &g,
                                  const ModelSpec &m, size_t cut,
                                  int batch);

/**
 * Per-epoch Tuner cost per image: forward+backward of the trainable
 * blocks plus the step overhead. The overhead term dominates for tiny
 * classifier GEMMs and is what eventually makes the Tuner the
 * pipeline bottleneck (Fig. 11).
 */
double tunerEpochSecondsPerImage(const hw::GpuSpec &g,
                                 const ModelSpec &m, int batch);

/** Device memory needed to run @p m at @p batch, GiB (weights + act). */
double gpuMemoryNeededGiB(const ModelSpec &m, int batch);

/**
 * Typed result of a device-memory admission check: carries the sizing
 * details a report needs to explain *why* a configuration failed
 * instead of a bare boolean sentinel.
 */
struct MemoryCheck
{
    bool fits = true;
    /** GiB the model + activations + runtime would need. */
    double neededGiB = 0.0;
    /** GiB the device has. */
    double limitGiB = 0.0;

    explicit operator bool() const { return fits; }
};

/** Admission check reproducing Fig. 19's ViT out-of-memory failures. */
MemoryCheck checkMemory(const hw::GpuSpec &g, const ModelSpec &m,
                        int batch);

/** Boolean shorthand for checkMemory().fits. */
bool fitsInMemory(const hw::GpuSpec &g, const ModelSpec &m, int batch);

/** Per-image optimizer/launch/data-feed overhead of a training step,
 *  seconds (at the anchor batch). Calibrated so APO balances ResNet50
 *  at 8 PipeStores (Fig. 11). */
constexpr double kTrainStepOverheadS = 16.5e-6;

/** Batch-efficiency half-saturation constant. */
constexpr double kBatchHalfSat = 20.0;

} // namespace ndp::models
