#include "models/zoo.h"

#include <stdexcept>

namespace ndp::models {

namespace {

// {name, gmacs, outMB(fp16), paramsM, partitionPoint, trainable}

ModelSpec
makeShufflenetV2()
{
    return ModelSpec(
        "ShuffleNetV2", 224, 0.602,
        {
            {"conv1", 0.012, 0.151, 0.001, true, false},
            {"stage2", 0.040, 0.182, 0.028, true, false},
            {"stage3", 0.040, 0.091, 0.118, true, false},
            {"stage4", 0.040, 0.045, 0.470, true, false},
            {"conv5+pool", 0.013, 0.002, 0.478, true, false},
            {"fc", 0.001, 0.0002, 1.025, true, true},
        },
        2.0);
}

ModelSpec
makeResnet50()
{
    return ModelSpec(
        "ResNet50", 224, 0.602,
        {
            {"conv1", 0.12, 0.401, 0.010, true, false},
            {"conv2", 0.83, 1.606, 0.220, true, false},
            {"conv3", 1.03, 0.803, 1.220, true, false},
            {"conv4", 1.47, 0.401, 7.100, true, false},
            {"conv5+pool", 0.81, 0.0041, 14.96, true, false},
            {"fc", 0.002, 0.002, 2.049, true, true},
        },
        8.0);
}

ModelSpec
makeInceptionV3()
{
    return ModelSpec(
        "InceptionV3", 299, 1.073,
        {
            {"stem", 1.30, 0.470, 1.00, true, false},
            {"mixed5", 0.80, 0.706, 1.30, true, false},
            {"mixed6", 2.30, 0.444, 10.50, true, false},
            {"mixed7", 1.20, 0.262, 8.00, true, false},
            {"pool", 0.001, 0.0041, 0.0, true, false},
            {"fc", 0.002, 0.002, 2.049, true, true},
        },
        10.0);
}

ModelSpec
makeResnext101()
{
    return ModelSpec(
        "ResNeXt101", 224, 0.602,
        {
            {"conv1", 0.12, 0.401, 0.010, true, false},
            {"conv2", 1.60, 1.606, 0.700, true, false},
            {"conv3", 2.90, 0.803, 3.100, true, false},
            {"conv4", 9.20, 0.401, 47.40, true, false},
            {"conv5+pool", 2.70, 0.0041, 35.30, true, false},
            {"fc", 0.002, 0.002, 2.049, true, true},
        },
        16.0);
}

ModelSpec
makeVitB16()
{
    std::vector<Block> blocks;
    blocks.push_back({"patch_embed", 0.15, 0.303, 0.59, true, false});
    for (int i = 1; i <= 12; ++i) {
        blocks.push_back({"encoder" + std::to_string(i), 1.42, 0.303,
                          7.09, true, false});
    }
    // Classification consumes only the CLS token: the final LayerNorm
    // + token selection shrinks the activation to 768 values.
    blocks.push_back({"norm+cls", 0.001, 0.0015, 0.002, true, false});
    blocks.push_back({"head", 0.002, 0.002, 0.77, true, true});
    return ModelSpec("ViT", 224, 0.602, std::move(blocks), 34.0);
}

} // namespace

const ModelSpec &
shufflenetV2()
{
    static const ModelSpec m = makeShufflenetV2();
    return m;
}

const ModelSpec &
resnet50()
{
    static const ModelSpec m = makeResnet50();
    return m;
}

const ModelSpec &
inceptionV3()
{
    static const ModelSpec m = makeInceptionV3();
    return m;
}

const ModelSpec &
resnext101()
{
    static const ModelSpec m = makeResnext101();
    return m;
}

const ModelSpec &
vitB16()
{
    static const ModelSpec m = makeVitB16();
    return m;
}

std::vector<const ModelSpec *>
allModels()
{
    return {&shufflenetV2(), &inceptionV3(), &resnet50(), &resnext101(),
            &vitB16()};
}

std::vector<const ModelSpec *>
figureModels()
{
    return {&resnet50(), &inceptionV3(), &resnext101(), &vitB16()};
}

const ModelSpec &
byName(const std::string &name)
{
    for (const ModelSpec *m : allModels()) {
        if (m->name() == name)
            return *m;
    }
    throw std::out_of_range("unknown model: " + name);
}

} // namespace ndp::models
