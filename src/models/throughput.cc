#include "models/throughput.h"

#include <cassert>
#include <stdexcept>

#include "models/zoo.h"

namespace ndp::models {

double
t4AnchorIps(const ModelSpec &m)
{
    // §6.2: "Each PipeStore offers 2,129, 2,439, 449, and 277 IPS for
    // ResNet50, InceptionV3, ResNeXt101, and ViT."
    if (m.name() == "ResNet50")
        return 2129.0;
    if (m.name() == "InceptionV3")
        return 2439.0;
    if (m.name() == "ResNeXt101")
        return 449.0;
    if (m.name() == "ViT")
        return 277.0;
    if (m.name() == "ShuffleNetV2")
        return 6500.0; // launch-overhead bound; not reported in paper
    throw std::out_of_range("no throughput anchor for " + m.name());
}

double
batchEfficiency(int batch)
{
    assert(batch > 0);
    double b = static_cast<double>(batch);
    double raw = b / (b + kBatchHalfSat);
    double anchor = 128.0 / (128.0 + kBatchHalfSat);
    return raw / anchor;
}

double
deviceIps(const hw::GpuSpec &g, const ModelSpec &m, int batch)
{
    double scale = g.peakTflops / hw::teslaT4().peakTflops;
    return t4AnchorIps(m) * scale * batchEfficiency(batch);
}

double
feSecondsPerImage(const hw::GpuSpec &g, const ModelSpec &m, size_t cut,
                  int batch)
{
    if (cut == 0)
        return 0.0;
    double frac = m.gmacsBefore(cut) / m.totalGmacs();
    return frac / deviceIps(g, m, batch);
}

double
trainSecondsPerImage(const hw::GpuSpec &g, const ModelSpec &m, size_t cut,
                     int batch)
{
    // Forward through the Tuner-side partition; backward costs ~2x the
    // forward of the trainable blocks only (weight-freeze layers need
    // no gradients).
    double fwd_gmacs = m.gmacsAfter(cut);
    double trainable_gmacs = 0.0;
    for (size_t i = m.classifierStart(); i < m.numBlocks(); ++i) {
        if (i >= cut)
            trainable_gmacs += m.blocks()[i].gmacs;
    }
    double gmacs = fwd_gmacs + 2.0 * trainable_gmacs;
    double frac = gmacs / m.totalGmacs();
    double flop_time = frac / deviceIps(g, m, batch);
    return flop_time + kTrainStepOverheadS / batchEfficiency(batch);
}

double
tunerIngestSecondsPerImage(const hw::GpuSpec &g, const ModelSpec &m,
                           size_t cut, int batch)
{
    size_t cls = m.classifierStart();
    if (cut >= cls)
        return 0.0;
    double gmacs = m.gmacsBefore(cls) - m.gmacsBefore(cut);
    double frac = gmacs / m.totalGmacs();
    return frac / deviceIps(g, m, batch);
}

double
tunerEpochSecondsPerImage(const hw::GpuSpec &g, const ModelSpec &m,
                          int batch)
{
    double trainable_gmacs = 0.0;
    for (size_t i = m.classifierStart(); i < m.numBlocks(); ++i)
        trainable_gmacs += m.blocks()[i].gmacs;
    double frac = 3.0 * trainable_gmacs / m.totalGmacs();
    double flop_time = frac / deviceIps(g, m, batch);
    return flop_time + kTrainStepOverheadS / batchEfficiency(batch);
}

double
gpuMemoryNeededGiB(const ModelSpec &m, int batch)
{
    constexpr double gib = 1024.0 * 1024.0 * 1024.0;
    double weights = m.totalParamsM() * 1e6 * 2.0;   // fp16 weights
    double act = static_cast<double>(batch) * m.peakActivationMB() * 1e6;
    double runtime = 1.0 * gib; // CUDA context + engine workspace
    return (weights + act + runtime) / gib;
}

MemoryCheck
checkMemory(const hw::GpuSpec &g, const ModelSpec &m, int batch)
{
    MemoryCheck c;
    c.neededGiB = gpuMemoryNeededGiB(m, batch);
    c.limitGiB = g.memGib;
    c.fits = c.neededGiB <= c.limitGiB;
    return c;
}

bool
fitsInMemory(const hw::GpuSpec &g, const ModelSpec &m, int batch)
{
    return checkMemory(g, m, batch).fits;
}

} // namespace ndp::models
