/**
 * @file
 * The five image-classification models the paper evaluates (§6.1):
 * ShuffleNetV2 (small CNN), InceptionV3 (middle), ResNet50 (middle),
 * ResNeXt101-32x8d (large CNN), ViT-B/16 (large transformer).
 *
 * Block tables use the standard published per-stage MACs / activation
 * shapes / parameter counts for each architecture. They drive APO's
 * partition search (Fig. 9), the FT-DMP simulator, and the throughput
 * estimator.
 */

#pragma once

#include <string>
#include <vector>

#include "models/model.h"

namespace ndp::models {

const ModelSpec &shufflenetV2();
const ModelSpec &resnet50();
const ModelSpec &inceptionV3();
const ModelSpec &resnext101();
const ModelSpec &vitB16();

/** All five models, in the paper's small-to-large order. */
std::vector<const ModelSpec *> allModels();

/** The four models most figures plot (everything but ShuffleNetV2). */
std::vector<const ModelSpec *> figureModels();

/** Lookup by name(); throws std::out_of_range for unknown names. */
const ModelSpec &byName(const std::string &name);

/** Typical stored photo: a ~2.7 MB JPEG (§3.4). */
constexpr double kRawImageMB = 2.7;

/** Deflate compression ratio achieved on preprocessed fp32 tensors. */
constexpr double kPreprocCompressionRatio = 3.5;

} // namespace ndp::models
