#include "models/model.h"

#include <cassert>
#include <utility>

namespace ndp::models {

ModelSpec::ModelSpec(std::string name, int input_px, double input_mb,
                     std::vector<Block> blocks, double peak_act_mb)
    : modelName(std::move(name)), px(input_px), inMB(input_mb),
      peakActMB(peak_act_mb), blockList(std::move(blocks))
{
    assert(!blockList.empty());
    bool seen_trainable = false;
    for (const auto &b : blockList) {
        gmacsTotal += b.gmacs;
        paramsTotal += b.paramsM;
        if (b.trainable) {
            paramsTrainable += b.paramsM;
            seen_trainable = true;
        } else {
            // Trainable blocks must form a suffix: fine-tuning freezes
            // everything before the classifier (§2.1).
            assert(!seen_trainable &&
                   "weight-freeze block after a trainable block");
        }
    }
}

double
ModelSpec::gmacsBefore(size_t cut) const
{
    assert(cut <= blockList.size());
    double g = 0.0;
    for (size_t i = 0; i < cut; ++i)
        g += blockList[i].gmacs;
    return g;
}

double
ModelSpec::gmacsAfter(size_t cut) const
{
    return gmacsTotal - gmacsBefore(cut);
}

double
ModelSpec::transferMBAt(size_t cut) const
{
    assert(cut <= blockList.size());
    if (cut == 0)
        return inMB;
    return blockList[cut - 1].outMB;
}

std::vector<size_t>
ModelSpec::partitionCuts() const
{
    std::vector<size_t> cuts;
    cuts.push_back(0);
    for (size_t i = 0; i < blockList.size(); ++i) {
        if (blockList[i].partitionPoint)
            cuts.push_back(i + 1);
    }
    if (cuts.back() != blockList.size())
        cuts.push_back(blockList.size());
    return cuts;
}

size_t
ModelSpec::classifierStart() const
{
    for (size_t i = 0; i < blockList.size(); ++i) {
        if (blockList[i].trainable)
            return i;
    }
    return blockList.size();
}

bool
ModelSpec::cutSplitsClassifier(size_t cut) const
{
    return cut > classifierStart();
}

} // namespace ndp::models
