#include "storage/huffman.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>
#include <vector>

namespace ndp::storage {

namespace {

constexpr uint8_t kMagic[4] = {'N', 'D', 'H', 'F'};
constexpr int kMaxCodeLen = 15; // as in DEFLATE

/** Compute Huffman code lengths for the given frequencies. */
std::vector<uint8_t>
codeLengths(std::vector<uint64_t> freq)
{
    const size_t n = freq.size();
    std::vector<uint8_t> lens(n, 0);

    while (true) {
        // Build the tree with a min-heap over (freq, node).
        struct Node
        {
            uint64_t freq;
            int left = -1, right = -1;
            int symbol = -1;
        };
        std::vector<Node> nodes;
        using HeapItem = std::pair<uint64_t, int>;
        std::priority_queue<HeapItem, std::vector<HeapItem>,
                            std::greater<>>
            heap;
        for (size_t s = 0; s < n; ++s) {
            if (freq[s] > 0) {
                nodes.push_back({freq[s], -1, -1,
                                 static_cast<int>(s)});
                heap.push({freq[s],
                           static_cast<int>(nodes.size() - 1)});
            }
        }
        if (heap.empty())
            return lens;
        if (heap.size() == 1) {
            lens[static_cast<size_t>(
                nodes[heap.top().second].symbol)] = 1;
            return lens;
        }
        while (heap.size() > 1) {
            auto a = heap.top();
            heap.pop();
            auto b = heap.top();
            heap.pop();
            nodes.push_back({a.first + b.first, a.second, b.second});
            heap.push({a.first + b.first,
                       static_cast<int>(nodes.size() - 1)});
        }

        // Depth-first assignment of depths as code lengths.
        int max_len = 0;
        std::vector<std::pair<int, int>> stack; // (node, depth)
        stack.push_back({heap.top().second, 0});
        while (!stack.empty()) {
            auto [idx, depth] = stack.back();
            stack.pop_back();
            const Node &node = nodes[static_cast<size_t>(idx)];
            if (node.symbol >= 0) {
                lens[static_cast<size_t>(node.symbol)] =
                    static_cast<uint8_t>(depth);
                max_len = std::max(max_len, depth);
            } else {
                stack.push_back({node.left, depth + 1});
                stack.push_back({node.right, depth + 1});
            }
        }
        if (max_len <= kMaxCodeLen)
            return lens;
        // Flatten the distribution and retry (bounded iterations).
        for (auto &f : freq) {
            if (f > 0)
                f = f / 2 + 1;
        }
        std::fill(lens.begin(), lens.end(), 0);
    }
}

/** Canonical code assignment: symbols sorted by (length, value). */
std::vector<uint32_t>
canonicalCodes(const std::vector<uint8_t> &lens)
{
    std::vector<uint32_t> codes(lens.size(), 0);
    std::vector<int> order;
    for (size_t s = 0; s < lens.size(); ++s) {
        if (lens[s] > 0)
            order.push_back(static_cast<int>(s));
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (lens[static_cast<size_t>(a)] !=
            lens[static_cast<size_t>(b)])
            return lens[static_cast<size_t>(a)] <
                   lens[static_cast<size_t>(b)];
        return a < b;
    });
    uint32_t code = 0;
    uint8_t prev_len = 0;
    for (int s : order) {
        uint8_t len = lens[static_cast<size_t>(s)];
        code <<= (len - prev_len);
        codes[static_cast<size_t>(s)] = code;
        ++code;
        prev_len = len;
    }
    return codes;
}

class BitWriter
{
  public:
    explicit BitWriter(Bytes &out) : out(out) {}

    void
    write(uint32_t code, uint8_t len)
    {
        for (int i = len - 1; i >= 0; --i) {
            cur = static_cast<uint8_t>(cur << 1);
            cur |= (code >> i) & 1u;
            if (++nbits == 8) {
                out.push_back(cur);
                cur = 0;
                nbits = 0;
            }
        }
    }

    void
    flush()
    {
        if (nbits > 0) {
            cur = static_cast<uint8_t>(cur << (8 - nbits));
            out.push_back(cur);
            cur = 0;
            nbits = 0;
        }
    }

  private:
    Bytes &out;
    uint8_t cur = 0;
    int nbits = 0;
};

class BitReader
{
  public:
    BitReader(const Bytes &in, size_t start) : in(in), pos(start) {}

    /** @return -1 past end of stream. */
    int
    next()
    {
        if (pos >= in.size())
            return -1;
        int bit = (in[pos] >> (7 - nbits)) & 1;
        if (++nbits == 8) {
            nbits = 0;
            ++pos;
        }
        return bit;
    }

  private:
    const Bytes &in;
    size_t pos;
    int nbits = 0;
};

} // namespace

Bytes
huffmanEncode(const Bytes &input)
{
    Bytes out;
    out.insert(out.end(), kMagic, kMagic + 4);
    uint32_t n = static_cast<uint32_t>(input.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(n >> (8 * i)));

    std::vector<uint64_t> freq(256, 0);
    for (uint8_t b : input)
        ++freq[b];
    auto lens = codeLengths(freq);
    out.insert(out.end(), lens.begin(), lens.end());
    if (input.empty())
        return out;

    auto codes = canonicalCodes(lens);
    BitWriter writer(out);
    for (uint8_t b : input)
        writer.write(codes[b], lens[b]);
    writer.flush();
    return out;
}

std::optional<Bytes>
huffmanDecode(const Bytes &input)
{
    if (input.size() < 8 + 256 ||
        std::memcmp(input.data(), kMagic, 4) != 0)
        return std::nullopt;
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<uint32_t>(input[4 + i]) << (8 * i);

    std::vector<uint8_t> lens(input.begin() + 8,
                              input.begin() + 8 + 256);
    Bytes out;
    out.reserve(n);
    if (n == 0)
        return out;

    // Canonical decode tables: per length, the first code and the
    // symbols in canonical order.
    std::vector<int> order;
    for (int s = 0; s < 256; ++s) {
        if (lens[static_cast<size_t>(s)] > 0)
            order.push_back(s);
    }
    if (order.empty())
        return std::nullopt;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (lens[static_cast<size_t>(a)] !=
            lens[static_cast<size_t>(b)])
            return lens[static_cast<size_t>(a)] <
                   lens[static_cast<size_t>(b)];
        return a < b;
    });
    // first_code[len], first_index[len] into `order`.
    uint32_t first_code[kMaxCodeLen + 2] = {};
    int first_index[kMaxCodeLen + 2] = {};
    int count[kMaxCodeLen + 2] = {};
    for (int s : order)
        ++count[lens[static_cast<size_t>(s)]];
    {
        uint32_t code = 0;
        int index = 0;
        for (int len = 1; len <= kMaxCodeLen + 1; ++len) {
            first_code[len] = code;
            first_index[len] = index;
            code = (code + static_cast<uint32_t>(count[len])) << 1;
            index += count[len];
        }
    }

    BitReader reader(input, 8 + 256);
    while (out.size() < n) {
        uint32_t code = 0;
        int len = 0;
        int symbol = -1;
        while (len <= kMaxCodeLen) {
            int bit = reader.next();
            if (bit < 0)
                return std::nullopt; // truncated
            code = (code << 1) | static_cast<uint32_t>(bit);
            ++len;
            if (count[len] > 0 && code >= first_code[len] &&
                code < first_code[len] +
                           static_cast<uint32_t>(count[len])) {
                symbol = order[static_cast<size_t>(
                    first_index[len] +
                    static_cast<int>(code - first_code[len]))];
                break;
            }
        }
        if (symbol < 0)
            return std::nullopt; // invalid code
        out.push_back(static_cast<uint8_t>(symbol));
    }
    return out;
}

Bytes
deflateFull(const Bytes &input)
{
    return huffmanEncode(deflateLite(input));
}

std::optional<Bytes>
inflateFull(const Bytes &input)
{
    auto lz = huffmanDecode(input);
    if (!lz)
        return std::nullopt;
    return inflateLite(*lz);
}

double
byteEntropy(const Bytes &input)
{
    if (input.empty())
        return 0.0;
    std::vector<uint64_t> freq(256, 0);
    for (uint8_t b : input)
        ++freq[b];
    double h = 0.0;
    double n = static_cast<double>(input.size());
    for (uint64_t f : freq) {
        if (f == 0)
            continue;
        double p = static_cast<double>(f) / n;
        h -= p * std::log2(p);
    }
    return h;
}

} // namespace ndp::storage
