/**
 * @file
 * DeflateLite: an LZ77 byte-stream codec.
 *
 * NDPipe stores preprocessed image binaries compressed with a deflate
 * algorithm (§5.4) to offset the 17.5 % storage overhead of keeping
 * them next to the raw JPEGs, and SRV-C ships compressed binaries over
 * the network. This is a real, self-contained implementation in that
 * spirit: greedy LZ77 with a 64 KiB window and a hash-chain matcher,
 * byte-oriented token encoding (no entropy stage, which keeps the
 * decompressor trivially fast — the property §6.4 relies on when the
 * CPU-side decompression becomes the SRV-C ceiling).
 *
 * Token format after the 8-byte header ("NDLZ" + u32 original size):
 *   c in [0x00, 0x7f]  -> literal run of c+1 bytes follows
 *   c in [0x80, 0xff]  -> match of length (c - 0x80 + 4), followed by
 *                         a little-endian u16 distance (1..65535)
 * Longer matches are emitted as consecutive match tokens.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ndp::storage {

using Bytes = std::vector<uint8_t>;

/** Compress @p input. Never fails; worst case grows by ~1/128 + 8. */
Bytes deflateLite(const Bytes &input);

/**
 * Decompress a deflateLite stream.
 * @return std::nullopt if the stream is corrupt or truncated.
 */
std::optional<Bytes> inflateLite(const Bytes &input);

/** Original (decompressed) size recorded in the header, if valid. */
std::optional<uint64_t> inflatedSize(const Bytes &input);

/** @name Codec throughput model (for the simulator)
 * Single-core rates, MB of *uncompressed* data per second. Calibrated
 * so that (a) two PipeStore cores sit just below the InceptionV3 GPU
 * rate (Fig. 19's decompression ceiling at batch >= 128) and (b) eight
 * SRV-C host cores stop helping past ~20 Gbps (Fig. 18).
 * @{
 */
constexpr double kCompressMBps = 140.0;
constexpr double kDecompressMBps = 1250.0;
/** @} */

} // namespace ndp::storage
