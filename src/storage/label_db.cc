#include "storage/label_db.h"

namespace ndp::storage {

void
LabelDatabase::upsert(uint64_t photo_id, int label, int model_version)
{
    auto it = entries.find(photo_id);
    if (it != entries.end()) {
        if (it->second.label != label) {
            auto &old_set = index[it->second.label];
            old_set.erase(photo_id);
            if (old_set.empty())
                index.erase(it->second.label);
        }
        it->second = LabelEntry{label, model_version};
    } else {
        entries.emplace(photo_id, LabelEntry{label, model_version});
    }
    index[label].insert(photo_id);
}

std::optional<LabelEntry>
LabelDatabase::lookup(uint64_t photo_id) const
{
    auto it = entries.find(photo_id);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

bool
LabelDatabase::erase(uint64_t photo_id)
{
    auto it = entries.find(photo_id);
    if (it == entries.end())
        return false;
    auto &set = index[it->second.label];
    set.erase(photo_id);
    if (set.empty())
        index.erase(it->second.label);
    entries.erase(it);
    return true;
}

std::vector<uint64_t>
LabelDatabase::search(int label) const
{
    auto it = index.find(label);
    if (it == index.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

std::vector<uint64_t>
LabelDatabase::outdatedPhotos(int version) const
{
    std::vector<uint64_t> out;
    for (const auto &[id, entry] : entries) {
        if (entry.modelVersion < version)
            out.push_back(id);
    }
    return out;
}

size_t
LabelDatabase::countOutdated(int version) const
{
    size_t n = 0;
    for (const auto &[id, entry] : entries) {
        if (entry.modelVersion < version)
            ++n;
    }
    return n;
}

double
LabelDatabase::fractionChanged(const LabelDatabase &newer) const
{
    size_t common = 0, changed = 0;
    for (const auto &[id, entry] : entries) {
        auto other = newer.lookup(id);
        if (!other)
            continue;
        ++common;
        if (other->label != entry.label)
            ++changed;
    }
    if (common == 0)
        return 0.0;
    return static_cast<double>(changed) / static_cast<double>(common);
}

} // namespace ndp::storage
