#include "storage/object_store.h"

namespace ndp::storage {

std::optional<size_t>
ObjectStore::put(const std::string &key, Bytes data)
{
    std::optional<size_t> prev;
    auto it = objects.find(key);
    if (it != objects.end()) {
        prev = it->second.size();
        bytes -= it->second.size();
        it->second = std::move(data);
        bytes += it->second.size();
    } else {
        bytes += data.size();
        objects.emplace(key, std::move(data));
    }
    return prev;
}

const Bytes *
ObjectStore::get(const std::string &key) const
{
    auto it = objects.find(key);
    return it == objects.end() ? nullptr : &it->second;
}

bool
ObjectStore::contains(const std::string &key) const
{
    return objects.count(key) > 0;
}

bool
ObjectStore::erase(const std::string &key)
{
    auto it = objects.find(key);
    if (it == objects.end())
        return false;
    bytes -= it->second.size();
    objects.erase(it);
    return true;
}

uint64_t
ObjectStore::bytesUnderPrefix(const std::string &prefix) const
{
    uint64_t total = 0;
    for (auto it = objects.lower_bound(prefix);
         it != objects.end() && it->first.compare(0, prefix.size(),
                                                  prefix) == 0;
         ++it) {
        total += it->second.size();
    }
    return total;
}

std::vector<std::string>
ObjectStore::listPrefix(const std::string &prefix) const
{
    std::vector<std::string> keys;
    for (auto it = objects.lower_bound(prefix);
         it != objects.end() && it->first.compare(0, prefix.size(),
                                                  prefix) == 0;
         ++it) {
        keys.push_back(it->first);
    }
    return keys;
}

} // namespace ndp::storage
