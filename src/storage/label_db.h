/**
 * @file
 * Label database: the metadata index photo services query (§3.1).
 *
 * Maps photo id -> (label, model version) and maintains an inverted
 * index label -> photo ids so search requests can be served. Tracks
 * which labels were produced by which model version, which powers both
 * offline-inference refresh (§5) and the outdated-label accounting of
 * Table 1.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace ndp::storage {

struct LabelEntry
{
    int label;
    int modelVersion;
};

class LabelDatabase
{
  public:
    /** Insert or update a photo's label; maintains the index. */
    void upsert(uint64_t photo_id, int label, int model_version);

    std::optional<LabelEntry> lookup(uint64_t photo_id) const;

    bool erase(uint64_t photo_id);

    /** Photo ids carrying @p label, ascending. */
    std::vector<uint64_t> search(int label) const;

    /** Photos whose label came from a model older than @p version. */
    std::vector<uint64_t> outdatedPhotos(int version) const;

    size_t countOutdated(int version) const;

    size_t size() const { return entries.size(); }

    /** Number of distinct labels currently indexed. */
    size_t distinctLabels() const { return index.size(); }

    /**
     * Fraction of photos (present in both snapshots) whose label in
     * @p newer differs from this database — Table 1's "% of labels
     * fixed" when @p newer holds the new model's labels.
     */
    double fractionChanged(const LabelDatabase &newer) const;

  private:
    std::map<uint64_t, LabelEntry> entries;
    std::map<int, std::set<uint64_t>> index;
};

} // namespace ndp::storage
