#include "storage/photo_gen.h"

#include <cmath>

namespace ndp::storage {

PhotoGenerator::PhotoGenerator(const PhotoGenConfig &c) : cfg(c) {}

Rng
PhotoGenerator::perPhotoRng(uint64_t photo_id, uint64_t stream) const
{
    // Mix the seed, photo id, and stream id into one 64-bit state.
    uint64_t mixed = cfg.seed * 0x9e3779b97f4a7c15ull;
    mixed ^= photo_id + 0x632be59bd9b4e019ull + (mixed << 6);
    mixed ^= stream * 0xd6e8feb86659fd93ull;
    return Rng(mixed);
}

size_t
PhotoGenerator::rawSizeOf(uint64_t photo_id)
{
    Rng rng = perPhotoRng(photo_id, 0);
    double mu = std::log(cfg.rawMeanMB) - 0.5 * cfg.rawSigma * cfg.rawSigma;
    double mb = rng.lognormal(mu, cfg.rawSigma);
    return static_cast<size_t>(mb * 1e6);
}

Bytes
PhotoGenerator::rawPhoto(uint64_t photo_id)
{
    size_t n = rawSizeOf(photo_id);
    Rng rng = perPhotoRng(photo_id, 1);
    Bytes out(n);
    // High-entropy contents: JPEG payloads do not recompress.
    size_t i = 0;
    while (i + 8 <= n) {
        uint64_t v = rng.nextU64();
        for (int b = 0; b < 8; ++b)
            out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
    while (i < n)
        out[i++] = static_cast<uint8_t>(rng.nextU64());
    return out;
}

Bytes
PhotoGenerator::preprocessedBinary(uint64_t photo_id)
{
    Rng rng = perPhotoRng(photo_id, 2);
    size_t n = cfg.preprocessedBytes;
    Bytes out(n);
    // Tensor-like redundancy: slowly varying values with occasional
    // jumps, plus zero runs (borders / saturated channels). Mirrors
    // the ~3.5x deflate ratio of real decoded image tensors.
    uint8_t cur = static_cast<uint8_t>(rng.below(256));
    size_t i = 0;
    while (i < n) {
        double r = rng.uniform();
        if (r < 0.15) {
            // Flat run.
            size_t run = 8 + rng.below(64);
            for (size_t k = 0; k < run && i < n; ++k)
                out[i++] = cur;
        } else if (r < 0.25) {
            // Jump to a new region.
            cur = static_cast<uint8_t>(rng.below(256));
            out[i++] = cur;
        } else {
            // Smooth drift: repeat short patterns of nearby values.
            size_t run = 4 + rng.below(12);
            uint8_t step = static_cast<uint8_t>(rng.below(3));
            for (size_t k = 0; k < run && i < n; ++k) {
                cur = static_cast<uint8_t>(cur + (k % 2 ? step : 0));
                out[i++] = cur;
            }
        }
    }
    return out;
}

} // namespace ndp::storage
