/**
 * @file
 * In-memory object store standing in for a PipeStore's photo volume.
 *
 * Keys are flat strings with slash-separated namespaces; the photo
 * service uses "raw/<id>" for original JPEGs and "pre/<id>" for the
 * deflate-compressed preprocessed binaries the NPE +Offload
 * optimization persists (§5.4). The store tracks byte totals per
 * namespace so the 17.5 % preprocessed-binary overhead analysis can be
 * reproduced directly.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "storage/codec.h"

namespace ndp::storage {

class ObjectStore
{
  public:
    /** Insert or replace. @return previous size if the key existed. */
    std::optional<size_t> put(const std::string &key, Bytes data);

    /** nullptr if absent. Pointers invalidate on the next mutation. */
    const Bytes *get(const std::string &key) const;

    bool contains(const std::string &key) const;
    bool erase(const std::string &key);

    size_t count() const { return objects.size(); }
    uint64_t totalBytes() const { return bytes; }

    /** Bytes stored under keys beginning with @p prefix. */
    uint64_t bytesUnderPrefix(const std::string &prefix) const;

    /** Keys beginning with @p prefix, sorted. */
    std::vector<std::string> listPrefix(const std::string &prefix) const;

  private:
    std::map<std::string, Bytes> objects;
    uint64_t bytes = 0;
};

} // namespace ndp::storage
