/**
 * @file
 * Synthetic photo blob generator.
 *
 * Produces byte blobs with the statistical properties the paper's
 * workloads rely on: "raw JPEGs" are high-entropy (already compressed,
 * ~2.7 MB lognormal sizes), while "preprocessed binaries" (decoded,
 * resized fp32 tensors) carry strong local redundancy and compress by
 * roughly 3.5x under deflateLite. Blob contents are deterministic in
 * (seed, photo id) so functional tests can verify round trips.
 */

#pragma once

#include <cstdint>

#include "sim/random.h"
#include "storage/codec.h"

namespace ndp::storage {

struct PhotoGenConfig
{
    /** Mean raw size in MB (paper: 2.7 MB typical JPEG). */
    double rawMeanMB = 2.7;
    /** Lognormal sigma of raw sizes. */
    double rawSigma = 0.35;
    /** Preprocessed binary size in bytes (fp32 224x224x3). */
    size_t preprocessedBytes = 602112;
    uint64_t seed = 7;
};

class PhotoGenerator
{
  public:
    explicit PhotoGenerator(const PhotoGenConfig &cfg = {});

    /** High-entropy blob with a lognormal size (a stored JPEG). */
    Bytes rawPhoto(uint64_t photo_id);

    /** Redundant tensor-like blob (a preprocessed binary). */
    Bytes preprocessedBinary(uint64_t photo_id);

    /** Raw size in bytes that rawPhoto would produce (no blob). */
    size_t rawSizeOf(uint64_t photo_id);

    const PhotoGenConfig &config() const { return cfg; }

  private:
    Rng perPhotoRng(uint64_t photo_id, uint64_t stream) const;

    PhotoGenConfig cfg;
};

} // namespace ndp::storage
