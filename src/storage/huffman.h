/**
 * @file
 * Order-0 canonical Huffman coder.
 *
 * DeflateLite's byte-token stream (codec.h) deliberately omits the
 * entropy stage for decompression speed; this coder supplies it as a
 * composable second pass for cold data, completing a full
 * deflate-style LZ77+Huffman stack. deflateFull()/inflateFull() wire
 * the two stages together.
 *
 * Stream layout: "NDHF" magic, u32 payload length, 256 x u8 code
 * lengths (canonical; 0 = symbol absent), then the packed bitstream
 * (MSB-first within each byte).
 */

#pragma once

#include <cstdint>
#include <optional>

#include "storage/codec.h"

namespace ndp::storage {

/** Entropy-encode @p input. Always succeeds. */
Bytes huffmanEncode(const Bytes &input);

/** @return std::nullopt on malformed or truncated streams. */
std::optional<Bytes> huffmanDecode(const Bytes &input);

/** LZ77 + Huffman, the full deflate-style stack. */
Bytes deflateFull(const Bytes &input);
std::optional<Bytes> inflateFull(const Bytes &input);

/** Shannon entropy of @p input in bits per byte (diagnostics). */
double byteEntropy(const Bytes &input);

} // namespace ndp::storage
