#include "storage/codec.h"

#include <cstring>

namespace ndp::storage {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 0x7f + kMinMatch; // 131
constexpr size_t kWindow = 65535;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr uint8_t kMagic[4] = {'N', 'D', 'L', 'Z'};

uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
flushLiterals(const Bytes &input, size_t lit_start, size_t lit_end,
              Bytes &out)
{
    while (lit_start < lit_end) {
        size_t run = std::min<size_t>(128, lit_end - lit_start);
        out.push_back(static_cast<uint8_t>(run - 1));
        out.insert(out.end(), input.begin() + lit_start,
                   input.begin() + lit_start + run);
        lit_start += run;
    }
}

} // namespace

Bytes
deflateLite(const Bytes &input)
{
    Bytes out;
    out.reserve(input.size() / 2 + 16);
    out.insert(out.end(), kMagic, kMagic + 4);
    uint32_t n = static_cast<uint32_t>(input.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(n >> (8 * i)));

    if (input.size() < kMinMatch) {
        flushLiterals(input, 0, input.size(), out);
        return out;
    }

    std::vector<int64_t> head(kHashSize, -1);
    size_t pos = 0;
    size_t lit_start = 0;
    const size_t limit = input.size() - kMinMatch;

    while (pos <= limit) {
        uint32_t h = hash4(&input[pos]);
        int64_t cand = head[h];
        head[h] = static_cast<int64_t>(pos);

        size_t best_len = 0;
        if (cand >= 0 &&
            pos - static_cast<size_t>(cand) <= kWindow) {
            const uint8_t *a = &input[static_cast<size_t>(cand)];
            const uint8_t *b = &input[pos];
            size_t max_len = std::min(kMaxMatch, input.size() - pos);
            size_t len = 0;
            while (len < max_len && a[len] == b[len])
                ++len;
            if (len >= kMinMatch)
                best_len = len;
        }

        if (best_len > 0) {
            flushLiterals(input, lit_start, pos, out);
            size_t dist = pos - static_cast<size_t>(cand);
            out.push_back(static_cast<uint8_t>(
                0x80 + (best_len - kMinMatch)));
            out.push_back(static_cast<uint8_t>(dist & 0xff));
            out.push_back(static_cast<uint8_t>(dist >> 8));
            // Index a few positions inside the match so later data can
            // still find it (cheap approximation of full chaining).
            size_t end = pos + best_len;
            for (size_t p2 = pos + 1; p2 + kMinMatch <= end &&
                                      p2 <= limit;
                 p2 += 2) {
                head[hash4(&input[p2])] = static_cast<int64_t>(p2);
            }
            pos = end;
            lit_start = pos;
        } else {
            ++pos;
        }
    }
    flushLiterals(input, lit_start, input.size(), out);
    return out;
}

std::optional<uint64_t>
inflatedSize(const Bytes &input)
{
    if (input.size() < 8 || std::memcmp(input.data(), kMagic, 4) != 0)
        return std::nullopt;
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i)
        n |= static_cast<uint32_t>(input[4 + i]) << (8 * i);
    return n;
}

std::optional<Bytes>
inflateLite(const Bytes &input)
{
    auto size = inflatedSize(input);
    if (!size)
        return std::nullopt;

    Bytes out;
    out.reserve(*size);
    size_t pos = 8;
    while (pos < input.size()) {
        uint8_t c = input[pos++];
        if (c < 0x80) {
            size_t run = static_cast<size_t>(c) + 1;
            if (pos + run > input.size())
                return std::nullopt;
            out.insert(out.end(), input.begin() + pos,
                       input.begin() + pos + run);
            pos += run;
        } else {
            if (pos + 2 > input.size())
                return std::nullopt;
            size_t len = static_cast<size_t>(c - 0x80) + kMinMatch;
            size_t dist = static_cast<size_t>(input[pos]) |
                          (static_cast<size_t>(input[pos + 1]) << 8);
            pos += 2;
            if (dist == 0 || dist > out.size())
                return std::nullopt;
            // Byte-by-byte copy: overlapping matches are legal (RLE).
            size_t src = out.size() - dist;
            for (size_t i = 0; i < len; ++i)
                out.push_back(out[src + i]);
        }
    }
    if (out.size() != *size)
        return std::nullopt;
    return out;
}

} // namespace ndp::storage
