/**
 * @file
 * The one NPE stage-graph engine (§5.4).
 *
 * Every near-data dataflow in this repo — PipeStore offline inference,
 * FT-DMP feature extraction, the SRV host baselines for inference and
 * fine-tuning, and the §7.1 media extensions — is the same 3-stage
 * pipeline: a front stage that reads bytes from a disk (optionally
 * shipping them over a NIC), a CPU stage that decompresses and/or
 * preprocesses, and a GPU stage that computes and ships results
 * downstream. Before this engine existed the repo spelled that
 * pipeline out five times with hand-rolled coroutine families; now a
 * PipelineSpec describes the dataflow declaratively and Pipeline
 * spawns the stage coroutines over sim::Channel, in either pipelined
 * or fully serial ("Typical", §3.4) execution mode, with built-in
 * per-stage time/bytes/utilization accounting in StageMetrics.
 *
 * Fan-out conventions:
 *  - one Pipeline per PipeStore (NDP flavors): each store owns its
 *    disk/CPU/GPU stations and its share of the dataset;
 *  - one Pipeline per SRV host (baseline flavors): N storage-server
 *    disks feed one shared CPU/GPU host through one ingress link.
 *
 * All per-item quantities are linear in the batch size, matching the
 * paper's service-time models; stage times recorded in StageMetrics
 * are service times (queueing excluded), so `timeS / itemsDone` is
 * directly comparable with the analytical npeStageTimes() model.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/npe_common.h"
#include "core/report.h"
#include "hw/devices.h"
#include "net/fabric.h"
#include "obs/trace.h"
#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_group.h"

namespace ndp::core {

namespace sched {
class Scheduler;
}

/** Token flowing between stages: @p n items belonging to run @p run. */
struct PipeBatch
{
    int run = 0;
    int n = 0;
};

/**
 * One unit of CPU-stage work, applied per batch. The stage holds
 * @p cores tokens of the pipeline's CpuPool for
 * `workPerItem * n / rate` seconds. Keeping work and rate separate
 * (instead of a precomputed seconds-per-item) preserves the exact
 * floating-point evaluation order of the paper-calibrated service
 * times: (work * n) / rate.
 */
struct CpuStageOp
{
    enum class Kind
    {
        Decompress,
        Preprocess,
    };

    Kind kind = Kind::Preprocess;
    int cores = 1;
    /** Work per item: MB to inflate, images to decode, units... */
    double workPerItem = 0.0;
    /** Work units per second at this core count. */
    double rate = 1.0;

    /** Inflate @p uncompressed_mb MB per item on @p cores cores. */
    static CpuStageOp
    decompress(double uncompressed_mb, int cores)
    {
        return {Kind::Decompress, cores, uncompressed_mb,
                storage::kDecompressMBps * static_cast<double>(cores)};
    }

    /** JPEG-decode+resize one image per item on @p cores cores. */
    static CpuStageOp
    preprocess(int cores)
    {
        return {Kind::Preprocess, cores, 1.0,
                kPreprocImgPerSecPerCore * static_cast<double>(cores)};
    }

    /** Generic extraction (media §7.1): core-seconds per item. */
    static CpuStageOp
    extract(double core_seconds_per_item, int cores)
    {
        return {Kind::Preprocess, cores, core_seconds_per_item,
                static_cast<double>(cores)};
    }
};

/** One producer feeding the pipeline front. */
struct ProducerSpec
{
    /** Disk the producer reads from; null = data already local. */
    hw::Disk *disk = nullptr;
    /** Fabric node the producer's bytes leave from (wire source). */
    net::NodeId node = net::kNoNode;
    /** Trace process this producer's disk/wire spans land on; empty =
     *  the pipeline's PipelineSpec::traceNode. */
    std::string traceNode;
    /** Items fed per pipeline run (size == PipelineSpec::nRun). */
    std::vector<uint64_t> runItems;

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t r : runItems)
            t += r;
        return t;
    }
};

/** Declarative description of one NPE dataflow. */
struct PipelineSpec
{
    /** 3-stage overlap vs the fully serial "Typical" walk (§3.4). */
    bool pipelined = true;
    /** Items per batch token. */
    int batch = 1;
    /** Bounded-channel depth between stages. */
    size_t depth = kStageDepth;
    /** Pipeline runs the producers iterate (N_run, §5.2). */
    int nRun = 1;

    /** @name Front stage (disk read, optional NIC transfer)
     * @{ */
    double readBytesPerItem = 0.0;
    /**
     * Fabric every transfer of this dataflow crosses; null = no
     * network legs at all (bytes may still be counted via
     * shipBytesPerItem). One fabric instance is shared by all
     * pipelines of a run so their flows contend for real.
     */
    net::NetFabric *fabric = nullptr;
    /** Destination of the front-stage wire leg (per-producer source
     *  comes from ProducerSpec::node). kNoNode = no wire leg. */
    net::NodeId wireDst = net::kNoNode;
    net::FlowClass wireClass = net::FlowClass::BulkInput;
    double wireBytesPerItem = 0.0;
    /**
     * Gate awaited before a producer starts run r (unpipelined FT-DMP
     * waits for the Tuner to finish run r-1). May return null.
     */
    std::function<sim::WaitGroup *(int run)> runGate;
    /** @} */

    /** @name CPU stage
     * @{ */
    hw::CpuPool *cpu = nullptr;
    std::vector<CpuStageOp> cpuOps;
    /** @} */

    /** @name GPU stage + downstream ship
     * @{ */
    hw::GpuExec *gpu = nullptr;
    double computeSecondsPerItem = 0.0;
    /** Parallel consumers of the ready channel (SRV: one per GPU). */
    int gpuWorkers = 1;
    /** Ship leg endpoints; kNoNode = count shipBytes only, no
     *  transfer (e.g. labels whose cost the paper ignores). */
    net::NodeId shipSrc = net::kNoNode;
    net::NodeId shipDst = net::kNoNode;
    net::FlowClass shipClass = net::FlowClass::ResultShip;
    double shipBytesPerItem = 0.0;
    /** Per-run routing: deliver n to runOut[run] (FT-DMP features). */
    std::vector<sim::Channel<int> *> runOut;
    /** @} */

    /** Signalled once per sink worker when the pipeline drains. */
    sim::WaitGroup *done = nullptr;

    /** @name Observability (null tracer = zero-cost no-ops)
     * @{ */
    /**
     * Tracer every stage batch is recorded on. Follows the fault
     * injector's zero-cost rule: when null, no span guards fire and
     * no gauges register, so the event sequence is untouched.
     */
    obs::Tracer *trace = nullptr;
    /** Trace process name of this pipeline's CPU/GPU/sink stations
     *  (e.g. "store3", "host"). */
    std::string traceNode;
    /** @} */

    /** @name Multi-job scheduling (null = zero-cost no-ops)
     * Stage coroutines yield to the cluster scheduler at each batch
     * boundary (preemption point) and charge their GPU service time
     * to jobId (the fair-share currency). A null scheduler performs
     * no awaits and no calls at all — the single-tenant event
     * sequence is byte-identical, mirroring the fault injector's
     * zero-cost rule.
     * @{ */
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    /** @} */

    /** @name Fault injection (null = zero-cost no-ops)
     * @{ */
    /**
     * Injector the front stage consults per batch: crash (stop
     * producing, spill the remainder), transient stall, and read
     * errors retried with bounded exponential backoff. Producer
     * index i maps to store `faultStoreBase + i`.
     */
    sim::FaultInjector *faults = nullptr;
    int faultStoreBase = 0;
    /**
     * Cluster-level recovery: crashed producers spill their remaining
     * shard here, and (unless this store has a scheduled crash) the
     * pipeline volunteers a consumer that turns re-dispatched
     * WorkOrders into regular front-stage work.
     */
    sim::RecoveryCoordinator *recovery = nullptr;
    /** @} */
};

/**
 * An instantiated NPE dataflow: owns the inter-stage channels and the
 * measured StageMetrics; stations (disks, CPU pool, GPU, links) are
 * borrowed from the caller and must outlive the simulation.
 */
class Pipeline
{
  public:
    Pipeline(sim::Simulator &s, PipelineSpec spec,
             std::vector<ProducerSpec> producers);

    /** Spawn all stage coroutines on the simulator. */
    void spawn();

    /**
     * Fill the utilization fields of metrics() from the stations;
     * call after Simulator::run().
     */
    void finalize();

    const StageMetrics &metrics() const { return metrics_; }

    /** @name Back-pressure probes: channel high-water marks
     * @{ */
    size_t loadedPeak() const { return loaded_.peakSize(); }
    size_t readyPeak() const { return ready_.peakSize(); }
    /** @} */

  private:
    sim::Task producerProc(size_t idx);
    sim::Task senderProc(size_t idx);
    sim::Task redispatchProc();
    sim::Task closerProc();
    sim::Task cpuProc();
    sim::Task gpuProc(int worker);
    sim::Task serialProc();

    /** Intern this pipeline's trace tracks + register queue gauges
     *  (no-op when spec_.trace is null). Called from spawn(). */
    void setupTrace();

    /** Trace process of producer @p idx's disk/wire spans. */
    const std::string &nodeOf(size_t idx) const
    {
        return producers_[idx].traceNode.empty()
                   ? spec_.traceNode
                   : producers_[idx].traceNode;
    }

    /** @name Track accessors safe to call untraced (vectors empty)
     * @{ */
    int dTrk(size_t i) const { return trkDisk_.empty() ? 0 : trkDisk_[i]; }
    int wTrk(size_t i) const { return trkWire_.empty() ? 0 : trkWire_[i]; }
    int gTrk(int g) const
    {
        return trkGpu_.empty() ? 0 : trkGpu_[static_cast<size_t>(g)];
    }
    /** @} */

    /** True when producer @p p has a configured front-stage wire leg. */
    bool wireLegActive(const ProducerSpec &p) const
    {
        return spec_.fabric && spec_.wireDst != net::kNoNode &&
               spec_.wireBytesPerItem > 0.0 && p.node != net::kNoNode;
    }

    sim::Simulator &sim_;
    PipelineSpec spec_;
    std::vector<ProducerSpec> producers_;
    sim::WaitGroup feeders_;
    sim::Channel<PipeBatch> loaded_;
    sim::Channel<PipeBatch> ready_;
    /** Per-producer read→wire hand-off (depth 1): the next disk read
     *  overlaps the in-flight transfer. Null when no wire leg. */
    std::vector<std::unique_ptr<sim::Channel<PipeBatch>>> sendq_;
    StageMetrics metrics_;

    /** @name Trace tracks (valid only when spec_.trace != null)
     * @{ */
    std::vector<int> trkDisk_;
    std::vector<int> trkWire_;
    std::vector<int> trkGpu_;
    int trkCpu_ = 0;
    int trkShip_ = 0;
    int trkFault_ = 0;
    /** @} */
    /** Queue-depth gauges; unregistered before the channels die. */
    obs::GaugeSet gauges_;
};

/** Stations of one PipeStore (NDP flavors: one pipeline per store). */
struct StoreStations
{
    StoreStations(sim::Simulator &s, const hw::ServerSpec &spec)
        : disk(s, spec.disk), cpu(s, spec.cpu.vcpus),
          gpu(s, *spec.gpu, spec.nGpus)
    {}

    hw::Disk disk;
    hw::CpuPool cpu;
    hw::GpuExec gpu;
};

/** Stations of one SRV host (baseline flavors: one shared pipeline).
 *  The host's NIC lives on the shared NetFabric, not here. */
struct HostStations
{
    HostStations(sim::Simulator &s, const hw::ServerSpec &spec)
        : gpus(s, *spec.gpu, spec.nGpus), cpu(s, spec.cpu.vcpus)
    {}

    hw::GpuExec gpus;
    hw::CpuPool cpu;
};

} // namespace ndp::core
