/**
 * @file
 * §7.1 extensions: NDPipe beyond photos.
 *
 * The paper sketches how the same near-data engine serves other media:
 * video via key-frame extraction, audio via spectrogram transformation
 * (AST), and documents via transformer embeddings. Each medium maps to
 * a MediaProfile: a stored object of some size yields a number of
 * analysis units (frames / spectrogram windows / text chunks), each
 * unit costs CPU to extract and flows through a vision-sized model on
 * the store's accelerator; only per-unit labels or small embedding
 * vectors leave the store.
 *
 * runNdpMediaAnalysis() runs the NPE-style 3-stage pipeline per store;
 * runSrvMediaAnalysis() ships whole raw objects to the central host
 * first — the comparison that makes the data-reduction argument of
 * §7.1 quantitative.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "core/report.h"

namespace ndp::core {

namespace sched {
class Scheduler;
}

struct MediaProfile
{
    std::string name;
    /** Stored object size, MB (photo 2.7, video hundreds). */
    double rawMB;
    /** Analysis units per object (key frames, windows, chunks). */
    double unitsPerObject;
    /** CPU core-seconds to extract one unit from the raw object. */
    double extractPerUnitS;
    /** Model-input tensor per unit, MB. */
    double tensorMBPerUnit;
    /** Bytes leaving the store per unit (label or embedding). */
    double resultBytesPerUnit;
    /** Analysis model applied to each unit. */
    const models::ModelSpec *model;
    /** Store CPU cores dedicated to extraction. */
    int extractCores = 2;
};

/** Photos, as a consistency baseline (matches the photo pipeline). */
MediaProfile photoMedia();
/** Video archive: key-frame extraction + CNN labeling ([39]). */
MediaProfile videoMedia();
/** Audio archive: spectrogram transform + CNN classification. */
MediaProfile audioMedia();
/** Document archive: transformer embeddings for downstream tasks. */
MediaProfile documentMedia();

std::vector<MediaProfile> allMedia();

struct MediaReport
{
    /** Objects analyzed end to end. */
    uint64_t objects = 0;
    double seconds = 0.0;
    /** Objects per second. */
    double ops = 0.0;
    /** Analysis units per second. */
    double ups = 0.0;
    /** Bytes that crossed the data-center network. */
    double netBytes = 0.0;
    hw::PowerBreakdown power;
    double energyJ = 0.0;
};

/** Borrowed resources one media-analysis job runs against (see
 *  FtDmpPorts in core/training.h for the borrowing contract). */
struct MediaPorts
{
    net::NetFabric *fabric = nullptr;
    /** Fabric nodes of the job's stores, job-local order. */
    std::vector<net::NodeId> storeNodes;
    /** Tuner-side sink the per-unit results ship to. */
    net::NodeId sinkNode = net::kNoNode;
    /** The job's store stations, job-local order. */
    std::vector<StoreStations *> stores;
    /** Fleet store index of stores[k]; single-tenant: k. */
    std::vector<int> fleetIdx;
    obs::Tracer *trace = nullptr;
    /** Per-job trace prefix (obs::scopedNode); empty = untouched. */
    std::string scope;
    sched::Scheduler *sched = nullptr;
    int jobId = -1;
    sim::WaitGroup *jobDone = nullptr;
};

/** One near-data media-analysis dataflow against borrowed stores. */
class MediaDataflow
{
  public:
    MediaDataflow(sim::Simulator &s, const ExperimentConfig &cfg,
                  const MediaProfile &media, uint64_t n_objects,
                  const MediaPorts &ports);
    ~MediaDataflow();

    MediaDataflow(const MediaDataflow &) = delete;
    MediaDataflow &operator=(const MediaDataflow &) = delete;

    void spawn();

    /** Per-store power into @p rep (callers derive rates/energy). */
    void finalize(MediaReport &rep);

    /** Summed stage metrics (valid after finalize()). */
    const StageMetrics &stages() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Near-data analysis: each of cfg.nStores PipeStores pipelines
 * read -> extract (CPU) -> model (GPU) over its share of
 * @p n_objects; only results cross the network.
 */
MediaReport runNdpMediaAnalysis(const ExperimentConfig &cfg,
                                const MediaProfile &media,
                                uint64_t n_objects);

/**
 * Centralized analysis: storage servers ship whole raw objects to the
 * SRV host, which extracts on 8 cores and analyzes on its two V100s.
 */
MediaReport runSrvMediaAnalysis(const ExperimentConfig &cfg,
                                const MediaProfile &media,
                                uint64_t n_objects);

} // namespace ndp::core
