/**
 * @file
 * §7.1 extensions: NDPipe beyond photos.
 *
 * The paper sketches how the same near-data engine serves other media:
 * video via key-frame extraction, audio via spectrogram transformation
 * (AST), and documents via transformer embeddings. Each medium maps to
 * a MediaProfile: a stored object of some size yields a number of
 * analysis units (frames / spectrogram windows / text chunks), each
 * unit costs CPU to extract and flows through a vision-sized model on
 * the store's accelerator; only per-unit labels or small embedding
 * vectors leave the store.
 *
 * runNdpMediaAnalysis() runs the NPE-style 3-stage pipeline per store;
 * runSrvMediaAnalysis() ships whole raw objects to the central host
 * first — the comparison that makes the data-reduction argument of
 * §7.1 quantitative.
 */

#pragma once

#include <string>

#include "core/config.h"
#include "core/report.h"

namespace ndp::core {

struct MediaProfile
{
    std::string name;
    /** Stored object size, MB (photo 2.7, video hundreds). */
    double rawMB;
    /** Analysis units per object (key frames, windows, chunks). */
    double unitsPerObject;
    /** CPU core-seconds to extract one unit from the raw object. */
    double extractPerUnitS;
    /** Model-input tensor per unit, MB. */
    double tensorMBPerUnit;
    /** Bytes leaving the store per unit (label or embedding). */
    double resultBytesPerUnit;
    /** Analysis model applied to each unit. */
    const models::ModelSpec *model;
    /** Store CPU cores dedicated to extraction. */
    int extractCores = 2;
};

/** Photos, as a consistency baseline (matches the photo pipeline). */
MediaProfile photoMedia();
/** Video archive: key-frame extraction + CNN labeling ([39]). */
MediaProfile videoMedia();
/** Audio archive: spectrogram transform + CNN classification. */
MediaProfile audioMedia();
/** Document archive: transformer embeddings for downstream tasks. */
MediaProfile documentMedia();

std::vector<MediaProfile> allMedia();

struct MediaReport
{
    /** Objects analyzed end to end. */
    uint64_t objects = 0;
    double seconds = 0.0;
    /** Objects per second. */
    double ops = 0.0;
    /** Analysis units per second. */
    double ups = 0.0;
    /** Bytes that crossed the data-center network. */
    double netBytes = 0.0;
    hw::PowerBreakdown power;
    double energyJ = 0.0;
};

/**
 * Near-data analysis: each of cfg.nStores PipeStores pipelines
 * read -> extract (CPU) -> model (GPU) over its share of
 * @p n_objects; only results cross the network.
 */
MediaReport runNdpMediaAnalysis(const ExperimentConfig &cfg,
                                const MediaProfile &media,
                                uint64_t n_objects);

/**
 * Centralized analysis: storage servers ship whole raw objects to the
 * SRV host, which extracts on 8 cores and analyzes on its two V100s.
 */
MediaReport runSrvMediaAnalysis(const ExperimentConfig &cfg,
                                const MediaProfile &media,
                                uint64_t n_objects);

} // namespace ndp::core
