#include "core/training.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <vector>

#include "hw/devices.h"
#include "models/throughput.h"
#include "sim/barrier.h"
#include "sim/channel.h"
#include "sim/simulator.h"
#include "sim/wait_group.h"
#include "storage/codec.h"

namespace ndp::core {

namespace {

/** Sparse-delta compression achieved on the trainable layers'
 *  difference (Check-N-Run [29]); yields the paper's "up to 427.4x"
 *  traffic reduction vs shipping the full ResNet50 model. */
constexpr double kDeltaCompressFactor = 34.0;

constexpr size_t kStageDepth = 4;

/** (run, images) token flowing through a store's FE pipeline. */
struct RunBatch
{
    int run;
    int n;
};

struct TrainStoreCtx
{
    TrainStoreCtx(sim::Simulator &s, const hw::ServerSpec &spec)
        : disk(s, spec.disk), cpu(s, spec.cpu.vcpus),
          gpu(s, *spec.gpu, spec.nGpus), loaded(s, kStageDepth),
          decompressed(s, kStageDepth)
    {}

    hw::Disk disk;
    hw::CpuPool cpu;
    hw::GpuExec gpu;
    sim::Channel<RunBatch> loaded;
    sim::Channel<RunBatch> decompressed;
};

/** Everything the coroutines share for one FT-DMP run. */
struct FtDmpEnv
{
    FtDmpEnv(sim::Simulator &s, const ExperimentConfig &cfg, int n_run)
        : sim(s), ingress(s, cfg.nic()), tunerGpu(s, *cfg.tunerSpec.gpu,
                                                  cfg.tunerSpec.nGpus)
    {
        // The Tuner spools arriving features to its local NVMe before
        // each training run (§5.2), so the feature path exerts no
        // back-pressure on the stores: effectively unbounded buffers.
        constexpr size_t spool = static_cast<size_t>(1) << 40;
        for (int r = 0; r < n_run; ++r) {
            runFeatures.push_back(
                std::make_unique<sim::Channel<int>>(s, spool));
            tunerDone.push_back(std::make_unique<sim::WaitGroup>(s));
            tunerDone.back()->add(1);
        }
    }

    sim::Simulator &sim;
    hw::Link ingress;
    hw::GpuExec tunerGpu;
    std::vector<std::unique_ptr<sim::Channel<int>>> runFeatures;
    std::vector<std::unique_ptr<sim::WaitGroup>> tunerDone;

    StageBreakdown stages;
    double dataTraffic = 0.0;
    double syncTraffic = 0.0;
    double feEndTime = 0.0;
};

/** Images store @p s processes in run @p r. */
uint64_t
shareOf(uint64_t total, int n_run, int n_stores, int r, int s)
{
    uint64_t run_imgs = total / static_cast<uint64_t>(n_run) +
                        (static_cast<uint64_t>(r) <
                                 total % static_cast<uint64_t>(n_run)
                             ? 1
                             : 0);
    return run_imgs / static_cast<uint64_t>(n_stores) +
           (static_cast<uint64_t>(s) <
                    run_imgs % static_cast<uint64_t>(n_stores)
                ? 1
                : 0);
}

/**
 * Store-side feature extraction runs the NPE 3-stage pipeline (§5.4):
 * a loader, a decompressor, and a GPU+ship stage, connected by bounded
 * channels so disk, CPU and GPU overlap across batches.
 * @{
 */
sim::Task
storeFeLoader(FtDmpEnv &env, TrainStoreCtx &st,
              const ExperimentConfig &cfg, const TrainOptions &opt,
              int store_idx)
{
    const models::ModelSpec &m = *cfg.model;
    double read_bytes = m.inputMB() * 1e6 / kCompressionRatio;
    for (int r = 0; r < opt.nRun; ++r) {
        if (!opt.pipelined && r > 0)
            co_await env.tunerDone[r - 1]->wait();
        uint64_t left = shareOf(cfg.nImages, opt.nRun, cfg.nStores, r,
                                store_idx);
        while (left > 0) {
            int n = static_cast<int>(std::min<uint64_t>(
                static_cast<uint64_t>(opt.feBatch), left));
            left -= static_cast<uint64_t>(n);
            double read_t = st.disk.readServiceTime(read_bytes * n);
            co_await st.disk.read(read_bytes * n);
            env.stages.readS += read_t;
            co_await st.loaded.put(RunBatch{r, n});
        }
    }
    st.loaded.close();
}

sim::Task
storeFeCpuStage(FtDmpEnv &env, TrainStoreCtx &st,
                const ExperimentConfig &cfg)
{
    const models::ModelSpec &m = *cfg.model;
    while (true) {
        auto b = co_await st.loaded.get();
        if (!b)
            break;
        double dec_t = m.inputMB() * b->n /
                       (storage::kDecompressMBps *
                        cfg.npe.decompressCores);
        co_await st.cpu.run(cfg.npe.decompressCores, dec_t);
        env.stages.decompressS += dec_t;
        co_await st.decompressed.put(*b);
    }
    st.decompressed.close();
}

sim::Task
storeFeGpuStage(FtDmpEnv &env, TrainStoreCtx &st,
                const ExperimentConfig &cfg, const TrainOptions &opt,
                size_t cut, int store_idx, sim::WaitGroup &stores_wg)
{
    const models::ModelSpec &m = *cfg.model;
    double fe_per_image = models::feSecondsPerImage(
                              *cfg.storeSpec.gpu, m, cut, opt.feBatch) /
                          opt.speedOf(store_idx);
    double feature_bytes = m.transferMBAt(cut) * 1e6;
    while (true) {
        auto b = co_await st.decompressed.get();
        if (!b)
            break;
        if (fe_per_image > 0.0) {
            co_await st.gpu.compute(fe_per_image * b->n);
            env.stages.computeS += fe_per_image * b->n;
        }
        double wire = feature_bytes * b->n;
        env.stages.transferS += env.ingress.serviceTime(wire);
        co_await env.ingress.transfer(wire);
        env.dataTraffic += wire;
        co_await env.runFeatures[b->run]->put(b->n);
        env.feEndTime = std::max(env.feEndTime, env.sim.now());
    }
    stores_wg.done();
}
/** @} */

/**
 * Naive-NDP store ("+FC"): the whole model, classifier included, runs
 * on the store; every iteration pays a weight synchronization over the
 * shared network (§4.1).
 */
sim::Task
storeLocalTrainProc(FtDmpEnv &env, TrainStoreCtx &st,
                    const ExperimentConfig &cfg, const TrainOptions &opt,
                    int store_idx, sim::Barrier &sync_barrier,
                    sim::WaitGroup &stores_wg)
{
    const models::ModelSpec &m = *cfg.model;
    // Naive NDP predates the NPE: binaries are stored uncompressed.
    double read_bytes = m.inputMB() * 1e6;
    // Epoch 1 extracts and caches features (the weight-freeze forward
    // is identical to inference, §2.1); later epochs retrain the
    // classifier from the cache. Every iteration pays the all-reduce
    // of the trainable weights across stores — the cost FT-DMP exists
    // to eliminate — and the all-reduce is a fleet-wide barrier: the
    // fastest store waits for the slowest.
    double speed = opt.speedOf(store_idx);
    double fe_per_image =
        models::feSecondsPerImage(*cfg.storeSpec.gpu, m,
                                  m.classifierStart(), opt.feBatch) /
        speed;
    // Data parallelism keeps the *global* batch fixed, so each store
    // iterates (and synchronizes) more often as stores are added —
    // the linear scaling §4.1 observes.
    int store_batch =
        std::max(1, opt.trainBatch / std::max(1, cfg.nStores));
    double head_per_image =
        models::tunerEpochSecondsPerImage(*cfg.storeSpec.gpu, m,
                                          store_batch) /
        speed;
    double sync_bytes_per_iter =
        2.0 * m.trainableParamsM() * 1e6 * 4.0;

    for (int r = 0; r < opt.nRun; ++r) {
        uint64_t share = shareOf(cfg.nImages, opt.nRun, cfg.nStores, r,
                                 store_idx);
        // Store 0 always holds the largest share; every store runs
        // the same number of all-reduce rounds so the barrier closes.
        uint64_t max_share =
            shareOf(cfg.nImages, opt.nRun, cfg.nStores, r, 0);
        uint64_t iters_per_epoch =
            (max_share + static_cast<uint64_t>(store_batch) - 1) /
            static_cast<uint64_t>(store_batch);
        for (int epoch = 0; epoch < opt.tunerEpochs; ++epoch) {
            uint64_t left = share;
            for (uint64_t it = 0; it < iters_per_epoch; ++it) {
                int n = static_cast<int>(std::min<uint64_t>(
                    static_cast<uint64_t>(store_batch), left));
                left -= static_cast<uint64_t>(n);

                if (n > 0 && epoch == 0) {
                    double read_t =
                        st.disk.readServiceTime(read_bytes * n);
                    co_await st.disk.read(read_bytes * n);
                    env.stages.readS += read_t;

                    co_await st.gpu.compute(fe_per_image * n);
                    env.stages.computeS += fe_per_image * n;
                }
                if (n > 0) {
                    co_await st.gpu.compute(head_per_image * n);
                    env.stages.computeS += head_per_image * n;
                }

                env.stages.syncS +=
                    env.ingress.serviceTime(sync_bytes_per_iter);
                co_await env.ingress.transfer(sync_bytes_per_iter);
                env.syncTraffic += sync_bytes_per_iter;
                co_await sync_barrier.arrive();
            }
        }
        env.feEndTime = std::max(env.feEndTime, env.sim.now());
    }
    stores_wg.done();
}

/** Tuner: ingest features per run, then train the classifier. */
sim::Task
tunerProc(FtDmpEnv &env, const ExperimentConfig &cfg,
          const TrainOptions &opt, size_t cut)
{
    const models::ModelSpec &m = *cfg.model;
    double ingest_per_image = models::tunerIngestSecondsPerImage(
        *cfg.tunerSpec.gpu, m, cut, opt.feBatch);
    double epoch_per_image = models::tunerEpochSecondsPerImage(
        *cfg.tunerSpec.gpu, m, opt.trainBatch);

    for (int r = 0; r < opt.nRun; ++r) {
        uint64_t run_imgs =
            cfg.nImages / static_cast<uint64_t>(opt.nRun) +
            (static_cast<uint64_t>(r) <
                     cfg.nImages % static_cast<uint64_t>(opt.nRun)
                 ? 1
                 : 0);
        uint64_t seen = 0;
        while (seen < run_imgs) {
            auto n = co_await env.runFeatures[r]->get();
            assert(n && "feature channel closed early");
            seen += static_cast<uint64_t>(*n);
            if (ingest_per_image > 0.0) {
                co_await env.tunerGpu.compute(ingest_per_image * *n);
                env.stages.tunerS += ingest_per_image * *n;
            }
        }
        double train_t = epoch_per_image *
                         static_cast<double>(run_imgs) *
                         static_cast<double>(opt.tunerEpochs);
        co_await env.tunerGpu.compute(train_t);
        env.stages.tunerS += train_t;
        env.tunerDone[r]->done();
    }
}

/** Check-N-Run delta redistribution to every store (§5). */
sim::Task
deltaDistribution(FtDmpEnv &env, const ExperimentConfig &cfg,
                  const TrainOptions &opt, double *out_bytes)
{
    co_await env.tunerDone[static_cast<size_t>(opt.nRun) - 1]->wait();
    double delta_bytes = cfg.model->trainableParamsM() * 1e6 * 4.0 /
                         kDeltaCompressFactor;
    for (int i = 0; i < cfg.nStores; ++i) {
        co_await env.ingress.transfer(delta_bytes);
        *out_bytes += delta_bytes;
    }
}

} // namespace

TrainReport
runFtDmpTraining(const ExperimentConfig &cfg, const TrainOptions &opt)
{
    const models::ModelSpec &m = *cfg.model;
    size_t cut = opt.resolveCut(m);
    assert(cut <= m.numBlocks());
    bool classifier_on_stores = m.cutSplitsClassifier(cut);

    TrainReport rep;
    rep.images = cfg.nImages;

    sim::Simulator s;
    FtDmpEnv env(s, cfg, opt.nRun);
    sim::WaitGroup stores_wg(s);
    stores_wg.add(cfg.nStores);
    sim::Barrier sync_barrier(s, cfg.nStores);

    std::vector<std::unique_ptr<TrainStoreCtx>> stores;
    for (int i = 0; i < cfg.nStores; ++i)
        stores.push_back(
            std::make_unique<TrainStoreCtx>(s, cfg.storeSpec));

    for (int i = 0; i < cfg.nStores; ++i) {
        if (classifier_on_stores) {
            s.spawn(storeLocalTrainProc(env, *stores[i], cfg, opt, i,
                                        sync_barrier, stores_wg));
        } else {
            s.spawn(storeFeLoader(env, *stores[i], cfg, opt, i));
            s.spawn(storeFeCpuStage(env, *stores[i], cfg));
            s.spawn(storeFeGpuStage(env, *stores[i], cfg, opt, cut,
                                    i, stores_wg));
        }
    }
    if (classifier_on_stores) {
        // No Tuner stage; the stores converge among themselves. Mark
        // the tuner gates done so delta distribution can proceed.
        for (auto &wg : env.tunerDone)
            wg->done();
    } else {
        s.spawn(tunerProc(env, cfg, opt, cut));
    }
    if (opt.distributeDeltas)
        s.spawn(deltaDistribution(env, cfg, opt, &rep.distributionBytes));

    s.run();

    rep.seconds = s.now();
    rep.trainIps = rep.seconds > 0.0
                       ? static_cast<double>(cfg.nImages) / rep.seconds
                       : 0.0;
    rep.feIps = env.feEndTime > 0.0
                    ? static_cast<double>(cfg.nImages) / env.feEndTime
                    : 0.0;
    rep.dataTrafficBytes = env.dataTraffic;
    rep.syncTrafficBytes = env.syncTraffic;
    rep.stages = env.stages;

    for (size_t i = 0; i < stores.size(); ++i) {
        double gu = stores[i]->gpu.utilization();
        double cu = stores[i]->cpu.utilization();
        auto p = hw::serverPower(cfg.storeSpec, gu, cu);
        rep.perServer.push_back(
            {cfg.storeSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    auto tuner_power = hw::serverPower(
        cfg.tunerSpec, env.tunerGpu.utilization(), 0.05);
    rep.perServer.push_back({cfg.tunerSpec.name, tuner_power});
    rep.power += tuner_power;
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

namespace {

struct SrvTrainCtx
{
    SrvTrainCtx(sim::Simulator &s, const ExperimentConfig &cfg)
        : gpus(s, *cfg.hostSpec.gpu, cfg.hostSpec.nGpus),
          cpu(s, cfg.hostSpec.cpu.vcpus), ingress(s, cfg.nic()),
          arrived(s, 2 * kStageDepth), ready(s, 2 * kStageDepth)
    {}

    hw::GpuExec gpus;
    hw::CpuPool cpu;
    hw::Link ingress;
    sim::Channel<int> arrived;
    sim::Channel<int> ready;
};

sim::Task
srvTrainFeeder(SrvTrainCtx &host, hw::Disk &disk, uint64_t images,
               int batch, double wire_bytes, sim::WaitGroup &feeders,
               StageBreakdown &stages)
{
    uint64_t left = images;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        stages.readS += disk.readServiceTime(wire_bytes * n);
        co_await disk.read(wire_bytes * n);
        stages.transferS += host.ingress.serviceTime(wire_bytes * n);
        co_await host.ingress.transfer(wire_bytes * n);
        co_await host.arrived.put(n);
    }
    feeders.done();
}

sim::Task
srvTrainCloser(SrvTrainCtx &host, sim::WaitGroup &feeders)
{
    co_await feeders.wait();
    host.arrived.close();
}

sim::Task
srvTrainCpu(SrvTrainCtx &host, bool decompress,
            const models::ModelSpec &m, StageBreakdown &stages)
{
    constexpr int cores = 8;
    while (true) {
        auto n = co_await host.arrived.get();
        if (!n)
            break;
        if (decompress) {
            double t =
                m.inputMB() * *n / (storage::kDecompressMBps * cores);
            co_await host.cpu.run(cores, t);
            stages.decompressS += t;
        }
        co_await host.ready.put(*n);
    }
    host.ready.close();
}

sim::Task
srvTrainGpuWorker(SrvTrainCtx &host, double fe_per_image,
                  sim::WaitGroup &wg, StageBreakdown &stages)
{
    while (true) {
        auto n = co_await host.ready.get();
        if (!n)
            break;
        co_await host.gpus.compute(fe_per_image * *n);
        stages.computeS += fe_per_image * *n;
    }
    wg.done();
}

sim::Task
srvClassifierTrain(SrvTrainCtx &host, sim::WaitGroup &fe_done,
                   double seconds, StageBreakdown &stages)
{
    co_await fe_done.wait();
    co_await host.gpus.compute(seconds);
    stages.tunerS += seconds;
}

/** Fully serial "Typical" flow (§3.4): read -> transfer -> FE per
 *  batch, no overlap. */
sim::Task
srvTrainSerial(SrvTrainCtx &host,
               std::vector<std::unique_ptr<hw::Disk>> &disks,
               double wire_bytes, uint64_t images, int batch,
               double fe_per_image, sim::WaitGroup &done,
               StageBreakdown &stages)
{
    uint64_t left = images;
    size_t turn = 0;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        if (wire_bytes > 0.0 && !disks.empty()) {
            hw::Disk &d = *disks[turn % disks.size()];
            ++turn;
            stages.readS += d.readServiceTime(wire_bytes * n);
            co_await d.read(wire_bytes * n);
            stages.transferS += host.ingress.serviceTime(wire_bytes * n);
            co_await host.ingress.transfer(wire_bytes * n);
        }
        co_await host.gpus.compute(fe_per_image * n);
        stages.computeS += fe_per_image * n;
    }
    done.done();
}

/** Host-local producer for the Ideal fine-tuning setup. */
sim::Task
srvTrainLocalProducer(SrvTrainCtx &host, uint64_t images, int batch,
                      sim::WaitGroup &feeders)
{
    uint64_t left = images;
    while (left > 0) {
        int n = static_cast<int>(
            std::min<uint64_t>(static_cast<uint64_t>(batch), left));
        left -= static_cast<uint64_t>(n);
        co_await host.arrived.put(n);
    }
    feeders.done();
}

} // namespace

TrainReport
runSrvFineTuning(const ExperimentConfig &cfg, SrvVariant variant,
                 int tuner_epochs, bool pipelined)
{
    const models::ModelSpec &m = *cfg.model;
    TrainReport rep;
    rep.images = cfg.nImages;

    sim::Simulator s;
    SrvTrainCtx host(s, cfg);
    size_t cut = m.classifierStart();
    double fe_per_image = models::feSecondsPerImage(
        *cfg.hostSpec.gpu, m, cut, cfg.npe.batchSize);
    double ct_seconds =
        models::tunerEpochSecondsPerImage(*cfg.hostSpec.gpu, m,
                                          kTrainBatch) *
        static_cast<double>(cfg.nImages) *
        static_cast<double>(tuner_epochs);

    double wire = 0.0;
    bool decompress = false;
    switch (variant) {
      case SrvVariant::Preprocessed:
        wire = m.inputMB() * 1e6;
        break;
      case SrvVariant::Compressed:
        wire = m.inputMB() * 1e6 / kCompressionRatio;
        decompress = true;
        break;
      default:
        break; // host-local data
    }

    std::vector<std::unique_ptr<hw::Disk>> disks;
    for (int i = 0; i < cfg.srvStorageServers; ++i)
        disks.push_back(
            std::make_unique<hw::Disk>(s, cfg.srvStoreSpec.disk));

    sim::WaitGroup fe_done(s);
    sim::WaitGroup feeders(s);
    if (!pipelined) {
        fe_done.add(1);
        s.spawn(srvTrainSerial(host, disks, wire, cfg.nImages,
                               cfg.npe.batchSize, fe_per_image, fe_done,
                               rep.stages));
    } else if (wire > 0.0) {
        feeders.add(cfg.srvStorageServers);
        uint64_t base = cfg.nImages / cfg.srvStorageServers;
        uint64_t rem = cfg.nImages % cfg.srvStorageServers;
        for (int i = 0; i < cfg.srvStorageServers; ++i) {
            uint64_t share =
                base + (static_cast<uint64_t>(i) < rem ? 1 : 0);
            s.spawn(srvTrainFeeder(host, *disks[i], share,
                                   cfg.npe.batchSize, wire, feeders,
                                   rep.stages));
        }
        s.spawn(srvTrainCloser(host, feeders));
        s.spawn(srvTrainCpu(host, decompress, m, rep.stages));
        fe_done.add(cfg.hostSpec.nGpus);
        for (int g = 0; g < cfg.hostSpec.nGpus; ++g)
            s.spawn(srvTrainGpuWorker(host, fe_per_image, fe_done,
                                      rep.stages));
    } else {
        // Host-local data: GPU-bound FE.
        feeders.add(1);
        s.spawn(srvTrainLocalProducer(host, cfg.nImages,
                                      cfg.npe.batchSize, feeders));
        s.spawn(srvTrainCloser(host, feeders));
        s.spawn(srvTrainCpu(host, false, m, rep.stages));
        fe_done.add(cfg.hostSpec.nGpus);
        for (int g = 0; g < cfg.hostSpec.nGpus; ++g)
            s.spawn(srvTrainGpuWorker(host, fe_per_image, fe_done,
                                      rep.stages));
    }
    s.spawn(srvClassifierTrain(host, fe_done, ct_seconds, rep.stages));
    s.run();

    rep.seconds = s.now();
    rep.trainIps = rep.seconds > 0.0
                       ? static_cast<double>(cfg.nImages) / rep.seconds
                       : 0.0;
    rep.feIps = rep.trainIps;
    rep.dataTrafficBytes = host.ingress.bytesMoved();

    auto host_power = hw::serverPower(
        cfg.hostSpec, host.gpus.utilization(), host.cpu.utilization());
    rep.perServer.push_back({cfg.hostSpec.name, host_power});
    rep.power += host_power;
    for (int i = 0; i < cfg.srvStorageServers; ++i) {
        double cpu_util = disks[static_cast<size_t>(i)]->utilization() *
                          2.0 / cfg.srvStoreSpec.cpu.vcpus;
        auto p = hw::serverPower(cfg.srvStoreSpec, 0.0, cpu_util);
        rep.perServer.push_back(
            {cfg.srvStoreSpec.name + "#" + std::to_string(i), p});
        rep.power += p;
    }
    rep.energyJ = rep.power.totalW() * rep.seconds;
    return rep;
}

} // namespace ndp::core
